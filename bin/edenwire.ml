(* edenwire: run a workload on the multi-process cluster.

   Runs fanin / f2 / f4 on the chosen transport (one OS process per
   shard for the socket transports), then re-runs the in-process
   deterministic oracle and verifies the item streams are
   byte-identical.  A quick way to watch DESIGN.md §13 from the
   command line:

     edenwire f2 --transport unix --shards 3 --items 64
     edenwire fanin --transport tcp
     edenwire f4 --transport inproc *)

module Cluster = Eden_par.Cluster
module Fanin = Eden_par.Fanin
module Distpipe = Eden_par.Distpipe
module Bin = Eden_wire.Bin

let usage () =
  prerr_endline
    "usage: edenwire (fanin | f2 | f4) [--transport inproc|unix|tcp]\n\
    \                [--shards N] [--items N]";
  exit 2

let mode_of_string = function
  | "inproc" -> Cluster.Deterministic
  | "unix" ->
      Cluster.Wire
        { Cluster.wire_transport = Eden_wire.Transport.Unix_socket;
          wire_faults = None;
          wire_auth = None }
  | "tcp" ->
      Cluster.Wire
        { Cluster.wire_transport = Eden_wire.Transport.Tcp;
          wire_faults = None;
          wire_auth = None }
  | s ->
      Printf.eprintf "unknown transport %S (inproc | unix | tcp)\n" s;
      exit 2

let () =
  let workload = ref "" in
  let transport = ref "unix" in
  let shards = ref 3 in
  let items = ref 32 in
  let rec parse = function
    | [] -> ()
    | "--transport" :: v :: rest ->
        transport := v;
        parse rest
    | "--shards" :: v :: rest ->
        shards := int_of_string v;
        parse rest
    | "--items" :: v :: rest ->
        items := int_of_string v;
        parse rest
    | w :: rest when !workload = "" && w.[0] <> '-' ->
        workload := w;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !workload = "" then usage ();
  let mode = mode_of_string !transport in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let report ~consumed ~bytes ~dt ~matches =
    Printf.printf "%s over %s, %d shards: %d items, %d wire bytes, %.3fs (%d items/s)\n"
      !workload !transport !shards consumed bytes dt
      (int_of_float (float_of_int consumed /. dt));
    if matches then print_endline "stream matches the in-process oracle"
    else begin
      print_endline "STREAM DIVERGED from the in-process oracle";
      exit 1
    end
  in
  match !workload with
  | "fanin" ->
      let spec = { Fanin.default with branches = 4; items = !items } in
      let digest (o : Fanin.outcome) =
        Array.map (fun vs -> String.concat "" (List.map Bin.encode vs)) o.Fanin.per_branch
      in
      let o, dt = timed (fun () -> Fanin.run mode ~domains:!shards spec) in
      let oracle = Fanin.run Cluster.Deterministic ~domains:!shards spec in
      report ~consumed:o.Fanin.consumed
        ~bytes:(Array.fold_left (fun a s -> a + String.length s) 0 (digest o))
        ~dt
        ~matches:(digest o = digest oracle)
  | "f2" ->
      let run m = Distpipe.run_f2 m ~domains:!shards ~filters:3 ~items:!items () in
      let o, dt = timed (fun () -> run mode) in
      let oracle = run Cluster.Deterministic in
      report ~consumed:o.Distpipe.consumed
        ~bytes:(String.length o.Distpipe.stream)
        ~dt
        ~matches:(o.Distpipe.stream = oracle.Distpipe.stream)
  | "f4" ->
      let run m = Distpipe.run_f4 m ~domains:!shards ~items:!items () in
      let o, dt = timed (fun () -> run mode) in
      let oracle = run Cluster.Deterministic in
      List.iter print_endline o.Distpipe.terminal;
      report
        ~consumed:(List.length o.Distpipe.terminal)
        ~bytes:
          (List.fold_left (fun a l -> a + String.length l) 0 o.Distpipe.terminal)
        ~dt
        ~matches:
          (o.Distpipe.terminal = oracle.Distpipe.terminal
          && o.Distpipe.reports = oracle.Distpipe.reports)
  | _ -> usage ()
