(* edensh: a shell over the Eden transput simulation.

   Pipelines are elaborated into Ejects under the chosen transput
   discipline, run on the discrete-event kernel, and their output (and
   any report windows) printed.  The environment persists across lines
   of a session, so `lines a b | out /f` followed by `file /f | terminal`
   behaves like a real file system. *)

module Shell = Eden_shell.Shell
module Fs = Eden_fs.Unix_fs
module T = Eden_transput

let demo_files =
  [
    ( "/usr/demo/prog.f",
      "C     A FORTRAN program with comments\n\
       \      REAL X\n\
       C     initialise\n\
       \      X = 1.0\n\
       \      PRINT *, X\n\
       C     end\n\
       \      END\n" );
    ( "/usr/demo/poem.txt",
      "the quick brown fox\njumps over\nthe lazy dog\n" );
    ( "/etc/motd", "welcome to eden\nasymmetric streams ahead\n" );
  ]

let make_env () =
  let env = Shell.make_env () in
  List.iter
    (fun (path, content) ->
      Fs.mkdir_p env.Shell.fs (Filename.dirname path);
      Fs.write_file env.Shell.fs path content)
    demo_files;
  env

let discipline_of_string = function
  | "ro" | "read-only" -> Ok T.Pipeline.Read_only
  | "wo" | "write-only" -> Ok T.Pipeline.Write_only
  | "conv" | "conventional" -> Ok T.Pipeline.Conventional
  | s -> Error (Printf.sprintf "unknown discipline %S (ro | wo | conv)" s)

let print_outcome ~show_meter o =
  List.iter print_endline o.Shell.rendered;
  List.iter
    (fun (name, lines) ->
      Printf.printf "--- window %s ---\n" name;
      List.iter print_endline lines)
    o.Shell.windows;
  if show_meter then
    Printf.printf "[%d invocations, %d ejects]\n" o.Shell.invocations o.Shell.entities

module K = Eden_kernel.Kernel
module Obs = Eden_obs.Obs

(* `trace`: the kernel's bounded event ring for the last pipeline. *)
let print_trace kernel = List.iter print_endline (Shell.render_trace kernel)

(* `stats`: cumulative meters, histograms, flow meters and span counts
   for the whole session. *)
let print_stats kernel = List.iter print_endline (Shell.render_stats kernel)

(* `tenants`: per-namespace violation counters and credit gauges. *)
let print_tenants kernel =
  match Shell.render_tenants kernel with
  | [] -> print_endline "no tenant namespaces installed"
  | lines -> List.iter print_endline lines

let run_line env ~discipline ~show_meter line =
  let kernel = env.Shell.kernel in
  match String.trim line with
  | "" -> true
  | "exit" | "quit" -> false
  | "help" ->
      Printf.printf
        "pipeline: source | filter ... | sink       (stage 2> window for reports)\n\
         sources:  lines w..., count n [prefix], file /path, date n, random n\n\
         sinks:    terminal [rate], null, out /path, printer [rate]\n\
         filters:  %s\n\
         builtins: trace (last run's event ring), stats (session meters),\n\
         \          tenants (per-namespace violation meters)\n"
        (String.concat ", " Eden_filters.Catalog.names);
      true
  | "trace" ->
      print_trace kernel;
      true
  | "stats" ->
      print_stats kernel;
      true
  | "tenants" ->
      print_tenants kernel;
      true
  | line ->
      K.Trace.clear kernel;
      (match Shell.run env ~discipline line with
      | Ok o -> print_outcome ~show_meter o
      | Error msg -> Printf.printf "error: %s\n" msg);
      true

open Cmdliner

let discipline_arg =
  let parse s = Result.map_error (fun m -> `Msg m) (discipline_of_string s) in
  let print ppf d = Format.pp_print_string ppf (T.Pipeline.discipline_name d) in
  Arg.(
    value
    & opt (conv (parse, print)) T.Pipeline.Read_only
    & info [ "d"; "discipline" ] ~docv:"DISCIPLINE"
        ~doc:"Transput discipline: ro (read-only), wo (write-only) or conv (conventional).")

let command_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "c"; "command" ] ~docv:"PIPELINE" ~doc:"Run one pipeline and exit.")

let script_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"SCRIPT" ~doc:"Run pipelines from a host file, one per line.")

let meter_arg =
  Arg.(value & flag & info [ "m"; "meter" ] ~doc:"Print invocation and Eject counts after each run.")

let trace_arg =
  Arg.(value & flag & info [ "t"; "trace" ] ~doc:"Print the kernel's event trace after each run.")

let main discipline command script show_meter show_trace =
  let env = make_env () in
  let kernel = env.Shell.kernel in
  (* Tracing and spans are on by default: both live in bounded rings, so
     an interactive session can always ask `trace`/`stats` after the
     fact without having opted in up front. *)
  K.Trace.enable kernel;
  Obs.enable_spans (K.obs kernel);
  let run_and_trace line =
    let keep_going = run_line env ~discipline ~show_meter line in
    if show_trace then print_trace kernel;
    keep_going
  in
  match command, script with
  | Some line, _ -> ignore (run_and_trace line)
  | None, Some path ->
      let ic = open_in path in
      let rec go () =
        match input_line ic with
        | exception End_of_file -> close_in ic
        | line ->
            let t = String.trim line in
            if t <> "" && not (String.length t > 0 && t.[0] = '#') then begin
              Printf.printf "eden> %s\n" t;
              ignore (run_and_trace t)
            end;
            go ()
      in
      go ()
  | None, None ->
      Printf.printf
        "edensh — asymmetric stream transput (%s discipline). Type 'help' or 'exit'.\n"
        (T.Pipeline.discipline_name discipline);
      let rec loop () =
        print_string "eden> ";
        match read_line () with
        | exception End_of_file -> ()
        | line -> if run_and_trace line then loop ()
      in
      loop ()

let cmd =
  let doc = "a shell over the Eden asymmetric stream transput simulation" in
  Cmd.v
    (Cmd.info "edensh" ~doc)
    Term.(const main $ discipline_arg $ command_arg $ script_arg $ meter_arg $ trace_arg)

let () = exit (Cmd.eval cmd)
