(* Benchmark entry point.

   With no argument: every count/virtual-time experiment (Figures 1-4,
   Tables 1-6 of DESIGN.md) followed by the Bechamel wall-clock
   microbenchmarks.  With an argument: just that experiment
   (fig1..fig4, table1..table6, bechamel). *)

open Bechamel
open Toolkit
open Eden_kernel
module T = Eden_transput

(* --- Bechamel wall-clock half of T5 --------------------------------- *)

(* One simulated invocation round trip, including scheduler and network
   machinery. *)
let bench_invocation () =
  let k = Kernel.create () in
  let echo =
    Kernel.create_eject k ~type_name:"echo" (fun _ctx ~passive:_ -> [ ("Echo", Fun.id) ])
  in
  Staged.stage (fun () ->
      Kernel.run_driver k (fun ctx -> ignore (Kernel.call ctx echo ~op:"Echo" Value.Unit)))

(* One intra-Eject channel pass between two fibers. *)
let bench_chan_pass () =
  Staged.stage (fun () ->
      let s = Eden_sched.Sched.create () in
      let ch = Eden_sched.Chan.create ~capacity:1 in
      ignore (Eden_sched.Sched.spawn s (fun () -> Eden_sched.Chan.put ch 42));
      ignore (Eden_sched.Sched.spawn s (fun () -> ignore (Eden_sched.Chan.get ch)));
      Eden_sched.Sched.run s)

(* A whole small pipeline per discipline: the wall-clock cost of
   regenerating a table row. *)
let bench_discipline discipline () =
  Staged.stage (fun () ->
      let k = Kernel.create () in
      let rest = ref (List.init 16 (fun i -> Value.Int i)) in
      let gen () =
        match !rest with
        | [] -> None
        | x :: tl ->
            rest := tl;
            Some x
      in
      let p =
        T.Pipeline.build k discipline ~gen
          ~filters:[ T.Transform.identity; T.Transform.identity ]
          ~consume:ignore
      in
      Kernel.run_driver k (fun _ -> T.Pipeline.run p))

let bechamel_tests =
  Test.make_grouped ~name:"eden" ~fmt:"%s %s"
    [
      Test.make ~name:"invocation round trip (simulated)" (bench_invocation ());
      Test.make ~name:"intra-eject chan pass" (bench_chan_pass ());
      Test.make ~name:"pipeline 16x2 read-only" (bench_discipline T.Pipeline.Read_only ());
      Test.make ~name:"pipeline 16x2 write-only" (bench_discipline T.Pipeline.Write_only ());
      Test.make ~name:"pipeline 16x2 conventional"
        (bench_discipline T.Pipeline.Conventional ());
    ]

let run_bechamel () =
  print_newline ();
  print_endline "T5 (wall-clock)  Bechamel microbenchmarks of the simulator machinery";
  print_endline "=====================================================================";
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] bechamel_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let tbl =
    Eden_util.Table.create ~title:"nanoseconds per run (OLS on monotonic clock)"
      ~columns:[ ("benchmark", Eden_util.Table.Left); ("ns/run", Eden_util.Table.Right) ]
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | Some [] | None -> "n/a"
      in
      Eden_util.Table.add_row tbl [ name; est ])
    (List.sort compare rows);
  Eden_util.Table.print tbl

let () =
  let experiments =
    [
      ("fig1", Experiments.fig1);
      ("fig2", Experiments.fig2);
      ("fig3", Experiments.fig3);
      ("fig4", Experiments.fig4);
      ("table1", Experiments.table1);
      ("table2", Experiments.table2);
      ("table3", Experiments.table3);
      ("table4", Experiments.table4);
      ("table5", Experiments.table5);
      ("table6", Experiments.table6);
      ("ablation", Experiments.ablation);
      ("r1", Experiments.r1);
      ("b1", fun () -> Experiments.b1 ());
      ("e1", fun () -> Experiments.e1 ());
      ("c1", fun () -> Experiments.c1 ());
      ("w1", fun () -> Experiments.w1 ());
      ("a1", fun () -> Experiments.a1 ());
      ("b2", fun () -> Experiments.b2 ());
      ("s1", fun () -> Experiments.s1 ());
      ("quick", Experiments.quick);
      ("smoke", Experiments.smoke);
      ("p1", Experiments.p1);
      ("bechamel", run_bechamel);
    ]
  in
  match Sys.argv with
  | [| _ |] ->
      Experiments.all ();
      run_bechamel ()
  | [| _; name |] -> (
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
  | _ ->
      prerr_endline "usage: main.exe [experiment]";
      exit 1
