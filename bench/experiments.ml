(* The reproduction harness: one experiment per figure/table of
   DESIGN.md.  Each prints the measured counts next to the paper's
   predicted values.  Counts are exact (the kernel meters every
   invocation); virtual times come from the discrete-event clock. *)

open Eden_kernel
module T = Eden_transput
module Table = Eden_util.Table
module Cat = Eden_filters.Catalog
module Report = Eden_filters.Report
module Dev = Eden_devices.Devices
module Fs = Eden_fs.Unix_fs
module Fse = Eden_fs.Fs_eject

let vstrs = List.map (fun s -> Value.Str s)

let list_gen items =
  let rest = ref items in
  fun () ->
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some x

let doc n = List.init n (fun i -> Printf.sprintf "line-%03d the quick brown fox" i)

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* --- Observability tables ------------------------------------------- *)

module Obs = Eden_obs.Obs

(* Every histogram the kernel's collector accumulated during the
   experiment: round-trip latency per op, network delay, message size. *)
let histogram_table ?(title = "Latency / size histograms (virtual time / bytes)") k =
  match Obs.histograms (Kernel.obs k) with
  | [] -> ()
  | hs ->
      let tbl =
        Table.create ~title
          ~columns:
            [
              ("histogram", Table.Left);
              ("n", Table.Right);
              ("p50", Table.Right);
              ("p90", Table.Right);
              ("p99", Table.Right);
              ("max", Table.Right);
            ]
      in
      List.iter
        (fun (name, h) ->
          Table.add_row tbl
            [
              name;
              Table.cell_int (Obs.Histogram.count h);
              Table.cell_float ~decimals:3 (Obs.Histogram.percentile h 0.5);
              Table.cell_float ~decimals:3 (Obs.Histogram.percentile h 0.9);
              Table.cell_float ~decimals:3 (Obs.Histogram.percentile h 0.99);
              Table.cell_float ~decimals:3 (Obs.Histogram.max_value h);
            ])
        hs;
      Table.print tbl

let flow_table ?(title = "Per-stage flow meters") flows =
  match flows with
  | [] -> ()
  | flows ->
      let tbl =
        Table.create ~title
          ~columns:
            [
              ("stage", Table.Left);
              ("in", Table.Right);
              ("out", Table.Right);
              ("batches", Table.Right);
              ("max occ", Table.Right);
              ("stall in", Table.Right);
              ("stall out", Table.Right);
            ]
      in
      List.iter
        (fun (label, fl) ->
          Table.add_row tbl
            [
              label;
              Table.cell_int fl.Obs.Flow.items_in;
              Table.cell_int fl.Obs.Flow.items_out;
              Table.cell_int fl.Obs.Flow.batches;
              Table.cell_int fl.Obs.Flow.max_occupancy;
              Table.cell_float ~decimals:2 fl.Obs.Flow.stall_in;
              Table.cell_float ~decimals:2 fl.Obs.Flow.stall_out;
            ])
        flows;
      Table.print tbl

(* Run one full pipeline; return (pipeline, metered diff, makespan,
   consumed count). *)
let run_pipeline ?(n_items = 64) ?(capacity = 0) ?(batch = 1) ?(latency = 1.0) discipline
    n_filters =
  let k = Kernel.create ~latency:(Eden_net.Net.Fixed latency) () in
  let filters = List.init n_filters (fun _ -> Cat.trim_trailing) in
  let consumed = ref 0 in
  let before = Kernel.Meter.snapshot k in
  let t0 = Eden_sched.Sched.now (Kernel.sched k) in
  let p =
    T.Pipeline.build k ~capacity ~batch discipline ~gen:(list_gen (vstrs (doc n_items)))
      ~filters
      ~consume:(fun _ -> incr consumed)
  in
  Kernel.run_driver k (fun _ -> T.Pipeline.run p);
  let d = Kernel.Meter.diff (Kernel.Meter.snapshot k) before in
  let makespan = Eden_sched.Sched.now (Kernel.sched k) -. t0 in
  (p, d, makespan, !consumed)

(* ------------------------------------------------------------------ *)
(* F1 / F2: the two pipeline figures                                   *)
(* ------------------------------------------------------------------ *)

let figure_experiment ~id ~discipline ~caption =
  let n_filters = 3 and n_items = 64 in
  let p, d, _, consumed = run_pipeline discipline n_filters ~n_items in
  let pred = T.Pipeline.predict discipline ~n_filters in
  let tbl =
    Table.create ~title:caption
      ~columns:
        [ ("metric", Table.Left); ("measured", Table.Right); ("paper", Table.Right) ]
  in
  Table.add_rows tbl
    [
      [ "data items end to end"; Table.cell_int consumed; Table.cell_int n_items ];
      [
        "entities (Ejects incl. pipes)";
        Table.cell_int (T.Pipeline.entity_count p);
        Table.cell_int pred.T.Pipeline.entities;
      ];
      [
        "passive buffer Ejects";
        Table.cell_int (List.length p.T.Pipeline.pipes);
        Table.cell_int
          (match discipline with T.Pipeline.Conventional -> n_filters + 1 | _ -> 0);
      ];
      [ "invocations (total)"; Table.cell_int d.Kernel.Meter.invocations; "-" ];
      [
        "invocations per datum";
        Table.cell_float (float_of_int d.Kernel.Meter.invocations /. float_of_int n_items);
        Table.cell_int pred.T.Pipeline.invocations_per_datum;
      ];
    ];
  Table.print tbl;
  histogram_table p.T.Pipeline.kernel;
  flow_table p.T.Pipeline.flows;
  ignore id

let fig1 () =
  section "F1  Figure 1: a pipeline in Unix (conventional discipline)";
  print_endline
    "Three filters performing active input AND active output, with a kernel\n\
     pipe (passive buffer) interposed between every adjacent pair (2n+2\n\
     invocations per datum, n+1 pipes).";
  figure_experiment ~id:"fig1" ~discipline:T.Pipeline.Conventional
    ~caption:"Figure 1 (conventional): n=3 filters, 64 lines"

let fig2 () =
  section "F2  Figure 2: the same pipeline in Eden with read-only transput";
  print_endline
    "The same three transformations; filters perform active input and passive\n\
     output, the sink pumps.  n+2 Ejects, n+1 invocations per datum, no\n\
     passive buffers.";
  figure_experiment ~id:"fig2" ~discipline:T.Pipeline.Read_only
    ~caption:"Figure 2 (read-only): n=3 filters, 64 lines"

(* ------------------------------------------------------------------ *)
(* F3 / F4: report streams                                             *)
(* ------------------------------------------------------------------ *)

let preview label lines =
  Printf.printf "%s (%d lines):\n" label (List.length lines);
  List.iteri (fun i l -> if i < 4 then Printf.printf "    %s\n" l) lines;
  if List.length lines > 4 then Printf.printf "    ... (%d more)\n" (List.length lines - 4)

let fig3 () =
  section "F3  Figure 3: write-only pipeline with Report streams";
  let k = Kernel.create () in
  let before = Kernel.Meter.snapshot k in
  let term = Dev.terminal_wo k () in
  let window = Dev.report_window_wo k ~writers:2 () in
  let f3 = T.Stage.filter_wo k ~name:"F3" ~downstream:term.Dev.uid Cat.upcase in
  let f2 = T.Stage.filter_wo k ~name:"F2" ~downstream:f3 (Cat.grep_v "drop") in
  let f1 =
    Report.filter_wo k ~name:"F1" ~downstream:f2 ~report_to:window.Dev.uid
      (Report.with_progress ~every:4 ~label:"F1" T.Transform.identity)
  in
  let src =
    Report.source_wo k ~name:"source" ~downstream:f1 ~report_to:window.Dev.uid ~label:"source"
      (list_gen (vstrs (doc 16 @ [ "drop this line" ])))
  in
  Kernel.poke k src;
  Kernel.run k;
  let d = Kernel.Meter.diff (Kernel.Meter.snapshot k) before in
  preview "terminal" (term.Dev.lines ());
  preview "report window (pushed to, fan-in)" (window.Dev.lines ());
  let tbl =
    Table.create ~title:"Figure 3 (write-only + reports)"
      ~columns:[ ("metric", Table.Left); ("value", Table.Right) ]
  in
  Table.add_rows tbl
    [
      [ "main-stream lines at terminal"; Table.cell_int (List.length (term.Dev.lines ())) ];
      [ "report lines at window"; Table.cell_int (List.length (window.Dev.lines ())) ];
      [ "invocations (total)"; Table.cell_int d.Kernel.Meter.invocations ];
      [ "Deposit invocations"; Table.cell_int d.Kernel.Meter.replies ];
    ];
  Table.print tbl

let fig4 () =
  section "F4  Figure 4: the same topology, read-only with channel identifiers";
  let k = Kernel.create () in
  let before = Kernel.Meter.snapshot k in
  let src =
    Report.source_ro k ~name:"source" ~label:"source"
      (list_gen (vstrs (doc 16 @ [ "drop this line" ])))
  in
  let f1 =
    Report.filter_ro k ~name:"F1" ~upstream:src
      (Report.with_progress ~every:4 ~label:"F1" T.Transform.identity)
  in
  let f2 = T.Stage.filter_ro k ~name:"F2" ~upstream:f1 (Cat.grep_v "drop") in
  let f3 = T.Stage.filter_ro k ~name:"F3" ~upstream:f2 Cat.upcase in
  let term = Dev.terminal_ro k ~upstream:f3 () in
  let window =
    Dev.report_window_ro k
      ~watch:[ ("source", src, T.Channel.report); ("F1", f1, T.Channel.report) ]
      ()
  in
  Kernel.poke k term.Dev.uid;
  Kernel.poke k window.Dev.uid;
  Kernel.run k;
  let d = Kernel.Meter.diff (Kernel.Meter.snapshot k) before in
  preview "terminal (Read(Output) requests)" (term.Dev.lines ());
  preview "report window (Read(ReportStream) requests)" (window.Dev.lines ());
  let tbl =
    Table.create ~title:"Figure 4 (read-only + channel identifiers)"
      ~columns:[ ("metric", Table.Left); ("value", Table.Right) ]
  in
  Table.add_rows tbl
    [
      [ "main-stream lines at terminal"; Table.cell_int (List.length (term.Dev.lines ())) ];
      [ "report lines at window"; Table.cell_int (List.length (window.Dev.lines ())) ];
      [ "invocations (total)"; Table.cell_int d.Kernel.Meter.invocations ];
    ];
  Table.print tbl

(* ------------------------------------------------------------------ *)
(* T1: the invocation-count law                                        *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "T1  Invocations per datum vs pipeline length (the paper's central claim)";
  let n_items = 64 in
  let ns = [ 1; 2; 4; 8; 16; 32 ] in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Invocations per datum over %d items (measured | paper's formula)" n_items)
      ~columns:
        [
          ("n filters", Table.Right);
          ("read-only", Table.Right);
          ("(n+1)", Table.Right);
          ("write-only", Table.Right);
          ("(n+1) ", Table.Right);
          ("conventional", Table.Right);
          ("(2n+2)", Table.Right);
          ("conv/ro", Table.Right);
        ]
  in
  List.iter
    (fun n ->
      let measure d =
        let _, m, _, _ = run_pipeline d n ~n_items in
        float_of_int m.Kernel.Meter.invocations /. float_of_int n_items
      in
      let ro = measure T.Pipeline.Read_only in
      let wo = measure T.Pipeline.Write_only in
      let cv = measure T.Pipeline.Conventional in
      Table.add_row tbl
        [
          Table.cell_int n;
          Table.cell_float ro;
          Table.cell_int (n + 1);
          Table.cell_float wo;
          Table.cell_int (n + 1);
          Table.cell_float cv;
          Table.cell_int ((2 * n) + 2);
          Table.cell_ratio (cv /. ro);
        ])
    ns;
  Table.print tbl;
  let tbl2 =
    Table.create ~title:"Entities (Ejects) per pipeline (measured = predicted exactly)"
      ~columns:
        [
          ("n filters", Table.Right);
          ("read-only", Table.Right);
          ("write-only", Table.Right);
          ("conventional", Table.Right);
          ("of which pipes", Table.Right);
        ]
  in
  List.iter
    (fun n ->
      let entities d =
        let p, _, _, _ = run_pipeline d n ~n_items:4 in
        (T.Pipeline.entity_count p, List.length p.T.Pipeline.pipes)
      in
      let ro, _ = entities T.Pipeline.Read_only in
      let wo, _ = entities T.Pipeline.Write_only in
      let cv, pipes = entities T.Pipeline.Conventional in
      Table.add_row tbl2
        [
          Table.cell_int n; Table.cell_int ro; Table.cell_int wo; Table.cell_int cv;
          Table.cell_int pipes;
        ])
    ns;
  Table.print tbl2

(* ------------------------------------------------------------------ *)
(* T2: laziness and anticipation                                       *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "T2  Laziness (no sink, no work) and anticipation (prefetch depth)";
  (* Part 1: a pipeline with no sink moves nothing. *)
  let k = Kernel.create () in
  let generated = ref 0 in
  let gen () =
    incr generated;
    Some (Value.Str "item")
  in
  let src = T.Stage.source_ro k gen in
  let _f = T.Stage.filter_ro k ~upstream:src Cat.upcase in
  Kernel.poke k src;
  Kernel.run k;
  let snap = Kernel.Meter.snapshot k in
  let tbl =
    Table.create ~title:"No sink connected: filters are pure transformers, not pumps"
      ~columns:[ ("metric", Table.Left); ("value", Table.Right) ]
  in
  Table.add_rows tbl
    [
      [ "items generated by source"; Table.cell_int !generated ];
      [ "stream invocations"; Table.cell_int snap.Kernel.Meter.invocations ];
    ];
  Table.print tbl;
  (* Part 2: anticipation vs makespan.  A filter that computes for 0.5
     per item feeds a bursty consumer (8 items back to back, then 8.0
     idle).  With capacity 0 each burst item waits for the filter; with
     capacity >= burst size, the filter works ahead during the idle gap
     and serves the burst from buffer — §4's "read some input and
     buffer-up some output ... in this way all the Ejects in a pipeline
     can run concurrently". *)
  let burst = 8 and idle = 8.0 and compute = 0.5 and n_items = 32 in
  let run_anticipation capacity =
    let k = Kernel.create ~latency:(Eden_net.Net.Fixed 1.0) () in
    let slow_filter next emit =
      let rec go () =
        match next () with
        | Some v ->
            Eden_sched.Sched.sleep compute;
            emit v;
            go ()
        | None -> ()
      in
      go ()
    in
    let consumed = ref 0 in
    let consume _ =
      incr consumed;
      if !consumed mod burst = 0 then Eden_sched.Sched.sleep idle
    in
    let p =
      T.Pipeline.build k ~capacity T.Pipeline.Read_only
        ~gen:(list_gen (vstrs (doc n_items)))
        ~filters:[ slow_filter ] ~consume
    in
    Kernel.run_driver k (fun _ -> T.Pipeline.run p);
    Eden_sched.Sched.now (Kernel.sched k)
  in
  let tbl2 =
    Table.create
      ~title:
        (Printf.sprintf
           "Anticipation: buffer k vs makespan (%d items, %.1f compute/item, bursty sink)"
           n_items compute)
      ~columns:[ ("capacity k", Table.Right); ("makespan (virtual)", Table.Right) ]
  in
  List.iter
    (fun capacity ->
      Table.add_row tbl2 [ Table.cell_int capacity; Table.cell_float (run_anticipation capacity) ])
    [ 0; 1; 2; 4; 8; 16 ];
  Table.print tbl2;
  (* Part 3: batching ablation — Transfer credit vs invocation count. *)
  let tbl3 =
    Table.create
      ~title:"Batching: items per Transfer vs invocations (32 items, 3 filters, capacity 16)"
      ~columns:
        [
          ("batch", Table.Right);
          ("invocations", Table.Right);
          ("makespan (virtual)", Table.Right);
        ]
  in
  List.iter
    (fun batch ->
      let _, d, makespan, _ =
        run_pipeline T.Pipeline.Read_only 3 ~n_items:32 ~capacity:16 ~batch
      in
      Table.add_row tbl3
        [
          Table.cell_int batch;
          Table.cell_int d.Kernel.Meter.invocations;
          Table.cell_float makespan;
        ])
    [ 1; 2; 4; 8; 16 ];
  Table.print tbl3

(* ------------------------------------------------------------------ *)
(* T3: fan-in / fan-out asymmetry                                      *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "T3  Fan-in and fan-out under each discipline (§5)";
  let tbl =
    Table.create ~title:"Each scenario moves 12 items; 'complete' = a party saw all 12"
      ~columns:
        [
          ("scenario", Table.Left);
          ("parties", Table.Right);
          ("items seen", Table.Left);
          ("verdict", Table.Left);
        ]
  in
  (* Read-only fan-in: one sink, m sources. *)
  List.iter
    (fun m ->
      let k = Kernel.create () in
      let sources =
        List.init m (fun i ->
            Dev.text_source k (List.init (12 / m) (fun j -> Printf.sprintf "s%d-%d" i j)))
      in
      let seen = ref 0 in
      Kernel.run_driver k (fun ctx ->
          List.iter
            (fun s -> T.Pull.iter (fun _ -> incr seen) (T.Pull.connect ctx s))
            sources);
      Table.add_row tbl
        [
          Printf.sprintf "read-only fan-in (m=%d sources)" m;
          Table.cell_int m;
          Printf.sprintf "%d/12 at the one sink" !seen;
          (if !seen = 12 then "works" else "BROKEN");
        ])
    [ 2; 4 ];
  (* Read-only naive fan-out: two sinks share one channel. *)
  let k = Kernel.create () in
  let src = Dev.text_source k (List.init 12 (fun i -> Printf.sprintf "x%d" i)) in
  let n1 = ref 0 and n2 = ref 0 in
  let mk n = T.Stage.sink_ro k ~upstream:src (fun _ -> incr n) in
  let s1 = mk n1 and s2 = mk n2 in
  Kernel.poke k s1;
  Kernel.poke k s2;
  Kernel.run k;
  Table.add_row tbl
    [
      "read-only naive fan-out (2 readers, 1 channel)";
      "2";
      Printf.sprintf "%d + %d (items stolen)" !n1 !n2;
      (if !n1 < 12 && !n2 < 12 then "impossible, as the paper argues" else "unexpected");
    ];
  (* Read-only fan-out via channel identifiers: source duplicates onto
     two channels. *)
  let k = Kernel.create () in
  let src =
    T.Stage.custom k ~name:"two-channel-source" (fun ctx ~passive:_ ->
        let port = T.Port.create () in
        let a = T.Port.add_channel port ~capacity:12 (T.Channel.Num 0) in
        let b = T.Port.add_channel port ~capacity:12 (T.Channel.Num 1) in
        Kernel.spawn_worker ctx (fun () ->
            for i = 0 to 11 do
              let v = Value.Str (Printf.sprintf "x%d" i) in
              T.Port.write a v;
              T.Port.write b v
            done;
            T.Port.close a;
            T.Port.close b);
        T.Port.handlers port)
  in
  let n1 = ref 0 and n2 = ref 0 in
  let s1 = T.Stage.sink_ro k ~upstream:src ~upstream_channel:(T.Channel.Num 0) (fun _ -> incr n1) in
  let s2 = T.Stage.sink_ro k ~upstream:src ~upstream_channel:(T.Channel.Num 1) (fun _ -> incr n2) in
  Kernel.poke k s1;
  Kernel.poke k s2;
  Kernel.run k;
  Table.add_row tbl
    [
      "read-only fan-out via channel ids";
      "2";
      Printf.sprintf "%d and %d" !n1 !n2;
      (if !n1 = 12 && !n2 = 12 then "works (the paper's fix)" else "BROKEN");
    ];
  (* Write-only fan-out. *)
  let k = Kernel.create () in
  let c1 = ref 0 and c2 = ref 0 in
  let k1 = T.Stage.sink_wo k (fun _ -> incr c1) in
  let k2 = T.Stage.sink_wo k (fun _ -> incr c2) in
  let src =
    T.Stage.custom k ~name:"fanout-source" (fun ctx ~passive:_ ->
        Kernel.spawn_worker ctx (fun () ->
            let p1 = T.Push.connect ctx k1 and p2 = T.Push.connect ctx k2 in
            for i = 0 to 11 do
              let v = Value.Str (string_of_int i) in
              T.Push.write p1 v;
              T.Push.write p2 v
            done;
            T.Push.close p1;
            T.Push.close p2);
        [])
  in
  Kernel.poke k src;
  Kernel.run k;
  Table.add_row tbl
    [
      "write-only fan-out (2 sinks)";
      "2";
      Printf.sprintf "%d and %d" !c1 !c2;
      (if !c1 = 12 && !c2 = 12 then "works" else "BROKEN");
    ];
  (* Write-only fan-in: two pushers into one sink merge anonymously. *)
  let k = Kernel.create () in
  let merged = ref 0 in
  let sink = T.Stage.custom k ~name:"merge-sink" (fun _ctx ~passive:_ ->
      let remaining = ref 2 in
      [
        ( T.Proto.deposit_op,
          fun arg ->
            let _, eos, items = T.Proto.parse_deposit_request arg in
            merged := !merged + List.length items;
            if eos then decr remaining;
            ignore !remaining;
            Value.Unit );
      ])
  in
  let mk_src i =
    T.Stage.source_wo k ~downstream:sink
      (list_gen (List.init 6 (fun j -> Value.Str (Printf.sprintf "s%d-%d" i j))))
  in
  let sa = mk_src 1 and sb = mk_src 2 in
  Kernel.poke k sa;
  Kernel.poke k sb;
  Kernel.run k;
  Table.add_row tbl
    [
      "write-only fan-in (2 sources, merged)";
      "2";
      Printf.sprintf "%d/12 at the one sink" !merged;
      (if !merged = 12 then "works (sources indistinguishable)" else "BROKEN");
    ];
  Table.print tbl

(* ------------------------------------------------------------------ *)
(* T4: channel identifier security                                     *)
(* ------------------------------------------------------------------ *)

let table4 () =
  section "T4  Integer vs capability channel identifiers (§5 security argument)";
  (* A source with a public stream and a private stream, under both
     naming schemes.  The adversary knows the source's UID and tries to
     read the private stream. *)
  let run_scheme ~capability =
    let k = Kernel.create () in
    let private_chan = ref T.Channel.output in
    let src =
      T.Stage.custom k ~name:"source" (fun ctx ~passive:_ ->
          let port = T.Port.create () in
          let chan =
            if capability then T.Channel.Cap (Kernel.mint ctx) else T.Channel.Num 1
          in
          private_chan := chan;
          let pub = T.Port.add_channel port ~capacity:4 (T.Channel.Num 0) in
          let priv = T.Port.add_channel port ~capacity:4 chan in
          Kernel.spawn_worker ctx (fun () ->
              T.Port.write pub (Value.Str "public data");
              T.Port.close pub;
              T.Port.write priv (Value.Str "PRIVATE data");
              T.Port.close priv);
          ( "GetPrivateChannel",
            fun _ -> T.Channel.to_value chan )
          :: T.Port.handlers port)
    in
    let setup_invocations = ref 0 in
    let breach = ref false in
    let legit_ok = ref false in
    let before = Kernel.Meter.snapshot k in
    Kernel.run_driver k (fun ctx ->
        (* Legitimate consumer: obtains the channel id through the
           sanctioned route (costs one invocation under both schemes;
           under the integer scheme it could come from documentation
           for free). *)
        let chan =
          if capability then
            T.Channel.of_value (Kernel.call ctx src ~op:"GetPrivateChannel" Value.Unit)
          else T.Channel.Num 1
        in
        setup_invocations :=
          (Kernel.Meter.snapshot k).Kernel.Meter.invocations - before.Kernel.Meter.invocations;
        let pull = T.Pull.connect ctx ~channel:chan src in
        (match T.Pull.read pull with Some _ -> legit_ok := true | None -> ());
        (* Adversary: guesses small integers (and cannot guess a UID). *)
        List.iter
          (fun g ->
            if not (T.Channel.equal g chan) || not capability then
              match
                Kernel.invoke ctx src ~op:T.Proto.transfer_op
                  (T.Proto.transfer_request g ~credit:1)
              with
              | Ok _ when T.Channel.equal g !private_chan -> breach := true
              | Ok _ | Error _ -> ())
          [ T.Channel.Num 1; T.Channel.Num 2; T.Channel.Num 3 ]);
    (!setup_invocations, !legit_ok, !breach)
  in
  let int_setup, int_ok, int_breach = run_scheme ~capability:false in
  let cap_setup, cap_ok, cap_breach = run_scheme ~capability:true in
  let tbl =
    Table.create ~title:"Channel naming schemes"
      ~columns:
        [
          ("scheme", Table.Left);
          ("setup invocations", Table.Right);
          ("legitimate read", Table.Left);
          ("forgery attempt", Table.Left);
        ]
  in
  Table.add_rows tbl
    [
      [
        "integer identifiers";
        Table.cell_int int_setup;
        (if int_ok then "ok" else "FAILED");
        (if int_breach then "SUCCEEDS (dishonest reader sees private data)" else "blocked?");
      ];
      [
        "capability identifiers";
        Table.cell_int cap_setup;
        (if cap_ok then "ok" else "FAILED");
        (if cap_breach then "BREACH" else "refused (UIDs are unforgeable)");
      ];
    ];
  Table.print tbl

(* ------------------------------------------------------------------ *)
(* T5: cost model (virtual time); wall-clock half lives in main.ml     *)
(* ------------------------------------------------------------------ *)

let table5 () =
  section "T5  Invocation vs intra-Eject communication (virtual-time cost model)";
  let k = Kernel.create ~latency:(Eden_net.Net.Fixed 1.0) ~nodes:[ "a"; "b" ] () in
  let nodes = Kernel.nodes k in
  let echo node =
    Kernel.create_eject k ~node ~type_name:"echo" (fun _ctx ~passive:_ -> [ ("Echo", Fun.id) ])
  in
  let local = echo (List.nth nodes 0) in
  let remote = echo (List.nth nodes 1) in
  let rtt target =
    let t = ref 0.0 in
    Kernel.run_driver k (fun ctx ->
        let t0 = Eden_sched.Sched.time () in
        for _ = 1 to 10 do
          ignore (Kernel.call ctx target ~op:"Echo" Value.Unit)
        done;
        t := (Eden_sched.Sched.time () -. t0) /. 10.0);
    !t
  in
  let local_rtt = rtt local in
  let remote_rtt = rtt remote in
  (* Intra-eject IPC: a worker passes 10 items through a Chan to
     another worker of the same Eject — no kernel messages at all. *)
  let ipc_time = ref 0.0 in
  let probe =
    Kernel.create_eject k ~type_name:"ipc-probe" (fun ctx ~passive:_ ->
        Kernel.spawn_worker ctx (fun () ->
            let ch = Eden_sched.Chan.create ~capacity:1 in
            let t0 = Eden_sched.Sched.time () in
            let _ = Eden_sched.Sched.spawn_inside (fun () ->
                for i = 1 to 10 do
                  Eden_sched.Chan.put ch i
                done)
            in
            for _ = 1 to 10 do
              ignore (Eden_sched.Chan.get ch)
            done;
            ipc_time := (Eden_sched.Sched.time () -. t0) /. 10.0);
        [])
  in
  Kernel.poke k probe;
  Kernel.run k;
  let tbl =
    Table.create ~title:"Virtual-time cost per interaction (link latency 1.0, local 0.1)"
      ~columns:[ ("mechanism", Table.Left); ("cost (virtual time)", Table.Right) ]
  in
  Table.add_rows tbl
    [
      [ "invocation round trip, same node"; Table.cell_float ~decimals:3 local_rtt ];
      [ "invocation round trip, across nodes"; Table.cell_float ~decimals:3 remote_rtt ];
      [ "intra-Eject channel pass (language processes)"; Table.cell_float ~decimals:3 !ipc_time ];
    ];
  Table.print tbl;
  print_endline
    "The asymmetric disciplines eliminate half the invocations by turning\n\
     buffer-to-filter hops into intra-Eject communication, whose cost is the\n\
     bottom row.";
  (* Virtual-time makespan of the three disciplines on equal work. *)
  let tbl2 =
    Table.create ~title:"Makespan moving 64 items through 4 filters (virtual time)"
      ~columns:[ ("discipline", Table.Left); ("makespan", Table.Right); ("invocations", Table.Right) ]
  in
  List.iter
    (fun d ->
      let _, m, makespan, _ = run_pipeline d 4 ~n_items:64 ~capacity:8 in
      Table.add_row tbl2
        [
          T.Pipeline.discipline_name d;
          Table.cell_float makespan;
          Table.cell_int m.Kernel.Meter.invocations;
        ])
    T.Pipeline.all_disciplines;
  Table.print tbl2

(* ------------------------------------------------------------------ *)
(* T6: the §7 bootstrap                                                *)
(* ------------------------------------------------------------------ *)

let table6 () =
  section "T6  Bootstrap transput: NewStream / UseStream over the Unix file system";
  let k = Kernel.create () in
  let fs = Fs.create () in
  let fse = Fse.create k fs in
  let input = doc 64 in
  Fs.write_file fs "/src.txt" (Eden_util.Text.join_lines input);
  let before = Kernel.Meter.snapshot k in
  Kernel.run_driver k (fun ctx ->
      Fse.copy_through ctx ~fs:fse ~src:"/src.txt" ~dst:"/dst.txt" [ Cat.upcase ]);
  let d = Kernel.Meter.diff (Kernel.Meter.snapshot k) before in
  let out = Fs.read_file fs "/dst.txt" in
  let expected =
    Eden_util.Text.join_lines (List.map String.uppercase_ascii input)
  in
  let tbl =
    Table.create ~title:"64-line file copied through an upcase filter Eject"
      ~columns:[ ("metric", Table.Left); ("value", Table.Right) ]
  in
  Table.add_rows tbl
    [
      [ "output identical to expectation"; (if out = expected then "yes" else "NO") ];
      [ "bytes written"; Table.cell_int (String.length out) ];
      [ "invocations (incl. NewStream/UseStream/Await)"; Table.cell_int d.Kernel.Meter.invocations ];
      [
        "invocations per line";
        Table.cell_float (float_of_int d.Kernel.Meter.invocations /. 64.0);
      ];
    ];
  Table.print tbl;
  let ops = Kernel.op_counts k in
  let tbl2 =
    Table.create ~title:"Invocations by operation" ~columns:[ ("op", Table.Left); ("count", Table.Right) ]
  in
  List.iter (fun (op, n) -> Table.add_row tbl2 [ op; Table.cell_int n ]) ops;
  Table.print tbl2

(* ------------------------------------------------------------------ *)
(* A0: placement ablation                                              *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "A0  Placement ablation: distributing stages across machines";
  print_endline
    "The paper argues invocation cost dominates (location-independent\n\
     invocation is pricier than a system call), so halving invocations\n\
     halves the wire time.  Spread the pipeline over m machines and watch\n\
     the conventional discipline pay double at every scale.";
  let n_items = 32 and n_filters = 3 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "Makespan (virtual), %d items, %d filters, link 1.0 / local 0.1"
           n_items n_filters)
      ~columns:
        [
          ("machines", Table.Right);
          ("read-only", Table.Right);
          ("write-only", Table.Right);
          ("conventional", Table.Right);
          ("conv/ro", Table.Right);
        ]
  in
  List.iter
    (fun machines ->
      let measure discipline =
        let k =
          Kernel.create
            ~latency:(Eden_net.Net.Fixed 1.0)
            ~nodes:(List.init machines (fun i -> Printf.sprintf "m%d" i))
            ()
        in
        let p =
          T.Pipeline.build k ~nodes:(Kernel.nodes k) ~capacity:4 discipline
            ~gen:(list_gen (vstrs (doc n_items)))
            ~filters:(List.init n_filters (fun _ -> Cat.trim_trailing))
            ~consume:ignore
        in
        Kernel.run_driver k (fun _ -> T.Pipeline.run p);
        Eden_sched.Sched.now (Kernel.sched k)
      in
      let ro = measure T.Pipeline.Read_only in
      let wo = measure T.Pipeline.Write_only in
      let cv = measure T.Pipeline.Conventional in
      Table.add_row tbl
        [
          Table.cell_int machines;
          Table.cell_float ro;
          Table.cell_float wo;
          Table.cell_float cv;
          Table.cell_ratio (cv /. ro);
        ])
    [ 1; 2; 3; 5 ];
  Table.print tbl;
  print_endline
    "Note the m=3 row: round-robin placement happens to co-locate every\n\
     pipe with the filter that reads it — the moral equivalent of Unix\n\
     keeping the pipe buffer inside an endpoint's kernel — and the gap\n\
     nearly closes.  The paper's factor-of-two applies when buffers are\n\
     genuinely interposed entities; clever placement is the conventional\n\
     world's only defence, and it cannot help the entity count."

(* ------------------------------------------------------------------ *)
(* R1: resilience chaos sweep                                          *)
(* ------------------------------------------------------------------ *)

module Net = Eden_net.Net
module Sched = Eden_sched.Sched
module Rs = Eden_resil.Rstage
module Rp = Eden_resil.Rpipeline
module Retry = Eden_resil.Retry
module Backoff = Eden_resil.Backoff
module Supervisor = Eden_resil.Supervisor

let r1 () =
  section "R1  Resilience: supervised resumable pipelines under loss and crashes";
  print_endline
    "A read-only 3-filter pipeline built from lib/resil: seq-stamped\n\
     Transfers, per-stage checkpoints, retried invocations, and a\n\
     supervisor reactivating crashed stages.  Each cell runs several\n\
     seeds; 'completed' counts runs that finished before the deadline\n\
     WITH output identical to the fault-free run.  Makespan is virtual\n\
     time at sink completion, averaged over completed runs.";
  let n_items = 48 and batch = 4 and deadline = 5000.0 in
  let gen i = if i < n_items then Some (Value.Int i) else None in
  let filters =
    [
      Rs.pure_map (fun v -> Value.Int (Value.to_int v + 1));
      Rs.pure_filter (fun v -> Value.to_int v mod 3 <> 0);
      Rs.pure_map (fun v -> Value.Int (Value.to_int v * 2));
    ]
  in
  let expected =
    List.init n_items (fun i -> i + 1)
    |> List.filter (fun x -> x mod 3 <> 0)
    |> List.map (fun x -> Value.Int (x * 2))
  in
  let seeds = [ 1L; 2L; 3L ] in
  (* One chaos run; [crashes] picks (stage, time) pairs off the built
     pipeline, with crash times scaled to [ref_makespan] so they land
     mid-stream at every loss level. *)
  let run_cell ~loss ~seed ~crashes =
    (* Stages are spread over three nodes: same-node messages are exempt
       from simulated loss, so a single-node pipeline would never drop
       anything. *)
    let k = Kernel.create ~seed ~nodes:[ "a"; "b"; "c" ] () in
    Net.set_loss_probability (Kernel.net k) loss;
    let policy =
      Retry.policy ~timeout:15.0 ~max_attempts:40
        ~backoff:(Backoff.make ~base:2.0 ~cap:20.0 ())
        ()
    in
    let p =
      Rp.build k ~nodes:(Kernel.nodes k) ~batch ~policy ~seed:(Int64.add seed 7L)
        T.Pipeline.Read_only ~gen ~filters
    in
    let sup = Supervisor.create k ~policy:(Supervisor.policy ~interval:5.0 ()) () in
    Rp.supervise p sup;
    Supervisor.start sup;
    List.iter (fun (u, at) -> Rp.crash_at p u at) (crashes p);
    let makespan = ref Float.infinity and completed = ref false in
    Kernel.run_driver k (fun _ctx ->
        Rp.start p;
        completed := Rp.await_timeout p ~deadline;
        makespan := Sched.now (Kernel.sched k);
        Supervisor.stop sup);
    let ok = !completed && Rp.output p = Some expected in
    ( ok,
      !makespan,
      p.Rp.meter,
      (Kernel.Meter.snapshot k).Kernel.Meter.invocations,
      Supervisor.restarts sup )
  in
  let schedules ref_makespan =
    let frac f = ref_makespan *. f in
    [
      ("none", fun _ -> []);
      ( "filter-2 mid-stream",
        fun p -> [ (List.assoc "filter-2" p.Rp.stages, frac 0.4) ] );
      ("sink pump", fun p -> [ (List.assoc "sink" p.Rp.stages, frac 0.4) ]);
      ( "storm (3 stages)",
        fun p ->
          [
            (List.assoc "filter-1" p.Rp.stages, frac 0.25);
            (List.assoc "sink" p.Rp.stages, frac 0.45);
            (List.assoc "filter-3" p.Rp.stages, frac 0.65);
          ] );
    ]
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Chaos sweep: %d items, 3 filters, batch %d, %d seeds per cell" n_items batch
           (List.length seeds))
      ~columns:
        [
          ("loss", Table.Right);
          ("crash schedule", Table.Left);
          ("completed", Table.Right);
          ("makespan", Table.Right);
          ("overhead", Table.Right);
          ("retries", Table.Right);
          ("timeouts", Table.Right);
          ("restarts", Table.Right);
          ("invocations", Table.Right);
        ]
  in
  let baseline = ref None in
  List.iter
    (fun loss ->
      (* Reference makespan for this loss level: the no-crash cell, first
         seed.  Crash times are fractions of it. *)
      let _, ref_makespan, _, _, _ = run_cell ~loss ~seed:(List.hd seeds) ~crashes:(fun _ -> []) in
      List.iter
        (fun (label, crashes) ->
          let runs = List.map (fun seed -> run_cell ~loss ~seed ~crashes) seeds in
          let ok = List.filter (fun (c, _, _, _, _) -> c) runs in
          let avg f = match ok with
            | [] -> Float.nan
            | _ -> List.fold_left (fun a r -> a +. f r) 0.0 ok /. float_of_int (List.length ok)
          in
          let makespan = avg (fun (_, m, _, _, _) -> m) in
          let retries = avg (fun (_, _, m, _, _) -> float_of_int m.Retry.retries) in
          let timeouts = avg (fun (_, _, m, _, _) -> float_of_int m.Retry.timeouts) in
          let invocations = avg (fun (_, _, _, i, _) -> float_of_int i) in
          let restarts = avg (fun (_, _, _, _, r) -> float_of_int r) in
          if loss = 0.0 && label = "none" then baseline := Some makespan;
          let overhead =
            match !baseline with
            | Some b when Float.is_finite makespan -> Printf.sprintf "%.2fx" (makespan /. b)
            | _ -> "-"
          in
          Table.add_row tbl
            [
              Printf.sprintf "%.0f%%" (loss *. 100.0);
              label;
              Printf.sprintf "%d/%d" (List.length ok) (List.length runs);
              (if Float.is_finite makespan then Table.cell_float makespan else "-");
              overhead;
              Table.cell_float ~decimals:1 retries;
              Table.cell_float ~decimals:1 timeouts;
              Table.cell_float ~decimals:1 restarts;
              Table.cell_float ~decimals:0 invocations;
            ])
        (schedules ref_makespan))
    [ 0.0; 0.1; 0.3 ];
  Table.print tbl;
  (* The contrast row: the plain (non-resilient) pipeline under the same
     faults neither retries nor restarts — it stalls. *)
  let plain ~loss ~crash =
    let k = Kernel.create ~seed:1L ~nodes:[ "a"; "b"; "c" ] () in
    Net.set_loss_probability (Kernel.net k) loss;
    let consumed = ref 0 in
    let p =
      T.Pipeline.build k ~nodes:(Kernel.nodes k) ~batch T.Pipeline.Read_only
        ~gen:(list_gen (List.init n_items (fun i -> Value.Int i)))
        ~filters:(List.init 3 (fun _ -> T.Transform.identity))
        ~consume:(fun _ -> incr consumed)
    in
    (* Mid-stream: the fault-free multi-node run takes ~56 virtual
       seconds, so t=20 lands with items buffered in the filter. *)
    if crash then
      Sched.timer (Kernel.sched k) 20.0 (fun () -> Kernel.crash k (List.hd p.T.Pipeline.filters));
    T.Pipeline.start p;
    Sched.run (Kernel.sched k);
    let done_ = !consumed = n_items in
    let stalls =
      match T.Pipeline.diagnose p with Some d -> List.length d.T.Pipeline.stalls | None -> 0
    in
    (done_, !consumed, stalls)
  in
  let tbl2 =
    Table.create ~title:"Contrast: the plain pipeline under the same faults"
      ~columns:
        [
          ("scenario", Table.Left);
          ("completed", Table.Left);
          ("items through", Table.Right);
          ("blocked fibers at stall", Table.Right);
        ]
  in
  List.iter
    (fun (label, loss, crash) ->
      let done_, seen, stalls = plain ~loss ~crash in
      let verdict =
        if done_ then "yes"
        else if stalls > 0 then "NO (wedged)"
        else "NO (data lost silently)"
      in
      Table.add_row tbl2
        [ label; verdict; Table.cell_int seen; (if done_ then "-" else Table.cell_int stalls) ])
    [
      ("fault-free", 0.0, false);
      ("10% loss", 0.1, false);
      ("crash filter-1 at t=20", 0.0, true);
    ];
  Table.print tbl2;
  print_endline
    "The plain pipeline fails both ways: loss wedges it (no retries), and a\n\
     crashed stateless filter drops its in-flight buffer — the stream ends\n\
     but items are missing.  The resilient pipeline completes every cell\n\
     with output identical to the fault-free run; its makespan overhead is\n\
     the price of the retry timeouts that double as crash detection."

(* ------------------------------------------------------------------ *)
(* S0: observability smoke (also the CI artifact generator)            *)
(* ------------------------------------------------------------------ *)

let smoke () =
  section "S0  Smoke: observability end-to-end (spans, histograms, exports)";
  print_endline
    "The Figure-2 read-only pipeline with spans enabled, run under a root\n\
     user span.  Checks the span tree mirrors the invocation meter, then\n\
     exports the tree as JSONL and Chrome trace_event JSON to _trace/.";
  let n_filters = 3 and n_items = 64 in
  let k = Kernel.create ~latency:(Eden_net.Net.Fixed 1.0) () in
  let obs = Kernel.obs k in
  Obs.enable_spans obs;
  let consumed = ref 0 in
  let before = Kernel.Meter.snapshot k in
  let p =
    T.Pipeline.build k T.Pipeline.Read_only
      ~gen:(list_gen (vstrs (doc n_items)))
      ~filters:(List.init n_filters (fun _ -> Cat.trim_trailing))
      ~consume:(fun _ -> incr consumed)
  in
  Kernel.run_driver k (fun ctx ->
      Kernel.with_span ctx ~name:"smoke-pipeline" (fun () -> T.Pipeline.run p));
  let d = Kernel.Meter.diff (Kernel.Meter.snapshot k) before in
  let spans = Obs.spans obs @ Obs.open_spans obs in
  let invoke_spans = List.filter (fun s -> s.Obs.Span.cat = "invoke") spans in
  let parented = List.filter (fun s -> s.Obs.Span.parent <> None) invoke_spans in
  let pred = T.Pipeline.predict T.Pipeline.Read_only ~n_filters in
  (* Each of the n+1 hops issues one Transfer per datum plus one that
     returns end of stream. *)
  let predicted_total = pred.T.Pipeline.invocations_per_datum * (n_items + 1) in
  let dir = "_trace" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let jsonl_path = Filename.concat dir "smoke.trace.jsonl" in
  let chrome_path = Filename.concat dir "smoke.chrome.json" in
  Obs.Export.to_file ~path:jsonl_path (Obs.Export.spans_jsonl obs);
  Obs.Export.to_file ~path:chrome_path (Obs.Export.chrome_trace obs);
  let ok_items = !consumed = n_items in
  let ok_spans = List.length invoke_spans = d.Kernel.Meter.invocations in
  let ok_tree = List.length parented = List.length invoke_spans in
  let ok_pred = d.Kernel.Meter.invocations = predicted_total in
  let verdict b = if b then "ok" else "BROKEN" in
  let tbl =
    Table.create ~title:"Span tree vs invocation meter vs paper's formula"
      ~columns:[ ("check", Table.Left); ("value", Table.Right); ("verdict", Table.Left) ]
  in
  Table.add_rows tbl
    [
      [ "data items end to end"; Table.cell_int !consumed; verdict ok_items ];
      [ "invocations (meter)"; Table.cell_int d.Kernel.Meter.invocations; "-" ];
      [ "invoke spans recorded"; Table.cell_int (List.length invoke_spans); verdict ok_spans ];
      [ "invoke spans with a parent"; Table.cell_int (List.length parented); verdict ok_tree ];
      [ "predicted (n+1)(items+1)"; Table.cell_int predicted_total; verdict ok_pred ];
      [ "spans evicted from ring"; Table.cell_int (Obs.dropped_spans obs); verdict (Obs.dropped_spans obs = 0) ];
    ];
  Table.print tbl;
  histogram_table k;
  flow_table p.T.Pipeline.flows;
  Printf.printf "wrote %s (%d spans) and %s\n" jsonl_path (List.length spans) chrome_path;
  if not (ok_items && ok_spans && ok_tree && ok_pred) then begin
    print_endline "smoke: FAILED";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* P1: parallel runtime scaling                                        *)
(* ------------------------------------------------------------------ *)

module Par = Eden_par

let p1 () =
  section "P1  Parallel runtime: wide fan-in wall-clock scaling across domains";
  let spec = Par.Fanin.default in
  Printf.printf
    "Fan-in of %d read-only branches (%d work filters each, %d items/branch,\n\
     %d LCG rounds per item per filter).  Producing stages shard over domains\n\
     1..n-1; every sink lives on domain 0 and pulls through a cross-domain\n\
     proxy.  The deterministic mode at the same shard count is the oracle:\n\
     the parallel run must reproduce its invocation counts exactly.\n\n"
    spec.Par.Fanin.branches spec.Par.Fanin.filters spec.Par.Fanin.items
    spec.Par.Fanin.work;
  let cores = Domain.recommended_domain_count () in
  Printf.printf "host cores available: %d\n" cores;
  if cores < 4 then
    print_endline
      "WARNING: fewer than 4 cores — wall-clock speedup beyond 1 domain is\n\
       not physically possible on this host; the correctness cross-checks\n\
       below still hold.";
  print_newline ();
  let timed_parallel domains =
    (* Best of 3: domain spawn/join noise dominates small runs. *)
    let best = ref infinity and out = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let o = Par.Fanin.run Parallel ~domains spec in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      out := Some o
    done;
    (Option.get !out, !best)
  in
  let tbl =
    Table.create ~title:"Wall-clock scaling (best of 3) vs deterministic oracle"
      ~columns:
        [
          ("domains", Table.Right);
          ("wall s", Table.Right);
          ("speedup", Table.Right);
          ("invocations (par)", Table.Right);
          ("invocations (det)", Table.Right);
          ("counts match", Table.Right);
          ("cross msgs", Table.Right);
        ]
  in
  let base = ref 0.0 in
  let all_match = ref true in
  let last = ref None in
  List.iter
    (fun domains ->
      let par, wall = timed_parallel domains in
      let det = Par.Fanin.run Deterministic ~domains spec in
      if domains = 1 then base := wall;
      let ok =
        par.Par.Fanin.meter.Kernel.Meter.invocations
        = det.Par.Fanin.meter.Kernel.Meter.invocations
        && par.Par.Fanin.op_counts = det.Par.Fanin.op_counts
        && par.Par.Fanin.consumed = det.Par.Fanin.consumed
        && par.Par.Fanin.eos_clean && det.Par.Fanin.eos_clean
      in
      if not ok then all_match := false;
      if domains > 1 then last := Some par;
      Table.add_row tbl
        [
          Table.cell_int domains;
          Printf.sprintf "%.3f" wall;
          Printf.sprintf "%.2fx" (!base /. wall);
          Table.cell_int par.Par.Fanin.meter.Kernel.Meter.invocations;
          Table.cell_int det.Par.Fanin.meter.Kernel.Meter.invocations;
          (if ok then "yes" else "NO");
          Table.cell_int par.Par.Fanin.cross_messages;
        ])
    [ 1; 2; 4; 8 ];
  Table.print tbl;
  (match !last with
  | Some o ->
      let mtbl =
        Table.create ~title:"Histograms merged across shards (Histogram.merge)"
          ~columns:
            [
              ("histogram", Table.Left);
              ("samples", Table.Right);
              ("mean", Table.Right);
              ("p99", Table.Right);
            ]
      in
      List.iter
        (fun (name, h) ->
          if name = "net.delay" || String.length name >= 4 && String.sub name 0 4 = "rtt." then
            Table.add_row mtbl
              [
                name;
                Table.cell_int (Obs.Histogram.count h);
                Table.cell_float (Obs.Histogram.mean h);
                Table.cell_float (Obs.Histogram.percentile h 0.99);
              ])
        o.Par.Fanin.histograms;
      Table.print mtbl
  | None -> ());
  if not !all_match then begin
    print_endline "p1: FAILED (parallel counts diverge from deterministic oracle)";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* B1: flow control and adaptive batching                              *)
(* ------------------------------------------------------------------ *)

module Fc = Eden_flowctl.Flowctl
module Fcredit = Eden_flowctl.Credit

let b1 ?(quick = false) () =
  section "B1  Flow control: credit windows and adaptive batching on the hot path";
  print_endline
    "The Figure-2 read-only pipeline under every combination of batch size\n\
     (items per Transfer) and credit window (outstanding exchanges).  batch=1,\n\
     credit=1 is the paper's rendezvous regime and the baseline; 'adaptive'\n\
     sizes batches with the AIMD controller.  Throughput is items per unit of\n\
     virtual time; the equivalence property (test suite) guarantees every\n\
     cell produces bit-identical output.";
  let n_items = if quick then 32 else 512 in
  let n_filters = 3 in
  let run_f2 flowctl =
    let k = Kernel.create ~latency:(Eden_net.Net.Fixed 1.0) () in
    let consumed = ref 0 in
    let before = Kernel.Meter.snapshot k in
    let p =
      T.Pipeline.build k ~capacity:16 ?flowctl T.Pipeline.Read_only
        ~gen:(list_gen (List.init n_items (fun i -> Value.Int i)))
        ~filters:(List.init n_filters (fun _ -> T.Transform.identity))
        ~consume:(fun _ -> incr consumed)
    in
    Kernel.run_driver k (fun _ -> T.Pipeline.run p);
    let d = Kernel.Meter.diff (Kernel.Meter.snapshot k) before in
    let makespan = Sched.now (Kernel.sched k) in
    (k, d.Kernel.Meter.invocations, makespan, !consumed)
  in
  let batches =
    [ ("1", `Fixed 1); ("8", `Fixed 8); ("64", `Fixed 64); ("adaptive", `Adaptive) ]
  in
  let credits =
    [ ("1", Fcredit.Window 1); ("16", Fcredit.Window 16); ("inf", Fcredit.Unlimited) ]
  in
  let flowctl_of b credit =
    match b with `Fixed n -> Fc.fixed ~credit n | `Adaptive -> Fc.adaptive ~credit ()
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "F2 pipeline (%d items, %d filters, capacity 16, link latency 1.0)" n_items
           n_filters)
      ~columns:
        [
          ("batch", Table.Right);
          ("credit", Table.Right);
          ("invocations", Table.Right);
          ("inv/item", Table.Right);
          ("makespan", Table.Right);
          ("items/vtime", Table.Right);
          ("speedup", Table.Right);
        ]
  in
  let baseline = ref 0.0 in
  let speedup_64 = ref 0.0 in
  let inv_item_1 = ref 0.0 and inv_item_64 = ref 0.0 in
  let adaptive_kernel = ref None in
  List.iter
    (fun (blabel, b) ->
      List.iter
        (fun (clabel, credit) ->
          let k, invocations, makespan, consumed = run_f2 (Some (flowctl_of b credit)) in
          if consumed <> n_items then begin
            Printf.printf "b1: FAILED (batch=%s credit=%s consumed %d/%d)\n" blabel clabel
              consumed n_items;
            exit 1
          end;
          let inv_item = float_of_int invocations /. float_of_int n_items in
          let throughput = float_of_int consumed /. makespan in
          if blabel = "1" && clabel = "1" then begin
            baseline := throughput;
            inv_item_1 := inv_item
          end;
          if blabel = "64" && clabel = "16" then begin
            speedup_64 := throughput /. !baseline;
            inv_item_64 := inv_item
          end;
          if blabel = "adaptive" && clabel = "inf" then adaptive_kernel := Some k;
          Table.add_row tbl
            [
              blabel;
              clabel;
              Table.cell_int invocations;
              Table.cell_float ~decimals:2 inv_item;
              Table.cell_float ~decimals:1 makespan;
              Table.cell_float ~decimals:3 throughput;
              Printf.sprintf "%.2fx" (throughput /. !baseline);
            ])
        credits)
    batches;
  Table.print tbl;
  (match !adaptive_kernel with
  | Some k ->
      histogram_table ~title:"Round-trip histograms, adaptive batch x unlimited credit" k
  | None -> ());
  (* The Fanin workload under the same configurations.  Deterministic
     mode: adaptive trajectories depend on scheduling, so the oracle
     mode is the one where they are reproducible. *)
  let fanin_spec fc =
    {
      Par.Fanin.default with
      Par.Fanin.items = (if quick then 8 else 64);
      work = (if quick then 200 else 20_000);
      flowctl = fc;
    }
  in
  let tbl2 =
    Table.create
      ~title:
        (Printf.sprintf
           "Fanin workload, deterministic mode, 2 shards (%d branches x %d items)"
           Par.Fanin.default.Par.Fanin.branches (fanin_spec None).Par.Fanin.items)
      ~columns:
        [
          ("batch", Table.Right);
          ("credit", Table.Right);
          ("consumed", Table.Right);
          ("invocations", Table.Right);
          ("inv/item", Table.Right);
          ("cross msgs", Table.Right);
          ("eos", Table.Left);
        ]
  in
  List.iter
    (fun (blabel, b) ->
      let credit = Fcredit.Window 16 in
      let spec = fanin_spec (Some (flowctl_of b credit)) in
      let o = Par.Fanin.run Deterministic ~domains:2 spec in
      let items = spec.Par.Fanin.branches * spec.Par.Fanin.items in
      Table.add_row tbl2
        [
          blabel;
          "16";
          Table.cell_int o.Par.Fanin.consumed;
          Table.cell_int o.Par.Fanin.meter.Kernel.Meter.invocations;
          Table.cell_float ~decimals:2
            (float_of_int o.Par.Fanin.meter.Kernel.Meter.invocations /. float_of_int items);
          Table.cell_int o.Par.Fanin.cross_messages;
          (if o.Par.Fanin.eos_clean then "clean" else "BROKEN");
        ])
    batches;
  Table.print tbl2;
  Printf.printf
    "batch=64 vs batch=1 at credit=16: %.2fx items/vtime (inv/item %.2f -> %.2f)\n"
    !speedup_64 !inv_item_1 !inv_item_64;
  if !speedup_64 < 2.0 then begin
    print_endline "b1: FAILED (batch=64 did not reach 2x the rendezvous throughput)";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* C1: schedule exploration                                            *)
(* ------------------------------------------------------------------ *)

module Check = Eden_check.Check
module Cpolicy = Eden_check.Policy
module Ctrace = Eden_check.Trace
module Workloads = Eden_check.Workloads

(* How many schedules each policy needs to expose each seeded mutant,
   and how small the minimized replay comes out.  Every mutant passes
   plain FIFO — the explorer's entire value is the gap between the
   "fifo" row (0 found) and the others (3/3 within budget). *)
let c1 ?(budget = 100) () =
  section "C1  Schedule exploration: schedules-to-bug per policy, minimized replay size";
  let seed = Check.default_seed () in
  let policies = Cpolicy.Fifo :: Cpolicy.quick_matrix in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "budget=%d schedules per (policy, mutant), seed=0x%Lx" budget seed)
      ~columns:
        [
          ("policy", Table.Left);
          ("mutant", Table.Left);
          ("found", Table.Left);
          ("schedules", Table.Right);
          ("shrink runs", Table.Right);
          ("minimized picks", Table.Right);
        ]
  in
  let missed = ref [] in
  List.iter
    (fun policy ->
      List.iter
        (fun (mname, workload) ->
          let name = Printf.sprintf "c1.%s.%s" (Cpolicy.to_string policy) mname in
          let prop = workload ~mutant:true in
          match Check.explore ~budget ~policy ~seed ~name prop with
          | Check.Failed f ->
              Table.add_row tbl
                [
                  Cpolicy.to_string policy;
                  mname;
                  "yes";
                  Table.cell_int f.Check.schedule;
                  Table.cell_int f.Check.shrink_runs;
                  Table.cell_int (Ctrace.nonzero_picks f.Check.trace);
                ]
          | Check.Passed { schedules } ->
              if policy <> Cpolicy.Fifo then missed := (policy, mname) :: !missed;
              Table.add_row tbl
                [
                  Cpolicy.to_string policy;
                  mname;
                  (if policy = Cpolicy.Fifo then "no (expected)" else "NO");
                  Table.cell_int schedules;
                  "-";
                  "-";
                ])
        Workloads.mutants)
    policies;
  Table.print tbl;
  let total = List.length Cpolicy.quick_matrix * List.length Workloads.mutants in
  Printf.printf "mutation score: %d/%d across %d exploring policies\n" (total - List.length !missed)
    total
    (List.length Cpolicy.quick_matrix);
  if !missed <> [] then begin
    List.iter
      (fun (p, m) -> Printf.printf "c1: MISSED %s under %s\n" m (Cpolicy.to_string p))
      (List.rev !missed);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E1: elastic stage vs fixed fleets                                   *)
(* ------------------------------------------------------------------ *)

module Elastic = Eden_elastic.Elastic
module Rpush = Eden_resil.Rpush
module Prng = Eden_util.Prng
module Aimd = Eden_flowctl.Aimd

(* A bursty open-loop workload against one keyed stage: short bursts at
   1000x the idle arrival rate, a trickle item mid-gap so scale-to-zero
   pays its cold-start cost on camera.  Fixed fleets pin the controller
   clamp (min = max = N); the elastic row lets it breathe from a floor
   of zero.  Latency is stamped at arrival (producer side), measured at
   the sink turnstile, so queueing during scale-up is charged to the
   configuration that caused it. *)
let e1 ?(quick = false) () =
  section "E1  Elastic stage: fixed fleets vs autoscaling under bursty load";
  let nchan = 24 in
  let cost = 0.25 in
  let bursts = if quick then 2 else 6 in
  let burst_m = if quick then 24 else 48 in
  let spacing = 0.02 (* peak: one item per 0.02 vtime *)
  and gap = 20.0 (* idle: one trickle item per 20.0 -- 1000:1 *) in
  let max_n = 16 in
  let spec =
    {
      Elastic.init = Value.Int 0;
      step =
        (fun st v ->
          Sched.sleep cost;
          let s = Value.to_int st + Value.to_int v in
          (Value.Int s, [ Value.Int s ]));
    }
  in
  let classify v = Value.to_int v mod nchan in
  Printf.printf
    "%d bursts of %d items (spacing %.2f) + 1 trickle item per %.0f idle gap;\n\
     %d channels, %.2f vtime service cost per item, fleet ceiling %d.\n\n"
    bursts burst_m spacing gap nchan cost max_n;
  let run ctrl =
    let k = Kernel.create ~seed:11L () in
    let sched = Kernel.sched k in
    let sendq = Array.init nchan (fun _ -> Queue.create ()) in
    let h = Obs.Histogram.create ~lo:0.05 ~growth:1.25 () in
    let e =
      Elastic.create k ~classify ~spec
        ~on_output:(fun chan _ ->
          let t0 = Queue.pop sendq.(chan) in
          Obs.Histogram.add h (Sched.now sched -. t0))
        (Elastic.params ~tick:0.25 ~checkpoint_every:4 ~capacity_per_replica:4 ~ctrl ())
    in
    Elastic.start e;
    let total = ref 0 in
    Kernel.run_driver k (fun ctx ->
        let push = Rpush.connect ctx ~batch:8 ~prng:(Prng.create 99L) (Elastic.router e) in
        let i = ref 0 in
        let send () =
          Queue.push (Sched.now sched) sendq.(!i mod nchan);
          Rpush.write push (Value.Int !i);
          incr i
        in
        for _ = 1 to bursts do
          for _ = 1 to burst_m do
            send ();
            Sched.sleep spacing
          done;
          Rpush.flush push;
          Sched.sleep (gap /. 2.0);
          send ();
          Rpush.flush push;
          Sched.sleep (gap /. 2.0)
        done;
        total := !i;
        Rpush.close push;
        Elastic.await e);
    let makespan = Sched.now sched in
    if List.length (Elastic.outputs e |> List.concat_map snd) <> !total then begin
      Printf.printf "e1: FAILED (lost items: %d expected)\n" !total;
      exit 1
    end;
    if Elastic.violations e <> [] then begin
      List.iter (Printf.printf "e1: violation: %s\n") (Elastic.violations e);
      exit 1
    end;
    ( float_of_int !total /. makespan,
      Obs.Histogram.percentile h 0.5,
      Obs.Histogram.percentile h 0.99,
      Obs.Histogram.max_value h,
      Elastic.replica_seconds e,
      Elastic.max_live e,
      Elastic.replicas_spawned e )
  in
  let fixed n =
    Aimd.params ~min_batch:n ~max_batch:n ~increase:1 ~decrease:0.5 ~low_watermark:0.25
      ~high_watermark:0.75 ()
  in
  (* Scale-from-zero must jump, not creep: channels are sticky, so the
     width the fleet has when a burst's channels first land is the width
     that serves the burst.  increase = ceiling makes the first reaction
     tick provision the whole fleet; idle halves it back to zero. *)
  let elastic_ctrl =
    Aimd.params ~min_batch:0 ~max_batch:max_n ~increase:max_n ~decrease:0.5
      ~low_watermark:0.2 ~high_watermark:0.6 ()
  in
  let configs =
    List.map (fun n -> (Printf.sprintf "fixed %d" n, fixed n)) [ 1; 4; 16 ]
    @ [ ("elastic 0..16", elastic_ctrl) ]
  in
  let tbl =
    Table.create ~title:"Latency vs provisioning cost (virtual time)"
      ~columns:
        [
          ("fleet", Table.Left);
          ("items/vtime", Table.Right);
          ("p50 lat", Table.Right);
          ("p99 lat", Table.Right);
          ("max lat", Table.Right);
          ("replica-secs", Table.Right);
          ("max live", Table.Right);
          ("spawned", Table.Right);
        ]
  in
  let results =
    List.map
      (fun (label, ctrl) ->
        let (tput, p50, p99, mx, rs, live, spawned) as r = run ctrl in
        Table.add_row tbl
          [
            label;
            Table.cell_float ~decimals:3 tput;
            Table.cell_float ~decimals:2 p50;
            Table.cell_float ~decimals:2 p99;
            Table.cell_float ~decimals:2 mx;
            Table.cell_float ~decimals:1 rs;
            Table.cell_int live;
            Table.cell_int spawned;
          ];
        (label, r))
      configs
  in
  Table.print tbl;
  (* Acceptance: the elastic fleet must be both nearly as fast as the
     best fixed fleet (p99 within 2x) and far cheaper (at most half the
     replica-seconds of that best-p99 fixed fleet). *)
  let fixed_rows = List.filter (fun (l, _) -> l <> "elastic 0..16") results in
  let _, (_, _, best_p99, _, best_rs, _, _) =
    List.fold_left
      (fun (bl, (bt, b50, b99, bm, brs, bl_, bs)) (l, ((_, _, p99, _, _, _, _) as r)) ->
        if p99 < b99 then (l, r) else (bl, (bt, b50, b99, bm, brs, bl_, bs)))
      (List.hd fixed_rows) (List.tl fixed_rows)
  in
  let _, (_, _, el_p99, _, el_rs, _, _) =
    List.find (fun (l, _) -> l = "elastic 0..16") results
  in
  Printf.printf
    "elastic p99 %.2f vs best fixed %.2f (%.2fx); replica-seconds %.1f vs %.1f (%.2fx)\n"
    el_p99 best_p99 (el_p99 /. best_p99) el_rs best_rs (el_rs /. best_rs);
  if (not quick) && not (el_p99 <= 2.0 *. best_p99 && el_rs <= 0.5 *. best_rs) then begin
    print_endline "e1: FAILED (elastic outside the p99<=2x / cost<=0.5x envelope)";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* W1: wire transport throughput                                       *)
(* ------------------------------------------------------------------ *)

let w1 ?(quick = false) () =
  section "W1  Wire transport: throughput per transport (wall clock)";
  let domains = 3 in
  let wire tr =
    Par.Cluster.Wire { Par.Cluster.wire_transport = tr; wire_faults = None; wire_auth = None }
  in
  let modes =
    [
      ("in-process", Par.Cluster.Deterministic);
      ("unix socket", wire Eden_wire.Transport.Unix_socket);
      ("tcp loopback", wire Eden_wire.Transport.Tcp);
    ]
  in
  Printf.printf
    "Each row runs the same topology at %d shards; in-process is the\n\
     deterministic oracle, the socket rows fork one OS process per leaf\n\
     shard and move every cross-shard item through the Bin codec and\n\
     the framed transport.  MB counts the Bin-encoded bytes of the\n\
     items that reached the sinks; every row's stream must be\n\
     byte-identical to the oracle's.\n\n"
    domains;
  let spec =
    if quick then
      { Par.Fanin.default with branches = 4; filters = 1; items = 24; work = 200 }
    else { Par.Fanin.default with branches = 8; filters = 2; items = 160; work = 2_000 }
  in
  let f2_items = if quick then 48 else 400 in
  let f2_filters = 4 in
  let tbl =
    Table.create ~title:"W1: items/s and MB/s per transport (best of 3)"
      ~columns:
        [
          ("workload", Table.Left);
          ("transport", Table.Left);
          ("items", Table.Right);
          ("bytes", Table.Right);
          ("wall s", Table.Right);
          ("items/s", Table.Right);
          ("MB/s", Table.Right);
          ("stream = oracle", Table.Right);
        ]
  in
  let best_of_3 run =
    let best = ref infinity and out = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let o = run () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      out := Some o
    done;
    (Option.get !out, !best)
  in
  let row ~workload ~transport ~items ~bytes ~dt ~ok =
    [
      workload;
      transport;
      Table.cell_int items;
      Table.cell_int bytes;
      Table.cell_float ~decimals:3 dt;
      Table.cell_int (int_of_float (float_of_int items /. dt));
      Table.cell_float ~decimals:2 (float_of_int bytes /. dt /. 1e6);
      (if ok then "yes" else "NO");
    ]
  in
  let mismatch = ref false in
  (* Fan-in: wide, many cross-shard edges. *)
  let fanin_digest (o : Par.Fanin.outcome) =
    Array.map
      (fun vs -> String.concat "" (List.map Eden_wire.Bin.encode vs))
      o.Par.Fanin.per_branch
  in
  let fanin_oracle = ref [||] in
  List.iter
    (fun (name, mode) ->
      let o, dt = best_of_3 (fun () -> Par.Fanin.run mode ~domains spec) in
      let digest = fanin_digest o in
      if !fanin_oracle = [||] then fanin_oracle := digest;
      let ok = digest = !fanin_oracle in
      if not ok then mismatch := true;
      let bytes = Array.fold_left (fun a s -> a + String.length s) 0 digest in
      Table.add_row tbl
        (row ~workload:"fan-in" ~transport:name ~items:o.Par.Fanin.consumed ~bytes ~dt
           ~ok))
    modes;
  (* F2: one deep chain, every edge cross-shard. *)
  let f2_oracle = ref None in
  List.iter
    (fun (name, mode) ->
      let o, dt =
        best_of_3 (fun () ->
            Par.Distpipe.run_f2 mode ~domains ~filters:f2_filters ~items:f2_items ())
      in
      let ok =
        match !f2_oracle with
        | None ->
            f2_oracle := Some o.Par.Distpipe.stream;
            true
        | Some s -> s = o.Par.Distpipe.stream
      in
      if not ok then mismatch := true;
      Table.add_row tbl
        (row ~workload:"F2 chain" ~transport:name ~items:o.Par.Distpipe.consumed
           ~bytes:(String.length o.Par.Distpipe.stream)
           ~dt ~ok))
    modes;
  Table.print tbl;
  if !mismatch then begin
    print_endline "w1: FAILED (a transport diverged from the oracle stream)";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* A1: authenticated wire overhead                                     *)
(* ------------------------------------------------------------------ *)

let a1 ?(quick = false) () =
  section "A1  Authenticated wire: RFC-0002 three-layer overhead (wall clock)";
  let domains = 3 in
  let f2_filters = 3 in
  let n_items = if quick then 128 else 1024 in
  Printf.printf
    "The F2 chain over Unix sockets at %d shards, plain versus the\n\
     three-layer authenticated transport (community id + keyed hello/\n\
     welcome MACs at connection setup, per-connection session MACs\n\
     sealing every data frame).  'setup' rows move one item, so the\n\
     wall clock is fork + handshake; 'stream' rows move %d items and\n\
     measure the steady-state sealing cost.  Streams must stay\n\
     byte-identical to the unauthenticated run, and the batch-64\n\
     authenticated overhead must stay within 15%%.\n\n"
    domains n_items;
  let mode auth =
    Par.Cluster.Wire
      {
        Par.Cluster.wire_transport = Eden_wire.Transport.Unix_socket;
        wire_faults = None;
        wire_auth =
          (if auth then
             Some (Eden_wire.Auth.community ~id:0xEDE11L ~key:"0123456789abcdef")
           else None);
      }
  in
  (* Interleaved minimum-of-n: each run forks leaf processes, so wall
     clocks jitter by more than the 15% gate width.  The minimum over
     several repetitions is the stable floor estimator of the actual
     streaming cost, and interleaving the plain/authenticated runs
     makes slow machine phases (load spikes, frequency steps) hit both
     sides alike instead of biasing whichever ran second. *)
  let reps = if quick then 3 else 9 in
  let timed run =
    let t0 = Unix.gettimeofday () in
    let o = run () in
    (o, Unix.gettimeofday () -. t0)
  in
  let best_interleaved runs =
    let n = List.length runs in
    let best = Array.make n infinity and out = Array.make n None in
    for _ = 1 to reps do
      List.iteri
        (fun i run ->
          let o, dt = timed run in
          if dt < best.(i) then best.(i) <- dt;
          out.(i) <- Some o)
        runs
    done;
    List.init n (fun i -> (Option.get out.(i), best.(i)))
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "A1: plain vs authenticated Unix-socket wire (interleaved min of %d)"
           reps)
      ~columns:
        [
          ("phase", Table.Left);
          ("wire", Table.Left);
          ("batch", Table.Right);
          ("items", Table.Right);
          ("wall s", Table.Right);
          ("items/s", Table.Right);
          ("stream = plain", Table.Right);
        ]
  in
  let mismatch = ref false in
  let measure ~phase ~items ~batch =
    let modes = [ ("plain", false); ("authenticated", true) ] in
    let timings =
      best_interleaved
        (List.map
           (fun (_, auth) () ->
             Par.Distpipe.run_f2 (mode auth) ~domains ~filters:f2_filters ~items ~batch ())
           modes)
    in
    let oracle = ref None in
    List.map2
      (fun (name, _) (o, dt) ->
        let ok =
          match !oracle with
          | None ->
              oracle := Some o.Par.Distpipe.stream;
              true
          | Some s -> s = o.Par.Distpipe.stream
        in
        if not ok then mismatch := true;
        Table.add_row tbl
          [
            phase;
            name;
            Table.cell_int batch;
            Table.cell_int o.Par.Distpipe.consumed;
            Table.cell_float ~decimals:3 dt;
            Table.cell_int (int_of_float (float_of_int o.Par.Distpipe.consumed /. dt));
            (if ok then "yes" else "NO");
          ];
        dt)
      modes timings
  in
  let setup = measure ~phase:"setup" ~items:1 ~batch:1 in
  let b1 = measure ~phase:"stream" ~items:n_items ~batch:1 in
  let b64 = measure ~phase:"stream" ~items:n_items ~batch:64 in
  Table.print tbl;
  let overhead = function
    | [ plain; authed ] -> (authed -. plain) /. plain *. 100.0
    | _ -> nan
  in
  Printf.printf "connection setup overhead:      %+.1f%%\n" (overhead setup);
  Printf.printf "per-item overhead at batch 1:   %+.1f%%\n" (overhead b1);
  Printf.printf "per-batch overhead at batch 64: %+.1f%%  (gate: <= 15%%)\n" (overhead b64);
  if !mismatch then begin
    print_endline "a1: FAILED (authenticated stream diverged from the plain oracle)";
    exit 1
  end;
  if overhead b64 > 15.0 then begin
    print_endline "a1: FAILED (batch-64 authenticated overhead above 15%)";
    exit 1
  end

let b2 ?(quick = false) () =
  section "B2  Zero-copy data plane: MB/s per discipline and transport (wall clock)";
  let domains = 3 in
  let items = if quick then 192 else 65536 in
  Printf.printf
    "The F2 chain moves the same ~%d-line document under three disciplines:\n\
     item-at-a-time (one Str per Transfer), batch-64 (64 Strs per Transfer)\n\
     and chunked (flat byte slices under the chunked flow config, 64 KiB\n\
     cuts).  Filters are identity, as in B1: the measurement isolates the\n\
     data plane — framing, flow control, transport — not line-filter CPU\n\
     (the equivalence matrix proves the line filters byte-correct\n\
     separately).  Bytes counts the sink's output stream, which must be\n\
     identical across every cell; invocations are the simulator's count of\n\
     calls it took to move them.  The zero-copy claim is the bottom line:\n\
     chunked must beat batch-64 by at least 5x MB/s in-process.\n\n"
    items;
  let wire tr =
    Par.Cluster.Wire { Par.Cluster.wire_transport = tr; wire_faults = None; wire_auth = None }
  in
  let transports =
    [
      ("in-process", Par.Cluster.Deterministic);
      ("unix socket", wire Eden_wire.Transport.Unix_socket);
      ("tcp loopback", wire Eden_wire.Transport.Tcp);
    ]
  in
  let disciplines =
    [
      ("item-at-a-time", Par.Distpipe.Boxed, 1);
      ("batch-64", Par.Distpipe.Boxed, 64);
      ("chunked", Par.Distpipe.chunked ~cut:65536 ~chunk_bytes:65536 (), 1);
    ]
  in
  let tbl =
    Table.create ~title:"B2: F2 chain, 3 filters, 3 shards (best of 3)"
      ~columns:
        [
          ("discipline", Table.Left);
          ("transport", Table.Left);
          ("bytes", Table.Right);
          ("invocations", Table.Right);
          ("inv/MB", Table.Right);
          ("wall s", Table.Right);
          ("MB/s", Table.Right);
          ("stream = oracle", Table.Right);
        ]
  in
  let best_of_3 run =
    let best = ref infinity and out = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let o = run () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      out := Some o
    done;
    (Option.get !out, !best)
  in
  let views0 = Eden_chunk.Chunk.live_views () in
  let oracle = ref None in
  let mismatch = ref false in
  let mbps = Hashtbl.create 9 in
  List.iter
    (fun (dname, plane, batch) ->
      List.iter
        (fun (tname, mode) ->
          let o, dt =
            best_of_3 (fun () ->
                Par.Distpipe.run_f2p mode ~domains ~filters:3 ~items ~plane
                  ~filter_of:(fun _ -> T.Transform.identity)
                  ~batch ~capacity:16 ())
          in
          let bytes = String.length o.Par.Distpipe.bytes in
          let ok =
            match !oracle with
            | None ->
                oracle := Some o.Par.Distpipe.bytes;
                true
            | Some s -> s = o.Par.Distpipe.bytes
          in
          if not ok then mismatch := true;
          let mb = float_of_int bytes /. 1e6 in
          let rate = mb /. dt in
          Hashtbl.replace mbps (dname, tname) rate;
          Table.add_row tbl
            [
              dname;
              tname;
              Table.cell_int bytes;
              Table.cell_int o.Par.Distpipe.s_meter.Kernel.Meter.invocations;
              Table.cell_int
                (int_of_float
                   (float_of_int o.Par.Distpipe.s_meter.Kernel.Meter.invocations /. mb));
              Table.cell_float ~decimals:3 dt;
              Table.cell_float ~decimals:2 rate;
              (if ok then "yes" else "NO");
            ])
        transports)
    disciplines;
  Table.print tbl;
  if !mismatch then begin
    print_endline "b2: FAILED (a cell diverged from the oracle stream)";
    exit 1
  end;
  if Eden_chunk.Chunk.live_views () <> views0 then begin
    Printf.printf "b2: FAILED (chunk views leaked: %d -> %d)\n" views0
      (Eden_chunk.Chunk.live_views ());
    exit 1
  end;
  let chunked = Hashtbl.find mbps ("chunked", "in-process") in
  let batch64 = Hashtbl.find mbps ("batch-64", "in-process") in
  Printf.printf "b2: chunked/batch-64 in-process: %.1fx\n" (chunked /. batch64);
  (* The acceptance gate needs enough volume for per-invocation cost to
     dominate cluster setup; the quick row only smokes byte-identity. *)
  if (not quick) && chunked < 5.0 *. batch64 then begin
    print_endline "b2: FAILED (chunked < 5x batch-64 MB/s in-process)";
    exit 1
  end

(* --- S1: million-entity capacity ------------------------------------- *)

let s1_percentile a p =
  let s = Array.copy a in
  Array.sort Float.compare s;
  let n = Array.length s in
  if n = 0 then 0.0 else s.(min (n - 1) (int_of_float ((p *. float_of_int (n - 1)) +. 0.5)))

(* Heap bytes attributable to the block of allocations done by [f],
   after a full major cycle on both sides so floating garbage never
   counts against the entities. *)
let s1_live_delta f =
  Gc.full_major ();
  let w0 = (Gc.stat ()).Gc.live_words in
  let r = f () in
  Gc.full_major ();
  let w1 = (Gc.stat ()).Gc.live_words in
  (r, float_of_int ((w1 - w0) * 8))

let s1 ?(quick = false) () =
  section "S1  Million-entity capacity: flat stores, dormancy, wake-up latency";
  let n =
    match Option.bind (Sys.getenv_opt "EDEN_S1_N") int_of_string_opt with
    | Some n when n > 0 -> n
    | Some _ | None -> if quick then 10_000 else 1_000_000
  in
  let items_per = 4 in
  Printf.printf
    "N=%d entities (EDEN_S1_N overrides).  Dormant cost is measured live\n\
     heap delta across creation; producers are capacity-0 read-only\n\
     sources whose behaviour runs only on first activation (T2\n\
     scale-to-zero), so a dormant producer is an eject record, a slab\n\
     slot and a generator closure — no port, no worker fiber.  Wake-ups\n\
     arrive open-loop in Pareto-sized bursts (alpha 1.2: heavy-tailed)\n\
     and drain %d items each; latency is wall clock from burst arrival.\n\n"
    n items_per;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let tbl =
    Table.create
      ~title:(Printf.sprintf "S1: capacity and dormancy at N=%d" n)
      ~columns:[ ("phase", Table.Left); ("metric", Table.Left); ("value", Table.Right) ]
  in
  let row phase metric value = Table.add_row tbl [ phase; metric; value ] in
  (* Phase 1: bare ejects — the kernel store cost alone.  The behaviour
     closure is shared, so the per-entity cost is the eject record, its
     UID, the slab slot and the serial index slot. *)
  let bare_beh _ctx ~passive:_ = [ ("Echo", Fun.id) ] in
  let bare_bytes =
    let (kb, last), bytes =
      s1_live_delta (fun () ->
          let kb = Kernel.create ~seed:0x51L () in
          let last = ref None in
          for _ = 1 to n do
            last := Some (Kernel.create_eject kb ~type_name:"cell" bare_beh)
          done;
          (kb, last))
    in
    (match !last with
    | Some uid when Kernel.exists kb uid -> ()
    | _ -> fail "bare ejects: last UID does not resolve");
    bytes /. float_of_int n
  in
  row "bare ejects" "bytes/entity" (Table.cell_float ~decimals:1 bare_bytes);
  (* Phase 2: N dormant producers in one kernel. *)
  let gen_calls = ref 0 in
  let mk_gen p =
    let i = ref 0 in
    fun () ->
      incr gen_calls;
      if !i >= items_per then None
      else begin
        incr i;
        Some (Value.Str (Printf.sprintf "p%06d item %d payload" p !i))
      end
  in
  let t0 = Unix.gettimeofday () in
  let (k, srcs), prod_total =
    s1_live_delta (fun () ->
        let k = Kernel.create ~seed:0x51AB5L () in
        let srcs = Array.init n (fun p -> T.Stage.source_ro k ~capacity:0 (mk_gen p)) in
        (k, srcs))
  in
  let dt_create = Unix.gettimeofday () -. t0 in
  let prod_bytes = prod_total /. float_of_int n in
  row "dormant producers" "bytes/entity" (Table.cell_float ~decimals:1 prod_bytes);
  row "dormant producers" "create wall s" (Table.cell_float ~decimals:2 dt_create);
  row "dormant producers" "ejects live" (Table.cell_int (Kernel.Meter.snapshot k).Kernel.Meter.ejects_live);
  (* Dormancy really is free: an idle scheduler pass over the fully
     populated kernel does no invocations, no activations, no gen calls. *)
  Kernel.run_driver k (fun _ -> ());
  let m_idle = Kernel.Meter.snapshot k in
  Kernel.run_driver k (fun _ -> ());
  let idle = Kernel.Meter.diff (Kernel.Meter.snapshot k) m_idle in
  if !gen_calls <> 0 then fail "laziness violated: %d gen calls before any pull" !gen_calls;
  if idle.Kernel.Meter.invocations <> 0 || idle.Kernel.Meter.activations <> 0 then
    fail "dormancy not free: idle pass did %d invocations, %d activations"
      idle.Kernel.Meter.invocations idle.Kernel.Meter.activations;
  (* Phase 3: wake a cohort open-loop in Pareto bursts. *)
  let w = min (if quick then 2_000 else 20_000) n in
  let g = Prng.create 0xA1FAL in
  let first = Array.make w 0.0 and e2e = Array.make w 0.0 in
  let sched = Kernel.sched k in
  let m0 = Kernel.Meter.snapshot k in
  let gc0 = Gc.quick_stat () in
  let t_wake0 = Unix.gettimeofday () in
  let woken = ref 0 in
  let bursts = ref 0 in
  let burst_max = ref 0 in
  while !woken < w do
    let u = 1.0 -. Prng.float g 1.0 in
    let burst = min (w - !woken) (max 1 (int_of_float (4.0 *. (u ** (-1.0 /. 1.2))))) in
    let base = !woken in
    woken := !woken + burst;
    incr bursts;
    if burst > !burst_max then burst_max := burst;
    (* All of a burst's wakes land before any is served — open-loop
       within the burst; the driver drains to quiescence between
       bursts. *)
    Kernel.run_driver k (fun ctx ->
        for j = 0 to burst - 1 do
          let p = base + j in
          let ta = Unix.gettimeofday () in
          ignore
            (Sched.spawn sched ~name:"s1-wake" (fun () ->
                 let pull = T.Pull.connect ctx srcs.(p) in
                 let rec go n_read =
                   match T.Pull.read pull with
                   | Some _ ->
                       if n_read = 0 then first.(p) <- Unix.gettimeofday () -. ta;
                       go (n_read + 1)
                   | None ->
                       e2e.(p) <- Unix.gettimeofday () -. ta;
                       if n_read <> items_per then
                         fail "wake %d: stream had %d items, wanted %d" p n_read items_per
                 in
                 go 0))
        done)
  done;
  let dt_wake = Unix.gettimeofday () -. t_wake0 in
  let md = Kernel.Meter.diff (Kernel.Meter.snapshot k) m0 in
  let gc1 = Gc.quick_stat () in
  if !gen_calls <> w * (items_per + 1) then
    fail "gen calls after wakes: %d, wanted %d" !gen_calls (w * (items_per + 1));
  let us v = Table.cell_float ~decimals:1 (v *. 1e6) in
  row "wake-up" "cohort / bursts / max"
    (Printf.sprintf "%d / %d / %d" w !bursts !burst_max);
  row "wake-up" "p50 first-item us" (us (s1_percentile first 0.50));
  row "wake-up" "p99 first-item us" (us (s1_percentile first 0.99));
  row "wake-up" "max first-item us" (us (s1_percentile first 1.0));
  row "wake-up" "p50 end-to-end us" (us (s1_percentile e2e 0.50));
  row "wake-up" "p99 end-to-end us" (us (s1_percentile e2e 0.99));
  row "wake-up" "wakes/s"
    (Table.cell_int (int_of_float (float_of_int w /. dt_wake)));
  row "wake-up" "invocations/wake"
    (Table.cell_float ~decimals:1 (float_of_int md.Kernel.Meter.invocations /. float_of_int w));
  row "GC pacing" "minor words/wake"
    (Table.cell_int
       (int_of_float ((gc1.Gc.minor_words -. gc0.Gc.minor_words) /. float_of_int w)));
  row "GC pacing" "minor collections" (Table.cell_int (gc1.Gc.minor_collections - gc0.Gc.minor_collections));
  row "GC pacing" "major collections" (Table.cell_int (gc1.Gc.major_collections - gc0.Gc.major_collections));
  (* Phase 4: the F3/F4 window fan-in scenario — parallel chunked must
     reproduce the deterministic boxed byte streams at capacity scale. *)
  let fan_p = if quick then 200 else 2_000 in
  let run_fan mode plane =
    let t0 = Unix.gettimeofday () in
    let o =
      Par.Fanin.run_window mode ~seed:0x51FAL ~window:100 ~domains:3 ~producers:fan_p
        ~items:5 ~style:`Ro ~plane ()
    in
    (o, Unix.gettimeofday () -. t0)
  in
  let det_o, det_dt = run_fan Par.Cluster.Deterministic Par.Distpipe.Boxed in
  let par_o, par_dt =
    run_fan Par.Cluster.Parallel (Par.Distpipe.chunked ~cut:97 ())
  in
  if not det_o.Par.Fanin.w_eos_clean then fail "fan-in: deterministic EOS not clean";
  if not par_o.Par.Fanin.w_eos_clean then fail "fan-in: parallel EOS not clean";
  if par_o.Par.Fanin.w_chunk_items = 0 then fail "fan-in: chunked plane downgraded to boxed";
  if det_o.Par.Fanin.w_bytes <> par_o.Par.Fanin.w_bytes then
    fail "fan-in: parallel chunked bytes diverged from deterministic boxed";
  if det_o.Par.Fanin.w_reports <> par_o.Par.Fanin.w_reports then
    fail "fan-in: report streams diverged across runtimes";
  row "fan-in window" "producers" (Table.cell_int fan_p);
  row "fan-in window" "det boxed wall s" (Table.cell_float ~decimals:2 det_dt);
  row "fan-in window" "par chunked wall s" (Table.cell_float ~decimals:2 par_dt);
  row "fan-in window" "par == det" "yes";
  Table.print tbl;
  (* Pinned regression bounds: generous multiples of measured steady
     state (130 B bare, 282 B per dormant producer, p99 ~110 ms under
     3k-wake open-loop bursts where the tail is queueing-dominated), so
     real regressions (a pointer per entity is +8 bytes; a leaked port
     is +hundreds; a tombstoned heap turns the tail quadratic) trip
     them while CI noise does not. *)
  let bound_bare = 200.0 and bound_prod = 480.0 and bound_p99 = 0.500 in
  if bare_bytes > bound_bare then
    fail "bytes/entity (bare) %.1f exceeds pinned bound %.0f" bare_bytes bound_bare;
  if prod_bytes > bound_prod then
    fail "bytes/entity (dormant producer) %.1f exceeds pinned bound %.0f" prod_bytes
      bound_prod;
  if s1_percentile first 0.99 > bound_p99 then
    fail "p99 first-item wake %.1f ms exceeds pinned bound %.0f ms"
      (s1_percentile first 0.99 *. 1e3)
      (bound_p99 *. 1e3);
  match !failures with
  | [] -> Printf.printf "s1: PASSED (N=%d, %d wakes, fan-in %d producers)\n" n w fan_p
  | fs ->
      List.iter (fun f -> Printf.printf "s1: FAILED (%s)\n" f) (List.rev fs);
      exit 1

(* Tiny-iteration smoke over the figures and B1, cheap enough for
   `dune runtest`; exercises the full experiment code paths. *)
let quick () =
  fig1 ();
  fig2 ();
  fig3 ();
  fig4 ();
  b1 ~quick:true ();
  e1 ~quick:true ();
  c1 ();
  w1 ~quick:true ();
  a1 ~quick:true ();
  b2 ~quick:true ();
  s1 ~quick:true ()

let all () =
  smoke ();
  fig1 ();
  fig2 ();
  fig3 ();
  fig4 ();
  table1 ();
  table2 ();
  table3 ();
  table4 ();
  table5 ();
  table6 ();
  ablation ();
  r1 ();
  b1 ();
  e1 ();
  c1 ();
  w1 ();
  a1 ();
  b2 ();
  s1 ()
