(* Observability: causal spans, log-bucketed histograms, and per-stage
   flow meters for the Eden simulator.

   This library deliberately depends only on [Eden_util] so that every
   other layer (net, kernel, transput, resil, shell, bench) can feed
   it without dependency cycles.  Identifiers crossing into this
   module are plain ints and strings; the kernel owns the mapping from
   span ids to invocations and from fiber ids to Ejects. *)

module Ring = Eden_util.Ring
module Slab = Eden_util.Slab

(* ------------------------------------------------------------------ *)
(* Log-bucketed histograms                                            *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  type t = {
    lo : float; (* upper bound of the underflow bucket *)
    growth : float; (* geometric bucket growth factor *)
    log_growth : float;
    mutable counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create ?(lo = 1e-3) ?(growth = 2.0) () =
    if lo <= 0.0 then invalid_arg "Obs.Histogram.create: lo must be positive";
    if growth <= 1.0 then invalid_arg "Obs.Histogram.create: growth must be > 1";
    {
      lo;
      growth;
      log_growth = Float.log growth;
      counts = Array.make 8 0;
      n = 0;
      sum = 0.0;
      minv = infinity;
      maxv = neg_infinity;
    }

  (* Bucket 0 holds [0, lo); bucket i >= 1 holds [lo*g^(i-1), lo*g^i). *)
  let bucket_of t v =
    if Float.is_nan v || v < t.lo then 0
    else 1 + int_of_float (Float.log (v /. t.lo) /. t.log_growth)

  let bucket_upper t i = if i = 0 then t.lo else t.lo *. (t.growth ** float_of_int i)

  let ensure t i =
    let len = Array.length t.counts in
    if i >= len then begin
      let len' = max (i + 1) (2 * len) in
      let counts' = Array.make len' 0 in
      Array.blit t.counts 0 counts' 0 len;
      t.counts <- counts'
    end

  let add t v =
    let i = max 0 (bucket_of t v) in
    ensure t i;
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v

  (* Fold [src] into [into].  Bucket-exact when the two histograms share
     bucket geometry; geometry mismatch is a caller error.  Used to
     aggregate per-domain histograms after a parallel run joins. *)
  let merge ~into src =
    if into.lo <> src.lo || into.growth <> src.growth then
      invalid_arg "Obs.Histogram.merge: bucket geometry differs";
    ensure into (Array.length src.counts - 1);
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
    into.n <- into.n + src.n;
    into.sum <- into.sum +. src.sum;
    if src.minv < into.minv then into.minv <- src.minv;
    if src.maxv > into.maxv then into.maxv <- src.maxv

  let count t = t.n
  let total t = t.sum
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
  let min_value t = if t.n = 0 then 0.0 else t.minv
  let max_value t = if t.n = 0 then 0.0 else t.maxv

  (* Upper bound of the bucket containing the rank-th sample, clamped
     to the exact observed extrema so p100 is exact and small
     histograms do not over-report. *)
  let percentile t p =
    if t.n = 0 then 0.0
    else begin
      let p = Float.max 0.0 (Float.min 1.0 p) in
      let rank = max 1 (int_of_float (Float.ceil (p *. float_of_int t.n))) in
      let rec walk i cum =
        if i >= Array.length t.counts then t.maxv
        else begin
          let cum = cum + t.counts.(i) in
          if cum >= rank then bucket_upper t i else walk (i + 1) cum
        end
      in
      Float.max t.minv (Float.min t.maxv (walk 0 0))
    end

  let pp ppf t =
    if t.n = 0 then Fmt.pf ppf "(empty)"
    else
      Fmt.pf ppf "n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g" t.n (mean t)
        (percentile t 0.5) (percentile t 0.9) (percentile t 0.99) t.maxv
end

(* ------------------------------------------------------------------ *)
(* Causal spans                                                       *)
(* ------------------------------------------------------------------ *)

module Span = struct
  type t = {
    id : int;
    parent : int option;
    name : string;
    cat : string;
    start : float;
    mutable stop : float; (* nan while the span is still open *)
    mutable ok : bool;
    attrs : (string * string) list;
  }

  let is_open s = Float.is_nan s.stop
  let duration s = if is_open s then 0.0 else s.stop -. s.start
end

(* ------------------------------------------------------------------ *)
(* Per-stage flow meters                                              *)
(* ------------------------------------------------------------------ *)

module Flow = struct
  type stage = {
    label : string;
    mutable items_in : int;
    mutable items_out : int;
    mutable bytes_in : int; (* marshalled payload bytes, Value.size law *)
    mutable bytes_out : int;
    mutable batches : int;
    mutable max_occupancy : int;
    mutable stall_in : float; (* virtual time spent waiting to read *)
    mutable stall_out : float; (* virtual time spent waiting to write *)
  }

  let make label =
    {
      label;
      items_in = 0;
      items_out = 0;
      bytes_in = 0;
      bytes_out = 0;
      batches = 0;
      max_occupancy = 0;
      stall_in = 0.0;
      stall_out = 0.0;
    }

  let occupancy s = max 0 (s.items_in - s.items_out)

  let note_in s =
    s.items_in <- s.items_in + 1;
    let occ = occupancy s in
    if occ > s.max_occupancy then s.max_occupancy <- occ

  let note_out s = s.items_out <- s.items_out + 1

  let note_in_n s n =
    if n > 0 then begin
      s.items_in <- s.items_in + n;
      let occ = occupancy s in
      if occ > s.max_occupancy then s.max_occupancy <- occ
    end

  let note_out_n s n = if n > 0 then s.items_out <- s.items_out + n
  let note_bytes_in s n = if n > 0 then s.bytes_in <- s.bytes_in + n
  let note_bytes_out s n = if n > 0 then s.bytes_out <- s.bytes_out + n
  let note_batches s n = if n > s.batches then s.batches <- n
  let wait_in s d = if d > 0.0 then s.stall_in <- s.stall_in +. d
  let wait_out s d = if d > 0.0 then s.stall_out <- s.stall_out +. d

  let pp ppf s =
    Fmt.pf ppf
      "%s: in=%d out=%d bytes_in=%d bytes_out=%d batches=%d max_occ=%d stall_in=%.3f \
       stall_out=%.3f"
      s.label s.items_in s.items_out s.bytes_in s.bytes_out s.batches s.max_occupancy
      s.stall_in s.stall_out
end

(* ------------------------------------------------------------------ *)
(* Collector                                                          *)
(* ------------------------------------------------------------------ *)

(* The open-span table is a {!Slab}, and a span's {e id is its slab
   handle}: begin = alloc, end = free, lookup is two array reads.  A
   slot's generation only ever grows, so handles — and therefore span
   ids — are unique for the collector's lifetime even though slots are
   recycled; parent edges into long-closed spans stay unambiguous.
   [instant] draws its id from the same handle space (alloc + immediate
   free) so ids never collide across the two paths. *)
type t = {
  mutable spans_on : bool;
  live : Span.t Slab.t; (* open spans; handle = span id *)
  closed : Span.t Ring.t; (* completed spans, oldest first *)
  mutable dropped : int; (* completed spans evicted from [closed] *)
  hists : (string, Histogram.t) Hashtbl.t;
  (* Stage meters, flat, in registration order. *)
  mutable stage_arr : Flow.stage array;
  mutable stage_count : int;
}

let dummy_span =
  {
    Span.id = -1;
    parent = None;
    name = "";
    cat = "";
    start = 0.0;
    stop = 0.0;
    ok = true;
    attrs = [];
  }

let dummy_stage = Flow.make ""

let create ?(span_capacity = 8192) () =
  {
    spans_on = false;
    live = Slab.create ~capacity:64 ~dummy:dummy_span ();
    closed = Ring.create ~capacity:span_capacity;
    dropped = 0;
    hists = Hashtbl.create 16;
    stage_arr = [||];
    stage_count = 0;
  }

let enable_spans t = t.spans_on <- true
let disable_spans t = t.spans_on <- false
let spans_enabled t = t.spans_on

let span_begin t ?parent ?(attrs = []) ~name ~cat ~at () =
  let id = Slab.alloc t.live dummy_span in
  let s =
    { Span.id; parent; name; cat; start = at; stop = Float.nan; ok = true; attrs }
  in
  ignore (Slab.set t.live id s);
  id

let span_end t id ~at ~ok =
  match Slab.free t.live id with
  | None -> ()
  | Some s ->
      s.Span.stop <- at;
      s.Span.ok <- ok;
      if Option.is_some (Ring.push_force t.closed s) then t.dropped <- t.dropped + 1

let instant t ?parent ?(attrs = []) ~name ~cat ~at () =
  if t.spans_on then begin
    let id = Slab.alloc t.live dummy_span in
    ignore (Slab.free t.live id);
    let s = { Span.id; parent; name; cat; start = at; stop = at; ok = true; attrs } in
    if Option.is_some (Ring.push_force t.closed s) then t.dropped <- t.dropped + 1
  end

let spans t = Ring.to_list t.closed
let open_spans t = Slab.fold (fun _ s acc -> s :: acc) t.live []
let span_count t = Ring.length t.closed
let dropped_spans t = t.dropped

let clear_spans t =
  Ring.clear t.closed;
  (* Free every open span; a later [span_end] on one simply misses. *)
  let open_handles = Slab.fold (fun h _ acc -> h :: acc) t.live [] in
  List.iter (fun h -> ignore (Slab.free t.live h)) open_handles;
  t.dropped <- 0

let histogram ?lo ?growth t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = Histogram.create ?lo ?growth () in
      Hashtbl.replace t.hists name h;
      h

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let register_stage t label =
  let s = Flow.make label in
  let cap = Array.length t.stage_arr in
  if t.stage_count = cap then begin
    let arr = Array.make (max 8 (2 * cap)) dummy_stage in
    Array.blit t.stage_arr 0 arr 0 cap;
    t.stage_arr <- arr
  end;
  t.stage_arr.(t.stage_count) <- s;
  t.stage_count <- t.stage_count + 1;
  s

let stages t = Array.to_list (Array.sub t.stage_arr 0 t.stage_count)

(* ------------------------------------------------------------------ *)
(* Export (JSONL + Chrome trace_event)                                *)
(* ------------------------------------------------------------------ *)

module Export = struct
  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let str s = "\"" ^ json_escape s ^ "\""

  (* JSON floats must not be nan/inf; open spans export stop = -1. *)
  let num f = if Float.is_nan f || Float.is_integer f then Printf.sprintf "%.0f" f else Printf.sprintf "%.9g" f

  let span_fields (s : Span.t) =
    let base =
      [
        ("id", string_of_int s.Span.id);
        ("parent", (match s.Span.parent with Some p -> string_of_int p | None -> "null"));
        ("name", str s.Span.name);
        ("cat", str s.Span.cat);
        ("start", num s.Span.start);
        ("stop", (if Span.is_open s then "null" else num s.Span.stop));
        ("ok", string_of_bool s.Span.ok);
      ]
    in
    let attrs = List.map (fun (k, v) -> ("attr." ^ k, str v)) s.Span.attrs in
    base @ attrs

  let obj fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

  let span_jsonl s = obj (span_fields s)

  let spans_jsonl t =
    let buf = Buffer.create 4096 in
    List.iter
      (fun s ->
        Buffer.add_string buf (span_jsonl s);
        Buffer.add_char buf '\n')
      (spans t);
    Buffer.contents buf

  (* Chrome trace_event JSON: complete events ("ph":"X") with
     microsecond timestamps scaled from virtual seconds.  Spans are
     grouped into one "thread" per destination Eject (the [dst]
     attribute) so chrome://tracing / Perfetto lays the invocation
     tree out per target. *)
  let chrome_trace t =
    let tids = Hashtbl.create 16 in
    let next_tid = ref 1 in
    let tid_for s =
      match List.assoc_opt "dst" s.Span.attrs with
      | None -> 0
      | Some dst -> (
          match Hashtbl.find_opt tids dst with
          | Some i -> i
          | None ->
              let i = !next_tid in
              incr next_tid;
              Hashtbl.replace tids dst i;
              i)
    in
    let usec v = Printf.sprintf "%.3f" (v *. 1e6) in
    let event s =
      let args =
        obj
          (("id", string_of_int s.Span.id)
           :: ("parent",
               match s.Span.parent with Some p -> string_of_int p | None -> "null")
           :: ("ok", string_of_bool s.Span.ok)
           :: List.map (fun (k, v) -> (k, str v)) s.Span.attrs)
      in
      let common =
        [
          ("name", str s.Span.name);
          ("cat", str s.Span.cat);
          ("pid", "0");
          ("tid", string_of_int (tid_for s));
          ("ts", usec s.Span.start);
        ]
      in
      if Float.abs (Span.duration s) < 1e-12 then
        obj (common @ [ ("ph", str "i"); ("s", str "t"); ("args", args) ])
      else obj (common @ [ ("ph", str "X"); ("dur", usec (Span.duration s)); ("args", args) ])
    in
    let events = List.map event (spans t) in
    "{\"traceEvents\":[" ^ String.concat "," events ^ "],\"displayTimeUnit\":\"ms\"}"

  let to_file ~path contents =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents)
end
