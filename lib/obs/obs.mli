(** Observability: causal spans, log-bucketed histograms, per-stage
    flow meters, and trace export.

    One collector ([t]) is owned by each kernel instance and threaded
    (as an optional dependency) into the network and the transput
    pipeline machinery.  The library speaks only ints, floats and
    strings so it sits below every other layer:

    - {b spans} record causality: each invocation opens a span whose
      parent is the span of the handler that issued it, so a pipeline
      run yields an invocation tree exportable as JSONL or Chrome
      [trace_event] JSON.
    - {b histograms} are log-bucketed (geometric buckets) latency /
      size distributions with cheap p50/p90/p99 queries.
    - {b flow meters} count items, batches, occupancy and stall time
      per pipeline stage, replacing string-matching stall heuristics
      with structured registration. *)

module Histogram : sig
  type t

  val create : ?lo:float -> ?growth:float -> unit -> t
  (** [create ~lo ~growth ()] makes an empty histogram whose bucket 0
      holds [\[0, lo)] and whose bucket [i >= 1] holds
      [\[lo*growth^(i-1), lo*growth^i)].  Defaults: [lo = 1e-3],
      [growth = 2.0].  @raise Invalid_argument on non-positive [lo] or
      [growth <= 1]. *)

  val add : t -> float -> unit

  val merge : into:t -> t -> unit
  (** [merge ~into src] folds [src]'s samples into [into] (bucket-exact;
      min/max/mean preserved).  The way per-domain histograms are
      aggregated after a parallel run joins.  @raise Invalid_argument
      when the two histograms were created with different [lo]/[growth]
      geometry. *)

  val count : t -> int
  val total : t -> float
  val mean : t -> float

  val min_value : t -> float
  (** Exact observed minimum; [0.0] when empty. *)

  val max_value : t -> float
  (** Exact observed maximum; [0.0] when empty. *)

  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [\[0,1\]]: upper bound of the bucket
      holding the rank-[ceil p*n] sample, clamped to the observed
      min/max.  [0.0] when empty. *)

  val pp : Format.formatter -> t -> unit
end

module Span : sig
  type t = {
    id : int;
    parent : int option;
    name : string;
    cat : string;
    start : float;
    mutable stop : float; (* nan while open *)
    mutable ok : bool;
    attrs : (string * string) list;
  }

  val is_open : t -> bool
  val duration : t -> float
end

module Flow : sig
  type stage = {
    label : string;
    mutable items_in : int;
    mutable items_out : int;
    mutable bytes_in : int;
    mutable bytes_out : int;
    mutable batches : int;
    mutable max_occupancy : int;
    mutable stall_in : float;
    mutable stall_out : float;
  }

  val make : string -> stage
  val occupancy : stage -> int
  val note_in : stage -> unit
  val note_out : stage -> unit

  val note_in_n : stage -> int -> unit
  (** Bulk {!note_in}: add [n] items at once (updating
      [max_occupancy] against the post-increment occupancy).  Used by
      gauge-style stages — e.g. a tenant's outstanding-credit gauge,
      where a revocation reclaims a whole window in one step.
      Non-positive [n] is ignored. *)

  val note_out_n : stage -> int -> unit
  (** Bulk {!note_out}; non-positive [n] is ignored. *)

  val note_bytes_in : stage -> int -> unit
  (** Add the marshalled byte size of one consumed item.  Metered
      stages charge [Value.size] per item, so a chunk counts its whole
      payload (plus the 4-byte length prefix) and the meters stay
      truthful when one item is a 64 KiB chunk rather than a boxed
      line.  Non-positive sizes are ignored. *)

  val note_bytes_out : stage -> int -> unit

  val note_batches : stage -> int -> unit
  (** Record the current cumulative batch count for the stage (a
      monotone gauge: the max of all reported values is kept). *)

  val wait_in : stage -> float -> unit
  val wait_out : stage -> float -> unit
  val pp : Format.formatter -> stage -> unit
end

type t

val create : ?span_capacity:int -> unit -> t
(** Completed spans are kept in a ring of [span_capacity] (default
    8192); older spans are evicted and counted in [dropped_spans]. *)

val enable_spans : t -> unit
val disable_spans : t -> unit
val spans_enabled : t -> bool

val span_begin :
  t -> ?parent:int -> ?attrs:(string * string) list -> name:string -> cat:string ->
  at:float -> unit -> int
(** Open a span and return its id.  Callers should guard on
    [spans_enabled] to avoid the bookkeeping cost when tracing is
    off. *)

val span_end : t -> int -> at:float -> ok:bool -> unit
(** Close an open span.  Unknown ids are ignored. *)

val instant :
  t -> ?parent:int -> ?attrs:(string * string) list -> name:string -> cat:string ->
  at:float -> unit -> unit
(** Record a zero-duration event.  No-op when spans are disabled. *)

val spans : t -> Span.t list
(** Completed spans, oldest first. *)

val open_spans : t -> Span.t list
val span_count : t -> int

val dropped_spans : t -> int
(** Completed spans evicted from the ring since creation/[clear_spans]. *)

val clear_spans : t -> unit

val histogram : ?lo:float -> ?growth:float -> t -> string -> Histogram.t
(** Get-or-create the named histogram ([lo]/[growth] apply only on
    creation). *)

val histograms : t -> (string * Histogram.t) list
(** Name-sorted. *)

val register_stage : t -> string -> Flow.stage
val stages : t -> Flow.stage list
(** In registration order. *)

module Export : sig
  val json_escape : string -> string

  val spans_jsonl : t -> string
  (** One JSON object per line per completed span, oldest first. *)

  val chrome_trace : t -> string
  (** Chrome [trace_event] JSON ({"traceEvents":[...]}); durations in
      microseconds scaled from virtual seconds, one tid per [dst]
      attribute value. *)

  val to_file : path:string -> string -> unit
end
