(** A stream editor.

    §3 lists stream editors among the canonical filters, and §5 singles
    them out as the motivating multi-input case: "stream editors that
    have a command input as well as a text input".  This module provides
    both shapes:

    - {!transform}: a compiled script as an ordinary single-input
      {!Eden_transput.Transform.t};
    - {!two_input_stage}: a read-only Eject with {e two} upstreams — it
      first drains its command stream, compiles it, then edits the text
      stream.  Multiple inputs are trivial under the read-only
      discipline (§5): the stage simply holds two UIDs.

    Supported commands (one per line in scripts):

    {v
    [addr[,addr]] s/REGEX/REPLACEMENT/[g]    substitute (& = whole match)
    [addr[,addr]] d                          delete line
    [addr[,addr]] p                          print line (again)
    [addr[,addr]] y/SET1/SET2/               transliterate
    [addr[,addr]] q                          quit (stop reading input)
    [addr[,addr]] i\TEXT                     insert TEXT before line
    [addr[,addr]] a\TEXT                     append TEXT after line
    v}

    where [addr] is a line number, [$] (last line — only usable with
    buffering, so rejected here), or [/REGEX/].  Any punctuation may
    replace [/] as the s- and y-delimiter.  Patterns are full regular
    expressions (the [re] library). *)

type script

val parse_command : string -> (script, string) result
(** A single command line. *)

val parse_script : string list -> (script, string) result
(** Whole script; blank lines and [#] comments are skipped.  [Error]
    carries the offending line and reason. *)

val transform : script -> Eden_transput.Transform.t

val run_lines : script -> string list -> string list
(** Pure application, for tests and tools. *)

(** {1 Line-at-a-time core}

    Exposed so the chunk-at-a-time mode ({!Chunkline.sed}) can drive
    the same engine over byte slices. *)

val fresh : script -> script
(** Commands carry mutable range state; take a fresh copy per run. *)

val apply_line : script -> int -> string -> string list * bool
(** [apply_line script lineno line] is the lines to output and whether
    a [q] command fired.  Mutates the script's range state. *)

val two_input_stage :
  Eden_kernel.Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?batch:int ->
  commands:Eden_kernel.Uid.t * Eden_transput.Channel.t ->
  text:Eden_kernel.Uid.t * Eden_transput.Channel.t ->
  unit ->
  Eden_kernel.Uid.t
(** The §5 editor: output on {!Eden_transput.Channel.output}.  A script
    that fails to parse surfaces as a worker failure naming the bad
    command. *)
