module Text = Eden_util.Text

let strip_comments ?(prefix = "C") () = Line.keep (fun l -> not (Text.is_prefix ~prefix l))

let grep pattern = Line.keep (fun l -> Text.contains_sub ~sub:pattern l)
let grep_v pattern = Line.keep (fun l -> not (Text.contains_sub ~sub:pattern l))

let upcase = Line.map String.uppercase_ascii
let downcase = Line.map String.lowercase_ascii

let rot13_char c =
  if c >= 'a' && c <= 'z' then Char.chr (((Char.code c - Char.code 'a' + 13) mod 26) + Char.code 'a')
  else if c >= 'A' && c <= 'Z' then
    Char.chr (((Char.code c - Char.code 'A' + 13) mod 26) + Char.code 'A')
  else c

let rot13 = Line.map (String.map rot13_char)

let translate ~from ~into =
  if String.length from <> String.length into then
    invalid_arg "Catalog.translate: from/into length mismatch";
  let tr c = match String.index_opt from c with Some i -> into.[i] | None -> c in
  Line.map (String.map tr)

let number_lines ?(start = 1) ?(width = 4) () =
  Line.stateful ~init:start
    ~step:(fun n line -> (n + 1, [ Printf.sprintf "%*d  %s" width n line ]))
    ~flush:(fun _ -> [])

let head n = Eden_transput.Transform.take n

let tail n =
  Line.stateful ~init:[]
    ~step:(fun kept line ->
      let kept = line :: kept in
      let kept = if List.length kept > n then List.filteri (fun i _ -> i < n) kept else kept in
      (kept, []))
    ~flush:(fun kept -> List.rev kept)

let paginate ?(lines_per_page = 10) ?(title = "") () =
  if lines_per_page <= 0 then invalid_arg "Catalog.paginate: lines_per_page must be positive";
  let header page = Printf.sprintf "==== %s page %d ====" title page in
  (* State: (page number, lines already on this page). *)
  Line.stateful ~init:(1, 0)
    ~step:(fun (page, fill) line ->
      if fill = 0 then ((page, 1), [ header page; line ])
      else if fill + 1 >= lines_per_page then ((page + 1, 0), [ line ])
      else ((page, fill + 1), [ line ]))
    ~flush:(fun _ -> [])

let word_count =
  Line.stateful ~init:(0, 0, 0)
    ~step:(fun (l, w, c) line ->
      ((l + 1, w + List.length (Text.words line), c + String.length line + 1), []))
    ~flush:(fun (l, w, c) -> [ Printf.sprintf "%d %d %d" l w c ])

let on_all f =
  Eden_transput.Transform.buffer_all (fun items ->
      let lines = List.map Eden_kernel.Value.to_str items in
      List.map (fun s -> Eden_kernel.Value.Str s) (f lines))

let sort_lines = on_all (List.sort String.compare)
let reverse_lines = on_all List.rev

let uniq =
  Line.stateful ~init:None
    ~step:(fun prev line ->
      match prev with
      | Some p when String.equal p line -> (prev, [])
      | Some _ | None -> (Some line, [ line ]))
    ~flush:(fun _ -> [])

let is_blank l = String.for_all (fun c -> c = ' ' || c = '\t') l

let squeeze_blank =
  Line.stateful ~init:false
    ~step:(fun prev_blank line ->
      let blank = is_blank line in
      if blank && prev_blank then (true, []) else (blank, [ line ]))
    ~flush:(fun _ -> [])

let trim_line =
  let rec rstrip s i = if i > 0 && (s.[i - 1] = ' ' || s.[i - 1] = '\t') then rstrip s (i - 1) else i in
  fun l -> String.sub l 0 (rstrip l (String.length l))

let trim_trailing = Line.map trim_line

let expand_tabs ?(tabstop = 8) () = Line.map (Text.expand_tabs ~tabstop)

let cut ~delim ~field =
  if field < 1 then invalid_arg "Catalog.cut: field is 1-indexed";
  Line.map (fun l ->
      let parts = String.split_on_char delim l in
      match List.nth_opt parts (field - 1) with Some f -> f | None -> "")

let normalise_word w =
  String.lowercase_ascii
    (String.to_seq w
    |> Seq.filter (fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '\'')
    |> String.of_seq)

let fold_width width =
  if width <= 0 then invalid_arg "Catalog.fold_width: width must be positive";
  Line.expand (fun l -> if l = "" then [ "" ] else Text.chunks ~size:width l)

module SS = Set.Make (String)

let spell ~dictionary =
  let dict = List.fold_left (fun s w -> SS.add (String.lowercase_ascii w) s) SS.empty dictionary in
  Line.expand (fun line ->
      Text.words line
      |> List.map normalise_word
      |> List.filter (fun w -> w <> "" && not (SS.mem w dict)))

(* --- chunk-at-a-time counterparts ----------------------------------- *)

(* The same line functions lifted over byte chunks; the equivalence
   suite holds each pair to byte-identical output. *)

let chunked_upcase = Chunkline.map String.uppercase_ascii
let chunked_downcase = Chunkline.map String.lowercase_ascii
let chunked_trim_trailing = Chunkline.map trim_line
let chunked_rot13 = Chunkline.map (String.map rot13_char)
let chunked_grep pattern = Chunkline.keep (fun l -> Text.contains_sub ~sub:pattern l)
let chunked_grep_v pattern = Chunkline.keep (fun l -> not (Text.contains_sub ~sub:pattern l))

let chunked_number_lines ?(start = 1) ?(width = 4) () =
  Chunkline.stateful ~init:start
    ~step:(fun n line -> (n + 1, [ Printf.sprintf "%*d  %s" width n line ]))
    ~flush:(fun _ -> [])

(* --- name registry for the shell ----------------------------------- *)

let int_arg name args =
  match args with
  | [ a ] -> (
      match int_of_string_opt a with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name a))
  | _ -> Error (Printf.sprintf "%s: expected one integer argument" name)

let no_args name args v = match args with [] -> Ok v | _ -> Error (name ^ ": takes no arguments")

let by_name name args =
  match name with
  | "strip-comments" -> (
      match args with
      | [] -> Ok (strip_comments ())
      | [ p ] -> Ok (strip_comments ~prefix:p ())
      | _ -> Error "strip-comments: at most one prefix argument")
  | "grep" -> ( match args with [ p ] -> Ok (grep p) | _ -> Error "grep: expected one pattern")
  | "grep-v" -> ( match args with [ p ] -> Ok (grep_v p) | _ -> Error "grep-v: expected one pattern")
  | "upcase" -> no_args name args upcase
  | "downcase" -> no_args name args downcase
  | "rot13" -> no_args name args rot13
  | "number" -> no_args name args (number_lines ())
  | "head" -> Result.map head (int_arg name args)
  | "tail" -> Result.map tail (int_arg name args)
  | "paginate" -> (
      match args with
      | [] -> Ok (paginate ())
      | [ n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> Ok (paginate ~lines_per_page:n ())
          | _ -> Error "paginate: expected a positive page length")
      | _ -> Error "paginate: at most one page-length argument")
  | "wc" -> no_args name args word_count
  | "sort" -> no_args name args sort_lines
  | "tac" -> no_args name args reverse_lines
  | "uniq" -> no_args name args uniq
  | "squeeze-blank" -> no_args name args squeeze_blank
  | "trim" -> no_args name args trim_trailing
  | "expand" -> (
      match args with
      | [] -> Ok (expand_tabs ())
      | [ n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> Ok (expand_tabs ~tabstop:n ())
          | _ -> Error "expand: expected a positive tabstop")
      | _ -> Error "expand: at most one tabstop argument")
  | "cut" -> (
      match args with
      | [ d; f ] when String.length d = 1 -> (
          match int_of_string_opt f with
          | Some field when field >= 1 -> Ok (cut ~delim:d.[0] ~field)
          | _ -> Error "cut: field must be a positive integer")
      | _ -> Error "cut: expected <delim-char> <field>")
  | "spell" -> Ok (spell ~dictionary:args)
  | "fold" -> (
      match args with
      | [ n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> Ok (fold_width n)
          | _ -> Error "fold: expected a positive width")
      | _ -> Error "fold: expected one width argument")
  | "sed" -> Result.map Sed.transform (Sed.parse_script args)
  | _ -> Error (Printf.sprintf "unknown filter: %s" name)

let names =
  [
    "cut"; "downcase"; "expand"; "fold"; "grep"; "grep-v"; "head"; "number"; "paginate";
    "rot13"; "sed"; "sort"; "spell"; "squeeze-blank"; "strip-comments"; "tac"; "tail"; "trim";
    "uniq"; "upcase"; "wc";
  ]
