(** The filter catalog: the utilities §3 calls filters.

    "Text formatters, stream editors, spelling checkers, prettyprinters
    and paginators are all filters."  Every entry is a plain
    {!Eden_transput.Transform.t} over line streams, usable under any
    discipline via the {!Eden_transput.Stage} builders, in-process via
    {!Line.run}, or by name via {!by_name} (which is what the shell
    uses). *)

val strip_comments : ?prefix:string -> unit -> Eden_transput.Transform.t
(** Drops lines beginning with [prefix] (default ["C"] — the paper's
    Fortran comment-stripper example). *)

val grep : string -> Eden_transput.Transform.t
(** Keeps lines containing the substring. *)

val grep_v : string -> Eden_transput.Transform.t
val upcase : Eden_transput.Transform.t
val downcase : Eden_transput.Transform.t
val rot13 : Eden_transput.Transform.t

val translate : from:string -> into:string -> Eden_transput.Transform.t
(** tr(1): maps each character of [from] to the same-index character of
    [into].  @raise Invalid_argument on length mismatch. *)

val number_lines : ?start:int -> ?width:int -> unit -> Eden_transput.Transform.t
(** ["   1  line"] numbering like cat -n. *)

val head : int -> Eden_transput.Transform.t
val tail : int -> Eden_transput.Transform.t
(** Last [n] lines; necessarily buffers [n]. *)

val paginate : ?lines_per_page:int -> ?title:string -> unit -> Eden_transput.Transform.t
(** pr(1)-style paginator: a header line and ruled-off pages; partial
    final pages are flushed.  [lines_per_page] (default 10) counts body
    lines.  @raise Invalid_argument if non-positive. *)

val word_count : Eden_transput.Transform.t
(** Consumes everything; emits one ["lines words chars"] summary. *)

val sort_lines : Eden_transput.Transform.t
val reverse_lines : Eden_transput.Transform.t
(** tac(1). *)

val uniq : Eden_transput.Transform.t
(** Collapses runs of identical adjacent lines. *)

val squeeze_blank : Eden_transput.Transform.t
(** Collapses runs of blank lines to one. *)

val trim_trailing : Eden_transput.Transform.t
val expand_tabs : ?tabstop:int -> unit -> Eden_transput.Transform.t

val trim_line : string -> string
(** The pure line function under {!trim_trailing}, shared with its
    chunked counterpart. *)

val cut : delim:char -> field:int -> Eden_transput.Transform.t
(** 1-indexed field extraction; lines with too few fields pass through
    empty, matching cut(1)'s behaviour for missing fields. *)

val spell : dictionary:string list -> Eden_transput.Transform.t
(** Emits each word (lowercased) not present in the dictionary, once
    per occurrence — the classic spell(1) pipeline stage. *)

val fold_width : int -> Eden_transput.Transform.t
(** fold(1): wraps lines at the given width; empty lines pass through.
    @raise Invalid_argument if non-positive. *)

(** {1 Chunk-at-a-time counterparts}

    The same line functions lifted over [Value.Chunk] byte slices via
    {!Chunkline}; each pair is held byte-identical to its boxed
    sibling by the equivalence suite. *)

val chunked_upcase : Eden_transput.Transform.t
val chunked_downcase : Eden_transput.Transform.t
val chunked_trim_trailing : Eden_transput.Transform.t
val chunked_rot13 : Eden_transput.Transform.t
val chunked_grep : string -> Eden_transput.Transform.t
val chunked_grep_v : string -> Eden_transput.Transform.t
val chunked_number_lines : ?start:int -> ?width:int -> unit -> Eden_transput.Transform.t

val by_name : string -> string list -> (Eden_transput.Transform.t, string) result
(** Shell-facing constructor: [by_name "grep" ["pattern"]].  [Error]
    describes unknown names or bad arguments. *)

val names : string list
(** All names [by_name] recognises, sorted. *)
