(* Chunk-at-a-time line filters.

   The chunked data plane moves flat byte chunks cut at arbitrary
   positions; a line filter must behave as if it had seen the boxed
   one-line-per-item stream.  The engine here scans each incoming
   chunk's segments in place for newlines, carries the partial tail
   line across chunk boundaries, applies the per-line function, and
   re-emits one output chunk per input chunk (complete output lines
   are newline-terminated and packed together — the output plane stays
   chunked).

   Ownership: an input chunk is consumed — its bytes are read, then
   the handle is released.  Output chunks are fresh roots owned by the
   downstream consumer.  Boxed [Str] items are accepted too and
   processed through the same line engine (their outputs still leave
   as chunks), so a mixed-plane stream degrades gracefully instead of
   failing; any other value shape is a protocol error, exactly as for
   the boxed line filters. *)

module Value = Eden_kernel.Value
module Chunk = Eden_chunk.Chunk
module Transform = Eden_transput.Transform

let chunk_substring c pos len =
  let b = Bytes.create len in
  Chunk.blit_to_bytes c ~src_pos:pos b ~dst_pos:0 ~len;
  Bytes.unsafe_to_string b

(* [on_line lineno line] returns the output lines and whether to quit
   (stop consuming input, sed's [q]). *)
let run ~on_line ~on_flush next emit =
  let carry = Buffer.create 256 in
  let out = Buffer.create 4096 in
  let lineno = ref 1 in
  let quit = ref false in
  let emit_out () =
    if Buffer.length out > 0 then begin
      emit (Value.Chunk (Chunk.of_string (Buffer.contents out)));
      Buffer.clear out
    end
  in
  let handle_line line =
    let outputs, q = on_line !lineno line in
    incr lineno;
    List.iter
      (fun l ->
        Buffer.add_string out l;
        Buffer.add_char out '\n')
      outputs;
    if q then quit := true
  in
  (* One completed line: the carry (if any) plus [len] bytes of [take]
     starting at [pos]. *)
  let complete take pos len =
    if Buffer.length carry = 0 then handle_line (take pos len)
    else begin
      Buffer.add_string carry (take pos len);
      let line = Buffer.contents carry in
      Buffer.clear carry;
      handle_line line
    end
  in
  let scan ~length ~index_from ~take =
    let len = length in
    let pos = ref 0 in
    while (not !quit) && !pos < len do
      match index_from !pos with
      | Some j ->
          complete take !pos (j - !pos);
          pos := j + 1
      | None ->
          Buffer.add_string carry (take !pos (len - !pos));
          pos := len
    done
  in
  let rec go () =
    if not !quit then
      match next () with
      | None ->
          (* Input ended: a non-terminated tail still counts as a line
             (its outputs leave newline-terminated — the chunk plane
             canonicalises the final newline). *)
          if Buffer.length carry > 0 then begin
            let line = Buffer.contents carry in
            Buffer.clear carry;
            handle_line line
          end;
          List.iter
            (fun l ->
              Buffer.add_string out l;
              Buffer.add_char out '\n')
            (on_flush ());
          emit_out ()
      | Some (Value.Chunk c) ->
          scan ~length:(Chunk.length c)
            ~index_from:(fun pos -> Chunk.index_from c pos '\n')
            ~take:(chunk_substring c);
          Chunk.release c;
          emit_out ();
          go ()
      | Some (Value.Str s) ->
          scan ~length:(String.length s)
            ~index_from:(fun pos -> String.index_from_opt s pos '\n')
            ~take:(fun pos len -> String.sub s pos len);
          emit_out ();
          go ()
      | Some v ->
          raise
            (Value.Protocol_error
               ("chunk line filter: expected chunk or string, got " ^ Value.preview v))
  in
  go ();
  (* A quit mid-chunk leaves buffered output lines to deliver. *)
  emit_out ()

let stateful ~init ~step ~flush : Transform.t =
 fun next emit ->
  let st = ref init in
  run
    ~on_line:(fun _ line ->
      let st', outs = step !st line in
      st := st';
      (outs, false))
    ~on_flush:(fun () -> flush !st)
    next emit

let map f = stateful ~init:() ~step:(fun () l -> ((), [ f l ])) ~flush:(fun () -> [])

let keep pred =
  stateful ~init:() ~step:(fun () l -> ((), if pred l then [ l ] else [])) ~flush:(fun () -> [])

let expand f = stateful ~init:() ~step:(fun () l -> ((), f l)) ~flush:(fun () -> [])

let sed script : Transform.t =
 fun next emit ->
  let script = Sed.fresh script in
  run
    ~on_line:(fun lineno line -> Sed.apply_line script lineno line)
    ~on_flush:(fun () -> [])
    next emit

(* Cut a newline-terminated document into chunks of [cut] bytes — the
   generator half of the chunked plane, deliberately misaligned with
   line boundaries so carry-over is exercised. *)
let cut_gen ~cut doc =
  if cut < 1 then invalid_arg "Chunkline.cut_gen: cut must be at least 1";
  let pos = ref 0 in
  fun () ->
    if !pos >= String.length doc then None
    else begin
      let n = min cut (String.length doc - !pos) in
      let c = Chunk.of_substring doc ~pos:!pos ~len:n in
      pos := !pos + n;
      Some (Value.Chunk c)
    end
