(** Chunk-at-a-time line filters for the zero-copy data plane.

    These lift the same per-line functions as {!Line} to streams of
    [Value.Chunk] byte slices cut at arbitrary positions.  The engine
    scans each chunk's segments in place for newlines, carries the
    split tail line across chunk boundaries, and emits one output
    chunk per input chunk with the transformed lines
    newline-terminated.  Feeding the chunked and boxed versions of
    the same filter the same line stream yields byte-identical output
    (the equivalence suite holds every filter to that).

    Ownership: input chunks are consumed and released by the filter;
    output chunks are fresh roots owned by the downstream consumer.
    [Str] items are accepted and processed through the same engine
    (mixed-plane streams degrade gracefully); other shapes raise
    [Value.Protocol_error]. *)

val map : (string -> string) -> Eden_transput.Transform.t
val keep : (string -> bool) -> Eden_transput.Transform.t
val expand : (string -> string list) -> Eden_transput.Transform.t

val stateful :
  init:'s ->
  step:('s -> string -> 's * string list) ->
  flush:('s -> string list) ->
  Eden_transput.Transform.t

val sed : Sed.script -> Eden_transput.Transform.t
(** The stream editor over byte slices: same engine as
    {!Sed.transform}, including [q] (stop consuming mid-chunk). *)

val run :
  on_line:(int -> string -> string list * bool) ->
  on_flush:(unit -> string list) ->
  Eden_transput.Transform.next ->
  Eden_transput.Transform.emit ->
  unit
(** The engine itself: [on_line lineno line] returns output lines and
    a quit flag. *)

val cut_gen : cut:int -> string -> unit -> Eden_kernel.Value.t option
(** Generator cutting a document into [cut]-byte chunks, deliberately
    ignoring line boundaries — the canonical chunked source for tests
    and benchmarks. *)
