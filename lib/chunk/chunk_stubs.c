/* Bulk byte primitives for the chunk data plane.

   The pure-OCaml fallbacks move one byte per iteration through the
   Bigarray accessors; on the chunked hot path (line scanning and the
   codec/syscall copy points) that per-byte cost dominates everything
   else, so the three inner loops are memcpy/memchr instead.  All
   bounds checking stays on the OCaml side. */

#include <string.h>
#include <caml/mlvalues.h>
#include <caml/bigarray.h>

CAMLprim value eden_chunk_blit_ba_bytes(value ba, value src, value b, value dst,
                                        value len)
{
  memcpy(Bytes_val(b) + Long_val(dst),
         (char *) Caml_ba_data_val(ba) + Long_val(src), Long_val(len));
  return Val_unit;
}

CAMLprim value eden_chunk_blit_string_ba(value s, value src, value ba, value dst,
                                         value len)
{
  memcpy((char *) Caml_ba_data_val(ba) + Long_val(dst),
         String_val(s) + Long_val(src), Long_val(len));
  return Val_unit;
}

/* Position of [c] in [ba[pos, pos+len)], or -1. */
CAMLprim value eden_chunk_memchr(value ba, value pos, value len, value c)
{
  char *base = (char *) Caml_ba_data_val(ba);
  char *p = memchr(base + Long_val(pos), Int_val(c), Long_val(len));
  return Val_long(p == NULL ? -1 : p - base);
}
