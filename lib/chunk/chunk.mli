(** Mbuf-style byte chunks for the zero-copy data plane.

    A chunk is a chain of byte-slice segments over reference-counted
    Bigarray roots.  {!sub}, {!split} and {!concat} restructure chains
    without copying payload bytes; the only copies are the explicit
    boundary ones ({!of_string}, {!to_string}, {!blit_to_bytes}).

    Ownership is explicit and checked.  Every handle owns one
    reference per segment; {!release} returns them.  Releasing a
    handle twice, or touching it after release, raises the typed
    {!Fault} — the accounting exists to surface pipeline protocol
    bugs, not to manage memory (the GC does that regardless).  The
    global gauges {!live_roots}/{!live_bytes}/{!live_views} let tests
    assert that a whole run balanced its references back to zero.

    Refcounts and gauges are atomic: chunks cross domains by reference
    in the parallel runtime. *)

type buffer = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

type fault = Double_release | Use_after_free

exception Fault of fault * string

val fault_name : fault -> string

(** {1 Allocation — each makes one fresh root (one payload copy)} *)

val alloc : int -> t
(** Zero-filled chunk of [n] bytes. *)

val of_string : string -> t
val of_substring : string -> pos:int -> len:int -> t
val empty : unit -> t

(** {1 Liveness} *)

val length : t -> int
(** Total payload bytes.  Never faults — safe for accounting even on a
    released handle. *)

val is_released : t -> bool
val segments : t -> int

val release : t -> unit
(** Return this handle's references.  @raise Fault on double release. *)

(** {1 Reads — all raise [Fault (Use_after_free, _)] on a released
    handle} *)

val get : t -> int -> char
val blit_to_bytes : t -> src_pos:int -> Bytes.t -> dst_pos:int -> len:int -> unit
val to_string : t -> string

val fold_slices : t -> init:'a -> f:('a -> buffer -> pos:int -> len:int -> 'a) -> 'a
(** Visit the underlying slices in stream order without copying — the
    writev path at the syscall boundary. *)

val index_from : t -> int -> char -> int option
(** Position of the first occurrence of the byte at or after [pos],
    scanning segments in place. *)

val equal : t -> t -> bool
(** Byte equality, segment layout ignored. *)

(** {1 Zero-copy restructuring — results are new handles; the inputs
    remain owned by the caller} *)

val sub : t -> pos:int -> len:int -> t
val split : t -> int -> t * t
val concat : t list -> t

(** {1 Accounting gauges (process-wide)} *)

val live_roots : unit -> int
val live_bytes : unit -> int
val live_views : unit -> int

(** {1 Rendering} *)

val preview : ?max_len:int -> t -> string
(** Bounded rendering, safe on released handles — usable in the very
    diagnostics that reject hostile input. *)

val pp : Format.formatter -> t -> unit
