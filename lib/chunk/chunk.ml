(* Mbuf-style chunks: flat byte payloads moved through the data plane
   by reference.

   A chunk is a chain of segments, each a [off, off+len) window onto a
   reference-counted root Bigarray.  [sub], [split] and [concat] build
   new chains over the same roots without touching the payload bytes;
   the only copies the data plane ever makes are the explicit ones at
   a codec or syscall boundary ([to_string], [blit_to_bytes],
   [of_string]).

   Ownership is explicit: every handle owns one reference per segment
   on that segment's root, and [release] returns them.  The discipline
   is deliberately stricter than the GC needs (the Bigarray would be
   collected anyway) because the accounting is the point: a pipeline
   that leaks references or frees twice has a protocol bug that the
   simulator should surface, not paper over.  Double release and use
   after release raise the typed [Fault] rather than corrupt counts.

   Refcounts and the global gauges are [Atomic]: chunks cross domains
   by reference in the parallel runtime. *)

type buffer = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Bulk byte primitives (chunk_stubs.c): per-byte Bigarray access from
   OCaml is the dominant cost of the chunked hot path, so the three
   inner loops are memcpy/memchr.  Callers bounds-check first. *)
external unsafe_blit_ba_bytes : buffer -> int -> Bytes.t -> int -> int -> unit
  = "eden_chunk_blit_ba_bytes"
  [@@noalloc]

external unsafe_blit_string_ba : string -> int -> buffer -> int -> int -> unit
  = "eden_chunk_blit_string_ba"
  [@@noalloc]

external unsafe_memchr : buffer -> int -> int -> char -> int = "eden_chunk_memchr"
  [@@noalloc]

type fault = Double_release | Use_after_free

let fault_name = function
  | Double_release -> "double release"
  | Use_after_free -> "use after free"

exception Fault of fault * string

let faulty f fmt =
  Printf.ksprintf (fun m -> raise (Fault (f, fault_name f ^ ": " ^ m))) fmt

type root = { buf : buffer; refs : int Atomic.t; id : int }

(* A retained view of one root. *)
type seg = { root : root; off : int; len : int }

type t = { segs : seg list; total : int; released : bool Atomic.t }

(* --- Global accounting gauges --------------------------------------- *)

let next_id = Atomic.make 1
let roots_live = Atomic.make 0
let bytes_live = Atomic.make 0
let views_live = Atomic.make 0

let live_roots () = Atomic.get roots_live
let live_bytes () = Atomic.get bytes_live
let live_views () = Atomic.get views_live

(* --- Allocation ------------------------------------------------------ *)

let fresh_root n =
  let buf = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n in
  Atomic.incr roots_live;
  ignore (Atomic.fetch_and_add bytes_live n);
  { buf; refs = Atomic.make 0; id = Atomic.fetch_and_add next_id 1 }

let retain root = Atomic.incr root.refs

let release_root root =
  if Atomic.fetch_and_add root.refs (-1) = 1 then begin
    Atomic.decr roots_live;
    ignore (Atomic.fetch_and_add bytes_live (-Bigarray.Array1.dim root.buf))
  end

let view segs total =
  List.iter (fun s -> retain s.root) segs;
  Atomic.incr views_live;
  { segs; total; released = Atomic.make false }

let alloc n =
  if n < 0 then invalid_arg "Chunk.alloc: negative length";
  let root = fresh_root n in
  Bigarray.Array1.fill root.buf '\000';
  view (if n = 0 then [] else [ { root; off = 0; len = n } ]) n

let of_substring s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Chunk.of_substring: range outside string";
  let root = fresh_root len in
  unsafe_blit_string_ba s pos root.buf 0 len;
  view (if len = 0 then [] else [ { root; off = 0; len } ]) len

let of_string s = of_substring s ~pos:0 ~len:(String.length s)

(* --- Liveness --------------------------------------------------------- *)

let length t = t.total
let is_released t = Atomic.get t.released
let segments t = List.length t.segs

let check t what =
  if Atomic.get t.released then faulty Use_after_free "%s on a released chunk" what

let release t =
  if not (Atomic.compare_and_set t.released false true) then
    faulty Double_release "chunk of %d bytes released twice" t.total
  else begin
    List.iter (fun s -> release_root s.root) t.segs;
    Atomic.decr views_live
  end

(* --- Reads ------------------------------------------------------------ *)

let get t i =
  check t "get";
  if i < 0 || i >= t.total then invalid_arg "Chunk.get: index out of bounds";
  let rec go i = function
    | [] -> assert false
    | s :: rest -> if i < s.len then Bigarray.Array1.unsafe_get s.root.buf (s.off + i) else go (i - s.len) rest
  in
  go i t.segs

let blit_to_bytes t ~src_pos b ~dst_pos ~len =
  check t "blit_to_bytes";
  if src_pos < 0 || len < 0 || src_pos + len > t.total then
    invalid_arg "Chunk.blit_to_bytes: range outside chunk";
  if dst_pos < 0 || dst_pos + len > Bytes.length b then
    invalid_arg "Chunk.blit_to_bytes: range outside destination";
  let rec go segs skip dst remaining =
    if remaining > 0 then
      match segs with
      | [] -> assert false
      | s :: rest ->
          if skip >= s.len then go rest (skip - s.len) dst remaining
          else begin
            let n = min (s.len - skip) remaining in
            unsafe_blit_ba_bytes s.root.buf (s.off + skip) b dst n;
            go rest 0 (dst + n) (remaining - n)
          end
  in
  go t.segs src_pos dst_pos len

let to_string t =
  check t "to_string";
  let b = Bytes.create t.total in
  blit_to_bytes t ~src_pos:0 b ~dst_pos:0 ~len:t.total;
  Bytes.unsafe_to_string b

let fold_slices t ~init ~f =
  check t "fold_slices";
  List.fold_left (fun acc s -> f acc s.root.buf ~pos:s.off ~len:s.len) init t.segs

let index_from t pos c =
  check t "index_from";
  if pos < 0 || pos > t.total then invalid_arg "Chunk.index_from: position out of bounds";
  let rec go segs skip base =
    match segs with
    | [] -> None
    | s :: rest ->
        if skip >= s.len then go rest (skip - s.len) (base + s.len)
        else begin
          let found = unsafe_memchr s.root.buf (s.off + skip) (s.len - skip) c in
          if found >= 0 then Some (base + (found - s.off)) else go rest 0 (base + s.len)
        end
  in
  go t.segs pos 0

let equal a b =
  check a "equal";
  check b "equal";
  a.total = b.total
  &&
  let rec go sa oa sb ob =
    (* Normalise both cursors past exhausted segments first: either
       side may run out of segments while the other still holds a
       fully-consumed (or empty) one. *)
    match sa with
    | a0 :: ra when oa >= a0.len -> go ra 0 sb ob
    | _ -> (
        match sb with
        | b0 :: rb when ob >= b0.len -> go sa oa rb 0
        | _ -> (
            match (sa, sb) with
            | [], [] -> true
            | [], _ :: _ | _ :: _, [] -> false
            | a0 :: _, b0 :: _ ->
                Char.equal
                  (Bigarray.Array1.unsafe_get a0.root.buf (a0.off + oa))
                  (Bigarray.Array1.unsafe_get b0.root.buf (b0.off + ob))
                && go sa (oa + 1) sb (ob + 1)))
  in
  go a.segs 0 b.segs 0

(* --- Zero-copy restructuring ------------------------------------------ *)

let sub t ~pos ~len =
  check t "sub";
  if pos < 0 || len < 0 || pos + len > t.total then
    invalid_arg "Chunk.sub: range outside chunk";
  let rec go segs skip remaining acc =
    if remaining = 0 then List.rev acc
    else
      match segs with
      | [] -> assert false
      | s :: rest ->
          if skip >= s.len then go rest (skip - s.len) remaining acc
          else begin
            let n = min (s.len - skip) remaining in
            go rest 0 (remaining - n) ({ s with off = s.off + skip; len = n } :: acc)
          end
  in
  view (go t.segs pos len []) len

let split t n =
  check t "split";
  if n < 0 || n > t.total then invalid_arg "Chunk.split: position out of bounds";
  (sub t ~pos:0 ~len:n, sub t ~pos:n ~len:(t.total - n))

let concat ts =
  List.iter (fun t -> check t "concat") ts;
  let segs = List.concat_map (fun t -> t.segs) ts in
  let total = List.fold_left (fun acc t -> acc + t.total) 0 ts in
  view segs total

let empty () = view [] 0

(* --- Rendering -------------------------------------------------------- *)

let preview ?(max_len = 32) t =
  if Atomic.get t.released then Printf.sprintf "chunk<%d released>" t.total
  else begin
    let shown = min max_len t.total in
    let b = Bytes.create shown in
    blit_to_bytes t ~src_pos:0 b ~dst_pos:0 ~len:shown;
    Printf.sprintf "chunk<%d%s%S%s>" t.total
      (if shown > 0 then ":" else "")
      (Bytes.unsafe_to_string b)
      (if shown < t.total then "…" else "")
  end

let pp ppf t = Format.pp_print_string ppf (preview t)
