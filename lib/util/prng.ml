(* SplitMix64, Steele et al., "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  Chosen because it is trivially splittable
   and its 64-bit mixing function is well studied. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let popcount x =
  let rec go x acc =
    if Int64.equal x 0L then acc else go (Int64.logand x (Int64.sub x 1L)) (acc + 1)
  in
  go x 0

(* mix_gamma guarantees the gamma is odd and has enough bit transitions
   to keep child streams independent. *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logor z 1L in
  let n = popcount (Int64.logxor z (Int64.shift_right_logical z 1)) in
  if n < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create seed = { state = seed; gamma = golden_gamma }

let copy t = { state = t.state; gamma = t.gamma }

let next_raw t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let next_int64 t = mix64 (next_raw t)

let split t =
  let s = next_raw t in
  let g = next_raw t in
  { state = mix64 s; gamma = mix_gamma g }

let split_n t n =
  if n < 0 then invalid_arg "Prng.split_n: negative count";
  Array.init n (fun _ -> split t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Mask to 62 bits so Int64.to_int cannot land in OCaml's sign bit.
     Modulo bias is negligible (< 2^-40) for the small bounds used by
     the simulator. *)
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))
