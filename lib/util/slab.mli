(** Generation-stamped slab: a flat, GC-friendly entity store.

    A slab holds up to millions of entries in one contiguous array with
    a free-list of recycled slots, so the per-entry cost is one array
    cell plus one generation word — no per-binding buckets, no
    rehashing, no tree nodes for the GC to trace.

    Every allocation returns a {e handle}: an int packing the slot index
    with the slot's generation stamp.  Freeing a slot bumps its
    generation, so a stale handle (one whose slot was freed, or freed
    and reallocated) always {e misses} — it can never alias the slot's
    next resident.  This is the property the kernel's UID map needs:
    lookups by a destroyed Eject's UID must fail, not hit a recycled
    entry.

    Iteration order is deterministic: ascending slot index, which
    depends only on the history of alloc/free operations, never on
    hashing. *)

type 'a t

type handle = int
(** [slot lor (generation lsl slot_bits)].  Always positive; never 0 is
    {e not} guaranteed, so use [-1] (or any negative int) as a sentinel
    for "no handle". *)

val slot_bits : int
(** Number of low bits holding the slot index (26: up to ~67M slots). *)

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills empty cells so freed payloads are not retained by the
    array.  It is never returned by [get]/[free]. *)

val alloc : 'a t -> 'a -> handle
(** O(1); reuses the most recently freed slot, growing the arrays
    (doubling) when the free list is empty. *)

val get : 'a t -> handle -> 'a option
(** [None] when the handle is stale (freed, or freed-and-reallocated)
    or out of range. *)

val mem : 'a t -> handle -> bool

val set : 'a t -> handle -> 'a -> bool
(** Replaces a live handle's payload; [false] (and no write) when
    stale. *)

val free : 'a t -> handle -> 'a option
(** Releases the slot, returning its payload; [None] when the handle
    was already stale (double-free is a miss, not a corruption).  The
    cell is reset to [dummy] so the payload can be collected. *)

val live : 'a t -> int
(** Number of live entries. *)

val capacity : 'a t -> int
(** Current physical slot count (grows, never shrinks). *)

val iter : (handle -> 'a -> unit) -> 'a t -> unit
(** Live entries in ascending slot order. *)

val fold : (handle -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc

val slot_of : handle -> int
val generation_of : handle -> int
