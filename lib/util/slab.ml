let slot_bits = 26
let slot_mask = (1 lsl slot_bits) - 1
let max_slots = 1 lsl slot_bits

type handle = int

(* A slot's generation is even while free and odd while occupied; both
   alloc and free bump it.  A handle carries the (odd) generation the
   slot had when allocated, so liveness and staleness are one
   comparison: the handle is live iff [gens.(slot)] still equals its
   generation. *)
type 'a t = {
  dummy : 'a;
  mutable data : 'a array;
  mutable gens : int array;
  mutable free_stack : int array; (* LIFO: reuse the hottest slot first *)
  mutable free_top : int; (* number of valid entries in [free_stack] *)
  mutable used : int; (* slots ever touched: [0, used) are initialised *)
  mutable live : int;
}

let create ?(capacity = 16) ~dummy () =
  let capacity = max 1 (min capacity max_slots) in
  {
    dummy;
    data = Array.make capacity dummy;
    gens = Array.make capacity 0;
    free_stack = Array.make capacity 0;
    free_top = 0;
    used = 0;
    live = 0;
  }

let live t = t.live
let capacity t = Array.length t.data
let slot_of h = h land slot_mask
let generation_of h = h lsr slot_bits

let grow t =
  let cap = Array.length t.data in
  if cap >= max_slots then failwith "Slab: slot space exhausted";
  let cap' = min max_slots (2 * cap) in
  let data' = Array.make cap' t.dummy in
  Array.blit t.data 0 data' 0 cap;
  t.data <- data';
  let gens' = Array.make cap' 0 in
  Array.blit t.gens 0 gens' 0 cap;
  t.gens <- gens';
  let free' = Array.make cap' 0 in
  Array.blit t.free_stack 0 free' 0 t.free_top;
  t.free_stack <- free'

let alloc t v =
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free_stack.(t.free_top)
    end
    else begin
      if t.used >= Array.length t.data then grow t;
      let s = t.used in
      t.used <- t.used + 1;
      s
    end
  in
  let gen = t.gens.(slot) + 1 in
  t.gens.(slot) <- gen;
  t.data.(slot) <- v;
  t.live <- t.live + 1;
  slot lor (gen lsl slot_bits)

let is_live t h =
  let slot = h land slot_mask in
  h >= 0 && slot < t.used && t.gens.(slot) = h lsr slot_bits

let get t h = if is_live t h then Some t.data.(h land slot_mask) else None
let mem = is_live

let set t h v =
  if is_live t h then begin
    t.data.(h land slot_mask) <- v;
    true
  end
  else false

let free t h =
  if not (is_live t h) then None
  else begin
    let slot = h land slot_mask in
    let v = t.data.(slot) in
    t.data.(slot) <- t.dummy;
    t.gens.(slot) <- t.gens.(slot) + 1;
    t.free_stack.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1;
    t.live <- t.live - 1;
    Some v
  end

let iter f t =
  for slot = 0 to t.used - 1 do
    let gen = t.gens.(slot) in
    if gen land 1 = 1 then f (slot lor (gen lsl slot_bits)) t.data.(slot)
  done

let fold f t init =
  let acc = ref init in
  iter (fun h v -> acc := f h v !acc) t;
  !acc
