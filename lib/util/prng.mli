(** Deterministic splittable pseudo-random number generator (SplitMix64).

    All randomness in the simulator flows through a [Prng.t] so that every
    experiment is reproducible from a single seed.  The generator may be
    [split] to give independent streams to independent components without
    serialising their draws through shared state. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator.  Equal seeds give equal streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and the original then
    produce identical streams. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator.  Used to give sub-components their own streams.

    A generator itself is {e not} domain-safe: callers that need
    randomness on several domains must [split] (or {!split_n}) {e
    before} spawning and hand each domain its own child.  The SplitMix64
    construction guarantees child streams do not correlate with each
    other or with the parent's subsequent draws. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] independent child generators, split off in
    order.  The per-domain idiom: split once on the spawning domain,
    move one child into each [Domain.spawn].
    @raise Invalid_argument on negative [n]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean; used by latency models. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.  @raise Invalid_argument on
    an empty array. *)
