module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) = struct
  (* Each node carries a sequence number so that equal keys pop in
     insertion order: the event loop must be FIFO among simultaneous
     events or the simulation would be non-deterministic. *)
  type 'a node = {
    key : Ord.t;
    seq : int;
    value : 'a;
    left : 'a tree;
    right : 'a tree;
    rank : int;
  }

  and 'a tree = Leaf | Node of 'a node

  type 'a t = { tree : 'a tree; size : int; next_seq : int }

  let empty = { tree = Leaf; size = 0; next_seq = 0 }
  let is_empty t = t.size = 0
  let size t = t.size

  let rank = function Leaf -> 0 | Node n -> n.rank

  let less a b =
    let c = Ord.compare a.key b.key in
    if c <> 0 then c < 0 else a.seq < b.seq

  let make_node key seq value l r =
    if rank l >= rank r then Node { key; seq; value; left = l; right = r; rank = rank r + 1 }
    else Node { key; seq; value; left = r; right = l; rank = rank l + 1 }

  let rec merge a b =
    match a, b with
    | Leaf, t | t, Leaf -> t
    | Node na, Node nb ->
        if less na nb then make_node na.key na.seq na.value na.left (merge na.right b)
        else make_node nb.key nb.seq nb.value nb.left (merge a nb.right)

  let insert key value t =
    let single = Node { key; seq = t.next_seq; value; left = Leaf; right = Leaf; rank = 1 } in
    { tree = merge t.tree single; size = t.size + 1; next_seq = t.next_seq + 1 }

  let find_min t = match t.tree with Leaf -> None | Node n -> Some (n.key, n.value)

  let delete_min t =
    match t.tree with
    | Leaf -> None
    | Node n -> Some (n.key, n.value, { t with tree = merge n.left n.right; size = t.size - 1 })

  (* Every entry tied with the minimum sits in a connected subtree at
     the root: an equal-min node's ancestors all carry keys <= min, hence
     equal to it.  Both functions below walk only that subtree. *)
  let min_tie_count t =
    match t.tree with
    | Leaf -> 0
    | Node root ->
        let k = root.key in
        let rec count = function
          | Leaf -> 0
          | Node n -> if Ord.compare n.key k = 0 then 1 + count n.left + count n.right else 0
        in
        count t.tree

  let delete_nth_min t i =
    if i < 0 then invalid_arg "Heap.delete_nth_min: negative index";
    match t.tree with
    | Leaf -> None
    | Node root ->
        let min_key = root.key in
        (* Stable pops deliver ties in insertion order; collect the
           first [i] of them, keep the [i]-th, and merge the collected
           ones back as singletons with their original sequence numbers
           so stability is fully preserved. *)
        let rec take k acc tree size =
          match tree with
          | Node n when Ord.compare n.key min_key = 0 ->
              let rest = merge n.left n.right in
              if k = 0 then Some (n, acc, rest, size - 1)
              else take (k - 1) (n :: acc) rest (size - 1)
          | Leaf | Node _ -> None
        in
        (match take i [] t.tree t.size with
        | None -> invalid_arg "Heap.delete_nth_min: index beyond tie count"
        | Some (chosen, popped, rest, size) ->
            let tree =
              List.fold_left
                (fun tr n -> merge tr (Node { n with left = Leaf; right = Leaf; rank = 1 }))
                rest popped
            in
            Some
              ( chosen.key,
                chosen.value,
                { tree; size = size + List.length popped; next_seq = t.next_seq } ))

  let of_list kvs = List.fold_left (fun t (k, v) -> insert k v t) empty kvs

  let to_sorted_list t =
    let rec go t acc =
      match delete_min t with None -> List.rev acc | Some (k, v, t') -> go t' ((k, v) :: acc)
    in
    go t []
end
