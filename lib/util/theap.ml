type handle = int

let slot_bits = Slab.slot_bits
let slot_mask = (1 lsl slot_bits) - 1

(* Parallel slot arrays (keys/seqs/values/pos) plus a heap array of
   slot indices.  [pos.(slot)] is the slot's current index in [heap],
   maintained through every sift, which is what makes removal by handle
   O(log n).  Generations live in [gens] exactly as in {!Slab}: odd
   while occupied, bumped on both alloc and release. *)
type 'a t = {
  dummy : 'a;
  mutable keys : float array; (* per slot: deadline *)
  mutable seqs : int array; (* per slot: insertion stamp, ties tiebreak *)
  mutable values : 'a array;
  mutable pos : int array; (* per slot: index into [heap] *)
  mutable gens : int array;
  mutable free_stack : int array;
  mutable free_top : int;
  mutable used : int;
  mutable heap : int array; (* heap of slots, ordered by (key, seq) *)
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 16) ~dummy () =
  let capacity = max 1 capacity in
  {
    dummy;
    keys = Array.make capacity 0.0;
    seqs = Array.make capacity 0;
    values = Array.make capacity dummy;
    pos = Array.make capacity (-1);
    gens = Array.make capacity 0;
    free_stack = Array.make capacity 0;
    free_top = 0;
    used = 0;
    heap = Array.make capacity 0;
    size = 0;
    next_seq = 0;
  }

let size t = t.size
let is_empty t = t.size = 0

let less t a b =
  let c = Float.compare t.keys.(a) t.keys.(b) in
  if c <> 0 then c < 0 else t.seqs.(a) < t.seqs.(b)

let place t slot idx =
  t.heap.(idx) <- slot;
  t.pos.(slot) <- idx

let rec sift_up t idx =
  if idx > 0 then begin
    let parent = (idx - 1) / 2 in
    if less t t.heap.(idx) t.heap.(parent) then begin
      let a = t.heap.(idx) and b = t.heap.(parent) in
      place t a parent;
      place t b idx;
      sift_up t parent
    end
  end

let rec sift_down t idx =
  let l = (2 * idx) + 1 in
  if l < t.size then begin
    let r = l + 1 in
    let m = if r < t.size && less t t.heap.(r) t.heap.(l) then r else l in
    if less t t.heap.(m) t.heap.(idx) then begin
      let a = t.heap.(idx) and b = t.heap.(m) in
      place t a m;
      place t b idx;
      sift_down t m
    end
  end

let grow t =
  let cap = Array.length t.keys in
  let cap' = 2 * cap in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.keys <- extend t.keys 0.0;
  t.seqs <- extend t.seqs 0;
  t.values <- extend t.values t.dummy;
  t.pos <- extend t.pos (-1);
  t.gens <- extend t.gens 0;
  t.free_stack <- extend t.free_stack 0;
  t.heap <- extend t.heap 0

let insert t key v =
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free_stack.(t.free_top)
    end
    else begin
      if t.used >= Array.length t.keys then grow t;
      let s = t.used in
      t.used <- t.used + 1;
      s
    end
  in
  let gen = t.gens.(slot) + 1 in
  t.gens.(slot) <- gen;
  t.keys.(slot) <- key;
  t.seqs.(slot) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.values.(slot) <- v;
  place t slot t.size;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  slot lor (gen lsl slot_bits)

let is_live t h =
  let slot = h land slot_mask in
  h >= 0 && slot < t.used && t.gens.(slot) = h lsr slot_bits

(* Detach the entry at heap index [idx]: swap the last entry in, then
   restore heap order from there.  The vacated slot is recycled. *)
let delete_at t idx =
  let slot = t.heap.(idx) in
  let key = t.keys.(slot) and v = t.values.(slot) in
  t.values.(slot) <- t.dummy;
  t.pos.(slot) <- -1;
  t.gens.(slot) <- t.gens.(slot) + 1;
  t.free_stack.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1;
  t.size <- t.size - 1;
  if idx < t.size then begin
    place t t.heap.(t.size) idx;
    sift_up t idx;
    sift_down t idx
  end;
  (key, v)

let remove t h =
  if not (is_live t h) then false
  else begin
    ignore (delete_at t (t.pos.(h land slot_mask)));
    true
  end

let find_min t =
  if t.size = 0 then None
  else
    let slot = t.heap.(0) in
    Some (t.keys.(slot), t.values.(slot))

let delete_min t = if t.size = 0 then None else Some (delete_at t 0)

let min_tie_count t =
  if t.size = 0 then 0
  else begin
    (* Entries tied with the minimum form a connected region reachable
       from the root through tied parents; walk just that region. *)
    let k = t.keys.(t.heap.(0)) in
    let rec count idx =
      if idx >= t.size || t.keys.(t.heap.(idx)) <> k then 0
      else 1 + count ((2 * idx) + 1) + count ((2 * idx) + 2)
    in
    count 0
  end

let delete_nth_min t i =
  if i < 0 then invalid_arg "Theap.delete_nth_min: negative index";
  if t.size = 0 then None
  else begin
    let k = t.keys.(t.heap.(0)) in
    (* Collect the tied entries' heap indices, order them by insertion
       stamp, and physically delete the i-th.  [delete_at] preserves
       the (key, seq) order of everything left in the heap, so the
       remaining ties keep their relative insertion order. *)
    let ties = ref [] in
    let rec collect idx =
      if idx < t.size && t.keys.(t.heap.(idx)) = k then begin
        ties := idx :: !ties;
        collect ((2 * idx) + 1);
        collect ((2 * idx) + 2)
      end
    in
    collect 0;
    let by_seq =
      List.sort
        (fun a b -> Int.compare t.seqs.(t.heap.(a)) t.seqs.(t.heap.(b)))
        !ties
    in
    match List.nth_opt by_seq i with
    | None -> invalid_arg "Theap.delete_nth_min: index beyond tie count"
    | Some idx -> Some (delete_at t idx)
  end
