(** Fixed-capacity circular FIFO buffer.

    This is the data structure behind every passive buffer and device
    queue in the simulator.  Operations are O(1); the buffer never
    allocates after creation. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push t x] appends [x]; returns [false] (and does nothing) when full. *)

val push_exn : 'a t -> 'a -> unit
(** @raise Failure when full. *)

val push_force : 'a t -> 'a -> 'a option
(** [push_force t x] appends [x], evicting and returning the oldest
    element when the buffer is full.  Returns [None] when no eviction
    was needed. *)

val pop : 'a t -> 'a option
(** Removes and returns the oldest element. *)

val pop_exn : 'a t -> 'a
(** @raise Failure when empty. *)

val peek : 'a t -> 'a option
(** Oldest element without removing it. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest-first iteration over current contents. *)

val to_list : 'a t -> 'a list
(** Oldest-first snapshot. *)
