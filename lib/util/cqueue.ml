type 'a t = {
  mutable data : 'a option array; (* None marks an empty cell *)
  mutable head : int; (* index of the front element *)
  mutable len : int;
}

let create ?(capacity = 16) () =
  { data = Array.make (max 1 capacity) None; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.data in
  let data' = Array.make (2 * cap) None in
  for i = 0 to t.len - 1 do
    data'.(i) <- t.data.((t.head + i) mod cap)
  done;
  t.data <- data';
  t.head <- 0

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.((t.head + t.len) mod Array.length t.data) <- Some x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.data.(t.head) in
    t.data.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.data;
    t.len <- t.len - 1;
    x
  end

let pop_exn t = match pop t with Some x -> x | None -> invalid_arg "Cqueue.pop_exn: empty"
let peek t = if t.len = 0 then None else t.data.(t.head)

let clear t =
  let cap = Array.length t.data in
  for i = 0 to t.len - 1 do
    t.data.((t.head + i) mod cap) <- None
  done;
  t.head <- 0;
  t.len <- 0

let iter f t =
  let cap = Array.length t.data in
  for i = 0 to t.len - 1 do
    match t.data.((t.head + i) mod cap) with Some x -> f x | None -> assert false
  done

(* Shift the elements in front of [i] back by one cell, so the hole
   left by the taken element closes toward the head and everything
   keeps its relative order. *)
let take_nth t i =
  if i < 0 || i >= t.len then invalid_arg "Cqueue.take_nth: out of range";
  let cap = Array.length t.data in
  let x = t.data.((t.head + i) mod cap) in
  for j = i downto 1 do
    t.data.((t.head + j) mod cap) <- t.data.((t.head + j - 1) mod cap)
  done;
  t.data.(t.head) <- None;
  t.head <- (t.head + 1) mod cap;
  t.len <- t.len - 1;
  match x with Some x -> x | None -> assert false
