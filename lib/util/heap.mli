(** Leftist min-heap, the priority queue behind the virtual-time event
    loop.  Keys are compared with the ordering supplied to [Make]. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) : sig
  type 'a t
  (** Heap of values prioritised by [Ord.t] keys.  Immutable. *)

  val empty : 'a t
  val is_empty : 'a t -> bool
  val size : 'a t -> int
  val insert : Ord.t -> 'a -> 'a t -> 'a t

  val find_min : 'a t -> (Ord.t * 'a) option
  (** Smallest key, with insertion order breaking ties (stable). *)

  val delete_min : 'a t -> (Ord.t * 'a * 'a t) option

  val min_tie_count : 'a t -> int
  (** How many entries share the minimal key ([0] on an empty heap).
      These are exactly the entries a schedule-exploration policy may
      legally choose between: anything with a larger key must wait. *)

  val delete_nth_min : 'a t -> int -> (Ord.t * 'a * 'a t) option
  (** [delete_nth_min t i] removes the [i]-th entry (0-based, in
      insertion order) among those tied with the minimal key.  Every
      other entry keeps its insertion rank, so repeated stable pops see
      the untouched order — [delete_nth_min t 0] behaves exactly like
      {!delete_min}.  [None] on an empty heap.
      @raise Invalid_argument if [i] is negative or at least
      {!min_tie_count}. *)

  val of_list : (Ord.t * 'a) list -> 'a t
  val to_sorted_list : 'a t -> (Ord.t * 'a) list
end
