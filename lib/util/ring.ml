type 'a t = {
  buf : 'a option array;
  mutable head : int; (* index of oldest element *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; head = 0; len = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = Array.length t.buf

let push t x =
  if is_full t then false
  else begin
    let i = (t.head + t.len) mod Array.length t.buf in
    t.buf.(i) <- Some x;
    t.len <- t.len + 1;
    true
  end

let push_exn t x = if not (push t x) then failwith "Ring.push_exn: full"

let push_force t x =
  if not (is_full t) then begin
    ignore (push t x);
    None
  end
  else begin
    let evicted = t.buf.(t.head) in
    t.buf.(t.head) <- Some x;
    t.head <- (t.head + 1) mod Array.length t.buf;
    evicted
  end

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    x
  end

let pop_exn t = match pop t with Some x -> x | None -> failwith "Ring.pop_exn: empty"

let peek t = if t.len = 0 then None else t.buf.(t.head)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0

let iter f t =
  let n = Array.length t.buf in
  for k = 0 to t.len - 1 do
    match t.buf.((t.head + k) mod n) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc
