(** Growable array-backed circular FIFO.

    A flat replacement for [Stdlib.Queue] on hot paths: one contiguous
    array, no per-element cons cells, amortised O(1) push/pop.  The
    scheduler's run queue and Eject mailboxes sit on this, so a node
    with many runnable fibers costs the GC one array instead of a
    linked spine per enqueue. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val pop_exn : 'a t -> 'a
val peek : 'a t -> 'a option
val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back over current contents. *)

val take_nth : 'a t -> int -> 'a
(** [take_nth t i] removes and returns the [i]-th element from the
    front (0 = front), preserving the relative order of the others.
    O(i).  @raise Invalid_argument when out of range. *)
