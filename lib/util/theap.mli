(** Index-backed mutable timer heap with physical removal.

    An array-backed binary heap of [(deadline, value)] entries, ordered
    lexicographically by [(deadline, insertion sequence)] — a total
    order, so equal deadlines pop strictly in insertion order (the
    stability the scheduler's ordering contract requires) and the heap's
    internal layout is deterministic.

    Every insertion returns a generation-stamped {!handle} backed by a
    {!Slab}-style slot table that tracks each entry's current heap
    position, so {!remove} physically deletes an entry in O(log n) — a
    cancelled timer costs nothing afterwards, instead of sitting in the
    heap as a tombstone until its deadline would have fired. *)

type 'a t

type handle = int
(** Stale-proof: removing (or popping) an entry invalidates its handle;
    a later {!remove} with the same handle is a no-op returning
    [false]. *)

val create : ?capacity:int -> dummy:'a -> unit -> 'a t

val insert : 'a t -> float -> 'a -> handle

val remove : 'a t -> handle -> bool
(** Physically deletes the entry; [false] when the handle is stale
    (already removed or already fired). *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val find_min : 'a t -> (float * 'a) option

val delete_min : 'a t -> (float * 'a) option
(** Earliest deadline; insertion order among ties. *)

val min_tie_count : 'a t -> int
(** How many entries are tied at the minimum deadline. *)

val delete_nth_min : 'a t -> int -> (float * 'a) option
(** [delete_nth_min t i] removes the [i]-th entry (insertion order)
    among those tied at the minimum deadline.  The relative order of
    the remaining ties is preserved.
    @raise Invalid_argument when [i] is out of range. *)
