(* Discrete-event cooperative scheduler built on OCaml 5 effect
   handlers.  The design constraint throughout is determinism: FIFO run
   queue, a stable (insertion-ordered) timer heap, and virtual time that
   advances only at quiescence of the run queue.

   Both hot structures are flat stores (see Eden_util.Cqueue and
   Eden_util.Theap): the run queue is one circular array, and the timer
   heap is an index-backed binary heap whose entries are physically
   removed on cancellation instead of lingering as tombstones until
   their deadline. *)

module Cqueue = Eden_util.Cqueue
module Theap = Eden_util.Theap

exception Cancelled

type fiber_id = int

type timer_handle = int

type state = Ready | Running | Blocked of string | Finished

(* [fired] makes resume/cancel mutually exclusive and idempotent:
   whichever of {waker, canceller, timer} gets there first wins.
   [wtimer] is the heap handle of the pending timer backing this wake
   (sleeps, timeouts); firing or cancelling removes it from the heap so
   a cancelled sleep costs nothing afterwards. *)
type wake = {
  mutable fired : bool;
  mutable cancel_hook : unit -> unit;
  mutable wtimer : timer_handle;
}

type fiber = {
  fid : fiber_id;
  fname : string;
  mutable fstate : state;
  mutable fwake : wake option;
  mutable fcancelled : bool;
}

(* A run-queue slice remembers which fiber it will resume so a
   scheduling policy can choose between runnable fibers by id. *)
type slice = { sfid : fiber_id; thunk : unit -> unit }

type t = {
  runq : slice Cqueue.t;
  timers : (unit -> unit) Theap.t;
  mutable clock : float;
  fibers : (fiber_id, fiber) Hashtbl.t;
  mutable next_id : int;
  mutable failures : (string * exn) list;
  mutable current : fiber option;
  mutable live : int;
  mutable finish_hook : fiber_id -> unit;
  (* Schedule-exploration hooks.  [chooser = None] is the bit-identical
     FIFO default; [note_hook = None] makes [note] free. *)
  mutable chooser : (kind:string -> ids:int array -> int) option;
  mutable note_hook : (kind:string -> arg:int -> unit) option;
}

type _ Effect.t +=
  | Yield : unit Effect.t
  | Sleep : float -> unit Effect.t
  | Suspend : (string * ((unit -> unit) -> unit)) -> unit Effect.t
  | Time : float Effect.t
  | Self : fiber Effect.t
  | Spawn_inside : (string option * (unit -> unit)) -> fiber_id Effect.t

let create () =
  {
    runq = Cqueue.create ();
    timers = Theap.create ~dummy:(fun () -> ()) ();
    clock = 0.0;
    fibers = Hashtbl.create 64;
    next_id = 0;
    failures = [];
    current = None;
    live = 0;
    finish_hook = ignore;
    chooser = None;
    note_hook = None;
  }

let set_finish_hook t hook = t.finish_hook <- hook
let set_chooser t c = t.chooser <- c
let set_note_hook t h = t.note_hook <- h

let note t ~kind ~arg = match t.note_hook with None -> () | Some f -> f ~kind ~arg

let now t = t.clock

let timer_cancellable t delay thunk =
  let delay = if delay < 0.0 then 0.0 else delay in
  Theap.insert t.timers (t.clock +. delay) thunk

let timer t delay thunk = ignore (timer_cancellable t delay thunk)
let cancel_timer t h = ignore (Theap.remove t.timers h)
let timer_count t = Theap.size t.timers

(* Finished fibers are removed from the table immediately: keeping
   them made [t.fibers] (and every [blocked]/[cancel] scan over it)
   grow without bound over long runs. *)
let finish t fiber outcome =
  fiber.fstate <- Finished;
  fiber.fwake <- None;
  t.live <- t.live - 1;
  Hashtbl.remove t.fibers fiber.fid;
  t.finish_hook fiber.fid;
  match outcome with
  | None -> ()
  | Some exn -> t.failures <- (fiber.fname, exn) :: t.failures

(* Park [fiber]; build the resume/cancel pair sharing one [wake].
   [register] receives the resume closure and returns the handle of the
   backing timer (or [-1] when there is none), so whichever of
   {resume, cancel} fires first can delete the timer from the heap —
   physically, not as a tombstone.  A handle already popped by the
   firing timer itself is stale by then, and removal is a no-op. *)
let park t fiber reason (k : (unit, unit) Effect.Deep.continuation) register =
  fiber.fstate <- Blocked reason;
  let wake = { fired = false; cancel_hook = (fun () -> ()); wtimer = -1 } in
  fiber.fwake <- Some wake;
  let drop_timer () =
    if wake.wtimer >= 0 then begin
      ignore (Theap.remove t.timers wake.wtimer);
      wake.wtimer <- -1
    end
  in
  let resume () =
    if not wake.fired then begin
      wake.fired <- true;
      drop_timer ();
      fiber.fwake <- None;
      fiber.fstate <- Ready;
      Cqueue.push t.runq
        {
          sfid = fiber.fid;
          thunk =
            (fun () ->
              t.current <- Some fiber;
              fiber.fstate <- Running;
              if fiber.fcancelled then Effect.Deep.discontinue k Cancelled
              else Effect.Deep.continue k ());
        }
    end
  in
  let cancel () =
    if not wake.fired then begin
      wake.fired <- true;
      drop_timer ();
      fiber.fwake <- None;
      fiber.fstate <- Ready;
      Cqueue.push t.runq
        {
          sfid = fiber.fid;
          thunk =
            (fun () ->
              t.current <- Some fiber;
              fiber.fstate <- Running;
              Effect.Deep.discontinue k Cancelled);
        }
    end
  in
  wake.cancel_hook <- cancel;
  let h = register resume in
  (* [register] may have resumed synchronously; the handle then belongs
     to a wake that already fired, so delete rather than record it. *)
  if wake.fired then begin
    if h >= 0 then ignore (Theap.remove t.timers h)
  end
  else wake.wtimer <- h

let rec spawn t ?name body =
  let fid = t.next_id in
  t.next_id <- fid + 1;
  let fname = match name with Some n -> n | None -> Printf.sprintf "fiber-%d" fid in
  let fiber = { fid; fname; fstate = Ready; fwake = None; fcancelled = false } in
  Hashtbl.replace t.fibers fid fiber;
  t.live <- t.live + 1;
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> finish t fiber None);
      exnc =
        (fun exn ->
          match exn with Cancelled -> finish t fiber None | exn -> finish t fiber (Some exn));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if fiber.fcancelled then Effect.Deep.discontinue k Cancelled
                  else begin
                    fiber.fstate <- Ready;
                    Cqueue.push t.runq
                      {
                        sfid = fiber.fid;
                        thunk =
                          (fun () ->
                            t.current <- Some fiber;
                            fiber.fstate <- Running;
                            if fiber.fcancelled then Effect.Deep.discontinue k Cancelled
                            else Effect.Deep.continue k ());
                      }
                  end)
          | Sleep d ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if fiber.fcancelled then Effect.Deep.discontinue k Cancelled
                  else
                    park t fiber
                      (Printf.sprintf "sleep %.3f" d)
                      k
                      (fun resume -> timer_cancellable t d resume))
          | Suspend (reason, register) ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if fiber.fcancelled then Effect.Deep.discontinue k Cancelled
                  else
                    park t fiber reason k (fun resume ->
                        register resume;
                        -1))
          | Time -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> Effect.Deep.continue k t.clock)
          | Self -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> Effect.Deep.continue k fiber)
          | Spawn_inside (name, body) ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let fid : fiber_id = spawn_dispatch t name body in
                  Effect.Deep.continue k fid)
          | _ -> None);
    }
  in
  let thunk () =
    t.current <- Some fiber;
    if fiber.fcancelled then finish t fiber None
    else begin
      fiber.fstate <- Running;
      Effect.Deep.match_with body () handler
    end
  in
  Cqueue.push t.runq { sfid = fid; thunk };
  fid

(* Indirection so the Spawn_inside handler (defined inside [spawn]) can
   recurse into [spawn] with optional-argument plumbing resolved. *)
and spawn_dispatch t name body =
  match name with Some n -> spawn t ~name:n body | None -> spawn t body

let cancel t fid =
  match Hashtbl.find_opt t.fibers fid with
  | None -> ()
  | Some fiber -> (
      match fiber.fstate with
      | Finished -> ()
      | Running | Ready | Blocked _ -> (
          fiber.fcancelled <- true;
          match fiber.fwake with Some w -> w.cancel_hook () | None -> ()))

(* Ask the chooser (when installed, and only when there is an actual
   choice) which index to take; out-of-range answers are a policy bug. *)
let consult t ~kind ~ids =
  match t.chooser with
  | None -> 0
  | Some choose ->
      let n = Array.length ids in
      if n <= 1 then 0
      else begin
        let i = choose ~kind ~ids in
        if i < 0 || i >= n then
          invalid_arg
            (Printf.sprintf "Sched: chooser returned %d for %d-way %s pick" i n kind);
        i
      end

(* Dequeue the next runnable slice.  FIFO (head of queue) unless a
   chooser picks otherwise; the relative order of unchosen slices is
   preserved either way. *)
let pop_slice t =
  match t.chooser with
  | None -> Cqueue.pop_exn t.runq
  | Some _ ->
      let n = Cqueue.length t.runq in
      if n = 1 then Cqueue.pop_exn t.runq
      else begin
        let ids = Array.make n 0 in
        let j = ref 0 in
        Cqueue.iter
          (fun s ->
            ids.(!j) <- s.sfid;
            incr j)
          t.runq;
        let i = consult t ~kind:"sched.run" ~ids in
        (* O(i) in-place extraction; unchosen slices keep their order. *)
        Cqueue.take_nth t.runq i
      end

(* Fire one pending timer.  Strictly earliest-deadline-first; a chooser
   may only break ties between timers due at the same instant. *)
let fire_timer t =
  let pick =
    match t.chooser with
    | None -> Theap.delete_min t.timers
    | Some _ ->
        let m = Theap.min_tie_count t.timers in
        if m <= 1 then Theap.delete_min t.timers
        else
          let i = consult t ~kind:"sched.timer" ~ids:(Array.init m (fun i -> i)) in
          Theap.delete_nth_min t.timers i
  in
  match pick with
  | None -> false
  | Some (time, thunk) ->
      if time > t.clock then t.clock <- time;
      thunk ();
      t.current <- None;
      true

let step t =
  if not (Cqueue.is_empty t.runq) then begin
    let s = pop_slice t in
    s.thunk ();
    t.current <- None;
    true
  end
  else fire_timer t

let run t =
  let rec go () = if step t then go () else () in
  go ()

let run_until t limit =
  let rec go () =
    if not (Cqueue.is_empty t.runq) then begin
      let s = pop_slice t in
      s.thunk ();
      t.current <- None;
      go ()
    end
    else
      match Theap.find_min t.timers with
      | Some (time, _) when time <= limit ->
          ignore (fire_timer t);
          go ()
      | Some _ | None -> if t.clock < limit then t.clock <- limit
  in
  go ()

let live_count t = t.live
let tracked_count t = Hashtbl.length t.fibers
let is_live t fid = Hashtbl.mem t.fibers fid
let current_fid t = Option.map (fun f -> f.fid) t.current

let blocked t =
  Hashtbl.fold
    (fun _ f acc -> match f.fstate with Blocked reason -> (f.fname, reason) :: acc | _ -> acc)
    t.fibers []
  |> List.sort compare

let blocked_info t =
  Hashtbl.fold
    (fun _ f acc ->
      match f.fstate with Blocked reason -> (f.fid, f.fname, reason) :: acc | _ -> acc)
    t.fibers []
  |> List.sort compare

let failures t = t.failures

let check_failures t =
  match List.rev t.failures with
  | [] -> ()
  | (name, exn) :: _ ->
      failwith (Printf.sprintf "fiber %s died: %s" name (Printexc.to_string exn))

(* Fiber-side operations. *)

let yield () = Effect.perform Yield
let sleep d = Effect.perform (Sleep d)
let suspend ~reason register = Effect.perform (Suspend (reason, register))
let time () = Effect.perform Time
let self_name () = (Effect.perform Self).fname
let spawn_inside ?name body = Effect.perform (Spawn_inside (name, body))
