(** Cooperative fiber scheduler over simulated (virtual) time.

    Every Eject process in the Eden simulation is a fiber.  Fibers run
    deterministically: a FIFO run queue, a stable timer heap, and no
    wall-clock dependence mean that a given program produces the same
    schedule on every run.  Virtual time only advances when the run
    queue drains, jumping to the earliest pending timer — the usual
    discrete-event rule.

    {2 Ordering contract}

    The exact contract — which {!step}, {!run} and {!run_until} all
    implement, and which every exploration policy (see {!set_chooser})
    must preserve — is:

    + {b Runnable before timers.}  While any fiber is runnable, no
      timer fires and virtual time does not advance.  A timer thunk
      only runs at run-queue quiescence.
    + {b Timers strictly by deadline.}  Pending timers fire in
      ascending deadline order.  Two timers due at the same instant
      fire in insertion order (the heap is stable).  The clock jumps to
      each fired timer's deadline; it never moves backwards.
    + {b FIFO among runnable fibers.}  With no chooser installed, the
      run queue is strictly FIFO: fibers run in the order they became
      runnable (spawn order for new fibers, wake order for resumed
      ones); {!yield} re-queues behind every currently runnable fiber.
    + {b Policy freedom is bounded.}  A chooser may reorder only
      {e within} the legal sets: which runnable fiber runs next, and
      which of several timers {e tied at the same deadline} fires
      first.  It can never run a later-deadline timer early, fire a
      timer while a fiber is runnable, or resurrect ordering between
      non-tied timers.
    + {b [run_until] boundary.}  [run_until t limit] fires every timer
      with deadline [<= limit] — a timer due {e exactly} at [limit]
      does fire — and then advances the clock to exactly [limit] if it
      is still behind.  Timers with deadline [> limit] stay pending.

    Blocking operations ([yield], [sleep], [suspend] and everything in
    {!Waitq}, {!Ivar}, {!Mailbox}, {!Chan}, {!Semaphore}, {!Waitgroup})
    may only be called from inside a fiber; calling them elsewhere
    raises [Effect.Unhandled].  Non-blocking operations ([spawn],
    [timer], wakes, sends) are safe anywhere. *)

type t
(** A scheduler instance. *)

type fiber_id = int

exception Cancelled
(** Raised inside a fiber that has been [cancel]led, at its next
    suspension point. *)

val create : unit -> t

(** {1 Driving the simulation} *)

val run : t -> unit
(** Runs until quiescence: no runnable fiber and no pending timer.
    Blocked fibers may remain (e.g. servers parked waiting for requests);
    inspect them with [blocked]. *)

val run_until : t -> float -> unit
(** Like [run] but bounded by virtual time: fires every timer due at or
    before the given instant (the boundary is {e inclusive}: a timer due
    exactly at [limit] fires), then stops with the clock set to exactly
    [limit].  Timers due strictly after [limit] stay pending.  See the
    ordering contract above. *)

val step : t -> bool
(** Executes one runnable fiber slice, or — only when no fiber is
    runnable — one timer; [false] when quiescent.  Useful for tests
    that interleave assertions.  See the ordering contract above. *)

val now : t -> float
(** Current virtual time. *)

val live_count : t -> int
(** Fibers spawned and not yet finished. *)

val tracked_count : t -> int
(** Fibers currently held in the scheduler table.  Finished fibers are
    removed eagerly, so after [run] this counts only live (typically
    blocked) fibers. *)

val is_live : t -> fiber_id -> bool
(** Whether the fiber exists and has not finished. *)

val current_fid : t -> fiber_id option
(** The id of the fiber currently executing, if any.  [None] between
    fibers and inside raw [timer] thunks. *)

val set_finish_hook : t -> (fiber_id -> unit) -> unit
(** Installs a callback invoked (synchronously, after table removal)
    each time a fiber finishes, successfully or not.  One hook per
    scheduler; setting replaces the previous one.  Used by the kernel
    to drop fiber-to-Eject bookkeeping. *)

(** {1 Schedule exploration hooks}

    The systematic concurrency checker (Eden_check) drives these.  With
    no chooser installed the scheduler is the bit-identical FIFO
    baseline and [note] is free, so production runs are unaffected. *)

val set_chooser : t -> (kind:string -> ids:int array -> int) option -> unit
(** Installs (or clears) a scheduling policy.  At each decision point
    with more than one legal alternative the chooser is called with the
    decision [kind] and the candidates, and must return an index into
    [ids]:

    - ["sched.run"]: [ids] are the ids of the runnable fibers in FIFO
      order; the chosen fiber runs next.  Unchosen fibers keep their
      relative order.
    - ["sched.timer"]: [ids] is [[|0 .. m-1|]] for [m] timers tied at
      the earliest deadline, in insertion order; the chosen one fires.

    Decision points with exactly one alternative are not reported.  An
    out-of-range answer raises [Invalid_argument].  Policies can only
    reorder within the legal sets of the ordering contract above. *)

val set_note_hook : t -> (kind:string -> arg:int -> unit) option -> unit
(** Installs (or clears) a recorder for {!note} events. *)

val note : t -> kind:string -> arg:int -> unit
(** Records an externally-made nondeterministic decision (a network
    loss draw, a crash firing, a credit grant) into the installed note
    hook, so the decision trace captures every source of
    nondeterminism.  A no-op when no hook is installed. *)

val blocked : t -> (string * string) list
(** [(fiber name, reason)] for every currently blocked fiber. *)

val blocked_info : t -> (fiber_id * string * string) list
(** [(fiber id, fiber name, reason)] for every currently blocked
    fiber, sorted by id. *)

val failures : t -> (string * exn) list
(** Fibers that terminated with an uncaught exception (most recent
    first).  [Cancelled] terminations are not failures. *)

val check_failures : t -> unit
(** @raise Failure describing the first recorded failure, if any. *)

(** {1 Creating and controlling fibers} *)

val spawn : t -> ?name:string -> (unit -> unit) -> fiber_id
(** Registers a new fiber; it starts when the run loop reaches it. *)

val cancel : t -> fiber_id -> unit
(** Marks the fiber cancelled.  If it is blocked it is woken with
    {!Cancelled}; otherwise it receives {!Cancelled} at its next
    suspension point.  Cancelling a finished fiber is a no-op. *)

val timer : t -> float -> (unit -> unit) -> unit
(** [timer t delay f] runs [f] at virtual time [now t +. delay].  [f]
    must not block (it runs outside any fiber); typically it wakes one. *)

type timer_handle = int

val timer_cancellable : t -> float -> (unit -> unit) -> timer_handle
(** Like {!timer} but returns a handle accepted by {!cancel_timer}.
    Handles are generation-stamped: once the timer has fired (or been
    cancelled) the handle is stale and cancelling it is a no-op. *)

val cancel_timer : t -> timer_handle -> unit
(** Physically removes a pending timer from the heap.  The entry is
    deleted immediately — it does not linger as a tombstone until its
    deadline — so cancel-heavy workloads (timeouts that rarely fire,
    sleep cancellation storms) keep the heap at its live size. *)

val timer_count : t -> int
(** Number of timers currently pending in the heap.  Cancelled timers
    do not count: cancellation deletes physically. *)

(** {1 Operations inside a fiber} *)

val yield : unit -> unit
(** Re-queues the current fiber behind all currently runnable ones. *)

val sleep : float -> unit
(** Suspends for the given span of virtual time. *)

val suspend : reason:string -> ((unit -> unit) -> unit) -> unit
(** [suspend ~reason register] parks the current fiber.  [register] is
    called immediately with a [resume] closure; stash it somewhere a
    waker will find it.  [resume] is idempotent and may be called from
    any context.  [reason] appears in [blocked] listings. *)

val time : unit -> float
(** Virtual time, from inside a fiber. *)

val self_name : unit -> string

val spawn_inside : ?name:string -> (unit -> unit) -> fiber_id
(** [spawn] without needing the scheduler handle; for fibers spawning
    workers. *)
