(** Cooperative fiber scheduler over simulated (virtual) time.

    Every Eject process in the Eden simulation is a fiber.  Fibers run
    deterministically: a FIFO run queue, a stable timer heap, and no
    wall-clock dependence mean that a given program produces the same
    schedule on every run.  Virtual time only advances when the run
    queue drains, jumping to the earliest pending timer — the usual
    discrete-event rule.

    Blocking operations ([yield], [sleep], [suspend] and everything in
    {!Waitq}, {!Ivar}, {!Mailbox}, {!Chan}, {!Semaphore}, {!Waitgroup})
    may only be called from inside a fiber; calling them elsewhere
    raises [Effect.Unhandled].  Non-blocking operations ([spawn],
    [timer], wakes, sends) are safe anywhere. *)

type t
(** A scheduler instance. *)

type fiber_id = int

exception Cancelled
(** Raised inside a fiber that has been [cancel]led, at its next
    suspension point. *)

val create : unit -> t

(** {1 Driving the simulation} *)

val run : t -> unit
(** Runs until quiescence: no runnable fiber and no pending timer.
    Blocked fibers may remain (e.g. servers parked waiting for requests);
    inspect them with [blocked]. *)

val run_until : t -> float -> unit
(** Like [run] but stops once virtual time would exceed the given
    instant; timers after it stay pending. *)

val step : t -> bool
(** Executes one runnable fiber slice or one timer; [false] when
    quiescent.  Useful for tests that interleave assertions. *)

val now : t -> float
(** Current virtual time. *)

val live_count : t -> int
(** Fibers spawned and not yet finished. *)

val tracked_count : t -> int
(** Fibers currently held in the scheduler table.  Finished fibers are
    removed eagerly, so after [run] this counts only live (typically
    blocked) fibers. *)

val is_live : t -> fiber_id -> bool
(** Whether the fiber exists and has not finished. *)

val current_fid : t -> fiber_id option
(** The id of the fiber currently executing, if any.  [None] between
    fibers and inside raw [timer] thunks. *)

val set_finish_hook : t -> (fiber_id -> unit) -> unit
(** Installs a callback invoked (synchronously, after table removal)
    each time a fiber finishes, successfully or not.  One hook per
    scheduler; setting replaces the previous one.  Used by the kernel
    to drop fiber-to-Eject bookkeeping. *)

val blocked : t -> (string * string) list
(** [(fiber name, reason)] for every currently blocked fiber. *)

val blocked_info : t -> (fiber_id * string * string) list
(** [(fiber id, fiber name, reason)] for every currently blocked
    fiber, sorted by id. *)

val failures : t -> (string * exn) list
(** Fibers that terminated with an uncaught exception (most recent
    first).  [Cancelled] terminations are not failures. *)

val check_failures : t -> unit
(** @raise Failure describing the first recorded failure, if any. *)

(** {1 Creating and controlling fibers} *)

val spawn : t -> ?name:string -> (unit -> unit) -> fiber_id
(** Registers a new fiber; it starts when the run loop reaches it. *)

val cancel : t -> fiber_id -> unit
(** Marks the fiber cancelled.  If it is blocked it is woken with
    {!Cancelled}; otherwise it receives {!Cancelled} at its next
    suspension point.  Cancelling a finished fiber is a no-op. *)

val timer : t -> float -> (unit -> unit) -> unit
(** [timer t delay f] runs [f] at virtual time [now t +. delay].  [f]
    must not block (it runs outside any fiber); typically it wakes one. *)

(** {1 Operations inside a fiber} *)

val yield : unit -> unit
(** Re-queues the current fiber behind all currently runnable ones. *)

val sleep : float -> unit
(** Suspends for the given span of virtual time. *)

val suspend : reason:string -> ((unit -> unit) -> unit) -> unit
(** [suspend ~reason register] parks the current fiber.  [register] is
    called immediately with a [resume] closure; stash it somewhere a
    waker will find it.  [resume] is idempotent and may be called from
    any context.  [reason] appears in [blocked] listings. *)

val time : unit -> float
(** Virtual time, from inside a fiber. *)

val self_name : unit -> string

val spawn_inside : ?name:string -> (unit -> unit) -> fiber_id
(** [spawn] without needing the scheduler handle; for fibers spawning
    workers. *)
