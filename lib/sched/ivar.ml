type 'a t = { mutable value : 'a option; waiters : Waitq.t }

let create () = { value = None; waiters = Waitq.create "ivar" }

let try_fill t v =
  match t.value with
  | Some _ -> false
  | None ->
      t.value <- Some v;
      ignore (Waitq.wake_all t.waiters);
      true

let fill t v = if not (try_fill t v) then failwith "Ivar.fill: already filled"

let rec read t =
  match t.value with
  | Some v -> v
  | None ->
      Waitq.park t.waiters;
      read t

let read_timeout sched t delay =
  (match t.value with
  | Some _ -> ()
  | None ->
      (* Race the ivar's waiter list against a timer; the shared resume
         is idempotent so whichever fires second is a no-op.  If the
         fill wins, delete the pending timer so timeout-heavy callers
         don't grow the heap with entries that never fire. *)
      let timer = ref (-1) in
      Sched.suspend ~reason:"ivar (timeout)" (fun resume ->
          Waitq.park_external t.waiters resume;
          timer := Sched.timer_cancellable sched delay resume);
      Sched.cancel_timer sched !timer);
  t.value

let peek t = t.value
let is_filled t = t.value <> None
