type 'a t = { q : 'a Queue.t; waiters : Waitq.t }

let create ?(label = "mailbox") () = { q = Queue.create (); waiters = Waitq.create label }

let send t x =
  Queue.push x t.q;
  ignore (Waitq.wake_one t.waiters)

let rec receive t =
  match Queue.take_opt t.q with
  | Some x ->
      (* A send wakes exactly one waiter, but that waiter may lose the
         race to a non-blocked receiver; pass the wake along so no
         message strands a sleeping fiber. *)
      if not (Queue.is_empty t.q) then ignore (Waitq.wake_one t.waiters);
      x
  | None ->
      Waitq.park t.waiters;
      receive t

let receive_timeout sched t delay =
  match Queue.take_opt t.q with
  | Some x -> Some x
  | None ->
      (* As in [Ivar.read_timeout]: whichever of send/timer loses the
         race is a no-op, and a won race deletes the loser's timer. *)
      let timer = ref (-1) in
      Sched.suspend ~reason:"mailbox (timeout)" (fun resume ->
          Waitq.park_external t.waiters resume;
          timer := Sched.timer_cancellable sched delay resume);
      Sched.cancel_timer sched !timer;
      let x = Queue.take_opt t.q in
      if x <> None && not (Queue.is_empty t.q) then ignore (Waitq.wake_one t.waiters);
      x

let try_receive t = Queue.take_opt t.q
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
