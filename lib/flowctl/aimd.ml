type params = {
  min_batch : int;
  max_batch : int;
  increase : int;
  decrease : float;
  low_watermark : float;
  high_watermark : float;
}

let default_params =
  {
    min_batch = 1;
    max_batch = 64;
    increase = 8;
    decrease = 0.5;
    low_watermark = 0.25;
    high_watermark = 0.75;
  }

let params ?(min_batch = default_params.min_batch) ?(max_batch = default_params.max_batch)
    ?(increase = default_params.increase) ?(decrease = default_params.decrease)
    ?(low_watermark = default_params.low_watermark)
    ?(high_watermark = default_params.high_watermark) () =
  if min_batch < 0 then invalid_arg "Aimd.params: min_batch must be non-negative";
  if max_batch < min_batch then invalid_arg "Aimd.params: max_batch must be at least min_batch";
  if increase < 1 then invalid_arg "Aimd.params: increase must be at least 1";
  if not (decrease > 0.0 && decrease < 1.0) then
    invalid_arg "Aimd.params: decrease must be in (0, 1)";
  if low_watermark < 0.0 || low_watermark > 1.0 || high_watermark < 0.0 || high_watermark > 1.0
  then invalid_arg "Aimd.params: watermarks must be in [0, 1]";
  if high_watermark <= low_watermark then
    invalid_arg "Aimd.params: high_watermark must exceed low_watermark";
  { min_batch; max_batch; increase; decrease; low_watermark; high_watermark }

type t = {
  p : params;
  mutable batch : int;
  mutable widens : int;
  mutable shrinks : int;
}

let clamp p n = max p.min_batch (min p.max_batch n)

let create ?initial p =
  let initial = match initial with None -> p.min_batch | Some i -> clamp p i in
  { p; batch = initial; widens = 0; shrinks = 0 }

let current t = t.batch

let on_progress t =
  let next = clamp t.p (t.batch + t.p.increase) in
  if next > t.batch then begin
    t.batch <- next;
    t.widens <- t.widens + 1
  end

let on_stall t =
  let next = clamp t.p (int_of_float (float_of_int t.batch *. t.p.decrease)) in
  if next < t.batch then begin
    t.batch <- next;
    t.shrinks <- t.shrinks + 1
  end

let observe t ~occupancy =
  let occ = Float.max 0.0 (Float.min 1.0 occupancy) in
  if occ >= t.p.high_watermark then on_stall t
  else if occ <= t.p.low_watermark then on_progress t

let widens t = t.widens
let shrinks t = t.shrinks
let params_of t = t.p

let pp ppf t =
  Format.fprintf ppf "aimd[batch=%d in %d..%d widens=%d shrinks=%d]" t.batch t.p.min_batch
    t.p.max_batch t.widens t.shrinks
