(** Flow-control configuration for a stream endpoint.

    A {!t} bundles the two orthogonal knobs swept by bench experiment
    B1:

    - {b batching} — how many items one [Invoke] carries.  [Fixed n]
      pins the batch; [Adaptive p] lets an {!Aimd} controller move it
      between [p.min_batch] and [p.max_batch] in response to
      backpressure.
    - {b credit} — how many exchanges may be outstanding at once
      ({!Credit.limit}).

    [legacy] ([Fixed 1] × [Window 1]) is the paper's one-item
    rendezvous and the behavioural baseline every other configuration
    must be observationally equivalent to. *)

type batching = Fixed of int | Adaptive of Aimd.params

type t = { batching : batching; credit : Credit.limit }

val legacy : t
(** [Fixed 1] × [Window 1]: one item per invocation, strict rendezvous
    — the unbatched baseline. *)

val fixed : ?credit:Credit.limit -> int -> t
(** [fixed n] is [Fixed n] batching (default credit [Window 1]).
    @raise Invalid_argument when [n < 1]. *)

val adaptive : ?credit:Credit.limit -> ?params:Aimd.params -> unit -> t
(** AIMD-controlled batching (default params {!Aimd.default_params},
    default credit [Window 1]). *)

val initial_batch : t -> int
(** The batch the first exchange uses. *)

val max_batch : t -> int
(** Upper bound on any batch this config can produce. *)

val controller : t -> Aimd.t option
(** A fresh controller for [Adaptive], [None] for [Fixed]. *)

val credit : t -> Credit.t
(** A fresh credit window for this config. *)

val is_legacy : t -> bool
(** [true] iff the config is exactly one item per rendezvous with no
    pipelining — endpoints use this to stay on the seed code path. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
