(** Flow-control configuration for a stream endpoint.

    A {!t} bundles the two orthogonal knobs swept by bench experiment
    B1:

    - {b batching} — how many items one [Invoke] carries.  [Fixed n]
      pins the batch; [Adaptive p] lets an {!Aimd} controller move it
      between [p.min_batch] and [p.max_batch] in response to
      backpressure; [Chunked bytes] switches the endpoint to the
      zero-copy chunked plane — each exchange carries one flat
      [Value.Chunk] of roughly [bytes] payload bytes instead of a
      batch of boxed items.
    - {b credit} — how many exchanges may be outstanding at once
      ({!Credit.limit}).

    [legacy] ([Fixed 1] × [Window 1]) is the paper's one-item
    rendezvous and the behavioural baseline every other configuration
    must be observationally equivalent to. *)

type batching = Fixed of int | Adaptive of Aimd.params | Chunked of int

type t = { batching : batching; credit : Credit.limit }

val legacy : t
(** [Fixed 1] × [Window 1]: one item per invocation, strict rendezvous
    — the unbatched baseline. *)

val fixed : ?credit:Credit.limit -> int -> t
(** [fixed n] is [Fixed n] batching (default credit [Window 1]).
    @raise Invalid_argument when [n < 1]. *)

val adaptive : ?credit:Credit.limit -> ?params:Aimd.params -> unit -> t
(** AIMD-controlled batching (default params {!Aimd.default_params},
    default credit [Window 1]). *)

val default_chunk_bytes : int
(** 64 KiB. *)

val chunked : ?credit:Credit.limit -> ?chunk_bytes:int -> unit -> t
(** The chunked data plane: one flat byte chunk of about [chunk_bytes]
    (default {!default_chunk_bytes}) per exchange.  A pusher coalesces
    pending chunk items up to the threshold with zero-copy concat; a
    puller receives one chunk per seq-stamped transfer.
    @raise Invalid_argument when [chunk_bytes < 1]. *)

val initial_batch : t -> int
(** The batch the first exchange uses. *)

val max_batch : t -> int
(** Upper bound on any batch this config can produce. *)

val controller : t -> Aimd.t option
(** A fresh controller for [Adaptive], [None] for [Fixed]. *)

val credit : t -> Credit.t
(** A fresh credit window for this config. *)

val is_legacy : t -> bool
(** [true] iff the config is exactly one item per rendezvous with no
    pipelining — endpoints use this to stay on the seed code path.
    Never true for a [Chunked] config: the chunked plane must not be
    silently downgraded to the boxed rendezvous. *)

val is_chunked : t -> bool

val chunk_bytes : t -> int option
(** The coalescing threshold for a [Chunked] config, [None] otherwise. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
