(** Adaptive batch sizing: additive increase, multiplicative decrease.

    The controller owns one number — the current batch (the item count a
    [Transfer] asks for, or a [Deposit] carries) — and moves it between
    [min_batch] and [max_batch] in response to two signals:

    - {b progress} (the stream is flowing and the far side keeps up):
      widen additively by [increase];
    - {b stall} (backpressure: a short reply, a full credit window, a
      backed-up stage buffer): shrink multiplicatively by [decrease].

    This is TCP's AIMD shape applied to batch size instead of window
    size: additive probing finds the largest batch the pipeline
    sustains, multiplicative backoff yields quickly when a stage falls
    behind.  {!observe} translates a buffer-occupancy reading (from the
    {!Eden_obs.Obs.Flow} meters) into those signals through a pair of
    watermarks.

    The controller is deliberately deterministic: its trajectory is a
    pure function of the signal sequence, so a simulated run reproduces
    bit-identically under a fixed seed.

    The clamp bounds are fully parametric, and the floor may be 0: the
    same additive-increase / multiplicative-decrease shape that sizes
    batches also sizes {e replica counts} in {!Eden_elastic.Scaler},
    where [min_batch = 0] means scale-to-zero when idle.  (The field
    names keep their historical batch-flavoured spelling; read them as
    generic clamp bounds.)  Batch-sizing users go through
    {!Flowctl.adaptive}, which insists on a floor of at least 1. *)

type params = {
  min_batch : int;  (** floor, at least 0 (batch users require >= 1) *)
  max_batch : int;  (** ceiling, at least [min_batch] *)
  increase : int;  (** additive widening step, at least 1 *)
  decrease : float;  (** multiplicative shrink factor, in (0, 1) *)
  low_watermark : float;
      (** occupancy fraction at or below which {!observe} widens *)
  high_watermark : float;
      (** occupancy fraction at or above which {!observe} shrinks *)
}

val default_params : params
(** [min 1, max 64, increase 8, decrease 0.5, watermarks 0.25 / 0.75]. *)

val params :
  ?min_batch:int ->
  ?max_batch:int ->
  ?increase:int ->
  ?decrease:float ->
  ?low_watermark:float ->
  ?high_watermark:float ->
  unit ->
  params
(** Defaults as {!default_params}.  @raise Invalid_argument on a
    negative [min_batch], non-positive [increase], [max_batch < min_batch],
    [decrease] outside (0, 1), watermarks outside [0, 1] or
    [high_watermark <= low_watermark]. *)

type t

val create : ?initial:int -> params -> t
(** A fresh controller at [initial] (default [min_batch]; clamped into
    [min_batch, max_batch]). *)

val current : t -> int
(** The batch to use for the next exchange. *)

val on_progress : t -> unit
(** Additive increase, clamped at [max_batch]. *)

val on_stall : t -> unit
(** Multiplicative decrease, clamped at [min_batch]. *)

val observe : t -> occupancy:float -> unit
(** Map a downstream-occupancy fraction (0 = empty, 1 = full) onto the
    two signals: at or below [low_watermark] → {!on_progress}, at or
    above [high_watermark] → {!on_stall}, in between → hold.  Values
    are clamped into [0, 1]. *)

val widens : t -> int
(** How many {!on_progress} signals actually widened the batch. *)

val shrinks : t -> int
(** How many {!on_stall} signals actually shrank it. *)

val params_of : t -> params
val pp : Format.formatter -> t -> unit
