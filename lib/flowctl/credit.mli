(** Credit window accounting.

    A credit window bounds the number of {e outstanding} exchanges a
    client may have in flight against one port or intake: each
    [Transfer] / [Deposit] takes a credit when issued and gives it back
    when the reply lands.  [Window 1] is the paper's rendezvous —
    strictly one exchange at a time.  Wider windows pipeline
    invocations over the simulated network, hiding latency.

    [Unlimited] still pipelines through a finite client-side depth
    ({!unlimited_depth}) so "infinite credit" cannot turn into an
    unbounded queue of speculative requests. *)

type limit = Window of int | Unlimited

val pp_limit : Format.formatter -> limit -> unit
val limit_to_string : limit -> string

val unlimited_depth : int
(** Client-side pipelining depth that [Unlimited] resolves to (64). *)

val cap : limit -> int
(** The effective window: [Window n] → [n], [Unlimited] →
    {!unlimited_depth}.  @raise Invalid_argument on [Window n] with
    [n < 1]. *)

type t

val create : limit -> t
(** A window with all credits available.  @raise Invalid_argument on
    [Window n] with [n < 1]. *)

val limit : t -> limit
val available : t -> int
val in_flight : t -> int

val take : t -> bool
(** Claim one credit; [false] when the window is exhausted (a signal to
    stop issuing and drain replies). *)

val give : t -> unit
(** Return one credit.  @raise Invalid_argument when none are in
    flight — a give without a matching take is always a caller bug.
    After {!revoke} this is a no-op: replies that were already in
    flight when the window died land harmlessly. *)

val revoke : t -> int
(** Kill the window: reclaim every outstanding credit and return how
    many were reclaimed (the amount a tenant registry meters as
    [credits_reclaimed]).  Afterwards [take] always refuses,
    [available] is 0 and [give] is a no-op, so a windowed client winds
    down instead of re-issuing.  Idempotent — a second revoke reclaims
    0. *)

val revoked : t -> bool
