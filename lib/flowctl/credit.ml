type limit = Window of int | Unlimited

let pp_limit ppf = function
  | Window n -> Format.fprintf ppf "window=%d" n
  | Unlimited -> Format.pp_print_string ppf "window=inf"

let limit_to_string l = Format.asprintf "%a" pp_limit l
let unlimited_depth = 64

let cap = function
  | Window n ->
      if n < 1 then invalid_arg "Credit.cap: window must be at least 1";
      n
  | Unlimited -> unlimited_depth

type t = {
  limit : limit;
  capacity : int;
  mutable in_flight : int;
  mutable revoked : bool;
}

let create limit = { limit; capacity = cap limit; in_flight = 0; revoked = false }
let limit t = t.limit
let available t = if t.revoked then 0 else t.capacity - t.in_flight
let in_flight t = t.in_flight
let revoked t = t.revoked

let take t =
  if t.revoked || t.in_flight >= t.capacity then false
  else begin
    t.in_flight <- t.in_flight + 1;
    true
  end

let give t =
  if t.revoked then ()
  else begin
    if t.in_flight <= 0 then invalid_arg "Credit.give: no exchange in flight";
    t.in_flight <- t.in_flight - 1
  end

let revoke t =
  if t.revoked then 0
  else begin
    t.revoked <- true;
    let reclaimed = t.in_flight in
    t.in_flight <- 0;
    reclaimed
  end
