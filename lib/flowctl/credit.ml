type limit = Window of int | Unlimited

let pp_limit ppf = function
  | Window n -> Format.fprintf ppf "window=%d" n
  | Unlimited -> Format.pp_print_string ppf "window=inf"

let limit_to_string l = Format.asprintf "%a" pp_limit l
let unlimited_depth = 64

let cap = function
  | Window n ->
      if n < 1 then invalid_arg "Credit.cap: window must be at least 1";
      n
  | Unlimited -> unlimited_depth

type t = { limit : limit; capacity : int; mutable in_flight : int }

let create limit = { limit; capacity = cap limit; in_flight = 0 }
let limit t = t.limit
let available t = t.capacity - t.in_flight
let in_flight t = t.in_flight

let take t =
  if t.in_flight >= t.capacity then false
  else begin
    t.in_flight <- t.in_flight + 1;
    true
  end

let give t =
  if t.in_flight <= 0 then invalid_arg "Credit.give: no exchange in flight";
  t.in_flight <- t.in_flight - 1
