type batching = Fixed of int | Adaptive of Aimd.params | Chunked of int
type t = { batching : batching; credit : Credit.limit }

let legacy = { batching = Fixed 1; credit = Window 1 }

let fixed ?(credit = Credit.Window 1) n =
  if n < 1 then invalid_arg "Flowctl.fixed: batch must be at least 1";
  ignore (Credit.cap credit);
  { batching = Fixed n; credit }

let adaptive ?(credit = Credit.Window 1) ?(params = Aimd.default_params) () =
  (* A batch is a request size: the generalized controller's floor may
     be 0 (replica sizing), but a Transfer for 0 items is meaningless. *)
  if params.Aimd.min_batch < 1 then
    invalid_arg "Flowctl.adaptive: min_batch must be at least 1";
  ignore (Credit.cap credit);
  { batching = Adaptive params; credit }

let default_chunk_bytes = 64 * 1024

let chunked ?(credit = Credit.Window 1) ?(chunk_bytes = default_chunk_bytes) () =
  if chunk_bytes < 1 then invalid_arg "Flowctl.chunked: chunk_bytes must be at least 1";
  ignore (Credit.cap credit);
  { batching = Chunked chunk_bytes; credit }

(* Under the chunked discipline one exchange carries one chunk value,
   so as far as item counting goes the batch is 1; the payload scaling
   lives in [chunk_bytes]. *)
let initial_batch t =
  match t.batching with Fixed n -> n | Adaptive p -> p.Aimd.min_batch | Chunked _ -> 1

let max_batch t =
  match t.batching with Fixed n -> n | Adaptive p -> p.Aimd.max_batch | Chunked _ -> 1

let controller t =
  match t.batching with
  | Fixed _ | Chunked _ -> None
  | Adaptive p -> Some (Aimd.create p)

let credit t = Credit.create t.credit

let is_legacy t =
  match (t.batching, t.credit) with Fixed 1, Window 1 -> true | _ -> false

let is_chunked t = match t.batching with Chunked _ -> true | _ -> false

let chunk_bytes t = match t.batching with Chunked n -> Some n | _ -> None

let pp ppf t =
  (match t.batching with
  | Fixed n -> Format.fprintf ppf "batch=%d" n
  | Adaptive p -> Format.fprintf ppf "batch=adaptive(%d..%d)" p.Aimd.min_batch p.Aimd.max_batch
  | Chunked n -> Format.fprintf ppf "chunked=%dB" n);
  Format.fprintf ppf " %a" Credit.pp_limit t.credit

let to_string t = Format.asprintf "%a" pp t
