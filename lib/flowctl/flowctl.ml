type batching = Fixed of int | Adaptive of Aimd.params
type t = { batching : batching; credit : Credit.limit }

let legacy = { batching = Fixed 1; credit = Window 1 }

let fixed ?(credit = Credit.Window 1) n =
  if n < 1 then invalid_arg "Flowctl.fixed: batch must be at least 1";
  ignore (Credit.cap credit);
  { batching = Fixed n; credit }

let adaptive ?(credit = Credit.Window 1) ?(params = Aimd.default_params) () =
  (* A batch is a request size: the generalized controller's floor may
     be 0 (replica sizing), but a Transfer for 0 items is meaningless. *)
  if params.Aimd.min_batch < 1 then
    invalid_arg "Flowctl.adaptive: min_batch must be at least 1";
  ignore (Credit.cap credit);
  { batching = Adaptive params; credit }

let initial_batch t =
  match t.batching with Fixed n -> n | Adaptive p -> p.Aimd.min_batch

let max_batch t = match t.batching with Fixed n -> n | Adaptive p -> p.Aimd.max_batch

let controller t =
  match t.batching with
  | Fixed _ -> None
  | Adaptive p -> Some (Aimd.create p)

let credit t = Credit.create t.credit

let is_legacy t =
  match (t.batching, t.credit) with Fixed 1, Window 1 -> true | _ -> false

let pp ppf t =
  (match t.batching with
  | Fixed n -> Format.fprintf ppf "batch=%d" n
  | Adaptive p -> Format.fprintf ppf "batch=adaptive(%d..%d)" p.Aimd.min_batch p.Aimd.max_batch);
  Format.fprintf ppf " %a" Credit.pp_limit t.credit

let to_string t = Format.asprintf "%a" pp t
