(** Per-tenant capability namespaces (ROADMAP item 2).

    The paper names channels with small forgeable integers; experiment
    T4 showed that {!Eden_transput.Channel.Cap} UIDs close that hole
    for a single trusting application.  This module grows the idea
    into a {e tenant} model: a registry installs itself as the
    kernel's admission {!Eden_kernel.Kernel.guard} and from then on
    every [Transfer]/[Deposit] aimed at a {e protected} Eject must
    present a capability the registry minted — delegable, revocable,
    bound to a session token, and scoped to one interface and one
    right (read or write).

    {2 Enforcement model}

    A capability is a pair of unforgeable UIDs: the {e channel id}
    (what requests name, [Channel.Cap cid]) and the {e session token}
    (what proves the request came from the holder the capability was
    issued to, not from someone who merely saw the channel id go by).
    Clients envelope each request with {!wrap}; the guard unwraps,
    checks, and rewrites the channel to the protected Eject's private
    {e underlying} channel — which is therefore never accepted from
    outside, even if published.  Handlers never see any of this: per
    the paper (§5) a producer cannot identify its consumers, so all
    authentication rides in the request value.

    Four attack classes are detected and metered per tenant, each as
    an {!Eden_obs.Obs.Flow} stage (so shell stats, exports and
    cluster-wide flow aggregation surface them for free):

    - {e forged id} — an integer channel, an unknown capability UID,
      or a malformed request on a guarded interface; charged to the
      protected Eject's owner (the victim sees the probe).
    - {e stolen channel} — a real capability presented without its
      session token, against the wrong interface, or against the wrong
      right; charged to the capability's namespace (the victim).
    - {e replayed Transfer} — a seq-stamped Transfer whose sequence
      was already accepted on that capability; charged to the
      capability's namespace.
    - {e credit hoard} — a Transfer whose credit would push the
      holder's outstanding (admitted, unreplied) credit over the
      registry quota; charged to the {e holder's} namespace — this
      meter names the offender, the other three name the victim.

    Revocation cascades over the delegation tree, reclaims the
    server-side outstanding credit of every revoked capability, and
    kills every client credit window bound to one
    ({!Eden_flowctl.Credit.revoke}) — so a windowed consumer winds
    down instead of leaking credits, and a fenced elastic drain keeps
    draining (internal eproto traffic is not guarded). *)

module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value
module Channel = Eden_transput.Channel

type t
(** A registry: the only minter of capabilities for one kernel. *)

type tenant
(** A namespace handle.  Compare by {!tenant_name}. *)

type cap
(** A capability: one interface (protected Eject), one right, one
    underlying channel, one holder namespace, one session token. *)

type rights = Read | Write

type violation = Forged_id | Stolen_channel | Replayed_transfer | Credit_hoard

val violation_label : violation -> string
(** ["forged_id"], ["stolen_channel"], ["replayed_transfer"],
    ["credit_hoard"] — the suffix of the per-tenant meter stage. *)

type defect = Revoke_skips_reclaim
(** Calibration mutant for the exploration suite: {!revoke} still
    marks the subtree revoked (the guard refuses further use) but
    {e forgets} to reclaim outstanding credit — bound client windows
    are left alive with their in-flight count stuck, the registry's
    outstanding gauge never drains, and nothing is metered as
    reclaimed.  Hidden under FIFO (no revocation fires there);
    {!Eden_check} finds it within a few dozen schedules. *)

val install : ?hoard_quota:int -> ?seed:int64 -> ?defect:defect -> Kernel.t -> t
(** Create a registry and install it as [k]'s admission guard.
    [hoard_quota] (default 256) bounds each tenant's outstanding
    Transfer credit across all its capabilities; [seed] (default
    [0x7E4A47L]) seeds the registry's private UID generator — give
    each forked shard process the same seed and capabilities minted
    during topology build agree across the cluster. *)

val uninstall : t -> unit
(** Remove the guard; the registry keeps its state but enforces
    nothing. *)

val tenant : t -> string -> tenant
(** Get-or-create the named namespace (and its meter stages). *)

val tenant_name : tenant -> string

(** {1 Protection and capabilities} *)

val protect : t -> owner:tenant -> Uid.t -> unit
(** Guard the Eject: from now on its [Transfer]/[Deposit] operations
    admit only enveloped, capability-bearing requests.  [owner] is
    charged with unattributable violations (forged ids).  Other
    operations — including the elastic runtime's internal eproto
    sync/finish traffic — pass unguarded.  Idempotent; re-protecting
    with a different owner is an error. *)

val protected_ejects : t -> Uid.t list

val grant :
  t -> tenant -> rights:rights -> underlying:Channel.t -> Uid.t -> cap
(** Mint a root capability in [tenant]'s namespace for one channel of
    a protected Eject.  [underlying] is the Eject's private channel
    (what its port/intake actually registered); admitted requests are
    rewritten to it, and it is never accepted from the outside.
    @raise Invalid_argument if the Eject is not protected. *)

val delegate : ?to_:tenant -> t -> cap -> cap
(** A child capability with the same interface, right and underlying
    channel, in [to_]'s namespace (default: the parent's).  Revoking
    the parent revokes it.  @raise Invalid_argument on a revoked
    parent. *)

val revoke : t -> cap -> unit
(** Revoke the capability and every descendant: the guard refuses
    them from now on, each one's server-side outstanding credit is
    reclaimed, and every bound client window is killed
    ({!Eden_flowctl.Credit.revoke}).  Reclaimed credit is metered
    ([tenant.<name>.credits_reclaimed]) and drained from the
    outstanding gauge.  Idempotent. *)

val channel : cap -> Channel.t
(** The public face: [Channel.Cap cid], what requests name. *)

val token : cap -> Uid.t
val cap_rights : cap -> rights
val holder : cap -> tenant
val is_revoked : cap -> bool

val wrap : cap -> Value.t -> Value.t
(** The session-token envelope: what a tenant-aware client passes as
    [?wrap] to {!Eden_transput.Pull.connect} /
    {!Eden_transput.Push.connect}.  The guard unwraps; a guarded
    handler never sees the envelope. *)

val bind_window : cap -> Eden_flowctl.Credit.t -> unit
(** Tie a client credit window's fate to the capability: {!revoke}
    reclaims its outstanding credits and kills it. *)

(** {1 Tenant-aware connections} *)

val pull :
  Kernel.ctx -> ?batch:int -> ?flowctl:Eden_flowctl.Flowctl.t -> cap -> Eden_transput.Pull.t
(** {!Eden_transput.Pull.connect} against the capability's interface,
    with the envelope applied to every request and (in windowed mode)
    the credit window bound to the capability.
    @raise Invalid_argument on a Write-only capability. *)

val push :
  Kernel.ctx -> ?batch:int -> ?flowctl:Eden_flowctl.Flowctl.t -> cap -> Eden_transput.Push.t
(** Dual of {!pull} for deposits.
    @raise Invalid_argument on a Read-only capability. *)

(** {1 Meters}

    Every counter below is also an {!Eden_obs.Obs.Flow} stage named
    [tenant.<name>.<counter>], registered on the kernel's collector:
    violations count in [items_in]; the [credits] gauge notes demand
    in and releases/reclaims out (its [max_occupancy] is the peak
    outstanding credit — the high-water mark a hoarder reached); the
    [caps] gauge notes grants in and revocations out. *)

val violation_count : t -> tenant -> violation -> int
val violations : t -> tenant -> (violation * int) list
(** All four classes, fixed order. *)

val revoked_uses : t -> tenant -> int
(** Uses of an already-revoked capability of this namespace — refused
    and counted apart from the four attack classes (a stale holder is
    not necessarily hostile). *)

val outstanding_credit : t -> tenant -> int
(** Admitted, not-yet-replied Transfer credit (the hoard gauge). *)

val credits_reclaimed : t -> tenant -> int
val live_caps : t -> tenant -> int
(** Granted + delegated − revoked, the capability gauge the QCheck
    property balances. *)
