module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value
module Obs = Eden_obs.Obs
module Credit = Eden_flowctl.Credit
module Channel = Eden_transput.Channel
module Proto = Eden_transput.Proto
module Pull = Eden_transput.Pull
module Push = Eden_transput.Push

type rights = Read | Write
type violation = Forged_id | Stolen_channel | Replayed_transfer | Credit_hoard

let violation_label = function
  | Forged_id -> "forged_id"
  | Stolen_channel -> "stolen_channel"
  | Replayed_transfer -> "replayed_transfer"
  | Credit_hoard -> "credit_hoard"

type defect = Revoke_skips_reclaim

type tenant = {
  name : string;
  v_forged : Obs.Flow.stage;
  v_stolen : Obs.Flow.stage;
  v_replay : Obs.Flow.stage;
  v_hoard : Obs.Flow.stage;
  v_revoked : Obs.Flow.stage;
  credits : Obs.Flow.stage; (* gauge: demand in, release/reclaim out *)
  reclaimed : Obs.Flow.stage;
  caps_gauge : Obs.Flow.stage; (* gauge: grant/delegate in, revoke out *)
  mutable outstanding : int; (* admitted, unreplied Transfer credit *)
}

type cap = {
  cid : Uid.t; (* public channel id: requests name [Channel.Cap cid] *)
  tok : Uid.t; (* session token: proves holdership, never on the wire alone *)
  cap_tenant : tenant;
  eject : Uid.t;
  rights : rights;
  underlying : Channel.t;
  mutable children : cap list;
  mutable revoked : bool;
  mutable revision : int; (* bumped by revoke: stale releases are no-ops *)
  mutable cap_outstanding : int;
  seen : (int, unit) Hashtbl.t; (* accepted Transfer seqs (replay filter) *)
  mutable windows : Credit.t list; (* client windows killed with the cap *)
}

type t = {
  k : Kernel.t;
  gen : Uid.gen;
  tenants : (string, tenant) Hashtbl.t;
  caps : cap Uid.Tbl.t;
  protected : tenant Uid.Tbl.t; (* guarded eject -> owner namespace *)
  hoard_quota : int;
  defect : defect option;
}

let auth_tag = "eden.auth"
let tenant_name t = t.name
let violation_stage t = function
  | Forged_id -> t.v_forged
  | Stolen_channel -> t.v_stolen
  | Replayed_transfer -> t.v_replay
  | Credit_hoard -> t.v_hoard

let tenant reg name =
  match Hashtbl.find_opt reg.tenants name with
  | Some t -> t
  | None ->
      let obs = Kernel.obs reg.k in
      let stage suffix = Obs.register_stage obs (Printf.sprintf "tenant.%s.%s" name suffix) in
      let t =
        {
          name;
          v_forged = stage "forged_id";
          v_stolen = stage "stolen_channel";
          v_replay = stage "replayed_transfer";
          v_hoard = stage "credit_hoard";
          v_revoked = stage "revoked_use";
          credits = stage "credits";
          reclaimed = stage "credits_reclaimed";
          caps_gauge = stage "caps";
          outstanding = 0;
        }
      in
      Hashtbl.add reg.tenants name t;
      t

(* --- Guard --------------------------------------------------------- *)

let unwrap v =
  match v with
  | Value.List [ Value.Str tag; Value.Uid tok; inner ] when String.equal tag auth_tag ->
      (Some tok, inner)
  | _ -> (None, v)

let refuse stage msg =
  Obs.Flow.note_in stage;
  Error msg

(* Common capability checks for both operations.  Violations are
   charged to the capability's namespace (the victim of theft/replay)
   except forged ids, which have no capability to attribute and go to
   the interface owner. *)
let lookup reg owner ~dst ~need tok_opt chan =
  match chan with
  | Channel.Num _ ->
      refuse owner.v_forged "tenant: forged channel id (integer id on a guarded interface)"
  | Channel.Cap cid -> (
      match Uid.Tbl.find_opt reg.caps cid with
      | None -> refuse owner.v_forged "tenant: unknown capability"
      | Some cap ->
          if not (Uid.equal cap.eject dst) then
            refuse cap.cap_tenant.v_stolen "tenant: capability for a different interface"
          else if cap.revoked then begin
            Obs.Flow.note_in cap.cap_tenant.v_revoked;
            Error "tenant: revoked capability"
          end
          else if not (match tok_opt with Some tok -> Uid.equal tok cap.tok | None -> false)
          then refuse cap.cap_tenant.v_stolen "tenant: session token missing or wrong"
          else if cap.rights <> need then
            refuse cap.cap_tenant.v_stolen
              (match need with
              | Read -> "tenant: capability lacks the Read right"
              | Write -> "tenant: capability lacks the Write right")
          else Ok cap)

let admit_transfer reg owner ~dst arg =
  let tok_opt, inner = unwrap arg in
  match Proto.parse_transfer_request_seq inner with
  | exception Value.Protocol_error _ ->
      refuse owner.v_forged "tenant: malformed Transfer on a guarded interface"
  | chan, credit, seq_opt -> (
      match lookup reg owner ~dst ~need:Read tok_opt chan with
      | Error _ as e -> e
      | Ok cap ->
          let holder = cap.cap_tenant in
          let replayed =
            match seq_opt with Some s -> Hashtbl.mem cap.seen s | None -> false
          in
          if replayed then
            refuse holder.v_replay
              (Printf.sprintf "tenant: replayed Transfer seq %d"
                 (Option.get seq_opt))
          else if holder.outstanding + credit > reg.hoard_quota then
            refuse holder.v_hoard
              (Printf.sprintf "tenant: credit hoard (outstanding %d + %d > quota %d)"
                 holder.outstanding credit reg.hoard_quota)
          else begin
            (match seq_opt with Some s -> Hashtbl.replace cap.seen s () | None -> ());
            holder.outstanding <- holder.outstanding + credit;
            cap.cap_outstanding <- cap.cap_outstanding + credit;
            Obs.Flow.note_in_n holder.credits credit;
            let rev = cap.revision in
            let release _reply =
              (* A revoke in between already reclaimed this demand. *)
              if cap.revision = rev then begin
                cap.cap_outstanding <- max 0 (cap.cap_outstanding - credit);
                holder.outstanding <- max 0 (holder.outstanding - credit);
                Obs.Flow.note_out_n holder.credits credit
              end
            in
            Ok
              ( Proto.transfer_request ?seq:seq_opt cap.underlying ~credit,
                Some release )
          end)

let admit_deposit reg owner ~dst arg =
  let tok_opt, inner = unwrap arg in
  match Proto.parse_deposit_request_seq inner with
  | exception Value.Protocol_error _ ->
      refuse owner.v_forged "tenant: malformed Deposit on a guarded interface"
  | chan, eos, items, seq_opt -> (
      match lookup reg owner ~dst ~need:Write tok_opt chan with
      | Error _ as e -> e
      | Ok cap -> Ok (Proto.deposit_request ?seq:seq_opt cap.underlying ~eos items, None))

let guard reg ~dst ~op arg =
  match Uid.Tbl.find_opt reg.protected dst with
  | None -> Ok (arg, None)
  | Some owner ->
      if String.equal op Proto.transfer_op then admit_transfer reg owner ~dst arg
      else if String.equal op Proto.deposit_op then admit_deposit reg owner ~dst arg
      else
        (* Control traffic — the elastic runtime's eproto sync/finish
           among it — is not stream data and passes unguarded. *)
        Ok (arg, None)

let install ?(hoard_quota = 256) ?(seed = 0x7E4A47L) ?defect k =
  if hoard_quota < 1 then invalid_arg "Tenant.install: hoard_quota must be at least 1";
  let reg =
    {
      k;
      gen = Uid.generator ~seed;
      tenants = Hashtbl.create 7;
      caps = Uid.Tbl.create 32;
      protected = Uid.Tbl.create 16;
      hoard_quota;
      defect;
    }
  in
  Kernel.set_guard k (Some (fun ~dst ~op arg -> guard reg ~dst ~op arg));
  reg

let uninstall reg = Kernel.set_guard reg.k None

(* --- Protection and capabilities ----------------------------------- *)

let protect reg ~owner uid =
  match Uid.Tbl.find_opt reg.protected uid with
  | Some prev when prev != owner ->
      invalid_arg "Tenant.protect: already protected by another tenant"
  | Some _ -> ()
  | None -> Uid.Tbl.replace reg.protected uid owner

let protected_ejects reg = Uid.Tbl.fold (fun uid _ acc -> uid :: acc) reg.protected []

let mk_cap reg tenant_ ~rights ~underlying eject =
  let cap =
    {
      cid = Uid.fresh reg.gen;
      tok = Uid.fresh reg.gen;
      cap_tenant = tenant_;
      eject;
      rights;
      underlying;
      children = [];
      revoked = false;
      revision = 0;
      cap_outstanding = 0;
      seen = Hashtbl.create 16;
      windows = [];
    }
  in
  Uid.Tbl.replace reg.caps cap.cid cap;
  Obs.Flow.note_in tenant_.caps_gauge;
  cap

let grant reg tenant_ ~rights ~underlying eject =
  if not (Uid.Tbl.mem reg.protected eject) then
    invalid_arg "Tenant.grant: eject is not protected";
  mk_cap reg tenant_ ~rights ~underlying eject

let delegate ?to_ reg cap =
  if cap.revoked then invalid_arg "Tenant.delegate: revoked capability";
  let tenant_ = Option.value to_ ~default:cap.cap_tenant in
  let child = mk_cap reg tenant_ ~rights:cap.rights ~underlying:cap.underlying cap.eject in
  cap.children <- child :: cap.children;
  child

let rec revoke reg cap =
  if not cap.revoked then begin
    cap.revoked <- true;
    Obs.Flow.note_out cap.cap_tenant.caps_gauge;
    (match reg.defect with
    | Some Revoke_skips_reclaim ->
        (* Mutant: the capability dies but its credit does not — bound
           windows stay alive with their in-flight counts stuck and the
           outstanding gauge never drains through reclaim. *)
        ()
    | None ->
        cap.revision <- cap.revision + 1;
        let holder = cap.cap_tenant in
        let server = cap.cap_outstanding in
        cap.cap_outstanding <- 0;
        holder.outstanding <- max 0 (holder.outstanding - server);
        let client =
          List.fold_left (fun acc w -> acc + Credit.revoke w) 0 cap.windows
        in
        let total = server + client in
        if server > 0 then Obs.Flow.note_out_n holder.credits server;
        if total > 0 then Obs.Flow.note_in_n holder.reclaimed total);
    List.iter (revoke reg) cap.children
  end

let channel cap = Channel.Cap cap.cid
let token cap = cap.tok
let cap_rights cap = cap.rights
let holder cap = cap.cap_tenant
let is_revoked cap = cap.revoked
let wrap cap v = Value.List [ Value.Str auth_tag; Value.Uid cap.tok; v ]
let bind_window cap w = cap.windows <- w :: cap.windows

(* --- Tenant-aware connections -------------------------------------- *)

let pull ctx ?batch ?flowctl cap =
  if cap.rights <> Read then invalid_arg "Tenant.pull: capability lacks the Read right";
  let p = Pull.connect ctx ?batch ?flowctl ~channel:(channel cap) ~wrap:(wrap cap) cap.eject in
  Option.iter (bind_window cap) (Pull.credit p);
  p

let push ctx ?batch ?flowctl cap =
  if cap.rights <> Write then invalid_arg "Tenant.push: capability lacks the Write right";
  Push.connect ctx ?batch ?flowctl ~channel:(channel cap) ~wrap:(wrap cap) cap.eject

(* --- Meters -------------------------------------------------------- *)

let violation_count _reg t v = (violation_stage t v).Obs.Flow.items_in

let violations reg t =
  List.map
    (fun v -> (v, violation_count reg t v))
    [ Forged_id; Stolen_channel; Replayed_transfer; Credit_hoard ]

let revoked_uses _reg t = t.v_revoked.Obs.Flow.items_in
let outstanding_credit _reg t = t.outstanding
let credits_reclaimed _reg t = t.reclaimed.Obs.Flow.items_in
let live_caps _reg t = Obs.Flow.occupancy t.caps_gauge
