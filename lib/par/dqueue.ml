type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
  mutable closed : bool;
  label : string;
}

let create ?(label = "dqueue") () =
  { mu = Mutex.create (); nonempty = Condition.create (); q = Queue.create (); closed = false; label }

let push t x =
  Mutex.protect t.mu (fun () ->
      if t.closed then false
      else begin
        Queue.push x t.q;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  Mutex.protect t.mu (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.nonempty t.mu
      done;
      Queue.take_opt t.q)

let try_pop t = Mutex.protect t.mu (fun () -> Queue.take_opt t.q)

let close t =
  Mutex.protect t.mu (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Condition.broadcast t.nonempty
      end)

let is_closed t = Mutex.protect t.mu (fun () -> t.closed)
let length t = Mutex.protect t.mu (fun () -> Queue.length t.q)
let label t = t.label
