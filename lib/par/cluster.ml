module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value
module Sched = Eden_sched.Sched
module Ivar = Eden_sched.Ivar
module Prng = Eden_util.Prng

type mode = Deterministic | Parallel

type msg =
  | Request of {
      req_id : int;
      from_shard : int;
      target : Uid.t;
      op : string;
      arg : Value.t;
    }
  | Reply of { req_id : int; reply : Kernel.reply }

type shard = {
  index : int;
  kernel : Kernel.t;
  inbox : msg Dqueue.t;
  (* Both tables below are touched only by the shard's own domain:
     [forward] runs in a fiber of this shard, [inject] in its pump
     loop. *)
  pending : (int, Kernel.reply Ivar.t) Hashtbl.t;
  mutable next_req : int;
  mutable ctx : Kernel.ctx option;
}

type t = {
  cluster_mode : mode;
  shards : shard array;
  in_flight : int Atomic.t;
  idle : int Atomic.t;
  carried : int Atomic.t;
  mutable ran : bool;
  (* Deterministic-mode shard-order policy; [None] is the fixed
     round-robin baseline. *)
  mutable det_pick : (n:int -> int) option;
}

let mode t = t.cluster_mode
let set_det_pick t p = t.det_pick <- p
let shard_count t = Array.length t.shards
let kernel t i = t.shards.(i).kernel
let cross_messages t = Atomic.get t.carried

let create ?(seed = 0xEDE0L) ?latency cluster_mode ~shards:n () =
  if n <= 0 then invalid_arg "Cluster.create: shards must be positive";
  let root = Prng.create seed in
  let streams = Prng.split_n root n in
  let shards =
    Array.init n (fun index ->
        let kernel =
          Kernel.create ~seed:(Prng.next_int64 streams.(index)) ?latency ()
        in
        {
          index;
          kernel;
          inbox = Dqueue.create ~label:(Printf.sprintf "shard-%d" index) ();
          pending = Hashtbl.create 16;
          next_req = 0;
          ctx = None;
        })
  in
  let t =
    {
      cluster_mode;
      shards;
      in_flight = Atomic.make 0;
      idle = Atomic.make 0;
      carried = Atomic.make 0;
      ran = false;
      det_pick = None;
    }
  in
  (* Capture a driver context per shard: proxy handlers and injected
     requests invoke through it.  The stashing fiber runs and finishes
     here, before any user code. *)
  Array.iter
    (fun sh ->
      Kernel.spawn_driver sh.kernel ~name:"par-ctx" (fun ctx ->
          sh.ctx <- Some ctx);
      Sched.run (Kernel.sched sh.kernel))
    shards;
  t

let driver t i f = Kernel.spawn_driver t.shards.(i).kernel ~name:"par-driver" f

let post t ~dst m =
  (* in_flight covers the message from before it is visible to the
     receiver until after the receiver has left the idle count — the
     invariant the termination check relies on. *)
  Atomic.incr t.in_flight;
  Atomic.incr t.carried;
  if not (Dqueue.push t.shards.(dst).inbox m) then begin
    Atomic.decr t.in_flight;
    invalid_arg "Cluster: message posted after shutdown"
  end

let forward t sh ~target ~op arg =
  let req_id = sh.next_req in
  sh.next_req <- req_id + 1;
  let slot = Ivar.create () in
  Hashtbl.replace sh.pending req_id slot;
  (match target with
  | tshard, tuid ->
      post t ~dst:tshard
        (Request { req_id; from_shard = sh.index; target = tuid; op; arg }));
  match Ivar.read slot with
  | Ok v -> v
  | Error m -> raise (Kernel.Eden_error m)

let proxy t ~shard ~ops ~target:(tshard, tuid) =
  let sh = t.shards.(shard) in
  if tshard = shard then tuid
  else
    Kernel.create_eject sh.kernel ~dispatch:Kernel.Serial
      ~type_name:"par-proxy" (fun _ctx ~passive:_ ->
        List.map
          (fun op -> (op, fun arg -> forward t sh ~target:(tshard, tuid) ~op arg))
          ops)

let inject t sh = function
  | Request { req_id; from_shard; target; op; arg } ->
      let ctx =
        match sh.ctx with
        | Some c -> c
        | None -> assert false
      in
      ignore
        (Sched.spawn (Kernel.sched sh.kernel) ~name:"par-inject" (fun () ->
             let reply = Kernel.invoke ctx target ~op arg in
             post t ~dst:from_shard (Reply { req_id; reply })))
  | Reply { req_id; reply } -> (
      match Hashtbl.find_opt sh.pending req_id with
      | Some slot ->
          Hashtbl.remove sh.pending req_id;
          Ivar.fill slot reply
      | None -> assert false)

let close_all t = Array.iter (fun sh -> Dqueue.close sh.inbox) t.shards

(* Parallel pump loop: run the shard's scheduler to quiescence, then
   look for cross-shard messages.  A shard only joins the idle count
   when both its scheduler and its inbox are drained, and leaves it
   before touching a newly popped message. *)
let shard_loop t sh =
  let n = Array.length t.shards in
  let rec go () =
    Sched.run (Kernel.sched sh.kernel);
    match Dqueue.try_pop sh.inbox with
    | Some m ->
        Atomic.decr t.in_flight;
        inject t sh m;
        go ()
    | None -> (
        let idle_now = 1 + Atomic.fetch_and_add t.idle 1 in
        (* When idle = n no fiber is running anywhere, so in_flight
           cannot rise concurrently: reading 0 here proves global
           quiescence. *)
        if idle_now = n && Atomic.get t.in_flight = 0 then close_all t;
        match Dqueue.pop sh.inbox with
        | None -> ()
        | Some m ->
            Atomic.decr t.idle;
            Atomic.decr t.in_flight;
            inject t sh m;
            go ())
  in
  go ()

(* Deterministic pump: fixed shard order, each scheduler run to
   quiescence before its inbox is drained; repeat until a full pass
   moves no message and none is in flight.  The in_flight check matters:
   a shard late in the pass order can post into an inbox that was
   already drained this pass. *)
let det_loop t =
  let n = Array.length t.shards in
  let pump sh =
    Sched.run (Kernel.sched sh.kernel);
    let rec drain progressed =
      match Dqueue.try_pop sh.inbox with
      | Some m ->
          Atomic.decr t.in_flight;
          inject t sh m;
          drain true
      | None -> progressed
    in
    drain false
  in
  (* One pass visits every shard exactly once.  With no policy the
     visit order is ascending shard index (the historical round-robin);
     a policy repeatedly picks among the shards not yet visited this
     pass, so exploration can reorder cross-shard message handling
     without ever skipping or double-pumping a shard. *)
  let pass () =
    let progressed = ref false in
    match t.det_pick with
    | None -> Array.iter (fun sh -> if pump sh then progressed := true) t.shards;
        !progressed
    | Some pick ->
        let remaining = ref (List.init n Fun.id) in
        while !remaining <> [] do
          let m = List.length !remaining in
          let i = if m = 1 then 0 else pick ~n:m in
          if i < 0 || i >= m then
            invalid_arg
              (Printf.sprintf "Cluster: det_pick returned %d for %d-way pick" i m);
          let shard_idx = List.nth !remaining i in
          remaining := List.filteri (fun j _ -> j <> i) !remaining;
          if pump t.shards.(shard_idx) then progressed := true
        done;
        !progressed
  in
  let progressed = ref true in
  while !progressed || Atomic.get t.in_flight > 0 do
    progressed := pass ()
  done;
  close_all t

let run t =
  if t.ran then invalid_arg "Cluster.run: already run";
  t.ran <- true;
  (match t.cluster_mode with
  | Deterministic -> det_loop t
  | Parallel ->
      let domains =
        Array.map (fun sh -> Domain.spawn (fun () -> shard_loop t sh)) t.shards
      in
      Array.iter Domain.join domains);
  Array.iter (fun sh -> Sched.check_failures (Kernel.sched sh.kernel)) t.shards

let meter t =
  Array.fold_left
    (fun acc sh -> Kernel.Meter.add acc (Kernel.Meter.snapshot sh.kernel))
    Kernel.Meter.zero t.shards

let op_counts t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun sh ->
      List.iter
        (fun (op, n) ->
          Hashtbl.replace tbl op
            (n + Option.value ~default:0 (Hashtbl.find_opt tbl op)))
        (Kernel.op_counts sh.kernel))
    t.shards;
  Hashtbl.fold (fun op n acc -> (op, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
