module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value
module Sched = Eden_sched.Sched
module Ivar = Eden_sched.Ivar
module Prng = Eden_util.Prng
module Obs = Eden_obs.Obs
module Frame = Eden_wire.Frame
module Bin = Eden_wire.Bin
module Transport = Eden_wire.Transport
module Faults = Eden_wire.Faults
module Auth = Eden_wire.Auth

type wire_config = {
  wire_transport : Transport.kind;
  wire_faults : Faults.t option;
  (* When set, the fork-time handshake runs the RFC-0002 three-layer
     exchange (community id, keyed MAC, per-connection session token)
     and every post-handshake frame on every socket is sealed with an
     8-byte MAC trailer.  [None] is the plain version-1 handshake —
     the benchmark baseline (A1 measures the difference). *)
  wire_auth : Auth.community option;
}

type mode = Deterministic | Parallel | Wire of wire_config

type msg =
  | Request of {
      req_id : int;
      from_shard : int;
      target : Uid.t;
      op : string;
      arg : Value.t;
    }
  | Reply of { req_id : int; reply : Kernel.reply }

type shard = {
  index : int;
  kernel : Kernel.t;
  inbox : msg Dqueue.t;
  (* Both tables below are touched only by the shard's own domain:
     [forward] runs in a fiber of this shard, [inject] in its pump
     loop. *)
  pending : (int, Kernel.reply Ivar.t) Hashtbl.t;
  mutable next_req : int;
  mutable ctx : Kernel.ctx option;
}

(* Stats a leaf process reports back over its socket at shutdown —
   everything the in-process accessors would have read from the shard's
   kernel directly.  Histograms are deliberately absent: wall-clock
   timing makes them transport-dependent, so wire-mode histograms cover
   the hub shard only. *)
type remote_stats = {
  r_meter : Kernel.Meter.snapshot;
  r_ops : (string * int) list;
  r_flows : (string * int * int) list;
  r_makespan : float;
}

(* Hub (shard 0, the parent process) of the star topology: leaves
   connect only to the hub, which routes leaf-to-leaf frames by [dst].
   [sent_to] counts data frames actually written to each leaf (a frame
   eaten by fault injection is not in flight); [idle_at] is the
   processed-frame count from the leaf's latest IDLE.  Socket FIFO
   ordering makes "idle_at = sent_to for every leaf" a sound
   termination condition: a leaf writes everything it emitted before
   the IDLE that acknowledges our last frame, so once the hub has read
   that IDLE there is nothing left in flight from that leaf. *)
type hub = {
  conns : Unix.file_descr array; (* index 0 unused *)
  pids : int array;
  sent_to : int array;
  idle_at : int array;
  hfaults : Faults.t option;
  remote : remote_stats option array;
  (* Per-connection MAC sessions under [wire_auth]; all [None] on the
     plain path. *)
  hsessions : Auth.session option array;
}

type leaf = {
  conn : Unix.file_descr;
  session : Auth.session option;
  mutable processed : int; (* data frames consumed off the socket *)
  mutable last_idle_sent : int;
}

let seal_opt sess f = match sess with None -> f | Some s -> Auth.seal s f
let open_opt sess f = match sess with None -> f | Some s -> Auth.open_ s f
let mac_overhead sess = match sess with None -> 0 | Some _ -> 8

type fabric = Inproc | Hub of hub | Leaf of leaf

type t = {
  cluster_mode : mode;
  shards : shard array;
  in_flight : int Atomic.t;
  idle : int Atomic.t;
  carried : int Atomic.t;
  mutable ran : bool;
  (* Deterministic-mode shard-order policy; [None] is the fixed
     round-robin baseline. *)
  mutable det_pick : (n:int -> int) option;
  (* How [forward] reaches other shards: in-process inboxes, or — in
     wire mode, after the fork — this process's end of the sockets. *)
  mutable fabric : fabric;
}

let mode t = t.cluster_mode
let set_det_pick t p = t.det_pick <- p
let shard_count t = Array.length t.shards
let kernel t i = t.shards.(i).kernel
let cross_messages t = Atomic.get t.carried

let create ?(seed = 0xEDE0L) ?latency cluster_mode ~shards:n () =
  if n <= 0 then invalid_arg "Cluster.create: shards must be positive";
  (match cluster_mode with
  | Wire _ when n > 256 -> invalid_arg "Cluster.create: wire mode caps shards at 256"
  | _ -> ());
  let root = Prng.create seed in
  let streams = Prng.split_n root n in
  let shards =
    Array.init n (fun index ->
        let kernel =
          Kernel.create ~seed:(Prng.next_int64 streams.(index)) ?latency ()
        in
        {
          index;
          kernel;
          inbox = Dqueue.create ~label:(Printf.sprintf "shard-%d" index) ();
          pending = Hashtbl.create 16;
          next_req = 0;
          ctx = None;
        })
  in
  let t =
    {
      cluster_mode;
      shards;
      in_flight = Atomic.make 0;
      idle = Atomic.make 0;
      carried = Atomic.make 0;
      ran = false;
      det_pick = None;
      fabric = Inproc;
    }
  in
  (* Capture a driver context per shard: proxy handlers and injected
     requests invoke through it.  The stashing fiber runs and finishes
     here, before any user code. *)
  Array.iter
    (fun sh ->
      Kernel.spawn_driver sh.kernel ~name:"par-ctx" (fun ctx ->
          sh.ctx <- Some ctx);
      Sched.run (Kernel.sched sh.kernel))
    shards;
  t

let driver t i f = Kernel.spawn_driver t.shards.(i).kernel ~name:"par-driver" f

let post t ~dst m =
  (* in_flight covers the message from before it is visible to the
     receiver until after the receiver has left the idle count — the
     invariant the termination check relies on. *)
  Atomic.incr t.in_flight;
  Atomic.incr t.carried;
  if not (Dqueue.push t.shards.(dst).inbox m) then begin
    Atomic.decr t.in_flight;
    invalid_arg "Cluster: message posted after shutdown"
  end

(* --- Wire framing ---------------------------------------------------- *)

let perr fmt =
  Printf.ksprintf (fun m -> raise (Value.Protocol_error ("cluster: " ^ m))) fmt

let request_body ~target ~op arg = Value.List [ Value.Uid target; Value.Str op; arg ]

let request_frame ~req_id ~src ~dst ~target ~op arg =
  Frame.make ~kind:Frame.Request ~src ~dst ~seq:req_id
    (Bin.encode (request_body ~target ~op arg))

let parse_request payload =
  match Bin.decode payload with
  | Value.List [ Value.Uid target; Value.Str op; arg ] -> (target, op, arg)
  | v -> perr "malformed request payload %s" (Value.preview v)

let reply_body (reply : Kernel.reply) =
  match reply with
  | Ok v -> Value.List [ Value.Bool true; v ]
  | Error m -> Value.List [ Value.Bool false; Value.Str m ]

let reply_frame ~req_id ~src ~dst (reply : Kernel.reply) =
  Frame.make ~kind:Frame.Reply ~src ~dst ~seq:req_id (Bin.encode (reply_body reply))

let parse_reply payload : Kernel.reply =
  match Bin.decode payload with
  | Value.List [ Value.Bool true; v ] -> Ok v
  | Value.List [ Value.Bool false; Value.Str m ] -> Error m
  | v -> perr "malformed reply payload %s" (Value.preview v)

let flows_of_kernel k =
  List.map
    (fun (s : Obs.Flow.stage) -> (s.label, s.items_in, s.items_out))
    (Obs.stages (Kernel.obs k))

let meter_to_value (m : Kernel.Meter.snapshot) =
  let n = m.net in
  Value.List
    [
      Value.Int m.invocations; Value.Int m.replies; Value.Int m.activations;
      Value.Int m.ejects_created; Value.Int m.ejects_live; Value.Int m.crashes;
      Value.Int m.timeouts;
      Value.List
        [
          Value.Int n.Eden_net.Net.sent; Value.Int n.delivered; Value.Int n.dropped;
          Value.Int n.dropped_loss; Value.Int n.dropped_partition; Value.Int n.bytes;
        ];
    ]

let meter_of_value v : Kernel.Meter.snapshot =
  match v with
  | Value.List
      [
        Value.Int invocations; Value.Int replies; Value.Int activations;
        Value.Int ejects_created; Value.Int ejects_live; Value.Int crashes;
        Value.Int timeouts;
        Value.List
          [
            Value.Int sent; Value.Int delivered; Value.Int dropped;
            Value.Int dropped_loss; Value.Int dropped_partition; Value.Int bytes;
          ];
      ] ->
      {
        invocations; replies; activations; ejects_created; ejects_live; crashes;
        timeouts;
        net =
          { Eden_net.Net.sent; delivered; dropped; dropped_loss; dropped_partition;
            bytes };
      }
  | v -> perr "malformed meter %s" (Value.preview v)

let stats_payload sh =
  let m = Kernel.Meter.snapshot sh.kernel in
  let ops =
    Value.List
      (List.map
         (fun (op, n) -> Value.pair (Value.Str op) (Value.Int n))
         (Kernel.op_counts sh.kernel))
  in
  let flows =
    Value.List
      (List.map
         (fun (label, i, o) ->
           Value.List [ Value.Str label; Value.Int i; Value.Int o ])
         (flows_of_kernel sh.kernel))
  in
  Bin.encode
    (Value.List
       [
         meter_to_value m; ops; flows;
         Value.Float (Sched.now (Kernel.sched sh.kernel));
       ])

let parse_stats payload =
  match Bin.decode payload with
  | Value.List [ meter; Value.List ops; Value.List flows; Value.Float mk ] ->
      {
        r_meter = meter_of_value meter;
        r_ops =
          List.map
            (function
              | Value.List [ Value.Str op; Value.Int n ] -> (op, n)
              | v -> perr "malformed op count %s" (Value.preview v))
            ops;
        r_flows =
          List.map
            (function
              | Value.List [ Value.Str l; Value.Int i; Value.Int o ] -> (l, i, o)
              | v -> perr "malformed flow %s" (Value.preview v))
            flows;
        r_makespan = mk;
      }
  | v -> perr "malformed stats %s" (Value.preview v)

(* Write a data frame to a leaf, through fault injection.  Only hub
   egress is faultable: that one chokepoint sees every cross-process
   frame exactly once, which is what lets a replay's per-frame loss
   script line up with the wire. *)
let hub_send t h ~origin frame =
  let dst = frame.Frame.hdr.dst in
  if origin then Atomic.incr t.carried;
  let sess = h.hsessions.(dst) in
  let action =
    match h.hfaults with
    | None -> Faults.Pass
    | Some fl ->
        Faults.apply fl ~established:true
          ~size:(Frame.size frame + mac_overhead sess)
  in
  (* Sealing happens only when the frame actually reaches the socket:
     a fault-dropped frame must not advance the MAC send counter the
     receiver never sees. *)
  match action with
  | Faults.Drop -> ()
  | Faults.Delay d ->
      Unix.sleepf d;
      Frame.write h.conns.(dst) (seal_opt sess frame);
      h.sent_to.(dst) <- h.sent_to.(dst) + 1
  | Faults.Pass ->
      Frame.write h.conns.(dst) (seal_opt sess frame);
      h.sent_to.(dst) <- h.sent_to.(dst) + 1

let forward t sh ~target:(tshard, tuid) ~op arg =
  let req_id = sh.next_req in
  sh.next_req <- req_id + 1;
  let slot = Ivar.create () in
  Hashtbl.replace sh.pending req_id slot;
  (match t.fabric with
  | Inproc ->
      post t ~dst:tshard
        (Request { req_id; from_shard = sh.index; target = tuid; op; arg })
  | Hub h ->
      hub_send t h ~origin:true
        (request_frame ~req_id ~src:sh.index ~dst:tshard ~target:tuid ~op arg)
  | Leaf l -> (
      Atomic.incr t.carried;
      match l.session with
      | None ->
          (* Leaf egress is never faulted (only the hub chokepoint is),
             so requests leave via the gather path: chunk payloads
             inside [arg] — deposited items, mostly — are blitted once
             at the socket boundary instead of being flattened by
             [Bin.encode] first. *)
          Frame.write_value l.conn ~kind:Frame.Request ~src:sh.index ~dst:tshard
            ~seq:req_id
            (request_body ~target:tuid ~op arg)
      | Some s ->
          (* The MAC trailer covers the whole payload, so the sealed
             path flattens — part of the measured A1 overhead. *)
          Frame.write l.conn
            (Auth.seal s
               (request_frame ~req_id ~src:sh.index ~dst:tshard ~target:tuid ~op arg))));
  match Ivar.read slot with
  | Ok v -> v
  | Error m -> raise (Kernel.Eden_error m)

let proxy t ~shard ~ops ~target:(tshard, tuid) =
  let sh = t.shards.(shard) in
  if tshard = shard then tuid
  else
    Kernel.create_eject sh.kernel ~dispatch:Kernel.Serial
      ~type_name:"par-proxy" (fun ctx ~passive:_ ->
        List.map
          (fun op ->
            ( op,
              fun arg ->
                (* The round-trip to the remote shard — socket or inbox —
                   is expected blocking, not a stall (see
                   [Pipeline.stall_report]). *)
                Kernel.with_transport_wait ctx (fun () ->
                    forward t sh ~target:(tshard, tuid) ~op arg) ))
          ops)

let inject t sh = function
  | Request { req_id; from_shard; target; op; arg } ->
      let ctx =
        match sh.ctx with
        | Some c -> c
        | None -> assert false
      in
      ignore
        (Sched.spawn (Kernel.sched sh.kernel) ~name:"par-inject" (fun () ->
             let reply = Kernel.invoke ctx target ~op arg in
             post t ~dst:from_shard (Reply { req_id; reply })))
  | Reply { req_id; reply } -> (
      match Hashtbl.find_opt sh.pending req_id with
      | Some slot ->
          Hashtbl.remove sh.pending req_id;
          Ivar.fill slot reply
      | None -> assert false)

let close_all t = Array.iter (fun sh -> Dqueue.close sh.inbox) t.shards

(* Parallel pump loop: run the shard's scheduler to quiescence, then
   look for cross-shard messages.  A shard only joins the idle count
   when both its scheduler and its inbox are drained, and leaves it
   before touching a newly popped message. *)
let shard_loop t sh =
  let n = Array.length t.shards in
  let rec go () =
    Sched.run (Kernel.sched sh.kernel);
    match Dqueue.try_pop sh.inbox with
    | Some m ->
        Atomic.decr t.in_flight;
        inject t sh m;
        go ()
    | None -> (
        let idle_now = 1 + Atomic.fetch_and_add t.idle 1 in
        (* When idle = n no fiber is running anywhere, so in_flight
           cannot rise concurrently: reading 0 here proves global
           quiescence. *)
        if idle_now = n && Atomic.get t.in_flight = 0 then close_all t;
        match Dqueue.pop sh.inbox with
        | None -> ()
        | Some m ->
            Atomic.decr t.idle;
            Atomic.decr t.in_flight;
            inject t sh m;
            go ())
  in
  go ()

(* Deterministic pump: fixed shard order, each scheduler run to
   quiescence before its inbox is drained; repeat until a full pass
   moves no message and none is in flight.  The in_flight check matters:
   a shard late in the pass order can post into an inbox that was
   already drained this pass. *)
let det_loop t =
  let n = Array.length t.shards in
  let pump sh =
    Sched.run (Kernel.sched sh.kernel);
    let rec drain progressed =
      match Dqueue.try_pop sh.inbox with
      | Some m ->
          Atomic.decr t.in_flight;
          inject t sh m;
          drain true
      | None -> progressed
    in
    drain false
  in
  (* One pass visits every shard exactly once.  With no policy the
     visit order is ascending shard index (the historical round-robin);
     a policy repeatedly picks among the shards not yet visited this
     pass, so exploration can reorder cross-shard message handling
     without ever skipping or double-pumping a shard. *)
  let pass () =
    let progressed = ref false in
    match t.det_pick with
    | None -> Array.iter (fun sh -> if pump sh then progressed := true) t.shards;
        !progressed
    | Some pick ->
        let remaining = ref (List.init n Fun.id) in
        while !remaining <> [] do
          let m = List.length !remaining in
          let i = if m = 1 then 0 else pick ~n:m in
          if i < 0 || i >= m then
            invalid_arg
              (Printf.sprintf "Cluster: det_pick returned %d for %d-way pick" i m);
          let shard_idx = List.nth !remaining i in
          remaining := List.filteri (fun j _ -> j <> i) !remaining;
          if pump t.shards.(shard_idx) then progressed := true
        done;
        !progressed
  in
  let progressed = ref true in
  while !progressed || Atomic.get t.in_flight > 0 do
    progressed := pass ()
  done;
  close_all t

(* --- Wire loops ------------------------------------------------------ *)

(* Leaf process: pump the local scheduler, report idleness, block on the
   socket.  A Shutdown frame answers with a Stats frame and returns. *)
let leaf_loop t sh l =
  let spawn_request f =
    let target, op, arg = parse_request f.Frame.payload in
    let ctx = match sh.ctx with Some c -> c | None -> assert false in
    let req_id = f.Frame.hdr.seq and from = f.Frame.hdr.src in
    ignore
      (Sched.spawn (Kernel.sched sh.kernel) ~name:"wire-inject" (fun () ->
           let reply = Kernel.invoke ctx target ~op arg in
           Atomic.incr t.carried;
           match l.session with
           | None ->
               (* Gather path: transfer replies are where bulk chunk
                  payloads ride the wire, and this write is the single
                  copy they are allowed (bytes identical to
                  [reply_frame]). *)
               Frame.write_value l.conn ~kind:Frame.Reply ~src:sh.index ~dst:from
                 ~seq:req_id (reply_body reply)
           | Some s ->
               Frame.write l.conn
                 (Auth.seal s (reply_frame ~req_id ~src:sh.index ~dst:from reply))))
  in
  let rec loop () =
    Sched.run (Kernel.sched sh.kernel);
    if l.processed <> l.last_idle_sent then begin
      Frame.write l.conn
        (seal_opt l.session
           (Frame.make ~kind:Frame.Idle ~src:sh.index ~dst:0 ~seq:l.processed ""));
      l.last_idle_sent <- l.processed
    end;
    let f = open_opt l.session (Frame.read l.conn) in
    match f.Frame.hdr.kind with
    | Frame.Shutdown ->
        Frame.write l.conn
          (seal_opt l.session
             (Frame.make ~kind:Frame.Stats ~src:sh.index ~dst:0 (stats_payload sh)))
    | Frame.Request ->
        l.processed <- l.processed + 1;
        spawn_request f;
        loop ()
    | Frame.Reply ->
        l.processed <- l.processed + 1;
        (match Hashtbl.find_opt sh.pending f.Frame.hdr.seq with
        | Some slot ->
            Hashtbl.remove sh.pending f.Frame.hdr.seq;
            Ivar.fill slot (parse_reply f.Frame.payload)
        | None -> perr "leaf %d: reply for unknown request %d" sh.index f.Frame.hdr.seq);
        loop ()
    | k -> perr "leaf %d: unexpected %s frame" sh.index (Frame.kind_name k)
  in
  loop ()

(* Hub loop: run shard 0 to quiescence, then wait for leaf traffic until
   every leaf has acknowledged everything we sent it. *)
let hub_loop t h =
  let n = Array.length t.shards in
  let sh0 = t.shards.(0) in
  let handle src f =
    match f.Frame.hdr.kind with
    | Frame.Idle -> h.idle_at.(src) <- f.Frame.hdr.seq
    | Frame.Request | Frame.Reply ->
        Atomic.incr t.carried;
        if f.Frame.hdr.dst = 0 then begin
          match f.Frame.hdr.kind with
          | Frame.Request ->
              let target, op, arg = parse_request f.Frame.payload in
              let ctx = match sh0.ctx with Some c -> c | None -> assert false in
              let req_id = f.Frame.hdr.seq in
              ignore
                (Sched.spawn (Kernel.sched sh0.kernel) ~name:"wire-inject"
                   (fun () ->
                     let reply = Kernel.invoke ctx target ~op arg in
                     hub_send t h ~origin:true
                       (reply_frame ~req_id ~src:0 ~dst:src reply)))
          | _ -> (
              match Hashtbl.find_opt sh0.pending f.Frame.hdr.seq with
              | Some slot ->
                  Hashtbl.remove sh0.pending f.Frame.hdr.seq;
                  Ivar.fill slot (parse_reply f.Frame.payload)
              | None -> perr "hub: reply for unknown request %d" f.Frame.hdr.seq)
        end
        else
          (* Leaf-to-leaf: already counted once on receipt, so routing
             is not a second cross-shard message. *)
          hub_send t h ~origin:false f
    | k -> perr "hub: unexpected %s frame from shard %d" (Frame.kind_name k) src
  in
  let finished () =
    let ok = ref true in
    for i = 1 to n - 1 do
      if h.idle_at.(i) <> h.sent_to.(i) then ok := false
    done;
    !ok
  in
  let fd_shard = Hashtbl.create 8 in
  for i = 1 to n - 1 do
    Hashtbl.replace fd_shard h.conns.(i) i
  done;
  let rec loop () =
    Sched.run (Kernel.sched sh0.kernel);
    if not (finished ()) then begin
      let fds = Array.to_list (Array.sub h.conns 1 (n - 1)) in
      (match Unix.select fds [] [] 30.0 with
      | [], _, _ ->
          failwith "Cluster: wire hub saw no traffic for 30s — leaf stalled?"
      | ready, _, _ ->
          List.iter
            (fun fd ->
              let src = Hashtbl.find fd_shard fd in
              handle src (open_opt h.hsessions.(src) (Frame.read fd)))
            ready);
      loop ()
    end
  in
  loop ()

let hub_shutdown t h =
  let n = Array.length t.shards in
  for i = 1 to n - 1 do
    Frame.write h.conns.(i)
      (seal_opt h.hsessions.(i) (Frame.make ~kind:Frame.Shutdown ~src:0 ~dst:i ""))
  done;
  for i = 1 to n - 1 do
    let rec await () =
      let f = open_opt h.hsessions.(i) (Frame.read h.conns.(i)) in
      match f.Frame.hdr.kind with
      | Frame.Stats -> h.remote.(i) <- Some (parse_stats f.Frame.payload)
      | Frame.Idle -> await ()
      | k -> perr "hub: expected stats from shard %d, got %s" i (Frame.kind_name k)
    in
    await ()
  done

(* Fork one process per leaf shard after the topology is built: every
   closure, Eject and UID crosses by inheritance, so both sides of each
   proxy already agree on names without any wire-level bootstrap. *)
let wire_run t cfg =
  let n = Array.length t.shards in
  if n = 1 then det_loop t
  else begin
    (* Leaves write only to their socket; make a dead hub surface as an
       orderly EPIPE-free read error, and keep buffered output from
       being flushed twice across the fork. *)
    flush stdout;
    flush stderr;
    let prev_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ | Sys_error _ -> None
    in
    let server = Transport.listen cfg.wire_transport in
    let nonce = Random.State.bits64 (Random.State.make_self_init ()) in
    let pids = Array.make n 0 in
    let conns = Array.make n Unix.stdin in
    let cleanup_children () =
      Array.iteri
        (fun i pid ->
          if i > 0 && pid > 0 then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
          end)
        pids
    in
    let restore () =
      Transport.close_server server;
      match prev_sigpipe with
      | Some b -> ( try Sys.set_signal Sys.sigpipe b with _ -> ())
      | None -> ()
    in
    match
      for i = 1 to n - 1 do
        match Unix.fork () with
        | 0 -> (
            (* Leaf process for shard i. *)
            pids.(i) <- 0;
            try
              let conn = Transport.dial server in
              let session =
                match cfg.wire_auth with
                | None ->
                    Frame.write conn (Frame.hello ~shard:i ~nonce);
                    let shard, n2 =
                      Frame.parse_handshake ~expect:Frame.Welcome (Frame.read conn)
                    in
                    if shard <> i || not (Int64.equal n2 nonce) then
                      perr "leaf %d: welcome names shard %d" i shard;
                    None
                | Some c -> (
                    Frame.write conn (Auth.hello c ~shard:i ~nonce);
                    match Auth.verify_welcome c ~expect_nonce:nonce (Frame.read conn) with
                    | Error reason -> perr "leaf %d: %s" i reason
                    | Ok token -> Some (Auth.session c ~token))
              in
              let l = { conn; session; processed = 0; last_idle_sent = -1 } in
              t.fabric <- Leaf l;
              leaf_loop t t.shards.(i) l;
              (* _exit: skip at_exit handlers (test-runner reporting,
                 buffered IO) inherited from the parent image. *)
              Unix._exit 0
            with e ->
              Printf.eprintf "eden-wire leaf %d: %s\n%!" i (Printexc.to_string e);
              Unix._exit 2)
        | pid -> pids.(i) <- pid
      done
    with
    | exception e ->
        cleanup_children ();
        restore ();
        raise e
    | () -> (
        match
          let seen = Array.make n false in
          let hsessions = Array.make n None in
          for _ = 1 to n - 1 do
            let fd = Transport.accept server in
            match cfg.wire_auth with
            | None ->
                let shard, n2 =
                  Frame.parse_handshake ~expect:Frame.Hello (Frame.read fd)
                in
                if shard < 1 || shard >= n then perr "hub: hello from shard %d" shard;
                if seen.(shard) then perr "hub: duplicate hello from shard %d" shard;
                if not (Int64.equal n2 nonce) then
                  perr "hub: hello nonce mismatch from shard %d" shard;
                seen.(shard) <- true;
                conns.(shard) <- fd;
                Frame.write fd (Frame.welcome ~shard ~nonce)
            | Some c -> (
                match
                  Auth.verify_hello
                    ~lookup:(fun id -> if Int64.equal id c.Auth.id then Some c else None)
                    (Frame.read fd)
                with
                | Error reason -> perr "hub: %s" reason
                | Ok (shard, n2, c) ->
                    if shard < 1 || shard >= n then
                      perr "hub: hello from shard %d" shard;
                    if seen.(shard) then perr "hub: duplicate hello from shard %d" shard;
                    if not (Int64.equal n2 nonce) then
                      perr "hub: hello nonce mismatch from shard %d" shard;
                    seen.(shard) <- true;
                    conns.(shard) <- fd;
                    let token = Auth.mint_token c ~shard ~nonce in
                    Frame.write fd (Auth.welcome c ~shard ~nonce ~token);
                    hsessions.(shard) <- Some (Auth.session c ~token))
          done;
          let h =
            {
              conns;
              pids;
              sent_to = Array.make n 0;
              idle_at = Array.make n (-1);
              hfaults = cfg.wire_faults;
              remote = Array.make n None;
              hsessions;
            }
          in
          t.fabric <- Hub h;
          hub_loop t h;
          hub_shutdown t h
        with
        | exception e ->
            cleanup_children ();
            restore ();
            raise e
        | () ->
            Array.iteri
              (fun i fd -> if i > 0 then try Unix.close fd with _ -> ())
              conns;
            for i = 1 to n - 1 do
              match snd (Unix.waitpid [] pids.(i)) with
              | Unix.WEXITED 0 -> ()
              | Unix.WEXITED c ->
                  restore ();
                  failwith (Printf.sprintf "Cluster: wire leaf %d exited %d" i c)
              | Unix.WSIGNALED s | Unix.WSTOPPED s ->
                  restore ();
                  failwith (Printf.sprintf "Cluster: wire leaf %d killed by %d" i s)
            done;
            restore ())
  end

let run t =
  if t.ran then invalid_arg "Cluster.run: already run";
  t.ran <- true;
  (match t.cluster_mode with
  | Deterministic -> det_loop t
  | Parallel ->
      let domains =
        Array.map (fun sh -> Domain.spawn (fun () -> shard_loop t sh)) t.shards
      in
      Array.iter Domain.join domains
  | Wire cfg -> wire_run t cfg);
  match t.fabric with
  | Hub _ ->
      (* Leaf failures surfaced through exit codes in [wire_run]; only
         the hub shard's fibers live in this process. *)
      Sched.check_failures (Kernel.sched t.shards.(0).kernel)
  | Inproc | Leaf _ ->
      Array.iter (fun sh -> Sched.check_failures (Kernel.sched sh.kernel)) t.shards

(* --- Aggregated accessors -------------------------------------------- *)

(* In wire mode (after [run]) the parent's copies of leaf kernels are
   stale pre-fork snapshots; aggregate shard 0 with the stats each leaf
   reported at shutdown instead. *)

let remote_list t =
  match t.fabric with
  | Hub h ->
      Some
        (List.filter_map Fun.id
           (Array.to_list (Array.sub h.remote 1 (Array.length t.shards - 1))))
  | Inproc | Leaf _ -> None

let meter t =
  match remote_list t with
  | Some remotes ->
      List.fold_left
        (fun acc r -> Kernel.Meter.add acc r.r_meter)
        (Kernel.Meter.snapshot t.shards.(0).kernel)
        remotes
  | None ->
      Array.fold_left
        (fun acc sh -> Kernel.Meter.add acc (Kernel.Meter.snapshot sh.kernel))
        Kernel.Meter.zero t.shards

let op_counts t =
  let tbl = Hashtbl.create 16 in
  let add (op, n) =
    Hashtbl.replace tbl op (n + Option.value ~default:0 (Hashtbl.find_opt tbl op))
  in
  (match remote_list t with
  | Some remotes ->
      List.iter add (Kernel.op_counts t.shards.(0).kernel);
      List.iter (fun r -> List.iter add r.r_ops) remotes
  | None -> Array.iter (fun sh -> List.iter add (Kernel.op_counts sh.kernel)) t.shards);
  Hashtbl.fold (fun op n acc -> (op, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let flows t =
  let all =
    match remote_list t with
    | Some remotes ->
        flows_of_kernel t.shards.(0).kernel
        @ List.concat_map (fun r -> r.r_flows) remotes
    | None ->
        Array.fold_left
          (fun acc sh -> flows_of_kernel sh.kernel @ acc)
          [] t.shards
  in
  List.sort compare all

let histograms t =
  let tbl = Hashtbl.create 16 in
  let fold k =
    List.iter
      (fun (name, h) ->
        match Hashtbl.find_opt tbl name with
        | None -> Hashtbl.add tbl name h
        | Some into -> Obs.Histogram.merge ~into h)
      (Obs.histograms (Kernel.obs k))
  in
  (match remote_list t with
  | Some _ ->
      (* Wall-clock timing makes leaf histograms transport-dependent;
         wire mode reports the hub shard only. *)
      fold t.shards.(0).kernel
  | None -> Array.iter (fun sh -> fold sh.kernel) t.shards);
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let makespans t =
  match remote_list t with
  | Some _ -> (
      let h = match t.fabric with Hub h -> h | _ -> assert false in
      Array.init (Array.length t.shards) (fun i ->
          if i = 0 then Sched.now (Kernel.sched t.shards.(0).kernel)
          else match h.remote.(i) with Some r -> r.r_makespan | None -> 0.0))
  | None ->
      Array.map (fun sh -> Sched.now (Kernel.sched sh.kernel)) t.shards
