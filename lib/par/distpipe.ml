module Kernel = Eden_kernel.Kernel
module Value = Eden_kernel.Value
module Uid = Eden_kernel.Uid
module T = Eden_transput
module Cat = Eden_filters.Catalog
module Report = Eden_filters.Report
module Dev = Eden_devices.Devices
module Bin = Eden_wire.Bin

let doc n =
  List.init n (fun i -> Printf.sprintf "Line-%03d  the Quick brown Fox   " i)

let list_gen vs =
  let rest = ref vs in
  fun () ->
    match !rest with
    | [] -> None
    | v :: tl ->
        rest := tl;
        Some v

(* Stage s of the chain lands on this shard; shard 0 is reserved for
   sinks and display devices so every chain tail crosses the wire. *)
let stage_shard ~domains s = if domains = 1 then 0 else 1 + (s mod (domains - 1))

let encode_stream vs = String.concat "" (List.map Bin.encode vs)

type f2_outcome = {
  consumed : int;
  stream : string;
  meter : Kernel.Meter.snapshot;
  op_counts : (string * int) list;
}

let run_f2 mode ?seed ~domains ~filters ~items ?(batch = 2) ?(capacity = 3) () =
  if domains <= 0 then invalid_arg "Distpipe.run_f2: domains must be positive";
  if filters < 0 then invalid_arg "Distpipe.run_f2: filters must be non-negative";
  if items <= 0 then invalid_arg "Distpipe.run_f2: items must be positive";
  let c = Cluster.create ?seed mode ~shards:domains () in
  let lines = List.map (fun s -> Value.Str s) (doc items) in
  let src_shard = stage_shard ~domains 0 in
  let src =
    T.Stage.source_ro
      (Cluster.kernel c src_shard)
      ~name:"source" ~capacity (list_gen lines)
  in
  let prev = ref (src_shard, src) in
  for j = 1 to filters do
    let shard = stage_shard ~domains j in
    let upstream =
      Cluster.proxy c ~shard ~ops:[ T.Proto.transfer_op ] ~target:!prev
    in
    let transform = if j mod 2 = 1 then Cat.trim_trailing else Cat.upcase in
    let f =
      T.Stage.filter_ro
        (Cluster.kernel c shard)
        ~name:(Printf.sprintf "F%d" j)
        ~capacity ~batch ~upstream transform
    in
    prev := (shard, f)
  done;
  let k0 = Cluster.kernel c 0 in
  let sink_up = Cluster.proxy c ~shard:0 ~ops:[ T.Proto.transfer_op ] ~target:!prev in
  let acc = ref [] in
  let n = ref 0 in
  let sink =
    T.Stage.sink_ro k0 ~name:"sink" ~batch ~upstream:sink_up (fun v ->
        incr n;
        acc := v :: !acc)
  in
  Kernel.poke k0 sink;
  Cluster.run c;
  {
    consumed = !n;
    stream = encode_stream (List.rev !acc);
    meter = Cluster.meter c;
    op_counts = Cluster.op_counts c;
  }

type f4_outcome = {
  terminal : string list;
  reports : (string * string list) list;
  invocations : int;
  op_counts : (string * int) list;
}

let split_window_lines ~labels lines =
  List.map
    (fun label ->
      let prefix = label ^ " | " in
      let plen = String.length prefix in
      let mine =
        List.filter_map
          (fun l ->
            if String.length l >= plen && String.sub l 0 plen = prefix then
              Some (String.sub l plen (String.length l - plen))
            else None)
          lines
      in
      (label, mine))
    (List.sort compare labels)

let run_f4 mode ?seed ~domains ~items () =
  if domains <= 0 then invalid_arg "Distpipe.run_f4: domains must be positive";
  if items <= 0 then invalid_arg "Distpipe.run_f4: items must be positive";
  let c = Cluster.create ?seed mode ~shards:domains () in
  let lines =
    List.map (fun s -> Value.Str s) (doc items @ [ "drop this line" ])
  in
  let shard_of = stage_shard ~domains in
  let s_src = shard_of 0 and s_f1 = shard_of 1 and s_f2 = shard_of 2 and s_f3 = shard_of 3 in
  let src =
    Report.source_ro (Cluster.kernel c s_src) ~name:"source" ~label:"source"
      (list_gen lines)
  in
  let f1 =
    Report.filter_ro (Cluster.kernel c s_f1) ~name:"F1"
      ~upstream:(Cluster.proxy c ~shard:s_f1 ~ops:[ T.Proto.transfer_op ] ~target:(s_src, src))
      (Report.with_progress ~every:4 ~label:"F1" T.Transform.identity)
  in
  let f2 =
    T.Stage.filter_ro (Cluster.kernel c s_f2) ~name:"F2"
      ~upstream:(Cluster.proxy c ~shard:s_f2 ~ops:[ T.Proto.transfer_op ] ~target:(s_f1, f1))
      (Cat.grep_v "drop")
  in
  let f3 =
    T.Stage.filter_ro (Cluster.kernel c s_f3) ~name:"F3"
      ~upstream:(Cluster.proxy c ~shard:s_f3 ~ops:[ T.Proto.transfer_op ] ~target:(s_f2, f2))
      Cat.upcase
  in
  let k0 = Cluster.kernel c 0 in
  let term =
    Dev.terminal_ro k0 ~name:"terminal"
      ~upstream:(Cluster.proxy c ~shard:0 ~ops:[ T.Proto.transfer_op ] ~target:(s_f3, f3))
      ()
  in
  let watch =
    [
      ( "source",
        Cluster.proxy c ~shard:0 ~ops:[ T.Proto.transfer_op ] ~target:(s_src, src),
        T.Channel.report );
      ( "F1",
        Cluster.proxy c ~shard:0 ~ops:[ T.Proto.transfer_op ] ~target:(s_f1, f1),
        T.Channel.report );
    ]
  in
  let window = Dev.report_window_ro k0 ~name:"window" ~watch () in
  Kernel.poke k0 term.Dev.uid;
  Kernel.poke k0 window.Dev.uid;
  Cluster.run c;
  let meter = Cluster.meter c in
  {
    terminal = term.Dev.lines ();
    reports = split_window_lines ~labels:[ "source"; "F1" ] (window.Dev.lines ());
    invocations = meter.Kernel.Meter.invocations;
    op_counts = Cluster.op_counts c;
  }
