module Kernel = Eden_kernel.Kernel
module Value = Eden_kernel.Value
module Uid = Eden_kernel.Uid
module T = Eden_transput
module Cat = Eden_filters.Catalog
module Report = Eden_filters.Report
module Chunkline = Eden_filters.Chunkline
module Dev = Eden_devices.Devices
module Bin = Eden_wire.Bin
module Chunk = Eden_chunk.Chunk
module Flowctl = Eden_flowctl.Flowctl

(* Same strings "Line-%03d  the Quick brown Fox   " would produce, but
   Printf-free: at benchmark item counts the sprintf per line is itself
   a measurable share of a run. *)
let doc n =
  List.init n (fun i ->
      let s = string_of_int i in
      let s = if String.length s < 3 then String.make (3 - String.length s) '0' ^ s else s in
      "Line-" ^ s ^ "  the Quick brown Fox   ")

let list_gen vs =
  let rest = ref vs in
  fun () ->
    match !rest with
    | [] -> None
    | v :: tl ->
        rest := tl;
        Some v

(* Stage s of the chain lands on this shard; shard 0 is reserved for
   sinks and display devices so every chain tail crosses the wire. *)
let stage_shard ~domains s = if domains = 1 then 0 else 1 + (s mod (domains - 1))

let encode_stream vs = String.concat "" (List.map Bin.encode vs)

type f2_outcome = {
  consumed : int;
  stream : string;
  lines : string list;
  meter : Kernel.Meter.snapshot;
  op_counts : (string * int) list;
}

let run_f2 mode ?seed ~domains ~filters ~items ?(batch = 2) ?(capacity = 3) () =
  if domains <= 0 then invalid_arg "Distpipe.run_f2: domains must be positive";
  if filters < 0 then invalid_arg "Distpipe.run_f2: filters must be non-negative";
  if items <= 0 then invalid_arg "Distpipe.run_f2: items must be positive";
  let c = Cluster.create ?seed mode ~shards:domains () in
  let lines = List.map (fun s -> Value.Str s) (doc items) in
  let src_shard = stage_shard ~domains 0 in
  let src =
    T.Stage.source_ro
      (Cluster.kernel c src_shard)
      ~name:"source" ~capacity (list_gen lines)
  in
  let prev = ref (src_shard, src) in
  for j = 1 to filters do
    let shard = stage_shard ~domains j in
    let upstream =
      Cluster.proxy c ~shard ~ops:[ T.Proto.transfer_op ] ~target:!prev
    in
    let transform = if j mod 2 = 1 then Cat.trim_trailing else Cat.upcase in
    let f =
      T.Stage.filter_ro
        (Cluster.kernel c shard)
        ~name:(Printf.sprintf "F%d" j)
        ~capacity ~batch ~upstream transform
    in
    prev := (shard, f)
  done;
  let k0 = Cluster.kernel c 0 in
  let sink_up = Cluster.proxy c ~shard:0 ~ops:[ T.Proto.transfer_op ] ~target:!prev in
  let acc = ref [] in
  let n = ref 0 in
  let sink =
    T.Stage.sink_ro k0 ~name:"sink" ~batch ~upstream:sink_up (fun v ->
        incr n;
        acc := v :: !acc)
  in
  Kernel.poke k0 sink;
  Cluster.run c;
  {
    consumed = !n;
    stream = encode_stream (List.rev !acc);
    lines = List.map Value.to_str (List.rev !acc);
    meter = Cluster.meter c;
    op_counts = Cluster.op_counts c;
  }

let split_window_lines ~labels lines =
  List.map
    (fun label ->
      let prefix = label ^ " | " in
      let plen = String.length prefix in
      let mine =
        List.filter_map
          (fun l ->
            if String.length l >= plen && String.sub l 0 plen = prefix then
              Some (String.sub l plen (String.length l - plen))
            else None)
          lines
      in
      (label, mine))
    (List.sort compare labels)

(* --- Plane-parametric topologies (the chunked equivalence matrix) ---- *)

(* Every figure below can run its data plane either {e boxed} — one
   [Value.Str] line per item, batch 1, the paper's counting regime and
   the oracle of the equivalence suite — or {e chunked} — flat
   [Value.Chunk] byte slices cut at arbitrary positions, moved under
   {!Flowctl.chunked}.  The two planes must produce byte-identical
   output: the boxed sink renders [line ^ "\n"], the chunked sink
   concatenates raw chunk payloads. *)

type plane = Boxed | Chunked of { cut : int; chunk_bytes : int }

let chunked ?(cut = 113) ?(chunk_bytes = 4096) () =
  if cut < 1 then invalid_arg "Distpipe.chunked: cut must be at least 1";
  Chunked { cut; chunk_bytes }

let plane_gen plane lines =
  match plane with
  | Boxed -> list_gen (List.map (fun s -> Value.Str s) lines)
  | Chunked { cut; _ } ->
      Chunkline.cut_gen ~cut
        (String.concat "" (List.map (fun l -> l ^ "\n") lines))

let plane_flowctl = function
  | Boxed -> None
  | Chunked { chunk_bytes; _ } -> Some (Flowctl.chunked ~chunk_bytes ())

(* The alternating F2 filter chain, per plane. *)
let plane_filter plane j =
  match plane with
  | Boxed -> if j mod 2 = 1 then Cat.trim_trailing else Cat.upcase
  | Chunked _ -> if j mod 2 = 1 then Cat.chunked_trim_trailing else Cat.chunked_upcase

let plane_grep_v plane pat =
  match plane with Boxed -> Cat.grep_v pat | Chunked _ -> Cat.chunked_grep_v pat

let plane_upcase = function Boxed -> Cat.upcase | Chunked _ -> Cat.chunked_upcase

(* Sink half shared by every runner: collects the output byte stream
   and counts which plane each arriving item was on — the equivalence
   suite asserts [chunk_items > 0] so a silently downgraded chunked
   config fails instead of comparing boxed against boxed. *)
let byte_sink () =
  let buf = Buffer.create 4096 in
  let chunk_items = ref 0 in
  let boxed_items = ref 0 in
  let consume v =
    match v with
    | Value.Chunk c ->
        incr chunk_items;
        Buffer.add_string buf (Chunk.to_string c);
        Chunk.release c
    | Value.Str s ->
        incr boxed_items;
        Buffer.add_string buf s;
        Buffer.add_char buf '\n'
    | v -> raise (Value.Protocol_error ("byte sink: unexpected " ^ Value.preview v))
  in
  (consume, buf, chunk_items, boxed_items)

(* Progress reporting for the F3/F4 report streams, held to the same
   text on both planes: the boxed side counts items (one line each),
   the chunked side counts lines as the engine completes them. *)
let plane_progress plane ~every ~label : Report.reporting =
  match plane with
  | Boxed -> Report.with_progress ~every ~label T.Transform.identity
  | Chunked _ ->
      fun next emit report ->
        let seen = ref 0 in
        Chunkline.run
          ~on_line:(fun _ line ->
            incr seen;
            if !seen mod every = 0 then
              report (Value.Str (Printf.sprintf "%s: %d items" label !seen));
            ([ line ], false))
          ~on_flush:(fun () -> [])
          next emit;
        report (Value.Str (Printf.sprintf "%s: done, %d items" label !seen))

type stream_outcome = {
  bytes : string;
  reports : (string * string list) list;
  chunk_items : int;
  boxed_items : int;
  eos_clean : bool;
  s_meter : Kernel.Meter.snapshot;
  s_op_counts : (string * int) list;
}

let outcome c ~buf ~reports ~chunk_items ~boxed_items ~eos_clean =
  {
    bytes = Buffer.contents buf;
    reports;
    chunk_items = !chunk_items;
    boxed_items = !boxed_items;
    eos_clean;
    s_meter = Cluster.meter c;
    s_op_counts = Cluster.op_counts c;
  }

let run_f2p mode ?seed ~domains ~filters ~items ~plane ?filter_of ?(batch = 1)
    ?(capacity = 3) () =
  if domains <= 0 then invalid_arg "Distpipe.run_f2p: domains must be positive";
  if filters < 0 then invalid_arg "Distpipe.run_f2p: filters must be non-negative";
  if items <= 0 then invalid_arg "Distpipe.run_f2p: items must be positive";
  let c = Cluster.create ?seed mode ~shards:domains () in
  let flowctl = plane_flowctl plane in
  let src_shard = stage_shard ~domains 0 in
  let src =
    T.Stage.source_ro
      (Cluster.kernel c src_shard)
      ~name:"source" ~capacity
      (plane_gen plane (doc items))
  in
  let transform_of j =
    match filter_of with Some f -> f j | None -> plane_filter plane j
  in
  let prev = ref (src_shard, src) in
  for j = 1 to filters do
    let shard = stage_shard ~domains j in
    let upstream = Cluster.proxy c ~shard ~ops:[ T.Proto.transfer_op ] ~target:!prev in
    let f =
      T.Stage.filter_ro
        (Cluster.kernel c shard)
        ~name:(Printf.sprintf "F%d" j)
        ~capacity ~batch ?flowctl ~upstream (transform_of j)
    in
    prev := (shard, f)
  done;
  let k0 = Cluster.kernel c 0 in
  let sink_up = Cluster.proxy c ~shard:0 ~ops:[ T.Proto.transfer_op ] ~target:!prev in
  let consume, buf, chunk_items, boxed_items = byte_sink () in
  let eos = ref 0 in
  let sink =
    T.Stage.sink_ro k0 ~name:"sink" ~batch ?flowctl ~upstream:sink_up
      ~on_done:(fun () -> incr eos)
      consume
  in
  Kernel.poke k0 sink;
  Cluster.run c;
  outcome c ~buf ~reports:[] ~chunk_items ~boxed_items ~eos_clean:(!eos = 1)

let run_f1p mode ?seed ~domains ~filters ~items ~plane ?(capacity = 4) () =
  if domains <= 0 then invalid_arg "Distpipe.run_f1p: domains must be positive";
  if filters < 0 then invalid_arg "Distpipe.run_f1p: filters must be non-negative";
  if items <= 0 then invalid_arg "Distpipe.run_f1p: items must be positive";
  let c = Cluster.create ?seed mode ~shards:domains () in
  let flowctl = plane_flowctl plane in
  let k0 = Cluster.kernel c 0 in
  (* Conventional discipline: every active stage lives on a leaf shard
     while the pipes sit with the sink on shard 0, so each read and
     each write of the chain crosses the fabric. *)
  let pipes =
    Array.init (filters + 1) (fun j ->
        T.Stage.pipe k0 ~name:(Printf.sprintf "pipe%d" j) ~capacity ())
  in
  let pipe_proxy ~shard j ops = Cluster.proxy c ~shard ~ops ~target:(0, pipes.(j)) in
  let src_shard = stage_shard ~domains 0 in
  let src =
    T.Stage.source_active
      (Cluster.kernel c src_shard)
      ~name:"source" ?flowctl
      ~downstream:(pipe_proxy ~shard:src_shard 0 [ T.Proto.deposit_op ])
      (plane_gen plane (doc items))
  in
  Kernel.poke (Cluster.kernel c src_shard) src;
  for j = 1 to filters do
    let shard = stage_shard ~domains j in
    let f =
      T.Stage.filter_active
        (Cluster.kernel c shard)
        ~name:(Printf.sprintf "F%d" j)
        ?flowctl
        ~upstream:(pipe_proxy ~shard (j - 1) [ T.Proto.transfer_op ])
        ~downstream:(pipe_proxy ~shard j [ T.Proto.deposit_op ])
        (plane_filter plane j)
    in
    Kernel.poke (Cluster.kernel c shard) f
  done;
  let consume, buf, chunk_items, boxed_items = byte_sink () in
  let eos = ref 0 in
  let sink =
    T.Stage.sink_active k0 ~name:"sink" ?flowctl ~upstream:pipes.(filters)
      ~on_done:(fun () -> incr eos)
      consume
  in
  Kernel.poke k0 sink;
  Cluster.run c;
  outcome c ~buf ~reports:[] ~chunk_items ~boxed_items ~eos_clean:(!eos = 1)

let run_f3p mode ?seed ~domains ~items ~plane ?(capacity = 4) () =
  if domains <= 0 then invalid_arg "Distpipe.run_f3p: domains must be positive";
  if items <= 0 then invalid_arg "Distpipe.run_f3p: items must be positive";
  let c = Cluster.create ?seed mode ~shards:domains () in
  let flowctl = plane_flowctl plane in
  let k0 = Cluster.kernel c 0 in
  let docl = doc items @ [ "drop this line" ] in
  let shard_of = stage_shard ~domains in
  let s_src = shard_of 0 and s_f1 = shard_of 1 and s_f2 = shard_of 2 and s_f3 = shard_of 3 in
  (* Built sink-first: write-only stages hold their downstream's UID. *)
  let consume, buf, chunk_items, boxed_items = byte_sink () in
  let eos = ref 0 in
  let sink =
    T.Stage.sink_wo k0 ~name:"sink" ~capacity
      ~on_done:(fun () -> incr eos)
      consume
  in
  let rep_acc = ref [] in
  let rep_eos = ref 0 in
  let repsink =
    T.Stage.sink_wo k0 ~name:"repsink" ~capacity
      ~on_done:(fun () -> incr rep_eos)
      (fun v -> rep_acc := Value.to_str v :: !rep_acc)
  in
  let f3 =
    T.Stage.filter_wo
      (Cluster.kernel c s_f3)
      ~name:"F3" ~capacity ?flowctl
      ~downstream:(Cluster.proxy c ~shard:s_f3 ~ops:[ T.Proto.deposit_op ] ~target:(0, sink))
      (plane_upcase plane)
  in
  let f2 =
    T.Stage.filter_wo
      (Cluster.kernel c s_f2)
      ~name:"F2" ~capacity ?flowctl
      ~downstream:(Cluster.proxy c ~shard:s_f2 ~ops:[ T.Proto.deposit_op ] ~target:(s_f3, f3))
      (plane_grep_v plane "drop")
  in
  let f1 =
    Report.filter_wo
      (Cluster.kernel c s_f1)
      ~name:"F1" ~capacity
      ~downstream:(Cluster.proxy c ~shard:s_f1 ~ops:[ T.Proto.deposit_op ] ~target:(s_f2, f2))
      ~report_to:(Cluster.proxy c ~shard:s_f1 ~ops:[ T.Proto.deposit_op ] ~target:(0, repsink))
      ~report_channel:T.Channel.output
      (plane_progress plane ~every:4 ~label:"F1")
  in
  let src =
    T.Stage.source_wo
      (Cluster.kernel c s_src)
      ~name:"source" ?flowctl
      ~downstream:(Cluster.proxy c ~shard:s_src ~ops:[ T.Proto.deposit_op ] ~target:(s_f1, f1))
      (plane_gen plane docl)
  in
  Kernel.poke (Cluster.kernel c s_src) src;
  Cluster.run c;
  outcome c ~buf
    ~reports:[ ("F1", List.rev !rep_acc) ]
    ~chunk_items ~boxed_items
    ~eos_clean:(!eos = 1 && !rep_eos = 1)

let run_f4p mode ?seed ~domains ~items ~plane ?(capacity = 3) () =
  if domains <= 0 then invalid_arg "Distpipe.run_f4p: domains must be positive";
  if items <= 0 then invalid_arg "Distpipe.run_f4p: items must be positive";
  let c = Cluster.create ?seed mode ~shards:domains () in
  let flowctl = plane_flowctl plane in
  let docl = doc items @ [ "drop this line" ] in
  let shard_of = stage_shard ~domains in
  let s_src = shard_of 0 and s_f1 = shard_of 1 and s_f2 = shard_of 2 and s_f3 = shard_of 3 in
  let src =
    T.Stage.source_ro
      (Cluster.kernel c s_src)
      ~name:"source" ~capacity (plane_gen plane docl)
  in
  let f1 =
    Report.filter_ro
      (Cluster.kernel c s_f1)
      ~name:"F1" ~capacity
      ~upstream:(Cluster.proxy c ~shard:s_f1 ~ops:[ T.Proto.transfer_op ] ~target:(s_src, src))
      (plane_progress plane ~every:4 ~label:"F1")
  in
  let f2 =
    T.Stage.filter_ro
      (Cluster.kernel c s_f2)
      ~name:"F2" ~capacity ?flowctl
      ~upstream:(Cluster.proxy c ~shard:s_f2 ~ops:[ T.Proto.transfer_op ] ~target:(s_f1, f1))
      (plane_grep_v plane "drop")
  in
  let f3 =
    T.Stage.filter_ro
      (Cluster.kernel c s_f3)
      ~name:"F3" ~capacity ?flowctl
      ~upstream:(Cluster.proxy c ~shard:s_f3 ~ops:[ T.Proto.transfer_op ] ~target:(s_f2, f2))
      (plane_upcase plane)
  in
  let k0 = Cluster.kernel c 0 in
  let consume, buf, chunk_items, boxed_items = byte_sink () in
  let eos = ref 0 in
  let sink =
    T.Stage.sink_ro k0 ~name:"sink" ?flowctl
      ~upstream:(Cluster.proxy c ~shard:0 ~ops:[ T.Proto.transfer_op ] ~target:(s_f3, f3))
      ~on_done:(fun () -> incr eos)
      consume
  in
  let watch =
    [
      ( "F1",
        Cluster.proxy c ~shard:0 ~ops:[ T.Proto.transfer_op ] ~target:(s_f1, f1),
        T.Channel.report );
    ]
  in
  let window = Dev.report_window_ro k0 ~name:"window" ~watch () in
  Kernel.poke k0 sink;
  Kernel.poke k0 window.Dev.uid;
  Cluster.run c;
  outcome c ~buf
    ~reports:(split_window_lines ~labels:[ "F1" ] (window.Dev.lines ()))
    ~chunk_items ~boxed_items ~eos_clean:(!eos = 1)

type f4_outcome = {
  terminal : string list;
  reports : (string * string list) list;
  invocations : int;
  op_counts : (string * int) list;
}

let run_f4 mode ?seed ~domains ~items () =
  if domains <= 0 then invalid_arg "Distpipe.run_f4: domains must be positive";
  if items <= 0 then invalid_arg "Distpipe.run_f4: items must be positive";
  let c = Cluster.create ?seed mode ~shards:domains () in
  let lines =
    List.map (fun s -> Value.Str s) (doc items @ [ "drop this line" ])
  in
  let shard_of = stage_shard ~domains in
  let s_src = shard_of 0 and s_f1 = shard_of 1 and s_f2 = shard_of 2 and s_f3 = shard_of 3 in
  let src =
    Report.source_ro (Cluster.kernel c s_src) ~name:"source" ~label:"source"
      (list_gen lines)
  in
  let f1 =
    Report.filter_ro (Cluster.kernel c s_f1) ~name:"F1"
      ~upstream:(Cluster.proxy c ~shard:s_f1 ~ops:[ T.Proto.transfer_op ] ~target:(s_src, src))
      (Report.with_progress ~every:4 ~label:"F1" T.Transform.identity)
  in
  let f2 =
    T.Stage.filter_ro (Cluster.kernel c s_f2) ~name:"F2"
      ~upstream:(Cluster.proxy c ~shard:s_f2 ~ops:[ T.Proto.transfer_op ] ~target:(s_f1, f1))
      (Cat.grep_v "drop")
  in
  let f3 =
    T.Stage.filter_ro (Cluster.kernel c s_f3) ~name:"F3"
      ~upstream:(Cluster.proxy c ~shard:s_f3 ~ops:[ T.Proto.transfer_op ] ~target:(s_f2, f2))
      Cat.upcase
  in
  let k0 = Cluster.kernel c 0 in
  let term =
    Dev.terminal_ro k0 ~name:"terminal"
      ~upstream:(Cluster.proxy c ~shard:0 ~ops:[ T.Proto.transfer_op ] ~target:(s_f3, f3))
      ()
  in
  let watch =
    [
      ( "source",
        Cluster.proxy c ~shard:0 ~ops:[ T.Proto.transfer_op ] ~target:(s_src, src),
        T.Channel.report );
      ( "F1",
        Cluster.proxy c ~shard:0 ~ops:[ T.Proto.transfer_op ] ~target:(s_f1, f1),
        T.Channel.report );
    ]
  in
  let window = Dev.report_window_ro k0 ~name:"window" ~watch () in
  Kernel.poke k0 term.Dev.uid;
  Kernel.poke k0 window.Dev.uid;
  Cluster.run c;
  let meter = Cluster.meter c in
  {
    terminal = term.Dev.lines ();
    reports = split_window_lines ~labels:[ "source"; "F1" ] (window.Dev.lines ());
    invocations = meter.Kernel.Meter.invocations;
    op_counts = Cluster.op_counts c;
  }
