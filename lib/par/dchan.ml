type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  q : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
  label : string;
}

let create ~capacity ?(label = "dchan") () =
  if capacity <= 0 then invalid_arg "Dchan.create: capacity must be positive";
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    nonfull = Condition.create ();
    q = Queue.create ();
    capacity;
    closed = false;
    label;
  }

let send t x =
  Mutex.protect t.mu (fun () ->
      while Queue.length t.q >= t.capacity && not t.closed do
        Condition.wait t.nonfull t.mu
      done;
      if t.closed then false
      else begin
        Queue.push x t.q;
        Condition.signal t.nonempty;
        true
      end)

let send_many t xs =
  Mutex.protect t.mu (fun () ->
      let sent = ref 0 in
      let rec go = function
        | [] -> ()
        | x :: rest ->
            while Queue.length t.q >= t.capacity && not t.closed do
              Condition.wait t.nonfull t.mu
            done;
            if not t.closed then begin
              Queue.push x t.q;
              incr sent;
              Condition.signal t.nonempty;
              go rest
            end
      in
      go xs;
      !sent)

let try_send t x =
  Mutex.protect t.mu (fun () ->
      if t.closed || Queue.length t.q >= t.capacity then false
      else begin
        Queue.push x t.q;
        Condition.signal t.nonempty;
        true
      end)

let recv t =
  Mutex.protect t.mu (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.nonempty t.mu
      done;
      let x = Queue.take_opt t.q in
      if x <> None then Condition.signal t.nonfull;
      x)

let recv_many t ~max =
  if max < 1 then invalid_arg "Dchan.recv_many: max must be positive";
  Mutex.protect t.mu (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.nonempty t.mu
      done;
      let rec take n acc =
        if n >= max then acc
        else
          match Queue.take_opt t.q with
          | None -> acc
          | Some x ->
              Condition.signal t.nonfull;
              take (n + 1) (x :: acc)
      in
      List.rev (take 0 []))

let try_recv t =
  Mutex.protect t.mu (fun () ->
      let x = Queue.take_opt t.q in
      if x <> None then Condition.signal t.nonfull;
      x)

let close t =
  Mutex.protect t.mu (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Condition.broadcast t.nonempty;
        Condition.broadcast t.nonfull
      end)

let is_closed t = Mutex.protect t.mu (fun () -> t.closed)
let capacity t = t.capacity
let length t = Mutex.protect t.mu (fun () -> Queue.length t.q)
