module Kernel = Eden_kernel.Kernel
module Value = Eden_kernel.Value
module Sched = Eden_sched.Sched
module Obs = Eden_obs.Obs
module Stage = Eden_transput.Stage
module Proto = Eden_transput.Proto
module Transform = Eden_transput.Transform

type spec = {
  branches : int;
  filters : int;
  items : int;
  batch : int;
  capacity : int;
  work : int;
  flowctl : Eden_flowctl.Flowctl.t option;
}

let default =
  {
    branches = 8;
    filters = 2;
    items = 64;
    batch = 4;
    capacity = 4;
    work = 20_000;
    flowctl = None;
  }

let item ~branch i = Value.Int ((branch * 1_000_003) + i)

let burn rounds seed =
  let h = ref seed in
  for _ = 1 to rounds do
    h := ((!h * 1103515245) + 12345) land 0x3FFFFFFF
  done;
  !h

let branch_shard ~domains b = if domains = 1 then 0 else 1 + (b mod (domains - 1))

type outcome = {
  consumed : int;
  per_branch : Value.t list array;
  eos_clean : bool;
  meter : Kernel.Meter.snapshot;
  op_counts : (string * int) list;
  flows : (string * int * int) list;
  histograms : (string * Obs.Histogram.t) list;
  cross_messages : int;
  makespans : float array;
}

let run mode ?seed ~domains spec =
  if spec.branches <= 0 then invalid_arg "Fanin.run: branches must be positive";
  if spec.items <= 0 then invalid_arg "Fanin.run: items must be positive";
  if spec.batch <= 0 then invalid_arg "Fanin.run: batch must be positive";
  if domains <= 0 then invalid_arg "Fanin.run: domains must be positive";
  let c = Cluster.create ?seed mode ~shards:domains () in
  let acc = Array.make spec.branches [] in
  let counts = Array.make spec.branches 0 in
  let done_times = Array.make spec.branches 0 in
  let done_count = Array.make spec.branches (-1) in
  let work_fn v = Value.Int (burn spec.work (Value.to_int v)) in
  for b = 0 to spec.branches - 1 do
    let pshard = branch_shard ~domains b in
    let pk = Cluster.kernel c pshard in
    let pobs = Kernel.obs pk in
    let src_flow = Obs.register_stage pobs (Printf.sprintf "b%02d.source" b) in
    let next = ref 0 in
    let gen () =
      if !next >= spec.items then None
      else begin
        let v = item ~branch:b !next in
        incr next;
        Some v
      end
    in
    let src =
      Stage.source_ro pk
        ~name:(Printf.sprintf "b%02d.source" b)
        ~capacity:spec.capacity ~flow:src_flow gen
    in
    let up = ref src in
    for j = 0 to spec.filters - 1 do
      let flow =
        Obs.register_stage pobs (Printf.sprintf "b%02d.filter%d" b j)
      in
      up :=
        Stage.filter_ro pk
          ~name:(Printf.sprintf "b%02d.filter%d" b j)
          ~capacity:spec.capacity ~batch:spec.batch ?flowctl:spec.flowctl ~flow
          ~upstream:!up (Transform.map work_fn)
    done;
    let sink_up =
      Cluster.proxy c ~shard:0 ~ops:[ Proto.transfer_op ]
        ~target:(pshard, !up)
    in
    let k0 = Cluster.kernel c 0 in
    let sink_flow =
      Obs.register_stage (Kernel.obs k0) (Printf.sprintf "b%02d.sink" b)
    in
    let sink =
      Stage.sink_ro k0
        ~name:(Printf.sprintf "b%02d.sink" b)
        ~batch:spec.batch ?flowctl:spec.flowctl ~flow:sink_flow ~upstream:sink_up
        ~on_done:(fun () ->
          done_times.(b) <- done_times.(b) + 1;
          done_count.(b) <- counts.(b))
        (fun v ->
          counts.(b) <- counts.(b) + 1;
          acc.(b) <- v :: acc.(b))
    in
    Kernel.poke k0 sink
  done;
  Cluster.run c;
  let eos_clean = ref true in
  for b = 0 to spec.branches - 1 do
    if done_times.(b) <> 1 || done_count.(b) <> counts.(b) then
      eos_clean := false
  done;
  {
    consumed = Array.fold_left ( + ) 0 counts;
    per_branch = Array.map List.rev acc;
    eos_clean = !eos_clean;
    meter = Cluster.meter c;
    op_counts = Cluster.op_counts c;
    flows = Cluster.flows c;
    histograms = Cluster.histograms c;
    cross_messages = Cluster.cross_messages c;
    makespans = Cluster.makespans c;
  }

(* --- Byte-stream fan-in (the chunked equivalence variant) ----------- *)

type bytes_outcome = {
  b_per_branch : string array;
  b_chunk_items : int;
  b_boxed_items : int;
  b_eos_clean : bool;
  b_op_counts : (string * int) list;
}

let branch_doc ~branch n =
  List.init n (fun i ->
      Printf.sprintf "b%02d-line-%03d  payload %04x  " branch i
        (((branch * 7919) + (i * 104729)) land 0xFFFF))

(* Per-branch cut sizes differ (seeded off the branch index) so chunk
   boundaries land differently on every branch of the same run. *)
let branch_plane plane ~branch =
  match (plane : Distpipe.plane) with
  | Distpipe.Boxed -> Distpipe.Boxed
  | Distpipe.Chunked { cut; chunk_bytes } ->
      Distpipe.Chunked { cut = 1 + ((cut + (branch * 13)) mod 257); chunk_bytes }

let run_bytes mode ?seed ~domains ~branches ~items ~plane () =
  if branches <= 0 then invalid_arg "Fanin.run_bytes: branches must be positive";
  if items <= 0 then invalid_arg "Fanin.run_bytes: items must be positive";
  if domains <= 0 then invalid_arg "Fanin.run_bytes: domains must be positive";
  let c = Cluster.create ?seed mode ~shards:domains () in
  let bufs = Array.init branches (fun _ -> Buffer.create 1024) in
  let chunk_items = ref 0 in
  let boxed_items = ref 0 in
  let done_times = Array.make branches 0 in
  let k0 = Cluster.kernel c 0 in
  for b = 0 to branches - 1 do
    let bplane = branch_plane plane ~branch:b in
    let flowctl = Distpipe.plane_flowctl bplane in
    let pshard = branch_shard ~domains b in
    let pk = Cluster.kernel c pshard in
    let src =
      Stage.source_ro pk
        ~name:(Printf.sprintf "b%02d.source" b)
        ~capacity:4
        (Distpipe.plane_gen bplane (branch_doc ~branch:b items))
    in
    let filter =
      Stage.filter_ro pk
        ~name:(Printf.sprintf "b%02d.upcase" b)
        ~capacity:4 ?flowctl ~upstream:src
        (match bplane with
        | Distpipe.Boxed -> Eden_filters.Catalog.upcase
        | Distpipe.Chunked _ -> Eden_filters.Catalog.chunked_upcase)
    in
    let sink_up =
      Cluster.proxy c ~shard:0 ~ops:[ Proto.transfer_op ] ~target:(pshard, filter)
    in
    let sink =
      Stage.sink_ro k0
        ~name:(Printf.sprintf "b%02d.sink" b)
        ?flowctl ~upstream:sink_up
        ~on_done:(fun () -> done_times.(b) <- done_times.(b) + 1)
        (fun v ->
          match v with
          | Value.Chunk c ->
              incr chunk_items;
              Buffer.add_string bufs.(b) (Eden_chunk.Chunk.to_string c);
              Eden_chunk.Chunk.release c
          | Value.Str s ->
              incr boxed_items;
              Buffer.add_string bufs.(b) s;
              Buffer.add_char bufs.(b) '\n'
          | v ->
              raise
                (Value.Protocol_error ("fanin byte sink: unexpected " ^ Value.preview v)))
    in
    Kernel.poke k0 sink
  done;
  Cluster.run c;
  {
    b_per_branch = Array.map Buffer.contents bufs;
    b_chunk_items = !chunk_items;
    b_boxed_items = !boxed_items;
    b_eos_clean = Array.for_all (fun n -> n = 1) done_times;
    b_op_counts = Cluster.op_counts c;
  }
