module Kernel = Eden_kernel.Kernel
module Value = Eden_kernel.Value
module Sched = Eden_sched.Sched
module Obs = Eden_obs.Obs
module Stage = Eden_transput.Stage
module Proto = Eden_transput.Proto
module Transform = Eden_transput.Transform

type spec = {
  branches : int;
  filters : int;
  items : int;
  batch : int;
  capacity : int;
  work : int;
  flowctl : Eden_flowctl.Flowctl.t option;
}

let default =
  {
    branches = 8;
    filters = 2;
    items = 64;
    batch = 4;
    capacity = 4;
    work = 20_000;
    flowctl = None;
  }

let item ~branch i = Value.Int ((branch * 1_000_003) + i)

let burn rounds seed =
  let h = ref seed in
  for _ = 1 to rounds do
    h := ((!h * 1103515245) + 12345) land 0x3FFFFFFF
  done;
  !h

let branch_shard ~domains b = if domains = 1 then 0 else 1 + (b mod (domains - 1))

type outcome = {
  consumed : int;
  per_branch : Value.t list array;
  eos_clean : bool;
  meter : Kernel.Meter.snapshot;
  op_counts : (string * int) list;
  flows : (string * int * int) list;
  histograms : (string * Obs.Histogram.t) list;
  cross_messages : int;
  makespans : float array;
}

let run mode ?seed ~domains spec =
  if spec.branches <= 0 then invalid_arg "Fanin.run: branches must be positive";
  if spec.items <= 0 then invalid_arg "Fanin.run: items must be positive";
  if spec.batch <= 0 then invalid_arg "Fanin.run: batch must be positive";
  if domains <= 0 then invalid_arg "Fanin.run: domains must be positive";
  let c = Cluster.create ?seed mode ~shards:domains () in
  let acc = Array.make spec.branches [] in
  let counts = Array.make spec.branches 0 in
  let done_times = Array.make spec.branches 0 in
  let done_count = Array.make spec.branches (-1) in
  let work_fn v = Value.Int (burn spec.work (Value.to_int v)) in
  for b = 0 to spec.branches - 1 do
    let pshard = branch_shard ~domains b in
    let pk = Cluster.kernel c pshard in
    let pobs = Kernel.obs pk in
    let src_flow = Obs.register_stage pobs (Printf.sprintf "b%02d.source" b) in
    let next = ref 0 in
    let gen () =
      if !next >= spec.items then None
      else begin
        let v = item ~branch:b !next in
        incr next;
        Some v
      end
    in
    let src =
      Stage.source_ro pk
        ~name:(Printf.sprintf "b%02d.source" b)
        ~capacity:spec.capacity ~flow:src_flow gen
    in
    let up = ref src in
    for j = 0 to spec.filters - 1 do
      let flow =
        Obs.register_stage pobs (Printf.sprintf "b%02d.filter%d" b j)
      in
      up :=
        Stage.filter_ro pk
          ~name:(Printf.sprintf "b%02d.filter%d" b j)
          ~capacity:spec.capacity ~batch:spec.batch ?flowctl:spec.flowctl ~flow
          ~upstream:!up (Transform.map work_fn)
    done;
    let sink_up =
      Cluster.proxy c ~shard:0 ~ops:[ Proto.transfer_op ]
        ~target:(pshard, !up)
    in
    let k0 = Cluster.kernel c 0 in
    let sink_flow =
      Obs.register_stage (Kernel.obs k0) (Printf.sprintf "b%02d.sink" b)
    in
    let sink =
      Stage.sink_ro k0
        ~name:(Printf.sprintf "b%02d.sink" b)
        ~batch:spec.batch ?flowctl:spec.flowctl ~flow:sink_flow ~upstream:sink_up
        ~on_done:(fun () ->
          done_times.(b) <- done_times.(b) + 1;
          done_count.(b) <- counts.(b))
        (fun v ->
          counts.(b) <- counts.(b) + 1;
          acc.(b) <- v :: acc.(b))
    in
    Kernel.poke k0 sink
  done;
  Cluster.run c;
  let eos_clean = ref true in
  for b = 0 to spec.branches - 1 do
    if done_times.(b) <> 1 || done_count.(b) <> counts.(b) then
      eos_clean := false
  done;
  {
    consumed = Array.fold_left ( + ) 0 counts;
    per_branch = Array.map List.rev acc;
    eos_clean = !eos_clean;
    meter = Cluster.meter c;
    op_counts = Cluster.op_counts c;
    flows = Cluster.flows c;
    histograms = Cluster.histograms c;
    cross_messages = Cluster.cross_messages c;
    makespans = Cluster.makespans c;
  }

(* --- Byte-stream fan-in (the chunked equivalence variant) ----------- *)

type bytes_outcome = {
  b_per_branch : string array;
  b_chunk_items : int;
  b_boxed_items : int;
  b_eos_clean : bool;
  b_op_counts : (string * int) list;
}

let branch_doc ~branch n =
  List.init n (fun i ->
      Printf.sprintf "b%02d-line-%03d  payload %04x  " branch i
        (((branch * 7919) + (i * 104729)) land 0xFFFF))

(* Per-branch cut sizes differ (seeded off the branch index) so chunk
   boundaries land differently on every branch of the same run. *)
let branch_plane plane ~branch =
  match (plane : Distpipe.plane) with
  | Distpipe.Boxed -> Distpipe.Boxed
  | Distpipe.Chunked { cut; chunk_bytes } ->
      Distpipe.Chunked { cut = 1 + ((cut + (branch * 13)) mod 257); chunk_bytes }

let run_bytes mode ?seed ~domains ~branches ~items ~plane () =
  if branches <= 0 then invalid_arg "Fanin.run_bytes: branches must be positive";
  if items <= 0 then invalid_arg "Fanin.run_bytes: items must be positive";
  if domains <= 0 then invalid_arg "Fanin.run_bytes: domains must be positive";
  let c = Cluster.create ?seed mode ~shards:domains () in
  let bufs = Array.init branches (fun _ -> Buffer.create 1024) in
  let chunk_items = ref 0 in
  let boxed_items = ref 0 in
  let done_times = Array.make branches 0 in
  let k0 = Cluster.kernel c 0 in
  for b = 0 to branches - 1 do
    let bplane = branch_plane plane ~branch:b in
    let flowctl = Distpipe.plane_flowctl bplane in
    let pshard = branch_shard ~domains b in
    let pk = Cluster.kernel c pshard in
    let src =
      Stage.source_ro pk
        ~name:(Printf.sprintf "b%02d.source" b)
        ~capacity:4
        (Distpipe.plane_gen bplane (branch_doc ~branch:b items))
    in
    let filter =
      Stage.filter_ro pk
        ~name:(Printf.sprintf "b%02d.upcase" b)
        ~capacity:4 ?flowctl ~upstream:src
        (match bplane with
        | Distpipe.Boxed -> Eden_filters.Catalog.upcase
        | Distpipe.Chunked _ -> Eden_filters.Catalog.chunked_upcase)
    in
    let sink_up =
      Cluster.proxy c ~shard:0 ~ops:[ Proto.transfer_op ] ~target:(pshard, filter)
    in
    let sink =
      Stage.sink_ro k0
        ~name:(Printf.sprintf "b%02d.sink" b)
        ?flowctl ~upstream:sink_up
        ~on_done:(fun () -> done_times.(b) <- done_times.(b) + 1)
        (fun v ->
          match v with
          | Value.Chunk c ->
              incr chunk_items;
              Buffer.add_string bufs.(b) (Eden_chunk.Chunk.to_string c);
              Eden_chunk.Chunk.release c
          | Value.Str s ->
              incr boxed_items;
              Buffer.add_string bufs.(b) s;
              Buffer.add_char bufs.(b) '\n'
          | v ->
              raise
                (Value.Protocol_error ("fanin byte sink: unexpected " ^ Value.preview v)))
    in
    Kernel.poke k0 sink
  done;
  Cluster.run c;
  {
    b_per_branch = Array.map Buffer.contents bufs;
    b_chunk_items = !chunk_items;
    b_boxed_items = !boxed_items;
    b_eos_clean = Array.for_all (fun n -> n = 1) done_times;
    b_op_counts = Cluster.op_counts c;
  }

(* --- Report-window fan-in (the C10M capacity shape) ----------------- *)

module Report = Eden_filters.Report
module Dev = Eden_devices.Devices
module T = Eden_transput

type window_outcome = {
  w_reports : (string * string list) list;
  w_bytes : string array;
  w_chunk_items : int;
  w_boxed_items : int;
  w_eos_clean : bool;
  w_op_counts : (string * int) list;
}

let producer_label p = Printf.sprintf "p%05d" p

let run_window mode ?seed ?window ~domains ~producers ~items ~style ~plane () =
  if producers <= 0 then invalid_arg "Fanin.run_window: producers must be positive";
  if items <= 0 then invalid_arg "Fanin.run_window: items must be positive";
  if domains <= 0 then invalid_arg "Fanin.run_window: domains must be positive";
  let group = match window with None -> producers | Some w -> max 1 w in
  let c = Cluster.create ?seed mode ~shards:domains () in
  let k0 = Cluster.kernel c 0 in
  let bufs = Array.init producers (fun _ -> Buffer.create 256) in
  let chunk_items = ref 0 and boxed_items = ref 0 in
  let sink_eos = Array.make producers 0 in
  let consume p v =
    match v with
    | Value.Chunk ch ->
        incr chunk_items;
        Buffer.add_string bufs.(p) (Eden_chunk.Chunk.to_string ch);
        Eden_chunk.Chunk.release ch
    | Value.Str s ->
        incr boxed_items;
        Buffer.add_string bufs.(p) s;
        Buffer.add_char bufs.(p) '\n'
    | v -> raise (Value.Protocol_error ("fanin window sink: unexpected " ^ Value.preview v))
  in
  (* Each producer is a dormant source plus a plane-normalising
     reporting filter on its shard; main streams land in per-producer
     byte sinks on shard 0, report streams fan into the windows. *)
  let windows = ref [] in
  let watch_acc = ref [] (* current group's watch list, `Ro only *) in
  let flush_watch () =
    match !watch_acc with
    | [] -> ()
    | w ->
        let win =
          Dev.report_window_ro k0
            ~name:(Printf.sprintf "window-%d" (List.length !windows))
            ~watch:(List.rev w) ()
        in
        Kernel.poke k0 win.Dev.uid;
        windows := win :: !windows;
        watch_acc := []
  in
  (* `Wo: windows are passive fan-in sinks, one per [group] producers,
     created up front so producers can be pointed at them. *)
  let wo_windows =
    match style with
    | `Ro -> [||]
    | `Wo ->
        let n_windows = (producers + group - 1) / group in
        Array.init n_windows (fun i ->
            let writers = min group (producers - (i * group)) in
            Dev.report_window_wo k0 ~name:(Printf.sprintf "window-%d" i) ~writers ())
  in
  for p = 0 to producers - 1 do
    let lbl = producer_label p in
    let bplane = branch_plane plane ~branch:p in
    let flowctl = Distpipe.plane_flowctl bplane in
    let pshard = branch_shard ~domains p in
    let pk = Cluster.kernel c pshard in
    let doc = branch_doc ~branch:(p mod 100) items in
    (match style with
    | `Ro ->
        let src =
          Stage.source_ro pk ~name:(lbl ^ ".src") ~capacity:0 (Distpipe.plane_gen bplane doc)
        in
        let f =
          Report.filter_ro pk ~name:(lbl ^ ".rep") ~upstream:src
            (Distpipe.plane_progress bplane ~every:4 ~label:lbl)
        in
        (* One proxy per pulling client: proxies dispatch serially, so
           routing the sink's output pulls and the window's report
           pulls through a shared proxy deadlocks — the report pull
           parks inside the proxy waiting for data the output pull
           (queued behind it) would have produced. *)
        let fp = Cluster.proxy c ~shard:0 ~ops:[ Proto.transfer_op ] ~target:(pshard, f) in
        let rp = Cluster.proxy c ~shard:0 ~ops:[ Proto.transfer_op ] ~target:(pshard, f) in
        let sink =
          Stage.sink_ro k0 ~name:(lbl ^ ".sink") ?flowctl ~upstream:fp
            ~on_done:(fun () -> sink_eos.(p) <- sink_eos.(p) + 1)
            (consume p)
        in
        Kernel.poke k0 sink;
        watch_acc := (lbl, rp, T.Channel.report) :: !watch_acc;
        if (p + 1) mod group = 0 then flush_watch ()
    | `Wo ->
        let sink =
          Stage.sink_wo k0 ~name:(lbl ^ ".sink") ~capacity:4
            ~on_done:(fun () -> sink_eos.(p) <- sink_eos.(p) + 1)
            (consume p)
        in
        let win = wo_windows.(p / group) in
        let f =
          Report.filter_wo pk ~name:(lbl ^ ".rep")
            ~downstream:(Cluster.proxy c ~shard:pshard ~ops:[ Proto.deposit_op ] ~target:(0, sink))
            ~report_to:
              (Cluster.proxy c ~shard:pshard ~ops:[ Proto.deposit_op ] ~target:(0, win.Dev.uid))
            (Distpipe.plane_progress bplane ~every:4 ~label:lbl)
        in
        let src =
          Stage.source_wo pk ~name:(lbl ^ ".src") ?flowctl ~downstream:f
            (Distpipe.plane_gen bplane doc)
        in
        Kernel.poke pk src)
  done;
  (match style with `Ro -> flush_watch () | `Wo -> ());
  Cluster.run c;
  let all_windows =
    match style with `Ro -> List.rev !windows | `Wo -> Array.to_list wo_windows
  in
  let window_lines = List.concat_map (fun w -> w.Dev.lines ()) all_windows in
  let labels = List.init producers producer_label in
  {
    w_reports = Distpipe.split_window_lines ~labels window_lines;
    w_bytes = Array.map Buffer.contents bufs;
    w_chunk_items = !chunk_items;
    w_boxed_items = !boxed_items;
    w_eos_clean =
      Array.for_all (fun n -> n = 1) sink_eos
      && List.for_all (fun w -> Eden_sched.Ivar.is_filled w.Dev.done_) all_windows;
    w_op_counts = Cluster.op_counts c;
  }
