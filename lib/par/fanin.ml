module Kernel = Eden_kernel.Kernel
module Value = Eden_kernel.Value
module Sched = Eden_sched.Sched
module Obs = Eden_obs.Obs
module Stage = Eden_transput.Stage
module Proto = Eden_transput.Proto
module Transform = Eden_transput.Transform

type spec = {
  branches : int;
  filters : int;
  items : int;
  batch : int;
  capacity : int;
  work : int;
  flowctl : Eden_flowctl.Flowctl.t option;
}

let default =
  {
    branches = 8;
    filters = 2;
    items = 64;
    batch = 4;
    capacity = 4;
    work = 20_000;
    flowctl = None;
  }

let item ~branch i = Value.Int ((branch * 1_000_003) + i)

let burn rounds seed =
  let h = ref seed in
  for _ = 1 to rounds do
    h := ((!h * 1103515245) + 12345) land 0x3FFFFFFF
  done;
  !h

let branch_shard ~domains b = if domains = 1 then 0 else 1 + (b mod (domains - 1))

type outcome = {
  consumed : int;
  per_branch : Value.t list array;
  eos_clean : bool;
  meter : Kernel.Meter.snapshot;
  op_counts : (string * int) list;
  flows : (string * int * int) list;
  histograms : (string * Obs.Histogram.t) list;
  cross_messages : int;
  makespans : float array;
}

let run mode ?seed ~domains spec =
  if spec.branches <= 0 then invalid_arg "Fanin.run: branches must be positive";
  if spec.items <= 0 then invalid_arg "Fanin.run: items must be positive";
  if spec.batch <= 0 then invalid_arg "Fanin.run: batch must be positive";
  if domains <= 0 then invalid_arg "Fanin.run: domains must be positive";
  let c = Cluster.create ?seed mode ~shards:domains () in
  let acc = Array.make spec.branches [] in
  let counts = Array.make spec.branches 0 in
  let done_times = Array.make spec.branches 0 in
  let done_count = Array.make spec.branches (-1) in
  let work_fn v = Value.Int (burn spec.work (Value.to_int v)) in
  for b = 0 to spec.branches - 1 do
    let pshard = branch_shard ~domains b in
    let pk = Cluster.kernel c pshard in
    let pobs = Kernel.obs pk in
    let src_flow = Obs.register_stage pobs (Printf.sprintf "b%02d.source" b) in
    let next = ref 0 in
    let gen () =
      if !next >= spec.items then None
      else begin
        let v = item ~branch:b !next in
        incr next;
        Some v
      end
    in
    let src =
      Stage.source_ro pk
        ~name:(Printf.sprintf "b%02d.source" b)
        ~capacity:spec.capacity ~flow:src_flow gen
    in
    let up = ref src in
    for j = 0 to spec.filters - 1 do
      let flow =
        Obs.register_stage pobs (Printf.sprintf "b%02d.filter%d" b j)
      in
      up :=
        Stage.filter_ro pk
          ~name:(Printf.sprintf "b%02d.filter%d" b j)
          ~capacity:spec.capacity ~batch:spec.batch ?flowctl:spec.flowctl ~flow
          ~upstream:!up (Transform.map work_fn)
    done;
    let sink_up =
      Cluster.proxy c ~shard:0 ~ops:[ Proto.transfer_op ]
        ~target:(pshard, !up)
    in
    let k0 = Cluster.kernel c 0 in
    let sink_flow =
      Obs.register_stage (Kernel.obs k0) (Printf.sprintf "b%02d.sink" b)
    in
    let sink =
      Stage.sink_ro k0
        ~name:(Printf.sprintf "b%02d.sink" b)
        ~batch:spec.batch ?flowctl:spec.flowctl ~flow:sink_flow ~upstream:sink_up
        ~on_done:(fun () ->
          done_times.(b) <- done_times.(b) + 1;
          done_count.(b) <- counts.(b))
        (fun v ->
          counts.(b) <- counts.(b) + 1;
          acc.(b) <- v :: acc.(b))
    in
    Kernel.poke k0 sink
  done;
  Cluster.run c;
  let eos_clean = ref true in
  for b = 0 to spec.branches - 1 do
    if done_times.(b) <> 1 || done_count.(b) <> counts.(b) then
      eos_clean := false
  done;
  {
    consumed = Array.fold_left ( + ) 0 counts;
    per_branch = Array.map List.rev acc;
    eos_clean = !eos_clean;
    meter = Cluster.meter c;
    op_counts = Cluster.op_counts c;
    flows = Cluster.flows c;
    histograms = Cluster.histograms c;
    cross_messages = Cluster.cross_messages c;
    makespans = Cluster.makespans c;
  }
