(** The wide fan-in workload behind experiment P1 and the
    parallel-vs-deterministic equivalence tests.

    [branches] independent read-only pipelines — source, [filters] CPU
    work filters, sink — all fan in to shard 0, which hosts every sink.
    With more than one domain the producing stages of branch [b] live on
    shard [1 + b mod (domains - 1)], so the per-item [work] (a pure
    spin, see {!burn}) runs off the sink shard and the only cross-domain
    traffic is the sinks' [Transfer] pull through a {!Cluster.proxy}.

    The topology, seeds and item values are a function of the spec and
    [domains] alone — never of the mode — so a [Deterministic] run is
    the exact oracle for a [Parallel] one: items consumed, per-branch
    item sequences, EOS-last-per-channel, operation counts and total
    invocations must all agree; only timing artifacts may differ. *)

type spec = {
  branches : int;
  filters : int;  (** work filters per branch (may be 0) *)
  items : int;  (** items per branch *)
  batch : int;  (** sink/filter transfer credit *)
  capacity : int;  (** anticipation buffer per producing stage *)
  work : int;  (** {!burn} rounds per item per filter *)
  flowctl : Eden_flowctl.Flowctl.t option;
      (** Supersedes [batch] on every filter and sink connection:
          credit-windowed, optionally adaptive exchanges — credits flow
          across the {!Cluster.proxy} shard boundary like any other
          invocation.  Each stage gets its own controller.  Adaptive
          trajectories depend on scheduling, so equivalence tests
          restrict [Adaptive] to [Deterministic] mode; [Fixed] configs
          keep the full parallel-vs-deterministic contract. *)
}

val default : spec

val item : branch:int -> int -> Eden_kernel.Value.t
(** The [i]th item of a branch; distinct across branches. *)

val burn : int -> int -> int
(** [burn rounds seed]: a pure integer spin (LCG) standing in for
    per-item CPU work; deterministic in both arguments. *)

val branch_shard : domains:int -> int -> int
(** Which shard hosts branch [b]'s producing stages; always 0 when
    [domains = 1], never 0 otherwise. *)

type outcome = {
  consumed : int;  (** items across all sinks *)
  per_branch : Eden_kernel.Value.t list array;  (** arrival order per branch *)
  eos_clean : bool;  (** every sink saw EOS exactly once, after all its items *)
  meter : Eden_kernel.Kernel.Meter.snapshot;  (** summed over shards *)
  op_counts : (string * int) list;  (** summed over shards *)
  flows : (string * int * int) list;
      (** (label, items_in, items_out) per stage, label-sorted *)
  histograms : (string * Eden_obs.Obs.Histogram.t) list;
      (** kernel histograms (rtt, net delay/size, stage waits) merged
          across shards with {!Eden_obs.Obs.Histogram.merge},
          name-sorted.  Timing-dependent: not part of the equivalence
          contract. *)
  cross_messages : int;
  makespans : float array;  (** final virtual time per shard *)
}

val run :
  Cluster.mode -> ?seed:int64 -> domains:int -> spec -> outcome
(** Builds the topology on a fresh {!Cluster} of [domains] shards and
    drives it to quiescence.
    @raise Invalid_argument on a non-positive [branches], [items],
    [batch] or [domains]. *)

(** {1 Byte-stream fan-in}

    The same fan-in shape carrying line text instead of integers, on
    either data plane: every branch is source → upcase → sink, with
    per-branch documents and (on the chunked plane) per-branch cut
    sizes.  The equivalence suite holds each branch's byte stream
    identical between planes and across runtimes. *)

type bytes_outcome = {
  b_per_branch : string array;  (** concatenated sink bytes per branch *)
  b_chunk_items : int;  (** sink items that arrived as [Value.Chunk] *)
  b_boxed_items : int;
  b_eos_clean : bool;
  b_op_counts : (string * int) list;
}

val branch_doc : branch:int -> int -> string list

val run_bytes :
  Cluster.mode ->
  ?seed:int64 ->
  domains:int ->
  branches:int ->
  items:int ->
  plane:Distpipe.plane ->
  unit ->
  bytes_outcome

(** {1 Report-window fan-in}

    The C10M capacity shape: [producers] reporting sources fan their
    report streams into report windows on shard 0 — the paper's §5
    monitoring arrangement at scale, where free fan-in is the whole
    point of the cost model.  [`Ro] is the Figure 4 arrangement (the
    window and per-producer byte sinks actively pull; producers are
    passive and dormant until first pulled), [`Wo] the Figure 3 one
    (producers actively deposit into the window).  Producers are
    grouped [window] to a window ([producers] when omitted: one window
    watches everything).

    The deterministic surface: per-producer report-line streams
    (label-sorted; interleaving across labels is scheduling-dependent,
    as for Figure 4) and per-producer main-stream bytes, identical
    across modes, planes and seeds. *)

type window_outcome = {
  w_reports : (string * string list) list;
      (** Report lines per producer label, label-sorted. *)
  w_bytes : string array;  (** Main-stream bytes per producer. *)
  w_chunk_items : int;
  w_boxed_items : int;
  w_eos_clean : bool;
      (** Every sink and every window saw end-of-stream exactly once. *)
  w_op_counts : (string * int) list;
}

val run_window :
  Cluster.mode ->
  ?seed:int64 ->
  ?window:int ->
  domains:int ->
  producers:int ->
  items:int ->
  style:[ `Ro | `Wo ] ->
  plane:Distpipe.plane ->
  unit ->
  window_outcome
