(** Parallel runtime: one simulated Eden cluster sharded over OCaml
    domains.

    Each {e shard} is a complete, self-contained {!Eden_kernel.Kernel}
    — its own scheduler, network, observability collector and PRNG
    stream (split from the cluster seed, see {!Eden_util.Prng.split}).
    In [Parallel] mode every shard runs on its own domain; in
    [Deterministic] mode one thread pumps the shards round-robin in a
    fixed order, giving a bit-reproducible schedule that serves as the
    oracle for equivalence tests.

    Ejects on different shards interact through {e proxies}: a proxy is
    a local Eject whose handlers forward the invocation as a
    request/reply message pair over the target shard's {!Dqueue} inbox
    and block the calling fiber on an {!Eden_sched.Ivar} until the reply
    comes back.  Same-shard targets take the fast path — {!proxy}
    returns the target UID itself and no message crosses a domain
    boundary.

    Termination in parallel mode is detected with an [idle]/[in_flight]
    counter pair: a message is counted in flight {e before} it is
    pushed, and a shard leaves the idle count {e before} it processes a
    popped message, so "all shards idle and nothing in flight" can only
    be observed when the whole cluster is quiescent.  The shard that
    makes that observation closes every inbox, releasing the others from
    their blocking pops. *)

type mode = Deterministic | Parallel

type t

val create :
  ?seed:int64 ->
  ?latency:Eden_net.Net.latency ->
  mode ->
  shards:int ->
  unit ->
  t
(** [shards] complete kernels.  Shard seeds are derived by splitting the
    cluster seed, so shard [i]'s randomness is the same in both modes
    and for any shard count.
    @raise Invalid_argument on non-positive [shards]. *)

val mode : t -> mode
val shard_count : t -> int

val kernel : t -> int -> Eden_kernel.Kernel.t
(** The shard's kernel, e.g. to create Ejects on it before {!run}.
    After {!run} has been called, treat it as read-only from the
    calling domain. *)

val driver : t -> int -> (Eden_kernel.Kernel.ctx -> unit) -> unit
(** Registers a driver fiber on the shard (see
    {!Eden_kernel.Kernel.spawn_driver}); it executes during {!run}. *)

val proxy :
  t ->
  shard:int ->
  ops:string list ->
  target:int * Eden_kernel.Uid.t ->
  Eden_kernel.Uid.t
(** A UID that Ejects on [shard] can invoke to reach [target] on
    another shard.  Only the listed [ops] are forwarded.  When the
    target lives on [shard] itself, the target UID is returned
    unchanged (no proxy Eject, no cross-domain message).  Must be
    called before {!run}. *)

val set_det_pick : t -> (n:int -> int) option -> unit
(** Installs (or clears) a shard-order policy for [Deterministic] mode
    (ignored by [Parallel] mode).  Each pump pass visits every shard
    exactly once; with a policy installed, the next shard to pump is
    chosen by calling it with [n] = the number of shards not yet
    visited this pass, and taking the returned index (0-based) into the
    not-yet-visited shards in ascending shard order.  Always answering
    [0] — or installing no policy — reproduces the fixed round-robin
    order bit-identically.  Out-of-range answers raise
    [Invalid_argument].  Used by Eden_check to explore cross-shard
    message orderings. *)

val run : t -> unit
(** Drives the whole cluster to quiescence — round-robin on the calling
    domain in [Deterministic] mode, one [Domain.spawn] per shard in
    [Parallel] mode — then re-raises the first fiber failure of any
    shard.  May be called once. *)

val meter : t -> Eden_kernel.Kernel.Meter.snapshot
(** Counter-wise sum over all shards. *)

val op_counts : t -> (string * int) list
(** Per-operation invocation counts summed over all shards, sorted by
    name.  Proxy forwarding re-issues the operation on the target
    shard, so a cross-shard invocation counts twice (once per side) in
    both modes — equivalence tests compare like with like. *)

val cross_messages : t -> int
(** Messages that crossed a shard boundary (requests + replies). *)
