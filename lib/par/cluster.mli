(** Parallel runtime: one simulated Eden cluster sharded over OCaml
    domains.

    Each {e shard} is a complete, self-contained {!Eden_kernel.Kernel}
    — its own scheduler, network, observability collector and PRNG
    stream (split from the cluster seed, see {!Eden_util.Prng.split}).
    In [Parallel] mode every shard runs on its own domain; in
    [Deterministic] mode one thread pumps the shards round-robin in a
    fixed order, giving a bit-reproducible schedule that serves as the
    oracle for equivalence tests.

    Ejects on different shards interact through {e proxies}: a proxy is
    a local Eject whose handlers forward the invocation as a
    request/reply message pair over the target shard's {!Dqueue} inbox
    and block the calling fiber on an {!Eden_sched.Ivar} until the reply
    comes back.  Same-shard targets take the fast path — {!proxy}
    returns the target UID itself and no message crosses a domain
    boundary.

    Termination in parallel mode is detected with an [idle]/[in_flight]
    counter pair: a message is counted in flight {e before} it is
    pushed, and a shard leaves the idle count {e before} it processes a
    popped message, so "all shards idle and nothing in flight" can only
    be observed when the whole cluster is quiescent.  The shard that
    makes that observation closes every inbox, releasing the others from
    their blocking pops. *)

type wire_config = {
  wire_transport : Eden_wire.Transport.kind;
      (** Unix-domain socket or TCP loopback. *)
  wire_faults : Eden_wire.Faults.t option;
      (** Fault injection applied at the hub's egress — the one
          chokepoint every cross-process frame passes exactly once, so
          a replay's per-frame loss script lines up with the wire. *)
  wire_auth : Eden_wire.Auth.community option;
      (** When set, the hub↔leaf handshake runs the RFC-0002 three-layer
          exchange (community id, keyed MAC, per-connection session
          token) and every subsequent frame is sealed with an 8-byte MAC
          trailer; [None] preserves the plain path for benchmarks. *)
}

type mode =
  | Deterministic
  | Parallel
  | Wire of wire_config
      (** One OS process per shard, connected by real sockets in a star
          around shard 0 (the {e hub}, which stays in the calling
          process).  {!run} forks the leaves {e after} the topology is
          built, so every Eject, closure and UID crosses by inheritance
          and both ends of each proxy already agree on names; frames
          carry [Value]s in the {!Eden_wire.Bin} codec.  At most 256
          shards (shard indices ride in one header byte).

          The OCaml 5 runtime forbids [Unix.fork] once any domain has
          ever been spawned, so in a process that mixes modes every
          [Wire] run must complete before the first [Parallel] one
          starts. *)

type t

val create :
  ?seed:int64 ->
  ?latency:Eden_net.Net.latency ->
  mode ->
  shards:int ->
  unit ->
  t
(** [shards] complete kernels.  Shard seeds are derived by splitting the
    cluster seed, so shard [i]'s randomness is the same in both modes
    and for any shard count.
    @raise Invalid_argument on non-positive [shards]. *)

val mode : t -> mode
val shard_count : t -> int

val kernel : t -> int -> Eden_kernel.Kernel.t
(** The shard's kernel, e.g. to create Ejects on it before {!run}.
    After {!run} has been called, treat it as read-only from the
    calling domain. *)

val driver : t -> int -> (Eden_kernel.Kernel.ctx -> unit) -> unit
(** Registers a driver fiber on the shard (see
    {!Eden_kernel.Kernel.spawn_driver}); it executes during {!run}. *)

val proxy :
  t ->
  shard:int ->
  ops:string list ->
  target:int * Eden_kernel.Uid.t ->
  Eden_kernel.Uid.t
(** A UID that Ejects on [shard] can invoke to reach [target] on
    another shard.  Only the listed [ops] are forwarded.  When the
    target lives on [shard] itself, the target UID is returned
    unchanged (no proxy Eject, no cross-domain message).  Must be
    called before {!run}. *)

val set_det_pick : t -> (n:int -> int) option -> unit
(** Installs (or clears) a shard-order policy for [Deterministic] mode
    (ignored by [Parallel] mode).  Each pump pass visits every shard
    exactly once; with a policy installed, the next shard to pump is
    chosen by calling it with [n] = the number of shards not yet
    visited this pass, and taking the returned index (0-based) into the
    not-yet-visited shards in ascending shard order.  Always answering
    [0] — or installing no policy — reproduces the fixed round-robin
    order bit-identically.  Out-of-range answers raise
    [Invalid_argument].  Used by Eden_check to explore cross-shard
    message orderings. *)

val run : t -> unit
(** Drives the whole cluster to quiescence — round-robin on the calling
    domain in [Deterministic] mode, one [Domain.spawn] per shard in
    [Parallel] mode, one forked OS process per leaf shard in [Wire]
    mode — then re-raises the first fiber failure of any shard (in
    [Wire] mode a leaf failure surfaces as its nonzero exit status).
    May be called once.

    Wire termination: a leaf reports [Idle n] whenever its scheduler
    quiesces having consumed [n] data frames; the hub stops once every
    leaf's report matches the count of frames actually sent to it.
    Socket FIFO ordering makes this sound — everything a leaf emitted
    precedes its Idle — and frames eaten by fault injection were never
    sent, so a faulted run still terminates (the requesting fiber stays
    blocked, exactly like simulated loss without retransmission). *)

val meter : t -> Eden_kernel.Kernel.Meter.snapshot
(** Counter-wise sum over all shards.  In [Wire] mode (after {!run})
    this sums the hub shard with the stats every leaf process reported
    over its socket at shutdown — the parent's copies of leaf kernels
    are stale pre-fork snapshots and are not consulted. *)

val op_counts : t -> (string * int) list
(** Per-operation invocation counts summed over all shards, sorted by
    name.  Proxy forwarding re-issues the operation on the target
    shard, so a cross-shard invocation counts twice (once per side) in
    every mode — equivalence tests compare like with like.  Wire mode
    aggregates leaf-reported stats, like {!meter}. *)

val flows : t -> (string * int * int) list
(** Per-stage [(label, items_in, items_out)] over all shards, sorted.
    Wire mode aggregates leaf-reported stats. *)

val histograms : t -> (string * Eden_obs.Obs.Histogram.t) list
(** Merged histograms by name, sorted.  Wire mode reports the hub shard
    only: wall-clock timing makes leaf histograms transport-dependent,
    so they are not part of the equivalence surface. *)

val makespans : t -> float array
(** Final virtual time per shard.  Wire mode: hub read locally, leaves
    from their reported stats. *)

val cross_messages : t -> int
(** Messages that crossed a shard boundary (requests + replies); in
    [Wire] mode, data frames as counted at the hub (each exactly
    once). *)
