(** Unbounded multi-producer multi-consumer blocking queue, safe across
    OCaml domains.

    This is the carrier for cross-domain traffic in the parallel
    runtime: every {!Cluster} shard owns one inbox, remote shards push
    into it, and the owning domain blocks on {!pop} when it has nothing
    else to run.  Plain mutex + condition variable — the simulator's
    cross-domain hops are coarse (one per remote invocation), so lock
    cost is noise next to the work each message triggers.

    Unlike the fiber-level {!Eden_sched.Mailbox}, these operations block
    the whole {e domain}, never a fiber; they must not be called from
    inside a running scheduler slice that other fibers are waiting on.

    Shutdown: {!close} wakes every blocked reader.  Readers drain
    whatever was pushed before the close, then receive [None]. *)

type 'a t

val create : ?label:string -> unit -> 'a t

val push : 'a t -> 'a -> bool
(** Enqueue and wake one blocked reader.  [false] (and no enqueue) when
    the queue is closed.  Never blocks. *)

val pop : 'a t -> 'a option
(** Dequeue, blocking the calling domain while the queue is empty and
    open.  [None] only when the queue is closed and drained. *)

val try_pop : 'a t -> 'a option
(** Non-blocking dequeue: [None] when currently empty (closed or
    not). *)

val close : 'a t -> unit
(** Idempotent.  Subsequent pushes are refused; blocked and future
    readers drain the backlog and then get [None]. *)

val is_closed : 'a t -> bool

val length : 'a t -> int
(** Instantaneous size; advisory under concurrency. *)

val label : 'a t -> string
