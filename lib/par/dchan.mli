(** Bounded blocking channel with backpressure, safe across OCaml
    domains.

    The flow-controlled sibling of {!Dqueue}: {!send} blocks the
    calling domain while the channel is full, so a fast producer domain
    cannot run arbitrarily far ahead of a slow consumer — the
    cross-domain analogue of the simulator's anticipation buffers
    ({!Eden_transput.Port}).  Multi-producer, multi-consumer.

    Shutdown: {!close} wakes all blocked senders (their sends fail) and
    all blocked receivers (they drain the backlog, then get [None]). *)

type 'a t

val create : capacity:int -> ?label:string -> unit -> 'a t
(** @raise Invalid_argument on non-positive capacity. *)

val send : 'a t -> 'a -> bool
(** Enqueue, blocking while the channel is full and open.  [false]
    (and no enqueue) when the channel is (or becomes, while blocked)
    closed. *)

val send_many : 'a t -> 'a list -> int
(** Enqueue a whole batch under one lock acquisition, in order,
    blocking whenever the channel is full.  Returns how many items were
    accepted: [List.length xs] normally, fewer if the channel is closed
    mid-batch (the accepted prefix stays queued).  With a single
    producer the batch is contiguous in the queue; concurrent producers
    may interleave batches only at capacity boundaries. *)

val try_send : 'a t -> 'a -> bool
(** [false] when full or closed; never blocks. *)

val recv : 'a t -> 'a option
(** Dequeue, blocking while the channel is empty and open.  [None] only
    when closed and drained. *)

val recv_many : 'a t -> max:int -> 'a list
(** Dequeue up to [max] items under one lock acquisition, blocking
    while the channel is empty and open.  Returns at least one item
    unless the channel is closed and drained ([[]], the batched [None]).
    Never blocks waiting to fill the batch: whatever is queued when the
    receiver wakes is the batch.
    @raise Invalid_argument on non-positive [max]. *)

val try_recv : 'a t -> 'a option

val close : 'a t -> unit
(** Idempotent; wakes every blocked sender and receiver. *)

val is_closed : 'a t -> bool
val capacity : 'a t -> int
val length : 'a t -> int
(** Instantaneous size; advisory under concurrency. *)
