(** Bounded blocking channel with backpressure, safe across OCaml
    domains.

    The flow-controlled sibling of {!Dqueue}: {!send} blocks the
    calling domain while the channel is full, so a fast producer domain
    cannot run arbitrarily far ahead of a slow consumer — the
    cross-domain analogue of the simulator's anticipation buffers
    ({!Eden_transput.Port}).  Multi-producer, multi-consumer.

    Shutdown: {!close} wakes all blocked senders (their sends fail) and
    all blocked receivers (they drain the backlog, then get [None]). *)

type 'a t

val create : capacity:int -> ?label:string -> unit -> 'a t
(** @raise Invalid_argument on non-positive capacity. *)

val send : 'a t -> 'a -> bool
(** Enqueue, blocking while the channel is full and open.  [false]
    (and no enqueue) when the channel is (or becomes, while blocked)
    closed. *)

val try_send : 'a t -> 'a -> bool
(** [false] when full or closed; never blocks. *)

val recv : 'a t -> 'a option
(** Dequeue, blocking while the channel is empty and open.  [None] only
    when closed and drained. *)

val try_recv : 'a t -> 'a option

val close : 'a t -> unit
(** Idempotent; wakes every blocked sender and receiver. *)

val is_closed : 'a t -> bool
val capacity : 'a t -> int
val length : 'a t -> int
(** Instantaneous size; advisory under concurrency. *)
