(** The paper's F2/F4 pipelines spread across cluster shards.

    The same topologies the bench builds inside one kernel, rebuilt so
    each stage lands on a shard (round-robin over shards 1..n-1, data
    sinks and display devices on shard 0) with {!Cluster.proxy} bridges
    on every shard-crossing edge.  Run under [Deterministic] they are
    the in-process oracle; under [Wire] each shard is its own OS
    process and every cross-stage [Transfer] rides the real socket —
    the equivalence suite demands byte-identical item streams between
    the two.

    Streams are compared in {!Eden_wire.Bin} encoded form: [f2.stream]
    is the concatenation of every consumed item, in order, so equality
    is literal byte equality of what the wire carried. *)

module Value = Eden_kernel.Value

type f2_outcome = {
  consumed : int;
  stream : string;  (** Consumed items, Bin-encoded, concatenated in order. *)
  lines : string list;  (** The same items decoded, for line-level oracles. *)
  meter : Eden_kernel.Kernel.Meter.snapshot;
  op_counts : (string * int) list;
}

val run_f2 :
  Cluster.mode ->
  ?seed:int64 ->
  domains:int ->
  filters:int ->
  items:int ->
  ?batch:int ->
  ?capacity:int ->
  unit ->
  f2_outcome
(** Figure 2 read-only pipeline: source and [filters] deterministic
    text filters round-robin over shards 1..domains-1, pumping sink on
    shard 0. *)

type f4_outcome = {
  terminal : string list;  (** Main-stream lines, in order. *)
  reports : (string * string list) list;
      (** Report-window lines grouped per watched label (sorted by
          label), each group in its own arrival order.  The window
          pulls each watched stream from its own worker, so the
          {e interleaving} across labels is scheduling-dependent —
          per-label subsequences are the deterministic surface. *)
  invocations : int;
  op_counts : (string * int) list;
}

val run_f4 : Cluster.mode -> ?seed:int64 -> domains:int -> items:int -> unit -> f4_outcome
(** Figure 4 read-only report topology: source and reporting filter F1
    upstream, F2 (grep -v "drop") and F3 (upcase) further along,
    terminal and report window (watching source and F1 report
    channels) on shard 0. *)

(** {1 Plane-parametric topologies}

    Every figure rebuilt so its data plane is a parameter: [Boxed] is
    one [Value.Str] line per item at batch 1 — the oracle — and
    [Chunked] moves flat [Value.Chunk] byte slices cut at arbitrary
    [cut]-byte positions under {!Eden_flowctl.Flowctl.chunked}.  The
    equivalence suite demands the two planes produce byte-identical
    {!stream_outcome.bytes} (and report streams) on every runtime. *)

type plane = Boxed | Chunked of { cut : int; chunk_bytes : int }

val chunked : ?cut:int -> ?chunk_bytes:int -> unit -> plane
(** [cut] (default 113, deliberately line-misaligned) sizes the source
    chunks; [chunk_bytes] (default 4096) the {!Eden_flowctl.Flowctl}
    coalescing threshold on push edges. *)

val plane_gen : plane -> string list -> unit -> Value.t option
(** The source generator for a line document on either plane. *)

val plane_flowctl : plane -> Eden_flowctl.Flowctl.t option

val plane_progress : plane -> every:int -> label:string -> Eden_filters.Report.reporting
(** Progress reporting held to the same text on both planes: the boxed
    side counts items, the chunked side counts lines as the engine
    completes them — so report streams stay byte-comparable across
    planes. *)

val split_window_lines :
  labels:string list -> string list -> (string * string list) list
(** Groups a report window's rendered ["label | line"] lines per
    watched label, keeping each group's arrival order — the
    deterministic comparison surface for window output. *)

type stream_outcome = {
  bytes : string;
      (** The sink's byte stream: boxed items render as [line ^ "\n"],
          chunk payloads are concatenated raw — the cross-plane
          comparison surface. *)
  reports : (string * string list) list;
      (** Report lines per watched label ([[]] for F1/F2). *)
  chunk_items : int;  (** Sink items that arrived as [Value.Chunk]. *)
  boxed_items : int;  (** Sink items that arrived as [Value.Str]. *)
  eos_clean : bool;  (** Every sink saw exactly one end-of-stream, last. *)
  s_meter : Eden_kernel.Kernel.Meter.snapshot;
  s_op_counts : (string * int) list;
}

val run_f1p :
  Cluster.mode ->
  ?seed:int64 ->
  domains:int ->
  filters:int ->
  items:int ->
  plane:plane ->
  ?capacity:int ->
  unit ->
  stream_outcome
(** Figure 1 conventional pipeline: active source, filters and sink on
    leaf shards connected through passive pipes on shard 0, so every
    hop crosses the fabric twice (deposit in, transfer out). *)

val run_f2p :
  Cluster.mode ->
  ?seed:int64 ->
  domains:int ->
  filters:int ->
  items:int ->
  plane:plane ->
  ?filter_of:(int -> Eden_transput.Transform.t) ->
  ?batch:int ->
  ?capacity:int ->
  unit ->
  stream_outcome
(** Figure 2 read-only pipeline, plane-parametric.  [batch] applies to
    the boxed plane only (the chunked plane is windowed per chunk).
    [filter_of] overrides the default alternating trim/upcase chain
    with a custom transform per position — the B2 benchmark passes
    identity so the measurement isolates the data plane rather than
    line-filter CPU. *)

val run_f3p :
  Cluster.mode ->
  ?seed:int64 ->
  domains:int ->
  items:int ->
  plane:plane ->
  ?capacity:int ->
  unit ->
  stream_outcome
(** §5 write-only pipeline with a report stream: source pumps into
    reporting filter F1 (progress every 4 lines), F2 (grep -v "drop"),
    F3 (upcase), sink on shard 0; F1's reports deposit into their own
    sink on shard 0. *)

val run_f4p :
  Cluster.mode ->
  ?seed:int64 ->
  domains:int ->
  items:int ->
  plane:plane ->
  ?capacity:int ->
  unit ->
  stream_outcome
(** Figure 4 read-only report topology, plane-parametric: the report
    window watches F1's report channel; the terminal is a byte sink. *)
