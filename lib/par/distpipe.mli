(** The paper's F2/F4 pipelines spread across cluster shards.

    The same topologies the bench builds inside one kernel, rebuilt so
    each stage lands on a shard (round-robin over shards 1..n-1, data
    sinks and display devices on shard 0) with {!Cluster.proxy} bridges
    on every shard-crossing edge.  Run under [Deterministic] they are
    the in-process oracle; under [Wire] each shard is its own OS
    process and every cross-stage [Transfer] rides the real socket —
    the equivalence suite demands byte-identical item streams between
    the two.

    Streams are compared in {!Eden_wire.Bin} encoded form: [f2.stream]
    is the concatenation of every consumed item, in order, so equality
    is literal byte equality of what the wire carried. *)

module Value = Eden_kernel.Value

type f2_outcome = {
  consumed : int;
  stream : string;  (** Consumed items, Bin-encoded, concatenated in order. *)
  meter : Eden_kernel.Kernel.Meter.snapshot;
  op_counts : (string * int) list;
}

val run_f2 :
  Cluster.mode ->
  ?seed:int64 ->
  domains:int ->
  filters:int ->
  items:int ->
  ?batch:int ->
  ?capacity:int ->
  unit ->
  f2_outcome
(** Figure 2 read-only pipeline: source and [filters] deterministic
    text filters round-robin over shards 1..domains-1, pumping sink on
    shard 0. *)

type f4_outcome = {
  terminal : string list;  (** Main-stream lines, in order. *)
  reports : (string * string list) list;
      (** Report-window lines grouped per watched label (sorted by
          label), each group in its own arrival order.  The window
          pulls each watched stream from its own worker, so the
          {e interleaving} across labels is scheduling-dependent —
          per-label subsequences are the deterministic surface. *)
  invocations : int;
  op_counts : (string * int) list;
}

val run_f4 : Cluster.mode -> ?seed:int64 -> domains:int -> items:int -> unit -> f4_outcome
(** Figure 4 read-only report topology: source and reporting filter F1
    upstream, F2 (grep -v "drop") and F3 (upcase) further along,
    terminal and report window (watching source and F1 report
    channels) on shard 0. *)
