(** A small pipeline language over the Eden transput system.

    Syntax (one pipeline per line):

    {v
    source | filter ... | sink
    v}

    Words are whitespace-separated; single or double quotes group.  A
    stage may carry a report redirection [2> window-name] (§5's report
    streams): its progress messages then appear in the named report
    window, shared by every stage that names it — Figures 3 and 4,
    depending on the discipline.

    Sources: [lines w1 w2 ...], [count n [prefix]], [file /path],
    [date n], [random n].  Sinks: [terminal [rate]], [null], [out /path],
    [printer [rate]].  Filters: everything in
    {!Eden_filters.Catalog.names}.

    The same pipeline can be elaborated under any
    {!Eden_transput.Pipeline.discipline}; report redirections are not
    available under [Conventional] (the paper's point is that they fit
    the asymmetric disciplines). *)

module Kernel = Eden_kernel.Kernel
module T = Eden_transput

(** {1 Parsing} *)

type stage = { name : string; args : string list; report : string option }

type ast = stage list

val lex : string -> (string list, string) result
(** Tokens, with quoting resolved; ["|"] and ["2>"] are their own
    tokens.  [Error] on unterminated quotes. *)

val parse : string -> (ast, string) result
(** At least two stages (a source and a sink) are required. *)

(** {1 Running} *)

type env = {
  kernel : Kernel.t;
  fs : Eden_fs.Unix_fs.t;
  fse : Eden_kernel.Uid.t;  (** The UnixFileSystem Eject for [file]/[out]. *)
}

val make_env : ?kernel:Kernel.t -> unit -> env

type outcome = {
  rendered : string list;
      (** What the sink displayed ([terminal]/[printer]); empty for
          [null] and [out]. *)
  windows : (string * string list) list;  (** Report windows, by name. *)
  invocations : int;  (** Data-plane invocations the pipeline used. *)
  entities : int;  (** Ejects the pipeline comprised. *)
}

val run :
  env -> ?discipline:T.Pipeline.discipline -> string -> (outcome, string) result
(** Parse, elaborate (default discipline: read-only), drive to
    completion.  All scheduling happens inside; the caller needs no
    fiber context. *)

(** {1 Session builtins}

    The [trace] and [stats] builtins of edensh render through these, so
    the exact lines a session prints are testable without spawning the
    binary. *)

val render_trace : Kernel.t -> string list
(** The kernel's bounded event ring for the last pipeline: one indented
    line per retained event, then a
    ["[N event(s) retained, D dropped, ring capacity C]"] footer. *)

val render_stats : Kernel.t -> string list
(** Cumulative session counters: the kernel meter snapshot, then — when
    non-empty — [ops:], [histograms:] and [stages:] sections, then a
    ["spans: ..."] footer. *)

val render_tenants : Kernel.t -> string list
(** The [tenants] builtin: two lines per tenant namespace (violation
    counters, then credit/capability gauges), grouped from the
    ["tenant.<name>.<counter>"] flow stages that {!Eden_tenant}
    registers.  Empty when the kernel has no tenant registry
    installed. *)
