module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value
module Sched = Eden_sched.Sched
module Ivar = Eden_sched.Ivar
module T = Eden_transput
module Fs = Eden_fs.Unix_fs
module Fse = Eden_fs.Fs_eject
module Cat = Eden_filters.Catalog
module Report = Eden_filters.Report
module Dev = Eden_devices.Devices

type stage = { name : string; args : string list; report : string option }

type ast = stage list

(* --- Lexing --------------------------------------------------------- *)

let lex line =
  let n = String.length line in
  let buf = Buffer.create 16 in
  let toks = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  let rec go i =
    if i >= n then begin
      flush ();
      Ok (List.rev !toks)
    end
    else
      match line.[i] with
      | ' ' | '\t' ->
          flush ();
          go (i + 1)
      | '|' ->
          flush ();
          toks := "|" :: !toks;
          go (i + 1)
      | '2' when i + 1 < n && line.[i + 1] = '>' && Buffer.length buf = 0 ->
          toks := "2>" :: !toks;
          go (i + 2)
      | ('\'' | '"') as q ->
          let rec quoted j =
            if j >= n then Error "unterminated quote"
            else if line.[j] = q then begin
              (* Quoted text is one token even when empty. *)
              toks := Buffer.contents buf :: !toks;
              Buffer.clear buf;
              go (j + 1)
            end
            else begin
              Buffer.add_char buf line.[j];
              quoted (j + 1)
            end
          in
          flush ();
          quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0

(* --- Parsing -------------------------------------------------------- *)

let split_stages toks =
  let rec go current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | "|" :: rest -> go [] (List.rev current :: acc) rest
    | tok :: rest -> go (tok :: current) acc rest
  in
  go [] [] toks

let parse_stage words =
  let rec strip ws report acc =
    match ws with
    | [] -> Ok (List.rev acc, report)
    | "2>" :: name :: rest ->
        if report <> None then Error "at most one report redirection per stage"
        else strip rest (Some name) acc
    | [ "2>" ] -> Error "2> expects a window name"
    | w :: rest -> strip rest report (w :: acc)
  in
  match strip words None [] with
  | Error _ as e -> e
  | Ok ([], _) -> Error "empty stage"
  | Ok (name :: args, report) -> Ok { name; args; report }

let parse line =
  match lex line with
  | Error _ as e -> e |> Result.map (fun _ -> [])
  | Ok [] -> Error "empty pipeline"
  | Ok toks -> (
      let rec stages acc = function
        | [] -> Ok (List.rev acc)
        | words :: rest -> (
            match parse_stage words with
            | Ok s -> stages (s :: acc) rest
            | Error _ as e -> e |> Result.map (fun _ -> []))
      in
      match stages [] (split_stages toks) with
      | Error _ as e -> e
      | Ok ss when List.length ss < 2 -> Error "a pipeline needs at least a source and a sink"
      | Ok ss -> Ok ss)

(* --- Environment ---------------------------------------------------- *)

type env = { kernel : Kernel.t; fs : Fs.t; fse : Uid.t }

let make_env ?kernel () =
  let kernel = match kernel with Some k -> k | None -> Kernel.create () in
  let fs = Fs.create () in
  let fse = Fse.create kernel fs in
  { kernel; fs; fse }

type outcome = {
  rendered : string list;
  windows : (string * string list) list;
  invocations : int;
  entities : int;
}

exception Shell_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Shell_error m)) fmt

let int_arg name a =
  match int_of_string_opt a with Some n when n >= 0 -> n | _ -> fail "%s: bad count %S" name a

let rate_arg = function
  | [] -> 0.0
  | [ r ] -> ( match float_of_string_opt r with Some f when f >= 0.0 -> f | _ -> fail "bad rate %S" r)
  | _ -> fail "too many arguments"

let list_gen items =
  let rest = ref items in
  fun () ->
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some (Value.Str x)

(* A generator for each source form; [file] reads the FS eagerly, which
   the read-only elaboration avoids by using the real bootstrap. *)
let gen_of_source env stage =
  match stage.name, stage.args with
  | "lines", ws -> list_gen ws
  | "count", [ n ] -> list_gen (List.init (int_arg "count" n) (fun i -> Printf.sprintf "line %d" (i + 1)))
  | "count", [ n; prefix ] ->
      list_gen (List.init (int_arg "count" n) (fun i -> Printf.sprintf "%s%d" prefix (i + 1)))
  | "date", [ n ] ->
      let remaining = ref (int_arg "date" n) in
      fun () ->
        if !remaining <= 0 then None
        else begin
          decr remaining;
          Some (Value.Str (Printf.sprintf "virtual time %.3f" (Sched.time ())))
        end
  | "file", [ path ] -> (
      match Fs.read_file env.fs path with
      | content -> list_gen (Eden_util.Text.split_lines content)
      | exception Fs.Error (e, p) -> fail "%s: %s" p (Fs.error_message e))
  | "random", [ n ] ->
      let remaining = ref (int_arg "random" n) in
      let prng = Eden_util.Prng.create 0xC0FFEEL in
      let vocabulary = [| "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot" |] in
      fun () ->
        if !remaining <= 0 then None
        else begin
          decr remaining;
          Some
            (Value.Str
               (String.concat " "
                  (List.init 4 (fun _ -> Eden_util.Prng.choose prng vocabulary))))
        end
  | ("count" | "date" | "file" | "random"), _ -> fail "%s: bad arguments" stage.name
  | name, _ -> fail "unknown source: %s" name

let is_source s = List.mem s.name [ "lines"; "count"; "date"; "file"; "random" ]
let is_sink s = List.mem s.name [ "terminal"; "null"; "out"; "printer" ]

let transform_of_filter stage =
  match Cat.by_name stage.name stage.args with
  | Ok tr -> tr
  | Error msg -> fail "%s" msg

(* --- Read-only elaboration ------------------------------------------ *)

let run_read_only env ctx (source, middle, sink) =
  let windows : (string * (string * Uid.t * T.Channel.t) list ref) list ref = ref [] in
  let watch name entry =
    match List.assoc_opt name !windows with
    | Some l -> l := entry :: !l
    | None -> windows := (name, ref [ entry ]) :: !windows
  in
  let source_uid =
    match source.report with
    | Some w ->
        let uid = Report.source_ro env.kernel ~name:source.name ~label:source.name
            (gen_of_source env source)
        in
        watch w (source.name, uid, T.Channel.report);
        uid
    | None -> (
        match source.name, source.args with
        | "file", [ path ] -> Fse.new_stream ctx ~fs:env.fse path
        | _ -> T.Stage.source_ro env.kernel ~name:source.name (gen_of_source env source))
  in
  let last =
    List.fold_left
      (fun upstream stage ->
        let tr = transform_of_filter stage in
        match stage.report with
        | Some w ->
            let uid =
              Report.filter_ro env.kernel ~name:stage.name ~upstream
                (Report.with_progress ~label:stage.name tr)
            in
            watch w (stage.name, uid, T.Channel.report);
            uid
        | None -> T.Stage.filter_ro env.kernel ~name:stage.name ~upstream tr)
      source_uid middle
  in
  if sink.report <> None then fail "sinks do not produce reports";
  let window_displays =
    List.map
      (fun (name, entries) ->
        let d = Dev.report_window_ro env.kernel ~name ~watch:(List.rev !entries) () in
        Kernel.poke env.kernel d.Dev.uid;
        (name, d))
      !windows
  in
  let rendered =
    match sink.name, sink.args with
    | "terminal", args ->
        let d = Dev.terminal_ro env.kernel ~rate:(rate_arg args) ~upstream:last () in
        Kernel.poke env.kernel d.Dev.uid;
        Ivar.read d.Dev.done_;
        d.Dev.lines ()
    | "null", [] ->
        let d = Dev.null_sink_ro env.kernel ~upstream:last () in
        Kernel.poke env.kernel d.Dev.uid;
        Ivar.read d.Dev.done_;
        []
    | "out", [ path ] ->
        let writer = Fse.use_stream ctx ~fs:env.fse path last in
        Fse.await_writer ctx writer;
        []
    | "printer", args ->
        let p = Dev.printer env.kernel ~rate:(rate_arg args) () in
        Dev.print ctx ~printer:p.Dev.puid last;
        p.Dev.paper ()
    | name, _ -> fail "unknown or malformed sink: %s" name
  in
  List.iter (fun (_, d) -> Ivar.read d.Dev.done_) window_displays;
  (rendered, List.map (fun (n, d) -> (n, d.Dev.lines ())) window_displays)

(* --- Write-only elaboration ------------------------------------------ *)

let run_write_only env _ctx (source, middle, sink) =
  (* Count reporters per window before building, since a write-only
     window needs to know how many end-of-stream marks to expect. *)
  let reporters name =
    List.length
      (List.filter (fun s -> s.report = Some name) (source :: middle))
  in
  let window_names =
    List.sort_uniq String.compare
      (List.filter_map (fun s -> s.report) (source :: middle))
  in
  let window_displays =
    List.map
      (fun name -> (name, Dev.report_window_wo env.kernel ~name ~writers:(reporters name) ()))
      window_names
  in
  let window_uid name =
    match List.assoc_opt name window_displays with
    | Some d -> d.Dev.uid
    | None -> assert false
  in
  if sink.report <> None then fail "sinks do not produce reports";
  let sink_display, sink_uid, collect =
    match sink.name, sink.args with
    | "terminal", args ->
        let d = Dev.terminal_wo env.kernel ~rate:(rate_arg args) () in
        (Some d, d.Dev.uid, fun () -> d.Dev.lines ())
    | "null", [] ->
        let done_ = Ivar.create () in
        let uid = T.Stage.sink_wo env.kernel ~on_done:(fun () -> Ivar.fill done_ ()) ignore in
        ( Some { Dev.uid; lines = (fun () -> []); done_ },
          uid,
          fun () -> [] )
    | "out", [ path ] ->
        let acc = ref [] in
        let done_ = Ivar.create () in
        let uid =
          T.Stage.sink_wo env.kernel
            ~on_done:(fun () ->
              Fs.write_file env.fs path (Eden_util.Text.join_lines (List.rev !acc));
              Ivar.fill done_ ())
            (fun v -> acc := Value.to_str v :: !acc)
        in
        (Some { Dev.uid; lines = (fun () -> []); done_ }, uid, fun () -> [])
    | "printer", _ -> fail "the printer is a reading device; use the read-only discipline"
    | name, _ -> fail "unknown or malformed sink: %s" name
  in
  let first =
    List.fold_left
      (fun downstream stage ->
        let tr = transform_of_filter stage in
        match stage.report with
        | Some w ->
            Report.filter_wo env.kernel ~name:stage.name ~downstream
              ~report_to:(window_uid w)
              (Report.with_progress ~label:stage.name tr)
        | None -> T.Stage.filter_wo env.kernel ~name:stage.name ~downstream tr)
      sink_uid (List.rev middle)
  in
  let source_uid =
    match source.report with
    | Some w ->
        Report.source_wo env.kernel ~name:source.name ~downstream:first
          ~report_to:(window_uid w) ~label:source.name (gen_of_source env source)
    | None -> T.Stage.source_wo env.kernel ~name:source.name ~downstream:first
        (gen_of_source env source)
  in
  Kernel.poke env.kernel source_uid;
  (match sink_display with Some d -> Ivar.read d.Dev.done_ | None -> ());
  List.iter (fun (_, d) -> Ivar.read d.Dev.done_) window_displays;
  (collect (), List.map (fun (n, d) -> (n, d.Dev.lines ())) window_displays)

(* --- Conventional elaboration ---------------------------------------- *)

let run_conventional env _ctx (source, middle, sink) =
  if List.exists (fun s -> s.report <> None) (source :: middle @ [ sink ]) then
    fail "report streams need the asymmetric disciplines";
  let gen = gen_of_source env source in
  let filters = List.map transform_of_filter middle in
  let acc = ref [] in
  let consume v = acc := Value.to_str v :: !acc in
  let p = T.Pipeline.build env.kernel T.Pipeline.Conventional ~gen ~filters ~consume in
  T.Pipeline.run p;
  let lines = List.rev !acc in
  match sink.name, sink.args with
  | "terminal", _ -> (lines, [])
  | "null", [] -> ([], [])
  | "out", [ path ] ->
      Fs.write_file env.fs path (Eden_util.Text.join_lines lines);
      ([], [])
  | "printer", _ -> fail "the printer is a reading device; use the read-only discipline"
  | name, _ -> fail "unknown or malformed sink: %s" name

(* --- Driver ----------------------------------------------------------- *)

(* Builtin renderings (`trace`, `stats`).  These live here rather than
   in the edensh binary so the exact lines a session prints are
   testable: the binary just [List.iter print_endline]s them. *)

module Obs = Eden_obs.Obs

let render_trace kernel =
  let evs = Kernel.Trace.events kernel in
  List.map (fun ev -> Format.asprintf "  %a" Kernel.Trace.pp_event ev) evs
  @ [
      Printf.sprintf "[%d event(s) retained, %d dropped, ring capacity %d]" (List.length evs)
        (Kernel.Trace.dropped kernel) (Kernel.Trace.capacity kernel);
    ]

let render_stats kernel =
  let obs = Kernel.obs kernel in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "%a@." Kernel.Meter.pp (Kernel.Meter.snapshot kernel);
  (match Kernel.op_counts kernel with
  | [] -> ()
  | ops ->
      Format.fprintf ppf "ops:@.";
      List.iter (fun (op, n) -> Format.fprintf ppf "  %-20s %d@." op n) ops);
  (match Obs.histograms obs with
  | [] -> ()
  | hs ->
      Format.fprintf ppf "histograms:@.";
      List.iter (fun (name, h) -> Format.fprintf ppf "  %-20s %a@." name Obs.Histogram.pp h) hs);
  (match Obs.stages obs with
  | [] -> ()
  | ss ->
      Format.fprintf ppf "stages:@.";
      List.iter (fun fl -> Format.fprintf ppf "  %a@." Obs.Flow.pp fl) ss);
  Format.fprintf ppf "spans: %d closed (%d evicted), %d open@." (Obs.span_count obs)
    (Obs.dropped_spans obs)
    (List.length (Obs.open_spans obs));
  Format.pp_print_flush ppf ();
  (* Split the formatted block into lines; drop the trailing empty
     fragment the final newline leaves behind. *)
  match List.rev (String.split_on_char '\n' (Buffer.contents buf)) with
  | "" :: rest -> List.rev rest
  | all -> List.rev all

let render_tenants kernel =
  (* Group the ["tenant.<name>.<counter>"] flow stages Eden_tenant
     registers; the shell reads them straight out of Obs so it needs no
     dependency on (or knowledge of) the tenant registry itself. *)
  let obs = Kernel.obs kernel in
  let order = ref [] in
  let tbl : (string, (string * Obs.Flow.stage) list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Obs.Flow.stage) ->
      let label = s.Obs.Flow.label in
      let prefix = "tenant." in
      let plen = String.length prefix in
      if String.length label > plen && String.sub label 0 plen = prefix then begin
        let rest = String.sub label plen (String.length label - plen) in
        match String.rindex_opt rest '.' with
        | None -> ()
        | Some i ->
            let name = String.sub rest 0 i in
            let counter = String.sub rest (i + 1) (String.length rest - i - 1) in
            let entry =
              match Hashtbl.find_opt tbl name with
              | Some l -> l
              | None ->
                  let l = ref [] in
                  Hashtbl.add tbl name l;
                  order := name :: !order;
                  l
            in
            entry := (counter, s) :: !entry
      end)
    (Obs.stages obs);
  let count counters c =
    match List.assoc_opt c counters with
    | Some s -> s.Obs.Flow.items_in
    | None -> 0
  in
  List.concat_map
    (fun name ->
      let counters = !(Hashtbl.find tbl name) in
      let gauge c f = match List.assoc_opt c counters with Some s -> f s | None -> 0 in
      [
        Printf.sprintf
          "tenant %s: violations forged_id=%d stolen_channel=%d replayed_transfer=%d \
           credit_hoard=%d revoked_use=%d"
          name (count counters "forged_id")
          (count counters "stolen_channel")
          (count counters "replayed_transfer")
          (count counters "credit_hoard")
          (count counters "revoked_use");
        Printf.sprintf "  credits outstanding=%d peak=%d reclaimed=%d; caps live=%d"
          (gauge "credits" Obs.Flow.occupancy)
          (gauge "credits" (fun s -> s.Obs.Flow.max_occupancy))
          (count counters "credits_reclaimed")
          (gauge "caps" Obs.Flow.occupancy);
      ])
    (List.rev !order)

let run env ?(discipline = T.Pipeline.Read_only) line =
  match parse line with
  | Error _ as e -> e |> Result.map (fun _ -> assert false)
  | Ok stages -> (
      let source = List.hd stages in
      let rest = List.tl stages in
      let sink = List.nth rest (List.length rest - 1) in
      let middle = List.filteri (fun i _ -> i < List.length rest - 1) rest in
      if not (is_source source) then Error (Printf.sprintf "first stage must be a source, got %s" source.name)
      else if not (is_sink sink) then Error (Printf.sprintf "last stage must be a sink, got %s" sink.name)
      else
        let created0 = (Kernel.Meter.snapshot env.kernel).Kernel.Meter.ejects_created in
        let result = ref (Error "pipeline did not run") in
        let runner =
          match discipline with
          | T.Pipeline.Read_only -> run_read_only
          | T.Pipeline.Write_only -> run_write_only
          | T.Pipeline.Conventional -> run_conventional
        in
        match
          Kernel.run_driver env.kernel (fun ctx ->
              let before = Kernel.Meter.snapshot env.kernel in
              match runner env ctx (source, middle, sink) with
              | rendered, windows ->
                  let after = Kernel.Meter.snapshot env.kernel in
                  result :=
                    Ok
                      {
                        rendered;
                        windows;
                        invocations =
                          after.Kernel.Meter.invocations - before.Kernel.Meter.invocations;
                        entities = after.Kernel.Meter.ejects_created - created0;
                      }
              | exception Shell_error m -> result := Error m
              | exception Kernel.Eden_error m -> result := Error m)
        with
        | () -> !result
        | exception Failure m -> Error ("pipeline crashed: " ^ m))
