module Value = Eden_kernel.Value

type entry =
  | Install of { chan : int; cseq : int; oseq : int; state : Value.t }
  | Item of { chan : int; cseq : int; payload : Value.t }

let encode_entry = function
  | Install { chan; cseq; oseq; state } ->
      Value.List [ Value.Str "install"; Value.Int chan; Value.Int cseq; Value.Int oseq; state ]
  | Item { chan; cseq; payload } ->
      Value.List [ Value.Str "item"; Value.Int chan; Value.Int cseq; payload ]

let decode_entry = function
  | Value.List [ Value.Str "install"; Value.Int chan; Value.Int cseq; Value.Int oseq; state ]
    ->
      Install { chan; cseq; oseq; state }
  | Value.List [ Value.Str "item"; Value.Int chan; Value.Int cseq; payload ] ->
      Item { chan; cseq; payload }
  | v -> raise (Value.Protocol_error ("elastic link entry: " ^ Value.to_string v))

let entry_chan = function Install { chan; _ } | Item { chan; _ } -> chan

let encode_out ~chan ~oseq payload = Value.List [ Value.Int chan; Value.Int oseq; payload ]

let decode_out = function
  | Value.List [ Value.Int chan; Value.Int oseq; payload ] -> (chan, oseq, payload)
  | v -> raise (Value.Protocol_error ("elastic output: " ^ Value.to_string v))

let encode_chan_state ~chan ~cseq ~oseq state =
  Value.List [ Value.Int chan; Value.Int cseq; Value.Int oseq; state ]

let decode_chan_state = function
  | Value.List [ Value.Int chan; Value.Int cseq; Value.Int oseq; state ] ->
      (chan, cseq, oseq, state)
  | v -> raise (Value.Protocol_error ("elastic channel state: " ^ Value.to_string v))

let encode_ckpt ~in_seq ~out_pos states =
  Value.List [ Value.Int in_seq; Value.Int out_pos; Value.List states ]

let decode_ckpt = function
  | Value.List [ Value.Int in_seq; Value.Int out_pos; Value.List states ] ->
      (in_seq, out_pos, List.map decode_chan_state states)
  | v -> raise (Value.Protocol_error ("elastic checkpoint: " ^ Value.to_string v))

let sync_op = "Sync"
let finish_op = "Finish"
