(** Wire shapes private to the elastic stage.

    The router speaks the ordinary resumable [Deposit] protocol on both
    sides, but the {e items} it deposits on a replica link are tagged
    entries rather than raw stream data:

    - [Install] hands a replica ownership of a channel together with the
      channel's authoritative processing state and its per-channel input
      ([cseq]) and output ([oseq]) positions — the unit of drain/handoff.
    - [Item] is one datum for an installed channel, stamped with its
      per-channel input position so handoff continuity is checkable at
      the receiving replica.

    Both travel in one FIFO link, so an install always precedes the
    items that depend on it.  Replica outputs to the sink are stamped
    [(chan, oseq)] — the sink's per-channel turnstile admits each output
    position exactly once, which is what makes replays and adoptions
    duplicate-free end to end. *)

module Value = Eden_kernel.Value

type entry =
  | Install of { chan : int; cseq : int; oseq : int; state : Value.t }
  | Item of { chan : int; cseq : int; payload : Value.t }

val encode_entry : entry -> Value.t

val decode_entry : Value.t -> entry
(** @raise Value.Protocol_error on anything else. *)

val entry_chan : entry -> int

val encode_out : chan:int -> oseq:int -> Value.t -> Value.t
val decode_out : Value.t -> int * int * Value.t

val encode_chan_state : chan:int -> cseq:int -> oseq:int -> Value.t -> Value.t
val decode_chan_state : Value.t -> int * int * int * Value.t

val encode_ckpt : in_seq:int -> out_pos:int -> Value.t list -> Value.t
val decode_ckpt : Value.t -> int * int * (int * int * int * Value.t) list

val sync_op : string
(** Forces a replica to flush its sink link and checkpoint {e now},
    replying with its durable input position — the drain barrier. *)

val finish_op : string
(** Tells the sink the stream is complete (all inputs durably processed,
    all outputs delivered); fills the done ivar. *)
