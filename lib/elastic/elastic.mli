(** Elastic pipeline stage: autoscaling replicas with exactly-once
    drain/handoff under crashes.

    One logical stage is widened into a fleet of replica Ejects behind a
    router.  Work is keyed: [classify] maps each item to a channel, and
    a channel is {e sticky} — all of its items flow to one replica in
    order, so per-channel FIFO survives any fleet width.  The fleet is
    sized by the generalized AIMD controller from {!Eden_flowctl.Aimd}
    driven by backlog occupancy watermarks; a floor of 0 gives
    scale-to-zero, with forced scale-from-zero when work arrives.

    Exactly-once across reconfiguration rests on three pieces of
    arithmetic:

    - The router→replica link acknowledges only {e durable} (replica
      checkpointed) positions, so the router's in-flight window
      [\[base, next)] is exactly what a crash or handoff can lose — and
      the router retains it for replay.  Unlike {!Eden_resil.Rpush},
      short acknowledgements here are the steady state (checkpoints are
      K-amortized), not a replay signal.
    - Drain is a fenced barrier: under the router lock the victim's
      channels stop routing, a [Sync] forces flush + checkpoint, and
      ownership is handed to survivors from the durable state plus the
      retained window.  A replica that crashes {e during} its own drain
      is reactivated from its checkpoint by the retried [Sync] itself
      and simply reports a lower durable position — the two paths
      converge.
    - Replica outputs carry per-channel output positions through a sink
      turnstile that admits each position exactly once: replayed windows
      deduplicate, and a genuinely lost window surfaces as a gap
      violation instead of silent data loss.

    Violations (order, gap, duplicate-state) are {e recorded}, never
    raised, so exploration schedules always run to quiescence; assert on
    {!violations} afterwards. *)

module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Aimd = Eden_flowctl.Aimd
module Supervisor = Eden_resil.Supervisor

type spec = {
  init : Value.t;  (** Per-channel initial state. *)
  step : Value.t -> Value.t -> Value.t * Value.t list;
      (** [step state item] is the pure per-channel transform: new state
          plus emitted outputs.  Determinism is required for replay. *)
}

type defect = Drain_skips_checkpoint
    (** Calibration mutant: [Sync] flushes outputs and replies with the
        in-memory position {e without} checkpointing.  The router then
        releases an in-flight window that is not durable, so a handoff
        resumes from a stale checkpoint — input-order and output-gap
        violations follow unless the drain happens to land exactly on a
        checkpoint boundary (which is why FIFO stays green). *)

type params = {
  tick : float;  (** Manager period: scaling, crash sweep, adoption. *)
  checkpoint_every : int;  (** Replica checkpoint amortization K (entries). *)
  capacity_per_replica : int;  (** Backlog a replica is sized to absorb. *)
  auto : bool;  (** Run the scaler on each tick. *)
  ctrl : Aimd.params;  (** Fleet-size controller; [min_batch] may be 0. *)
}

val default_ctrl : Aimd.params
(** Clamp 0‥8, +1 / ×0.5, watermarks 0.25 / 0.75. *)

val params :
  ?tick:float ->
  ?checkpoint_every:int ->
  ?capacity_per_replica:int ->
  ?auto:bool ->
  ?ctrl:Aimd.params ->
  unit ->
  params

type t

val create :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?defect:defect ->
  ?supervise:Supervisor.policy ->
  ?on_output:(int -> Value.t -> unit) ->
  classify:(Value.t -> int) ->
  spec:spec ->
  params ->
  t
(** Creates router and sink Ejects plus [Aimd.current] initial replicas
    (the controller floor; 0 under scale-to-zero).  [supervise] creates
    an internal {!Supervisor} watching every replica; its give-ups
    become involuntary drains (adoption) on the next manager tick.
    [on_output] fires once per admitted output, in turnstile order —
    the latency-stamp hook for benchmarks.  [node] places router, sink
    and supervisor; replicas round-robin across all kernel nodes. *)

val start : t -> unit
(** Registers the manager driver fiber (and starts the supervisor).
    Call before [Kernel.run] / [Sched.run]. *)

val router : t -> Uid.t
(** Deposit endpoint for upstream producers ({!Eden_resil.Rpush}
    compatible; seq-stamped, deduplicating, [eos] honoured). *)

val supervisor : t -> Supervisor.t option

(** {1 Completion} *)

val await : t -> unit
(** Blocks until end-of-stream has fully drained through the sink. *)

val await_timeout : t -> timeout:float -> bool
(** Polling variant for runs that may legitimately wedge (mutants under
    hostile schedules); [false] on timeout.  Always {!stop} after a
    [false] so tick timers quiesce. *)

val is_done : t -> bool

val stop : t -> unit
(** Stops the manager loop and supervisor after at most one more tick. *)

(** {1 Manual reconfiguration} — fiber context; used by checkers and
    benchmarks to force schedules the auto scaler would not take. *)

val scale_to : Kernel.ctx -> t -> int -> unit
(** Grow or drain to exactly [n] live replicas, synchronously. *)

val drain_one : Kernel.ctx -> t -> bool
(** Voluntarily drain the least-loaded replica; [false] if none live. *)

val adopt : Kernel.ctx -> t -> Uid.t -> bool
(** Involuntary-drain a replica as if its supervisor gave up on it:
    hand its channels to survivors from its last checkpoint. *)

val replay_all : Kernel.ctx -> t -> unit
(** Rewind every link to its durable base and retransmit the in-flight
    windows — a duplicate-delivery storm the turnstiles must absorb. *)

(** {1 Status} *)

val live_replicas : t -> int
val replicas_spawned : t -> int
val max_live : t -> int

val replica_seconds : t -> float
(** ∫ live·dt of virtual time — the provisioning cost axis of E1. *)

val violations : t -> string list
(** Order/gap/duplicate findings, oldest first.  Empty on a correct
    implementation under {e every} schedule. *)

val outputs : t -> (int * Value.t list) list
(** Admitted outputs per channel, in emission order, sorted by channel. *)

val assignments : t -> (int * string) list
(** channel → replica label, sorted. *)

val parked : t -> int
(** Channels currently owned by no replica. *)

val backlog : t -> int
(** Undelivered entries across all links and parked backlogs. *)

val replica_uids : t -> (string * Uid.t) list
(** Live and draining replicas, spawn order — crash targets for tests. *)

val windows : t -> (string * int * int * int) list
(** Per-link [(label, base, sent, next)] — the durable, transmitted and
    append positions.  Debugging aid for wedged schedules. *)

val parked_backlogs : t -> (int * int * bool) list
(** Per parked channel [(chan, backlog length, sealed)], sorted. *)
