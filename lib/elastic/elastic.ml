module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Sched = Eden_sched.Sched
module Ivar = Eden_sched.Ivar
module Semaphore = Eden_sched.Semaphore
module Prng = Eden_util.Prng
module Channel = Eden_transput.Channel
module Proto = Eden_transput.Proto
module Aimd = Eden_flowctl.Aimd
module Obs = Eden_obs.Obs
module Rpush = Eden_resil.Rpush
module Retry = Eden_resil.Retry
module Supervisor = Eden_resil.Supervisor

type spec = { init : Value.t; step : Value.t -> Value.t -> Value.t * Value.t list }
type defect = Drain_skips_checkpoint

type params = {
  tick : float;
  checkpoint_every : int;
  capacity_per_replica : int;
  auto : bool;
  ctrl : Aimd.params;
}

let default_ctrl =
  Aimd.params ~min_batch:0 ~max_batch:8 ~increase:1 ~decrease:0.5 ~low_watermark:0.25
    ~high_watermark:0.75 ()

let params ?(tick = 5.0) ?(checkpoint_every = 4) ?(capacity_per_replica = 8) ?(auto = true)
    ?(ctrl = default_ctrl) () =
  if tick <= 0.0 then invalid_arg "Elastic.params: tick must be positive";
  if checkpoint_every < 1 then
    invalid_arg "Elastic.params: checkpoint_every must be at least 1";
  if capacity_per_replica < 1 then
    invalid_arg "Elastic.params: capacity_per_replica must be at least 1";
  { tick; checkpoint_every; capacity_per_replica; auto; ctrl }

(* Per-channel processing state while the channel is owned by no
   replica: the authoritative state plus the stamped items awaiting a
   home.  [p_cseq + length backlog] always equals the channel's stamp
   counter. *)
type parked = {
  mutable p_cseq : int;
  mutable p_oseq : int;
  mutable p_state : Value.t;
  mutable backlog : (int * Value.t) list; (* (cseq, payload), oldest first *)
  mutable p_sealed : bool;
      (* Owner is mid-drain: the authoritative state is still in flight,
         so accumulate but do not re-home until the handoff lands. *)
}

(* One replica and the router's outbound link to it.  Entries occupy
   positions [base, next): [base, sent) have been transmitted, and only
   positions below [base] are durably checkpointed at the replica —
   everything at or above [base] is the in-flight window the router must
   retain for replay and handoff. *)
type rep = {
  r_uid : Uid.t;
  r_label : string;
  mutable base : int;
  mutable sent : int;
  mutable next : int;
  mutable pend : Eproto.entry list; (* entries [base, next), oldest first *)
  mutable chans : int list; (* sorted *)
  mutable draining : bool;
  mutable last_crashes : int;
  mutable r_batches : int;
  mutable last_next : int; (* [next] at the previous manager tick *)
  s_lock : Semaphore.t; (* at most one in-flight send on this link *)
  r_flow : Obs.Flow.stage;
}

type ctrl = {
  kernel : Kernel.t;
  p : params;
  spec : spec;
  classify : Value.t -> int;
  defect : defect option;
  lock : Semaphore.t;
  prng : Prng.t; (* retry jitter for router→replica traffic *)
  aimd : Aimd.t;
  mutable sup : Supervisor.t option;
  mutable reps : rep list; (* spawn order *)
  mutable spawned : int;
  mutable max_live : int;
  assign : (int, rep) Hashtbl.t;
  parked_tbl : (int, parked) Hashtbl.t;
  stamp : (int, int ref) Hashtbl.t; (* chan → next cseq to assign *)
  mutable in_seq : int; (* upstream link dedup position *)
  mutable eos : bool;
  mutable finished : bool;
  mutable stopped : bool;
  mutable adopt_q : Uid.t list;
  mutable violations : string list;
  mutable replica_seconds : float;
  mutable last_tick : float;
  router_flow : Obs.Flow.stage;
  (* sink side *)
  sink_links : (Uid.t, int ref) Hashtbl.t;
  turnstile : (int, int ref) Hashtbl.t;
  out_tbl : (int, Value.t list ref) Hashtbl.t; (* newest first *)
  on_output : (int -> Value.t -> unit) option;
  done_ : unit Ivar.t;
  mutable router_uid : Uid.t option;
  mutable sink_uid : Uid.t option;
}

type t = ctrl

let now ctrl = Sched.now (Kernel.sched ctrl.kernel)

let instant ctrl name attrs =
  Obs.instant (Kernel.obs ctrl.kernel) ~name ~cat:"elastic" ~attrs ~at:(now ctrl) ()

let note ctrl ~kind ~arg = Sched.note (Kernel.sched ctrl.kernel) ~kind ~arg

(* Violations are recorded, not raised: a broken reconfiguration must
   not wedge the run (the checker asserts on the collected list after
   quiescence, and a raise inside a deposit handler would only stall the
   producer behind a guard). *)
let violate ctrl fmt =
  Printf.ksprintf
    (fun msg ->
      ctrl.violations <- msg :: ctrl.violations;
      instant ctrl "elastic.violation" [ ("msg", msg) ])
    fmt

let rec drop n xs = if n <= 0 then xs else match xs with [] -> [] | _ :: r -> drop (n - 1) r


let tbl_ref tbl key = match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add tbl key r;
      r

let live_reps ctrl = List.filter (fun r -> not r.draining) ctrl.reps
let live_count ctrl = List.length (live_reps ctrl)

let load ctrl =
  List.fold_left (fun acc r -> acc + (r.next - r.base)) 0 ctrl.reps
  + Hashtbl.fold (fun _ pk acc -> acc + List.length pk.backlog) ctrl.parked_tbl 0

let parked_sorted ctrl =
  Hashtbl.fold (fun c pk acc -> (c, pk) :: acc) ctrl.parked_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- Replica behaviour ---------------------------------------------- *)

(* Per-channel state owned by a replica: next expected input position,
   next output position, and the transform state. *)
type cst = { mutable cseq : int; mutable oseq : int; mutable st : Value.t }

let sink_of ctrl =
  match ctrl.sink_uid with Some u -> u | None -> failwith "Elastic: sink not created"

let replica_behaviour ctrl label flow seed ctx ~passive =
  let in0, out0, states =
    match passive with Some v -> Eproto.decode_ckpt v | None -> (0, 0, [])
  in
  let chans : (int, cst) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (chan, cseq, oseq, st) -> Hashtbl.replace chans chan { cseq; oseq; st })
    states;
  let in_seq = ref in0 in
  let durable = ref in0 in
  let since = ref 0 in
  let lock = Semaphore.create 1 in
  let push =
    Rpush.connect ctx ~batch:ctrl.p.checkpoint_every
      ~channel:(Channel.Cap (Kernel.self ctx))
      ~prng:(Prng.create seed) ~from:out0 (sink_of ctrl)
  in
  let encode_states () =
    Hashtbl.fold (fun chan c acc -> (chan, c) :: acc) chans []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (chan, c) ->
           Eproto.encode_chan_state ~chan ~cseq:c.cseq ~oseq:c.oseq c.st)
  in
  (* Outputs must be durable at the sink before the state that already
     reflects them is checkpointed — once [durable] advances, the router
     releases the corresponding window and nothing can regenerate
     them. *)
  let ckpt () =
    Rpush.flush push;
    Kernel.checkpoint ctx
      (Eproto.encode_ckpt ~in_seq:!in_seq ~out_pos:(Rpush.pos push) (encode_states ()));
    durable := !in_seq;
    since := 0
  in
  let process = function
    | Eproto.Install { chan; cseq; oseq; state } ->
            Hashtbl.replace chans chan { cseq; oseq; st = state }
    | Eproto.Item { chan; cseq; payload } ->
        Obs.Flow.note_in flow;
        let c =
          match Hashtbl.find_opt chans chan with
          | Some c -> c
          | None ->
              violate ctrl "%s: item for uninstalled channel %d" label chan;
              let c = { cseq; oseq = 0; st = ctrl.spec.init } in
              Hashtbl.replace chans chan c;
              c
        in
        if cseq <> c.cseq then
          violate ctrl "%s: channel %d input %d, expected %d" label chan cseq c.cseq;
        c.cseq <- cseq + 1;
        let st', outs = ctrl.spec.step c.st payload in
        c.st <- st';
        List.iter
          (fun o ->
            Rpush.write push (Eproto.encode_out ~chan ~oseq:c.oseq o);
            c.oseq <- c.oseq + 1;
            Obs.Flow.note_out flow)
          outs
  in
  let deposit arg =
    let _chan, _eos, items, seq = Proto.parse_deposit_request_seq arg in
    Semaphore.acquire lock;
    Fun.protect
      ~finally:(fun () -> Semaphore.release lock)
      (fun () ->
        let seq = match seq with Some s -> s | None -> !in_seq in
        if seq > !in_seq then
          (* The sender is ahead: this incarnation restarted from a
             checkpoint below an already-transmitted window (a crash the
             router has not yet detected, possibly the very
             retransmission that reactivated us).  Reject without
             processing — the durable acknowledgement tells the router
             where to rewind to. *)
          Proto.deposit_ack ~next_seq:!durable
        else begin
          let fresh = drop (!in_seq - seq) items in
          List.iter
            (fun v ->
              process (Eproto.decode_entry v);
              incr in_seq;
              incr since;
              if !since >= ctrl.p.checkpoint_every then ckpt ())
            fresh;
          (* Push outputs through at every batch boundary: only the
             converse order (outputs durable before the checkpoint that
             reflects them) is mandatory, and an early flush is always
             safe — the sink turnstile absorbs any replay.  Holding
             them to the K-amortized checkpoint cadence would add up to
             K items of latency at the sink for zero extra safety. *)
          if fresh <> [] then Rpush.flush push;
          (* K-amortized durability: acknowledge only through the last
             checkpoint, so the router retains the in-flight window. *)
          Proto.deposit_ack ~next_seq:!durable
        end)
  in
  let sync _ =
    Semaphore.acquire lock;
    Fun.protect
      ~finally:(fun () -> Semaphore.release lock)
      (fun () ->
        match ctrl.defect with
        | Some Drain_skips_checkpoint ->
            (* Calibration mutant: claim the in-memory position is
               durable without checkpointing.  Benign exactly when the
               drain happens to land on a checkpoint boundary. *)
            Rpush.flush push;
            Value.Int !in_seq
        | None ->
            ckpt ();
            Value.Int !durable)
  in
  [ (Proto.deposit_op, deposit); (Eproto.sync_op, sync); ("Ping", fun _ -> Value.Unit) ]

(* --- Sink behaviour -------------------------------------------------- *)

let sink_behaviour ctrl _ctx ~passive:_ =
  let deposit arg =
    let chan, _eos, items, seq = Proto.parse_deposit_request_seq arg in
    let link =
      match chan with
      | Channel.Cap u -> u
      | Channel.Num _ ->
          raise (Kernel.Eden_error "elastic sink: replica links are capability channels")
    in
    let in_seq = tbl_ref ctrl.sink_links link in
    let seq = match seq with Some s -> s | None -> !in_seq in
    if seq > !in_seq then begin
      violate ctrl "sink: link gap from %s at %d, expected %d" (Uid.to_string link) seq
        !in_seq;
      in_seq := seq
    end;
    let fresh = drop (!in_seq - seq) items in
    List.iter
      (fun v ->
        let chan, oseq, payload = Eproto.decode_out v in
        let t = tbl_ref ctrl.turnstile chan in
        if oseq >= !t then begin
          (* Below the turnstile is a replayed duplicate — suppressed.
             Above it is a hole: an output window was lost across a
             reconfiguration. *)
          if oseq > !t then
            violate ctrl "sink: channel %d output gap at %d, expected %d" chan oseq !t;
          t := oseq + 1;
          let outs =
            match Hashtbl.find_opt ctrl.out_tbl chan with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add ctrl.out_tbl chan r;
                r
          in
          outs := payload :: !outs;
          match ctrl.on_output with Some f -> f chan payload | None -> ()
        end;
        incr in_seq)
      fresh;
    Proto.deposit_ack ~next_seq:!in_seq
  in
  let finish _ =
    ctrl.finished <- true;
    if not (Ivar.is_filled ctrl.done_) then Ivar.fill ctrl.done_ ();
    Value.Unit
  in
  [ (Proto.deposit_op, deposit); (Eproto.finish_op, finish); ("Ping", fun _ -> Value.Unit) ]

(* --- Router: routing, links, scaling, drain and adoption ------------- *)

let append_entry rep e =
  rep.pend <- rep.pend @ [ e ];
  rep.next <- rep.next + 1

let spawn_replica ctrl =
  let n = ctrl.spawned in
  ctrl.spawned <- n + 1;
  let label = Printf.sprintf "replica-%d" n in
  let flow = Obs.register_stage (Kernel.obs ctrl.kernel) label in
  let nodes = Kernel.nodes ctrl.kernel in
  let node = List.nth nodes (n mod List.length nodes) in
  let seed = Int64.of_int (0xE1A000 + n) in
  let r_uid =
    Kernel.create_eject ctrl.kernel ~node ~dispatch:Kernel.Concurrent ~type_name:label
      (replica_behaviour ctrl label flow seed)
  in
  let rep =
    {
      r_uid;
      r_label = label;
      base = 0;
      sent = 0;
      next = 0;
      pend = [];
      chans = [];
      draining = false;
      last_crashes = 0;
      r_batches = 0;
      last_next = 0;
      s_lock = Semaphore.create 1;
      r_flow = flow;
    }
  in
  ctrl.reps <- ctrl.reps @ [ rep ];
  ctrl.max_live <- max ctrl.max_live (live_count ctrl);
  (match ctrl.sup with Some s -> Supervisor.watch s ~label r_uid | None -> ());
  instant ctrl "elastic.spawn" [ ("replica", label) ];
  rep

let retry_policy = Retry.policy ~timeout:20.0 ~max_attempts:8 ()

(* Transmit positions [sent, next), looping while new entries arrive;
   short (durable) acknowledgements are expected and do NOT trigger
   retransmission — the window stays buffered here until the replica
   checkpoints past it.  Runs with [rep.s_lock] held and the router
   lock NOT held: the round trip blocks only this link, so the fleet's
   links proceed in parallel.  Lock order is s_lock ≺ router lock;
   nothing may take s_lock while holding the router lock. *)
let send_loop ctx ctrl rep =
  let rec go () =
    Semaphore.acquire ctrl.lock;
    (* A rewind (crash sweep, replay storm) sets [sent := base] without
       the link lock, so an in-flight acknowledgement can advance [base]
       past the rewound [sent] before this sender snapshots.  Entries
       below [base] are durable and gone from [pend]; transmitting the
       window labelled with a stale [sent] would mislabel every entry's
       position and corrupt the replica's dedup offset.  Clamp. *)
    if rep.sent < rep.base then rep.sent <- rep.base;
    let entries = drop (rep.sent - rep.base) rep.pend in
    let seq = rep.sent in
    rep.sent <- rep.next;
    Semaphore.release ctrl.lock;
    if entries <> [] then begin
      rep.r_batches <- rep.r_batches + 1;
      Obs.Flow.note_batches rep.r_flow rep.r_batches;
      match
        Retry.invoke ~policy:retry_policy ~prng:ctrl.prng ctx rep.r_uid
          ~op:Proto.deposit_op
          (Proto.deposit_request ~seq Channel.output ~eos:false
             (List.map Eproto.encode_entry entries))
      with
      | Some (Ok reply) -> (
          match Proto.parse_deposit_ack reply with
          | Some a ->
              Semaphore.acquire ctrl.lock;
              (if a > rep.base then begin
                 let a = min a rep.next in
                 rep.pend <- drop (a - rep.base) rep.pend;
                 rep.base <- a
               end);
              let more = rep.sent < rep.next in
              Semaphore.release ctrl.lock;
              if more then go ()
          | None -> ())
      | Some (Error e) -> violate ctrl "%s: deposit refused: %s" rep.r_label e
      | None ->
          (* Dark replica: leave the window pending; crash detection will
             rewind [sent] and retransmit next tick. *)
          ()
    end
  in
  go ()

(* Nudge the link's sender.  If one is already in flight it picks up
   the new window itself after its ack; the re-check on release closes
   the race with a sender that was just finishing. *)
let rec forward ctx ctrl rep =
  if Semaphore.try_acquire rep.s_lock then begin
    Fun.protect
      ~finally:(fun () -> Semaphore.release rep.s_lock)
      (fun () -> send_loop ctx ctrl rep);
    if rep.sent < rep.next then forward ctx ctrl rep
  end

(* Manager-side nudge: forward in a fresh fiber.  A full-window deposit
   blocks its caller for the window's whole service time, and the
   manager must keep ticking (crash sweeps, the scaler) while links
   drain — it must never carry a send itself. *)
let forward_async ctrl rep =
  Kernel.spawn_driver ctrl.kernel ~name:(rep.r_label ^ "/fwd") (fun ctx ->
      forward ctx ctrl rep)

let install_to ctrl rep chan pk =
  append_entry rep
    (Eproto.Install { chan; cseq = pk.p_cseq; oseq = pk.p_oseq; state = pk.p_state });
  List.iter
    (fun (cseq, payload) -> append_entry rep (Eproto.Item { chan; cseq; payload }))
    pk.backlog;
  rep.chans <- List.sort_uniq compare (chan :: rep.chans);
  Hashtbl.replace ctrl.assign chan rep;
  Hashtbl.remove ctrl.parked_tbl chan;
  note ctrl ~kind:"elastic.assign" ~arg:chan;
  instant ctrl "elastic.assign"
    [ ("chan", string_of_int chan); ("replica", rep.r_label) ]

let least_loaded reps =
  match reps with
  | [] -> None
  | r0 :: rest ->
      Some
        (List.fold_left
           (fun best r ->
             if List.length r.chans < List.length best.chans then r else best)
           r0 rest)

let parked_entry ctrl chan =
  match Hashtbl.find_opt ctrl.parked_tbl chan with
  | Some pk -> pk
  | None ->
      let pk =
        { p_cseq = 0; p_oseq = 0; p_state = ctrl.spec.init; backlog = []; p_sealed = false }
      in
      Hashtbl.add ctrl.parked_tbl chan pk;
      pk

(* Route one fresh upstream item (router lock held). *)
let route ctrl v =
  let chan = ctrl.classify v in
  let stamp = tbl_ref ctrl.stamp chan in
  let cseq = !stamp in
  incr stamp;
  Obs.Flow.note_in ctrl.router_flow;
  match Hashtbl.find_opt ctrl.assign chan with
  | Some rep -> append_entry rep (Eproto.Item { chan; cseq; payload = v })
  | None -> (
      let pk = parked_entry ctrl chan in
      pk.backlog <- pk.backlog @ [ (cseq, v) ];
      if not pk.p_sealed then
        match least_loaded (live_reps ctrl) with
        | Some rep -> install_to ctrl rep chan pk
        | None -> (* scale-to-zero: hold the work until the scaler reacts *) ())

(* Router lock held. *)
let assign_parked ctrl =
  List.iter
    (fun (chan, pk) ->
      if pk.backlog <> [] && not pk.p_sealed then
        match least_loaded (live_reps ctrl) with
        | Some rep -> install_to ctrl rep chan pk
        | None -> ())
    (parked_sorted ctrl)

(* Router lock held. *)
let flush_targets ctrl = List.filter (fun r -> r.sent < r.next) ctrl.reps

(* No locks held. *)
let assign_backlogged _ctx ctrl =
  Semaphore.acquire ctrl.lock;
  assign_parked ctrl;
  let targets = flush_targets ctrl in
  Semaphore.release ctrl.lock;
  List.iter (forward_async ctrl) targets

let read_ckpt_states ctrl uid =
  match Kernel.checkpoints ctrl.kernel uid with
  | (_, v) :: _ -> Eproto.decode_ckpt v
  | [] -> (0, 0, [])

(* Put a retiring replica's in-flight window back under router
   ownership (router lock held; the replica is fenced).  Installs carry
   states newer than any checkpoint (the install itself never became
   durable there); items rejoin their channel's backlog IN FRONT of
   whatever parked behind the fence — pend stamps predate post-fence
   stamps.  Per-channel order within pend is the stamping order. *)
let reroute_pend ctrl rep =
  let items : (int, (int * Value.t) list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e with
      | Eproto.Install { chan; cseq; oseq; state } ->
          let pk = parked_entry ctrl chan in
          pk.p_cseq <- cseq;
          pk.p_oseq <- oseq;
          pk.p_state <- state
      | Eproto.Item { chan; cseq; payload } ->
          let r =
            match Hashtbl.find_opt items chan with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add items chan r;
                r
          in
          r := (cseq, payload) :: !r)
    rep.pend;
  Hashtbl.iter
    (fun chan r ->
      let pk = parked_entry ctrl chan in
      pk.backlog <- List.rev !r @ pk.backlog)
    items;
  rep.pend <- [];
  rep.sent <- rep.base;
  rep.next <- rep.base

let retire ctrl rep =
  ctrl.reps <- List.filter (fun r -> r != rep) ctrl.reps;
  (match ctrl.sup with Some s -> Supervisor.unwatch s rep.r_uid | None -> ());
  note ctrl ~kind:"elastic.scale" ~arg:(live_count ctrl)

(* After the fence no new work reaches the replica: its channels route
   to (sealed) parked slots, and sealing keeps the lazy installer from
   re-homing them before the handoff publishes the authoritative
   state.  Router lock held. *)
let fence ctrl rep =
  rep.draining <- true;
  Kernel.set_quiesced ctrl.kernel rep.r_uid true;
  List.iter
    (fun chan ->
      Hashtbl.remove ctrl.assign chan;
      (parked_entry ctrl chan).p_sealed <- true)
    rep.chans;
  note ctrl ~kind:"elastic.scale" ~arg:(live_count ctrl)

(* Handoff common to voluntary drain and involuntary adoption (router
   lock held; the replica is fenced): each owned channel's parked slot
   gets the durably checkpointed state — preserving backlog that
   accumulated behind the fence — then the window above the checkpoint
   is rerouted in front of that backlog, and the channels unseal. *)
let handoff ctrl rep =
  let ck_in, _, states = read_ckpt_states ctrl rep.r_uid in
  List.iter
    (fun (chan, cseq, oseq, st) ->
      if List.mem chan rep.chans then begin
        let pk = parked_entry ctrl chan in
        pk.p_cseq <- cseq;
        pk.p_oseq <- oseq;
        pk.p_state <- st
      end)
    states;
  (* The router's base trails the replica's durability by up to one
     K-amortized ack (acks only travel on deposit replies).  Entries in
     [base, ck_in) are already folded into the checkpointed state being
     handed over; replaying them to a successor would apply them twice.
     The voluntary path never hits this — its Sync barrier trims base to
     the full durable position first — but adoption has no Sync, so trim
     against the checkpoint itself. *)
  (if ck_in > rep.base then begin
     rep.pend <- drop (ck_in - rep.base) rep.pend;
     rep.base <- ck_in
   end);
  reroute_pend ctrl rep;
  List.iter (fun chan -> (parked_entry ctrl chan).p_sealed <- false) rep.chans;
  retire ctrl rep

(* Flush then barrier on a checkpoint; trims the window to the durable
   acknowledgement.  A replica that crashes mid-drain is reactivated
   from its checkpoint by the retried Sync itself, and then reports the
   (rewound) durable position — the window above it survives in [pend]
   and is handed to the successor, so the voluntary and crash paths
   converge on the same arithmetic.  Takes the link's s_lock, so it
   also excludes (and waits out) any in-flight sender; no locks may be
   held on entry. *)
let sync_replica ?(wait = true) ctx ctrl rep =
  let locked =
    if wait then begin
      Semaphore.acquire rep.s_lock;
      true
    end
    else Semaphore.try_acquire rep.s_lock
  in
  if not locked then false
  else
  Fun.protect
    ~finally:(fun () -> Semaphore.release rep.s_lock)
    (fun () ->
      let rec round attempts =
        send_loop ctx ctrl rep;
        match
          Retry.invoke ~policy:retry_policy ~prng:ctrl.prng ctx rep.r_uid
            ~op:Eproto.sync_op Value.Unit
        with
        | Some (Ok (Value.Int durable)) ->
            Semaphore.acquire ctrl.lock;
            let a = min durable rep.next in
            (if a > rep.base then begin
               rep.pend <- drop (a - rep.base) rep.pend;
               rep.base <- a
             end);
            (* The barrier's reply is the replica's full position: a
               reply below our transmit watermark proves the replica
               never received [durable, sent) — a reactivated
               incarnation reject-ahead'd a window after the crash
               sweep had already consumed the crash.  Rewind so the
               retransmission (this round or the next sweep) repairs
               the link; a deposit ack cannot distinguish this from an
               ordinary K-amortized short ack, only a Sync can. *)
            let stale = durable < rep.sent in
            if stale then rep.sent <- rep.base;
            Semaphore.release ctrl.lock;
            if stale && attempts > 0 then round (attempts - 1) else true
        | Some (Ok v) ->
            violate ctrl "%s: malformed Sync reply %s" rep.r_label (Value.to_string v);
            false
        | Some (Error e) ->
            violate ctrl "%s: Sync refused: %s" rep.r_label e;
            false
        | None -> false
      in
      round 2)

(* Voluntary drain, two-phase so no blocking call happens under the
   router lock: fence (lock), flush + Sync barrier (link lock only),
   handoff (lock).  No locks held on entry. *)
let drain_replica ctx ctrl rep =
  Semaphore.acquire ctrl.lock;
  if rep.draining then Semaphore.release ctrl.lock
  else begin
    fence ctrl rep;
    Semaphore.release ctrl.lock;
    let obs = Kernel.obs ctrl.kernel in
    let span =
      if Obs.spans_enabled obs then
        Some
          (Obs.span_begin obs ~name:"elastic.drain" ~cat:"elastic"
             ~attrs:
               [
                 ("replica", rep.r_label);
                 ("chans", string_of_int (List.length rep.chans));
               ]
             ~at:(now ctrl) ())
      else None
    in
    let ok = sync_replica ctx ctrl rep in
    if not ok then
      instant ctrl "elastic.drain.wedged" [ ("replica", rep.r_label) ];
    Semaphore.acquire ctrl.lock;
    handoff ctrl rep;
    Semaphore.release ctrl.lock;
    (match span with Some id -> Obs.span_end obs id ~at:(now ctrl) ~ok | None -> ());
    instant ctrl "elastic.drain.end" [ ("replica", rep.r_label) ];
    assign_backlogged ctx ctrl
  end

(* Involuntary drain: the supervisor gave up on this replica, so there
   is no Sync — the durable checkpoint is all that survives, and the
   full retained window [base, next) replays to the successors.  No
   locks held on entry. *)
let adopt_rep ctx ctrl rep =
  instant ctrl "elastic.adopt" [ ("replica", rep.r_label) ];
  Semaphore.acquire ctrl.lock;
  if rep.draining then Semaphore.release ctrl.lock
  else begin
    fence ctrl rep;
    handoff ctrl rep;
    Semaphore.release ctrl.lock
  end;
  assign_backlogged ctx ctrl

(* Pick the cheapest victim: fewest channels, newest on a tie. *)
let drain_pick ctrl =
  match List.rev (live_reps ctrl) with
  | [] -> None
  | r0 :: rest ->
      Some
        (List.fold_left
           (fun best r ->
             if List.length r.chans < List.length best.chans then r else best)
           r0 rest)

(* No locks held on entry. *)
let reconcile ctx ctrl desired =
  let desired = max 0 desired in
  Semaphore.acquire ctrl.lock;
  let grew = ref false in
  while live_count ctrl < desired do
    ignore (spawn_replica ctrl);
    grew := true
  done;
  if !grew then begin
    note ctrl ~kind:"elastic.scale" ~arg:(live_count ctrl);
    instant ctrl "elastic.scale" [ ("live", string_of_int (live_count ctrl)) ]
  end;
  Semaphore.release ctrl.lock;
  if !grew then assign_backlogged ctx ctrl;
  let rec shrink () =
    Semaphore.acquire ctrl.lock;
    let victim = if live_count ctrl > desired then drain_pick ctrl else None in
    Semaphore.release ctrl.lock;
    match victim with
    | Some rep ->
        drain_replica ctx ctrl rep;
        shrink ()
    | None -> ()
  in
  shrink ()

(* The generalized AIMD controller sized in replicas: a backlog above
   the high watermark of current capacity widens the fleet additively,
   idleness below the low watermark halves it — the inverse signal
   mapping of batch sizing, where low occupancy is what widens. *)
let tick_scaler ctx ctrl =
  Semaphore.acquire ctrl.lock;
  let l = load ctrl in
  let p = Aimd.params_of ctrl.aimd in
  let denom = ctrl.p.capacity_per_replica * max 1 (Aimd.current ctrl.aimd) in
  let occ = float_of_int l /. float_of_int denom in
  if l > 0 && Aimd.current ctrl.aimd = 0 then Aimd.on_progress ctrl.aimd
  else if occ >= p.Aimd.high_watermark then Aimd.on_progress ctrl.aimd
  else if occ <= p.Aimd.low_watermark then Aimd.on_stall ctrl.aimd;
  let desired = Aimd.current ctrl.aimd in
  Semaphore.release ctrl.lock;
  reconcile ctx ctrl desired

(* Checkpoint-on-idle: a link whose window stopped growing still holds
   entries the replica has processed but not made durable — they read
   as phantom backlog (blocking scale-down) and would replay needlessly
   on a crash.  One quiet tick buys a Sync that trims the window. *)
let flush_idle ctx ctrl =
  Semaphore.acquire ctrl.lock;
  let idle =
    List.filter
      (fun rep -> rep.next = rep.last_next && rep.base < rep.next && not rep.draining)
      ctrl.reps
  in
  List.iter (fun rep -> rep.last_next <- rep.next) ctrl.reps;
  Semaphore.release ctrl.lock;
  (* [~wait:false]: a link whose sender is mid-deposit only looks idle —
     blocking on its send lock here would park the manager (and with it
     the scaler) for the whole in-flight window. *)
  List.iter (fun rep -> ignore (sync_replica ~wait:false ctx ctrl rep)) idle

let detect_crashes _ctx ctrl =
  Semaphore.acquire ctrl.lock;
  let hit =
    List.filter
      (fun rep -> Kernel.crash_count ctrl.kernel rep.r_uid > rep.last_crashes)
      ctrl.reps
  in
  List.iter
    (fun rep ->
      rep.last_crashes <- Kernel.crash_count ctrl.kernel rep.r_uid;
      (* The replica restarts from its checkpoint (the supervisor's
         poke, or activation by a retransmission), expecting position
         [base]; rewind and replay the retained window. *)
      rep.sent <- rep.base)
    hit;
  Semaphore.release ctrl.lock;
  List.iter
    (fun rep ->
      instant ctrl "elastic.replay" [ ("replica", rep.r_label) ];
      forward_async ctrl rep)
    hit

let process_adoptions ctx ctrl =
  let q = ctrl.adopt_q in
  ctrl.adopt_q <- [];
  List.iter
    (fun uid ->
      match List.find_opt (fun r -> Uid.equal r.r_uid uid) ctrl.reps with
      | Some rep -> adopt_rep ctx ctrl rep
      | None -> ())
    q

let finalize ctx ctrl =
  if ctrl.eos && not ctrl.finished then begin
    Semaphore.acquire ctrl.lock;
    if load ctrl > 0 && live_count ctrl = 0 then begin
      (* Forced scale-from-zero: end of stream must not strand parked
         work when the controller is idling at its floor. *)
      ignore (spawn_replica ctrl);
      note ctrl ~kind:"elastic.scale" ~arg:(live_count ctrl)
    end;
    Semaphore.release ctrl.lock;
    assign_backlogged ctx ctrl;
    List.iter
      (fun rep -> if rep.base < rep.next then ignore (sync_replica ctx ctrl rep))
      ctrl.reps;
    if load ctrl = 0 && not ctrl.finished then begin
      (match Kernel.invoke ctx (sink_of ctrl) ~op:Eproto.finish_op Value.Unit with
      | Ok _ -> ()
      | Error e -> violate ctrl "sink: Finish refused: %s" e);
      (match ctrl.sup with Some s -> Supervisor.stop s | None -> ());
      instant ctrl "elastic.finish" []
    end
  end

let manager ctx ctrl =
  while not (ctrl.stopped || ctrl.finished) do
    Sched.sleep ctrl.p.tick;
    if not (ctrl.stopped || ctrl.finished) then begin
      Semaphore.acquire ctrl.lock;
      let t = now ctrl in
      ctrl.replica_seconds <-
        ctrl.replica_seconds +. (float_of_int (live_count ctrl) *. (t -. ctrl.last_tick));
      ctrl.last_tick <- t;
      Semaphore.release ctrl.lock;
      detect_crashes ctx ctrl;
      process_adoptions ctx ctrl;
      flush_idle ctx ctrl;
      if ctrl.p.auto then tick_scaler ctx ctrl;
      Semaphore.acquire ctrl.lock;
      let targets = flush_targets ctrl in
      Semaphore.release ctrl.lock;
      List.iter (forward_async ctrl) targets;
      finalize ctx ctrl
    end
  done

let router_behaviour ctrl ctx ~passive:_ =
  let deposit arg =
    let chan, eos, items, seq = Proto.parse_deposit_request_seq arg in
    if not (Channel.equal chan Channel.output) then
      raise (Kernel.Eden_error ("no such channel: " ^ Channel.to_string chan));
    Semaphore.acquire ctrl.lock;
    let ack =
      Fun.protect
        ~finally:(fun () -> Semaphore.release ctrl.lock)
        (fun () ->
          let seq = match seq with Some s -> s | None -> ctrl.in_seq in
          if seq > ctrl.in_seq then
            raise
              (Kernel.Eden_error
                 (Printf.sprintf "Deposit gap: at %d, expected %d" seq ctrl.in_seq));
          let fresh = drop (ctrl.in_seq - seq) items in
          List.iter
            (fun v ->
              route ctrl v;
              ctrl.in_seq <- ctrl.in_seq + 1)
            fresh;
          if eos then ctrl.eos <- true;
          ctrl.in_seq)
    in
    (* Acknowledge on acceptance: the retained per-link windows are the
       durability ledger from here on, so the producer need not wait
       out the replica round trips — those proceed in parallel worker
       fibers, one per touched link. *)
    List.iter
      (fun rep ->
        if rep.sent < rep.next then
          Kernel.spawn_worker ctx ~name:(rep.r_label ^ "/fwd") (fun () ->
              forward ctx ctrl rep))
      ctrl.reps;
    Proto.deposit_ack ~next_seq:ack
  in
  [ (Proto.deposit_op, deposit); ("Ping", fun _ -> Value.Unit) ]

(* --- Construction and the public surface ----------------------------- *)

let create k ?node ?defect ?supervise ?on_output ~classify ~spec p =
  let ctrl =
    {
      kernel = k;
      p;
      spec;
      classify;
      defect;
      lock = Semaphore.create 1;
      prng = Prng.create 0xE1A57CL;
      aimd = Aimd.create p.ctrl;
      sup = None;
      reps = [];
      spawned = 0;
      max_live = 0;
      assign = Hashtbl.create 64;
      parked_tbl = Hashtbl.create 64;
      stamp = Hashtbl.create 64;
      in_seq = 0;
      eos = false;
      finished = false;
      stopped = false;
      adopt_q = [];
      violations = [];
      replica_seconds = 0.0;
      last_tick = Sched.now (Kernel.sched k);
      router_flow = Obs.register_stage (Kernel.obs k) "elastic-router";
      sink_links = Hashtbl.create 16;
      turnstile = Hashtbl.create 64;
      out_tbl = Hashtbl.create 64;
      on_output;
      done_ = Ivar.create ();
      router_uid = None;
      sink_uid = None;
    }
  in
  ctrl.sink_uid <-
    Some
      (Kernel.create_eject k ?node ~dispatch:Kernel.Concurrent ~type_name:"elastic-sink"
         (sink_behaviour ctrl));
  ctrl.router_uid <-
    Some
      (Kernel.create_eject k ?node ~dispatch:Kernel.Concurrent ~type_name:"elastic-router"
         (router_behaviour ctrl));
  (match supervise with
  | Some policy ->
      let sup =
        Supervisor.create k ?node ~name:"elastic-supervisor" ~policy
          ~on_give_up:(fun _label uid -> ctrl.adopt_q <- ctrl.adopt_q @ [ uid ])
          ()
      in
      ctrl.sup <- Some sup
  | None -> ());
  (* The controller's floor is the initial fleet (min = max = N gives a
     fixed-size stage; min 0 gives scale-to-zero elasticity). *)
  for _ = 1 to Aimd.current ctrl.aimd do
    ignore (spawn_replica ctrl)
  done;
  ctrl

let start ctrl =
  ctrl.last_tick <- Sched.now (Kernel.sched ctrl.kernel);
  (match ctrl.sup with Some s -> Supervisor.start s | None -> ());
  Kernel.spawn_driver ctrl.kernel ~name:"elastic/manager" (fun ctx -> manager ctx ctrl)

let router ctrl =
  match ctrl.router_uid with Some u -> u | None -> failwith "Elastic: router not created"

let supervisor ctrl = ctrl.sup
let await ctrl = Ivar.read ctrl.done_
let is_done ctrl = Ivar.is_filled ctrl.done_

let await_timeout ctrl ~timeout =
  let deadline = now ctrl +. timeout in
  let rec go () =
    if Ivar.is_filled ctrl.done_ then true
    else if now ctrl >= deadline then false
    else begin
      Sched.sleep ctrl.p.tick;
      go ()
    end
  in
  go ()

let stop ctrl =
  ctrl.stopped <- true;
  match ctrl.sup with Some s -> Supervisor.stop s | None -> ()

let with_lock ctrl f =
  Semaphore.acquire ctrl.lock;
  Fun.protect ~finally:(fun () -> Semaphore.release ctrl.lock) f

let scale_to ctx ctrl n = reconcile ctx ctrl n

let drain_one ctx ctrl =
  let victim = with_lock ctrl (fun () -> drain_pick ctrl) in
  match victim with
  | Some rep ->
      drain_replica ctx ctrl rep;
      true
  | None -> false

let adopt ctx ctrl uid =
  match List.find_opt (fun r -> Uid.equal r.r_uid uid) ctrl.reps with
  | Some rep ->
      adopt_rep ctx ctrl rep;
      true
  | None -> false

let replay_all ctx ctrl =
  let targets =
    with_lock ctrl (fun () ->
        List.iter (fun rep -> rep.sent <- rep.base) ctrl.reps;
        List.filter (fun r -> r.base < r.next) ctrl.reps)
  in
  List.iter (forward ctx ctrl) targets

let live_replicas ctrl = live_count ctrl
let replicas_spawned ctrl = ctrl.spawned
let max_live ctrl = ctrl.max_live

let replica_seconds ctrl =
  (* Include the open interval since the last tick, so readings taken
     between ticks (or after [finish]) are not truncated. *)
  ctrl.replica_seconds
  +. (float_of_int (live_count ctrl) *. (now ctrl -. ctrl.last_tick))

let violations ctrl = List.rev ctrl.violations
let parked ctrl = Hashtbl.length ctrl.parked_tbl

let backlog ctrl = with_lock ctrl (fun () -> load ctrl)

let outputs ctrl =
  Hashtbl.fold (fun chan r acc -> (chan, List.rev !r) :: acc) ctrl.out_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let assignments ctrl =
  Hashtbl.fold (fun chan rep acc -> (chan, rep.r_label) :: acc) ctrl.assign []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let replica_uids ctrl = List.map (fun r -> (r.r_label, r.r_uid)) ctrl.reps

let windows ctrl =
  List.map (fun r -> (r.r_label, r.base, r.sent, r.next)) ctrl.reps

let parked_backlogs ctrl =
  parked_sorted ctrl
  |> List.map (fun (chan, pk) -> (chan, List.length pk.backlog, pk.p_sealed))
