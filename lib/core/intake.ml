module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Waitq = Eden_sched.Waitq

type chan_state = {
  chan : Channel.t;
  items : Value.t Queue.t;
  capacity : int;
  mutable eos : bool;
  mutable expected : int; (* next position for seq-stamped deposits *)
  readers : Waitq.t; (* parked [read] callers *)
  writers : Waitq.t; (* parked Deposit handlers *)
  turnstile : Waitq.t; (* parked out-of-order seq-stamped deposits *)
}

type t = { channels : (Channel.t * chan_state) list ref }

type reader = chan_state

let create () = { channels = ref [] }

let add_channel t ?(capacity = 1) chan =
  if capacity < 1 then invalid_arg "Intake.add_channel: capacity must be at least 1";
  if List.exists (fun (c, _) -> Channel.equal c chan) !(t.channels) then
    invalid_arg ("Intake.add_channel: duplicate channel " ^ Channel.to_string chan);
  let s =
    {
      chan;
      items = Queue.create ();
      capacity;
      eos = false;
      expected = 0;
      readers = Waitq.create ("intake " ^ Channel.to_string chan ^ " readers");
      writers = Waitq.create ("intake " ^ Channel.to_string chan ^ " writers");
      turnstile = Waitq.create ("intake " ^ Channel.to_string chan ^ " turnstile");
    }
  in
  t.channels := (chan, s) :: !(t.channels);
  s

let find t chan = List.find_opt (fun (c, _) -> Channel.equal c chan) !(t.channels)

let reader t chan = match find t chan with Some (_, s) -> s | None -> raise Not_found

let rec read s =
  match Queue.take_opt s.items with
  | Some x ->
      ignore (Waitq.wake_one s.writers);
      Some x
  | None ->
      if s.eos then None
      else begin
        Waitq.park s.readers;
        read s
      end

let eos_seen s = s.eos
let buffered s = Queue.length s.items
let expected s = s.expected

let rec accept s item =
  if Queue.length s.items < s.capacity then begin
    Queue.push item s.items;
    ignore (Waitq.wake_one s.readers)
  end
  else begin
    (* Buffer full: hold the depositor's reply hostage.  The
       invoker is blocked awaiting it, which is exactly the
       back-pressure the write-only discipline needs. *)
    Waitq.park s.writers;
    accept s item
  end

let finish_eos s eos =
  if eos then begin
    s.eos <- true;
    ignore (Waitq.wake_all s.readers)
  end

let serve_plain s eos items =
  if s.eos then raise (Kernel.Eden_error "Deposit after end of stream");
  List.iter (accept s) items;
  finish_eos s eos;
  Value.Unit

(* Windowed (seq-stamped) deposits: a pipelining pusher has several
   deposits in flight at once and the network may deliver them out of
   order, so each batch carries the absolute position of its first
   item and waits at the turnstile until the intake has accepted
   everything before it.  A position below [expected] is a protocol
   violation here (the core path has no retries — that is {!Eden_resil}
   territory) and errors rather than silently double-delivering. *)
let serve_seq s eos items seq =
  let rec await () =
    if s.expected < seq then begin
      Waitq.park s.turnstile;
      await ()
    end
  in
  await ();
  if s.expected > seq then
    raise
      (Kernel.Eden_error (Printf.sprintf "stale Deposit seq %d (expected %d)" seq s.expected));
  if s.eos then raise (Kernel.Eden_error "Deposit after end of stream");
  List.iter (accept s) items;
  s.expected <- s.expected + List.length items;
  finish_eos s eos;
  ignore (Waitq.wake_all s.turnstile);
  Proto.deposit_ack ~next_seq:s.expected

let serve_deposit t arg =
  let chan, eos, items, seq = Proto.parse_deposit_request_seq arg in
  match find t chan with
  | None -> raise (Kernel.Eden_error ("no such channel: " ^ Channel.to_string chan))
  | Some (_, s) -> (
      match seq with None -> serve_plain s eos items | Some seq -> serve_seq s eos items seq)

let handlers t = [ (Proto.deposit_op, serve_deposit t) ]
