(** Active output: a client-side connection that writes to a remote
    Eject's channel by issuing [Deposit] invocations.

    The dual of {!Pull}: in the write-only discipline a producer knows
    where its output goes, while consumers never know who feeds them.
    Items accumulate locally until [batch] are pending, then travel in
    one [Deposit]; [close] flushes the remainder with the end-of-stream
    mark. *)

module Value = Eden_kernel.Value

type t

val connect :
  Eden_kernel.Kernel.ctx ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  ?channel:Channel.t ->
  ?wrap:(Value.t -> Value.t) ->
  Eden_kernel.Uid.t ->
  t
(** [wrap] (default identity) envelopes every [Deposit] request value
    before invocation — the session-token hook for tenant-guarded
    intakes, mirroring {!Pull.connect}.

    [flowctl] (when given) supersedes [batch].  A legacy config keeps
    the synchronous one-deposit-at-a-time path; anything else switches
    to {e windowed} mode: up to the credit window's worth of
    seq-stamped deposits are kept in flight (the intake's turnstile
    reorders scrambled arrivals), and an [Adaptive] config sizes the
    flush threshold with an {!Eden_flowctl.Aimd} controller.  A
    [Chunked] config switches flushing from item counting to byte
    counting: pending [Value.Chunk] items coalesce (zero-copy concat;
    the written handles are released, ownership of the bytes moves to
    the coalesced chunk) and travel as one chunk per deposit once
    [chunk_bytes] are pending.  Non-chunk items under a chunked config
    flush uncoalesced — mixing planes is legal but buys nothing.  A
    windowed channel must have a single writer.
    @raise Invalid_argument if [batch < 1]. *)

val write : t -> Value.t -> unit
(** Queue one item, depositing when the batch fills.  The deposit blocks
    until the consumer accepts (back-pressure).  Fiber context only.
    @raise Failure after [close]. *)

val flush : t -> unit
(** Deposit any pending items immediately. *)

val close : t -> unit
(** Flush and send end of stream (always the final deposit), then — in
    windowed mode — drain every outstanding ack, so failures surface
    and the whole stream is known accepted on return.  Idempotent. *)

val sink : t -> Eden_kernel.Uid.t
val channel : t -> Channel.t
val deposits_issued : t -> int

val chunks_sent : t -> int
(** Deposits that carried a (possibly coalesced) chunk under the
    chunked config — the observable proof that the chunked plane was
    not silently downgraded.  0 outside chunked mode. *)

val controller : t -> Eden_flowctl.Aimd.t option
(** The adaptive controller of a windowed connection; [None] in sync
    or fixed-batch mode. *)

val stalls : t -> int
(** Windowed mode: deposits that found the window full with the oldest
    ack still in flight and had to wait.  0 in sync mode. *)
