(** Active input: a client-side connection that reads a remote Eject's
    channel by issuing [Transfer] invocations.

    A [Pull.t] embodies the paper's observation that in the read-only
    discipline a consumer knows {e where} its input comes from (it holds
    the producer's UID and a channel identifier) while producers never
    know who reads them.  Items are fetched [batch] at a time —
    batching is one of the ablations (T5) — and handed out one by one. *)

module Value = Eden_kernel.Value

type t

val connect :
  Eden_kernel.Kernel.ctx ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  ?channel:Channel.t ->
  ?wrap:(Value.t -> Value.t) ->
  Eden_kernel.Uid.t ->
  t
(** [batch] defaults to 1 (one invocation per datum, the paper's
    counting regime); [channel] to {!Channel.output}.

    [wrap] (default identity) is applied to every [Transfer] request
    value before it is invoked — the hook a tenant-aware connection
    uses to envelope requests with its session token
    ({!Eden_tenant.Tenant.wrap}); the destination guard unwraps before
    the port ever parses.

    [flowctl] (when given) supersedes [batch].  A legacy config
    ({!Eden_flowctl.Flowctl.legacy}) keeps the synchronous one-transfer-
    at-a-time path; anything else switches the connection to {e
    windowed} mode: up to the credit window's worth of seq-stamped
    transfers are kept in flight at once (positions computed from the
    credits asked, sound under the port's exact-fill serving), and an
    [Adaptive] config sizes each request with an {!Eden_flowctl.Aimd}
    controller.  No transfer is issued before the first [read], so
    laziness is preserved.
    @raise Invalid_argument if [batch < 1]. *)

val read : t -> Value.t option
(** Next item, [None] at end of stream.  Issues a [Transfer] when the
    local batch buffer is empty.  Blocks; fiber context only.
    @raise Eden_kernel.Kernel.Eden_error on a protocol refusal (no such
    eject / channel), as when presenting a channel identifier one was
    never given. *)

val iter : (Value.t -> unit) -> t -> unit
(** [read] until end of stream. *)

val source : t -> Eden_kernel.Uid.t
val channel : t -> Channel.t
val transfers_issued : t -> int
(** Local count of [Transfer] invocations this connection has made. *)

val controller : t -> Eden_flowctl.Aimd.t option
(** The adaptive controller of a windowed connection, for stages that
    feed it backpressure signals; [None] in sync or fixed-batch mode. *)

val stalls : t -> int
(** Windowed mode: reads that found the next reply not yet arrived and
    had to wait on the network.  0 in sync mode. *)

val credit : t -> Eden_flowctl.Credit.t option
(** The live credit window of a windowed connection ([None] in sync
    mode) — what a tenant registry binds a read capability to, so that
    revocation can reclaim the outstanding credits
    ({!Eden_flowctl.Credit.revoke}) instead of leaking them. *)
