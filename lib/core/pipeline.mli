(** Assembling and running whole pipelines, plus the static cost model.

    Given a generator, a list of transforms and a consumer, [build]
    erects the corresponding Ejects under any of the three disciplines;
    [start] pokes the pumping stages; [await] blocks the calling driver
    fiber until the sink has seen end of stream.

    [predict] is the paper's §4 arithmetic — the claim the benchmarks
    check the metered counts against. *)

module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid

type discipline = Read_only | Write_only | Conventional

val discipline_name : discipline -> string
val all_disciplines : discipline list

type t = {
  kernel : Kernel.t;
  discipline : discipline;
  source : Uid.t;
  filters : Uid.t list;
  pipes : Uid.t list;  (** Empty except under [Conventional]. *)
  sink : Uid.t;
  done_ : unit Eden_sched.Ivar.t;  (** Filled when the sink sees end of stream. *)
  flows : (string * Eden_obs.Obs.Flow.stage) list;
      (** One flow meter per stage, labelled like [stage_labels], in
          display order; registered on the kernel's collector. *)
}

val build :
  Kernel.t ->
  ?nodes:Eden_net.Net.node_id list ->
  ?capacity:int ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  discipline ->
  gen:Stage.gen ->
  filters:Transform.t list ->
  consume:Stage.consume ->
  t
(** [nodes] places consecutive stages round-robin (default: everything
    on the kernel's first node).  [capacity] is each stage's
    anticipation buffer, [batch] the per-invocation item count.
    [flowctl] supersedes [batch] on every active connection with a
    credit-windowed (and optionally adaptive) configuration — see
    {!Stage}; passive endpoints need none. *)

val start : t -> unit
(** Pokes the pumping stages: the sink under [Read_only], the source
    under [Write_only], and source, filters and sink under
    [Conventional]. *)

val await : t -> unit
(** Blocks until done; fiber context only. *)

val run : t -> unit
(** [start] then [await]. *)

val entity_count : t -> int
(** Ejects this pipeline comprises (stages + pipes). *)

(** {1 Stall diagnosis}

    When a pipeline wedges (a stage crashed, a message was lost and
    nobody retries), the scheduler knows only that fibers are parked.
    These helpers turn that raw report into an actionable diagnosis:
    which stage each blocked fiber belongs to and what it is waiting
    for. *)

type stall = {
  fiber : string;  (** Blocked fiber's name. *)
  reason : string;  (** What it is parked on, from {!Eden_sched.Sched.blocked}. *)
  stage : string option;  (** Pipeline stage it was attributed to, if any. *)
}

type diagnosis = { at : float;  (** Virtual time of the report. *) stalls : stall list }

val stall_report :
  ?include_quiesced:bool ->
  ?include_transport:bool ->
  Kernel.t ->
  stages:(string * Uid.t) list ->
  stall list
(** Attributes every currently blocked fiber to one of the labelled
    stages via the kernel's fiber-ownership table (an exact UID
    match — fiber names are display-only).  Usable outside
    [Pipeline.t] (e.g. for hand-built stage graphs).

    Fibers owned by {!Kernel.set_quiesced} Ejects — stages deliberately
    idled by an elastic drain or park — are omitted unless
    [include_quiesced] is [true] (default [false]): a quiesced stage
    blocking on input is expected behaviour, not a stall.  Likewise,
    fibers owned by Ejects inside {!Kernel.with_transport_wait} — a
    socket round-trip to a remote shard in flight — are omitted unless
    [include_transport] is [true]: a stage waiting on the wire is
    making progress elsewhere, not stalled. *)

val diagnose : t -> diagnosis option
(** [None] once the pipeline has completed; otherwise the current
    blocked-fiber attribution.  Meaningful when called after [Sched.run]
    has quiesced with [done_] unfilled — everything still blocked then
    is a genuine stall, not transient backpressure. *)

val pp_stall : Format.formatter -> stall -> unit
val pp_diagnosis : Format.formatter -> diagnosis -> unit

type prediction = { entities : int; invocations_per_datum : int }

val predict : discipline -> n_filters:int -> prediction
(** §4: read-only and write-only move one datum end to end in [n+1]
    invocations with [n+2] Ejects; the conventional arrangement needs
    [2n+2] invocations and [2n+3] Ejects ([n+1] of them pipes). *)
