module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Ivar = Eden_sched.Ivar
module Sched = Eden_sched.Sched
module Flowctl = Eden_flowctl.Flowctl
module Aimd = Eden_flowctl.Aimd
module Credit = Eden_flowctl.Credit

(* Windowed state: several seq-stamped transfers kept in flight at
   once.  Each request's start position is computed from the credits
   asked before it — sound because the port serves seq-stamped
   requests exact-fill (see Port), so a short reply implies end of
   stream and every other reply carries exactly what was asked. *)
type window = {
  wsched : Sched.t; (* for credit take/give decision notes *)
  credit : Credit.t;
  ctrl : Aimd.t option;
  fixed : int; (* batch per request when not adaptive *)
  mutable next_seq : int; (* start position of the next request *)
  outstanding : (int * Kernel.reply Ivar.t) Queue.t; (* (asked, reply) *)
  mutable stop : bool; (* end of stream requested: stop issuing *)
  mutable stalls : int; (* reads that had to wait on the network *)
}

type mode = Sync | Windowed of window

type t = {
  ctx : Kernel.ctx;
  src : Uid.t;
  chan : Channel.t;
  batch : int;
  mode : mode;
  wrap : Value.t -> Value.t;
  mutable buf : Value.t list;
  mutable eos : bool;
  mutable transfers : int;
}

let connect ctx ?(batch = 1) ?flowctl ?(channel = Channel.output) ?(wrap = Fun.id) src =
  if batch < 1 then invalid_arg "Pull.connect: batch must be at least 1";
  let mode =
    match flowctl with
    | None -> Sync
    | Some fc when Flowctl.is_legacy fc -> Sync
    | Some fc ->
        Windowed
          {
            wsched = Kernel.sched (Kernel.kernel ctx);
            credit = Flowctl.credit fc;
            ctrl = Flowctl.controller fc;
            fixed = Flowctl.initial_batch fc;
            next_seq = 0;
            outstanding = Queue.create ();
            stop = false;
            stalls = 0;
          }
  in
  let batch = match flowctl with None -> batch | Some fc -> Flowctl.initial_batch fc in
  { ctx; src; chan = channel; batch; mode; wrap; buf = []; eos = false; transfers = 0 }

(* Issue transfers until the credit window is full.  Called only from
   [read] — never at connect time — so a pipeline with no consumer
   stays completely lazy. *)
let refill t w =
  if not w.stop then begin
    while (not w.stop) && Credit.take w.credit do
      Sched.note w.wsched ~kind:"credit.take" ~arg:(Credit.in_flight w.credit);
      let asked = match w.ctrl with Some c -> Aimd.current c | None -> w.fixed in
      t.transfers <- t.transfers + 1;
      let ivar =
        Kernel.invoke_async t.ctx t.src ~op:Proto.transfer_op
          (t.wrap (Proto.transfer_request ~seq:w.next_seq t.chan ~credit:asked))
      in
      w.next_seq <- w.next_seq + asked;
      Queue.push (asked, ivar) w.outstanding
    done
  end

let rec read t =
  match t.buf with
  | x :: rest ->
      t.buf <- rest;
      Some x
  | [] -> (
      if t.eos then None
      else
        match t.mode with
        | Sync ->
            t.transfers <- t.transfers + 1;
            let reply =
              Kernel.call t.ctx t.src ~op:Proto.transfer_op
                (t.wrap (Proto.transfer_request t.chan ~credit:t.batch))
            in
            let { Proto.eos; items } = Proto.parse_transfer_reply reply in
            t.eos <- eos;
            t.buf <- items;
            (* A live producer never replies empty without eos, but retry
               defensively rather than fabricate an end of stream. *)
            read t
        | Windowed w -> (
            refill t w;
            match Queue.take_opt w.outstanding with
            | None ->
                (* Unreachable with a correct window (refill always
                   issues when nothing is outstanding); treat as eos
                   rather than spin. *)
                t.eos <- true;
                None
            | Some (asked, ivar) -> (
                if not (Ivar.is_filled ivar) then w.stalls <- w.stalls + 1;
                let reply = Ivar.read ivar in
                Credit.give w.credit;
                Sched.note w.wsched ~kind:"credit.give" ~arg:(Credit.in_flight w.credit);
                match reply with
                | Error msg -> raise (Kernel.Eden_error msg)
                | Ok v ->
                    let { Proto.eos; items } = Proto.parse_transfer_reply v in
                    let n = List.length items in
                    (* Exact-fill contract: short means drained. *)
                    if eos || n < asked then begin
                      t.eos <- true;
                      w.stop <- true
                    end
                    else
                      Option.iter Aimd.on_progress w.ctrl;
                    t.buf <- items;
                    read t)))

let iter f t =
  let rec go () =
    match read t with
    | Some v ->
        f v;
        go ()
    | None -> ()
  in
  go ()

let source t = t.src
let channel t = t.chan
let transfers_issued t = t.transfers
let controller t = match t.mode with Sync -> None | Windowed w -> w.ctrl
let stalls t = match t.mode with Sync -> 0 | Windowed w -> w.stalls
let credit t = match t.mode with Sync -> None | Windowed w -> Some w.credit
