(** The asymmetric stream wire protocol.

    Two operations are enough for all three disciplines:

    - [Transfer] (active input ⇄ passive output): the consumer invokes
      [Transfer(channel, credit)] on the producer, which replies
      [(eos, items)] with [1 ≤ length items ≤ credit] unless the stream
      has ended.  This is the only operation the "read only" discipline
      needs, and is the operation of the paper's bootstrap system (§7).
    - [Deposit] (active output ⇄ passive input): the producer invokes
      [Deposit(channel, eos, items)] on the consumer; the reply (unit)
      doubles as the flow-control acknowledgement.

    A conventional Unix-style pipe supports both: [Deposit] fills it and
    [Transfer] drains it.

    {2 Resumable extension}

    For crash-resumable streams each form takes an optional trailing
    sequence number.  [Transfer(channel, credit, seq)] asks for items
    starting at absolute position [seq]; the reply [(eos, items, base)]
    echoes the position of its first item and, by carrying [seq],
    cumulatively acknowledges everything below it.  [Deposit(channel,
    eos, items, seq)] stamps its first item's position so a retried
    deposit is deduplicated, and the ack becomes [Int next_seq] — the
    position the consumer expects next.  Legacy peers that omit the
    trailing field interoperate: the plain parsers accept both shapes,
    and the [_seq] parsers report the extension as an [option]. *)

module Value = Eden_kernel.Value

val transfer_op : string
val deposit_op : string

(** {1 Transfer} *)

val transfer_request : ?seq:int -> Channel.t -> credit:int -> Value.t

val parse_transfer_request : Value.t -> Channel.t * int
(** Accepts both plain and seq-stamped requests, ignoring the seq.
    @raise Value.Protocol_error on malformed requests, including
    non-positive credit. *)

val parse_transfer_request_seq : Value.t -> Channel.t * int * int option
(** Like {!parse_transfer_request} but also reports the resume position,
    when present. *)

type transfer_reply = { eos : bool; items : Value.t list }

val transfer_reply : ?base:int -> transfer_reply -> Value.t
val parse_transfer_reply : Value.t -> transfer_reply
(** Accepts both plain and base-stamped replies, ignoring the base. *)

val parse_transfer_reply_base : Value.t -> transfer_reply * int option
(** Like {!parse_transfer_reply} but also reports the absolute position
    of the first item, when present. *)

(** {1 Deposit} *)

val deposit_request : ?seq:int -> Channel.t -> eos:bool -> Value.t list -> Value.t
val parse_deposit_request : Value.t -> Channel.t * bool * Value.t list
(** Accepts both plain and seq-stamped requests, ignoring the seq. *)

val parse_deposit_request_seq : Value.t -> Channel.t * bool * Value.t list * int option

val deposit_ack : next_seq:int -> Value.t
val parse_deposit_ack : Value.t -> int option
(** [None] for the legacy unit ack, [Some next_seq] for the resumable
    form. *)
