module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Obs = Eden_obs.Obs
module Sched = Eden_sched.Sched
module Aimd = Eden_flowctl.Aimd

type gen = unit -> Value.t option
type consume = Value.t -> unit

let custom k ?node ?(dispatch = Kernel.Concurrent) ~name behaviour =
  Kernel.create_eject k ?node ~dispatch ~type_name:name behaviour

(* --- Flow instrumentation ------------------------------------------- *)

(* Every stage constructor takes [?flow]; when given, blocking reads
   and writes are timed into the stage's wait histogram
   ("stage.<label>.wait" on the kernel's collector) and items/batches
   are counted through the flow meter.  With [flow = None] each
   wrapper is the identity — unmetered stages pay nothing. *)

type meter = { fl : Obs.Flow.stage; hist : Obs.Histogram.t }

let meter_of k flow =
  Option.map
    (fun fl ->
      { fl; hist = Obs.histogram (Kernel.obs k) ("stage." ^ fl.Obs.Flow.label ^ ".wait") })
    flow

(* Time a blocking operation from inside a worker fiber, charging the
   elapsed virtual time to the stage's input or output stall. *)
let timed m dir f =
  match m with
  | None -> f ()
  | Some { fl; hist } ->
      let t0 = Sched.time () in
      let r = f () in
      let d = Sched.time () -. t0 in
      (match dir with `In -> Obs.Flow.wait_in fl d | `Out -> Obs.Flow.wait_out fl d);
      Obs.Histogram.add hist d;
      r

(* Items and bytes are counted together; bytes follow the Value.size
   law, so a chunk is charged its whole payload where a boxed line
   charges its few dozen bytes — the meters stay truthful under the
   chunked discipline. *)
let count_in m r =
  (match (m, r) with
  | Some { fl; _ }, Some v ->
      Obs.Flow.note_in fl;
      Obs.Flow.note_bytes_in fl (Value.size v)
  | _ -> ());
  r

let count_out m v =
  match m with
  | Some { fl; _ } ->
      Obs.Flow.note_out fl;
      Obs.Flow.note_bytes_out fl (Value.size v)
  | None -> ()
let note_batches m n = match m with Some { fl; _ } -> Obs.Flow.note_batches fl n | None -> ()

(* Downstream backpressure feeding an upstream adaptive controller:
   when this stage's emit blocks in virtual time (no demand, full
   buffer — the same quantity the flow meter records as stall_out),
   the batches it pulls from upstream shrink. *)
let feeding_stall ctrl f =
  match ctrl with
  | None -> f ()
  | Some c ->
      let t0 = Sched.time () in
      let r = f () in
      if Sched.time () -. t0 > 0.0 then Aimd.on_stall c;
      r

(* --- Read-only ------------------------------------------------------ *)

let source_ro k ?node ?(name = "source") ?(capacity = 0) ?flow gen =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let m = meter_of k flow in
      let port = Port.create () in
      let w = Port.add_channel port ~capacity Channel.output in
      Kernel.spawn_worker ctx ~name:(name ^ "/produce") (fun () ->
          (* Wait for room before generating, so production never runs
             beyond the declared anticipation. *)
          let rec go () =
            timed m `Out (fun () -> Port.await_writable w);
            match gen () with
            | Some v ->
                Port.write w v;
                count_out m v;
                go ()
            | None -> Port.close w
          in
          go ());
      Port.handlers port)

let filter_ro k ?node ?(name = "filter") ?(capacity = 0) ?(batch = 1) ?flowctl ?flow
    ~upstream ?(upstream_channel = Channel.output) transform =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let m = meter_of k flow in
      let port = Port.create () in
      let w = Port.add_channel port ~capacity Channel.output in
      let pull = Pull.connect ctx ~batch ?flowctl ~channel:upstream_channel upstream in
      let ctrl = Pull.controller pull in
      let next () =
        let r = timed m `In (fun () -> Pull.read pull) in
        note_batches m (Pull.transfers_issued pull);
        count_in m r
      in
      let emit v =
        feeding_stall ctrl (fun () -> timed m `Out (fun () -> Port.write w v));
        count_out m v
      in
      Kernel.spawn_worker ctx ~name:(name ^ "/transform") (fun () ->
          if capacity = 0 then Port.await_demand w;
          transform next emit;
          Port.close w);
      Port.handlers port)

let sink_ro k ?node ?(name = "sink") ?(batch = 1) ?flowctl ?flow ~upstream
    ?(upstream_channel = Channel.output) ?(on_done = fun () -> ()) consume =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let m = meter_of k flow in
      let pull = Pull.connect ctx ~batch ?flowctl ~channel:upstream_channel upstream in
      Kernel.spawn_worker ctx ~name:(name ^ "/pump") (fun () ->
          let rec go () =
            let r = timed m `In (fun () -> Pull.read pull) in
            note_batches m (Pull.transfers_issued pull);
            match count_in m r with
            | Some v ->
                consume v;
                go ()
            | None -> on_done ()
          in
          go ());
      [])

(* --- Write-only ----------------------------------------------------- *)

let source_wo k ?node ?(name = "source") ?(batch = 1) ?flowctl ?flow ~downstream
    ?(downstream_channel = Channel.output) gen =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let m = meter_of k flow in
      let push = Push.connect ctx ~batch ?flowctl ~channel:downstream_channel downstream in
      Kernel.spawn_worker ctx ~name:(name ^ "/pump") (fun () ->
          let rec go () =
            match gen () with
            | Some v ->
                timed m `Out (fun () -> Push.write push v);
                note_batches m (Push.deposits_issued push);
                count_out m v;
                go ()
            | None -> Push.close push
          in
          go ());
      [])

let filter_wo k ?node ?(name = "filter") ?(capacity = 1) ?(batch = 1) ?flowctl ?flow
    ~downstream ?(downstream_channel = Channel.output) transform =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let m = meter_of k flow in
      let intake = Intake.create () in
      let r = Intake.add_channel intake ~capacity Channel.output in
      let push = Push.connect ctx ~batch ?flowctl ~channel:downstream_channel downstream in
      let next () = count_in m (timed m `In (fun () -> Intake.read r)) in
      let emit v =
        timed m `Out (fun () -> Push.write push v);
        note_batches m (Push.deposits_issued push);
        count_out m v
      in
      Kernel.spawn_worker ctx ~name:(name ^ "/transform") (fun () ->
          transform next emit;
          Push.close push);
      Intake.handlers intake)

let sink_wo k ?node ?(name = "sink") ?(capacity = 1) ?flow ?(on_done = fun () -> ()) consume =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let m = meter_of k flow in
      let intake = Intake.create () in
      let r = Intake.add_channel intake ~capacity Channel.output in
      Kernel.spawn_worker ctx ~name:(name ^ "/consume") (fun () ->
          let rec go () =
            match count_in m (timed m `In (fun () -> Intake.read r)) with
            | Some v ->
                consume v;
                go ()
            | None -> on_done ()
          in
          go ());
      Intake.handlers intake)

(* --- Conventional --------------------------------------------------- *)

let pipe k ?node ?(name = "pipe") ?(capacity = 4) ?flow () =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let m = meter_of k flow in
      let intake = Intake.create () in
      let r = Intake.add_channel intake ~capacity Channel.output in
      let port = Port.create () in
      let w = Port.add_channel port ~capacity:0 Channel.output in
      (* The internal copy from intake to port costs no invocations; the
         pipe is one Eject with one buffer, observed from both sides. *)
      Kernel.spawn_worker ctx ~name:(name ^ "/buffer") (fun () ->
          let rec go () =
            match count_in m (timed m `In (fun () -> Intake.read r)) with
            | Some v ->
                timed m `Out (fun () -> Port.write w v);
                count_out m v;
                go ()
            | None -> Port.close w
          in
          go ());
      Intake.handlers intake @ Port.handlers port)

let source_active k ?node ?(name = "source") ?batch ?flowctl ?flow ~downstream gen =
  source_wo k ?node ~name ?batch ?flowctl ?flow ~downstream gen

let filter_active k ?node ?(name = "filter") ?(batch = 1) ?flowctl ?flow ~upstream ~downstream
    transform =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let m = meter_of k flow in
      let pull = Pull.connect ctx ~batch ?flowctl upstream in
      let push = Push.connect ctx ~batch ?flowctl downstream in
      let ctrl = Pull.controller pull in
      (* Batches here are whole protocol exchanges on either side. *)
      let batches () = Pull.transfers_issued pull + Push.deposits_issued push in
      let next () =
        let r = timed m `In (fun () -> Pull.read pull) in
        note_batches m (batches ());
        count_in m r
      in
      let emit v =
        feeding_stall ctrl (fun () -> timed m `Out (fun () -> Push.write push v));
        note_batches m (batches ());
        count_out m v
      in
      Kernel.spawn_worker ctx ~name:(name ^ "/pump") (fun () ->
          transform next emit;
          Push.close push);
      [])

let sink_active k ?node ?name ?batch ?flowctl ?flow ~upstream ?on_done consume =
  sink_ro k ?node ?name ?batch ?flowctl ?flow ~upstream ?on_done consume
