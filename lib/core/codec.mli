(** Typed record streams (§6).

    "Nothing I have said about Eden transput constrains Eden streams to
    be streams of bytes.  Streams of arbitrary records fit into the
    protocol just as well, provided only that they are homogeneous."
    The paper laments that the Eden Programming Language lacked type
    parameterisation; OCaml does not, so a ['a t] packages the
    encode/decode pair and the endpoint wrappers make whole pipelines
    typed: a peer that violates the record shape surfaces as a
    [Value.Protocol_error] — i.e. an error reply — rather than silent
    corruption. *)

module Value = Eden_kernel.Value
module Uid = Eden_kernel.Uid

type 'a t = { encode : 'a -> Value.t; decode : Value.t -> 'a }

(** {1 Base codecs} *)

val unit : unit t
val bool : bool t
val int : int t
val float : float t
val string : string t
val uid : Uid.t t

val chunk : Eden_chunk.Chunk.t t
(** By-reference framing for flat byte chunks: no payload copy on
    either side, so [batch chunk] frames whole chunk batches for the
    cost of the length prefix alone. *)

(** {1 Combinators} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val list : 'a t -> 'a list t
val option : 'a t -> 'a option t
(** [None] as [Unit], [Some x] as a 1-list; unambiguous for every
    payload codec. *)

val batch : ?max_items:int -> 'a t -> 'a list t
(** A length-framed batch, the payload shape of batched stream
    invokes: [[n; x1; …; xn]] with [n ≤ max_items] (default 1024).
    Unlike {!list}, a decoder can reject a truncated, padded or
    oversized frame {e before} interpreting the elements, so one
    malformed batch surfaces as a [Value.Protocol_error] (an error
    reply) instead of desyncing the stream.  @raise Invalid_argument
    when encoding more than [max_items]. *)

val map : ('a -> 'b) -> ('b -> 'a) -> 'a t -> 'b t
(** [map of_a to_a c] views a ['b] through ['a]'s wire shape. *)

val tagged : (string * 'a t) list -> (string * 'a) t
(** A crude variant: [(tag, payload)] where the tag selects the payload
    codec.  @raise Value.Protocol_error when decoding an unknown tag;
    @raise Invalid_argument when encoding one. *)

(** {1 Typed stream endpoints} *)

val read : 'a t -> Pull.t -> 'a option
(** Typed {!Pull.read}. *)

val write : 'a t -> Push.t -> 'a -> unit
(** Typed {!Push.write}. *)

val iter : 'a t -> ('a -> unit) -> Pull.t -> unit

(** {1 Typed transforms} *)

val lift_map : in_:'a t -> out:'b t -> ('a -> 'b) -> Transform.t
val lift_filter_map : in_:'a t -> out:'b t -> ('a -> 'b option) -> Transform.t

val lift_stateful :
  in_:'a t ->
  out:'b t ->
  init:'s ->
  step:('s -> 'a -> 's * 'b list) ->
  flush:('s -> 'b list) ->
  Transform.t
