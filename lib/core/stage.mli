(** Eject constructors for pipeline stages in every discipline.

    The same generator / {!Transform.t} / consumer can be wrapped as:

    - {b read-only} stages ([source_ro], [filter_ro], [sink_ro]):
      filters perform active input and passive output; the sink pumps
      (Figure 2 of the paper);
    - {b write-only} stages ([source_wo], [filter_wo], [sink_wo]): the
      exact dual; the source pumps (§5);
    - {b conventional} stages ([source_active], [filter_active],
      [sink_active]) connected by [pipe] passive-buffer Ejects
      (Figure 1).

    Stages with a pumping worker and no servable operations (read-only
    sinks, write-only sources, every conventional stage) are started
    with {!Eden_kernel.Kernel.poke}; everything else activates on its
    first incoming invocation, which is what makes a read-only pipeline
    demand-driven end to end.

    [capacity] is the per-stage anticipation buffer (see {!Port});
    [batch] the per-invocation item count (see {!Pull}/{!Push}).  Both
    default to the paper's counting regime: fully lazy, one datum per
    invocation.

    [flowctl] (on stages with an active connection) supersedes [batch]
    with a full {!Eden_flowctl.Flowctl} configuration: credit-windowed
    pipelined exchanges and, under [Adaptive], AIMD-sized batches.
    Stages with adaptive pulls also feed the controller a backpressure
    signal — virtual time spent blocked emitting downstream shrinks the
    upstream batch.  Passive endpoints (ports, intakes, pipes) need no
    configuration: they serve whatever form the client sends. *)

module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid

type gen = unit -> Value.t option
(** Item generator for sources; [None] ends the stream. *)

type consume = Value.t -> unit
(** Item consumer for sinks; runs inside the sink Eject. *)

(** Every constructor takes [?flow]: a {!Eden_obs.Obs.Flow.stage}
    (from [Obs.register_stage]) that the stage feeds with items
    in/out, protocol batches, occupancy, and virtual-time stall on its
    blocking reads and writes; wait times also land in the
    ["stage.<label>.wait"] histogram of the kernel's collector.
    Omitted, a stage is entirely unmetered.  {!Pipeline.build}
    registers one flow per stage automatically. *)

(** {1 Read-only discipline} *)

val source_ro :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?flow:Eden_obs.Obs.Flow.stage ->
  gen ->
  Uid.t
(** Passive output on {!Channel.output}; produces nothing until asked
    (capacity 0) or runs [capacity] items ahead. *)

val filter_ro :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  ?flow:Eden_obs.Obs.Flow.stage ->
  upstream:Uid.t ->
  ?upstream_channel:Channel.t ->
  Transform.t ->
  Uid.t
(** Active input from [upstream], passive output on {!Channel.output}. *)

val sink_ro :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  ?flow:Eden_obs.Obs.Flow.stage ->
  upstream:Uid.t ->
  ?upstream_channel:Channel.t ->
  ?on_done:(unit -> unit) ->
  consume ->
  Uid.t
(** The pump: actively reads [upstream] to exhaustion, then calls
    [on_done].  Start it with {!Kernel.poke}. *)

(** {1 Write-only discipline} *)

val source_wo :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  ?flow:Eden_obs.Obs.Flow.stage ->
  downstream:Uid.t ->
  ?downstream_channel:Channel.t ->
  gen ->
  Uid.t
(** The pump: actively deposits into [downstream] until the generator
    ends.  Start it with {!Kernel.poke}. *)

val filter_wo :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  ?flow:Eden_obs.Obs.Flow.stage ->
  downstream:Uid.t ->
  ?downstream_channel:Channel.t ->
  Transform.t ->
  Uid.t
(** Passive input on {!Channel.output}, active output to
    [downstream]. *)

val sink_wo :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?flow:Eden_obs.Obs.Flow.stage ->
  ?on_done:(unit -> unit) ->
  consume ->
  Uid.t
(** Passive input on {!Channel.output}; consumes as deposits arrive. *)

(** {1 Conventional discipline} *)

val pipe :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?flow:Eden_obs.Obs.Flow.stage ->
  unit ->
  Uid.t
(** A passive buffer (Unix pipe): accepts [Deposit] and serves
    [Transfer] on {!Channel.output}.  [capacity] defaults to 4. *)

val source_active :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  ?flow:Eden_obs.Obs.Flow.stage ->
  downstream:Uid.t ->
  gen ->
  Uid.t
(** Same machinery as [source_wo]: a conventional data source actively
    writes into the first pipe. *)

val filter_active :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  ?flow:Eden_obs.Obs.Flow.stage ->
  upstream:Uid.t ->
  downstream:Uid.t ->
  Transform.t ->
  Uid.t
(** Active input {e and} active output — the Unix filter that both
    transforms and pumps (§3).  Start it with {!Kernel.poke}. *)

val sink_active :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  ?flow:Eden_obs.Obs.Flow.stage ->
  upstream:Uid.t ->
  ?on_done:(unit -> unit) ->
  consume ->
  Uid.t
(** Identical to [sink_ro]: a conventional sink performs active
    input. *)

(** {1 Custom stages} *)

val custom :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?dispatch:Kernel.dispatch ->
  name:string ->
  Kernel.behaviour ->
  Uid.t
(** Full control for impure stages (multiple channels, report streams,
    protocol extensions); a thin veneer over {!Kernel.create_eject} with
    the concurrent dispatch the stream handlers require. *)
