module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Ivar = Eden_sched.Ivar
module Sched = Eden_sched.Sched
module Obs = Eden_obs.Obs

type discipline = Read_only | Write_only | Conventional

let discipline_name = function
  | Read_only -> "read-only"
  | Write_only -> "write-only"
  | Conventional -> "conventional"

let all_disciplines = [ Read_only; Write_only; Conventional ]

type t = {
  kernel : Kernel.t;
  discipline : discipline;
  source : Uid.t;
  filters : Uid.t list;
  pipes : Uid.t list;
  sink : Uid.t;
  done_ : unit Ivar.t;
  flows : (string * Obs.Flow.stage) list;
}

(* Round-robin stage placement over the requested nodes. *)
let placer kernel nodes =
  let nodes = match nodes with [] -> [ List.hd (Kernel.nodes kernel) ] | ns -> ns in
  let arr = Array.of_list nodes in
  let i = ref 0 in
  fun () ->
    let n = arr.(!i mod Array.length arr) in
    incr i;
    n

let build kernel ?(nodes = []) ?(capacity = 0) ?(batch = 1) ?flowctl discipline ~gen ~filters
    ~consume =
  let next_node = placer kernel nodes in
  let done_ = Ivar.create () in
  let on_done () = Ivar.fill done_ () in
  let n = List.length filters in
  (* Structured stage registration: one flow meter per stage, labelled
     like [stage_labels], registered in display order. *)
  let obs = Kernel.obs kernel in
  let fl_source = Obs.register_stage obs "source" in
  let fl_filters =
    List.mapi (fun i _ -> Obs.register_stage obs (Printf.sprintf "filter-%d" (i + 1))) filters
  in
  let fl_pipes =
    match discipline with
    | Conventional ->
        List.init (n + 1) (fun i -> Obs.register_stage obs (Printf.sprintf "pipe-%d" (i + 1)))
    | Read_only | Write_only -> []
  in
  let fl_sink = Obs.register_stage obs "sink" in
  let flows =
    (("source", fl_source)
     :: List.mapi (fun i fl -> (Printf.sprintf "filter-%d" (i + 1), fl)) fl_filters)
    @ List.mapi (fun i fl -> (Printf.sprintf "pipe-%d" (i + 1), fl)) fl_pipes
    @ [ ("sink", fl_sink) ]
  in
  match discipline with
  | Read_only ->
      let source = Stage.source_ro kernel ~node:(next_node ()) ~capacity ~flow:fl_source gen in
      let filter_uids =
        List.fold_left
          (fun ups tr ->
            let i = List.length ups in
            let name = Printf.sprintf "filter-%d" i in
            Stage.filter_ro kernel ~node:(next_node ()) ~name ~capacity ~batch ?flowctl
              ~flow:(List.nth fl_filters (i - 1)) ~upstream:(List.hd ups) tr
            :: ups)
          [ source ] filters
      in
      let sink =
        Stage.sink_ro kernel ~node:(next_node ()) ~batch ?flowctl ~flow:fl_sink
          ~upstream:(List.hd filter_uids) ~on_done consume
      in
      {
        kernel;
        discipline;
        source;
        filters = List.rev (List.filteri (fun i _ -> i < n) filter_uids);
        pipes = [];
        sink;
        done_;
        flows;
      }
  | Write_only ->
      (* Built sink-first: each write-only stage needs its downstream's
         UID, the mirror image of the read-only construction. *)
      let intake_capacity = max 1 capacity in
      let sink =
        Stage.sink_wo kernel ~node:(next_node ()) ~capacity:intake_capacity ~flow:fl_sink
          ~on_done consume
      in
      let filter_uids =
        List.fold_left
          (fun downs tr ->
            let i = n - List.length downs + 1 in
            let name = Printf.sprintf "filter-%d" i in
            Stage.filter_wo kernel ~node:(next_node ()) ~name ~capacity:intake_capacity ~batch
              ?flowctl ~flow:(List.nth fl_filters (i - 1)) ~downstream:(List.hd downs) tr
            :: downs)
          [ sink ] (List.rev filters)
      in
      let source =
        Stage.source_wo kernel ~node:(next_node ()) ~batch ?flowctl ~flow:fl_source
          ~downstream:(List.hd filter_uids) gen
      in
      {
        kernel;
        discipline;
        source;
        filters = List.filteri (fun i _ -> i < n) filter_uids;
        pipes = [];
        sink;
        done_;
        flows;
      }
  | Conventional ->
      let pipe_capacity = max 1 capacity in
      let first_pipe =
        Stage.pipe kernel ~node:(next_node ()) ~capacity:pipe_capacity
          ~flow:(List.nth fl_pipes 0) ()
      in
      let source =
        Stage.source_active kernel ~node:(next_node ()) ~batch ?flowctl ~flow:fl_source
          ~downstream:first_pipe gen
      in
      let filter_uids, pipe_uids =
        List.fold_left
          (fun (fs, ps) tr ->
            let i = List.length fs + 1 in
            let name = Printf.sprintf "filter-%d" i in
            let out_pipe =
              Stage.pipe kernel ~node:(next_node ()) ~capacity:pipe_capacity
                ~flow:(List.nth fl_pipes (List.length ps)) ()
            in
            let f =
              Stage.filter_active kernel ~node:(next_node ()) ~name ~batch ?flowctl
                ~flow:(List.nth fl_filters (i - 1)) ~upstream:(List.hd ps) ~downstream:out_pipe
                tr
            in
            (f :: fs, out_pipe :: ps))
          ([], [ first_pipe ]) filters
      in
      let sink =
        Stage.sink_active kernel ~node:(next_node ()) ~batch ?flowctl ~flow:fl_sink
          ~upstream:(List.hd pipe_uids) ~on_done consume
      in
      {
        kernel;
        discipline;
        source;
        filters = List.rev filter_uids;
        pipes = List.rev pipe_uids;
        sink;
        done_;
        flows;
      }

let start t =
  match t.discipline with
  | Read_only -> Kernel.poke t.kernel t.sink
  | Write_only -> Kernel.poke t.kernel t.source
  | Conventional ->
      Kernel.poke t.kernel t.source;
      List.iter (Kernel.poke t.kernel) t.filters;
      Kernel.poke t.kernel t.sink

let await t = Ivar.read t.done_

let run t =
  start t;
  await t

let entity_count t = 2 + List.length t.filters + List.length t.pipes

(* Stall diagnosis: turn the scheduler's raw blocked-fiber report into
   per-stage attribution.  The kernel tracks which Eject owns every
   live fiber (coordinators and workers alike), so attribution is an
   exact UID comparison — no fiber-name string matching. *)

type stall = { fiber : string; reason : string; stage : string option }
type diagnosis = { at : float; stalls : stall list }

let stall_report ?(include_quiesced = false) ?(include_transport = false) kernel ~stages =
  let blocked = Sched.blocked_info (Kernel.sched kernel) in
  List.filter_map
    (fun (fid, fiber, reason) ->
      match Kernel.owner_of_fiber kernel fid with
      | Some uid when (not include_quiesced) && Kernel.is_quiesced kernel uid ->
          (* A draining/fenced/parked stage is supposed to sit blocked;
             reporting it would turn every elastic reconfiguration into
             a false hang. *)
          None
      | Some uid when (not include_transport) && Kernel.in_transport_wait kernel uid ->
          (* A stage waiting on a remote shard's socket round-trip is
             making progress elsewhere, not stalled. *)
          None
      | owner ->
          let stage =
            match owner with
            | None -> None
            | Some uid ->
                List.find_map
                  (fun (label, u) -> if Uid.equal u uid then Some label else None)
                  stages
          in
          Some { fiber; reason; stage })
    blocked

let stage_labels t =
  (("source", t.source) :: List.mapi (fun i u -> (Printf.sprintf "filter-%d" (i + 1), u)) t.filters)
  @ List.mapi (fun i u -> (Printf.sprintf "pipe-%d" (i + 1), u)) t.pipes
  @ [ ("sink", t.sink) ]

let diagnose t =
  if Ivar.is_filled t.done_ then None
  else
    Some
      {
        at = Sched.now (Kernel.sched t.kernel);
        stalls = stall_report t.kernel ~stages:(stage_labels t);
      }

let pp_stall ppf { fiber; reason; stage } =
  match stage with
  | Some s -> Format.fprintf ppf "%s: %s (%s)" s fiber reason
  | None -> Format.fprintf ppf "?: %s (%s)" fiber reason

let pp_diagnosis ppf { at; stalls } =
  Format.fprintf ppf "@[<v>stalled at t=%g with %d blocked fiber(s):" at (List.length stalls);
  List.iter (fun s -> Format.fprintf ppf "@,  %a" pp_stall s) stalls;
  Format.fprintf ppf "@]"

type prediction = { entities : int; invocations_per_datum : int }

let predict discipline ~n_filters =
  match discipline with
  | Read_only | Write_only ->
      { entities = n_filters + 2; invocations_per_datum = n_filters + 1 }
  | Conventional ->
      { entities = (2 * n_filters) + 3; invocations_per_datum = (2 * n_filters) + 2 }
