(** Passive output: the producer side of the "read only" discipline.

    A [Port] holds one outgoing buffer per channel.  The Eject's own
    processes write into it (blocking, for flow control); the [Transfer]
    handler that [handlers] returns serves incoming read requests from
    it.  This is exactly the paper's "standard IO module" arrangement
    (§4): the filter process is written conventionally with [write],
    while a server process — here the [Transfer] handler, run per
    invocation — feeds data to whoever asks.

    {b Laziness and anticipation.}  The per-channel [capacity] is the
    amount of output the Eject computes in advance of demand:

    - [capacity = 0] (default): fully lazy.  [write] blocks until a
      [Transfer] is outstanding, so no computation happens until a sink
      asks (§4's pure-transformer behaviour).
    - [capacity = k]: the writer may run up to [k] items ahead,
      restoring pipeline parallelism (§4's "read some input and
      buffer-up some output").

    {b Fan-out.}  Deliberately none within a channel: concurrent readers
    of one channel steal items from each other, which is the paper's
    argument (§5) for why naive read-only fan-out cannot work.  Use
    several channels for fan-out. *)

module Value = Eden_kernel.Value

type t
type writer

val create : unit -> t

val add_channel : t -> ?capacity:int -> Channel.t -> writer
(** @raise Invalid_argument on a duplicate channel or negative
    capacity. *)

val writer : t -> Channel.t -> writer
(** @raise Not_found if the channel was never added. *)

val write : writer -> Value.t -> unit
(** Queue one item, blocking while the buffer is at capacity and no
    unsatisfied demand is outstanding.  Fiber context only.
    @raise Failure after [close]. *)

val close : writer -> unit
(** End of stream for this channel; idempotent.  Outstanding and future
    [Transfer]s on it complete with [eos = true] once drained. *)

val await_demand : writer -> unit
(** Park until at least one [Transfer] is outstanding on this channel
    (or it is closed).  A fully lazy producer calls this before doing
    any work at all, so that not even the first item is computed
    speculatively.  Fiber context only. *)

val await_writable : writer -> unit
(** Park until a subsequent [write] would succeed without blocking (or
    the channel is closed).  A producer that calls this before {e
    computing} each item does no work beyond its declared anticipation:
    none at capacity 0, at most [k] items ahead at capacity [k].  Fiber
    context only. *)

val is_closed : writer -> bool
val buffered : writer -> int

val cursor : writer -> int
(** Absolute stream position of the buffer head, as advanced by
    seq-stamped transfers (see {!handlers}).  Plain transfers do not
    move it. *)

val handlers : t -> (string * Eden_kernel.Kernel.handler) list
(** The [Transfer] operation, to splice into the Eject's dispatch table.
    Requests for unregistered channels are refused — with a capability
    channel this refusal is what enforces security (T4).

    Plain [Transfer(chan, credit)] requests are served rendezvous-style:
    the reply carries whatever is buffered (up to [credit]) as soon as
    anything is.  Seq-stamped [Transfer(chan, credit, seq)] requests —
    issued by windowed {!Pull} clients that pipeline several transfers —
    are served {e exact-fill}: the request waits its turn at position
    [seq] and replies with exactly [credit] items unless the stream has
    closed, so a pipelining client can compute request positions ahead
    of any reply and a short reply always means end of stream.  The two
    forms must not be mixed on one channel. *)
