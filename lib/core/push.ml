module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Ivar = Eden_sched.Ivar
module Sched = Eden_sched.Sched
module Flowctl = Eden_flowctl.Flowctl
module Aimd = Eden_flowctl.Aimd
module Credit = Eden_flowctl.Credit
module Chunk = Eden_chunk.Chunk

(* Windowed state: several seq-stamped deposits in flight at once.
   Each batch carries the absolute position of its first item; the
   intake's turnstile reorders network-scrambled arrivals, and stale
   positions error (retries are Eden_resil territory).  Requires a
   single writer per channel. *)
type window = {
  wsched : Sched.t; (* for credit take/give decision notes *)
  credit : Credit.t;
  ctrl : Aimd.t option;
  fixed : int;
  mutable next_seq : int;
  outstanding : Kernel.reply Ivar.t Queue.t;
  mutable stalls : int; (* acks that had to be awaited *)
}

type mode = Sync | Windowed of window

type t = {
  ctx : Kernel.ctx;
  dst : Uid.t;
  chan : Channel.t;
  batch : int;
  mode : mode;
  wrap : Value.t -> Value.t;
  chunk_bytes : int option; (* chunked plane: coalescing threshold *)
  mutable pending : Value.t list; (* reversed *)
  mutable pending_bytes : int;
  mutable closed : bool;
  mutable deposits : int;
  mutable chunks_sent : int;
}

let connect ctx ?(batch = 1) ?flowctl ?(channel = Channel.output) ?(wrap = Fun.id) dst =
  if batch < 1 then invalid_arg "Push.connect: batch must be at least 1";
  let mode =
    match flowctl with
    | None -> Sync
    | Some fc when Flowctl.is_legacy fc -> Sync
    | Some fc ->
        Windowed
          {
            wsched = Kernel.sched (Kernel.kernel ctx);
            credit = Flowctl.credit fc;
            ctrl = Flowctl.controller fc;
            fixed = Flowctl.initial_batch fc;
            next_seq = 0;
            outstanding = Queue.create ();
            stalls = 0;
          }
  in
  let batch = match flowctl with None -> batch | Some fc -> Flowctl.initial_batch fc in
  let chunk_bytes = Option.bind flowctl Flowctl.chunk_bytes in
  {
    ctx;
    dst;
    chan = channel;
    batch;
    mode;
    wrap;
    chunk_bytes;
    pending = [];
    pending_bytes = 0;
    closed = false;
    deposits = 0;
    chunks_sent = 0;
  }

let send t ~eos items =
  t.deposits <- t.deposits + 1;
  ignore
    (Kernel.call t.ctx t.dst ~op:Proto.deposit_op
       (t.wrap (Proto.deposit_request t.chan ~eos items)))

(* Consume the oldest outstanding ack, blocking if it has not arrived;
   an [Error] ack (stale seq, closed intake) surfaces here. *)
let reap w =
  match Queue.take_opt w.outstanding with
  | None -> ()
  | Some ivar -> (
      if not (Ivar.is_filled ivar) then w.stalls <- w.stalls + 1;
      let reply = Ivar.read ivar in
      Credit.give w.credit;
      Sched.note w.wsched ~kind:"credit.give" ~arg:(Credit.in_flight w.credit);
      match reply with
      | Ok _ -> ()
      | Error msg -> raise (Kernel.Eden_error ("Push: deposit failed: " ^ msg)))

let send_windowed t w ~eos items =
  let had_to_wait = ref false in
  while not (Credit.take w.credit) do
    (* Window full: draining the oldest ack is the backpressure. *)
    if
      not
        (match Queue.peek_opt w.outstanding with
        | Some iv -> Ivar.is_filled iv
        | None -> true)
    then had_to_wait := true;
    reap w
  done;
  Sched.note w.wsched ~kind:"credit.take" ~arg:(Credit.in_flight w.credit);
  (match w.ctrl with
  | Some c -> if !had_to_wait then Aimd.on_stall c else Aimd.on_progress c
  | None -> ());
  t.deposits <- t.deposits + 1;
  let ivar =
    Kernel.invoke_async t.ctx t.dst ~op:Proto.deposit_op
      (t.wrap (Proto.deposit_request ~seq:w.next_seq t.chan ~eos items))
  in
  w.next_seq <- w.next_seq + List.length items;
  Queue.push ivar w.outstanding;
  (* Opportunistically reap acks that already arrived, so a long run
     of writes does not hold a window's worth of filled ivars. *)
  while
    match Queue.peek_opt w.outstanding with Some iv -> Ivar.is_filled iv | None -> false
  do
    reap w
  done

let threshold t =
  match t.mode with
  | Sync -> t.batch
  | Windowed w -> ( match w.ctrl with Some c -> Aimd.current c | None -> w.fixed)

(* Chunked plane: adjacent pending chunks travel as one coalesced
   chunk.  [Chunk.concat] is zero-copy (new chain over the same
   roots); the push owns what was written to it, so the source handles
   are released here and ownership of the bytes continues downstream
   under the coalesced handle. *)
let coalesce t items =
  match t.chunk_bytes with
  | None -> items
  | Some _ ->
      let all_chunks =
        List.for_all (function Value.Chunk _ -> true | _ -> false) items
      in
      (match items with
      | (Value.Chunk _ :: _ :: _) when all_chunks ->
          let cs = List.map Value.to_chunk items in
          let big = Chunk.concat cs in
          List.iter Chunk.release cs;
          t.chunks_sent <- t.chunks_sent + 1;
          [ Value.Chunk big ]
      | [ Value.Chunk _ ] as one ->
          t.chunks_sent <- t.chunks_sent + 1;
          one
      | items -> items)

let flush t =
  match t.pending with
  | [] -> ()
  | pending -> (
      t.pending <- [];
      t.pending_bytes <- 0;
      let items = coalesce t (List.rev pending) in
      match t.mode with
      | Sync -> send t ~eos:false items
      | Windowed w -> send_windowed t w ~eos:false items)

let write t item =
  if t.closed then failwith "Push.write: closed";
  t.pending <- item :: t.pending;
  match t.chunk_bytes with
  | Some limit ->
      t.pending_bytes <- t.pending_bytes + Value.size item;
      if t.pending_bytes >= limit then flush t
  | None -> if List.length t.pending >= threshold t then flush t

let close t =
  if not t.closed then begin
    t.closed <- true;
    let items = coalesce t (List.rev t.pending) in
    t.pending <- [];
    t.pending_bytes <- 0;
    match t.mode with
    | Sync -> send t ~eos:true items
    | Windowed w ->
        send_windowed t w ~eos:true items;
        (* Drain every ack so a failure cannot vanish with the
           window and the stream is fully accepted on return. *)
        while not (Queue.is_empty w.outstanding) do
          reap w
        done
  end

let sink t = t.dst
let channel t = t.chan
let deposits_issued t = t.deposits
let chunks_sent t = t.chunks_sent
let controller t = match t.mode with Sync -> None | Windowed w -> w.ctrl
let stalls t = match t.mode with Sync -> 0 | Windowed w -> w.stalls
