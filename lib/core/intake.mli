(** Passive input: the consumer side of the "write only" discipline.

    An [Intake] holds one incoming bounded buffer per channel.  The
    [Deposit] handler from [handlers] accepts data pushed by upstream
    Ejects — blocking the depositor (by delaying its reply) when the
    buffer is full, which is how back-pressure propagates in the
    write-only discipline — and the Eject's own processes drain it with
    [read].

    {b Fan-in.}  Deliberately unattributed within a channel: deposits
    from different senders interleave indistinguishably, the paper's
    observation (§5) that write-only gives a single merged source.  Use
    several channels to keep inputs apart (the secondary inputs of an
    impure write-only filter). *)

module Value = Eden_kernel.Value

type t
type reader

val create : unit -> t

val add_channel : t -> ?capacity:int -> Channel.t -> reader
(** [capacity] (default 1) must be at least 1: a zero-capacity intake
    could never accept a deposit.  @raise Invalid_argument otherwise or
    on a duplicate channel. *)

val reader : t -> Channel.t -> reader
(** @raise Not_found if the channel was never added. *)

val read : reader -> Value.t option
(** Next item, blocking while the buffer is empty and the stream open;
    [None] after end of stream.  Fiber context only. *)

val eos_seen : reader -> bool
val buffered : reader -> int

val expected : reader -> int
(** Next absolute position for seq-stamped deposits (the number of
    items accepted through them so far).  Plain deposits do not move
    it. *)

val handlers : t -> (string * Eden_kernel.Kernel.handler) list
(** The [Deposit] operation, to splice into the Eject's dispatch
    table.

    Plain [Deposit(chan, eos, items)] requests are accepted in arrival
    order and acknowledged with [Unit].  Seq-stamped [Deposit(chan,
    eos, items, seq)] requests — issued by windowed {!Push} clients
    with several deposits in flight — wait at a turnstile until the
    intake has accepted every earlier position, so network reordering
    cannot scramble the stream; the ack is [Int next_seq].  A stale
    (already-accepted) position errors.  The two forms must not be
    mixed on one channel, and a windowed channel must have a single
    writer. *)
