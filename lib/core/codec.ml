module Value = Eden_kernel.Value
module Uid = Eden_kernel.Uid

type 'a t = { encode : 'a -> Value.t; decode : Value.t -> 'a }

let unit = { encode = (fun () -> Value.Unit); decode = Value.to_unit }
let bool = { encode = Value.bool; decode = Value.to_bool }
let int = { encode = Value.int; decode = Value.to_int }
let float = { encode = Value.float; decode = Value.to_float }
let string = { encode = Value.str; decode = Value.to_str }
let uid = { encode = Value.uid; decode = Value.to_uid }

(* Chunks frame by reference: encoding wraps the handle, decoding
   unwraps it — no payload bytes move, so [batch chunk] frames a list
   of chunks with a length prefix and zero copies (the copy, if any,
   happens at the wire boundary in Bin/Frame). *)
let chunk = { encode = Value.chunk; decode = Value.to_chunk }

let pair a b =
  {
    encode = (fun (x, y) -> Value.pair (a.encode x) (b.encode y));
    decode =
      (fun v ->
        let x, y = Value.to_pair v in
        (a.decode x, b.decode y));
  }

let triple a b c =
  {
    encode = (fun (x, y, z) -> Value.List [ a.encode x; b.encode y; c.encode z ]);
    decode =
      (fun v ->
        match Value.to_list v with
        | [ x; y; z ] -> (a.decode x, b.decode y, c.decode z)
        | _ -> raise (Value.Protocol_error "expected a triple"));
  }

let list a =
  {
    encode = (fun xs -> Value.List (List.map a.encode xs));
    decode = (fun v -> List.map a.decode (Value.to_list v));
  }

let option a =
  {
    encode = (function None -> Value.Unit | Some x -> Value.List [ a.encode x ]);
    decode =
      (function
      | Value.Unit -> None
      | Value.List [ x ] -> Some (a.decode x)
      | v -> raise (Value.Protocol_error ("expected an option, got " ^ Value.preview v)));
  }

let batch ?(max_items = 1024) a =
  if max_items < 1 then invalid_arg "Codec.batch: max_items must be at least 1";
  {
    encode =
      (fun xs ->
        let n = List.length xs in
        if n > max_items then
          invalid_arg
            (Printf.sprintf "Codec.batch: %d items exceed the %d-item frame" n max_items);
        Value.List (Value.Int n :: List.map a.encode xs));
    decode =
      (fun v ->
        match v with
        | Value.List (Value.Int n :: rest) ->
            if n < 0 then raise (Value.Protocol_error "batch: negative length");
            if n > max_items then
              raise
                (Value.Protocol_error
                   (Printf.sprintf "batch: %d items exceed the %d-item frame" n max_items));
            if List.length rest <> n then
              raise
                (Value.Protocol_error
                   (Printf.sprintf "batch: length %d does not match %d items" n
                      (List.length rest)));
            List.map a.decode rest
        (* The diagnostic previews the offending value with a hard byte
           bound — a hostile frame must not cost memory in the very
           message that rejects it. *)
        | v -> raise (Value.Protocol_error ("expected a batch, got " ^ Value.preview v)));
  }

let map of_a to_a c =
  { encode = (fun b -> c.encode (to_a b)); decode = (fun v -> of_a (c.decode v)) }

let tagged cases =
  {
    encode =
      (fun (tag, x) ->
        match List.assoc_opt tag cases with
        | Some c -> Value.pair (Value.Str tag) (c.encode x)
        | None -> invalid_arg ("Codec.tagged: unknown tag " ^ tag));
    decode =
      (fun v ->
        let tag, payload = Value.to_pair v in
        let tag = Value.to_str tag in
        match List.assoc_opt tag cases with
        | Some c -> (tag, c.decode payload)
        | None ->
            raise (Value.Protocol_error ("unknown tag: " ^ Value.preview (Value.Str tag))));
  }

let read c pull = Option.map c.decode (Pull.read pull)
let write c push x = Push.write push (c.encode x)
let iter c f pull = Pull.iter (fun v -> f (c.decode v)) pull

let lift_map ~in_ ~out f = Transform.map (fun v -> out.encode (f (in_.decode v)))

let lift_filter_map ~in_ ~out f =
  Transform.filter_map (fun v -> Option.map out.encode (f (in_.decode v)))

let lift_stateful ~in_ ~out ~init ~step ~flush =
  Transform.stateful ~init
    ~step:(fun s v ->
      let s', outs = step s (in_.decode v) in
      (s', List.map out.encode outs))
    ~flush:(fun s -> List.map out.encode (flush s))
