module Value = Eden_kernel.Value

let transfer_op = "Transfer"
let deposit_op = "Deposit"

let transfer_request ?seq chan ~credit =
  let base = [ Channel.to_value chan; Value.Int credit ] in
  match seq with
  | None -> Value.List base
  | Some s -> Value.List (base @ [ Value.Int s ])

let parse_transfer_request v =
  match v with
  | Value.List (chan :: Value.Int credit :: ([] | [ Value.Int _ ])) ->
      if credit <= 0 then raise (Value.Protocol_error "Transfer: credit must be positive");
      (Channel.of_value chan, credit)
  | v -> raise (Value.Protocol_error ("malformed Transfer request: " ^ Value.to_string v))

let parse_transfer_request_seq v =
  match v with
  | Value.List [ chan; Value.Int credit ] ->
      if credit <= 0 then raise (Value.Protocol_error "Transfer: credit must be positive");
      (Channel.of_value chan, credit, None)
  | Value.List [ chan; Value.Int credit; Value.Int seq ] ->
      if credit <= 0 then raise (Value.Protocol_error "Transfer: credit must be positive");
      if seq < 0 then raise (Value.Protocol_error "Transfer: seq must be non-negative");
      (Channel.of_value chan, credit, Some seq)
  | v -> raise (Value.Protocol_error ("malformed Transfer request: " ^ Value.to_string v))

type transfer_reply = { eos : bool; items : Value.t list }

let transfer_reply ?base { eos; items } =
  let fields = [ Value.Bool eos; Value.List items ] in
  match base with
  | None -> Value.List fields
  | Some b -> Value.List (fields @ [ Value.Int b ])

let parse_transfer_reply v =
  match v with
  | Value.List (Value.Bool eos :: Value.List items :: ([] | [ Value.Int _ ])) -> { eos; items }
  | v -> raise (Value.Protocol_error ("malformed Transfer reply: " ^ Value.to_string v))

let parse_transfer_reply_base v =
  match v with
  | Value.List [ Value.Bool eos; Value.List items ] -> ({ eos; items }, None)
  | Value.List [ Value.Bool eos; Value.List items; Value.Int base ] ->
      ({ eos; items }, Some base)
  | v -> raise (Value.Protocol_error ("malformed Transfer reply: " ^ Value.to_string v))

let deposit_request ?seq chan ~eos items =
  let base = [ Channel.to_value chan; Value.Bool eos; Value.List items ] in
  match seq with
  | None -> Value.List base
  | Some s -> Value.List (base @ [ Value.Int s ])

let parse_deposit_request v =
  match v with
  | Value.List (chan :: Value.Bool eos :: Value.List items :: ([] | [ Value.Int _ ])) ->
      (Channel.of_value chan, eos, items)
  | v -> raise (Value.Protocol_error ("malformed Deposit request: " ^ Value.to_string v))

let parse_deposit_request_seq v =
  match v with
  | Value.List [ chan; Value.Bool eos; Value.List items ] ->
      (Channel.of_value chan, eos, items, None)
  | Value.List [ chan; Value.Bool eos; Value.List items; Value.Int seq ] ->
      if seq < 0 then raise (Value.Protocol_error "Deposit: seq must be non-negative");
      (Channel.of_value chan, eos, items, Some seq)
  | v -> raise (Value.Protocol_error ("malformed Deposit request: " ^ Value.to_string v))

let deposit_ack ~next_seq = Value.Int next_seq

let parse_deposit_ack v =
  match v with
  | Value.Unit -> None
  | Value.Int next_seq -> Some next_seq
  | v -> raise (Value.Protocol_error ("malformed Deposit ack: " ^ Value.to_string v))
