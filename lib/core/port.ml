module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Waitq = Eden_sched.Waitq

type chan_state = {
  chan : Channel.t;
  items : Value.t Queue.t;
  capacity : int;
  mutable closed : bool;
  mutable demand : int; (* outstanding, unserved Transfer credit *)
  mutable cursor : int; (* absolute position of the queue head, counting
                           only items taken by seq-stamped transfers *)
  readers : Waitq.t; (* parked Transfer handlers *)
  writers : Waitq.t; (* parked [write] callers *)
  turnstile : Waitq.t; (* parked seq-stamped Transfer handlers *)
}

type t = { channels : (Channel.t * chan_state) list ref }

type writer = chan_state

let create () = { channels = ref [] }

let add_channel t ?(capacity = 0) chan =
  if capacity < 0 then invalid_arg "Port.add_channel: negative capacity";
  if List.exists (fun (c, _) -> Channel.equal c chan) !(t.channels) then
    invalid_arg ("Port.add_channel: duplicate channel " ^ Channel.to_string chan);
  let s =
    {
      chan;
      items = Queue.create ();
      capacity;
      closed = false;
      demand = 0;
      cursor = 0;
      readers = Waitq.create ("port " ^ Channel.to_string chan ^ " readers");
      writers = Waitq.create ("port " ^ Channel.to_string chan ^ " writers");
      turnstile = Waitq.create ("port " ^ Channel.to_string chan ^ " turnstile");
    }
  in
  t.channels := (chan, s) :: !(t.channels);
  s

let find t chan = List.find_opt (fun (c, _) -> Channel.equal c chan) !(t.channels)

let writer t chan = match find t chan with Some (_, s) -> s | None -> raise Not_found

let rec write s item =
  if s.closed then failwith "Port.write: channel closed";
  if Queue.length s.items < s.capacity + s.demand then begin
    Queue.push item s.items;
    ignore (Waitq.wake_one s.readers);
    ignore (Waitq.wake_all s.turnstile)
  end
  else begin
    Waitq.park s.writers;
    write s item
  end

let close s =
  if not s.closed then begin
    s.closed <- true;
    ignore (Waitq.wake_all s.readers);
    ignore (Waitq.wake_all s.turnstile)
  end

let rec await_demand s =
  if s.demand = 0 && not s.closed then begin
    Waitq.park s.writers;
    await_demand s
  end

let rec await_writable s =
  if (not s.closed) && Queue.length s.items >= s.capacity + s.demand then begin
    Waitq.park s.writers;
    await_writable s
  end

let is_closed s = s.closed
let buffered s = Queue.length s.items
let cursor s = s.cursor

let rec take_queue q n acc =
  if n = 0 then List.rev acc
  else
    match Queue.take_opt q with
    | None -> List.rev acc
    | Some x -> take_queue q (n - 1) (x :: acc)

(* Legacy rendezvous serving: reply as soon as anything is buffered. *)
let serve_plain s credit =
  s.demand <- s.demand + credit;
  (* New demand may unblock a lazy writer. *)
  ignore (Waitq.wake_all s.writers);
  let rec await () =
    if Queue.is_empty s.items && not s.closed then begin
      Waitq.park s.readers;
      await ()
    end
  in
  await ();
  let items = take_queue s.items credit [] in
  s.demand <- max 0 (s.demand - credit);
  (* Space freed (and demand gone): let the writer reassess. *)
  ignore (Waitq.wake_all s.writers);
  let eos = s.closed && Queue.is_empty s.items in
  Proto.transfer_reply { Proto.eos; items }

(* Exact-fill serving for windowed (seq-stamped) transfers.

   A pipelining client issues several transfers before seeing any
   reply, computing each request's start position from the credits it
   asked for earlier.  Those positions are only contiguous if every
   non-final reply carries exactly its full credit, so a seq-stamped
   request waits at the turnstile until it is the request for the
   current cursor AND either [credit] items are buffered or the stream
   has closed.  A short reply therefore implies end of stream, and
   speculative requests landing past the end are released with an
   empty eos reply.  Requests may also arrive out of order (the
   network can reorder); the turnstile holds them until the cursor
   catches up.  Mixing plain and seq-stamped transfers on one channel
   is a protocol violation (the plain path bypasses the cursor). *)
let serve_seq s credit seq =
  s.demand <- s.demand + credit;
  ignore (Waitq.wake_all s.writers);
  let fillable () =
    (s.cursor = seq && (Queue.length s.items >= credit || s.closed))
    || (s.closed && s.cursor + Queue.length s.items <= seq)
  in
  let rec await () =
    if s.cursor > seq then
      raise (Kernel.Eden_error (Printf.sprintf "stale Transfer seq %d (cursor %d)" seq s.cursor));
    if not (fillable ()) then begin
      Waitq.park s.turnstile;
      await ()
    end
  in
  await ();
  if s.cursor + Queue.length s.items <= seq && s.closed && s.cursor <> seq then begin
    (* Speculative overshoot past end of stream. *)
    s.demand <- max 0 (s.demand - credit);
    ignore (Waitq.wake_all s.writers);
    Proto.transfer_reply ~base:seq { Proto.eos = true; items = [] }
  end
  else begin
    let items = take_queue s.items credit [] in
    s.cursor <- s.cursor + List.length items;
    s.demand <- max 0 (s.demand - credit);
    ignore (Waitq.wake_all s.writers);
    ignore (Waitq.wake_all s.turnstile);
    let eos = s.closed && Queue.is_empty s.items in
    Proto.transfer_reply ~base:seq { Proto.eos; items }
  end

(* Serve one Transfer request.  Runs as an invocation handler inside a
   worker fiber, so parking here blocks only this request. *)
let serve_transfer t arg =
  let chan, credit, seq = Proto.parse_transfer_request_seq arg in
  match find t chan with
  | None -> raise (Kernel.Eden_error ("no such channel: " ^ Channel.to_string chan))
  | Some (_, s) -> (
      match seq with None -> serve_plain s credit | Some seq -> serve_seq s credit seq)

let handlers t = [ (Proto.transfer_op, serve_transfer t) ]
