module Sched = Eden_sched.Sched
module Prng = Eden_util.Prng
module Obs = Eden_obs.Obs

type node_id = int

type latency =
  | Fixed of float
  | Per_byte of { base : float; per_byte : float }
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }

type meter = {
  sent : int;
  delivered : int;
  dropped : int;
  dropped_loss : int;
  dropped_partition : int;
  bytes : int;
}

let empty_meter =
  { sent = 0; delivered = 0; dropped = 0; dropped_loss = 0; dropped_partition = 0; bytes = 0 }

type t = {
  sched : Sched.t;
  prng : Prng.t;
  mutable nodes : string array;
  mutable default_latency : latency;
  mutable local_latency : latency;
  link_latency : (int * int, latency) Hashtbl.t;
  partitions : (int * int, unit) Hashtbl.t;
  (* Handshake gating: when [require_establishment] is set, inter-node
     links must be [establish]ed before they carry traffic; frames sent
     earlier are charged to [dropped_partition] (the link does not exist
     yet — that is a connectivity condition, not random loss). *)
  mutable require_establishment : bool;
  established : (int * int, unit) Hashtbl.t;
  (* Authenticated-handshake gating, the same boundary rule one layer
     up: with [require_auth] set, an established link still drops (to
     [dropped_partition], loss coin unflipped) until [authenticate]. *)
  mutable require_auth : bool;
  authenticated : (int * int, unit) Hashtbl.t;
  mutable loss_probability : float;
  mutable m : meter;
  (* Cached histogram handles; set once via [set_obs]. *)
  mutable h_delay : Obs.Histogram.t option;
  mutable h_size : Obs.Histogram.t option;
}

let mean_of = function
  | Fixed f -> f
  | Per_byte { base; per_byte } -> base +. (per_byte *. 256.0)
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean } -> mean

let create ?(seed = 0x5EEDL) ~sched ~latency () =
  {
    sched;
    prng = Prng.create seed;
    nodes = [||];
    default_latency = latency;
    local_latency = Fixed (mean_of latency /. 10.0);
    link_latency = Hashtbl.create 8;
    partitions = Hashtbl.create 8;
    require_establishment = false;
    established = Hashtbl.create 8;
    require_auth = false;
    authenticated = Hashtbl.create 8;
    loss_probability = 0.0;
    m = empty_meter;
    h_delay = None;
    h_size = None;
  }

let sched t = t.sched

let set_obs t obs =
  t.h_delay <- Some (Obs.histogram obs "net.delay");
  t.h_size <- Some (Obs.histogram ~lo:1.0 obs "net.size")

let add_node t name =
  t.nodes <- Array.append t.nodes [| name |];
  Array.length t.nodes - 1

let node_count t = Array.length t.nodes

let node_name t id =
  if id < 0 || id >= Array.length t.nodes then invalid_arg "Net.node_name: unknown node";
  t.nodes.(id)

let set_latency t l = t.default_latency <- l
let set_local_latency t l = t.local_latency <- l

let link_key a b = if a <= b then (a, b) else (b, a)

let set_link_latency t a b l = Hashtbl.replace t.link_latency (link_key a b) l

let set_loss_probability t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Net.set_loss_probability: outside [0,1]";
  t.loss_probability <- p

let partition t a b = Hashtbl.replace t.partitions (link_key a b) ()
let heal t a b = Hashtbl.remove t.partitions (link_key a b)
let heal_all t = Hashtbl.reset t.partitions

let set_require_establishment t flag = t.require_establishment <- flag
let establish t a b = Hashtbl.replace t.established (link_key a b) ()
let is_established t a b =
  (not t.require_establishment) || a = b || Hashtbl.mem t.established (link_key a b)

let set_require_auth t flag = t.require_auth <- flag
let authenticate t a b = Hashtbl.replace t.authenticated (link_key a b) ()
let is_authenticated t a b =
  (not t.require_auth) || a = b || Hashtbl.mem t.authenticated (link_key a b)

let draw_latency t model size =
  match model with
  | Fixed f -> f
  | Per_byte { base; per_byte } -> base +. (per_byte *. float_of_int size)
  | Uniform { lo; hi } -> lo +. Prng.float t.prng (hi -. lo)
  | Exponential { mean } -> Prng.exponential t.prng mean

let latency_for t ~src ~dst ~size =
  if src = dst then draw_latency t t.local_latency size
  else
    let model =
      match Hashtbl.find_opt t.link_latency (link_key src dst) with
      | Some l -> l
      | None -> t.default_latency
    in
    draw_latency t model size

let send t ~src ~dst ~size deliver =
  t.m <- { t.m with sent = t.m.sent + 1; bytes = t.m.bytes + size };
  let unestablished =
    src <> dst && not (is_established t src dst && is_authenticated t src dst)
  in
  let partitioned =
    unestablished || (src <> dst && Hashtbl.mem t.partitions (link_key src dst))
  in
  (* Same-node hops never traverse the lossy medium: like partitions,
     loss only applies when [src <> dst].  Without this exemption a
     local error reply (e.g. "no such eject") could be dropped and the
     invoker would block forever.  A frame sent before its link is
     established never reaches the medium either, so the loss coin is
     not flipped for it — it is a connectivity drop, like a partition. *)
  let lost =
    (not unestablished) && src <> dst && t.loss_probability > 0.0
    && Prng.float t.prng 1.0 < t.loss_probability
  in
  (* Surface every nondeterministic draw to the schedule-exploration
     trace: the loss coin whenever it was actually flipped, and any
     partition drop. *)
  if (not unestablished) && src <> dst && t.loss_probability > 0.0 then
    Sched.note t.sched ~kind:"net.loss" ~arg:(if lost then 1 else 0);
  if partitioned then Sched.note t.sched ~kind:"net.partition" ~arg:1;
  (* A message crossing a partitioned link is charged to the partition
     even when the loss coin also came up: the link would have eaten it
     regardless. *)
  if partitioned then
    t.m <-
      { t.m with dropped = t.m.dropped + 1; dropped_partition = t.m.dropped_partition + 1 }
  else if lost then
    t.m <- { t.m with dropped = t.m.dropped + 1; dropped_loss = t.m.dropped_loss + 1 }
  else begin
    let delay = latency_for t ~src ~dst ~size in
    (match t.h_delay with Some h -> Obs.Histogram.add h delay | None -> ());
    (match t.h_size with Some h -> Obs.Histogram.add h (float_of_int size) | None -> ());
    Sched.timer t.sched delay (fun () ->
        t.m <- { t.m with delivered = t.m.delivered + 1 };
        deliver ())
  end

let meter t = t.m
let reset_meter t = t.m <- empty_meter

let meter_diff later earlier =
  {
    sent = later.sent - earlier.sent;
    delivered = later.delivered - earlier.delivered;
    dropped = later.dropped - earlier.dropped;
    dropped_loss = later.dropped_loss - earlier.dropped_loss;
    dropped_partition = later.dropped_partition - earlier.dropped_partition;
    bytes = later.bytes - earlier.bytes;
  }

let meter_add a b =
  {
    sent = a.sent + b.sent;
    delivered = a.delivered + b.delivered;
    dropped = a.dropped + b.dropped;
    dropped_loss = a.dropped_loss + b.dropped_loss;
    dropped_partition = a.dropped_partition + b.dropped_partition;
    bytes = a.bytes + b.bytes;
  }

let pp_meter ppf m =
  Format.fprintf ppf "sent=%d delivered=%d dropped=%d (loss=%d partition=%d) bytes=%d" m.sent
    m.delivered m.dropped m.dropped_loss m.dropped_partition m.bytes
