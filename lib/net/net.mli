(** Simulated interconnect.

    The Eden prototype ran on several VAXen on a 10 Mbit Ethernet; the
    paper's efficiency argument rests on inter-Eject invocations being
    much more expensive than intra-Eject communication.  This module
    supplies that regime: named nodes, per-message delivery latency
    drawn from a configurable model, optional loss and partitions for
    failure-injection tests, and counters for every message and byte.

    Delivery is a scheduled callback on the owning {!Eden_sched.Sched.t};
    the network never blocks a sender. *)

type t

type node_id = private int
(** Dense small integers; obtain them from [add_node]. *)

(** How long a message of a given size takes to arrive. *)
type latency =
  | Fixed of float  (** Constant per message. *)
  | Per_byte of { base : float; per_byte : float }
      (** [base + per_byte * size]; models a serial link. *)
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }

val create : ?seed:int64 -> sched:Eden_sched.Sched.t -> latency:latency -> unit -> t
(** [local_latency] (see {!set_local_latency}) defaults to one tenth of
    the mean of [latency]: staying on-node is cheap but not free. *)

val sched : t -> Eden_sched.Sched.t

val set_obs : t -> Eden_obs.Obs.t -> unit
(** Attach an observability collector: every delivered message records
    its drawn delay into the ["net.delay"] histogram and its size into
    ["net.size"].  Called once by the kernel at creation. *)

(** {1 Topology} *)

val add_node : t -> string -> node_id
val node_count : t -> int
val node_name : t -> node_id -> string

val set_latency : t -> latency -> unit
(** Default model for inter-node traffic. *)

val set_local_latency : t -> latency -> unit
(** Model for same-node traffic. *)

val set_link_latency : t -> node_id -> node_id -> latency -> unit
(** Overrides the default on one (symmetric) link. *)

(** {1 Failure injection} *)

val set_loss_probability : t -> float -> unit
(** Independent drop probability per inter-node message.  Same-node
    hops are exempt (like partitions): they never traverse the lossy
    medium. @raise Invalid_argument outside [0,1]. *)

val partition : t -> node_id -> node_id -> unit
(** Drops all traffic between the two nodes (symmetric) until [heal]. *)

val heal : t -> node_id -> node_id -> unit
val heal_all : t -> unit

(** {1 Link establishment}

    Off by default (every link is implicitly up, the seed behaviour).
    When enabled, an inter-node link carries traffic only after
    {!establish}; a frame sent earlier is dropped and charged to
    [dropped_partition] — the link does not exist yet, which is a
    connectivity condition, not random loss.  The loss coin is not
    flipped for such frames (they never reach the medium), keeping
    chaos-experiment tables truthful across the simulated and real
    transports, whose handshake has the same boundary. *)

val set_require_establishment : t -> bool -> unit
val establish : t -> node_id -> node_id -> unit
(** Marks the (symmetric) link up.  Not undone by {!heal_all} —
    partitions and establishment are independent conditions. *)

val is_established : t -> node_id -> node_id -> bool
(** True when the link can carry traffic as far as establishment is
    concerned ([true] whenever gating is off or [a = b]). *)

(** {1 Authenticated establishment}

    The same boundary rule one layer up, for the {!Eden_wire.Auth}
    three-layer handshake: with [require_auth] set, an {e established}
    link still drops every frame (charged to [dropped_partition], loss
    coin unflipped) until {!authenticate} marks its authenticated
    handshake complete.  Setup-phase retries therefore never pollute
    the loss columns of an authenticated-vs-plain comparison (A1). *)

val set_require_auth : t -> bool -> unit
val authenticate : t -> node_id -> node_id -> unit
val is_authenticated : t -> node_id -> node_id -> bool

(** {1 Sending} *)

val send : t -> src:node_id -> dst:node_id -> size:int -> (unit -> unit) -> unit
(** Delivers the callback after simulated latency, or never (counted as
    dropped) under loss or partition.  The callback runs outside any
    fiber and must not block. *)

(** {1 Metering} *)

type meter = {
  sent : int;
  delivered : int;
  dropped : int;  (** Always [dropped_loss + dropped_partition]. *)
  dropped_loss : int;  (** Dropped by the random-loss coin. *)
  dropped_partition : int;  (** Dropped by a partitioned link. *)
  bytes : int;
}
(** A message that would be eaten by both causes is charged to the
    partition only, so the sum invariant holds. *)

val meter : t -> meter
val reset_meter : t -> unit
val meter_diff : meter -> meter -> meter

val empty_meter : meter

val meter_add : meter -> meter -> meter
(** Counter-wise sum, for aggregating the networks of disjoint kernels
    (the parallel runtime's per-domain shards). *)

val pp_meter : Format.formatter -> meter -> unit
