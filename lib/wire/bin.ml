module Value = Eden_kernel.Value
module Uid = Eden_kernel.Uid
module Chunk = Eden_chunk.Chunk

let max_depth = 200

(* Tags.  One byte each; sizes chosen so [String.length (encode v) =
   Value.size v + tags], keeping the simulated cost model honest. *)
let tag_unit = 0x00
let tag_bool = 0x01
let tag_int = 0x02
let tag_float = 0x03
let tag_str = 0x04
let tag_uid = 0x05
let tag_list = 0x06
let tag_chunk = 0x07

let err fmt =
  Printf.ksprintf (fun m -> raise (Value.Protocol_error ("wire: " ^ m))) fmt

let rec to_buffer b v =
  match v with
  | Value.Unit -> Buffer.add_uint8 b tag_unit
  | Value.Bool x ->
      Buffer.add_uint8 b tag_bool;
      Buffer.add_uint8 b (if x then 1 else 0)
  | Value.Int n ->
      Buffer.add_uint8 b tag_int;
      Buffer.add_int64_be b (Int64.of_int n)
  | Value.Float f ->
      Buffer.add_uint8 b tag_float;
      Buffer.add_int64_be b (Int64.bits_of_float f)
  | Value.Str s ->
      if String.length s > 0x3FFFFFFF then invalid_arg "Bin.encode: string too long";
      Buffer.add_uint8 b tag_str;
      Buffer.add_int32_be b (Int32.of_int (String.length s));
      Buffer.add_string b s
  | Value.Uid u ->
      let tag, serial = Uid.to_wire u in
      Buffer.add_uint8 b tag_uid;
      Buffer.add_int64_be b tag;
      Buffer.add_int64_be b (Int64.of_int serial)
  | Value.List vs ->
      if List.compare_length_with vs 0x3FFFFFFF > 0 then
        invalid_arg "Bin.encode: list too long";
      Buffer.add_uint8 b tag_list;
      Buffer.add_int32_be b (Int32.of_int (List.length vs));
      List.iter (to_buffer b) vs
  | Value.Chunk c ->
      let len = Chunk.length c in
      if len > 0x3FFFFFFF then invalid_arg "Bin.encode: chunk too long";
      Buffer.add_uint8 b tag_chunk;
      Buffer.add_int32_be b (Int32.of_int len);
      Buffer.add_string b (Chunk.to_string c)

let encode v =
  let b = Buffer.create 64 in
  to_buffer b v;
  Buffer.contents b

(* The gather-encoding of a value: header bytes as flat strings, chunk
   payloads as live references.  [Frame.write_parts] turns this into a
   writev-style send where the only payload copy happens at the syscall
   boundary; [encode] above is the flattening equivalent (and Chunk
   payloads cost an extra pass through the Buffer there, which is
   exactly what the parts path exists to avoid). *)

type part = Flat of string | Payload of Chunk.t

let part_length = function
  | Flat s -> String.length s
  | Payload c -> Chunk.length c

let parts_length ps = List.fold_left (fun acc p -> acc + part_length p) 0 ps

let parts v =
  let acc = ref [] in
  let b = Buffer.create 64 in
  let flush () =
    if Buffer.length b > 0 then begin
      acc := Flat (Buffer.contents b) :: !acc;
      Buffer.clear b
    end
  in
  let rec go v =
    match v with
    | Value.Chunk c ->
        let len = Chunk.length c in
        if len > 0x3FFFFFFF then invalid_arg "Bin.parts: chunk too long";
        Buffer.add_uint8 b tag_chunk;
        Buffer.add_int32_be b (Int32.of_int len);
        flush ();
        acc := Payload c :: !acc
    | Value.List vs ->
        if List.compare_length_with vs 0x3FFFFFFF > 0 then
          invalid_arg "Bin.parts: list too long";
        Buffer.add_uint8 b tag_list;
        Buffer.add_int32_be b (Int32.of_int (List.length vs));
        List.iter go vs
    | v -> to_buffer b v
  in
  go v;
  flush ();
  List.rev !acc

(* Decoding: an explicit cursor over an immutable string.  Every read
   checks the remaining byte count first; lengths and list counts are
   additionally bounded by the remaining bytes so a hostile header can
   never trigger a large allocation (a list element costs >= 1 byte, a
   string byte costs 1). *)

type cursor = { s : string; mutable pos : int; limit : int }

let need c n what =
  if c.limit - c.pos < n then
    err "truncated %s: need %d bytes, have %d" what n (c.limit - c.pos)

let u8 c what =
  need c 1 what;
  let x = Char.code (String.unsafe_get c.s c.pos) in
  c.pos <- c.pos + 1;
  x

let i64 c what =
  need c 8 what;
  let x = String.get_int64_be c.s c.pos in
  c.pos <- c.pos + 8;
  x

let u32 c what =
  need c 4 what;
  let x = Int32.to_int (String.get_int32_be c.s c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  x

let rec value c depth =
  if depth > max_depth then err "nesting exceeds depth %d" max_depth;
  let tag = u8 c "tag" in
  if tag = tag_unit then Value.Unit
  else if tag = tag_bool then
    match u8 c "bool" with
    | 0 -> Value.Bool false
    | 1 -> Value.Bool true
    | b -> err "bool byte %#x" b
  else if tag = tag_int then begin
    let n = i64 c "int" in
    if Int64.compare n (Int64.of_int max_int) > 0
       || Int64.compare n (Int64.of_int min_int) < 0
    then err "int %Ld outside native range" n;
    Value.Int (Int64.to_int n)
  end
  else if tag = tag_float then Value.Float (Int64.float_of_bits (i64 c "float"))
  else if tag = tag_str then begin
    let len = u32 c "string length" in
    if len > c.limit - c.pos then
      err "string length %d exceeds %d remaining bytes" len (c.limit - c.pos);
    let s = String.sub c.s c.pos len in
    c.pos <- c.pos + len;
    Value.Str s
  end
  else if tag = tag_uid then begin
    let tag64 = i64 c "uid tag" in
    let serial = i64 c "uid serial" in
    if Int64.compare serial 0L < 0 || Int64.compare serial (Int64.of_int max_int) > 0
    then err "uid serial %Ld outside native range" serial;
    Value.Uid (Uid.of_wire ~tag:tag64 ~serial:(Int64.to_int serial))
  end
  else if tag = tag_chunk then begin
    (* Same hostile-input discipline as strings: the length is bounded
       by the remaining bytes before any allocation, so a forged header
       (negative lengths arrive as huge unsigned ones) is rejected for
       the cost of the bounded diagnostic alone.  Decoding is the one
       payload copy on the receive side: the fresh root is owned by the
       decoder's consumer. *)
    let len = u32 c "chunk length" in
    if len > c.limit - c.pos then
      err "chunk length %d exceeds %d remaining bytes" len (c.limit - c.pos);
    let ch = Chunk.of_substring c.s ~pos:c.pos ~len in
    c.pos <- c.pos + len;
    Value.Chunk ch
  end
  else if tag = tag_list then begin
    let count = u32 c "list count" in
    if count > c.limit - c.pos then
      err "list count %d exceeds %d remaining bytes" count (c.limit - c.pos);
    let rec elements k acc =
      if k = 0 then List.rev acc else elements (k - 1) (value c (depth + 1) :: acc)
    in
    Value.List (elements count [])
  end
  else err "unknown tag %#x" tag

let decode_prefix s ~pos =
  if pos < 0 || pos > String.length s then invalid_arg "Bin.decode_prefix";
  let c = { s; pos; limit = String.length s } in
  let v = value c 0 in
  (v, c.pos)

let decode s =
  let v, stop = decode_prefix s ~pos:0 in
  if stop <> String.length s then
    err "%d trailing bytes after value" (String.length s - stop);
  v
