(** Authenticated wire sessions — the ASoc RFC-0002 three-layer model.

    Layer 1 — {e community} (namespace) id: every shard belongs to a
    community, a shared-key namespace; the hello names it in clear so
    the hub can pick the verification key.

    Layer 2 — {e keyed MAC}: handshake frames carry a SipHash-2-4 MAC
    over header and payload under the community key, so a forged or
    bit-flipped handshake is rejected before any state is built; after
    the handshake every data frame is sealed with an 8-byte MAC
    trailer ({!seal} / {!open_}) that also covers a per-direction
    counter — a captured frame re-sent later fails as a {e replay},
    not just a bad MAC.

    Layer 3 — {e session token}: the welcome carries a per-connection
    token derived from the community key and the hello nonce; both
    sides mix it into every data-frame MAC, binding frames to this
    connection rather than to the long-lived community key.

    The unauthenticated version-1 handshake remains the default
    everywhere — benchmarks compare the two paths (experiment A1). *)

type community = { id : int64; key : string }
(** A namespace and its 16-byte secret key. *)

val community : id:int64 -> key:string -> community
(** @raise Invalid_argument unless [key] is exactly 16 bytes. *)

val siphash : key:string -> string -> int64
(** SipHash-2-4 of the message under a 16-byte key.  Pure OCaml; this
    is a MAC for protocol integrity, not a general-purpose crypto
    library.  @raise Invalid_argument on a key that is not 16 bytes. *)

(** {1 Handshake} *)

val hello : community -> shard:int -> nonce:int64 -> Frame.t
(** Authenticated hello: base 16-byte handshake payload, then
    community id, a zero token slot, and the MAC ([flag_auth] set). *)

val welcome : community -> shard:int -> nonce:int64 -> token:int64 -> Frame.t

val mint_token : community -> shard:int -> nonce:int64 -> int64
(** The per-connection session token the hub issues: derived
    deterministically from the community key, shard and hello nonce,
    so forked processes that share the key agree without another
    round trip. *)

val verify_hello :
  lookup:(int64 -> community option) -> Frame.t -> (int * int64 * community, string) result
(** Check an authenticated hello: frame shape, magic/version, [lookup]
    of the claimed community id, and the MAC.  [Ok (shard, nonce,
    community)] on success; [Error reason] never raises — a hostile
    handshake must not crash the shard process. *)

val verify_welcome :
  community -> expect_nonce:int64 -> Frame.t -> (int64, string) result
(** Leaf-side check of the authenticated welcome; [Ok token].  The
    nonce echo must match the hello's — a welcome captured from
    another connection fails here. *)

(** {1 Data-frame sealing} *)

type session
(** One direction-pair of counters plus the key material of an
    established authenticated connection.  Not shared between
    connections. *)

val session : community -> token:int64 -> session

val seal : session -> Frame.t -> Frame.t
(** Append the 8-byte MAC trailer (over token, send counter, header
    and payload), set [flag_mac], bump the send counter. *)

val open_ : session -> Frame.t -> Frame.t
(** Verify and strip the trailer, bump the receive counter.
    @raise Eden_kernel.Value.Protocol_error on a missing trailer, a
    MAC mismatch, or a frame whose MAC matches an {e earlier} counter
    — a replayed frame, reported as such. *)

val sent : session -> int
val received : session -> int
