type kind = Unix_socket | Tcp

let kind_name = function Unix_socket -> "unix" | Tcp -> "tcp"

type server = { kind : kind; fd : Unix.file_descr; addr : Unix.sockaddr }

let tune kind fd =
  match kind with
  | Tcp -> Unix.setsockopt fd Unix.TCP_NODELAY true
  | Unix_socket -> ()

let listen kind =
  match kind with
  | Unix_socket ->
      (* temp_file reserves a unique name; bind wants the path free. *)
      let path = Filename.temp_file "eden-wire-" ".sock" in
      Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      { kind; fd; addr = Unix.ADDR_UNIX path }
  | Tcp ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen fd 16;
      { kind; fd; addr = Unix.getsockname fd }

let accept s =
  let fd, _ = Unix.accept s.fd in
  tune s.kind fd;
  fd

let dial s =
  let domain = match s.kind with Unix_socket -> Unix.PF_UNIX | Tcp -> Unix.PF_INET in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.connect fd s.addr;
  tune s.kind fd;
  fd

let close_server s =
  (try Unix.close s.fd with Unix.Unix_error _ -> ());
  match s.addr with
  | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Unix.ADDR_INET _ -> ()
