module Net = Eden_net.Net

type action = Pass | Drop | Delay of float
type event = Ok | Lose | Cut | Slow of float

type t = {
  mutable script : event list;
  mutable partitioned : bool;
  mutable m : Net.meter;
}

let none () = { script = []; partitioned = false; m = Net.empty_meter }
let of_script script = { script; partitioned = false; m = Net.empty_meter }

let of_events events =
  (* The simulator can emit a loss coin AND a partition note for one
     frame (partition wins the accounting); collapse such pairs so one
     wire frame consumes one event. *)
  let rec fold acc = function
    | [] -> List.rev acc
    | ("net.loss", _) :: ("net.partition", 1) :: tl -> fold (Cut :: acc) tl
    | ("net.loss", l) :: tl -> fold ((if l = 1 then Lose else Ok) :: acc) tl
    | ("net.partition", 1) :: tl -> fold (Cut :: acc) tl
    | _ :: tl -> fold acc tl
  in
  of_script (fold [] events)

let partition t = t.partitioned <- true
let heal t = t.partitioned <- false

let apply ?(authenticated = true) t ~established ~size =
  t.m <- { t.m with Net.sent = t.m.Net.sent + 1; bytes = t.m.Net.bytes + size };
  let drop_partition () =
    t.m <-
      { t.m with
        Net.dropped = t.m.Net.dropped + 1;
        dropped_partition = t.m.Net.dropped_partition + 1 };
    Drop
  in
  (* Handshake boundary / partition: the frame never reaches the medium,
     so no script event (the loss coin) is consumed for it.  The same
     rule covers the authenticated handshake: an established link that
     has not finished its Auth exchange is connectivity-down, and setup
     retries must not consume loss events meant for data frames. *)
  if (not established) || (not authenticated) || t.partitioned then drop_partition ()
  else begin
    let ev =
      match t.script with
      | [] -> Ok
      | e :: tl ->
          t.script <- tl;
          e
    in
    match ev with
    | Cut -> drop_partition ()
    | Lose ->
        t.m <-
          { t.m with
            Net.dropped = t.m.Net.dropped + 1;
            dropped_loss = t.m.Net.dropped_loss + 1 };
        Drop
    | Slow d ->
        t.m <- { t.m with Net.delivered = t.m.Net.delivered + 1 };
        Delay d
    | Ok ->
        t.m <- { t.m with Net.delivered = t.m.Net.delivered + 1 };
        Pass
  end

let meter t = t.m
let remaining t = List.length t.script
