(** Socket plumbing for the multi-process cluster.

    Two interchangeable byte transports: a Unix-domain socket in the
    temp directory, and TCP on the loopback interface with an
    OS-assigned port (NODELAY set — frames are small and latency is
    the experiment).  The hub listens, each leaf dials.  Both sides
    get a blocking [file_descr] to drive with {!Frame.read}/
    {!Frame.write}. *)

type kind = Unix_socket | Tcp

val kind_name : kind -> string
(** ["unix"] / ["tcp"]. *)

type server

val listen : kind -> server
val accept : server -> Unix.file_descr
val dial : server -> Unix.file_descr
(** Connect to [server]'s address; usable after [fork] in the child. *)

val close_server : server -> unit
(** Close the listening socket and unlink the Unix-socket path. *)
