module Value = Eden_kernel.Value

type kind = Hello | Welcome | Request | Reply | Idle | Shutdown | Stats

type header = { kind : kind; flags : int; src : int; dst : int; seq : int }
type t = { hdr : header; payload : string }

let flag_oneway = 1
let flag_auth = 2 (* handshake carries the RFC-0002 auth extension *)
let flag_mac = 4 (* payload ends in an 8-byte keyed MAC trailer *)
let header_bytes = 8
let max_payload = 16 * 1024 * 1024

let err fmt =
  Printf.ksprintf (fun m -> raise (Value.Protocol_error ("wire: " ^ m))) fmt

let kind_code = function
  | Hello -> 1
  | Welcome -> 2
  | Request -> 3
  | Reply -> 4
  | Idle -> 5
  | Shutdown -> 6
  | Stats -> 7

let kind_of_code = function
  | 1 -> Hello
  | 2 -> Welcome
  | 3 -> Request
  | 4 -> Reply
  | 5 -> Idle
  | 6 -> Shutdown
  | 7 -> Stats
  | c -> err "unknown frame kind %#x" c

let kind_name = function
  | Hello -> "hello"
  | Welcome -> "welcome"
  | Request -> "request"
  | Reply -> "reply"
  | Idle -> "idle"
  | Shutdown -> "shutdown"
  | Stats -> "stats"

let make ~kind ?(flags = 0) ~src ~dst ?(seq = 0) payload =
  { hdr = { kind; flags; src; dst; seq }; payload }

let size f = 4 + header_bytes + String.length f.payload

let encode f =
  let plen = String.length f.payload in
  if plen > max_payload then invalid_arg "Frame.encode: payload exceeds max_payload";
  let len = header_bytes + plen in
  let b = Buffer.create (4 + len) in
  Buffer.add_int32_be b (Int32.of_int len);
  Buffer.add_uint8 b (kind_code f.hdr.kind);
  Buffer.add_uint8 b (f.hdr.flags land 0xFF);
  Buffer.add_uint8 b (f.hdr.src land 0xFF);
  Buffer.add_uint8 b (f.hdr.dst land 0xFF);
  Buffer.add_int32_be b (Int32.of_int (f.hdr.seq land 0xFFFFFFFF));
  Buffer.add_string b f.payload;
  Buffer.contents b

(* [body] is the [len] bytes following the length word. *)
let decode_body body =
  let blen = String.length body in
  if blen < header_bytes then err "truncated frame header: %d bytes" blen;
  let kind = kind_of_code (Char.code body.[0]) in
  let flags = Char.code body.[1] in
  let src = Char.code body.[2] in
  let dst = Char.code body.[3] in
  let seq = Int32.to_int (String.get_int32_be body 4) land 0xFFFFFFFF in
  { hdr = { kind; flags; src; dst; seq };
    payload = String.sub body header_bytes (blen - header_bytes) }

let check_len len =
  if len < header_bytes then err "frame length %d below header size %d" len header_bytes;
  if len > header_bytes + max_payload then
    err "frame length %d exceeds cap %d" len (header_bytes + max_payload)

let decode s =
  if String.length s < 4 then err "truncated frame: %d bytes" (String.length s);
  let len = Int32.to_int (String.get_int32_be s 0) land 0xFFFFFFFF in
  check_len len;
  if String.length s <> 4 + len then
    err "frame length %d disagrees with %d bytes present" len (String.length s - 4);
  decode_body (String.sub s 4 len)

(* Blocking IO: exactly one frame per read, no inter-frame buffering, so
   the fault-injection layer can reason frame-at-a-time. *)

let rec write_all fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)
  end

let write fd f =
  let s = encode f in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

(* Writev-style gather send: the frame header and the flat framing
   strings go out as-is, and each chunk payload is blitted from its
   Bigarray segments into one scratch buffer immediately before the
   syscall — the single payload copy the chunked plane budgets for.
   (Unix.write takes Bytes, so a userspace staging copy is the floor
   without C stubs; what this path avoids is the Buffer flattening
   that [encode] would do on top.) *)

let parts_size ps = 4 + header_bytes + Bin.parts_length ps

let write_parts fd ~kind ?(flags = 0) ~src ~dst ?(seq = 0) ps =
  let plen = Bin.parts_length ps in
  if plen > max_payload then invalid_arg "Frame.write_parts: payload exceeds max_payload";
  let b = Buffer.create (4 + header_bytes) in
  Buffer.add_int32_be b (Int32.of_int (header_bytes + plen));
  Buffer.add_uint8 b (kind_code kind);
  Buffer.add_uint8 b (flags land 0xFF);
  Buffer.add_uint8 b (src land 0xFF);
  Buffer.add_uint8 b (dst land 0xFF);
  Buffer.add_int32_be b (Int32.of_int (seq land 0xFFFFFFFF));
  let hdr = Buffer.contents b in
  write_all fd (Bytes.unsafe_of_string hdr) 0 (String.length hdr);
  List.iter
    (fun p ->
      match p with
      | Bin.Flat s -> write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)
      | Bin.Payload c ->
          let len = Eden_chunk.Chunk.length c in
          let scratch = Bytes.create len in
          Eden_chunk.Chunk.blit_to_bytes c ~src_pos:0 scratch ~dst_pos:0 ~len;
          write_all fd scratch 0 len)
    ps

let write_value fd ~kind ?flags ~src ~dst ?seq v =
  write_parts fd ~kind ?flags ~src ~dst ?seq (Bin.parts v)

let read_exact fd n ~at_boundary =
  let b = Bytes.create n in
  let got = ref 0 in
  while !got < n do
    let r = Unix.read fd b !got (n - !got) in
    if r = 0 then
      if at_boundary && !got = 0 then raise End_of_file
      else err "peer closed mid-frame (%d of %d bytes)" !got n;
    got := !got + r
  done;
  Bytes.unsafe_to_string b

let read fd =
  let lenw = read_exact fd 4 ~at_boundary:true in
  let len = Int32.to_int (String.get_int32_be lenw 0) land 0xFFFFFFFF in
  check_len len;
  decode_body (read_exact fd len ~at_boundary:false)

(* Handshake.  16-byte payload: magic u32, version u16, shard u8,
   pad u8, nonce u64 — a 28-byte frame each way. *)

let magic = 0x4544454El (* "EDEN" *)
let version = 1

let handshake_payload ~shard ~nonce =
  let b = Buffer.create 16 in
  Buffer.add_int32_be b magic;
  Buffer.add_uint16_be b version;
  Buffer.add_uint8 b (shard land 0xFF);
  Buffer.add_uint8 b 0;
  Buffer.add_int64_be b nonce;
  Buffer.contents b

let hello ~shard ~nonce =
  make ~kind:Hello ~src:shard ~dst:0 (handshake_payload ~shard ~nonce)

let welcome ~shard ~nonce =
  make ~kind:Welcome ~src:0 ~dst:shard (handshake_payload ~shard ~nonce)

let parse_handshake ~expect f =
  if f.hdr.kind <> expect then
    err "expected %s frame, got %s" (kind_name expect) (kind_name f.hdr.kind);
  let p = f.payload in
  if String.length p <> 16 then err "handshake payload %d bytes, want 16" (String.length p);
  let m = String.get_int32_be p 0 in
  if not (Int32.equal m magic) then err "bad handshake magic %#lx" m;
  let v = String.get_uint16_be p 4 in
  if v <> version then err "protocol version %d, want %d" v version;
  let shard = Char.code p.[6] in
  let nonce = String.get_int64_be p 8 in
  (shard, nonce)
