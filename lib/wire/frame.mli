(** Length-prefixed wire frames.

    Layout (all integers big-endian), modeled on the ASoc RFC-0001
    framing (tiny fixed header, length first so a reader can always
    take exactly one frame off the socket):

    {v
    +--------+------+-------+-----+-----+--------+=========+
    | len:u32| kind | flags | src | dst | seq:u32| payload |
    +--------+------+-------+-----+-----+--------+=========+
        4       1      1      1     1       4      len - 8
    v}

    [len] counts every byte after the length word itself (header tail +
    payload), so the minimum frame is 12 bytes on the wire.  [src] and
    [dst] are shard indices — the hub (shard 0) routes leaf-to-leaf
    frames by [dst].  [seq] carries the request id for [Request]/[Reply]
    and a sender sequence number for one-way traffic.

    The handshake is two 28-byte frames: the leaf sends [Hello]
    (magic, protocol version, shard index, run nonce), the hub answers
    [Welcome] echoing the nonce.  A version or magic mismatch is a
    [Value.Protocol_error], not a hang.

    Every decoder error path — truncated header, hostile length, unknown
    kind, short handshake — raises [Value.Protocol_error]. *)

module Value = Eden_kernel.Value

type kind = Hello | Welcome | Request | Reply | Idle | Shutdown | Stats

val kind_name : kind -> string

val kind_code : kind -> int
(** The wire byte for the kind — also what {!Auth} MACs cover, so a
    frame cannot be replayed as a different kind. *)

type header = { kind : kind; flags : int; src : int; dst : int; seq : int }
type t = { hdr : header; payload : string }

val flag_oneway : int
(** Flag bit 0: set on [Request] frames that expect no [Reply]. *)

val flag_auth : int
(** Flag bit 1: a [Hello]/[Welcome] carrying the {!Auth} three-layer
    extension (community id, keyed MAC, session token) after the
    16-byte base handshake payload. *)

val flag_mac : int
(** Flag bit 2: the payload ends in an 8-byte keyed MAC trailer sealed
    by {!Auth.seal}; strip with {!Auth.open_} before parsing. *)

val header_bytes : int
(** Bytes of header after the length word (8). *)

val max_payload : int
(** Hard cap on payload bytes (16 MiB); a length prefix above
    [header_bytes + max_payload] is rejected before any allocation. *)

val make : kind:kind -> ?flags:int -> src:int -> dst:int -> ?seq:int -> string -> t
val size : t -> int
(** Total bytes on the wire including the length word. *)

val encode : t -> string

val decode : string -> t
(** Decode exactly one whole frame (length word included).
    @raise Value.Protocol_error on any malformation. *)

(** {1 Blocking socket IO} *)

val write : Unix.file_descr -> t -> unit
(** Write one whole frame; handles short writes. *)

val write_parts :
  Unix.file_descr ->
  kind:kind ->
  ?flags:int ->
  src:int ->
  dst:int ->
  ?seq:int ->
  Bin.part list ->
  unit
(** Writev-style gather send of a frame whose payload is a {!Bin.parts}
    list: flat framing strings go out as-is and each chunk payload is
    blitted once, immediately before the syscall.  Byte-identical on
    the wire to [write (make ... (String.concat "" parts))]. *)

val write_value :
  Unix.file_descr ->
  kind:kind ->
  ?flags:int ->
  src:int ->
  dst:int ->
  ?seq:int ->
  Value.t ->
  unit
(** [write_parts] of [Bin.parts v] — one frame carrying one value with
    a single copy per chunk payload. *)

val parts_size : Bin.part list -> int
(** Total wire bytes (length word included) [write_parts] will emit for
    this payload — what the fault layer and meters charge for it. *)

val read : Unix.file_descr -> t
(** Read exactly one frame.
    @raise End_of_file on a clean close at a frame boundary.
    @raise Value.Protocol_error on a mid-frame close or malformed
    header. *)

(** {1 Handshake} *)

val magic : int32
val version : int

val hello : shard:int -> nonce:int64 -> t
val welcome : shard:int -> nonce:int64 -> t

val parse_handshake : expect:kind -> t -> int * int64
(** Validate a [Hello]/[Welcome] frame; returns (shard, nonce).
    @raise Value.Protocol_error on wrong kind, magic, version, or a
    short payload. *)
