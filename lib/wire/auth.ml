module Value = Eden_kernel.Value

let err fmt = Printf.ksprintf (fun m -> raise (Value.Protocol_error ("auth: " ^ m))) fmt

(* --- SipHash-2-4 ---------------------------------------------------- *)

(* Each 64-bit lane is two 32-bit limbs in native ints: every frame on
   an authenticated link pays one MAC over its whole payload, and boxed
   Int64 rounds (an allocation per arithmetic op) cost ~40% of wire
   throughput at batch 64.  Limb arithmetic fits 63-bit native ints
   (32-bit add carries one bit, 32-bit shifts stay under 45 bits) and
   allocates nothing in the compression loop. *)

let mask32 = 0xFFFFFFFF

type sip_state = {
  mutable v0h : int;
  mutable v0l : int;
  mutable v1h : int;
  mutable v1l : int;
  mutable v2h : int;
  mutable v2l : int;
  mutable v3h : int;
  mutable v3l : int;
}

(* One SipRound, fully straight-line over the limb record: immediate-int
   field stores have no write barrier, so a round allocates nothing. *)
let sipround st =
  let l = st.v0l + st.v1l in
  let v0l = l land mask32 in
  let v0h = (st.v0h + st.v1h + (l lsr 32)) land mask32 in
  let h = ((st.v1h lsl 13) lor (st.v1l lsr 19)) land mask32 in
  let v1l = ((st.v1l lsl 13) lor (st.v1h lsr 19)) land mask32 in
  let v1h = h lxor v0h in
  let v1l = v1l lxor v0l in
  (* v0 rotl 32: limb swap *)
  let t = v0h in
  let v0h = v0l in
  let v0l = t in
  let l = st.v2l + st.v3l in
  let v2l = l land mask32 in
  let v2h = (st.v2h + st.v3h + (l lsr 32)) land mask32 in
  let h = ((st.v3h lsl 16) lor (st.v3l lsr 16)) land mask32 in
  let v3l = ((st.v3l lsl 16) lor (st.v3h lsr 16)) land mask32 in
  let v3h = h lxor v2h in
  let v3l = v3l lxor v2l in
  let l = v0l + v3l in
  let v0l = l land mask32 in
  let v0h = (v0h + v3h + (l lsr 32)) land mask32 in
  let h = ((v3h lsl 21) lor (v3l lsr 11)) land mask32 in
  let v3l = ((v3l lsl 21) lor (v3h lsr 11)) land mask32 in
  let v3h = h lxor v0h in
  let v3l = v3l lxor v0l in
  let l = v2l + v1l in
  let v2l = l land mask32 in
  let v2h = (v2h + v1h + (l lsr 32)) land mask32 in
  let h = ((v1h lsl 17) lor (v1l lsr 15)) land mask32 in
  let v1l = ((v1l lsl 17) lor (v1h lsr 15)) land mask32 in
  let v1h = h lxor v2h in
  let v1l = v1l lxor v2l in
  st.v0h <- v0h;
  st.v0l <- v0l;
  st.v1h <- v1h;
  st.v1l <- v1l;
  (* v2 rotl 32: limb swap *)
  st.v2h <- v2l;
  st.v2l <- v2h;
  st.v3h <- v3h;
  st.v3l <- v3l

let sip_compress st mh ml =
  st.v3h <- st.v3h lxor mh;
  st.v3l <- st.v3l lxor ml;
  sipround st;
  sipround st;
  st.v0h <- st.v0h lxor mh;
  st.v0l <- st.v0l lxor ml

(* Unboxed little-endian 32-bit load (String.get_int32_le boxes). *)
let limb s i =
  Char.code (String.unsafe_get s i)
  lor (Char.code (String.unsafe_get s (i + 1)) lsl 8)
  lor (Char.code (String.unsafe_get s (i + 2)) lsl 16)
  lor (Char.code (String.unsafe_get s (i + 3)) lsl 24)

let sip_init ~key =
  if String.length key <> 16 then invalid_arg "Auth.siphash: key must be 16 bytes";
  let k0l = limb key 0 and k0h = limb key 4 in
  let k1l = limb key 8 and k1h = limb key 12 in
  {
    v0h = k0h lxor 0x736f6d65;
    v0l = k0l lxor 0x70736575;
    v1h = k1h lxor 0x646f7261;
    v1l = k1l lxor 0x6e646f6d;
    v2h = k0h lxor 0x6c796765;
    v2l = k0l lxor 0x6e657261;
    v3h = k1h lxor 0x74656462;
    v3l = k1l lxor 0x79746573;
  }

(* Feed [msg] whole 8-byte words; [base] is the byte count already fed
   (for a prefix), which must be a multiple of 8. *)
let sip_body st msg =
  let full = String.length msg / 8 in
  for i = 0 to full - 1 do
    sip_compress st (limb msg ((i * 8) + 4)) (limb msg (i * 8))
  done;
  full * 8

let sip_finish st msg ~tail_at ~total_len =
  let len = String.length msg in
  let lh = ref ((total_len land 0xFF) lsl 24) and ll = ref 0 in
  for i = 0 to len - tail_at - 1 do
    let byte = Char.code (String.unsafe_get msg (tail_at + i)) in
    if i < 4 then ll := !ll lor (byte lsl (8 * i)) else lh := !lh lor (byte lsl (8 * (i - 4)))
  done;
  sip_compress st !lh !ll;
  st.v2l <- st.v2l lxor 0xFF;
  sipround st;
  sipround st;
  sipround st;
  sipround st;
  let h = st.v0h lxor st.v1h lxor st.v2h lxor st.v3h
  and l = st.v0l lxor st.v1l lxor st.v2l lxor st.v3l in
  Int64.logor
    (Int64.shift_left (Int64.of_int h) 32)
    (Int64.logand (Int64.of_int l) 0xFFFFFFFFL)

let siphash ~key msg =
  let st = sip_init ~key in
  let tail_at = sip_body st msg in
  sip_finish st msg ~tail_at ~total_len:(String.length msg)

(* [siphash] of [prefix ^ msg] without materializing the concatenation —
   what the per-frame MAC uses, so sealing never copies the payload just
   to hash it.  [prefix] must be a whole number of 8-byte words. *)
let siphash_prefixed ~key ~prefix msg =
  assert (String.length prefix land 7 = 0);
  let st = sip_init ~key in
  ignore (sip_body st prefix);
  let tail_at = sip_body st msg in
  sip_finish st msg ~tail_at ~total_len:(String.length prefix + String.length msg)

(* --- Communities ---------------------------------------------------- *)

type community = { id : int64; key : string }

let community ~id ~key =
  if String.length key <> 16 then invalid_arg "Auth.community: key must be 16 bytes";
  { id; key }

(* --- Handshake ------------------------------------------------------ *)

(* Authenticated handshake payload, 40 bytes: the 16-byte base
   (magic u32, version u16, shard u8, pad, nonce u64), then
   community id u64, session token u64, MAC u64.  The MAC covers the
   frame kind and routing bytes plus everything before itself, under
   the community key — layer 2 sealing layers 1 and 3. *)

let auth_payload_bytes = 40

let handshake_mac c ~kind ~src ~dst body32 =
  let b = Buffer.create 36 in
  Buffer.add_uint8 b (Frame.kind_code kind);
  Buffer.add_uint8 b (src land 0xFF);
  Buffer.add_uint8 b (dst land 0xFF);
  Buffer.add_string b body32;
  siphash ~key:c.key (Buffer.contents b)

let handshake c ~kind ~src ~dst ~shard ~nonce ~token =
  let b = Buffer.create auth_payload_bytes in
  Buffer.add_int32_be b Frame.magic;
  Buffer.add_uint16_be b Frame.version;
  Buffer.add_uint8 b (shard land 0xFF);
  Buffer.add_uint8 b 0;
  Buffer.add_int64_be b nonce;
  Buffer.add_int64_be b c.id;
  Buffer.add_int64_be b token;
  let body32 = Buffer.contents b in
  Buffer.add_int64_be b (handshake_mac c ~kind ~src ~dst body32);
  Frame.make ~kind ~flags:Frame.flag_auth ~src ~dst (Buffer.contents b)

let hello c ~shard ~nonce =
  handshake c ~kind:Frame.Hello ~src:shard ~dst:0 ~shard ~nonce ~token:0L

let welcome c ~shard ~nonce ~token =
  handshake c ~kind:Frame.Welcome ~src:0 ~dst:shard ~shard ~nonce ~token

let mint_token c ~shard ~nonce =
  let b = Buffer.create 17 in
  Buffer.add_string b "session.";
  Buffer.add_uint8 b (shard land 0xFF);
  Buffer.add_int64_be b nonce;
  siphash ~key:c.key (Buffer.contents b)

(* Shared field parse for both directions; every failure is a result,
   never an exception — a hostile handshake must not crash the shard. *)
let parse_auth_handshake ~expect f =
  let { Frame.kind; flags; src; dst; seq = _ } = f.Frame.hdr in
  let p = f.Frame.payload in
  if kind <> expect then Error (Printf.sprintf "expected %s frame" (Frame.kind_name expect))
  else if flags land Frame.flag_auth = 0 then Error "unauthenticated handshake"
  else if String.length p <> auth_payload_bytes then
    Error (Printf.sprintf "auth handshake payload %d bytes, want %d" (String.length p)
             auth_payload_bytes)
  else if not (Int32.equal (String.get_int32_be p 0) Frame.magic) then Error "bad magic"
  else if String.get_uint16_be p 4 <> Frame.version then Error "bad version"
  else
    let shard = Char.code p.[6] in
    let nonce = String.get_int64_be p 8 in
    let cid = String.get_int64_be p 16 in
    let token = String.get_int64_be p 24 in
    let mac = String.get_int64_be p 32 in
    Ok (src, dst, shard, nonce, cid, token, mac, String.sub p 0 32)

let verify_hello ~lookup f =
  match parse_auth_handshake ~expect:Frame.Hello f with
  | Error _ as e -> e
  | Ok (src, dst, shard, nonce, cid, _token, mac, body32) -> (
      match lookup cid with
      | None -> Error (Printf.sprintf "unknown community %Ld" cid)
      | Some c ->
          if not (Int64.equal mac (handshake_mac c ~kind:Frame.Hello ~src ~dst body32))
          then Error "hello MAC mismatch"
          else Ok (shard, nonce, c))

let verify_welcome c ~expect_nonce f =
  match parse_auth_handshake ~expect:Frame.Welcome f with
  | Error _ as e -> e
  | Ok (src, dst, _shard, nonce, cid, token, mac, body32) ->
      if not (Int64.equal cid c.id) then Error "welcome for another community"
      else if not (Int64.equal mac (handshake_mac c ~kind:Frame.Welcome ~src ~dst body32))
      then Error "welcome MAC mismatch"
      else if not (Int64.equal nonce expect_nonce) then Error "welcome nonce mismatch"
      else Ok token

(* --- Data-frame sealing --------------------------------------------- *)

type session = {
  skey : string;
  token : int64;
  mutable send_ctr : int;
  mutable recv_ctr : int;
}

let session c ~token = { skey = c.key; token; send_ctr = 0; recv_ctr = 0 }
let sent s = s.send_ctr
let received s = s.recv_ctr

let frame_mac s ~ctr (f : Frame.t) =
  let h = f.Frame.hdr in
  (* 24-byte prefix (a whole number of sip words), so the payload is
     hashed in place rather than copied into a scratch buffer. *)
  let b = Buffer.create 24 in
  Buffer.add_int64_be b s.token;
  Buffer.add_int64_be b (Int64.of_int ctr);
  Buffer.add_uint8 b (Frame.kind_code h.kind);
  Buffer.add_uint8 b (h.flags land lnot Frame.flag_mac land 0xFF);
  Buffer.add_uint8 b (h.src land 0xFF);
  Buffer.add_uint8 b (h.dst land 0xFF);
  Buffer.add_int32_be b (Int32.of_int h.seq);
  siphash_prefixed ~key:s.skey ~prefix:(Buffer.contents b) f.Frame.payload

let seal s f =
  let mac = frame_mac s ~ctr:s.send_ctr f in
  s.send_ctr <- s.send_ctr + 1;
  let plen = String.length f.Frame.payload in
  let b = Bytes.create (plen + 8) in
  Bytes.blit_string f.Frame.payload 0 b 0 plen;
  Bytes.set_int64_be b plen mac;
  {
    Frame.hdr = { f.Frame.hdr with flags = f.Frame.hdr.flags lor Frame.flag_mac };
    payload = Bytes.unsafe_to_string b;
  }

let replay_window = 64

let open_ s f =
  let h = f.Frame.hdr in
  if h.flags land Frame.flag_mac = 0 then err "unsealed frame on an authenticated link";
  let plen = String.length f.Frame.payload in
  if plen < 8 then err "sealed frame too short for its MAC trailer";
  let mac = String.get_int64_be f.Frame.payload (plen - 8) in
  let stripped =
    {
      Frame.hdr = { h with flags = h.flags land lnot Frame.flag_mac };
      payload = String.sub f.Frame.payload 0 (plen - 8);
    }
  in
  if Int64.equal mac (frame_mac s ~ctr:s.recv_ctr stripped) then begin
    s.recv_ctr <- s.recv_ctr + 1;
    stripped
  end
  else begin
    (* Distinguish a replay (MAC good under an earlier counter) from
       corruption or forgery: the meters and the operator want to know. *)
    let lo = max 0 (s.recv_ctr - replay_window) in
    let rec scan c =
      if c >= s.recv_ctr then err "frame MAC mismatch"
      else if Int64.equal mac (frame_mac s ~ctr:c stripped) then
        err "replayed frame (counter %d, expected %d)" c s.recv_ctr
      else scan (c + 1)
    in
    scan lo
  end
