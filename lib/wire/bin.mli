(** Byte-level binary codec for {!Eden_kernel.Value.t}.

    The simulated kernel moves [Value.t] trees by reference; the wire
    moves bytes.  This codec is the bridge: a compact tagged binary
    form whose sizes match [Value.size] exactly (1 byte for unit, 1+1
    for bool, 1+8 for int/float, 1+4+len for strings and chunks, 1+16
    for UIDs, 1+4+elements for lists — the leading tag byte is the
    only overhead), so the simulated latency model and the real
    transport agree on what a value costs.

    Decoding is strict and hostile-input safe:
    - every length/count is bounds-checked against the bytes actually
      present {e before} any allocation, so a forged 4 GiB length
      prefix costs nothing;
    - nesting is capped at {!max_depth} (no stack overflow from a
      crafted list-of-list chain);
    - {!decode} consumes the whole string — trailing bytes are a
      protocol violation, not silently ignored;
    - every failure raises [Value.Protocol_error] with a bounded
      message. *)

module Value = Eden_kernel.Value

val max_depth : int
(** Maximum [List] nesting accepted by the decoder (200). *)

val to_buffer : Buffer.t -> Value.t -> unit
val encode : Value.t -> string

(** {1 Gather encoding}

    [Chunk] payloads are big and already flat; flattening them through
    a [Buffer] would copy each payload twice before the socket sees it.
    {!parts} produces the same byte stream as {!encode} but keeps every
    chunk payload as a live reference, so a writer can emit the flat
    header strings as-is and blit each payload straight into the
    syscall ({!Frame.write_parts}). *)

type part =
  | Flat of string  (** tag/length framing and non-chunk values *)
  | Payload of Eden_chunk.Chunk.t  (** raw chunk bytes, by reference *)

val parts : Value.t -> part list
(** [String.concat "" (flattened parts v) = encode v]. *)

val part_length : part -> int
val parts_length : part list -> int

val decode : string -> Value.t
(** Decode exactly one value spanning the whole string.
    @raise Value.Protocol_error on truncation, trailing bytes, unknown
    tags, hostile lengths/counts, or over-deep nesting. *)

val decode_prefix : string -> pos:int -> Value.t * int
(** Decode one value starting at [pos]; returns the value and the
    position just past it.  Same error discipline as {!decode} except
    trailing bytes are the caller's business. *)
