(** Fault injection at the framing layer.

    The simulated [Net] expresses drop/delay/partition faults; on the
    real transport the equivalent hook sits between frame construction
    and [Unix.write].  A [Faults.t] consumes one scripted event per
    data frame offered and returns the action to take, charging the
    same meter buckets as the simulator so chaos tables line up:

    - a frame offered before the link's handshake completed, or while
      the injector is partitioned, is dropped and charged to
      [dropped_partition] {e without} consuming a script event — it
      never reached the medium, exactly the [Net] handshake-boundary
      rule;
    - a [Lose] event drops the frame and charges [dropped_loss];
    - a [Cut] event drops it and charges [dropped_partition];
    - a [Slow d] event delivers after sleeping [d] seconds.

    Scripts come from explicit lists or from an [Eden_check] replay
    trace via {!of_events}: the n-th net.loss decision in the trace
    governs the n-th data frame on the wire, which is what lets a
    minimized replay file found in simulation reproduce on sockets. *)

module Net = Eden_net.Net

type action = Pass | Drop | Delay of float
type event = Ok | Lose | Cut | Slow of float

type t

val none : unit -> t
(** Clean link: every frame passes (an exhausted script also passes). *)

val of_script : event list -> t

val of_events : (string * int) list -> t
(** Build a script from an [Eden_check] trace's (kind, value) stream —
    picks and notes alike.  ["net.loss"] with value 1 becomes [Lose],
    value 0 becomes [Ok]; ["net.partition"] with value 1 becomes [Cut]
    (folded into the preceding loss event when the simulator emitted
    both for one frame); other kinds are ignored. *)

val partition : t -> unit
(** Cut the link until {!heal}: every offered frame drops to
    [dropped_partition], consuming no script events. *)

val heal : t -> unit

val apply : ?authenticated:bool -> t -> established:bool -> size:int -> action
(** Offer one data frame of [size] wire bytes.  Returns the action and
    updates the meter.  [authenticated] (default [true], the plain
    path) extends the handshake-boundary rule to the {!Auth} exchange:
    a frame offered on an established but not-yet-authenticated link
    drops to [dropped_partition] without consuming a script event,
    exactly like a pre-establishment frame. *)

val meter : t -> Net.meter
(** Same shape as the simulator's meter: [sent] counts offered frames,
    [delivered]/[dropped_loss]/[dropped_partition] how they fared,
    [bytes] the offered wire bytes. *)

val remaining : t -> int
(** Script events not yet consumed. *)
