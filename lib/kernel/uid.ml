(* [tag] is stored as a native 63-bit int rather than a boxed [int64]:
   a UID is then one 3-word block (header, tag, serial) instead of a
   record plus a custom int64 block, which matters when a million
   dormant Ejects each hold one.  The wire codec widens back to int64;
   both shard processes truncate identically, so wire round-trips are
   exact.  The printable form and [hash] only ever used the low bits,
   which truncation preserves. *)
type t = { tag : int; serial : int }

(* The generator is shared by everything that mints UIDs against one
   kernel; under the parallel runtime a kernel's domain and the spawning
   domain may both reach it, so [fresh] is serialised by a mutex.  The
   lock is uncontended in the single-domain simulator and costs a few
   nanoseconds. *)
type gen = { mu : Mutex.t; prng : Eden_util.Prng.t; mutable next : int }

let generator ~seed = { mu = Mutex.create (); prng = Eden_util.Prng.create seed; next = 0 }

let fresh g =
  Mutex.protect g.mu (fun () ->
      let serial = g.next in
      g.next <- serial + 1;
      { tag = Int64.to_int (Eden_util.Prng.next_int64 g.prng); serial })

let equal a b = a.serial = b.serial && a.tag = b.tag
let compare a b =
  let c = Int.compare a.serial b.serial in
  if c <> 0 then c else Int.compare a.tag b.tag

let hash a = a.serial lxor a.tag
let serial a = a.serial

let to_wire a = (Int64.of_int a.tag, a.serial)
let of_wire ~tag ~serial = { tag = Int64.to_int tag; serial }

let to_string a = Printf.sprintf "E#%04x.%d" (a.tag land 0xFFFF) a.serial

let pp ppf a = Format.pp_print_string ppf (to_string a)

module Key = struct
  type nonrec t = t

  let equal = equal
  let compare = compare
  let hash = hash
end

module Tbl = Hashtbl.Make (Key)
module Set = Set.Make (Key)
module Map = Map.Make (Key)
