(** The kernel's UID-keyed Eject table, flattened.

    A {!Eden_util.Slab} holds the payloads; a dense [serial -> handle]
    int array turns a UID into a slab handle in O(1).  Serials are
    minted densely (see {!Uid.serial}) so the index is a direct map,
    not a hash table: lookup is two array reads plus a UID equality
    check, and the GC sees two flat arrays instead of a bucket chain
    per Eject.

    The UID check is what keeps capabilities sound: a foreign kernel's
    UID can collide on serial (each kernel mints from 0) and a
    destroyed Eject's slot may be recycled, but in both cases the
    stored UID's random tag differs, so [find] misses.  Stale UIDs
    fail lookup; they never alias a later resident. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> uid_of:('a -> Uid.t) -> unit -> 'a t
(** [dummy] fills empty cells (never returned); [uid_of] projects the
    key stored alongside each payload, checked on every lookup. *)

val add : 'a t -> 'a -> unit
(** Registers [uid_of v].  @raise Invalid_argument on a duplicate
    serial — one generator feeds one store, so a collision is a bug. *)

val find : 'a t -> Uid.t -> 'a option
(** O(1).  [None] for never-registered, removed, or foreign UIDs. *)

val mem : 'a t -> Uid.t -> bool

val remove : 'a t -> Uid.t -> bool
(** Physically frees the slot (the slab recycles it) and clears the
    serial index entry.  [false] when [find] would have missed. *)

val live : 'a t -> int

val iter : ('a -> unit) -> 'a t -> unit
(** Live entries in ascending slab-slot order — deterministic, a
    function of the alloc/free history only. *)
