(** The Eden kernel simulation: Ejects and invocations.

    An Eject (§1 of the paper) is an active entity with a unique
    unforgeable {!Uid.t}, a concrete type (a dispatch table of named
    operations), its own processes (fibers), and the ability to
    [checkpoint] a passive representation to stable storage.  Ejects may
    be passive; invoking a passive Eject activates it, reconstructing
    its state from its last checkpoint.

    Invocation is a location-independent request/reply: the invoker
    names a UID and an operation, the kernel routes the request over the
    simulated network, the target's coordinator process dispatches it,
    and the reply travels back.  The identity of the invoker is {e
    deliberately not} made available to the handler — the paper (§5)
    argues the effect of an invocation must depend only on its
    parameters, and the channel-capability security experiment depends
    on this.

    The kernel meters every invocation; those counters are the
    instrument behind each reproduced table. *)

exception Eden_error of string
(** Raised by operation handlers to signal a clean application-level
    error; delivered to the invoker as [Error message]. *)

type t
type ctx
(** Capability handed to an Eject's own code: identifies the Eject and
    lets it invoke others, spawn worker processes, checkpoint,
    deactivate or destroy itself. *)

type reply = (Value.t, string) result

type handler = Value.t -> Value.t
(** Operation implementation: argument in, reply out.  May block (invoke
    other Ejects, wait on internal channels); raise {!Eden_error} for a
    clean error reply. *)

type behaviour = ctx -> passive:Value.t option -> (string * handler) list
(** The Eden "type-code".  Called at each activation with the latest
    checkpointed passive representation (or [None] on first activation /
    after a crash that preceded any checkpoint); returns the dispatch
    table.  May call {!spawn_worker} to start background processes. *)

(** Whether an Eject serves invocations one at a time (default —
    deterministic, and the right semantics for stream Ejects) or spawns
    a worker per invocation. *)
type dispatch = Serial | Concurrent

(** {1 Kernel lifecycle} *)

val create :
  ?seed:int64 ->
  ?latency:Eden_net.Net.latency ->
  ?nodes:string list ->
  ?trace_capacity:int ->
  ?span_capacity:int ->
  unit ->
  t
(** A kernel with its own scheduler, network and observability
    collector.  [nodes] (default one node ["node-0"]) are created in
    order; node 0 also hosts external drivers.  [trace_capacity]
    (default 4096) bounds the {!Trace} ring buffer; [span_capacity]
    bounds completed-span storage (see {!Eden_obs.Obs.create}). *)

val sched : t -> Eden_sched.Sched.t
val net : t -> Eden_net.Net.t
val nodes : t -> Eden_net.Net.node_id list

val obs : t -> Eden_obs.Obs.t
(** The kernel's observability collector: histograms are always fed
    (round-trip latency per op as ["rtt.<op>"], network delay/size);
    spans are recorded only after [Obs.enable_spans]. *)

val run : t -> unit
(** Drives the simulation to quiescence and re-raises the first fiber
    failure, if any. *)

val run_driver : t -> (ctx -> unit) -> unit
(** Spawns [f] as a driver fiber on node 0 with an external context,
    then {!run}s to quiescence.  The standard way to execute an
    experiment. *)

val spawn_driver : t -> ?name:string -> (ctx -> unit) -> unit
(** Registers [f] as a driver fiber without running the scheduler —
    the building block behind {!run_driver}, for callers that drive the
    scheduler themselves (several drivers, interleaved [step]s, or the
    parallel runtime's per-shard pump loop). *)

(** {1 Ejects} *)

val create_eject :
  t ->
  ?node:Eden_net.Net.node_id ->
  ?dispatch:dispatch ->
  type_name:string ->
  behaviour ->
  Uid.t
(** Registers a new (initially passive) Eject and returns its UID. *)

val exists : t -> Uid.t -> bool
val is_active : t -> Uid.t -> bool
val type_name : t -> Uid.t -> string option
val live_ejects : t -> int
(** Created and not destroyed. *)

val poke : t -> Uid.t -> unit
(** Management-plane activation: ensures the Eject is active (its
    behaviour installed, its workers running) without sending it an
    invocation.  Used to start the pumping end of a pipeline — the
    paper's "connecting a terminal to a filter is rather like starting a
    pump" — without perturbing the data-plane invocation counts that the
    experiments measure.  @raise Invalid_argument on unknown or
    destroyed UIDs. *)

val crash : t -> Uid.t -> unit
(** Simulated failure: cancels the Eject's processes, discards volatile
    state and pending messages.  The Eject is passive afterwards and
    reactivates from its last checkpoint on the next invocation.
    No-op on unknown/destroyed UIDs. *)

val checkpoints : t -> Uid.t -> (float * Value.t) list
(** All checkpointed passive representations, newest first, with their
    virtual timestamps. *)

val crash_count : t -> Uid.t -> int
(** How many times the Eject has been [crash]ed.  Readable without
    invoking it (and so without reactivating it) — a supervisor's
    crash-detection probe.  0 for unknown UIDs. *)

val received : t -> Uid.t -> int
(** Invocations the Eject's coordinator has dispatched ([Invoke]
    messages only — internal stop signals are not traffic).  0 for
    unknown UIDs. *)

val worker_count : t -> Uid.t -> int
(** Live fibers (coordinator + workers) currently owned by the Eject;
    0 when passive, destroyed or unknown.  Finished workers are pruned
    eagerly. *)

val owner_of_fiber : t -> Eden_sched.Sched.fiber_id -> Uid.t option
(** Which Eject a live fiber belongs to; [None] for driver fibers and
    fibers that have finished.  The structured replacement for
    matching fiber names against Eject types. *)

type guard =
  dst:Uid.t ->
  op:string ->
  Value.t ->
  (Value.t * (reply -> unit) option, string) result
(** Destination-side admission control, the hook a tenant registry
    installs (ROADMAP item 2).  Runs at dispatch — after {!Estore}
    verified the destination UID, before the coordinator sees the
    invocation, and before a passive Eject would be activated, so a
    refused invocation cannot wake a dormant victim.  [Error msg]
    refuses: the invoker gets [Error msg] as its reply (metered and
    traced like any reply) and the handler never runs.  [Ok (arg',
    done_cb)] admits, dispatching [arg'] in place of the original
    argument — this is where a capability channel id is rewritten to
    the private underlying channel — and, when [done_cb] is [Some f],
    runs [f reply] the moment the handler replies (accounting for
    outstanding demand).  The guard never learns the invoker's
    identity: per the paper (§5) handlers cannot either, so
    authentication rides in the argument (session tokens), not in
    ambient kernel state. *)

val set_guard : t -> guard option -> unit
(** Install or remove the admission guard ([None] — the default —
    admits everything, costs nothing). *)

val set_quiesced : t -> Uid.t -> bool -> unit
(** Mark an Eject as deliberately idle — draining, fenced or parked by
    an elastic reconfiguration.  Stall detectors
    ({!Eden_core.Pipeline.stall_report}) skip fibers owned by quiesced
    Ejects, so a stage that is {e supposed} to sit blocked while its
    channels are handed elsewhere does not read as a hang.  Cleared by
    {!crash}: a crashed stage is no longer deliberately anything.
    No-op on unknown/destroyed UIDs. *)

val is_quiesced : t -> Uid.t -> bool
(** Whether {!set_quiesced} is in effect; [false] for unknown or
    destroyed UIDs. *)

val with_transport_wait : ctx -> (unit -> 'a) -> 'a
(** Run [f] with the calling Eject marked as blocked on transport — a
    socket round-trip to a remote shard is in flight on its behalf.
    Stall detectors treat this like {!set_quiesced}: the Eject's
    blocked fibers are expected, not stalled.  Counted (nested waits
    stack); cleared on return, on raise, and by {!crash}.  No-op from
    a driver context. *)

val in_transport_wait : t -> Uid.t -> bool
(** Whether any {!with_transport_wait} is in flight for this Eject;
    [false] for unknown or destroyed UIDs. *)

(** {1 Invoking (from Eject code or drivers)} *)

val invoke : ctx -> Uid.t -> op:string -> Value.t -> reply
(** Synchronous invocation; blocks the calling fiber for the full
    request/reply round trip. *)

val invoke_async : ctx -> Uid.t -> op:string -> Value.t -> reply Eden_sched.Ivar.t
(** The sending Eject is free to perform other tasks (§1); read the ivar
    when the reply is needed. *)

val invoke_timeout : ctx -> Uid.t -> op:string -> Value.t -> timeout:float -> reply option
(** [None] if no reply arrives in the given virtual-time window (lost
    message, crashed or partitioned target).  On timeout the reply slot
    is sealed: a reply arriving later is discarded rather than left
    filling an ivar nobody reads, and the abandoned waiter is removed
    from the blocked-fiber report. *)

val timeouts : t -> int
(** Total [invoke_timeout] calls that expired without a reply. *)

val call : ctx -> Uid.t -> op:string -> Value.t -> Value.t
(** [invoke] that raises {!Eden_error} on an [Error] reply.  The usual
    form inside protocol code. *)

val with_span : ctx -> ?cat:string -> name:string -> (unit -> 'a) -> 'a
(** Runs [f] under a user-level span bound to the current fiber, so
    invocations issued inside become its children in the exported
    invocation tree.  A no-op (beyond calling [f]) when spans are
    disabled or outside a fiber.  [cat] defaults to ["user"]. *)

(** {1 Eject self-operations (inside handlers / workers)} *)

val self : ctx -> Uid.t
val kernel : ctx -> t

val spawn_worker : ctx -> ?name:string -> (unit -> unit) -> unit
(** A background process belonging to this Eject; cancelled when the
    Eject deactivates, is destroyed, or crashes. *)

val checkpoint : ctx -> Value.t -> unit
(** Writes a passive representation to stable storage (§1); survives
    [crash].  Values may carry UIDs, so capabilities survive recovery
    without ever being exposed as forgeable strings. *)

val last_checkpoint : ctx -> Value.t option

val mint : ctx -> Uid.t
(** A fresh unforgeable UID that names no Eject — a capability token,
    e.g. a secure channel identifier (§5). *)

val deactivate : ctx -> unit
(** Graceful self-deactivation after the current invocation completes.
    State is rebuilt from the last checkpoint at next activation. *)

val destroy : ctx -> unit
(** Self-destruction, like the bootstrap [UnixFile] Ejects that
    deactivate without ever checkpointing and disappear (§7).  Later
    invocations get [Error "no such eject"]. *)

(** {1 Metering} *)

module Meter : sig
  type snapshot = {
    invocations : int;  (** invocations issued *)
    replies : int;  (** replies sent by handlers *)
    activations : int;
    ejects_created : int;
    ejects_live : int;
    crashes : int;
    timeouts : int;  (** [invoke_timeout] expiries *)
    net : Eden_net.Net.meter;
  }

  val snapshot : t -> snapshot
  val diff : snapshot -> snapshot -> snapshot
  (** Counter-wise subtraction (for [ejects_live], the later value is
      kept: it is a gauge, not a counter). *)

  val zero : snapshot

  val add : snapshot -> snapshot -> snapshot
  (** Counter-wise sum, for aggregating the meters of disjoint kernels
      (e.g. the parallel runtime's per-domain shards).  [ejects_live]
      sums too: the kernels share no Ejects. *)

  val pp : Format.formatter -> snapshot -> unit
end

val op_counts : t -> (string * int) list
(** Invocations issued per operation name, sorted by name. *)

(** {1 Tracing}

    An optional in-kernel event log for debugging and for tests that
    assert interaction sequences.  Disabled (and free) by default.
    Storage is a bounded ring: once full, the oldest events are
    evicted and counted in [dropped]. *)

module Trace : sig
  type event =
    | Invoked of { op : string; dst : Uid.t; at : float }
    | Replied of { op : string; dst : Uid.t; ok : bool; at : float }
    | Activated of { uid : Uid.t; etype : string; at : float }
    | Checkpointed of { uid : Uid.t; at : float }
    | Crashed of { uid : Uid.t; at : float }
    | Destroyed of { uid : Uid.t; at : float }

  val enable : t -> unit
  val disable : t -> unit

  val clear : t -> unit
  (** Empties the ring and resets [dropped]. *)

  val events : t -> event list
  (** Oldest retained first. *)

  val dropped : t -> int
  (** Events evicted from the ring since creation / last [clear]. *)

  val capacity : t -> int

  val set_capacity : t -> int -> unit
  (** Re-sizes the ring, keeping the newest events that fit (evictions
      count into [dropped]).  @raise Invalid_argument on non-positive
      capacity. *)

  val pp_event : Format.formatter -> event -> unit

  val ops : t -> string list
  (** Just the operation names of [Invoked] events, oldest first — the
      common shape for sequence assertions. *)
end
