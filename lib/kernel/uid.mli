(** Unique unforgeable identifiers for Ejects.

    A UID is the only way to name an Eject (the paper, §1).  The type is
    abstract and fresh values can only be minted through a [gen] held by
    the kernel, which is what makes them capabilities: user code can
    pass them around and compare them but never invent one.  The random
    tag means UIDs are not guessable even across kernels. *)

type t

type gen

val generator : seed:int64 -> gen

val fresh : gen -> t
(** Mint the next UID.  Domain-safe: the generator serialises minting
    internally, so a kernel's owning domain and the topology-building
    domain may share one [gen]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val serial : t -> int
(** Position in the minting order of the generator that made this UID:
    dense, monotone, starting at 0.  The kernel's flat Eject store uses
    it as a direct array index.  Not a capability — naming an Eject
    still requires the full UID, tag included. *)

val to_wire : t -> int64 * int
(** [(tag, serial)] for the wire codec.  Transport use only: the pair
    round-trips a UID between shard processes forked from one topology
    build, where both sides already hold the capability.  It does not
    weaken unforgeability — the 64-bit random tag still has to match the
    receiving kernel's table. *)

val of_wire : tag:int64 -> serial:int -> t
(** Inverse of {!to_wire}; a reconstructed UID names an Eject only if
    the receiving kernel minted the identical (tag, serial). *)

val to_string : t -> string
(** Short printable form like ["E#0f3a.17"]; stable for a given UID. *)

val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
