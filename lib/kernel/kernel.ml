module Sched = Eden_sched.Sched
module Ivar = Eden_sched.Ivar
module Mailbox = Eden_sched.Mailbox
module Net = Eden_net.Net
module Obs = Eden_obs.Obs
module Ring = Eden_util.Ring

exception Eden_error of string

type reply = (Value.t, string) result

type handler = Value.t -> Value.t

type dispatch = Serial | Concurrent

(* A message in an Eject's coordinator mailbox.  [Stop] is the internal
   poison pill used by deactivate/destroy to unblock the coordinator.
   [span] is the observability span opened by the invoking side; the
   handler runs with it bound so nested invocations become children. *)
type message =
  | Invoke of { op : string; arg : Value.t; span : int option; reply_to : reply -> unit }
  | Stop

type runtime = {
  mailbox : message Mailbox.t;
  mutable worker_fids : int list;
  handlers : (string, handler) Hashtbl.t;
  mutable stopping : bool;
}

type eject_state = Active of runtime | Passive | Destroyed

(* A dormant Eject is this record, its UID, one slab cell and one index
   word — roughly a hundred bytes — which is what makes a million idle
   producers affordable (experiment S1 measures the real figure).  The
   booleans and small counters share one [flags] word:

     bit 0       Concurrent dispatch
     bit 1       quiesced — deliberately idle (draining, fenced,
                 parked): fibers blocked on behalf of a quiesced Eject
                 are expected, so stall detectors skip them.  Cleared
                 by [crash] — a crashed stage is no longer deliberately
                 anything.
     bits 2-21   crash count
     bits 22-61  transport waits — fibers of this Eject currently
                 blocked on a remote shard's wire (socket round-trip in
                 flight): like quiesced, expected blocking that stall
                 detectors must not flag.  A counter, not a flag —
                 several workers can be in transit at once.  Reset by
                 [crash]. *)
type eject = {
  uid : Uid.t;
  node : Net.node_id;
  etype : string;
  mutable state : eject_state;
  mutable versions : (float * Value.t) list; (* checkpoints, newest first *)
  mutable received : int;
  mutable flags : int;
  behaviour : behaviour;
}

and t = {
  sched : Sched.t;
  net : Net.t;
  uid_gen : Uid.gen;
  ejects : eject Estore.t;
  node_ids : Net.node_id list;
  per_op : (string, int) Hashtbl.t;
  mutable invocations : int;
  mutable replies : int;
  mutable activations : int;
  mutable ejects_created : int;
  mutable ejects_destroyed : int;
  mutable crashes : int;
  mutable timeouts : int;
  mutable tracing : bool;
  mutable trace_log : trace_event Ring.t;
  mutable trace_dropped : int;
  obs : Obs.t;
  (* Which Eject a fiber belongs to (coordinator and workers), and the
     span currently bound to a fiber (for span parentage).  Entries are
     removed by the scheduler finish hook. *)
  fiber_owner : (Sched.fiber_id, Uid.t) Hashtbl.t;
  fiber_spans : (Sched.fiber_id, int) Hashtbl.t;
  (* While a behaviour is being installed: the span of the invocation
     (or poking fiber) that triggered the activation, inherited by
     workers spawned during installation.  Activation often happens in
     a delivery thunk where no fiber is current, so the fiber-binding
     table alone cannot carry this edge of the causal tree. *)
  mutable activation_span : int option;
  (* Destination-side admission hook: consulted at dispatch, after the
     Estore lookup verified the UID and before the coordinator sees the
     invocation.  [None] (the default) admits everything. *)
  mutable guard : guard option;
}

and guard =
  dst:Uid.t -> op:string -> Value.t -> (Value.t * ((Value.t, string) result -> unit) option, string) result

and trace_event =
  | Invoked of { op : string; dst : Uid.t; at : float }
  | Replied of { op : string; dst : Uid.t; ok : bool; at : float }
  | Activated of { uid : Uid.t; etype : string; at : float }
  | Checkpointed of { uid : Uid.t; at : float }
  | Crashed of { uid : Uid.t; at : float }
  | Destroyed of { uid : Uid.t; at : float }

and ctx = { k : t; self_uid : Uid.t option; src_node : Net.node_id }

and behaviour = ctx -> passive:Value.t option -> (string * handler) list

(* [flags] field accessors; see the layout at [type eject]. *)
let f_concurrent = 1
let f_quiesced = 2
let crash_shift = 2
let crash_mask = 0xFFFFF (* 20 bits *)
let tw_shift = 22

let e_dispatch e = if e.flags land f_concurrent <> 0 then Concurrent else Serial
let e_quiesced e = e.flags land f_quiesced <> 0

let e_set_quiesced e q =
  e.flags <- (if q then e.flags lor f_quiesced else e.flags land lnot f_quiesced)

let e_crash_count e = (e.flags lsr crash_shift) land crash_mask
let e_transport_waits e = e.flags lsr tw_shift
let e_tw_incr e = e.flags <- e.flags + (1 lsl tw_shift)

let e_tw_decr e =
  if e.flags lsr tw_shift > 0 then e.flags <- e.flags - (1 lsl tw_shift)

(* Crash bumps the crash count and clears quiesced plus the
   transport-wait counter, all in one mask. *)
let e_crash_reset e =
  e.flags <- (e.flags land (f_concurrent lor (crash_mask lsl crash_shift))) + (1 lsl crash_shift)

(* When a fiber finishes, forget its span binding and prune it from its
   Eject's worker list: [worker_fids] otherwise only ever grows (one
   entry per Concurrent invocation), and deactivate/destroy would
   re-cancel long-dead fibers. *)
let on_fiber_finish t fid =
  Hashtbl.remove t.fiber_spans fid;
  match Hashtbl.find_opt t.fiber_owner fid with
  | None -> ()
  | Some uid -> (
      Hashtbl.remove t.fiber_owner fid;
      match Estore.find t.ejects uid with
      | Some { state = Active rt; _ } ->
          rt.worker_fids <- List.filter (fun f -> f <> fid) rt.worker_fids
      | Some _ | None -> ())

let create ?(seed = 0xEDE0L) ?(latency = Net.Fixed 1.0) ?(nodes = [ "node-0" ])
    ?(trace_capacity = 4096) ?span_capacity () =
  let sched = Sched.create () in
  let prng = Eden_util.Prng.create seed in
  let net = Net.create ~seed:(Eden_util.Prng.next_int64 prng) ~sched ~latency () in
  let nodes = if nodes = [] then [ "node-0" ] else nodes in
  let node_ids = List.map (Net.add_node net) nodes in
  let obs = Obs.create ?span_capacity () in
  Net.set_obs net obs;
  let dummy_eject =
    {
      uid = Uid.of_wire ~tag:0L ~serial:(-1);
      node = List.hd node_ids;
      etype = "";
      state = Destroyed;
      versions = [];
      received = 0;
      flags = 0;
      behaviour = (fun _ ~passive:_ -> []);
    }
  in
  let t =
    {
      sched;
      net;
      uid_gen = Uid.generator ~seed:(Eden_util.Prng.next_int64 prng);
      ejects = Estore.create ~capacity:64 ~dummy:dummy_eject ~uid_of:(fun e -> e.uid) ();
      node_ids;
      per_op = Hashtbl.create 32;
      invocations = 0;
      replies = 0;
      activations = 0;
      ejects_created = 0;
      ejects_destroyed = 0;
      crashes = 0;
      timeouts = 0;
      tracing = false;
      trace_log = Ring.create ~capacity:trace_capacity;
      trace_dropped = 0;
      obs;
      fiber_owner = Hashtbl.create 64;
      fiber_spans = Hashtbl.create 64;
      activation_span = None;
      guard = None;
    }
  in
  Sched.set_finish_hook sched (on_fiber_finish t);
  t

let trace t ev =
  if t.tracing then
    if Option.is_some (Ring.push_force t.trace_log ev) then
      t.trace_dropped <- t.trace_dropped + 1

let sched t = t.sched
let net t = t.net
let nodes t = t.node_ids
let obs t = t.obs

(* Lifecycle events double as observability instants so span exports
   show activations/crashes interleaved with the invocation tree. *)
let lifecycle t name uid =
  Obs.instant t.obs ~name ~cat:"lifecycle"
    ~attrs:[ ("uid", Uid.to_string uid) ]
    ~at:(Sched.now t.sched) ()

let run t =
  Sched.run t.sched;
  Sched.check_failures t.sched

let create_eject t ?node ?(dispatch = Serial) ~type_name behaviour =
  let node = match node with Some n -> n | None -> List.hd t.node_ids in
  let uid = Uid.fresh t.uid_gen in
  let e =
    {
      uid;
      node;
      etype = type_name;
      state = Passive;
      versions = [];
      received = 0;
      flags = (match dispatch with Concurrent -> f_concurrent | Serial -> 0);
      behaviour;
    }
  in
  Estore.add t.ejects e;
  t.ejects_created <- t.ejects_created + 1;
  uid

(* Destroyed Ejects are physically removed from the store, so a miss
   already means "gone or never existed"; the [Destroyed] state only
   flags records still referenced by their winding-down coordinator. *)
let exists t uid =
  match Estore.find t.ejects uid with
  | Some { state = Destroyed; _ } | None -> false
  | Some _ -> true

let is_active t uid =
  match Estore.find t.ejects uid with Some { state = Active _; _ } -> true | _ -> false

let type_name t uid =
  match Estore.find t.ejects uid with
  | Some e when e.state <> Destroyed -> Some e.etype
  | _ -> None

let live_ejects t = t.ejects_created - t.ejects_destroyed

let checkpoints t uid =
  match Estore.find t.ejects uid with Some e -> e.versions | None -> []

let crash_count t uid =
  match Estore.find t.ejects uid with Some e -> e_crash_count e | None -> 0

let received t uid =
  match Estore.find t.ejects uid with Some e -> e.received | None -> 0

let worker_count t uid =
  match Estore.find t.ejects uid with
  | Some { state = Active rt; _ } -> List.length rt.worker_fids
  | Some _ | None -> 0

let owner_of_fiber t fid = Hashtbl.find_opt t.fiber_owner fid
let set_guard t g = t.guard <- g

let set_quiesced t uid q =
  match Estore.find t.ejects uid with
  | None | Some { state = Destroyed; _ } -> ()
  | Some e -> e_set_quiesced e q

let is_quiesced t uid =
  match Estore.find t.ejects uid with
  | Some { state = Destroyed; _ } | None -> false
  | Some e -> e_quiesced e

let with_transport_wait ctx f =
  match ctx.self_uid with
  | None -> f ()
  | Some uid -> (
      match Estore.find ctx.k.ejects uid with
      | None | Some { state = Destroyed; _ } -> f ()
      | Some e ->
          e_tw_incr e;
          Fun.protect ~finally:(fun () -> e_tw_decr e) f)

let in_transport_wait t uid =
  match Estore.find t.ejects uid with
  | Some { state = Destroyed; _ } | None -> false
  | Some e -> e_transport_waits e > 0

let timeouts t = t.timeouts

(* --- Eject runtime ------------------------------------------------- *)

let run_handler t e msg =
  match msg with
  | Stop -> ()
  | Invoke { op; arg; span; reply_to } -> (
      let rt = match e.state with Active rt -> rt | Passive | Destroyed -> assert false in
      (* Bind the invocation's span to the executing fiber for the
         duration of the handler so nested invokes become children. *)
      let bound =
        match (span, Sched.current_fid t.sched) with
        | Some s, Some fid ->
            let saved = Hashtbl.find_opt t.fiber_spans fid in
            Hashtbl.replace t.fiber_spans fid s;
            Some (fid, saved)
        | _ -> None
      in
      let unbind () =
        match bound with
        | None -> ()
        | Some (fid, Some prev) -> Hashtbl.replace t.fiber_spans fid prev
        | Some (fid, None) -> Hashtbl.remove t.fiber_spans fid
      in
      match Hashtbl.find_opt rt.handlers op with
      | None ->
          unbind ();
          reply_to (Error (Printf.sprintf "no such operation: %s" op))
      | Some h -> (
          match h arg with
          | v ->
              unbind ();
              reply_to (Ok v)
          | exception Eden_error m ->
              unbind ();
              reply_to (Error m)
          | exception Value.Protocol_error m ->
              unbind ();
              reply_to (Error ("protocol error: " ^ m))
          | exception Sched.Cancelled ->
              unbind ();
              raise Sched.Cancelled))

let rec coordinator t e rt () =
  let msg = Mailbox.receive rt.mailbox in
  (match e.state with
  | Active _ when not rt.stopping -> (
      match msg with
      | Stop -> ()
      | Invoke _ as m -> (
          (* Only genuine invocations count as received: the [Stop]
             poison pill is kernel bookkeeping, not traffic. *)
          e.received <- e.received + 1;
          match e_dispatch e with
          | Serial -> run_handler t e m
          | Concurrent ->
              let fid =
                Sched.spawn_inside ~name:(Uid.to_string e.uid ^ "/worker") (fun () ->
                    run_handler t e m)
              in
              Hashtbl.replace t.fiber_owner fid e.uid;
              rt.worker_fids <- fid :: rt.worker_fids))
  | Active _ | Passive | Destroyed -> ());
  match e.state with
  | Active rt' when rt' == rt && not rt.stopping -> coordinator t e rt ()
  | Active _ | Passive | Destroyed -> ()

and activate ?span t e =
  match e.state with
  | Active rt -> rt
  | Destroyed -> invalid_arg "Kernel.activate: destroyed eject"
  | Passive ->
      let rt =
        {
          mailbox = Mailbox.create ~label:(e.etype ^ " coordinator") ();
          worker_fids = [];
          handlers = Hashtbl.create 8;
          stopping = false;
        }
      in
      e.state <- Active rt;
      t.activations <- t.activations + 1;
      trace t (Activated { uid = e.uid; etype = e.etype; at = Sched.now t.sched });
      lifecycle t "activate" e.uid;
      let ctx = { k = t; self_uid = Some e.uid; src_node = e.node } in
      let passive = match e.versions with (_, data) :: _ -> Some data | [] -> None in
      (* The activation's causal parent: the invocation that woke the
         Eject, or — for [poke] — whatever span the poking fiber is
         bound to.  Workers spawned by the behaviour inherit it. *)
      let span =
        match span with
        | Some _ as s -> s
        | None -> (
            match Sched.current_fid t.sched with
            | Some fid -> Hashtbl.find_opt t.fiber_spans fid
            | None -> None)
      in
      let saved = t.activation_span in
      t.activation_span <- span;
      let table =
        Fun.protect
          ~finally:(fun () -> t.activation_span <- saved)
          (fun () -> e.behaviour ctx ~passive)
      in
      List.iter (fun (op, h) -> Hashtbl.replace rt.handlers op h) table;
      let fid =
        Sched.spawn t.sched
          ~name:(Printf.sprintf "%s(%s)/coord" e.etype (Uid.to_string e.uid))
          (coordinator t e rt)
      in
      Hashtbl.replace t.fiber_owner fid e.uid;
      rt.worker_fids <- fid :: rt.worker_fids;
      rt

(* --- Invocation ---------------------------------------------------- *)

let bump_op t op =
  Hashtbl.replace t.per_op op (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_op op))

let invoke_from t ~src_node dst ~op arg =
  t.invocations <- t.invocations + 1;
  bump_op t op;
  let t0 = Sched.now t.sched in
  trace t (Invoked { op; dst; at = t0 });
  let span =
    if Obs.spans_enabled t.obs then
      let parent =
        match Sched.current_fid t.sched with
        | Some fid -> Hashtbl.find_opt t.fiber_spans fid
        | None -> None
      in
      Some
        (Obs.span_begin t.obs ?parent ~name:op ~cat:"invoke"
           ~attrs:[ ("dst", Uid.to_string dst) ]
           ~at:t0 ())
    else None
  in
  let ivar = Ivar.create () in
  (* Every resolution path funnels through [settle]: it fills the reply
     slot, feeds the round-trip histogram, and closes the span.  A
     reply that arrives after an [invoke_timeout] sealed the slot still
     closes the span (marked not-ok); an invocation whose reply was
     dropped by the network leaves its span open — visible in exports
     as an incomplete invocation. *)
  let settle r =
    let first = Ivar.try_fill ivar r in
    let now = Sched.now t.sched in
    if first then Obs.Histogram.add (Obs.histogram t.obs ("rtt." ^ op)) (now -. t0);
    match span with
    | Some id -> Obs.span_end t.obs id ~at:now ~ok:(first && Result.is_ok r)
    | None -> ()
  in
  let fail_local msg =
    (* The kernel detects a dangling UID at the source; model the check
       as a local hop so even errors cost simulated time. *)
    Net.send t.net ~src:src_node ~dst:src_node ~size:16 (fun () -> settle (Error msg))
  in
  (match Estore.find t.ejects dst with
  | None | Some { state = Destroyed; _ } -> fail_local "no such eject"
  | Some e ->
      let size = Value.size arg + String.length op + 16 in
      Net.send t.net ~src:src_node ~dst:e.node ~size (fun () ->
          match e.state with
          | Destroyed -> settle (Error "no such eject")
          | Passive | Active _ -> (
              let reply_to r =
                t.replies <- t.replies + 1;
                trace t
                  (Replied
                     { op; dst; ok = Result.is_ok r; at = Sched.now t.sched });
                let rsize =
                  match r with Ok v -> Value.size v + 16 | Error m -> String.length m + 16
                in
                Net.send t.net ~src:e.node ~dst:src_node ~size:rsize (fun () -> settle r)
              in
              let admitted =
                match t.guard with None -> Ok (arg, None) | Some g -> g ~dst ~op arg
              in
              match admitted with
              | Error msg ->
                  (* Refused at the door: replied without activating —
                     an attack must not wake a dormant victim. *)
                  reply_to (Error msg)
              | Ok (arg, done_cb) ->
                  let reply_to =
                    match done_cb with
                    | None -> reply_to
                    | Some f ->
                        fun r ->
                          f r;
                          reply_to r
                  in
                  let rt = activate ?span t e in
                  Mailbox.send rt.mailbox (Invoke { op; arg; span; reply_to }))));
  ivar

let invoke_async ctx dst ~op arg = invoke_from ctx.k ~src_node:ctx.src_node dst ~op arg

let invoke ctx dst ~op arg = Ivar.read (invoke_async ctx dst ~op arg)

let invoke_timeout ctx dst ~op arg ~timeout =
  let ivar = invoke_async ctx dst ~op arg in
  match Ivar.read_timeout ctx.k.sched ivar timeout with
  | Some _ as reply -> reply
  | None ->
      (* Seal the abandoned reply slot: a reply arriving after the
         timeout finds the ivar filled and is discarded, and filling it
         empties its waiter queue so repeated retries do not accumulate
         orphan resume closures. *)
      ignore (Ivar.try_fill ivar (Error "timed out"));
      ctx.k.timeouts <- ctx.k.timeouts + 1;
      None

let call ctx dst ~op arg =
  match invoke ctx dst ~op arg with Ok v -> v | Error m -> raise (Eden_error m)

(* A user-level span bound to the current fiber: invocations issued by
   [f] become its children.  Used by drivers to root the invocation
   tree of one pipeline run. *)
let with_span ctx ?(cat = "user") ~name f =
  let t = ctx.k in
  if not (Obs.spans_enabled t.obs) then f ()
  else
    match Sched.current_fid t.sched with
    | None -> f ()
    | Some fid -> (
        let parent = Hashtbl.find_opt t.fiber_spans fid in
        let id = Obs.span_begin t.obs ?parent ~name ~cat ~at:(Sched.now t.sched) () in
        Hashtbl.replace t.fiber_spans fid id;
        let restore () =
          match parent with
          | Some p -> Hashtbl.replace t.fiber_spans fid p
          | None -> Hashtbl.remove t.fiber_spans fid
        in
        match f () with
        | v ->
            restore ();
            Obs.span_end t.obs id ~at:(Sched.now t.sched) ~ok:true;
            v
        | exception exn ->
            restore ();
            Obs.span_end t.obs id ~at:(Sched.now t.sched) ~ok:false;
            raise exn)

(* --- Self-operations ----------------------------------------------- *)

let self ctx =
  match ctx.self_uid with
  | Some uid -> uid
  | None -> invalid_arg "Kernel.self: driver context has no self"

let kernel ctx = ctx.k

let my_eject ctx =
  match ctx.self_uid with
  | None -> invalid_arg "Kernel: operation requires an Eject context"
  | Some uid -> (
      match Estore.find ctx.k.ejects uid with
      | Some e -> e
      | None -> invalid_arg "Kernel: unknown self")

let spawn_worker ctx ?name body =
  let e = my_eject ctx in
  match e.state with
  | Active rt ->
      let name =
        match name with Some n -> n | None -> Uid.to_string e.uid ^ "/worker"
      in
      let fid = Sched.spawn ctx.k.sched ~name body in
      Hashtbl.replace ctx.k.fiber_owner fid e.uid;
      (* Inherit the spawner's span: the current fiber's binding, or the
         activation parent when spawned during behaviour installation
         (which usually runs in a delivery thunk, outside any fiber). *)
      (match
         match Sched.current_fid ctx.k.sched with
         | Some f -> Hashtbl.find_opt ctx.k.fiber_spans f
         | None -> ctx.k.activation_span
       with
      | Some s -> Hashtbl.replace ctx.k.fiber_spans fid s
      | None -> ());
      rt.worker_fids <- fid :: rt.worker_fids
  | Passive | Destroyed -> invalid_arg "Kernel.spawn_worker: eject not active"

let checkpoint ctx data =
  let e = my_eject ctx in
  e.versions <- (Sched.now ctx.k.sched, data) :: e.versions;
  trace ctx.k (Checkpointed { uid = e.uid; at = Sched.now ctx.k.sched });
  lifecycle ctx.k "checkpoint" e.uid

let mint ctx = Uid.fresh ctx.k.uid_gen

let last_checkpoint ctx =
  let e = my_eject ctx in
  match e.versions with (_, data) :: _ -> Some data | [] -> None

(* Stop an active eject's processes.  [self_fid] protection is not
   needed: cancellation is only delivered at suspension points, and the
   coordinator checks [stopping] before its next receive. *)
let stop_runtime t e ~drop_mailbox =
  match e.state with
  | Active rt ->
      rt.stopping <- true;
      Mailbox.send rt.mailbox Stop;
      List.iter (fun fid -> Sched.cancel t.sched fid) rt.worker_fids;
      if drop_mailbox then
        (* Crash: pending messages are lost; their invokers never get a
           reply (they can use invoke_timeout). *)
        while Mailbox.try_receive rt.mailbox <> None do
          ()
        done;
      e.state <- Passive
  | Passive | Destroyed -> ()

let deactivate ctx =
  let e = my_eject ctx in
  match e.state with
  | Active rt ->
      (* Graceful: let queued invocations drain by re-posting them after
         reactivation — here simply leave them; the coordinator exits and
         any queued message reactivates the Eject lazily on next send.
         To keep semantics simple we require the mailbox be drained by
         the time a well-behaved Eject deactivates. *)
      rt.stopping <- true;
      Mailbox.send rt.mailbox Stop;
      List.iter
        (fun fid -> Sched.cancel ctx.k.sched fid)
        rt.worker_fids;
      e.state <- Passive
  | Passive | Destroyed -> ()

let destroy ctx =
  let e = my_eject ctx in
  (match e.state with
  | Active rt ->
      rt.stopping <- true;
      Mailbox.send rt.mailbox Stop;
      List.iter (fun fid -> Sched.cancel ctx.k.sched fid) rt.worker_fids
  | Passive | Destroyed -> ());
  if e.state <> Destroyed then begin
    e.state <- Destroyed;
    (* Physically release the slot: the slab recycles it and the UID
       index forgets the serial.  The coordinator still holds [e] in
       its closure and sees [Destroyed] on its way out; stale UIDs miss
       the store rather than finding a ghost record. *)
    ignore (Estore.remove ctx.k.ejects e.uid);
    ctx.k.ejects_destroyed <- ctx.k.ejects_destroyed + 1;
    trace ctx.k (Destroyed { uid = e.uid; at = Sched.now ctx.k.sched });
    lifecycle ctx.k "destroy" e.uid
  end

let poke t uid =
  match Estore.find t.ejects uid with
  | None | Some { state = Destroyed; _ } -> invalid_arg "Kernel.poke: no such eject"
  | Some e -> ignore (activate t e)

let crash t uid =
  match Estore.find t.ejects uid with
  | None | Some { state = Destroyed; _ } -> ()
  | Some e ->
      t.crashes <- t.crashes + 1;
      e_crash_reset e;
      Sched.note t.sched ~kind:"kernel.crash" ~arg:(Uid.hash e.uid);
      trace t (Crashed { uid = e.uid; at = Sched.now t.sched });
      lifecycle t "crash" e.uid;
      stop_runtime t e ~drop_mailbox:true

(* --- Drivers -------------------------------------------------------- *)

let spawn_driver t ?(name = "driver") f =
  let ctx = { k = t; self_uid = None; src_node = List.hd t.node_ids } in
  ignore (Sched.spawn t.sched ~name (fun () -> f ctx))

let run_driver t f =
  spawn_driver t f;
  run t

(* --- Metering ------------------------------------------------------- *)

module Meter = struct
  type snapshot = {
    invocations : int;
    replies : int;
    activations : int;
    ejects_created : int;
    ejects_live : int;
    crashes : int;
    timeouts : int;
    net : Net.meter;
  }

  let snapshot (k : t) =
    {
      invocations = k.invocations;
      replies = k.replies;
      activations = k.activations;
      ejects_created = k.ejects_created;
      ejects_live = live_ejects k;
      crashes = k.crashes;
      timeouts = k.timeouts;
      net = Net.meter k.net;
    }

  let diff later earlier =
    {
      invocations = later.invocations - earlier.invocations;
      replies = later.replies - earlier.replies;
      activations = later.activations - earlier.activations;
      ejects_created = later.ejects_created - earlier.ejects_created;
      ejects_live = later.ejects_live;
      crashes = later.crashes - earlier.crashes;
      timeouts = later.timeouts - earlier.timeouts;
      net = Net.meter_diff later.net earlier.net;
    }

  let zero =
    {
      invocations = 0;
      replies = 0;
      activations = 0;
      ejects_created = 0;
      ejects_live = 0;
      crashes = 0;
      timeouts = 0;
      net = Net.empty_meter;
    }

  (* Counter-wise sum over disjoint kernels (the parallel runtime's
     per-domain shards); [ejects_live] sums too since the kernels share
     no Ejects. *)
  let add a b =
    {
      invocations = a.invocations + b.invocations;
      replies = a.replies + b.replies;
      activations = a.activations + b.activations;
      ejects_created = a.ejects_created + b.ejects_created;
      ejects_live = a.ejects_live + b.ejects_live;
      crashes = a.crashes + b.crashes;
      timeouts = a.timeouts + b.timeouts;
      net = Net.meter_add a.net b.net;
    }

  let pp ppf s =
    Format.fprintf ppf
      "invocations=%d replies=%d activations=%d ejects=%d live=%d crashes=%d timeouts=%d %a"
      s.invocations s.replies s.activations s.ejects_created s.ejects_live s.crashes s.timeouts
      Net.pp_meter s.net
end

let op_counts t =
  Hashtbl.fold (fun op n acc -> (op, n) :: acc) t.per_op []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

module Trace = struct
  type event = trace_event =
    | Invoked of { op : string; dst : Uid.t; at : float }
    | Replied of { op : string; dst : Uid.t; ok : bool; at : float }
    | Activated of { uid : Uid.t; etype : string; at : float }
    | Checkpointed of { uid : Uid.t; at : float }
    | Crashed of { uid : Uid.t; at : float }
    | Destroyed of { uid : Uid.t; at : float }

  let enable t = t.tracing <- true
  let disable t = t.tracing <- false

  let clear t =
    Ring.clear t.trace_log;
    t.trace_dropped <- 0

  let events t = Ring.to_list t.trace_log
  let dropped t = t.trace_dropped
  let capacity t = Ring.capacity t.trace_log

  let set_capacity t n =
    let old = Ring.to_list t.trace_log in
    let r = Ring.create ~capacity:n in
    List.iter
      (fun ev ->
        if Option.is_some (Ring.push_force r ev) then t.trace_dropped <- t.trace_dropped + 1)
      old;
    t.trace_log <- r

  let pp_event ppf = function
    | Invoked { op; dst; at } -> Format.fprintf ppf "%8.3f invoke %s -> %a" at op Uid.pp dst
    | Replied { op; dst; ok; at } ->
        Format.fprintf ppf "%8.3f reply  %s <- %a (%s)" at op Uid.pp dst
          (if ok then "ok" else "error")
    | Activated { uid; etype; at } ->
        Format.fprintf ppf "%8.3f activate %a (%s)" at Uid.pp uid etype
    | Checkpointed { uid; at } -> Format.fprintf ppf "%8.3f checkpoint %a" at Uid.pp uid
    | Crashed { uid; at } -> Format.fprintf ppf "%8.3f crash %a" at Uid.pp uid
    | Destroyed { uid; at } -> Format.fprintf ppf "%8.3f destroy %a" at Uid.pp uid

  let ops t =
    List.filter_map (function Invoked { op; _ } -> Some op | _ -> None) (events t)
end
