module Sched = Eden_sched.Sched
module Ivar = Eden_sched.Ivar
module Mailbox = Eden_sched.Mailbox
module Net = Eden_net.Net

exception Eden_error of string

type reply = (Value.t, string) result

type handler = Value.t -> Value.t

type dispatch = Serial | Concurrent

(* A message in an Eject's coordinator mailbox.  [Stop] is the internal
   poison pill used by deactivate/destroy to unblock the coordinator. *)
type message =
  | Invoke of { op : string; arg : Value.t; reply_to : reply -> unit }
  | Stop

type runtime = {
  mailbox : message Mailbox.t;
  mutable worker_fids : int list;
  handlers : (string, handler) Hashtbl.t;
  mutable stopping : bool;
}

type eject_state = Active of runtime | Passive | Destroyed

type eject = {
  uid : Uid.t;
  node : Net.node_id;
  etype : string;
  dispatch : dispatch;
  mutable state : eject_state;
  mutable versions : (float * Value.t) list; (* checkpoints, newest first *)
  mutable received : int;
  mutable crash_count : int;
  behaviour : behaviour;
}

and t = {
  sched : Sched.t;
  net : Net.t;
  uid_gen : Uid.gen;
  ejects : eject Uid.Tbl.t;
  node_ids : Net.node_id list;
  per_op : (string, int) Hashtbl.t;
  mutable invocations : int;
  mutable replies : int;
  mutable activations : int;
  mutable ejects_created : int;
  mutable ejects_destroyed : int;
  mutable crashes : int;
  mutable timeouts : int;
  mutable tracing : bool;
  mutable trace_log : trace_event list; (* newest first *)
}

and trace_event =
  | Invoked of { op : string; dst : Uid.t; at : float }
  | Replied of { op : string; dst : Uid.t; ok : bool; at : float }
  | Activated of { uid : Uid.t; etype : string; at : float }
  | Checkpointed of { uid : Uid.t; at : float }
  | Crashed of { uid : Uid.t; at : float }
  | Destroyed of { uid : Uid.t; at : float }

and ctx = { k : t; self_uid : Uid.t option; src_node : Net.node_id }

and behaviour = ctx -> passive:Value.t option -> (string * handler) list

let create ?(seed = 0xEDE0L) ?(latency = Net.Fixed 1.0) ?(nodes = [ "node-0" ]) () =
  let sched = Sched.create () in
  let prng = Eden_util.Prng.create seed in
  let net = Net.create ~seed:(Eden_util.Prng.next_int64 prng) ~sched ~latency () in
  let nodes = if nodes = [] then [ "node-0" ] else nodes in
  let node_ids = List.map (Net.add_node net) nodes in
  {
    sched;
    net;
    uid_gen = Uid.generator ~seed:(Eden_util.Prng.next_int64 prng);
    ejects = Uid.Tbl.create 64;
    node_ids;
    per_op = Hashtbl.create 32;
    invocations = 0;
    replies = 0;
    activations = 0;
    ejects_created = 0;
    ejects_destroyed = 0;
    crashes = 0;
    timeouts = 0;
    tracing = false;
    trace_log = [];
  }

let trace t ev = if t.tracing then t.trace_log <- ev :: t.trace_log

let sched t = t.sched
let net t = t.net
let nodes t = t.node_ids

let run t =
  Sched.run t.sched;
  Sched.check_failures t.sched

let create_eject t ?node ?(dispatch = Serial) ~type_name behaviour =
  let node = match node with Some n -> n | None -> List.hd t.node_ids in
  let uid = Uid.fresh t.uid_gen in
  let e =
    {
      uid;
      node;
      etype = type_name;
      dispatch;
      state = Passive;
      versions = [];
      received = 0;
      crash_count = 0;
      behaviour;
    }
  in
  Uid.Tbl.replace t.ejects uid e;
  t.ejects_created <- t.ejects_created + 1;
  uid

let exists t uid =
  match Uid.Tbl.find_opt t.ejects uid with
  | Some { state = Destroyed; _ } | None -> false
  | Some _ -> true

let is_active t uid =
  match Uid.Tbl.find_opt t.ejects uid with Some { state = Active _; _ } -> true | _ -> false

let type_name t uid =
  match Uid.Tbl.find_opt t.ejects uid with
  | Some e when e.state <> Destroyed -> Some e.etype
  | _ -> None

let live_ejects t = t.ejects_created - t.ejects_destroyed

let checkpoints t uid =
  match Uid.Tbl.find_opt t.ejects uid with Some e -> e.versions | None -> []

let crash_count t uid =
  match Uid.Tbl.find_opt t.ejects uid with Some e -> e.crash_count | None -> 0

let timeouts t = t.timeouts

(* --- Eject runtime ------------------------------------------------- *)

let run_handler e msg =
  match msg with
  | Stop -> ()
  | Invoke { op; arg; reply_to } -> (
      let rt = match e.state with Active rt -> rt | Passive | Destroyed -> assert false in
      match Hashtbl.find_opt rt.handlers op with
      | None -> reply_to (Error (Printf.sprintf "no such operation: %s" op))
      | Some h -> (
          match h arg with
          | v -> reply_to (Ok v)
          | exception Eden_error m -> reply_to (Error m)
          | exception Value.Protocol_error m -> reply_to (Error ("protocol error: " ^ m))
          | exception Sched.Cancelled -> raise Sched.Cancelled))

let rec coordinator t e rt () =
  let msg = Mailbox.receive rt.mailbox in
  (match e.state with
  | Active _ when not rt.stopping -> (
      e.received <- e.received + 1;
      match msg with
      | Stop -> ()
      | Invoke _ as m -> (
          match e.dispatch with
          | Serial -> run_handler e m
          | Concurrent ->
              let fid =
                Sched.spawn_inside ~name:(Uid.to_string e.uid ^ "/worker") (fun () ->
                    run_handler e m)
              in
              rt.worker_fids <- fid :: rt.worker_fids))
  | Active _ | Passive | Destroyed -> ());
  match e.state with
  | Active rt' when rt' == rt && not rt.stopping -> coordinator t e rt ()
  | Active _ | Passive | Destroyed -> ()

and activate t e =
  match e.state with
  | Active rt -> rt
  | Destroyed -> invalid_arg "Kernel.activate: destroyed eject"
  | Passive ->
      let rt =
        {
          mailbox = Mailbox.create ~label:(e.etype ^ " coordinator") ();
          worker_fids = [];
          handlers = Hashtbl.create 8;
          stopping = false;
        }
      in
      e.state <- Active rt;
      t.activations <- t.activations + 1;
      trace t (Activated { uid = e.uid; etype = e.etype; at = Sched.now t.sched });
      let ctx = { k = t; self_uid = Some e.uid; src_node = e.node } in
      let passive = match e.versions with (_, data) :: _ -> Some data | [] -> None in
      let table = e.behaviour ctx ~passive in
      List.iter (fun (op, h) -> Hashtbl.replace rt.handlers op h) table;
      let fid =
        Sched.spawn t.sched
          ~name:(Printf.sprintf "%s(%s)/coord" e.etype (Uid.to_string e.uid))
          (coordinator t e rt)
      in
      rt.worker_fids <- fid :: rt.worker_fids;
      rt

(* --- Invocation ---------------------------------------------------- *)

let bump_op t op =
  Hashtbl.replace t.per_op op (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_op op))

let invoke_from t ~src_node dst ~op arg =
  t.invocations <- t.invocations + 1;
  bump_op t op;
  trace t (Invoked { op; dst; at = Sched.now t.sched });
  let ivar = Ivar.create () in
  let fail_local msg =
    (* The kernel detects a dangling UID at the source; model the check
       as a local hop so even errors cost simulated time. *)
    Net.send t.net ~src:src_node ~dst:src_node ~size:16 (fun () ->
        ignore (Ivar.try_fill ivar (Error msg)))
  in
  (match Uid.Tbl.find_opt t.ejects dst with
  | None | Some { state = Destroyed; _ } -> fail_local "no such eject"
  | Some e ->
      let size = Value.size arg + String.length op + 16 in
      Net.send t.net ~src:src_node ~dst:e.node ~size (fun () ->
          match e.state with
          | Destroyed -> ignore (Ivar.try_fill ivar (Error "no such eject"))
          | Passive | Active _ ->
              let rt = activate t e in
              let reply_to r =
                t.replies <- t.replies + 1;
                trace t
                  (Replied
                     { op; dst; ok = Result.is_ok r; at = Sched.now t.sched });
                let rsize =
                  match r with Ok v -> Value.size v + 16 | Error m -> String.length m + 16
                in
                Net.send t.net ~src:e.node ~dst:src_node ~size:rsize (fun () ->
                    ignore (Ivar.try_fill ivar r))
              in
              Mailbox.send rt.mailbox (Invoke { op; arg; reply_to })));
  ivar

let invoke_async ctx dst ~op arg = invoke_from ctx.k ~src_node:ctx.src_node dst ~op arg

let invoke ctx dst ~op arg = Ivar.read (invoke_async ctx dst ~op arg)

let invoke_timeout ctx dst ~op arg ~timeout =
  let ivar = invoke_async ctx dst ~op arg in
  match Ivar.read_timeout ctx.k.sched ivar timeout with
  | Some _ as reply -> reply
  | None ->
      (* Seal the abandoned reply slot: a reply arriving after the
         timeout finds the ivar filled and is discarded, and filling it
         empties its waiter queue so repeated retries do not accumulate
         orphan resume closures. *)
      ignore (Ivar.try_fill ivar (Error "timed out"));
      ctx.k.timeouts <- ctx.k.timeouts + 1;
      None

let call ctx dst ~op arg =
  match invoke ctx dst ~op arg with Ok v -> v | Error m -> raise (Eden_error m)

(* --- Self-operations ----------------------------------------------- *)

let self ctx =
  match ctx.self_uid with
  | Some uid -> uid
  | None -> invalid_arg "Kernel.self: driver context has no self"

let kernel ctx = ctx.k

let my_eject ctx =
  match ctx.self_uid with
  | None -> invalid_arg "Kernel: operation requires an Eject context"
  | Some uid -> (
      match Uid.Tbl.find_opt ctx.k.ejects uid with
      | Some e -> e
      | None -> invalid_arg "Kernel: unknown self")

let spawn_worker ctx ?name body =
  let e = my_eject ctx in
  match e.state with
  | Active rt ->
      let name =
        match name with Some n -> n | None -> Uid.to_string e.uid ^ "/worker"
      in
      let fid = Sched.spawn ctx.k.sched ~name body in
      rt.worker_fids <- fid :: rt.worker_fids
  | Passive | Destroyed -> invalid_arg "Kernel.spawn_worker: eject not active"

let checkpoint ctx data =
  let e = my_eject ctx in
  e.versions <- (Sched.now ctx.k.sched, data) :: e.versions;
  trace ctx.k (Checkpointed { uid = e.uid; at = Sched.now ctx.k.sched })

let mint ctx = Uid.fresh ctx.k.uid_gen

let last_checkpoint ctx =
  let e = my_eject ctx in
  match e.versions with (_, data) :: _ -> Some data | [] -> None

(* Stop an active eject's processes.  [self_fid] protection is not
   needed: cancellation is only delivered at suspension points, and the
   coordinator checks [stopping] before its next receive. *)
let stop_runtime t e ~drop_mailbox =
  match e.state with
  | Active rt ->
      rt.stopping <- true;
      Mailbox.send rt.mailbox Stop;
      List.iter (fun fid -> Sched.cancel t.sched fid) rt.worker_fids;
      if drop_mailbox then
        (* Crash: pending messages are lost; their invokers never get a
           reply (they can use invoke_timeout). *)
        while Mailbox.try_receive rt.mailbox <> None do
          ()
        done;
      e.state <- Passive
  | Passive | Destroyed -> ()

let deactivate ctx =
  let e = my_eject ctx in
  match e.state with
  | Active rt ->
      (* Graceful: let queued invocations drain by re-posting them after
         reactivation — here simply leave them; the coordinator exits and
         any queued message reactivates the Eject lazily on next send.
         To keep semantics simple we require the mailbox be drained by
         the time a well-behaved Eject deactivates. *)
      rt.stopping <- true;
      Mailbox.send rt.mailbox Stop;
      List.iter
        (fun fid -> Sched.cancel ctx.k.sched fid)
        rt.worker_fids;
      e.state <- Passive
  | Passive | Destroyed -> ()

let destroy ctx =
  let e = my_eject ctx in
  (match e.state with
  | Active rt ->
      rt.stopping <- true;
      Mailbox.send rt.mailbox Stop;
      List.iter (fun fid -> Sched.cancel ctx.k.sched fid) rt.worker_fids
  | Passive | Destroyed -> ());
  if e.state <> Destroyed then begin
    e.state <- Destroyed;
    ctx.k.ejects_destroyed <- ctx.k.ejects_destroyed + 1;
    trace ctx.k (Destroyed { uid = e.uid; at = Sched.now ctx.k.sched })
  end

let poke t uid =
  match Uid.Tbl.find_opt t.ejects uid with
  | None | Some { state = Destroyed; _ } -> invalid_arg "Kernel.poke: no such eject"
  | Some e -> ignore (activate t e)

let crash t uid =
  match Uid.Tbl.find_opt t.ejects uid with
  | None | Some { state = Destroyed; _ } -> ()
  | Some e ->
      t.crashes <- t.crashes + 1;
      e.crash_count <- e.crash_count + 1;
      trace t (Crashed { uid = e.uid; at = Sched.now t.sched });
      stop_runtime t e ~drop_mailbox:true

(* --- Drivers -------------------------------------------------------- *)

let run_driver t f =
  let ctx = { k = t; self_uid = None; src_node = List.hd t.node_ids } in
  ignore (Sched.spawn t.sched ~name:"driver" (fun () -> f ctx));
  run t

(* --- Metering ------------------------------------------------------- *)

module Meter = struct
  type snapshot = {
    invocations : int;
    replies : int;
    activations : int;
    ejects_created : int;
    ejects_live : int;
    crashes : int;
    net : Net.meter;
  }

  let snapshot (k : t) =
    {
      invocations = k.invocations;
      replies = k.replies;
      activations = k.activations;
      ejects_created = k.ejects_created;
      ejects_live = live_ejects k;
      crashes = k.crashes;
      net = Net.meter k.net;
    }

  let diff later earlier =
    {
      invocations = later.invocations - earlier.invocations;
      replies = later.replies - earlier.replies;
      activations = later.activations - earlier.activations;
      ejects_created = later.ejects_created - earlier.ejects_created;
      ejects_live = later.ejects_live;
      crashes = later.crashes - earlier.crashes;
      net = Net.meter_diff later.net earlier.net;
    }

  let pp ppf s =
    Format.fprintf ppf "invocations=%d replies=%d activations=%d ejects=%d live=%d crashes=%d %a"
      s.invocations s.replies s.activations s.ejects_created s.ejects_live s.crashes Net.pp_meter
      s.net
end

let op_counts t =
  Hashtbl.fold (fun op n acc -> (op, n) :: acc) t.per_op []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

module Trace = struct
  type event = trace_event =
    | Invoked of { op : string; dst : Uid.t; at : float }
    | Replied of { op : string; dst : Uid.t; ok : bool; at : float }
    | Activated of { uid : Uid.t; etype : string; at : float }
    | Checkpointed of { uid : Uid.t; at : float }
    | Crashed of { uid : Uid.t; at : float }
    | Destroyed of { uid : Uid.t; at : float }

  let enable t = t.tracing <- true
  let disable t = t.tracing <- false
  let clear t = t.trace_log <- []
  let events t = List.rev t.trace_log

  let pp_event ppf = function
    | Invoked { op; dst; at } -> Format.fprintf ppf "%8.3f invoke %s -> %a" at op Uid.pp dst
    | Replied { op; dst; ok; at } ->
        Format.fprintf ppf "%8.3f reply  %s <- %a (%s)" at op Uid.pp dst
          (if ok then "ok" else "error")
    | Activated { uid; etype; at } ->
        Format.fprintf ppf "%8.3f activate %a (%s)" at Uid.pp uid etype
    | Checkpointed { uid; at } -> Format.fprintf ppf "%8.3f checkpoint %a" at Uid.pp uid
    | Crashed { uid; at } -> Format.fprintf ppf "%8.3f crash %a" at Uid.pp uid
    | Destroyed { uid; at } -> Format.fprintf ppf "%8.3f destroy %a" at Uid.pp uid

  let ops t =
    List.filter_map (function Invoked { op; _ } -> Some op | _ -> None) (events t)
end
