module Chunk = Eden_chunk.Chunk

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Uid of Uid.t
  | List of t list
  | Chunk of Chunk.t

exception Protocol_error of string

let unit = Unit
let bool b = Bool b
let int n = Int n
let float f = Float f
let str s = Str s
let uid u = Uid u
let list vs = List vs
let pair a b = List [ a; b ]
let chunk c = Chunk c

let shape = function
  | Unit -> "unit"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | Uid _ -> "uid"
  | List _ -> "list"
  | Chunk _ -> "chunk"

let wrong expected v =
  raise (Protocol_error (Printf.sprintf "expected %s, got %s" expected (shape v)))

let to_unit = function Unit -> () | v -> wrong "unit" v
let to_bool = function Bool b -> b | v -> wrong "bool" v
let to_int = function Int n -> n | v -> wrong "int" v
let to_float = function Float f -> f | v -> wrong "float" v
let to_str = function Str s -> s | v -> wrong "string" v
let to_uid = function Uid u -> u | v -> wrong "uid" v
let to_list = function List vs -> vs | v -> wrong "list" v
let to_chunk = function Chunk c -> c | v -> wrong "chunk" v

let to_pair = function
  | List [ a; b ] -> (a, b)
  | v -> wrong "pair" v

let rec equal a b =
  match a, b with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Uid x, Uid y -> Uid.equal x y
  | List xs, List ys -> ( try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | Chunk x, Chunk y -> Chunk.equal x y
  | (Unit | Bool _ | Int _ | Float _ | Str _ | Uid _ | List _ | Chunk _), _ -> false

let rec size = function
  | Unit -> 1
  | Bool _ -> 1
  | Int _ | Float _ -> 8
  | Str s -> 4 + String.length s
  | Uid _ -> 16
  | List vs -> List.fold_left (fun acc v -> acc + size v) 4 vs
  (* Same length-prefix framing as Str, so the simulated cost model and
     the Bin size law treat the two interchangeably; [Chunk.length]
     never faults, so sizing a released chunk stays safe. *)
  | Chunk c -> 4 + Chunk.length c

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Uid u -> Uid.pp ppf u
  | List vs ->
      Format.fprintf ppf "[@[%a@]]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp) vs
  | Chunk c -> Chunk.pp ppf c

let to_string v = Format.asprintf "%a" pp v

exception Preview_full

let preview ?(max_len = 96) v =
  let b = Buffer.create (min max_len 96) in
  let add s =
    let room = max_len - Buffer.length b in
    if String.length s <= room then Buffer.add_string b s
    else begin
      Buffer.add_string b (String.sub s 0 (max 0 room));
      raise Preview_full
    end
  in
  let rec go = function
    | Unit -> add "()"
    | Bool x -> add (string_of_bool x)
    | Int n -> add (string_of_int n)
    | Float f -> add (Printf.sprintf "%g" f)
    | Str s ->
        (* Pre-truncate before quoting so a hostile megabyte string never
           materialises a megabyte escape. *)
        let s = if String.length s > max_len then String.sub s 0 max_len else s in
        add (Printf.sprintf "%S" s)
    | Uid u -> add (Uid.to_string u)
    | List vs ->
        add "[";
        List.iteri
          (fun i v ->
            if i > 0 then add "; ";
            go v)
          vs;
        add "]"
    | Chunk c ->
        (* Chunk.preview is itself bounded — a hostile gigabyte chunk
           costs at most [max_len] bytes of rendering here. *)
        add (Chunk.preview ~max_len c)
  in
  (try go v with Preview_full -> Buffer.add_string b "…");
  Buffer.contents b
