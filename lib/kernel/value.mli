(** Invocation argument and reply values.

    Invocations carry a small dynamically-typed value (the Eden
    Programming Language lacked type parameterisation, §6, so the wire
    format is necessarily uniform).  Protocols built over invocation —
    the transput protocol among them — marshal into and out of this
    type; [Protocol_error] is what a well-behaved Eject raises when a
    peer violates the agreed protocol. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Uid of Uid.t
  | List of t list
  | Chunk of Eden_chunk.Chunk.t
      (** A flat byte payload carried by reference — the zero-copy data
          plane's unit of transfer.  Sized and wire-framed like [Str]
          (length prefix + bytes), but [sub]/[split]/[concat] and every
          in-process hop move only the handle, never the bytes. *)

exception Protocol_error of string

(** {1 Constructors} *)

val unit : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val str : string -> t
val uid : Uid.t -> t
val list : t list -> t
val pair : t -> t -> t
val chunk : Eden_chunk.Chunk.t -> t

(** {1 Accessors}

    Each raises {!Protocol_error} naming the expected shape on
    mismatch. *)

val to_unit : t -> unit
val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
val to_str : t -> string
val to_uid : t -> Uid.t
val to_list : t -> t list
val to_chunk : t -> Eden_chunk.Chunk.t
val to_pair : t -> t * t

val equal : t -> t -> bool

val size : t -> int
(** Approximate marshalled size in bytes; drives simulated latency for
    size-dependent models. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val preview : ?max_len:int -> t -> string
(** Like {!to_string} but bounded: at most [max_len] (default 96) bytes
    of rendering are produced, with ["…"] marking the cut.  Use this in
    error messages built from untrusted values — a hostile decode must
    not be able to blow up the very diagnostic that rejects it. *)
