module Slab = Eden_util.Slab

type 'a t = {
  slab : 'a Slab.t;
  uid_of : 'a -> Uid.t;
  mutable index : int array; (* serial -> slab handle, -1 = absent *)
}

let create ?(capacity = 64) ~dummy ~uid_of () =
  {
    slab = Slab.create ~capacity ~dummy ();
    uid_of;
    index = Array.make (max 1 capacity) (-1);
  }

let ensure_index t serial =
  let n = Array.length t.index in
  if serial >= n then begin
    let n' = ref (2 * n) in
    while serial >= !n' do
      n' := 2 * !n'
    done;
    let a = Array.make !n' (-1) in
    Array.blit t.index 0 a 0 n;
    t.index <- a
  end

let add t v =
  let serial = Uid.serial (t.uid_of v) in
  if serial < 0 then invalid_arg "Estore.add: negative serial";
  ensure_index t serial;
  if t.index.(serial) >= 0 then invalid_arg "Estore.add: duplicate serial";
  t.index.(serial) <- Slab.alloc t.slab v

(* Resolve a UID to its slab handle, verifying the full UID: the serial
   alone is guessable/colliding, the tag is not. *)
let handle_of t uid =
  let serial = Uid.serial uid in
  if serial < 0 || serial >= Array.length t.index then -1
  else
    let h = t.index.(serial) in
    if h < 0 then -1
    else
      match Slab.get t.slab h with
      | Some v when Uid.equal (t.uid_of v) uid -> h
      | Some _ | None -> -1

let find t uid =
  let h = handle_of t uid in
  if h < 0 then None else Slab.get t.slab h

let mem t uid = handle_of t uid >= 0

let remove t uid =
  let h = handle_of t uid in
  if h < 0 then false
  else begin
    t.index.(Uid.serial uid) <- -1;
    ignore (Slab.free t.slab h);
    true
  end

let live t = Slab.live t.slab
let iter f t = Slab.iter (fun _ v -> f v) t.slab
