(* Zdeller/Hildebrandt ddmin over the set of non-zero pick positions.
   The oracle rebuilds a candidate pick list with everything outside
   the kept set zeroed; trace alignment survives because replay answers
   0 for any pick it does not have. *)

let minimize ~run picks =
  let picks = Array.of_list picks in
  let len = Array.length picks in
  let runs = ref 0 in
  let fails keep =
    let cand = Array.make len 0 in
    List.iter (fun i -> cand.(i) <- picks.(i)) keep;
    incr runs;
    run (Array.to_list cand)
  in
  let nonzero =
    List.filter (fun i -> picks.(i) <> 0) (List.init len Fun.id)
  in
  (* Partition [l] into [n] contiguous chunks, all non-empty. *)
  let partition l n =
    let len = List.length l in
    let base = len / n and extra = len mod n in
    let rec go l i =
      if l = [] then []
      else
        let take = base + if i < extra then 1 else 0 in
        let rec split k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | x :: rest -> split (k - 1) (x :: acc) rest
          | [] -> (List.rev acc, [])
        in
        let chunk, rest = split take [] l in
        chunk :: go rest (i + 1)
    in
    go l 0
  in
  let diff l sub = List.filter (fun x -> not (List.mem x sub)) l in
  let rec ddmin active n =
    if List.length active < 2 then active
    else
      let chunks = partition active n in
      match List.find_opt fails chunks with
      | Some chunk -> ddmin chunk 2
      | None -> (
          let complements = List.map (fun c -> diff active c) chunks in
          match List.find_opt (fun c -> c <> [] && fails c) complements with
          | Some comp -> ddmin comp (max (n - 1) 2)
          | None ->
              if n < List.length active then ddmin active (min (List.length active) (2 * n))
              else active)
  in
  let minimal =
    match nonzero with
    | [] -> []
    | _ ->
        (* The empty deviation set (pure FIFO) might already fail; ddmin
           never tests it, so try it once up front. *)
        if fails [] then [] else ddmin nonzero 2
  in
  let cand = Array.make len 0 in
  List.iter (fun i -> cand.(i) <- picks.(i)) minimal;
  (* Drop the all-zero tail: replay supplies 0 beyond the list's end. *)
  let last = ref (-1) in
  Array.iteri (fun i v -> if v <> 0 then last := i) cand;
  let trimmed = Array.to_list (Array.sub cand 0 (!last + 1)) in
  (trimmed, !runs)
