(** Decision traces: the single record of every nondeterministic choice
    made during one explored schedule.

    A trace interleaves two entry kinds in execution order:

    - [Pick]: a decision the explorer {e made} — a run-queue pick
      (["sched.run"]), a timer tie-break (["sched.timer"]), a
      deterministic-cluster shard pick (["par.shard"]), or any
      harness-level [Check.decide] point.  [n] is the number of legal
      alternatives (always [>= 2]; one-way points are not recorded) and
      [chosen] the 0-based index taken.
    - [Note]: a decision some component made {e itself} and reported via
      [Sched.note] — a network loss draw (["net.loss"], arg 0/1), a
      partition drop (["net.partition"]), a crash firing
      (["kernel.crash"]), a credit grant or return (["credit.take"] /
      ["credit.give"], arg = resulting in-flight count).

    Replaying a schedule feeds the [Pick] entries back in order; the
    [Note] entries then re-occur identically, which is what
    [Check.replay] verifies when it checks bit-identical reproduction. *)

type entry =
  | Pick of { kind : string; n : int; chosen : int }
  | Note of { kind : string; arg : int }

type t = entry list
(** Entries in execution order. *)

val equal : t -> t -> bool

val picks : t -> int list
(** The [chosen] value of every [Pick], in order — the replayable spine
    of the schedule. *)

val pick_entries : t -> (string * int * int) list
(** [(kind, n, chosen)] of every [Pick], in order. *)

val decisions : ?kind:string -> t -> (string * int) list
(** [(kind, chosen)] of every [Pick], in order, optionally restricted
    to one kind.  The bridge to fault injection on the real transport:
    [decisions ~kind:"net.loss"] is exactly the per-frame loss script
    that [Eden_wire.Faults.of_events] replays at the framing layer. *)

val notes : ?kind:string -> t -> (string * int) list
(** [(kind, arg)] of every [Note], in order, optionally restricted to
    one kind — for fault streams the component drew itself (simulated
    [Net] loss/partition) rather than the explorer picking. *)

val pick_count : t -> int
val nonzero_picks : t -> int
(** Picks that deviate from the FIFO default of [0]. *)

val line_of_entry : entry -> string
(** One-line textual form: [pick <kind> <n> <chosen>] or
    [note <kind> <arg>].  Kinds contain no whitespace. *)

val entry_of_line : string -> entry option
(** Inverse of {!line_of_entry}; [None] on malformed lines. *)

val pp : Format.formatter -> t -> unit
