(** Seeded-mutant workloads that validate the checker itself.

    Each workload is a small concurrent scenario with a [~mutant]
    switch: [mutant:false] is a correct implementation whose property
    holds under {e every} schedule; [mutant:true] re-introduces a
    classic bug that the pure FIFO schedule cannot expose (all
    workloads pass [Check.fifo_passes] in both variants) but that any
    exploring policy must find within a quick budget:

    - {!lossy_ack}: a sender that advances its sequence number without
      checking the ack — correct only while the link never drops.
    - {!credit_race}: a widened credit window — the sender checks
      availability, yields, then ignores the result of [Credit.take],
      breaking the in-flight bound under an adverse interleaving.
    - {!checkpoint_replay}: a producer that never advances its
      checkpoint — a crash makes it re-deliver from the beginning,
      breaking exactly-once delivery.

    The mutation suite (test/ and the CI [check] job) requires the
    explorer to detect all three mutants, and each minimized replay to
    reproduce bit-identically. *)

val lossy_ack : mutant:bool -> Check.ctl -> unit
(** Property: the receiver sees sequence 0..3 exactly, in order, despite
    decide-driven link loss (kind ["net.loss"], at most 3 drops). *)

val credit_race : mutant:bool -> Check.ctl -> unit
(** Property: with a [Window 1] credit shared by two sender fibers, the
    peak number of concurrently in-flight sends is 1 (credit
    conservation).  The mutant's check-then-take race opens at the
    decide point (kind ["flowctl.prep"]). *)

val checkpoint_replay : mutant:bool -> Check.ctl -> unit
(** Property: each sequence number is delivered exactly once across a
    decide-scheduled crash (kind ["crash.at"], 0 = no crash) and the
    checkpoint-resumed reincarnation. *)

val mutants : (string * (mutant:bool -> Check.ctl -> unit)) list
(** All three, with stable names (["lossy_ack"]; ["credit_race"];
    ["checkpoint_replay"]) used by tests, bench C1 and CI. *)
