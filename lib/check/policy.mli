(** Scheduling policies for systematic schedule exploration.

    A policy decides, at each decision point with [n >= 2] legal
    alternatives, which one to take.  All four policies answer within
    the scheduler's ordering contract (see [Sched]): they only reorder
    within the legal candidate sets.

    - [Fifo]: always answer 0 — the bit-identical production schedule.
      Exploring under [Fifo] runs exactly one schedule.
    - [Random]: each schedule draws every decision uniformly from a
      seeded PRNG stream.  Schedule 0 is always the FIFO baseline.
    - [Pct depth]: PCT-style priority scheduling.  Run-queue picks
      follow random per-fiber priorities, with [depth - 1] priority
      change points per schedule (at change points the running fiber is
      demoted below all others); other decision kinds draw uniformly.
      Finds bugs of bug-depth [<= depth] with known probability bounds.
    - [Dfs { max_branch; max_steps }]: bounded exhaustive enumeration
      in depth-first order.  Each decision explores at most
      [max_branch] of its alternatives, and only the first [max_steps]
      decisions of a schedule branch at all (later ones answer 0).
      Exploration stops early once the bounded tree is exhausted. *)

type t =
  | Fifo
  | Random
  | Pct of int  (** bug depth, [>= 1] *)
  | Dfs of { max_branch : int; max_steps : int }

val to_string : t -> string
(** ["fifo"], ["random"], ["pct:<depth>"], ["dfs:<branch>x<steps>"]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; bare ["pct"] and ["dfs"] take defaults
    ([Pct 3], [Dfs {max_branch = 4; max_steps = 32}]). *)

val of_env : unit -> t
(** The policy named by [EDEN_CHECK_POLICY], or [Random] when the
    variable is unset.  An unparsable value raises [Invalid_argument]
    (a silent fallback would un-pin a CI matrix entry). *)

val quick_matrix : t list
(** The three non-trivial policies at quick-budget settings, as run by
    the CI [check] job: [Random], [Pct 3], and a small [Dfs]. *)
