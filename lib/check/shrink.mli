(** Delta-debugging shrinker for failing schedules.

    A schedule is its list of picked indices; [0] is the FIFO default
    at every decision point, so "simplifying" a pick means zeroing it
    (removing entries would desynchronise replay).  [minimize] runs
    ddmin over the set of non-zero picks — repeatedly re-executing the
    property with candidate subsets zeroed — to find a 1-minimal set of
    deviations that still fails, then drops the all-zero tail (replay
    treats picks beyond the end of the list as [0]). *)

val minimize : run:(int list -> bool) -> int list -> int list * int
(** [minimize ~run picks] where [run candidate] re-executes the failing
    property under [candidate] and returns [true] when it {e still
    fails}.  [picks] must itself fail.  Returns the minimized picks and
    the number of oracle executions spent shrinking. *)
