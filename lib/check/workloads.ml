module Sched = Eden_sched.Sched
module Credit = Eden_flowctl.Credit

(* Ack-checked retransmission.  The link is one virtual-time hop whose
   loss is a harness decision (so FIFO = all-zero picks = no loss); the
   correct sender retransmits until the ack flag flips, the mutant
   advances regardless.  Loss is capped so the correct variant always
   terminates. *)
let lossy_ack ~mutant ctl =
  let sched = Sched.create () in
  Check.attach ctl sched;
  let total = 4 in
  let received = ref [] in
  let losses = ref 0 in
  let max_losses = 3 in
  let deliver seq acked =
    let lost = !losses < max_losses && Check.decide ctl ~kind:"net.loss" ~n:2 = 1 in
    if lost then begin
      incr losses;
      Sched.note sched ~kind:"net.loss" ~arg:1
    end
    else
      Sched.timer sched 1.0 (fun () ->
          received := seq :: !received;
          acked := true)
  in
  ignore
    (Sched.spawn sched ~name:"sender" (fun () ->
         for seq = 0 to total - 1 do
           let acked = ref false in
           deliver seq acked;
           Sched.sleep 2.0;
           if not mutant then
             while not !acked do
               deliver seq acked;
               Sched.sleep 2.0
             done
         done));
  Sched.run sched;
  Sched.check_failures sched;
  let got = List.rev !received in
  if got <> List.init total Fun.id then
    failwith
      (Printf.sprintf "lossy_ack: received [%s], want [0;1;2;3]"
         (String.concat ";" (List.map string_of_int got)))

(* Credit-window conservation.  Two fibers share a Window 1 credit; the
   correct variant loops on [Credit.take] (claim is atomic within a
   slice), the mutant checks [available], optionally loses the race at
   a decide-controlled yield, then sends while ignoring the result of
   its late [take]. *)
let credit_race ~mutant ctl =
  let sched = Sched.create () in
  Check.attach ctl sched;
  let w = Credit.create (Credit.Window 1) in
  let inflight = ref 0 in
  let peak = ref 0 in
  let took = ref 0 in
  let worker name =
    ignore
      (Sched.spawn sched ~name (fun () ->
           for _ = 1 to 2 do
             if mutant then begin
               while Credit.available w = 0 do
                 Sched.sleep 0.5
               done;
               if Check.decide ctl ~kind:"flowctl.prep" ~n:2 = 1 then Sched.yield ();
               if Credit.take w then incr took
             end
             else begin
               while not (Credit.take w) do
                 Sched.sleep 0.5
               done;
               incr took
             end;
             incr inflight;
             if !inflight > !peak then peak := !inflight;
             Sched.note sched ~kind:"credit.take" ~arg:!inflight;
             Sched.sleep 1.0;
             decr inflight;
             Sched.note sched ~kind:"credit.give" ~arg:!inflight;
             if !took > 0 then begin
               decr took;
               Credit.give w
             end
           done))
  in
  worker "sender-a";
  worker "sender-b";
  Sched.run sched;
  Sched.check_failures sched;
  if !peak > 1 then
    failwith (Printf.sprintf "credit_race: peak in-flight %d exceeds Window 1" !peak)

(* Exactly-once delivery across a crash.  The crash point is a harness
   decision (0 = no crash, the FIFO pick); the correct producer
   checkpoints after every delivery and reincarnates from the
   checkpoint, the mutant reincarnates from 0 and re-delivers. *)
let checkpoint_replay ~mutant ctl =
  let sched = Sched.create () in
  Check.attach ctl sched;
  let total = 3 in
  let delivered = Array.make total 0 in
  let ckpt = ref 0 in
  let crash_at = Check.decide ctl ~kind:"crash.at" ~n:(total + 1) in
  let deliveries = ref 0 in
  let rec incarnation start =
    let seq = ref start in
    let crashed = ref false in
    while (not !crashed) && !seq < total do
      delivered.(!seq) <- delivered.(!seq) + 1;
      incr deliveries;
      if not mutant then ckpt := !seq + 1;
      Sched.yield ();
      if crash_at > 0 && !deliveries = crash_at then begin
        Sched.note sched ~kind:"kernel.crash" ~arg:!deliveries;
        crashed := true
      end;
      incr seq
    done;
    if !crashed then incarnation !ckpt
  in
  ignore (Sched.spawn sched ~name:"producer" (fun () -> incarnation 0));
  Sched.run sched;
  Sched.check_failures sched;
  Array.iteri
    (fun i c ->
      if c <> 1 then
        failwith (Printf.sprintf "checkpoint_replay: seq %d delivered %d times" i c))
    delivered

let mutants =
  [
    ("lossy_ack", lossy_ack);
    ("credit_race", credit_race);
    ("checkpoint_replay", checkpoint_replay);
  ]
