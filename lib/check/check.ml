module Sched = Eden_sched.Sched
module Prng = Eden_util.Prng

(* --- Decision routing ----------------------------------------------- *)

type cmode =
  | Drive of (kind:string -> ids:int array -> int)
  | Replaying of { rpicks : int array; mutable cursor : int }

type ctl = { mutable entries_rev : Trace.entry list; mutable nsteps : int; cmode : cmode }

let make_ctl cmode = { entries_rev = []; nsteps = 0; cmode }
let trace ctl = List.rev ctl.entries_rev
let record ctl e = ctl.entries_rev <- e :: ctl.entries_rev

(* Out-of-range answers fall back to 0 (the FIFO default) rather than
   raise: replay files survive shrinking and property edits, and a
   clamped pick is recorded as what actually happened. *)
let choose ctl ~kind ~ids =
  let n = Array.length ids in
  let chosen =
    match ctl.cmode with
    | Drive f ->
        let i = f ~kind ~ids in
        if i < 0 || i >= n then 0 else i
    | Replaying r ->
        if r.cursor >= Array.length r.rpicks then 0
        else begin
          let v = r.rpicks.(r.cursor) in
          r.cursor <- r.cursor + 1;
          if v < 0 || v >= n then 0 else v
        end
  in
  record ctl (Trace.Pick { kind; n; chosen });
  ctl.nsteps <- ctl.nsteps + 1;
  chosen

let decide ctl ~kind ~n =
  if n <= 0 then invalid_arg "Check.decide: n must be positive";
  if n = 1 then 0 else choose ctl ~kind ~ids:(Array.init n Fun.id)

let attach ctl sched =
  Sched.set_chooser sched (Some (fun ~kind ~ids -> choose ctl ~kind ~ids));
  Sched.set_note_hook sched
    (Some (fun ~kind ~arg -> record ctl (Trace.Note { kind; arg })))

(* --- Policies as schedule generators -------------------------------- *)

let zero_drive ~kind:_ ~ids:_ = 0

(* [next] yields the drive function for schedule [k >= 1] (schedule 0
   is always the FIFO baseline), or [None] when the policy's search
   space is exhausted.  [after] feeds each passing schedule's trace
   back (PCT calibrates its run-length estimate, DFS advances). *)
type gen = {
  next : int -> (kind:string -> ids:int array -> int) option;
  after : Trace.t -> unit;
}

let gen_fifo = { next = (fun _ -> None); after = ignore }

let gen_random seed =
  let root = Prng.create seed in
  {
    next =
      (fun _ ->
        let p = Prng.split root in
        Some (fun ~kind:_ ~ids -> Prng.int p (Array.length ids)));
    after = ignore;
  }

let gen_pct seed depth =
  let root = Prng.create seed in
  let est_len = ref 64 in
  {
    next =
      (fun _ ->
        let p = Prng.split root in
        (* Fresh priorities per schedule, positive so every demotion
           (negative, strictly decreasing) ranks below all of them. *)
        let prios : (int, float) Hashtbl.t = Hashtbl.create 32 in
        let demote = ref 0.0 in
        let change_at =
          ref
            (List.sort_uniq compare
               (List.init (max 0 (depth - 1)) (fun _ -> 1 + Prng.int p (max 1 !est_len))))
        in
        let step = ref 0 in
        Some
          (fun ~kind ~ids ->
            let n = Array.length ids in
            if not (String.equal kind "sched.run") then Prng.int p n
            else begin
              incr step;
              Array.iter
                (fun id ->
                  if not (Hashtbl.mem prios id) then
                    Hashtbl.add prios id (1.0 +. Prng.float p 1.0))
                ids;
              let prio id = Hashtbl.find prios id in
              let best () =
                let bi = ref 0 in
                Array.iteri (fun i id -> if prio id > prio ids.(!bi) then bi := i) ids;
                !bi
              in
              let b = best () in
              match !change_at with
              | c :: rest when !step >= c ->
                  change_at := rest;
                  demote := !demote -. 1.0;
                  Hashtbl.replace prios ids.(b) !demote;
                  best ()
              | _ -> b
            end));
    after = (fun tr -> est_len := max 1 (Trace.pick_count tr));
  }

let gen_dfs ~max_branch ~max_steps =
  (* [plan] is the (cap, chosen) prefix to replay on the next schedule;
     advancing increments the deepest incrementable position and
     truncates below it — plain depth-first order over the bounded
     tree. *)
  let plan = ref [||] in
  let exhausted = ref false in
  {
    next =
      (fun _ ->
        if !exhausted then None
        else
          let p = !plan in
          let pos = ref 0 in
          Some
            (fun ~kind:_ ~ids ->
              let n = Array.length ids in
              let d = !pos in
              incr pos;
              if d < Array.length p then (
                let _, c = p.(d) in
                if c < n then c else 0)
              else 0));
    after =
      (fun tr ->
        let recorded =
          Trace.pick_entries tr
          |> List.filteri (fun i _ -> i < max_steps)
          |> List.map (fun (_, n, c) -> (min n max_branch, c))
          |> Array.of_list
        in
        let adv = ref None in
        Array.iteri (fun i (cap, c) -> if c + 1 < cap then adv := Some i) recorded;
        match !adv with
        | None -> exhausted := true
        | Some i ->
            let next = Array.sub recorded 0 (i + 1) in
            let cap, c = next.(i) in
            next.(i) <- (cap, c + 1);
            plan := next);
  }

let make_gen policy seed =
  match (policy : Policy.t) with
  | Fifo -> gen_fifo
  | Random -> gen_random seed
  | Pct depth -> gen_pct seed depth
  | Dfs { max_branch; max_steps } -> gen_dfs ~max_branch ~max_steps

(* --- Exploring ------------------------------------------------------ *)

type failure = {
  prop : string;
  policy : Policy.t;
  seed : int64;
  schedule : int;
  schedules : int;
  shrink_runs : int;
  error : string;
  trace : Trace.t;
  replay_path : string option;
}

type outcome = Passed of { schedules : int } | Failed of failure

let default_seed () =
  match Sys.getenv_opt "EDEN_SEED" with
  | None | Some "" -> 0x5EEDL
  | Some s -> (
      try Int64.of_string s
      with _ -> invalid_arg (Printf.sprintf "EDEN_SEED: not an integer: %S" s))

let run_prop prop cmode =
  let ctl = make_ctl cmode in
  let err =
    match prop ctl with
    | () -> None
    | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
    | exception exn -> Some (Printexc.to_string exn)
  in
  (ctl, err)

let sanitize s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c | _ -> '-')
    s

let first_line s =
  match String.index_opt s '\n' with Some i -> String.sub s 0 i | None -> s

let write_replay ~replay_dir ~name ~policy ~seed ~schedule ~error tr =
  try
    if not (Sys.file_exists replay_dir) then Sys.mkdir replay_dir 0o755;
    let path =
      Filename.concat replay_dir
        (Printf.sprintf "%s-%s-0x%Lx.replay" (sanitize name)
           (sanitize (Policy.to_string policy))
           seed)
    in
    let oc = open_out path in
    Printf.fprintf oc "eden-check replay v1\n";
    Printf.fprintf oc "prop: %s\n" name;
    Printf.fprintf oc "policy: %s\n" (Policy.to_string policy);
    Printf.fprintf oc "seed: 0x%Lx\n" seed;
    Printf.fprintf oc "schedule: %d\n" schedule;
    Printf.fprintf oc "error: %s\n\n" (first_line error);
    List.iter
      (fun e ->
        output_string oc (Trace.line_of_entry e);
        output_char oc '\n')
      tr;
    close_out oc;
    Some path
  with Sys_error _ -> None

let explore ?(budget = 100) ?policy ?seed ?(replay_dir = "_check") ~name prop =
  if budget < 1 then invalid_arg "Check.explore: budget must be positive";
  let policy = match policy with Some p -> p | None -> Policy.of_env () in
  let seed = match seed with Some s -> s | None -> default_seed () in
  let gen = make_gen policy seed in
  let failed = ref None in
  let k = ref 0 in
  let continue_ = ref true in
  while !continue_ && !k < budget && !failed = None do
    let drive = if !k = 0 then Some zero_drive else gen.next !k in
    match drive with
    | None -> continue_ := false
    | Some drive ->
        let ctl, err = run_prop prop (Drive drive) in
        (match err with
        | None -> gen.after (trace ctl)
        | Some error -> failed := Some (!k, trace ctl, error));
        incr k
  done;
  match !failed with
  | None -> Passed { schedules = !k }
  | Some (schedule, tr, error0) ->
      let oracle cand =
        let _, err = run_prop prop (Replaying { rpicks = Array.of_list cand; cursor = 0 }) in
        err <> None
      in
      let minimized, shrink_runs = Shrink.minimize ~run:oracle (Trace.picks tr) in
      (* Authoritative run of the minimized schedule: its trace (picks
         and notes) and error are what the replay file must reproduce. *)
      let fctl, ferr =
        run_prop prop (Replaying { rpicks = Array.of_list minimized; cursor = 0 })
      in
      let ftrace = trace fctl in
      let error = match ferr with Some e -> e | None -> error0 in
      let replay_path = write_replay ~replay_dir ~name ~policy ~seed ~schedule ~error ftrace in
      Failed
        {
          prop = name;
          policy;
          seed;
          schedule;
          schedules = !k;
          shrink_runs;
          error;
          trace = ftrace;
          replay_path;
        }

let fail_message f =
  Printf.sprintf
    "[eden-check] prop=%s policy=%s seed=0x%Lx: failing schedule %d of %d\n\
    \  error: %s\n\
    \  minimized: %d picks (%d non-zero) after %d shrink runs\n\
    \  replay file: %s\n\
    \  rerun: EDEN_SEED=0x%Lx EDEN_CHECK_POLICY=%s dune runtest"
    f.prop
    (Policy.to_string f.policy)
    f.seed f.schedule f.schedules (first_line f.error) (Trace.pick_count f.trace)
    (Trace.nonzero_picks f.trace) f.shrink_runs
    (match f.replay_path with Some p -> p | None -> "<write failed>")
    f.seed
    (Policy.to_string f.policy)

let run_or_fail ?budget ?policy ?seed ?replay_dir ~name prop =
  match explore ?budget ?policy ?seed ?replay_dir ~name prop with
  | Passed { schedules } -> schedules
  | Failed f -> failwith (fail_message f)

let find_bug ?budget ?policy ?seed ?replay_dir ~name prop =
  match explore ?budget ?policy ?seed ?replay_dir ~name prop with
  | Failed f -> f
  | Passed { schedules } ->
      failwith
        (Printf.sprintf
           "[eden-check] prop=%s: no failure in %d schedules — seeded mutant not detected"
           name schedules)

let fifo_passes prop =
  let _, err = run_prop prop (Drive zero_drive) in
  err = None

(* --- Replay --------------------------------------------------------- *)

type replay_result = {
  reproduced : bool;
  bit_identical : bool;
  replay_error : string option;
}

let load_replay ~path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  match List.rev !lines with
  | magic :: rest when String.trim magic = "eden-check replay v1" ->
      let rec split_header acc = function
        | "" :: body -> (List.rev acc, body)
        | line :: body -> (
            match String.index_opt line ':' with
            | Some i ->
                let k = String.trim (String.sub line 0 i) in
                let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
                split_header ((k, v) :: acc) body
            | None -> (List.rev acc, line :: body))
        | [] -> (List.rev acc, [])
      in
      let header, body = split_header [] rest in
      let tr =
        List.filter_map Trace.entry_of_line
          (List.filter (fun l -> String.trim l <> "") body)
      in
      (header, tr)
  | _ -> failwith (path ^ ": not an eden-check replay file")

let replay ~path prop =
  let _header, stored = load_replay ~path in
  let rpicks = Array.of_list (Trace.picks stored) in
  let ctl, err = run_prop prop (Replaying { rpicks; cursor = 0 }) in
  {
    reproduced = err <> None;
    bit_identical = Trace.equal (trace ctl) stored;
    replay_error = err;
  }
