(** Systematic concurrency checker: explore many legal schedules of a
    property, record every nondeterministic decision, shrink failures
    to minimal replayable schedules.

    A {e property} is a function [ctl -> unit] that builds a fresh
    world (scheduler, kernel, cluster, …), calls {!attach} on every
    scheduler it creates, runs it, and raises on any violation.  It
    must be deterministic given the answers it receives through the
    chooser and {!decide} — build everything from fixed seeds.

    {!explore} runs the property under up to [budget] schedules chosen
    by a {!Policy.t}.  Schedule 0 is always the FIFO baseline.  On the
    first failure the decision trace is ddmin-shrunk ({!Shrink}) to a
    minimal schedule, re-run to record the authoritative minimized
    trace, and written as a replay file under [replay_dir].

    Replay a CI failure locally with {!replay}, or by pinning
    [EDEN_SEED] / [EDEN_CHECK_POLICY] and re-running the test. *)

type ctl
(** One schedule's decision router: answers choosers, records the
    trace.  Fresh per explored schedule; valid only inside the property
    invocation it was passed to. *)

val attach : ctl -> Eden_sched.Sched.t -> unit
(** Routes the scheduler's decision points (run-queue picks, timer
    tie-breaks) through [ctl] and records its [Sched.note] events.
    Call once per scheduler the property creates. *)

val decide : ctl -> kind:string -> n:int -> int
(** A harness-level decision point: returns a policy-chosen index in
    [\[0, n)] and records it.  [n = 1] returns 0 without recording
    (matching the scheduler's one-way rule), so conditional decision
    points do not bloat the DFS tree.
    @raise Invalid_argument when [n <= 0]. *)

val trace : ctl -> Trace.t
(** The trace recorded so far, in execution order. *)

val default_seed : unit -> int64
(** The seed {!explore} uses when none is passed: [EDEN_SEED] from the
    environment when set ([Int64.of_string] syntax, so [0x...] works),
    else [0x5EED].
    @raise Invalid_argument when [EDEN_SEED] is set but unparsable. *)

(** {1 Exploring} *)

type failure = {
  prop : string;
  policy : Policy.t;
  seed : int64;
  schedule : int;  (** index of the first failing schedule *)
  schedules : int;  (** schedules executed, including the failing one *)
  shrink_runs : int;
  error : string;  (** [Printexc.to_string] of the violation *)
  trace : Trace.t;  (** minimized, as re-recorded on the final run *)
  replay_path : string option;  (** [None] only if the file write failed *)
}

type outcome = Passed of { schedules : int } | Failed of failure

val explore :
  ?budget:int ->
  ?policy:Policy.t ->
  ?seed:int64 ->
  ?replay_dir:string ->
  name:string ->
  (ctl -> unit) ->
  outcome
(** [budget] defaults to 100 schedules; [policy] to {!Policy.of_env};
    [seed] to [EDEN_SEED] (default [0x5EED]); [replay_dir] to
    ["_check"].  DFS stops early when its bounded tree is exhausted;
    [Fifo] runs exactly one schedule. *)

val fail_message : failure -> string
(** Human-readable failure report: property, policy, seed, schedule
    index, minimized-trace size, replay-file path, and the exact
    environment pinning to rerun it locally. *)

val run_or_fail :
  ?budget:int ->
  ?policy:Policy.t ->
  ?seed:int64 ->
  ?replay_dir:string ->
  name:string ->
  (ctl -> unit) ->
  int
(** {!explore}, raising [Failure] with {!fail_message} on a failing
    schedule; returns the number of schedules run.  The Alcotest-facing
    entry point. *)

val find_bug :
  ?budget:int ->
  ?policy:Policy.t ->
  ?seed:int64 ->
  ?replay_dir:string ->
  name:string ->
  (ctl -> unit) ->
  failure
(** Inverse of {!run_or_fail}, for the mutation suite: the property is
    {e expected} to fail within budget.  Raises [Failure] if every
    explored schedule passes (the explorer missed a seeded mutant). *)

val fifo_passes : (ctl -> unit) -> bool
(** Runs the property once under the pure FIFO schedule (all picks 0);
    [true] when it does not raise.  Mutants must pass this — a mutant
    FIFO already catches needs no explorer. *)

(** {1 Replay} *)

type replay_result = {
  reproduced : bool;  (** the property failed again *)
  bit_identical : bool;  (** re-recorded trace equals the file's trace *)
  replay_error : string option;
}

val replay : path:string -> (ctl -> unit) -> replay_result
(** Re-executes the property under the pick sequence stored in a replay
    file and compares the re-recorded trace (picks {e and} notes)
    against the stored one.
    @raise Sys_error / Failure on unreadable or malformed files. *)

val load_replay : path:string -> (string * string) list * Trace.t
(** The header fields ([prop], [policy], [seed], [schedule], [error])
    and stored trace of a replay file. *)
