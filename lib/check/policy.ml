type t =
  | Fifo
  | Random
  | Pct of int
  | Dfs of { max_branch : int; max_steps : int }

let to_string = function
  | Fifo -> "fifo"
  | Random -> "random"
  | Pct d -> Printf.sprintf "pct:%d" d
  | Dfs { max_branch; max_steps } -> Printf.sprintf "dfs:%dx%d" max_branch max_steps

let of_string s =
  let s = String.trim (String.lowercase_ascii s) in
  match String.split_on_char ':' s with
  | [ "fifo" ] -> Ok Fifo
  | [ "random" ] -> Ok Random
  | [ "pct" ] -> Ok (Pct 3)
  | [ "pct"; d ] -> (
      match int_of_string_opt d with
      | Some d when d >= 1 -> Ok (Pct d)
      | _ -> Error (Printf.sprintf "bad PCT depth %S" d))
  | [ "dfs" ] -> Ok (Dfs { max_branch = 4; max_steps = 32 })
  | [ "dfs"; spec ] -> (
      match String.split_on_char 'x' spec with
      | [ b; s ] -> (
          match (int_of_string_opt b, int_of_string_opt s) with
          | Some b, Some s when b >= 1 && s >= 1 -> Ok (Dfs { max_branch = b; max_steps = s })
          | _ -> Error (Printf.sprintf "bad DFS bounds %S" spec))
      | _ -> Error (Printf.sprintf "bad DFS bounds %S (want <branch>x<steps>)" spec))
  | _ -> Error (Printf.sprintf "unknown policy %S" s)

let of_env () =
  match Sys.getenv_opt "EDEN_CHECK_POLICY" with
  | None | Some "" -> Random
  | Some s -> (
      match of_string s with
      | Ok p -> p
      | Error e -> invalid_arg ("EDEN_CHECK_POLICY: " ^ e))

let quick_matrix = [ Random; Pct 3; Dfs { max_branch = 4; max_steps = 24 } ]
