type entry =
  | Pick of { kind : string; n : int; chosen : int }
  | Note of { kind : string; arg : int }

type t = entry list

let equal (a : t) (b : t) = a = b

let picks t = List.filter_map (function Pick p -> Some p.chosen | Note _ -> None) t

let pick_entries t =
  List.filter_map (function Pick p -> Some (p.kind, p.n, p.chosen) | Note _ -> None) t

let keep kind k = match kind with None -> true | Some want -> String.equal want k

let decisions ?kind t =
  List.filter_map
    (function Pick p when keep kind p.kind -> Some (p.kind, p.chosen) | _ -> None)
    t

let notes ?kind t =
  List.filter_map
    (function Note n when keep kind n.kind -> Some (n.kind, n.arg) | _ -> None)
    t

let pick_count t = List.length (picks t)
let nonzero_picks t = List.length (List.filter (fun c -> c <> 0) (picks t))

let line_of_entry = function
  | Pick { kind; n; chosen } -> Printf.sprintf "pick %s %d %d" kind n chosen
  | Note { kind; arg } -> Printf.sprintf "note %s %d" kind arg

let entry_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "pick"; kind; n; chosen ] -> (
      try Some (Pick { kind; n = int_of_string n; chosen = int_of_string chosen })
      with _ -> None)
  | [ "note"; kind; arg ] -> (
      try Some (Note { kind; arg = int_of_string arg }) with _ -> None)
  | _ -> None

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%s@\n" (line_of_entry e)) t
