(** Reliable invocation: timeout, bounded retries, backoff.

    The kernel's invocation is unreliable by construction — requests and
    replies cross the simulated network and are lost under loss or
    partition, and a crashed Eject's mailbox is discarded.  [invoke]
    layers at-least-once delivery on top: it re-issues the invocation
    after each {!Eden_kernel.Kernel.invoke_timeout} expiry, sleeping a
    {!Backoff} delay between attempts, until a reply arrives or the
    attempt budget is exhausted.

    Because invoking a passive Eject activates it from its last
    checkpoint, a retry is also the recovery path: the first retry to
    reach a crashed peer restarts it.  Idempotence is the caller's
    business — the resumable stream protocol gets it from sequence
    numbers (see {!Rport}, {!Rpush}). *)

module Kernel = Eden_kernel.Kernel
module Value = Eden_kernel.Value
module Uid = Eden_kernel.Uid

type policy = { timeout : float; max_attempts : int; backoff : Backoff.t }

val default_policy : policy
(** 10s timeout, 10 attempts, {!Backoff.default}. *)

val policy : ?timeout:float -> ?max_attempts:int -> ?backoff:Backoff.t -> unit -> policy
(** @raise Invalid_argument unless [timeout > 0] and
    [max_attempts >= 1]. *)

(** Per-call accounting, shared across calls when profiling a whole
    pipeline.  All counters are cumulative. *)
type meter = {
  mutable attempts : int;  (** Invocations issued, including first tries. *)
  mutable retries : int;  (** Attempts beyond the first of each call. *)
  mutable timeouts : int;  (** Attempts that expired unanswered. *)
  mutable exhausted : int;  (** Calls that gave up. *)
}

val create_meter : unit -> meter

exception Exhausted of string
(** Raised by [call] when the attempt budget runs out. *)

val invoke :
  ?policy:policy ->
  ?meter:meter ->
  prng:Eden_util.Prng.t ->
  Kernel.ctx ->
  Uid.t ->
  op:string ->
  Value.t ->
  Kernel.reply option
(** [None] when [max_attempts] expiries occurred without a reply.
    Jitter draws come from [prng], so a fixed seed gives a fixed retry
    schedule.  Fiber context only (sleeps between attempts). *)

val call :
  ?policy:policy ->
  ?meter:meter ->
  prng:Eden_util.Prng.t ->
  Kernel.ctx ->
  Uid.t ->
  op:string ->
  Value.t ->
  Value.t
(** Like [invoke] but unwraps the reply: raises
    {!Eden_kernel.Kernel.Eden_error} on an [Error] reply and
    {!Exhausted} when the budget runs out. *)
