module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Channel = Eden_transput.Channel
module Proto = Eden_transput.Proto
module Aimd = Eden_flowctl.Aimd
module Flowctl = Eden_flowctl.Flowctl

type t = {
  ctx : Kernel.ctx;
  src : Uid.t;
  chan : Channel.t;
  batch : int;
  ctrl : Aimd.t option; (* adaptive credit sizing; [batch] when absent *)
  policy : Retry.policy;
  meter : Retry.meter option;
  prng : Eden_util.Prng.t;
  mutable next : int; (* position the next Transfer will request *)
  mutable buf : Value.t list; (* fetched, unread: positions [next - |buf|, next) *)
  mutable eos : bool;
  mutable transfers : int;
}

let connect ctx ?(batch = 1) ?flowctl ?(channel = Channel.output)
    ?(policy = Retry.default_policy) ?meter ~prng ?(from = 0) src =
  if batch < 1 then invalid_arg "Rpull.connect: batch must be at least 1";
  if from < 0 then invalid_arg "Rpull.connect: from must be non-negative";
  let batch = match flowctl with Some f -> Flowctl.initial_batch f | None -> batch in
  let ctrl = Option.join (Option.map Flowctl.controller flowctl) in
  { ctx; src; chan = channel; batch; ctrl; policy; meter; prng; next = from; buf = [];
    eos = false; transfers = 0 }

let credit t = match t.ctrl with Some c -> Aimd.current c | None -> t.batch

let rec read t =
  match t.buf with
  | x :: rest ->
      t.buf <- rest;
      Some x
  | [] ->
      if t.eos then None
      else begin
        let asked = credit t in
        let reply =
          Retry.call ~policy:t.policy ?meter:t.meter ~prng:t.prng t.ctx t.src
            ~op:Proto.transfer_op
            (Proto.transfer_request ~seq:t.next t.chan ~credit:asked)
        in
        t.transfers <- t.transfers + 1;
        let { Proto.eos; items }, rbase = Proto.parse_transfer_reply_base reply in
        (match rbase with
        | Some b when b <> t.next ->
            raise
              (Value.Protocol_error
                 (Printf.sprintf "Transfer reply based at %d, requested %d" b t.next))
        | _ -> ());
        t.eos <- eos;
        t.buf <- items;
        t.next <- t.next + List.length items;
        (* A full reply means the producer keeps pace: widen the next
           request.  (The exact-fill contract makes short replies imply
           eos, so there is no shrink signal on this synchronous path;
           recovery shrinks via {!Retry} backoff instead.) *)
        if (not eos) && List.length items >= asked then
          Option.iter Aimd.on_progress t.ctrl;
        (* A live producer never replies empty without eos, but loop
           rather than fabricate an end of stream. *)
        read t
      end

let pos t = t.next - List.length t.buf
let buffered t = List.length t.buf
let transfers_issued t = t.transfers
let controller t = t.ctrl
