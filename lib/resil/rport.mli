(** Resumable passive output: a {!Eden_transput.Port} that can replay.

    The plain port hands an item to exactly one [Transfer] and forgets
    it, so a consumer that crashes between receiving a reply and acting
    on it loses data, and a producer that crashes loses its buffer.  The
    resumable port numbers every item with an absolute stream position
    and changes the contract in three ways:

    - a seq-stamped [Transfer(chan, credit, seq)] asks for items
      starting {e at} position [seq], and serving it does not discard
      them;
    - the [seq] field doubles as a cumulative acknowledgement: items
      below it are pruned.  A consumer therefore asks for position [n]
      only once position [n-1] (and everything before it) is safe in its
      own checkpoint;
    - the port's whole state — first retained position, retained items,
      closed flag — [encode]s to a {!Eden_kernel.Value.t} for the owning
      Eject's checkpoint, and [load] restores it at reactivation.

    A restored port may be {e behind} the consumer (its checkpoint was
    older): serving then parks until the owner regenerates the gap,
    which is deterministic replay's job.  Un-stamped legacy [Transfer]s
    are served from an internal cursor and auto-acknowledge, restoring
    plain {!Eden_transput.Port} behaviour.

    Demand, capacity and laziness mirror the plain port: a writer parks
    until the next position is within [capacity] of the demand horizon
    (the highest [seq + credit] requested), so [capacity = 0] keeps a
    resumable pipeline demand-driven end to end. *)

module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Channel = Eden_transput.Channel

type t
type writer

val create : unit -> t

val add_channel : t -> ?capacity:int -> Channel.t -> writer
(** @raise Invalid_argument on negative capacity or duplicates. *)

val load : writer -> Value.t -> unit
(** Restores an [encode]d state; the demand horizon resets and rebuilds
    from the consumer's next request. *)

val encode : writer -> Value.t

val write : writer -> Value.t -> unit
(** Appends at the next position; parks while production would run
    [capacity] beyond the demand horizon.  Fiber context only. *)

val close : writer -> unit
val await_writable : writer -> unit
val is_closed : writer -> bool

val base : writer -> int
(** First retained (unacknowledged) position. *)

val next_seq : writer -> int
(** Position the next [write] will occupy. *)

val handlers : t -> (string * Kernel.handler) list
(** The [Transfer] operation, serving both stamped and legacy forms. *)
