module Kernel = Eden_kernel.Kernel
module Value = Eden_kernel.Value
module Uid = Eden_kernel.Uid
module Sched = Eden_sched.Sched
module Prng = Eden_util.Prng

type policy = { timeout : float; max_attempts : int; backoff : Backoff.t }

let policy ?(timeout = 10.0) ?(max_attempts = 10) ?(backoff = Backoff.default) () =
  if timeout <= 0.0 then invalid_arg "Retry.policy: timeout must be positive";
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts must be at least 1";
  { timeout; max_attempts; backoff }

let default_policy = policy ()

type meter = {
  mutable attempts : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable exhausted : int;
}

let create_meter () = { attempts = 0; retries = 0; timeouts = 0; exhausted = 0 }

exception Exhausted of string

let invoke ?(policy = default_policy) ?meter ~prng ctx dst ~op arg =
  let record f = match meter with Some m -> f m | None -> () in
  let rec go attempt prev =
    record (fun m ->
        m.attempts <- m.attempts + 1;
        if attempt > 1 then m.retries <- m.retries + 1);
    match Kernel.invoke_timeout ctx dst ~op arg ~timeout:policy.timeout with
    | Some _ as reply -> reply
    | None ->
        record (fun m -> m.timeouts <- m.timeouts + 1);
        if attempt >= policy.max_attempts then begin
          record (fun m -> m.exhausted <- m.exhausted + 1);
          None
        end
        else begin
          let u = Prng.float prng 1.0 in
          let d = Backoff.delay policy.backoff ~attempt ~u ~prev in
          Sched.sleep d;
          go (attempt + 1) d
        end
  in
  go 1 0.0

let call ?policy ?meter ~prng ctx dst ~op arg =
  match invoke ?policy ?meter ~prng ctx dst ~op arg with
  | Some (Ok v) -> v
  | Some (Error e) -> raise (Kernel.Eden_error e)
  | None -> raise (Exhausted (Printf.sprintf "retry budget exhausted invoking %s" op))
