(** Resumable active output: a {!Eden_transput.Push} with retry and
    positions.

    Deposits are seq-stamped with the position of their first item and
    issued through {!Retry}.  The consumer deduplicates by position and
    acknowledges with the position it expects next, so a retried
    (duplicated) deposit is harmless and a producer restarted from an
    old checkpoint discovers how far the consumer already got: [write]s
    below the acknowledged position are silently skipped during replay,
    keeping positions aligned without re-sending consumed data.

    [close] always sends a final end-of-stream deposit (empty if
    nothing is pending), and a duplicate of it after a crash is
    deduplicated like any other. *)

module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Channel = Eden_transput.Channel

type t

val connect :
  Kernel.ctx ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  ?channel:Channel.t ->
  ?policy:Retry.policy ->
  ?meter:Retry.meter ->
  prng:Eden_util.Prng.t ->
  ?from:int ->
  Uid.t ->
  t
(** [from] is the resume position: the stream position of the next
    [write] (default 0).

    [flowctl] supersedes [batch]: under [Fixed n] the flush threshold
    is [n]; under [Adaptive] it follows an AIMD controller — fully
    acknowledged deposits widen it, short acknowledgements (a consumer
    replaying after a crash) shrink it so recovery checkpoints at finer
    granularity.  One exchange stays outstanding at a time regardless
    of the credit window: deduplication-by-position needs deposits
    acknowledged in order. *)

val write : t -> Value.t -> unit
(** Buffers (or skips, during replay below the acknowledged position)
    one item; flushes when [batch] items are pending.  May raise
    {!Retry.Exhausted}.  Fiber context only. *)

val flush : t -> unit
(** Deposits anything pending and waits for the acknowledgement; no-op
    when nothing is pending. *)

val close : t -> unit
(** Flushes with the end-of-stream marker. *)

val pos : t -> int
(** Position of the next [write]. *)

val acked : t -> int
(** Position the consumer has acknowledged through. *)

val pending : t -> int
val deposits_issued : t -> int

val controller : t -> Eden_flowctl.Aimd.t option
(** The adaptive controller, when connected with an [Adaptive]
    [flowctl]. *)
