module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Semaphore = Eden_sched.Semaphore
module Prng = Eden_util.Prng
module Channel = Eden_transput.Channel
module Proto = Eden_transput.Proto

type spec = {
  init : Value.t;
  step : Value.t -> Value.t -> Value.t * Value.t list;
  flush : Value.t -> Value.t list;
}

let pure_map f = { init = Value.Unit; step = (fun st v -> (st, [ f v ])); flush = (fun _ -> []) }

let pure_filter p =
  { init = Value.Unit; step = (fun st v -> (st, if p v then [ v ] else [])); flush = (fun _ -> []) }

type gen = int -> Value.t option

let default_absorb st v = Value.List (v :: Value.to_list st)

let custom k ?node ~name behaviour =
  Kernel.create_eject k ?node ~dispatch:Kernel.Concurrent ~type_name:name behaviour

let ping = ("Ping", fun _ -> Value.Unit)

(* A stage worker that runs out of retry budget (or hits a peer's
   terminal error) gives up cleanly: the pipeline stalls — visible to
   the stall detector — instead of tearing the whole simulation down. *)
let guard body = try body () with Retry.Exhausted _ | Kernel.Eden_error _ -> ()

let rec drop n xs = if n <= 0 then xs else match xs with [] -> [] | _ :: r -> drop (n - 1) r

(* --- Read-only ------------------------------------------------------ *)

let source_ro k ?node ?(name = "rsource") ?(capacity = 0) ?(checkpoint_every = 1) gen =
  if checkpoint_every < 1 then invalid_arg "Rstage.source_ro: checkpoint_every must be positive";
  custom k ?node ~name (fun ctx ~passive ->
      let port = Rport.create () in
      let w = Rport.add_channel port ~capacity Channel.output in
      (match passive with Some v -> Rport.load w v | None -> ());
      Kernel.spawn_worker ctx ~name:(name ^ "/produce") (fun () ->
          let rec go since =
            if not (Rport.is_closed w) then begin
              Rport.await_writable w;
              if not (Rport.is_closed w) then
                match gen (Rport.next_seq w) with
                | Some v ->
                    Rport.write w v;
                    if since + 1 >= checkpoint_every then begin
                      Kernel.checkpoint ctx (Rport.encode w);
                      go 0
                    end
                    else go (since + 1)
                | None ->
                    Rport.close w;
                    Kernel.checkpoint ctx (Rport.encode w)
            end
          in
          go 0);
      ping :: Rport.handlers port)

let filter_ro k ?node ?(name = "rfilter") ?(capacity = 0) ?(batch = 1) ?flowctl ~upstream
    ?policy ?meter ~seed spec =
  custom k ?node ~name (fun ctx ~passive ->
      let prng = Prng.create seed in
      let port = Rport.create () in
      let w = Rport.add_channel port ~capacity Channel.output in
      let in0, st0 =
        match passive with
        | Some (Value.List [ Value.Int i; st; pv ]) ->
            Rport.load w pv;
            (i, st)
        | _ -> (0, spec.init)
      in
      Kernel.spawn_worker ctx ~name:(name ^ "/transform") (fun () ->
          if not (Rport.is_closed w) then
            guard (fun () ->
                let pull =
                  Rpull.connect ctx ~batch ?flowctl ?policy ?meter ~prng ~from:in0 upstream
                in
                let st = ref st0 in
                let ckpt () =
                  Kernel.checkpoint ctx
                    (Value.List [ Value.Int (Rpull.pos pull); !st; Rport.encode w ])
                in
                let rec go () =
                  if Rpull.buffered pull = 0 then Rport.await_writable w;
                  match Rpull.read pull with
                  | Some v ->
                      let st', outs = spec.step !st v in
                      st := st';
                      List.iter (Rport.write w) outs;
                      (* Batch boundary: persist before the next pull
                         acknowledges this batch upstream. *)
                      if Rpull.buffered pull = 0 then ckpt ();
                      go ()
                  | None ->
                      List.iter (Rport.write w) (spec.flush !st);
                      Rport.close w;
                      ckpt ()
                in
                go ()));
      ping :: Rport.handlers port)

let sink_done_of = function
  | Value.List [ Value.Int _; _; Value.Bool d ] -> d
  | _ -> false

let sink_ro k ?node ?(name = "rsink") ?(batch = 1) ?flowctl ~upstream ?policy ?meter ~seed
    ?(init = Value.List []) ?(absorb = default_absorb) ?(on_done = fun () -> ()) () =
  custom k ?node ~name (fun ctx ~passive ->
      let prng = Prng.create seed in
      let in0, st0, done0 =
        match passive with
        | Some (Value.List [ Value.Int i; st; Value.Bool d ]) -> (i, st, d)
        | _ -> (0, init, false)
      in
      Kernel.spawn_worker ctx ~name:(name ^ "/pump") (fun () ->
          if done0 then on_done ()
          else
            guard (fun () ->
                let pull =
                  Rpull.connect ctx ~batch ?flowctl ?policy ?meter ~prng ~from:in0 upstream
                in
                let st = ref st0 in
                let ckpt ~done_ =
                  Kernel.checkpoint ctx
                    (Value.List [ Value.Int (Rpull.pos pull); !st; Value.Bool done_ ])
                in
                let rec go () =
                  match Rpull.read pull with
                  | Some v ->
                      st := absorb !st v;
                      if Rpull.buffered pull = 0 then ckpt ~done_:false;
                      go ()
                  | None ->
                      ckpt ~done_:true;
                      on_done ()
                in
                go ()));
      [ ping ])

(* --- Write-only ----------------------------------------------------- *)

let source_wo k ?node ?(name = "rsource") ?(batch = 1) ?flowctl ~downstream ?policy ?meter
    ~seed gen =
  custom k ?node ~name (fun ctx ~passive ->
      let prng = Prng.create seed in
      let out0, done0 =
        match passive with
        | Some (Value.List [ Value.Int o; Value.Bool d ]) -> (o, d)
        | _ -> (0, false)
      in
      Kernel.spawn_worker ctx ~name:(name ^ "/pump") (fun () ->
          if not done0 then
            guard (fun () ->
                let push =
                  Rpush.connect ctx ~batch ?flowctl ?policy ?meter ~prng ~from:out0 downstream
                in
                let ckpt ~done_ =
                  Kernel.checkpoint ctx
                    (Value.List [ Value.Int (Rpush.pos push); Value.Bool done_ ])
                in
                let rec go () =
                  match gen (Rpush.pos push) with
                  | Some v ->
                      Rpush.write push v;
                      if Rpush.pending push = 0 then ckpt ~done_:false;
                      go ()
                  | None ->
                      Rpush.close push;
                      ckpt ~done_:true
                in
                go ()));
      [ ping ])

(* Shared Deposit-side machinery: deduplicate a (possibly replayed)
   deposit against the expected position, process the fresh suffix, and
   acknowledge with the next expected position.  [finally] runs (under
   the lock) on the end-of-stream deposit, once. *)
let deposit_handler ~lock ~in_seq ~finished ~on_items ~on_eos ~ckpt arg =
  let chan, eos, items, seq = Proto.parse_deposit_request_seq arg in
  if not (Channel.equal chan Channel.output) then
    raise (Kernel.Eden_error ("no such channel: " ^ Channel.to_string chan));
  Semaphore.acquire lock;
  Fun.protect
    ~finally:(fun () -> Semaphore.release lock)
    (fun () ->
      if !finished then Proto.deposit_ack ~next_seq:!in_seq
      else begin
        let seq = match seq with Some s -> s | None -> !in_seq in
        if seq > !in_seq then
          raise
            (Kernel.Eden_error
               (Printf.sprintf "Deposit gap: at %d, expected %d" seq !in_seq));
        let fresh = drop (!in_seq - seq) items in
        on_items fresh;
        if eos then begin
          on_eos ();
          finished := true
        end;
        ckpt ();
        Proto.deposit_ack ~next_seq:!in_seq
      end)

let filter_wo k ?node ?(name = "rfilter") ?(batch = 1) ?flowctl ~downstream ?policy ?meter
    ~seed spec =
  custom k ?node ~name (fun ctx ~passive ->
      let prng = Prng.create seed in
      let in0, st0, out0, fin0 =
        match passive with
        | Some (Value.List [ Value.Int i; st; Value.Int o; Value.Bool f ]) -> (i, st, o, f)
        | _ -> (0, spec.init, 0, false)
      in
      let in_seq = ref in0 in
      let st = ref st0 in
      let finished = ref fin0 in
      let push =
        Rpush.connect ctx ~batch ?flowctl ?policy ?meter ~prng ~from:out0 downstream
      in
      let lock = Semaphore.create 1 in
      let ckpt () =
        Kernel.checkpoint ctx
          (Value.List
             [ Value.Int !in_seq; !st; Value.Int (Rpush.pos push); Value.Bool !finished ])
      in
      let on_items fresh =
        List.iter
          (fun v ->
            let st', outs = spec.step !st v in
            st := st';
            List.iter (Rpush.write push) outs;
            incr in_seq)
          fresh;
        (* Downstream must hold this batch before we acknowledge it
           upstream, else a double crash could lose it. *)
        if fresh <> [] then Rpush.flush push
      in
      let on_eos () =
        List.iter (Rpush.write push) (spec.flush !st);
        Rpush.close push
      in
      [
        (Proto.deposit_op, deposit_handler ~lock ~in_seq ~finished ~on_items ~on_eos ~ckpt);
        ping;
      ])

let sink_wo k ?node ?(name = "rsink") ?(init = Value.List []) ?(absorb = default_absorb)
    ?(on_done = fun () -> ()) () =
  custom k ?node ~name (fun ctx ~passive ->
      let in0, st0, done0 =
        match passive with
        | Some (Value.List [ Value.Int i; st; Value.Bool d ]) -> (i, st, d)
        | _ -> (0, init, false)
      in
      let in_seq = ref in0 in
      let st = ref st0 in
      let finished = ref done0 in
      let lock = Semaphore.create 1 in
      let ckpt () =
        Kernel.checkpoint ctx (Value.List [ Value.Int !in_seq; !st; Value.Bool !finished ])
      in
      if done0 then on_done ();
      let on_items fresh =
        List.iter
          (fun v ->
            st := absorb !st v;
            incr in_seq)
          fresh
      in
      let on_eos () = on_done () in
      [
        (Proto.deposit_op, deposit_handler ~lock ~in_seq ~finished ~on_items ~on_eos ~ckpt);
        ping;
      ])

(* --- Conventional --------------------------------------------------- *)

let pipe k ?node ?(name = "rpipe") ?(capacity = 4) () =
  custom k ?node ~name (fun ctx ~passive ->
      let port = Rport.create () in
      let w = Rport.add_channel port ~capacity Channel.output in
      let in_seq = ref 0 in
      let finished = ref false in
      (match passive with
      | Some (Value.List [ Value.Int i; Value.Bool f; pv ]) ->
          in_seq := i;
          finished := f;
          Rport.load w pv
      | _ -> ());
      let lock = Semaphore.create 1 in
      let ckpt () =
        Kernel.checkpoint ctx
          (Value.List [ Value.Int !in_seq; Value.Bool !finished; Rport.encode w ])
      in
      let on_items fresh =
        (* Rport.write parks when the buffer is [capacity] ahead of
           demand, withholding the acknowledgement — back-pressure. *)
        List.iter
          (fun v ->
            Rport.write w v;
            incr in_seq)
          fresh
      in
      let on_eos () = Rport.close w in
      (Proto.deposit_op, deposit_handler ~lock ~in_seq ~finished ~on_items ~on_eos ~ckpt)
      :: ping
      :: Rport.handlers port)

let source_active = source_wo

let filter_active k ?node ?(name = "rfilter") ?(batch = 1) ?flowctl ~upstream ~downstream
    ?policy ?meter ~seed spec =
  custom k ?node ~name (fun ctx ~passive ->
      let prng = Prng.create seed in
      let in0, st0, out0, done0 =
        match passive with
        | Some (Value.List [ Value.Int i; st; Value.Int o; Value.Bool d ]) -> (i, st, o, d)
        | _ -> (0, spec.init, 0, false)
      in
      Kernel.spawn_worker ctx ~name:(name ^ "/pump") (fun () ->
          if not done0 then
            guard (fun () ->
                let pull =
                  Rpull.connect ctx ~batch ?flowctl ?policy ?meter ~prng ~from:in0 upstream
                in
                let push =
                  Rpush.connect ctx ~batch ?flowctl ?policy ?meter ~prng:(Prng.split prng)
                    ~from:out0 downstream
                in
                let st = ref st0 in
                let ckpt ~done_ =
                  Kernel.checkpoint ctx
                    (Value.List
                       [
                         Value.Int (Rpull.pos pull);
                         !st;
                         Value.Int (Rpush.pos push);
                         Value.Bool done_;
                       ])
                in
                let rec go () =
                  match Rpull.read pull with
                  | Some v ->
                      let st', outs = spec.step !st v in
                      st := st';
                      List.iter (Rpush.write push) outs;
                      if Rpull.buffered pull = 0 then begin
                        (* Make the batch durable downstream before the
                           next pull acknowledges it upstream. *)
                        Rpush.flush push;
                        ckpt ~done_:false
                      end;
                      go ()
                  | None ->
                      List.iter (Rpush.write push) (spec.flush !st);
                      Rpush.close push;
                      ckpt ~done_:true
                in
                go ()));
      [ ping ])

let sink_active = sink_ro

(* --- Inspecting sink state ------------------------------------------ *)

let sink_state k uid =
  match Kernel.checkpoints k uid with
  | (_, Value.List [ Value.Int _; st; Value.Bool _ ]) :: _ -> Some st
  | _ -> None

let sink_done k uid =
  match Kernel.checkpoints k uid with (_, v) :: _ -> sink_done_of v | _ -> false

let sink_output k uid =
  match sink_state k uid with
  | Some (Value.List items) -> Some (List.rev items)
  | _ -> None
