(** Assembling, supervising and chaos-testing resumable pipelines.

    The resilient mirror of {!Eden_transput.Pipeline}: the same three
    disciplines, built from {!Rstage} stages wired with seq-stamped
    protocol, per-stage checkpoints and retried invocations.  A shared
    {!Retry.meter} accounts every attempt across the pipeline, and each
    stage derives its jitter PRNG from [seed] plus its position, so a
    whole chaos run is a deterministic function of its seeds.

    [supervise] registers every stage with a {!Supervisor};
    [await_timeout] bounds a run in virtual time so chaos sweeps can
    score completion instead of hanging; [crash_at] arms a crash as a
    virtual-time event before the run starts. *)

module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Pipeline = Eden_transput.Pipeline

type t = {
  kernel : Kernel.t;
  discipline : Pipeline.discipline;
  stages : (string * Uid.t) list;  (** In stream order, labelled. *)
  source : Uid.t;
  sink : Uid.t;
  done_ : unit Eden_sched.Ivar.t;
  meter : Retry.meter;  (** Shared across every stage's retries. *)
}

val build :
  Kernel.t ->
  ?nodes:Eden_net.Net.node_id list ->
  ?capacity:int ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  ?policy:Retry.policy ->
  seed:int64 ->
  Pipeline.discipline ->
  gen:Rstage.gen ->
  filters:Rstage.spec list ->
  t
(** The sink accumulates with {!Rstage.default_absorb}; read it back
    with [output].  [flowctl] sizes every stage's per-exchange batch
    (see {!Rstage}); each adaptive stage gets its own controller. *)

val start : t -> unit
(** Pokes the pumping stages, exactly as {!Eden_transput.Pipeline.start}
    does per discipline. *)

val await : t -> unit

val await_timeout : t -> deadline:float -> bool
(** Waits at most [deadline] virtual time for completion; [false] means
    the pipeline did not finish (count it as a failed chaos run). *)

val completed : t -> bool

val output : t -> Value.t list option
(** The sink's accumulated stream, from its latest checkpoint. *)

val supervise : ?ping:bool -> t -> Supervisor.t -> unit
(** Watches every stage. *)

val crash_at : t -> Uid.t -> float -> unit
(** Schedules a {!Eden_kernel.Kernel.crash} of one stage at an absolute
    virtual time; call before running. *)

val diagnose : t -> Pipeline.stall list option
(** [None] once complete; otherwise the current blocked-fiber
    attribution against this pipeline's stages (see
    {!Eden_transput.Pipeline.stall_report}). *)
