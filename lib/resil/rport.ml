module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Waitq = Eden_sched.Waitq
module Channel = Eden_transput.Channel
module Proto = Eden_transput.Proto

type chan_state = {
  chan : Channel.t;
  capacity : int;
  mutable base : int; (* seq of the first retained item *)
  mutable items : Value.t list; (* retained, oldest first *)
  mutable count : int;
  mutable target : int; (* demand horizon: highest seq + credit requested *)
  mutable closed : bool;
  mutable cursor : int; (* implicit position for legacy Transfers *)
  readers : Waitq.t; (* parked Transfer handlers *)
  writers : Waitq.t; (* parked [write] callers *)
}

type t = { channels : (Channel.t * chan_state) list ref }
type writer = chan_state

let create () = { channels = ref [] }

let add_channel t ?(capacity = 0) chan =
  if capacity < 0 then invalid_arg "Rport.add_channel: negative capacity";
  if List.exists (fun (c, _) -> Channel.equal c chan) !(t.channels) then
    invalid_arg ("Rport.add_channel: duplicate channel " ^ Channel.to_string chan);
  let s =
    {
      chan;
      capacity;
      base = 0;
      items = [];
      count = 0;
      target = 0;
      closed = false;
      cursor = 0;
      readers = Waitq.create ("rport " ^ Channel.to_string chan ^ " readers");
      writers = Waitq.create ("rport " ^ Channel.to_string chan ^ " writers");
    }
  in
  t.channels := (chan, s) :: !(t.channels);
  s

let find t chan = List.find_opt (fun (c, _) -> Channel.equal c chan) !(t.channels)

let next_seq s = s.base + s.count
let base s = s.base
let is_closed s = s.closed

let encode s =
  Value.List [ Value.Int s.base; Value.List s.items; Value.Bool s.closed ]

let load s v =
  match v with
  | Value.List [ Value.Int b; Value.List items; Value.Bool closed ] ->
      s.base <- b;
      s.items <- items;
      s.count <- List.length items;
      s.closed <- closed;
      (* Demand is volatile: it rebuilds from the consumer's retried
         requests, so restart un-demanded. *)
      s.target <- b;
      s.cursor <- b
  | v -> raise (Value.Protocol_error ("malformed Rport state: " ^ Value.to_string v))

let rec write s item =
  if s.closed then failwith "Rport.write: channel closed";
  if next_seq s < s.target + s.capacity then begin
    s.items <- s.items @ [ item ];
    s.count <- s.count + 1;
    ignore (Waitq.wake_all s.readers)
  end
  else begin
    Waitq.park s.writers;
    write s item
  end

let rec await_writable s =
  if (not s.closed) && next_seq s >= s.target + s.capacity then begin
    Waitq.park s.writers;
    await_writable s
  end

let close s =
  if not s.closed then begin
    s.closed <- true;
    ignore (Waitq.wake_all s.readers)
  end

(* Acknowledge: discard retained items strictly below [upto]. *)
let prune s upto =
  while s.count > 0 && s.base < upto do
    s.items <- List.tl s.items;
    s.base <- s.base + 1;
    s.count <- s.count - 1
  done

let rec take n xs =
  match (n, xs) with 0, _ | _, [] -> [] | n, x :: rest -> x :: take (n - 1) rest

(* Serve one Transfer for positions [seq, seq + credit).  Runs as an
   invocation handler inside a worker fiber, so parking blocks only this
   request — a retried duplicate parks alongside and both are served
   when items appear. *)
let serve s ~seq ~credit =
  if seq < s.base then
    raise
      (Kernel.Eden_error
         (Printf.sprintf "Transfer at %d below acknowledged position %d" seq s.base));
  s.target <- max s.target (seq + credit);
  (* New demand may unblock a lazy writer. *)
  ignore (Waitq.wake_all s.writers);
  let rec await () =
    prune s seq;
    let ready =
      (s.base = seq && (s.count > 0 || s.closed)) || (s.closed && next_seq s <= seq)
    in
    if not ready then begin
      Waitq.park s.readers;
      await ()
    end
  in
  await ();
  let avail = max 0 (s.count - (seq - s.base)) in
  let k = min credit avail in
  let items = take k s.items in
  let eos = s.closed && seq + k >= next_seq s in
  (items, eos)

let serve_transfer t arg =
  let chan, credit, seq = Proto.parse_transfer_request_seq arg in
  match find t chan with
  | None -> raise (Kernel.Eden_error ("no such channel: " ^ Channel.to_string chan))
  | Some (_, s) -> (
      match seq with
      | Some seq ->
          let items, eos = serve s ~seq ~credit in
          Proto.transfer_reply ~base:seq { Proto.eos; items }
      | None ->
          (* Legacy request: serve from the cursor and auto-acknowledge,
             which is exactly the plain Port contract. *)
          let seq = max s.cursor s.base in
          let items, eos = serve s ~seq ~credit in
          s.cursor <- seq + List.length items;
          prune s s.cursor;
          Proto.transfer_reply { Proto.eos; items })

let handlers t = [ (Proto.transfer_op, serve_transfer t) ]
