(** Crash-resumable pipeline stages in every discipline.

    The plain {!Eden_transput.Stage} builders hold a transform's state
    in fiber-local variables, so a crash loses both the state and the
    stream position.  The resumable builders externalise both:

    - a transform is a {!spec} — explicit checkpointable state threaded
      through [step], so the Eject can persist it;
    - a source generator is {e indexed} ([int -> item option]) and must
      be pure, so a restarted producer regenerates exactly the items a
      consumer re-requests;
    - every stage checkpoints [(input position, state, output state)]
      at batch boundaries, always {e after} the downstream effect of a
      batch is durable and {e before} the upstream acknowledgement that
      lets the producer discard it.  Replay after a restart is therefore
      exactly-once end to end: duplicated work is deduplicated by
      position, lost work is regenerated deterministically.

    Crashed {e passive} stages (read-only sources and filters, pipes,
    write-only filters and sinks) self-heal: the peer's retried
    invocation reactivates them from the checkpoint.  Crashed {e
    pumping} stages (read-only sinks, write-only sources, every
    conventional active stage) receive no invocations and stay down
    until a {!Supervisor} pokes them — that asymmetry is the paper's
    pump observation resurfacing as a recovery concern.

    Every resumable stage serves a ["Ping"] operation for supervisor
    liveness probes.  All builders take a [seed] so retry jitter is
    deterministic, and reset to it at each activation so a restarted
    stage replays the same schedule.

    [flowctl] sizes the per-exchange batch (see {!Rpull.connect} and
    {!Rpush.connect}); checkpoints stay at batch boundaries, so
    exactly-once holds at whatever granularity the controller picks. *)

module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Channel = Eden_transput.Channel

(** A transform with explicit, checkpointable state. *)
type spec = {
  init : Value.t;
  step : Value.t -> Value.t -> Value.t * Value.t list;
      (** [step state item = (state', outputs)]; must be deterministic. *)
  flush : Value.t -> Value.t list;  (** Tail outputs at end of input. *)
}

val pure_map : (Value.t -> Value.t) -> spec
val pure_filter : (Value.t -> bool) -> spec

type gen = int -> Value.t option
(** Indexed generator: [gen i] is item [i], [None] at end of stream.
    Must be pure — it is re-evaluated during replay. *)

val default_absorb : Value.t -> Value.t -> Value.t
(** Sink fold accumulating items as a reversed [Value.List]; decode
    with {!sink_output}. *)

(** {1 Read-only discipline} *)

val source_ro :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?checkpoint_every:int ->
  gen ->
  Uid.t

val filter_ro :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  upstream:Uid.t ->
  ?policy:Retry.policy ->
  ?meter:Retry.meter ->
  seed:int64 ->
  spec ->
  Uid.t

val sink_ro :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  upstream:Uid.t ->
  ?policy:Retry.policy ->
  ?meter:Retry.meter ->
  seed:int64 ->
  ?init:Value.t ->
  ?absorb:(Value.t -> Value.t -> Value.t) ->
  ?on_done:(unit -> unit) ->
  unit ->
  Uid.t
(** The pump.  Folds [absorb] (default {!default_absorb}) over the
    stream, checkpointing the fold state; [on_done] must be idempotent —
    a sink restarted after completion calls it again. *)

(** {1 Write-only discipline} *)

val source_wo :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  downstream:Uid.t ->
  ?policy:Retry.policy ->
  ?meter:Retry.meter ->
  seed:int64 ->
  gen ->
  Uid.t
(** The pump. *)

val filter_wo :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  downstream:Uid.t ->
  ?policy:Retry.policy ->
  ?meter:Retry.meter ->
  seed:int64 ->
  spec ->
  Uid.t

val sink_wo :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?init:Value.t ->
  ?absorb:(Value.t -> Value.t -> Value.t) ->
  ?on_done:(unit -> unit) ->
  unit ->
  Uid.t

(** {1 Conventional discipline} *)

val pipe :
  Kernel.t -> ?node:Eden_net.Net.node_id -> ?name:string -> ?capacity:int -> unit -> Uid.t
(** A resumable passive buffer: deduplicating [Deposit] in, replayable
    [Transfer] out, whole buffer checkpointed per deposit. *)

val source_active :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  downstream:Uid.t ->
  ?policy:Retry.policy ->
  ?meter:Retry.meter ->
  seed:int64 ->
  gen ->
  Uid.t

val filter_active :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  upstream:Uid.t ->
  downstream:Uid.t ->
  ?policy:Retry.policy ->
  ?meter:Retry.meter ->
  seed:int64 ->
  spec ->
  Uid.t
(** Pump: active on both sides. *)

val sink_active :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  upstream:Uid.t ->
  ?policy:Retry.policy ->
  ?meter:Retry.meter ->
  seed:int64 ->
  ?init:Value.t ->
  ?absorb:(Value.t -> Value.t -> Value.t) ->
  ?on_done:(unit -> unit) ->
  unit ->
  Uid.t

(** {1 Inspecting sink state} *)

val sink_state : Kernel.t -> Uid.t -> Value.t option
(** The fold state in the sink's latest checkpoint, if any. *)

val sink_done : Kernel.t -> Uid.t -> bool
(** Whether the latest checkpoint marks the stream complete. *)

val sink_output : Kernel.t -> Uid.t -> Value.t list option
(** Decodes a {!default_absorb} accumulation into stream order. *)
