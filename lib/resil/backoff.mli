(** Deterministic exponential backoff with bounded jitter.

    A reliable invocation that times out should not retry immediately
    (it would re-lose under the same congestion or re-hit the same
    crashed Eject before its supervisor notices), nor at fixed intervals
    (synchronised retries).  The schedule here grows geometrically from
    [base] by [multiplier], subtracts up to [jitter] of each raw delay
    using a caller-supplied uniform draw, and clamps to [cap].

    Three properties, relied on by tests and by the experiments'
    reproducibility:

    - {b deterministic}: the schedule is a pure function of the
      parameters and the PRNG seed;
    - {b monotone}: each delay is at least the previous one (jitter
      never reorders the schedule);
    - {b bounded}: no delay exceeds [cap]. *)

type t = private { base : float; multiplier : float; cap : float; jitter : float }

val default : t
(** 1s doubling to a 30s cap with 10% jitter. *)

val make : ?base:float -> ?multiplier:float -> ?cap:float -> ?jitter:float -> unit -> t
(** @raise Invalid_argument unless [base > 0], [multiplier >= 1],
    [cap >= base] and [0 <= jitter < 1]. *)

val delay : t -> attempt:int -> u:float -> prev:float -> float
(** Delay before retry number [attempt] (1-based), given a uniform draw
    [u] in [0,1) and the previous delay [prev] (0 for the first).
    Computed as [min cap (max prev (base * multiplier^(attempt-1) * (1 -
    jitter * u)))] — the [max prev] enforces monotonicity under jitter,
    the [min cap] boundedness.
    @raise Invalid_argument if [attempt < 1]. *)

val schedule : t -> seed:int64 -> int -> float list
(** The first [n] delays using a {!Eden_util.Prng} stream from [seed];
    the reference realisation of the three properties above. *)
