(** A supervisor Eject: crash detection and checkpoint restart.

    The kernel's activation-on-invocation already heals passive stages —
    any retried invocation restarts them.  What it cannot heal is a
    crashed {e pump}: a read-only sink, write-only source or
    conventional active stage receives no invocations, so nothing ever
    reactivates it and the pipeline stalls forever (the failure
    demonstrated in the seed's failure tests).  The supervisor closes
    that gap.

    It is itself an Eject whose monitor process wakes every [interval]
    of virtual time and, for each watched Eject:

    - compares the kernel's per-Eject crash counter against the last
      value seen (a management-plane read: probing by invocation would
      itself reactivate the target and mask the crash);
    - on a new crash, waits a restart backoff and
      {!Eden_kernel.Kernel.poke}s the Eject, which reactivates from its
      latest checkpoint — the resumable-stream protocol then replays the
      lost window;
    - gives up (recorded, and reported via [on_give_up]) when more than
      [max_restarts] restarts land inside a sliding [window] — the
      escalation path for a stage that keeps dying;
    - optionally (per watch) sends a ["Ping"] liveness probe and treats
      a timeout as a wedge: the target is crashed and restarted even
      though it never crashed on its own.

    Watches and policy live in driver memory shared with the behaviour
    closure, so the supervisor itself surviving a crash needs only an
    invocation or poke to resume monitoring with its watch list
    intact. *)

module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid

type policy = {
  interval : float;  (** Monitor period; also the crash-detection latency bound. *)
  max_restarts : int;
  window : float;  (** Sliding window for [max_restarts]. *)
  restart_backoff : Backoff.t;  (** Delay before each poke, by consecutive restart count. *)
  ping_timeout : float;  (** Reply window for per-watch liveness probes. *)
}

val default_policy : policy

val policy :
  ?interval:float ->
  ?max_restarts:int ->
  ?window:float ->
  ?restart_backoff:Backoff.t ->
  ?ping_timeout:float ->
  unit ->
  policy

type t
(** Handle owned by the driver; the underlying Eject is [uid]. *)

val create :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?policy:policy ->
  ?seed:int64 ->
  ?on_give_up:(string -> Uid.t -> unit) ->
  unit ->
  t

val uid : t -> Uid.t

val watch : t -> ?ping:bool -> label:string -> Uid.t -> unit
(** Adds an Eject to the watch list (idempotent per UID).  [ping]
    enables the liveness probe — only for Ejects that serve ["Ping"]. *)

val unwatch : t -> Uid.t -> unit

val start : t -> unit
(** Pokes the supervisor Eject, starting the monitor process. *)

val stop : t -> unit
(** Ends monitoring after at most one more tick, letting the simulation
    quiesce. *)

(** {1 Status} *)

val restarts : t -> int
(** Total pokes issued. *)

val give_ups : t -> int
(** Total watches abandoned, mirroring {!restarts}.  Counted on the
    shared control record (so it survives supervisor crashes) and never
    decremented — unlike {!gave_up}, it is unaffected by a later
    [unwatch] of the abandoned entry.  Each give-up is also annotated on
    the kernel's collector as a ["supervisor.give_up"] instant with the
    in-window restart count and budget. *)

val gave_up : t -> (string * Uid.t) list
(** Watches abandoned after exceeding the restart budget. *)

val watched : t -> (string * Uid.t) list
