module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Channel = Eden_transput.Channel
module Proto = Eden_transput.Proto
module Aimd = Eden_flowctl.Aimd
module Flowctl = Eden_flowctl.Flowctl

type t = {
  ctx : Kernel.ctx;
  dst : Uid.t;
  chan : Channel.t;
  batch : int;
  ctrl : Aimd.t option; (* adaptive flush threshold; [batch] when absent *)
  policy : Retry.policy;
  meter : Retry.meter option;
  prng : Eden_util.Prng.t;
  mutable next : int; (* position of the next [write] *)
  mutable acked : int; (* consumer's next expected position *)
  mutable pend : Value.t list; (* oldest first; head at next - |pend| *)
  mutable closed : bool;
  mutable deposits : int;
}

let connect ctx ?(batch = 1) ?flowctl ?(channel = Channel.output)
    ?(policy = Retry.default_policy) ?meter ~prng ?(from = 0) dst =
  if batch < 1 then invalid_arg "Rpush.connect: batch must be at least 1";
  if from < 0 then invalid_arg "Rpush.connect: from must be non-negative";
  let batch = match flowctl with Some f -> Flowctl.initial_batch f | None -> batch in
  let ctrl = Option.join (Option.map Flowctl.controller flowctl) in
  { ctx; dst; chan = channel; batch; ctrl; policy; meter; prng; next = from; acked = from;
    pend = []; closed = false; deposits = 0 }

let threshold t = match t.ctrl with Some c -> Aimd.current c | None -> t.batch

let pstart t = t.next - List.length t.pend

let rec drop n xs = if n <= 0 then xs else match xs with [] -> [] | _ :: r -> drop (n - 1) r

let rec send t ~eos =
  let reply =
    Retry.call ~policy:t.policy ?meter:t.meter ~prng:t.prng t.ctx t.dst ~op:Proto.deposit_op
      (Proto.deposit_request ~seq:(pstart t) t.chan ~eos t.pend)
  in
  t.deposits <- t.deposits + 1;
  (match Proto.parse_deposit_ack reply with
  | None ->
      (* Legacy unit acknowledgement: everything was accepted. *)
      t.acked <- max t.acked t.next;
      t.pend <- []
  | Some a ->
      t.pend <- drop (a - pstart t) t.pend;
      t.acked <- max t.acked a);
  (* A consumer restarted from an old checkpoint may acknowledge short;
     re-deposit the remainder.  A short acknowledgement also means
     recovery is replaying: shrink the batch so the restarted consumer
     checkpoints at finer granularity while it catches up. *)
  (match t.ctrl with
  | Some c -> if t.pend <> [] then Aimd.on_stall c else Aimd.on_progress c
  | None -> ());
  if t.pend <> [] then send t ~eos

let flush t = if t.pend <> [] then send t ~eos:false

let write t item =
  if t.closed then failwith "Rpush.write: closed";
  if t.next < t.acked then
    (* Replay below the acknowledged position: the consumer already has
       this item; keep positions aligned without re-sending it. *)
    t.next <- t.next + 1
  else begin
    t.pend <- t.pend @ [ item ];
    t.next <- t.next + 1;
    if List.length t.pend >= threshold t then flush t
  end

let close t =
  if not t.closed then begin
    send t ~eos:true;
    t.closed <- true
  end

let pos t = t.next
let acked t = t.acked
let pending t = List.length t.pend
let deposits_issued t = t.deposits
let controller t = t.ctrl
