module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Ivar = Eden_sched.Ivar
module Sched = Eden_sched.Sched
module Pipeline = Eden_transput.Pipeline

type t = {
  kernel : Kernel.t;
  discipline : Pipeline.discipline;
  stages : (string * Uid.t) list;
  source : Uid.t;
  sink : Uid.t;
  done_ : unit Ivar.t;
  meter : Retry.meter;
}

let placer kernel nodes =
  let nodes = match nodes with [] -> [ List.hd (Kernel.nodes kernel) ] | ns -> ns in
  let arr = Array.of_list nodes in
  let i = ref 0 in
  fun () ->
    let n = arr.(!i mod Array.length arr) in
    incr i;
    n

let build kernel ?(nodes = []) ?(capacity = 0) ?(batch = 1) ?flowctl ?policy ~seed discipline
    ~gen ~filters =
  let next_node = placer kernel nodes in
  let meter = Retry.create_meter () in
  let done_ = Ivar.create () in
  let on_done () = ignore (Ivar.try_fill done_ ()) in
  let stage_seed i = Int64.add seed (Int64.of_int i) in
  let n = List.length filters in
  let flabel i = Printf.sprintf "filter-%d" i in
  match discipline with
  | Pipeline.Read_only ->
      let source = Rstage.source_ro kernel ~node:(next_node ()) ~capacity gen in
      let filter_uids =
        List.fold_left
          (fun ups spec ->
            let i = List.length ups in
            Rstage.filter_ro kernel ~node:(next_node ()) ~name:(flabel i) ~capacity ~batch
              ?flowctl ~upstream:(List.hd ups) ?policy ~meter ~seed:(stage_seed i) spec
            :: ups)
          [ source ] filters
      in
      let sink =
        Rstage.sink_ro kernel ~node:(next_node ()) ~batch ?flowctl
          ~upstream:(List.hd filter_uids) ?policy ~meter ~seed:(stage_seed (n + 1)) ~on_done
          ()
      in
      let filters_in_order = List.rev (List.filteri (fun i _ -> i < n) filter_uids) in
      {
        kernel;
        discipline;
        stages =
          (("source", source) :: List.mapi (fun i u -> (flabel (i + 1), u)) filters_in_order)
          @ [ ("sink", sink) ];
        source;
        sink;
        done_;
        meter;
      }
  | Pipeline.Write_only ->
      (* Sink-first, the mirror image. *)
      let sink = Rstage.sink_wo kernel ~node:(next_node ()) ~on_done () in
      let filter_uids =
        List.fold_left
          (fun downs spec ->
            let i = n - List.length downs + 1 in
            Rstage.filter_wo kernel ~node:(next_node ()) ~name:(flabel i) ~batch ?flowctl
              ~downstream:(List.hd downs) ?policy ~meter ~seed:(stage_seed i) spec
            :: downs)
          [ sink ] (List.rev filters)
      in
      let source =
        Rstage.source_wo kernel ~node:(next_node ()) ~batch ?flowctl
          ~downstream:(List.hd filter_uids) ?policy ~meter ~seed:(stage_seed 0) gen
      in
      let filters_in_order = List.filteri (fun i _ -> i < n) filter_uids in
      {
        kernel;
        discipline;
        stages =
          (("source", source) :: List.mapi (fun i u -> (flabel (i + 1), u)) filters_in_order)
          @ [ ("sink", sink) ];
        source;
        sink;
        done_;
        meter;
      }
  | Pipeline.Conventional ->
      let pipe_capacity = max 1 capacity in
      let first_pipe =
        Rstage.pipe kernel ~node:(next_node ()) ~name:"pipe-1" ~capacity:pipe_capacity ()
      in
      let source =
        Rstage.source_active kernel ~node:(next_node ()) ~batch ?flowctl ~downstream:first_pipe
          ?policy ~meter ~seed:(stage_seed 0) gen
      in
      let filter_uids, pipe_uids =
        List.fold_left
          (fun (fs, ps) spec ->
            let i = List.length fs + 1 in
            let out_pipe =
              Rstage.pipe kernel ~node:(next_node ())
                ~name:(Printf.sprintf "pipe-%d" (i + 1))
                ~capacity:pipe_capacity ()
            in
            let f =
              Rstage.filter_active kernel ~node:(next_node ()) ~name:(flabel i) ~batch ?flowctl
                ~upstream:(List.hd ps) ~downstream:out_pipe ?policy ~meter
                ~seed:(stage_seed i) spec
            in
            (f :: fs, out_pipe :: ps))
          ([], [ first_pipe ]) filters
      in
      let sink =
        Rstage.sink_active kernel ~node:(next_node ()) ~batch ?flowctl
          ~upstream:(List.hd pipe_uids) ?policy ~meter ~seed:(stage_seed (n + 1)) ~on_done
          ()
      in
      let filters_in_order = List.rev filter_uids in
      let pipes_in_order = List.rev pipe_uids in
      {
        kernel;
        discipline;
        stages =
          ("source", source)
          :: List.concat
               (List.mapi
                  (fun i p ->
                    (Printf.sprintf "pipe-%d" (i + 1), p)
                    ::
                    (match List.nth_opt filters_in_order i with
                    | Some f -> [ (flabel (i + 1), f) ]
                    | None -> []))
                  pipes_in_order)
          @ [ ("sink", sink) ];
        source;
        sink;
        done_;
        meter;
      }

let start t =
  match t.discipline with
  | Pipeline.Read_only -> Kernel.poke t.kernel t.sink
  | Pipeline.Write_only -> Kernel.poke t.kernel t.source
  | Pipeline.Conventional ->
      Kernel.poke t.kernel t.source;
      List.iter
        (fun (label, u) ->
          if String.length label >= 6 && String.sub label 0 6 = "filter" then
            Kernel.poke t.kernel u)
        t.stages;
      Kernel.poke t.kernel t.sink

let await t = Ivar.read t.done_

let await_timeout t ~deadline =
  match Ivar.read_timeout (Kernel.sched t.kernel) t.done_ deadline with
  | Some () -> true
  | None -> false

let completed t = Ivar.is_filled t.done_
let output t = Rstage.sink_output t.kernel t.sink

let supervise ?ping t sup =
  List.iter (fun (label, u) -> Supervisor.watch sup ?ping ~label u) t.stages

let crash_at t uid at =
  let sched = Kernel.sched t.kernel in
  let delay = Float.max 0.0 (at -. Sched.now sched) in
  Sched.timer sched delay (fun () -> Kernel.crash t.kernel uid)

let diagnose t =
  if completed t then None else Some (Pipeline.stall_report t.kernel ~stages:t.stages)
