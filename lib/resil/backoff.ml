module Prng = Eden_util.Prng

type t = { base : float; multiplier : float; cap : float; jitter : float }

let make ?(base = 1.0) ?(multiplier = 2.0) ?(cap = 30.0) ?(jitter = 0.1) () =
  if base <= 0.0 then invalid_arg "Backoff.make: base must be positive";
  if multiplier < 1.0 then invalid_arg "Backoff.make: multiplier must be at least 1";
  if cap < base then invalid_arg "Backoff.make: cap must be at least base";
  if jitter < 0.0 || jitter >= 1.0 then invalid_arg "Backoff.make: jitter must be in [0,1)";
  { base; multiplier; cap; jitter }

let default = make ()

let delay t ~attempt ~u ~prev =
  if attempt < 1 then invalid_arg "Backoff.delay: attempt must be at least 1";
  let raw = t.base *. (t.multiplier ** float_of_int (attempt - 1)) in
  let jittered = raw *. (1.0 -. (t.jitter *. u)) in
  Float.min t.cap (Float.max prev jittered)

let schedule t ~seed n =
  let prng = Prng.create seed in
  let rec go i prev acc =
    if i > n then List.rev acc
    else
      let u = Prng.float prng 1.0 in
      let d = delay t ~attempt:i ~u ~prev in
      go (i + 1) d (d :: acc)
  in
  go 1 0.0 []
