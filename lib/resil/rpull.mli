(** Resumable active input: a {!Eden_transput.Pull} with retry and
    positions.

    Every [Transfer] is seq-stamped with the position of the next
    unseen item and issued through {!Retry}, so a lost message, a lost
    reply or a crashed producer shows up only as elapsed time: the retry
    re-invokes, reactivating a crashed producer from its checkpoint, and
    the stamp makes the re-request idempotent.

    [pos] is the consumer's resume point.  A stage checkpoints [pos]
    only at batch boundaries ([buffered] = 0) {e before} issuing the
    next request, because that request's stamp cumulatively acknowledges
    everything below it to the producer — checkpoint-before-acknowledge
    is what makes recovery exactly-once. *)

module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Channel = Eden_transput.Channel

type t

val connect :
  Kernel.ctx ->
  ?batch:int ->
  ?flowctl:Eden_flowctl.Flowctl.t ->
  ?channel:Channel.t ->
  ?policy:Retry.policy ->
  ?meter:Retry.meter ->
  prng:Eden_util.Prng.t ->
  ?from:int ->
  Uid.t ->
  t
(** [from] is the resume position (default 0, a fresh stream).

    [flowctl] supersedes [batch]: under [Fixed n] every Transfer asks
    for [n] items; under [Adaptive] the per-request credit follows an
    AIMD controller that widens on every full reply.  The resilient
    path stays synchronous — one outstanding exchange, whatever the
    configuration's credit window says — because checkpoint-before-
    acknowledge needs each batch durable before the next request
    cumulatively acknowledges it. *)

val read : t -> Value.t option
(** Next item, [None] at end of stream.  Issues a retried [Transfer]
    when the buffer is empty; raises {!Retry.Exhausted} if the budget
    runs out.  Fiber context only. *)

val pos : t -> int
(** Position of the next item [read] will return. *)

val buffered : t -> int
(** Items fetched but not yet read; 0 at batch boundaries. *)

val transfers_issued : t -> int
(** Successful [Transfer] round trips (retries are metered
    separately). *)

val controller : t -> Eden_flowctl.Aimd.t option
(** The adaptive controller, when connected with an [Adaptive]
    [flowctl]. *)
