module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Sched = Eden_sched.Sched
module Prng = Eden_util.Prng
module Obs = Eden_obs.Obs

type policy = {
  interval : float;
  max_restarts : int;
  window : float;
  restart_backoff : Backoff.t;
  ping_timeout : float;
}

let policy ?(interval = 5.0) ?(max_restarts = 5) ?(window = 200.0)
    ?(restart_backoff = Backoff.make ~base:0.5 ~multiplier:2.0 ~cap:8.0 ~jitter:0.1 ())
    ?(ping_timeout = 5.0) () =
  if interval <= 0.0 then invalid_arg "Supervisor.policy: interval must be positive";
  if max_restarts < 1 then invalid_arg "Supervisor.policy: max_restarts must be at least 1";
  if window <= 0.0 then invalid_arg "Supervisor.policy: window must be positive";
  if ping_timeout <= 0.0 then invalid_arg "Supervisor.policy: ping_timeout must be positive";
  { interval; max_restarts; window; restart_backoff; ping_timeout }

let default_policy = policy ()

type entry = {
  e_uid : Uid.t;
  label : string;
  ping : bool;
  mutable last_crashes : int;
  mutable restart_times : float list; (* inside the sliding window, newest first *)
  mutable consecutive : int;
  mutable gave_up : bool;
}

(* Shared between the driver handle and the behaviour closure, so the
   watch list and counters survive crashes of the supervisor itself. *)
type ctrl = {
  kernel : Kernel.t;
  pol : policy;
  seed : int64;
  on_give_up : string -> Uid.t -> unit;
  mutable watches : entry list; (* oldest first, for deterministic scan order *)
  mutable stopped : bool;
  mutable restarts : int;
  mutable give_ups : int;
}

type t = { s_uid : Uid.t; ctrl : ctrl }

let find ctrl uid = List.find_opt (fun e -> Uid.equal e.e_uid uid) ctrl.watches

let add_watch ctrl ?(ping = false) ~label uid =
  match find ctrl uid with
  | Some _ -> ()
  | None ->
      let e =
        {
          e_uid = uid;
          label;
          ping;
          last_crashes = Kernel.crash_count ctrl.kernel uid;
          restart_times = [];
          consecutive = 0;
          gave_up = false;
        }
      in
      ctrl.watches <- ctrl.watches @ [ e ]

(* Supervisor decisions are span-annotated events on the kernel's
   collector, so restarts and give-ups appear interleaved with the
   invocation tree in exported traces. *)
let annotate ctrl ?(attrs = []) name e =
  Obs.instant (Kernel.obs ctrl.kernel) ~name ~cat:"resil"
    ~attrs:(("stage", e.label) :: ("uid", Uid.to_string e.e_uid) :: attrs)
    ~at:(Sched.now (Kernel.sched ctrl.kernel))
    ()

let give_up ctrl e =
  e.gave_up <- true;
  ctrl.give_ups <- ctrl.give_ups + 1;
  annotate ctrl "supervisor.give_up" e
    ~attrs:
      [
        ("restarts_in_window", string_of_int (List.length e.restart_times));
        ("budget", string_of_int ctrl.pol.max_restarts);
      ];
  ctrl.on_give_up e.label e.e_uid

let restart ctrl prng e ~now =
  e.restart_times <- now :: List.filter (fun t -> now -. t <= ctrl.pol.window) e.restart_times;
  if List.length e.restart_times > ctrl.pol.max_restarts then give_up ctrl e
  else begin
    e.consecutive <- e.consecutive + 1;
    let u = Prng.float prng 1.0 in
    Sched.sleep (Backoff.delay ctrl.pol.restart_backoff ~attempt:e.consecutive ~u ~prev:0.0);
    ctrl.restarts <- ctrl.restarts + 1;
    (* Reactivation from the latest checkpoint. *)
    Kernel.poke ctrl.kernel e.e_uid;
    e.last_crashes <- Kernel.crash_count ctrl.kernel e.e_uid;
    annotate ctrl "supervisor.restart" e
  end

let check ctrl prng ctx e =
  if not e.gave_up then begin
    let sched = Kernel.sched ctrl.kernel in
    let c = Kernel.crash_count ctrl.kernel e.e_uid in
    if c > e.last_crashes then begin
      e.last_crashes <- c;
      restart ctrl prng e ~now:(Sched.now sched)
    end
    else begin
      if Kernel.is_active ctrl.kernel e.e_uid then e.consecutive <- 0;
      if e.ping then
        match
          Kernel.invoke_timeout ctx e.e_uid ~op:"Ping" Value.Unit
            ~timeout:ctrl.pol.ping_timeout
        with
        | Some _ -> ()
        | None ->
            (* Wedged: no crash on record, yet unresponsive.  Force the
               restart path — crash drops the stuck runtime, poke
               reactivates from the checkpoint. *)
            Kernel.crash ctrl.kernel e.e_uid;
            e.last_crashes <- Kernel.crash_count ctrl.kernel e.e_uid;
            restart ctrl prng e ~now:(Sched.now sched)
    end
  end

let behaviour ctrl ctx ~passive:_ =
  let prng = Prng.create ctrl.seed in
  Kernel.spawn_worker ctx ~name:"supervisor/monitor" (fun () ->
      let rec tick () =
        if not ctrl.stopped then begin
          Sched.sleep ctrl.pol.interval;
          if not ctrl.stopped then begin
            List.iter (check ctrl prng ctx) ctrl.watches;
            tick ()
          end
        end
      in
      tick ());
  [
    ( "Watch",
      fun arg ->
        add_watch ctrl ~label:(Uid.to_string (Value.to_uid arg)) (Value.to_uid arg);
        Value.Unit );
    ( "Unwatch",
      fun arg ->
        ctrl.watches <-
          List.filter (fun e -> not (Uid.equal e.e_uid (Value.to_uid arg))) ctrl.watches;
        Value.Unit );
    ("Ping", fun _ -> Value.Unit);
  ]

let create k ?node ?(name = "supervisor") ?(policy = default_policy) ?(seed = 0xC0FFEEL)
    ?(on_give_up = fun _ _ -> ()) () =
  let ctrl =
    {
      kernel = k;
      pol = policy;
      seed;
      on_give_up;
      watches = [];
      stopped = false;
      restarts = 0;
      give_ups = 0;
    }
  in
  let s_uid =
    Kernel.create_eject k ?node ~dispatch:Kernel.Concurrent ~type_name:name (behaviour ctrl)
  in
  { s_uid; ctrl }

let uid t = t.s_uid
let watch t ?ping ~label u = add_watch t.ctrl ?ping ~label u

let unwatch t u =
  t.ctrl.watches <- List.filter (fun e -> not (Uid.equal e.e_uid u)) t.ctrl.watches

let start t = Kernel.poke t.ctrl.kernel t.s_uid
let stop t = t.ctrl.stopped <- true
let restarts t = t.ctrl.restarts
let give_ups t = t.ctrl.give_ups

let gave_up t =
  List.filter_map (fun e -> if e.gave_up then Some (e.label, e.e_uid) else None) t.ctrl.watches

let watched t = List.map (fun e -> (e.label, e.e_uid)) t.ctrl.watches
