(* Cross-cutting property tests over the full stack.  These are the
   slow-ish randomised checks; module-specific properties live with
   their modules' suites. *)

open Eden_kernel
open Eden_transput
module Dev = Eden_devices.Devices

let prop name ?(count = 40) gen f =
  Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let line_gen = QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 8))

let list_gen items =
  let rest = ref items in
  fun () ->
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some (Value.Str x)

(* Identity pipelines are the identity under EVERY discipline and under
   random capacity/batch settings. *)
let prop_identity_all_disciplines =
  prop "identity pipeline == identity (all disciplines, any capacity/batch)"
    QCheck2.Gen.(
      tup4 (int_bound 2) (pair (int_bound 8) (int_range 1 5)) (small_list line_gen)
        (int_bound 2))
    (fun (disc_i, (capacity, batch), lines, n_filters) ->
      let discipline = List.nth Pipeline.all_disciplines disc_i in
      let k = Kernel.create () in
      let acc = ref [] in
      let p =
        Pipeline.build k ~capacity ~batch discipline ~gen:(list_gen lines)
          ~filters:(List.init n_filters (fun _ -> Transform.identity))
          ~consume:(fun v -> acc := Value.to_str v :: !acc)
      in
      Kernel.run_driver k (fun _ -> Pipeline.run p);
      List.rev !acc = lines)

(* Eden files roundtrip arbitrary line lists through stream write +
   stream read, surviving a crash in between. *)
let prop_eden_file_roundtrip =
  prop "eden file write/crash/read roundtrips" QCheck2.Gen.(small_list line_gen) (fun lines ->
      let k = Kernel.create () in
      let f = Eden_edenfs.Eden_file.create k () in
      let got = ref [] in
      Kernel.run_driver k (fun ctx ->
          Eden_edenfs.Eden_file.write_all ctx f lines;
          Kernel.crash k f;
          got := Eden_edenfs.Eden_file.read_all ctx f);
      !got = lines)

(* Namespace bind/resolve roundtrips for random (distinct-leaf) paths. *)
let prop_namespace_roundtrip =
  let seg = QCheck2.Gen.(string_size ~gen:(char_range 'a' 'f') (int_range 1 4)) in
  prop "namespace bind/resolve roundtrip" QCheck2.Gen.(list_size (int_range 1 4) seg)
    (fun segs ->
      let k = Kernel.create () in
      let root = Eden_dirsvc.Directory.create k () in
      let target = Kernel.create_eject k ~type_name:"leaf" (fun _ctx ~passive:_ -> []) in
      let path = "/" ^ String.concat "/" segs in
      let ok = ref false in
      Kernel.run_driver k (fun ctx ->
          Eden_dirsvc.Namespace.bind ctx ~root path target;
          match Eden_dirsvc.Namespace.resolve ctx ~root path with
          | Some uid -> ok := Uid.equal uid target
          | None -> ());
      !ok)

(* Merge (Arrival) preserves per-source order for random inputs. *)
let prop_merge_preserves_source_order =
  prop "merge preserves per-source order"
    QCheck2.Gen.(pair (small_list line_gen) (small_list line_gen))
    (fun (xs, ys) ->
      let k = Kernel.create () in
      let tag p = List.mapi (fun i l -> Printf.sprintf "%s%d-%s" p i l) in
      let xs = tag "x" xs and ys = tag "y" ys in
      let s1 = Dev.text_source k xs and s2 = Dev.text_source k ys in
      let m =
        Flow.merge k ~capacity:4 ~upstreams:[ (s1, Channel.output); (s2, Channel.output) ] ()
      in
      let out = ref [] in
      Kernel.run_driver k (fun ctx ->
          let pull = Pull.connect ctx m in
          Pull.iter (fun v -> out := Value.to_str v :: !out) pull);
      let got = List.rev !out in
      let of_prefix p = List.filter (Eden_util.Text.is_prefix ~prefix:p) got in
      of_prefix "x" = xs && of_prefix "y" = ys && List.length got = List.length xs + List.length ys)

(* The cost model's entity prediction is exact for every discipline and
   every length. *)
let prop_entity_prediction_exact =
  prop "entity prediction exact" QCheck2.Gen.(pair (int_bound 2) (int_bound 6))
    (fun (disc_i, n_filters) ->
      let discipline = List.nth Pipeline.all_disciplines disc_i in
      let k = Kernel.create () in
      let p =
        Pipeline.build k discipline
          ~gen:(list_gen [ "x" ])
          ~filters:(List.init n_filters (fun _ -> Transform.identity))
          ~consume:ignore
      in
      Kernel.run_driver k (fun _ -> Pipeline.run p);
      Pipeline.entity_count p = (Pipeline.predict discipline ~n_filters).Pipeline.entities)

(* Sed: "1,Nd" drops exactly the first N; a quit at N behaves like
   head N. *)
let prop_sed_addressing =
  prop "sed 1,Nd == drop N; Nq == head N"
    QCheck2.Gen.(pair (int_range 1 6) (small_list line_gen))
    (fun (n, lines) ->
      let sed cmds =
        match Eden_filters.Sed.parse_script cmds with
        | Ok s -> Eden_filters.Sed.run_lines s lines
        | Error e -> failwith e
      in
      let drop_n =
        List.filteri (fun i _ -> i >= n) lines
      in
      let head_n = List.filteri (fun i _ -> i < n) lines in
      sed [ Printf.sprintf "1,%dd" n ] = drop_n && sed [ Printf.sprintf "%dq" n ] = head_n)

(* Stdio veneer == plain transform for arbitrary per-line functions
   drawn from a small family. *)
let prop_stdio_equals_transform =
  prop "stdio veneer == direct transform"
    QCheck2.Gen.(pair (int_bound 2) (small_list line_gen))
    (fun (f_i, lines) ->
      let funcs = [| String.uppercase_ascii; String.lowercase_ascii; (fun s -> s ^ "!") |] in
      let f = funcs.(f_i) in
      let via_stdio =
        let k = Kernel.create () in
        let src = Dev.text_source k lines in
        let filt =
          Stdio.filter_ro k ~upstream:src (fun stdin stdout ->
              Stdio.iter_lines (fun l -> Stdio.print_line stdout (f l)) stdin)
        in
        let out = ref [] in
        Kernel.run_driver k (fun ctx ->
            Pull.iter (fun v -> out := Value.to_str v :: !out) (Pull.connect ctx filt));
        List.rev !out
      in
      via_stdio = List.map f lines)

let suite =
  [
    prop_identity_all_disciplines;
    prop_eden_file_roundtrip;
    prop_namespace_roundtrip;
    prop_merge_preserves_source_order;
    prop_entity_prediction_exact;
    prop_sed_addressing;
    prop_stdio_equals_transform;
  ]
