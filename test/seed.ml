(* Unified test-seed plumbing: one EDEN_SEED environment variable feeds
   the QCheck properties, the determinism seed matrix and the schedule
   explorer (Eden_check reads it itself).  Unset, everything keeps its
   historical default — QCheck self-initialises (or honours its own
   QCHECK_SEED) and the matrix starts at 0x5EED. *)

let env_seed () =
  match Sys.getenv_opt "EDEN_SEED" with
  | None | Some "" -> None
  | Some s -> (
      match Int64.of_string_opt s with
      | Some v -> Some v
      | None -> invalid_arg (Printf.sprintf "EDEN_SEED: not an integer: %S" s))

let pinned = env_seed () <> None
let base = match env_seed () with Some s -> s | None -> 0x5EEDL

let to_alcotest test =
  match env_seed () with
  | None -> QCheck_alcotest.to_alcotest test
  | Some s ->
      QCheck_alcotest.to_alcotest
        ~rand:(Random.State.make [| Int64.to_int s; Int64.to_int (Int64.shift_right s 32) |])
        test

let banner () =
  match Sys.getenv_opt "EDEN_SEED" with
  | Some s when s <> "" ->
      Printf.printf
        "[eden] EDEN_SEED=%s pinned (QCheck, determinism matrix, schedule explorer)\n%!" s
  | _ -> ()
