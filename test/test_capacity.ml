(* The C10M capacity surface at test scale: F3/F4 fan-in of N=1000
   producers into report windows, byte-identical across the
   deterministic oracle and the parallel runtime over a 5-point seed
   matrix — plus the T2 dormancy contract: a producer behind a
   lazily-pulled stream costs zero invocations until the consumer's
   first read.

   As in the chunk-equiv suite, every chunked configuration asserts it
   actually moved chunks: a silently downgraded config FAILS the
   plane-intact check instead of passing a vacuous boxed-vs-boxed
   comparison.  No wire cases here, so this suite can run after par's
   domain spawns (see main.ml). *)

module Distpipe = Eden_par.Distpipe
module Fanin = Eden_par.Fanin
module Cluster = Eden_par.Cluster
module T = Eden_transput
open Eden_kernel

let check = Alcotest.check

(* --- Satellite: dormancy is free -------------------------------------- *)

(* A dormant producer behind a lazily-pulled stream does no work at all
   — no gen calls, no invocations, no activations — until the consumer
   reads; [Pull.connect] itself issues nothing.  When the consumer does
   pull, the stream arrives intact from the first line. *)
let test_dormant_producer_is_free () =
  let k = Kernel.create () in
  let doc = List.init 40 (Printf.sprintf "dormant-line-%03d") in
  let gen_calls = ref 0 in
  let rest = ref doc in
  let gen () =
    incr gen_calls;
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some (Value.Str x)
  in
  let src = T.Stage.source_ro k ~name:"dormant" ~capacity:0 gen in
  (* Let creation settle, then measure pure dormancy. *)
  Kernel.run_driver k (fun _ -> ());
  let before = Kernel.Meter.snapshot k in
  check Alcotest.int "no gen calls while dormant" 0 !gen_calls;
  Kernel.run_driver k (fun _ -> ());
  let idle = Kernel.Meter.diff (Kernel.Meter.snapshot k) before in
  check Alcotest.int "zero invocations while dormant" 0 idle.Kernel.Meter.invocations;
  check Alcotest.int "zero activations while dormant" 0 idle.Kernel.Meter.activations;
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = T.Pull.connect ctx src in
      check Alcotest.int "connect issues nothing" 0 !gen_calls;
      T.Pull.iter (fun v -> got := Value.to_str v :: !got) pull);
  check (Alcotest.list Alcotest.string) "stream intact after wake" doc (List.rev !got);
  let woke = Kernel.Meter.diff (Kernel.Meter.snapshot k) before in
  check Alcotest.bool "producer woke on first pull" true
    (woke.Kernel.Meter.invocations > 0 && woke.Kernel.Meter.activations > 0)

(* --- The N=1000 fan-in seed matrix ------------------------------------ *)

let producers = 1000
let items = 5
let window = 100
let domains = 3
let det = Cluster.Deterministic
let par = Cluster.Parallel

(* Five seeds spread from EDEN_SEED (or the 0x5EED default), so a
   pinned run reproduces the exact matrix. *)
let seeds = List.init 5 (fun i -> Int64.add Seed.base (Int64.of_int (i * 7919)))

let plane_of i =
  Distpipe.chunked
    ~cut:(19 + ((Int64.to_int (List.nth seeds i) land 0xFFFF) + (i * 53)) mod 223)
    ()

let style_name = function `Ro -> "f4-ro" | `Wo -> "f3-wo"

let run mode ~seed ~plane ~style =
  Fanin.run_window mode ~seed ~window ~domains ~producers ~items ~style ~plane ()

let check_window name (oracle : Fanin.window_outcome) (out : Fanin.window_outcome) =
  check Alcotest.int (name ^ ": producer count") (Array.length oracle.Fanin.w_bytes)
    (Array.length out.Fanin.w_bytes);
  Array.iteri
    (fun p b ->
      if b <> out.Fanin.w_bytes.(p) then
        check Alcotest.string (Printf.sprintf "%s: producer %d bytes" name p) b
          out.Fanin.w_bytes.(p))
    oracle.Fanin.w_bytes;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.list Alcotest.string)))
    (name ^ ": per-label report streams") oracle.Fanin.w_reports out.Fanin.w_reports;
  check Alcotest.bool (name ^ ": clean EOS everywhere") true out.Fanin.w_eos_clean

let assert_chunked name (out : Fanin.window_outcome) =
  (* The downgrade guard: a chunked config that moved no chunks fails
     loudly rather than passing a boxed-vs-boxed comparison. *)
  check Alcotest.bool (name ^ ": chunk plane intact") true (out.Fanin.w_chunk_items > 0);
  check Alcotest.int (name ^ ": no boxed leakage") 0 out.Fanin.w_boxed_items

let test_seed_matrix style i () =
  let seed = List.nth seeds i in
  let name = Printf.sprintf "%s seed[%d]" (style_name style) i in
  let oracle = run det ~seed ~plane:Distpipe.Boxed ~style in
  check Alcotest.bool (name ^ ": oracle clean EOS") true oracle.Fanin.w_eos_clean;
  check Alcotest.int (name ^ ": oracle is boxed") 0 oracle.Fanin.w_chunk_items;
  let pc = run par ~seed ~plane:(plane_of i) ~style in
  check_window (name ^ " par/chunked") oracle pc;
  assert_chunked (name ^ " par/chunked") pc

let test_det_chunked style () =
  let seed = List.nth seeds 0 in
  let name = style_name style ^ " det/chunked" in
  let oracle = run det ~seed ~plane:Distpipe.Boxed ~style in
  let dc = run det ~seed ~plane:(plane_of 0) ~style in
  check_window name oracle dc;
  assert_chunked name dc

let suite =
  Alcotest.test_case "dormant producer costs nothing until pulled" `Quick
    test_dormant_producer_is_free
  :: List.concat_map
       (fun style ->
         Alcotest.test_case
           (style_name style ^ ": det chunked == det boxed (N=1000)")
           `Quick (test_det_chunked style)
         :: List.map
              (fun i ->
                Alcotest.test_case
                  (Printf.sprintf "%s: par == det oracle, seed[%d] (N=1000)"
                     (style_name style) i)
                  `Quick
                  (test_seed_matrix style i))
              [ 0; 1; 2; 3; 4 ])
       [ `Ro; `Wo ]
