(* The kernel event trace. *)

open Eden_kernel

let check = Alcotest.check

let echo_behaviour _ctx ~passive:_ = [ ("Echo", Fun.id) ]

let test_disabled_by_default () =
  let k = Kernel.create () in
  let uid = Kernel.create_eject k ~type_name:"echo" echo_behaviour in
  Kernel.run_driver k (fun ctx -> ignore (Kernel.invoke ctx uid ~op:"Echo" Value.Unit));
  check Alcotest.int "no events" 0 (List.length (Kernel.Trace.events k))

let test_invocation_sequence () =
  let k = Kernel.create () in
  Kernel.Trace.enable k;
  let uid = Kernel.create_eject k ~type_name:"echo" echo_behaviour in
  Kernel.run_driver k (fun ctx ->
      ignore (Kernel.invoke ctx uid ~op:"Echo" (Value.Int 1));
      ignore (Kernel.invoke ctx uid ~op:"Echo" (Value.Int 2)));
  check Alcotest.(list string) "ops in order" [ "Echo"; "Echo" ] (Kernel.Trace.ops k);
  (* Shape: Invoked, Activated (on first), Replied, Invoked, Replied. *)
  let shapes =
    List.map
      (function
        | Kernel.Trace.Invoked _ -> "invoke"
        | Replied _ -> "reply"
        | Activated _ -> "activate"
        | Checkpointed _ -> "checkpoint"
        | Crashed _ -> "crash"
        | Destroyed _ -> "destroy")
      (Kernel.Trace.events k)
  in
  check Alcotest.(list string) "event shapes"
    [ "invoke"; "activate"; "reply"; "invoke"; "reply" ]
    shapes

let test_timestamps_monotone () =
  let k = Kernel.create () in
  Kernel.Trace.enable k;
  let uid = Kernel.create_eject k ~type_name:"echo" echo_behaviour in
  Kernel.run_driver k (fun ctx ->
      for _ = 1 to 3 do
        ignore (Kernel.invoke ctx uid ~op:"Echo" Value.Unit)
      done);
  let times =
    List.map
      (function
        | Kernel.Trace.Invoked { at; _ }
        | Replied { at; _ }
        | Activated { at; _ }
        | Checkpointed { at; _ }
        | Crashed { at; _ }
        | Destroyed { at; _ } -> at)
      (Kernel.Trace.events k)
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "non-decreasing" true (monotone times)

let test_lifecycle_events () =
  let k = Kernel.create () in
  Kernel.Trace.enable k;
  let uid =
    Kernel.create_eject k ~type_name:"life" (fun ctx ~passive:_ ->
        [
          ( "Save",
            fun _ ->
              Kernel.checkpoint ctx (Value.Int 1);
              Value.Unit );
          ( "Die",
            fun _ ->
              Kernel.destroy ctx;
              Value.Unit );
        ])
  in
  Kernel.run_driver k (fun ctx ->
      ignore (Kernel.call ctx uid ~op:"Save" Value.Unit);
      Kernel.crash k uid;
      ignore (Kernel.call ctx uid ~op:"Die" Value.Unit));
  let count pred = List.length (List.filter pred (Kernel.Trace.events k)) in
  check Alcotest.int "one checkpoint" 1
    (count (function Kernel.Trace.Checkpointed _ -> true | _ -> false));
  check Alcotest.int "one crash" 1 (count (function Kernel.Trace.Crashed _ -> true | _ -> false));
  check Alcotest.int "one destroy" 1
    (count (function Kernel.Trace.Destroyed _ -> true | _ -> false));
  check Alcotest.int "two activations" 2
    (count (function Kernel.Trace.Activated _ -> true | _ -> false))

let test_clear_and_disable () =
  let k = Kernel.create () in
  Kernel.Trace.enable k;
  let uid = Kernel.create_eject k ~type_name:"echo" echo_behaviour in
  Kernel.run_driver k (fun ctx -> ignore (Kernel.invoke ctx uid ~op:"Echo" Value.Unit));
  Alcotest.(check bool) "has events" true (Kernel.Trace.events k <> []);
  Kernel.Trace.clear k;
  check Alcotest.int "cleared" 0 (List.length (Kernel.Trace.events k));
  Kernel.Trace.disable k;
  Kernel.run_driver k (fun ctx -> ignore (Kernel.invoke ctx uid ~op:"Echo" Value.Unit));
  check Alcotest.int "disabled" 0 (List.length (Kernel.Trace.events k))

let test_pp_event_renders () =
  let k = Kernel.create () in
  Kernel.Trace.enable k;
  let uid = Kernel.create_eject k ~type_name:"echo" echo_behaviour in
  Kernel.run_driver k (fun ctx -> ignore (Kernel.invoke ctx uid ~op:"Echo" Value.Unit));
  List.iter
    (fun ev ->
      let s = Format.asprintf "%a" Kernel.Trace.pp_event ev in
      Alcotest.(check bool) "non-empty rendering" true (String.length s > 0))
    (Kernel.Trace.events k)

(* The trace lets tests assert the paper's interaction patterns
   directly: a read-only pipeline is all Transfer, a write-only one all
   Deposit. *)
let test_pipeline_op_mix () =
  let open Eden_transput in
  let run discipline =
    let k = Kernel.create () in
    Kernel.Trace.enable k;
    let rest = ref (List.init 4 (fun i -> Value.Int i)) in
    let gen () =
      match !rest with
      | [] -> None
      | x :: tl ->
          rest := tl;
          Some x
    in
    let p = Pipeline.build k discipline ~gen ~filters:[ Transform.identity ] ~consume:ignore in
    Kernel.run_driver k (fun _ -> Pipeline.run p);
    List.sort_uniq String.compare (Kernel.Trace.ops k)
  in
  check Alcotest.(list string) "read-only is pure Transfer" [ "Transfer" ]
    (run Pipeline.Read_only);
  check Alcotest.(list string) "write-only is pure Deposit" [ "Deposit" ]
    (run Pipeline.Write_only);
  check Alcotest.(list string) "conventional uses both" [ "Deposit"; "Transfer" ]
    (run Pipeline.Conventional)

let test_ring_overflow_and_resize () =
  (* The trace log is a bounded ring: overflow evicts the oldest events
     and counts them, rather than growing without limit. *)
  let k = Kernel.create ~trace_capacity:4 () in
  Kernel.Trace.enable k;
  let uid = Kernel.create_eject k ~type_name:"echo" echo_behaviour in
  Kernel.run_driver k (fun ctx ->
      for _ = 1 to 4 do
        ignore (Kernel.invoke ctx uid ~op:"Echo" Value.Unit)
      done);
  (* 4 invocations log 9 events (invoke+reply each, one activation);
     only the newest 4 fit. *)
  check Alcotest.int "capacity" 4 (Kernel.Trace.capacity k);
  check Alcotest.int "ring holds capacity" 4 (List.length (Kernel.Trace.events k));
  check Alcotest.int "evictions counted" 5 (Kernel.Trace.dropped k);
  let before = Kernel.Trace.events k in
  Kernel.Trace.set_capacity k 2;
  check Alcotest.int "resized" 2 (Kernel.Trace.capacity k);
  Alcotest.(check bool) "newest survive the resize" true
    (Kernel.Trace.events k = [ List.nth before 2; List.nth before 3 ]);
  check Alcotest.int "resize evictions counted" 7 (Kernel.Trace.dropped k);
  Kernel.Trace.clear k;
  check Alcotest.int "clear resets drop count" 0 (Kernel.Trace.dropped k)

let suite =
  [
    ("disabled by default", `Quick, test_disabled_by_default);
    ("ring overflow and resize", `Quick, test_ring_overflow_and_resize);
    ("invocation sequence", `Quick, test_invocation_sequence);
    ("timestamps monotone", `Quick, test_timestamps_monotone);
    ("lifecycle events", `Quick, test_lifecycle_events);
    ("clear and disable", `Quick, test_clear_and_disable);
    ("pp_event renders", `Quick, test_pp_event_renders);
    ("pipeline op mix", `Quick, test_pipeline_op_mix);
  ]
