(* Unix_fs path algebra and the §7 bootstrap Ejects. *)

open Eden_kernel
module Fs = Eden_fs.Unix_fs
module Fse = Eden_fs.Fs_eject
module T = Eden_transput

let check = Alcotest.check
let prop name ?(count = 100) gen f =
  Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* ------------------------------------------------------------------ *)
(* Plain file system                                                  *)
(* ------------------------------------------------------------------ *)

let test_normalise () =
  check Alcotest.(list string) "plain" [ "a"; "b" ] (Fs.normalise "/a/b");
  check Alcotest.(list string) "relative" [ "a"; "b" ] (Fs.normalise "a/b");
  check Alcotest.(list string) "dots" [ "a"; "c" ] (Fs.normalise "/a/./b/../c");
  check Alcotest.(list string) "root" [] (Fs.normalise "/");
  check Alcotest.(list string) "double slash" [ "a" ] (Fs.normalise "//a//");
  check Alcotest.(list string) "dotdot clamp" [ "x" ] (Fs.normalise "/../../x")

let test_write_read () =
  let fs = Fs.create () in
  Fs.mkdir_p fs "/usr/alice";
  Fs.write_file fs "/usr/alice/hello.txt" "hi\n";
  check Alcotest.string "read back" "hi\n" (Fs.read_file fs "/usr/alice/hello.txt");
  Fs.write_file fs "/usr/alice/hello.txt" "replaced\n";
  check Alcotest.string "truncate" "replaced\n" (Fs.read_file fs "/usr/alice/hello.txt")

let test_append () =
  let fs = Fs.create () in
  Fs.append_file fs "/log" "a";
  Fs.append_file fs "/log" "b";
  check Alcotest.string "appended" "ab" (Fs.read_file fs "/log")

let test_readdir_sorted () =
  let fs = Fs.create () in
  Fs.mkdir fs "/d";
  List.iter (fun n -> Fs.write_file fs ("/d/" ^ n) "") [ "zeta"; "alpha"; "mid" ];
  check Alcotest.(list string) "sorted" [ "alpha"; "mid"; "zeta" ] (Fs.readdir fs "/d")

let test_errors () =
  let fs = Fs.create () in
  let expect_err err f =
    match f () with
    | exception Fs.Error (e, _) when e = err -> ()
    | exception Fs.Error (e, p) ->
        Alcotest.failf "wrong error %s for %s" (Fs.error_message e) p
    | _ -> Alcotest.fail "expected error"
  in
  expect_err Fs.Enoent (fun () -> Fs.read_file fs "/missing");
  expect_err Fs.Enoent (fun () -> Fs.readdir fs "/missing");
  Fs.write_file fs "/f" "x";
  expect_err Fs.Enotdir (fun () -> Fs.write_file fs "/f/under" "x");
  expect_err Fs.Eisdir (fun () -> Fs.read_file fs "/");
  expect_err Fs.Eexist (fun () -> Fs.mkdir fs "/f");
  Fs.mkdir fs "/d";
  Fs.write_file fs "/d/inner" "x";
  expect_err Fs.Enotempty (fun () -> Fs.rmdir fs "/d");
  expect_err Fs.Eisdir (fun () -> Fs.unlink fs "/d")

let test_rmdir_unlink () =
  let fs = Fs.create () in
  Fs.mkdir fs "/d";
  Fs.write_file fs "/d/f" "x";
  Fs.unlink fs "/d/f";
  Fs.rmdir fs "/d";
  Alcotest.(check bool) "gone" false (Fs.exists fs "/d")

let test_rename () =
  let fs = Fs.create () in
  Fs.mkdir_p fs "/a";
  Fs.write_file fs "/a/f" "data";
  Fs.mkdir_p fs "/b";
  Fs.rename fs "/a/f" "/b/g";
  Alcotest.(check bool) "source gone" false (Fs.exists fs "/a/f");
  check Alcotest.string "moved" "data" (Fs.read_file fs "/b/g");
  (* Renaming a directory moves its contents. *)
  Fs.rename fs "/b" "/c";
  check Alcotest.string "dir moved" "data" (Fs.read_file fs "/c/g")

let test_stat_like () =
  let fs = Fs.create () in
  Fs.write_file fs "/f" "12345";
  Alcotest.(check bool) "is_file" true (Fs.is_file fs "/f");
  Alcotest.(check bool) "not dir" false (Fs.is_dir fs "/f");
  Alcotest.(check bool) "root is dir" true (Fs.is_dir fs "/");
  check Alcotest.int "size" 5 (Fs.size fs "/f");
  check Alcotest.int "files" 1 (Fs.total_files fs);
  check Alcotest.int "bytes" 5 (Fs.total_bytes fs)

let prop_roundtrip_any_content =
  prop "write/read roundtrips arbitrary bytes" QCheck2.Gen.(string_size (int_range 0 200))
    (fun content ->
      let fs = Fs.create () in
      match Fs.write_file fs "/blob" content with
      | () -> Fs.read_file fs "/blob" = content
      | exception Fs.Error (Fs.Einval, _) -> String.contains content '\x00')

let prop_mkdir_p_idempotent =
  let seg = QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 5)) in
  prop "mkdir_p is idempotent" QCheck2.Gen.(list_size (int_range 1 4) seg) (fun segs ->
      let fs = Fs.create () in
      let path = "/" ^ String.concat "/" segs in
      Fs.mkdir_p fs path;
      Fs.mkdir_p fs path;
      Fs.is_dir fs path)

(* ------------------------------------------------------------------ *)
(* Bootstrap Ejects                                                    *)
(* ------------------------------------------------------------------ *)

let boot () =
  let k = Kernel.create () in
  let fs = Fs.create () in
  let fse = Fse.create k fs in
  (k, fs, fse)

let test_new_stream_reads_lines () =
  let k, fs, fse = boot () in
  Fs.write_file fs "/doc" "one\ntwo\nthree\n";
  let got = ref [] in
  Kernel.run_driver k (fun ctx -> got := Fse.read_lines ctx ~fs:fse "/doc");
  check Alcotest.(list string) "lines" [ "one"; "two"; "three" ] !got

let test_unixfile_disappears_after_close () =
  let k, fs, fse = boot () in
  Fs.write_file fs "/doc" "x\n";
  let stream = ref None in
  Kernel.run_driver k (fun ctx ->
      let s = Fse.new_stream ctx ~fs:fse "/doc" in
      stream := Some s;
      Fse.close_stream ctx s);
  match !stream with
  | Some s -> Alcotest.(check bool) "gone" false (Kernel.exists k s)
  | None -> Alcotest.fail "no stream"

let test_new_stream_missing_file () =
  let k, _fs, fse = boot () in
  let failed = ref false in
  Kernel.run_driver k (fun ctx ->
      try ignore (Fse.new_stream ctx ~fs:fse "/nope")
      with Kernel.Eden_error msg ->
        failed := Eden_util.Text.contains_sub ~sub:"no such file" msg);
  Alcotest.(check bool) "refused with ENOENT" true !failed

let test_use_stream_records () =
  let k, fs, fse = boot () in
  Fs.write_file fs "/in" "alpha\nbeta\n";
  Kernel.run_driver k (fun ctx ->
      let src = Fse.new_stream ctx ~fs:fse "/in" in
      let writer = Fse.use_stream ctx ~fs:fse "/out" src in
      Fse.await_writer ctx writer);
  check Alcotest.string "copied" "alpha\nbeta\n" (Fs.read_file fs "/out")

let test_copy_through_filters () =
  (* §7 end to end: file -> filter pipeline -> file, all by Transfer. *)
  let k, fs, fse = boot () in
  Fs.write_file fs "/prog.f" "C comment\nREAL X\nC another\nX = 1\n";
  let before = Kernel.Meter.snapshot k in
  Kernel.run_driver k (fun ctx ->
      Fse.copy_through ctx ~fs:fse ~src:"/prog.f" ~dst:"/prog.stripped"
        [
          Eden_transput.Transform.filter (fun v ->
              not (Eden_util.Text.is_prefix ~prefix:"C" (Value.to_str v)));
        ]);
  check Alcotest.string "stripped" "REAL X\nX = 1\n" (Fs.read_file fs "/prog.stripped");
  let d = Kernel.Meter.diff (Kernel.Meter.snapshot k) before in
  Alcotest.(check bool) "transfers metered" true (d.Kernel.Meter.invocations > 0)

let test_direct_ops () =
  let k, fs, fse = boot () in
  ignore fs;
  let listing = ref [] in
  Kernel.run_driver k (fun ctx ->
      ignore (Kernel.call ctx fse ~op:Fse.op_make_dir (Value.Str "/proj"));
      ignore
        (Kernel.call ctx fse ~op:Fse.op_write_file
           (Value.pair (Value.Str "/proj/a") (Value.Str "A")));
      ignore
        (Kernel.call ctx fse ~op:Fse.op_write_file
           (Value.pair (Value.Str "/proj/b") (Value.Str "B")));
      ignore (Kernel.call ctx fse ~op:Fse.op_remove (Value.Str "/proj/a"));
      listing :=
        List.map Value.to_str
          (Value.to_list (Kernel.call ctx fse ~op:Fse.op_list_dir (Value.Str "/proj"))));
  check Alcotest.(list string) "listing" [ "b" ] !listing

let test_two_machines_two_filesystems () =
  (* One UnixFileSystem Eject per physical machine (§7): copy a file
     from machine a to machine b through the stream protocol. *)
  let k = Kernel.create ~nodes:[ "vax-a"; "vax-b" ] () in
  let fs_a = Fs.create () and fs_b = Fs.create () in
  let nodes = Kernel.nodes k in
  let fse_a = Fse.create k ~node:(List.nth nodes 0) fs_a in
  let fse_b = Fse.create k ~node:(List.nth nodes 1) fs_b in
  Fs.write_file fs_a "/doc" "travels\nacross\n";
  Kernel.run_driver k (fun ctx ->
      let src = Fse.new_stream ctx ~fs:fse_a "/doc" in
      let writer = Fse.use_stream ctx ~fs:fse_b "/doc-copy" src in
      Fse.await_writer ctx writer);
  check Alcotest.string "copied across machines" "travels\nacross\n"
    (Fs.read_file fs_b "/doc-copy")

let suite =
  [
    ("normalise", `Quick, test_normalise);
    ("write/read", `Quick, test_write_read);
    ("append", `Quick, test_append);
    ("readdir sorted", `Quick, test_readdir_sorted);
    ("error cases", `Quick, test_errors);
    ("rmdir/unlink", `Quick, test_rmdir_unlink);
    ("rename", `Quick, test_rename);
    ("stat-like queries", `Quick, test_stat_like);
    ("new_stream reads lines", `Quick, test_new_stream_reads_lines);
    ("unixfile disappears after close", `Quick, test_unixfile_disappears_after_close);
    ("new_stream missing file", `Quick, test_new_stream_missing_file);
    ("use_stream records", `Quick, test_use_stream_records);
    ("copy through filters", `Quick, test_copy_through_filters);
    ("direct ops", `Quick, test_direct_ops);
    ("two machines", `Quick, test_two_machines_two_filesystems);
    prop_roundtrip_any_content;
    prop_mkdir_p_idempotent;
  ]
