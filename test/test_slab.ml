(* Property suite for the flat entity stores behind the million-entity
   kernel: the generation-stamped slab, the index-backed timer heap and
   the circular run queue (Eden_util), plus the kernel's UID-keyed
   Estore.  Each property interprets a random alloc/free/reuse command
   sequence against a reference model, so slot recycling is exercised
   hard: the free list is LIFO, so even short sequences rehit slots. *)

module Slab = Eden_util.Slab
module Theap = Eden_util.Theap
module Cqueue = Eden_util.Cqueue
open Eden_kernel

let prop name ?(count = 200) gen f = Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* A command stream over a slab: allocate a value, free the i-th live
   handle, or poke the i-th stale handle.  Indices are taken mod the
   respective population so every generated stream is meaningful. *)
type cmd = Alloc of int | Free_live of int | Hit_stale of int

let cmd_gen =
  QCheck2.Gen.(
    list_size (int_range 1 120)
      (oneof
         [
           map (fun v -> Alloc v) small_nat;
           map (fun i -> Free_live i) small_nat;
           map (fun i -> Hit_stale i) small_nat;
         ]))

(* Interpret [cmds], checking live hits, stale misses and no-double-hand
   at every step.  Returns the surviving (handle, value) model, newest
   first, and the stale handles, for end-state checks. *)
let run_slab_cmds slab cmds =
  let model = ref [] in
  let stale = ref [] in
  List.iter
    (fun cmd ->
      match cmd with
      | Alloc v ->
          let h = Slab.alloc slab v in
          if List.mem_assoc h !model then failwith "handle already live";
          if List.mem h !stale then failwith "stale handle resurrected";
          model := (h, v) :: !model
      | Free_live i -> (
          match !model with
          | [] -> ()
          | l ->
              let h, v = List.nth l (i mod List.length l) in
              (match Slab.free slab h with
              | Some v' when v' = v -> ()
              | Some _ -> failwith "freed wrong payload"
              | None -> failwith "live free missed");
              model := List.remove_assoc h l;
              stale := h :: !stale)
      | Hit_stale i -> (
          match !stale with
          | [] -> ()
          | l ->
              let h = List.nth l (i mod List.length l) in
              if Slab.mem slab h then failwith "stale handle hit";
              if Slab.get slab h <> None then failwith "stale get hit";
              if Slab.set slab h 0 then failwith "stale set wrote";
              if Slab.free slab h <> None then failwith "double free handed a payload"))
    cmds;
  (!model, !stale)

let prop_slab_model =
  prop "slab: random alloc/free/reuse matches model" cmd_gen (fun cmds ->
      let slab = Slab.create ~capacity:2 ~dummy:(-1) () in
      let model, stale = run_slab_cmds slab cmds in
      (* Every live handle still hits its own value; every stale handle
         still misses (later reuse must not have resurrected it). *)
      List.for_all (fun (h, v) -> Slab.get slab h = Some v) model
      && List.for_all (fun h -> not (Slab.mem slab h)) stale
      && Slab.live slab = List.length model)

let prop_slab_iteration =
  prop "slab: iteration is deterministic and slot-ordered" cmd_gen (fun cmds ->
      let collect () =
        let slab = Slab.create ~capacity:2 ~dummy:(-1) () in
        ignore (run_slab_cmds slab cmds);
        List.rev (Slab.fold (fun h v acc -> (h, v) :: acc) slab [])
      in
      let a = collect () in
      (* Same history, fresh store: identical traversal — iteration is a
         function of the alloc/free sequence alone, never of hashing. *)
      let b = collect () in
      let slots = List.map (fun (h, _) -> Slab.slot_of h) a in
      a = b && slots = List.sort_uniq compare slots)

let drain h =
  let rec go acc =
    match Theap.delete_min h with None -> List.rev acc | Some kv -> go (kv :: acc)
  in
  go []

let prop_theap_drains_sorted =
  prop "theap: delete_min drains in (key, insertion) order"
    QCheck2.Gen.(list_size (int_range 1 80) (pair (int_bound 5) small_nat))
    (fun entries ->
      let h = Theap.create ~dummy:(-1) () in
      List.iteri
        (fun i (k, v) -> ignore (Theap.insert h (float_of_int k) ((i * 1000) + v)))
        entries;
      (* Values carry their insertion rank, so stability — equal keys
         leaving in arrival order — is directly observable. *)
      let expected =
        List.mapi (fun i (k, v) -> (float_of_int k, (i * 1000) + v)) entries
        |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)
      in
      drain h = expected && Theap.size h = 0)

let prop_theap_remove_physical =
  prop "theap: remove deletes physically, stale handles miss"
    QCheck2.Gen.(list_size (int_range 1 80) (triple (int_bound 5) small_nat bool))
    (fun entries ->
      let h = Theap.create ~dummy:(-1) () in
      let kept = ref [] and removed = ref [] in
      List.iteri
        (fun i (k, v, remove) ->
          let hd = Theap.insert h (float_of_int k) ((i * 1000) + v) in
          if remove then removed := hd :: !removed
          else kept := (float_of_int k, (i * 1000) + v) :: !kept)
        entries;
      List.iter (fun hd -> ignore (Theap.remove h hd)) !removed;
      Theap.size h = List.length !kept
      && List.for_all (fun hd -> not (Theap.remove h hd)) !removed
      && drain h
         = List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) (List.rev !kept))

let prop_cqueue_matches_queue =
  prop "cqueue: push/pop/take_nth matches reference queue"
    QCheck2.Gen.(list_size (int_range 1 150) (pair (int_bound 2) small_nat))
    (fun cmds ->
      let cq = Cqueue.create ~capacity:1 () in
      let model = ref [] in
      let contents () =
        let acc = ref [] in
        Cqueue.iter (fun y -> acc := y :: !acc) cq;
        List.rev !acc
      in
      List.for_all
        (fun (op, v) ->
          match op with
          | 0 ->
              Cqueue.push cq v;
              model := !model @ [ v ];
              Cqueue.length cq = List.length !model
          | 1 -> (
              match (Cqueue.pop cq, !model) with
              | None, [] -> true
              | Some x, m :: tl ->
                  model := tl;
                  x = m
              | _ -> false)
          | _ ->
              if !model = [] then Cqueue.pop cq = None
              else begin
                let i = v mod List.length !model in
                let expected = List.nth !model i in
                let x = Cqueue.take_nth cq i in
                model := List.filteri (fun j _ -> j <> i) !model;
                (* the taken element is right and the rest keep order *)
                x = expected && contents () = !model
              end)
        cmds)

(* Estore through the kernel: a destroyed Eject's UID misses (the slot
   is physically recycled by later creations), survivors still hit, and
   a foreign kernel's UID — same dense serial, different random tag —
   never aliases a slot. *)
let prop_estore_no_alias =
  prop "estore: stale/foreign UIDs miss, live UIDs hit" ~count:60
    QCheck2.Gen.(list_size (int_range 1 40) bool)
    (fun destroys ->
      let trivial ctx ~passive:_ =
        [
          ("Echo", Fun.id);
          ( "Vanish",
            fun _ ->
              Kernel.destroy ctx;
              Value.Unit );
        ]
      in
      let k = Kernel.create () in
      let uids = List.map (fun d -> (Kernel.create_eject k ~type_name:"cell" trivial, d)) destroys in
      (* A distinct seed: with the default both kernels would mint
         identical (tag, serial) sequences and "foreign" would hit. *)
      let foreign = Kernel.create ~seed:0x0F0E1L () in
      let foreign_uids =
        List.map (fun _ -> Kernel.create_eject foreign ~type_name:"cell" trivial) destroys
      in
      Kernel.run_driver k (fun ctx ->
          List.iter
            (fun (uid, destroy) ->
              if destroy then ignore (Kernel.call ctx uid ~op:"Vanish" Value.Unit))
            uids;
          (* Refill the recycled slots so stale lookups really do land
             on reoccupied cells, not just empty ones. *)
          List.iter
            (fun (_, d) ->
              if d then ignore (Kernel.create_eject k ~type_name:"refill" trivial))
            uids);
      List.for_all (fun (uid, destroyed) -> Kernel.exists k uid = not destroyed) uids
      && List.for_all (fun (uid, destroyed) ->
             if destroyed then
               match
                 let r = ref (Error "unset") in
                 Kernel.run_driver k (fun ctx ->
                     r := Kernel.invoke ctx uid ~op:"Echo" Value.Unit);
                 !r
               with
               | Error "no such eject" -> true
               | Ok _ | Error _ -> false
             else true)
           uids
      && List.for_all (fun uid -> not (Kernel.exists foreign uid)) (List.map fst uids)
      && List.for_all (fun uid -> not (Kernel.exists k uid)) foreign_uids)

let suite =
  [
    prop_slab_model;
    prop_slab_iteration;
    prop_theap_drains_sorted;
    prop_theap_remove_physical;
    prop_cqueue_matches_queue;
    prop_estore_no_alias;
  ]
