(* The pipeline language: lexing, parsing, and full elaboration under
   all three disciplines. *)

module Shell = Eden_shell.Shell
module T = Eden_transput
module Fs = Eden_fs.Unix_fs

let check = Alcotest.check
let lines_t = Alcotest.(list string)

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected shell error: %s" m

let err = function
  | Error m -> m
  | Ok _ -> Alcotest.fail "expected an error"

(* --- lexing --------------------------------------------------------- *)

let test_lex_words () =
  check lines_t "plain" [ "a"; "b"; "c" ] (ok (Shell.lex "a  b\tc"));
  check lines_t "pipe splits" [ "a"; "|"; "b" ] (ok (Shell.lex "a|b"));
  check lines_t "empty" [] (ok (Shell.lex "   "))

let test_lex_quotes () =
  check lines_t "single" [ "hello world" ] (ok (Shell.lex "'hello world'"));
  check lines_t "double" [ "say"; "a|b" ] (ok (Shell.lex "say \"a|b\""));
  check lines_t "empty quoted" [ "" ] (ok (Shell.lex "''"));
  Alcotest.(check bool) "unterminated" true
    (match Shell.lex "'oops" with Error _ -> true | Ok _ -> false)

let test_lex_redirect () =
  check lines_t "2> token" [ "grep"; "x"; "2>"; "win" ] (ok (Shell.lex "grep x 2> win"));
  (* A word starting with 2 but not 2> stays a word. *)
  check lines_t "2x is a word" [ "head"; "2" ] (ok (Shell.lex "head 2"))

(* --- parsing -------------------------------------------------------- *)

let test_parse_stages () =
  let ast = ok (Shell.parse "count 3 | upcase | terminal") in
  check Alcotest.int "three stages" 3 (List.length ast);
  let s = List.nth ast 1 in
  check Alcotest.string "filter name" "upcase" s.Shell.name;
  Alcotest.(check bool) "no report" true (s.Shell.report = None)

let test_parse_report_redirection () =
  let ast = ok (Shell.parse "count 3 | grep x 2> win | terminal") in
  let s = List.nth ast 1 in
  check Alcotest.(option string) "window" (Some "win") s.Shell.report;
  check lines_t "redirect not an arg" [ "x" ] s.Shell.args

let test_parse_errors () =
  Alcotest.(check bool) "too short" true
    (Eden_util.Text.contains_sub ~sub:"source and a sink" (err (Shell.parse "terminal")));
  ignore (err (Shell.parse ""));
  ignore (err (Shell.parse "a | | b"));
  ignore (err (Shell.parse "count 1 | grep x 2> | terminal"))

(* --- running -------------------------------------------------------- *)

let test_run_basic () =
  let env = Shell.make_env () in
  let o = ok (Shell.run env "lines foo bar | upcase | terminal") in
  check lines_t "rendered" [ "FOO"; "BAR" ] o.Shell.rendered

let test_run_all_disciplines_agree () =
  let cmd = "count 6 n | grep-v 3 | number | terminal" in
  let results =
    List.map
      (fun d -> (ok (Shell.run (Shell.make_env ()) ~discipline:d cmd)).Shell.rendered)
      T.Pipeline.all_disciplines
  in
  match results with
  | [ a; b; c ] ->
      check lines_t "ro=wo" a b;
      check lines_t "ro=conv" a c;
      check Alcotest.int "five lines survive" 5 (List.length a)
  | _ -> Alcotest.fail "expected three results"

let test_run_file_roundtrip () =
  let env = Shell.make_env () in
  Fs.write_file env.Shell.fs "/in.txt" "c\na\nb\n";
  let o = ok (Shell.run env "file /in.txt | sort | out /sorted.txt") in
  check lines_t "nothing rendered" [] o.Shell.rendered;
  check Alcotest.string "file written" "a\nb\nc\n" (Fs.read_file env.Shell.fs "/sorted.txt")

let test_run_missing_file () =
  let env = Shell.make_env () in
  Alcotest.(check bool) "reports ENOENT" true
    (Eden_util.Text.contains_sub ~sub:"no such file" (err (Shell.run env "file /nope | terminal")))

let test_run_unknown_filter () =
  let env = Shell.make_env () in
  ignore (err (Shell.run env "count 1 | frobnicate | terminal"))

let test_run_source_sink_position () =
  let env = Shell.make_env () in
  Alcotest.(check bool) "sink first rejected" true
    (Eden_util.Text.contains_sub ~sub:"source" (err (Shell.run env "terminal | count 1")));
  Alcotest.(check bool) "source last rejected" true
    (Eden_util.Text.contains_sub ~sub:"sink" (err (Shell.run env "count 1 | lines a")))

let test_run_printer_sink () =
  let env = Shell.make_env () in
  let o = ok (Shell.run env "lines one two | paginate 2 | printer") in
  Alcotest.(check bool) "paper has header" true
    (List.exists (fun l -> Eden_util.Text.contains_sub ~sub:"page 1" l) o.Shell.rendered)

let test_run_reports_read_only () =
  let env = Shell.make_env () in
  let o = ok (Shell.run env "count 4 2> win | upcase 2> win | terminal") in
  check Alcotest.int "four lines" 4 (List.length o.Shell.rendered);
  match o.Shell.windows with
  | [ ("win", wlines) ] ->
      Alcotest.(check bool) "source reports present" true
        (List.exists (fun l -> Eden_util.Text.contains_sub ~sub:"count |" l) wlines);
      Alcotest.(check bool) "filter reports present" true
        (List.exists (fun l -> Eden_util.Text.contains_sub ~sub:"upcase |" l) wlines)
  | _ -> Alcotest.fail "expected one window"

let test_run_reports_write_only () =
  let env = Shell.make_env () in
  let o =
    ok (Shell.run env ~discipline:T.Pipeline.Write_only "count 4 2> win | upcase 2> win | terminal")
  in
  check Alcotest.int "four lines" 4 (List.length o.Shell.rendered);
  match o.Shell.windows with
  | [ ("win", wlines) ] ->
      Alcotest.(check bool) "both reporters present" true
        (List.exists (fun l -> Eden_util.Text.is_prefix ~prefix:"count:" l) wlines
        && List.exists (fun l -> Eden_util.Text.is_prefix ~prefix:"upcase:" l) wlines)
  | _ -> Alcotest.fail "expected one window"

let test_run_reports_rejected_conventionally () =
  let env = Shell.make_env () in
  Alcotest.(check bool) "conventional refuses 2>" true
    (Eden_util.Text.contains_sub ~sub:"asymmetric"
       (err
          (Shell.run env ~discipline:T.Pipeline.Conventional
             "count 4 2> win | upcase | terminal")))

let test_run_meters_disciplines () =
  (* The shell's own meters reproduce the paper's comparison. *)
  let run d = ok (Shell.run (Shell.make_env ()) ~discipline:d "count 16 | trim | null") in
  let ro = run T.Pipeline.Read_only and conv = run T.Pipeline.Conventional in
  Alcotest.(check bool)
    (Printf.sprintf "conventional (%d) ~2x read-only (%d)" conv.Shell.invocations
       ro.Shell.invocations)
    true
    (float_of_int conv.Shell.invocations /. float_of_int ro.Shell.invocations > 1.5);
  Alcotest.(check bool) "conventional has pipes" true (conv.Shell.entities > ro.Shell.entities)

let test_run_date_source () =
  let env = Shell.make_env () in
  let o = ok (Shell.run env "date 2 | terminal") in
  check Alcotest.int "two stamps" 2 (List.length o.Shell.rendered);
  Alcotest.(check bool) "virtual time text" true
    (List.for_all (fun l -> Eden_util.Text.is_prefix ~prefix:"virtual time" l) o.Shell.rendered)

let test_run_sed_filter () =
  let env = Shell.make_env () in
  let o = ok (Shell.run env "lines 'the cat' 'a dog' | sed 's/cat/lion/' | terminal") in
  check lines_t "sed in a pipeline" [ "the lion"; "a dog" ] o.Shell.rendered

let test_run_fold_filter () =
  let env = Shell.make_env () in
  let o = ok (Shell.run env "lines abcdef | fold 4 | terminal") in
  check lines_t "folded" [ "abcd"; "ef" ] o.Shell.rendered

let test_run_conventional_out () =
  let env = Shell.make_env () in
  let o =
    ok (Shell.run env ~discipline:T.Pipeline.Conventional "lines b a | sort | out /s.txt")
  in
  check lines_t "nothing rendered" [] o.Shell.rendered;
  check Alcotest.string "file written" "a\nb\n" (Fs.read_file env.Shell.fs "/s.txt");
  Alcotest.(check bool) "pipes counted in entities" true (o.Shell.entities >= 5)

let test_random_source_in_shell () =
  let env = Shell.make_env () in
  let o = ok (Shell.run env "random 4 | wc | terminal") in
  match o.Shell.rendered with
  | [ summary ] ->
      Alcotest.(check bool) "4 lines counted" true
        (Eden_util.Text.is_prefix ~prefix:"4 " summary)
  | _ -> Alcotest.fail "expected one wc summary line"

(* --- session builtins (`trace`, `stats`) ---------------------------- *)

module Kernel = Eden_kernel.Kernel
module Obs = Eden_obs.Obs

let test_trace_builtin_renders_ring () =
  let env = Shell.make_env () in
  Kernel.Trace.enable env.Shell.kernel;
  ignore (ok (Shell.run env "count 3 | upcase | terminal"));
  let lines = Shell.render_trace env.Shell.kernel in
  let n = List.length lines in
  Alcotest.(check bool) "events retained" true (n > 1);
  List.iteri
    (fun i l ->
      if i < n - 1 then
        Alcotest.(check bool) "event lines indented" true (Eden_util.Text.is_prefix ~prefix:"  " l))
    lines;
  let footer = List.nth lines (n - 1) in
  Alcotest.(check bool) "footer counts retained events" true
    (Eden_util.Text.is_prefix ~prefix:(Printf.sprintf "[%d event(s) retained" (n - 1)) footer);
  Alcotest.(check bool) "footer names ring capacity" true
    (Eden_util.Text.contains_sub ~sub:"ring capacity" footer)

let test_trace_builtin_after_clear () =
  let env = Shell.make_env () in
  Kernel.Trace.enable env.Shell.kernel;
  ignore (ok (Shell.run env "count 2 | null"));
  Kernel.Trace.clear env.Shell.kernel;
  match Shell.render_trace env.Shell.kernel with
  | [ footer ] ->
      Alcotest.(check bool) "empty ring footer" true
        (Eden_util.Text.is_prefix ~prefix:"[0 event(s) retained" footer)
  | lines -> Alcotest.failf "expected footer only, got %d lines" (List.length lines)

let test_stats_builtin_sections () =
  let env = Shell.make_env () in
  Obs.enable_spans (Kernel.obs env.Shell.kernel);
  ignore (ok (Shell.run env "count 5 | upcase | terminal"));
  let lines = Shell.render_stats env.Shell.kernel in
  Alcotest.(check bool) "meter block present" true (List.length lines >= 2);
  let footer = List.nth lines (List.length lines - 1) in
  Alcotest.(check bool) "spans footer last" true
    (Eden_util.Text.is_prefix ~prefix:"spans:" footer);
  Alcotest.(check bool) "spans closed after a run" true
    (not (Eden_util.Text.is_prefix ~prefix:"spans: 0 closed" footer))

let test_stats_builtin_stable_between_runs () =
  (* `stats` is a pure rendering of session state: asking twice without
     running anything in between is bit-identical. *)
  let env = Shell.make_env () in
  ignore (ok (Shell.run env "lines a b | terminal"));
  check lines_t "stats idempotent"
    (Shell.render_stats env.Shell.kernel)
    (Shell.render_stats env.Shell.kernel)

let test_env_reuse () =
  (* One env, several pipelines: files persist between runs. *)
  let env = Shell.make_env () in
  ignore (ok (Shell.run env "lines x y z | out /data"));
  let o = ok (Shell.run env "file /data | wc | terminal") in
  check lines_t "wc over previous output" [ "3 3 6" ] o.Shell.rendered

let suite =
  [
    ("lex words", `Quick, test_lex_words);
    ("lex quotes", `Quick, test_lex_quotes);
    ("lex redirect", `Quick, test_lex_redirect);
    ("parse stages", `Quick, test_parse_stages);
    ("parse report redirection", `Quick, test_parse_report_redirection);
    ("parse errors", `Quick, test_parse_errors);
    ("run basic", `Quick, test_run_basic);
    ("disciplines agree", `Quick, test_run_all_disciplines_agree);
    ("file roundtrip", `Quick, test_run_file_roundtrip);
    ("missing file", `Quick, test_run_missing_file);
    ("unknown filter", `Quick, test_run_unknown_filter);
    ("source/sink position", `Quick, test_run_source_sink_position);
    ("printer sink", `Quick, test_run_printer_sink);
    ("reports read-only", `Quick, test_run_reports_read_only);
    ("reports write-only", `Quick, test_run_reports_write_only);
    ("reports rejected conventionally", `Quick, test_run_reports_rejected_conventionally);
    ("meters disciplines", `Quick, test_run_meters_disciplines);
    ("date source", `Quick, test_run_date_source);
    ("sed filter", `Quick, test_run_sed_filter);
    ("fold filter", `Quick, test_run_fold_filter);
    ("conventional out", `Quick, test_run_conventional_out);
    ("random source", `Quick, test_random_source_in_shell);
    ("trace builtin renders ring", `Quick, test_trace_builtin_renders_ring);
    ("trace builtin after clear", `Quick, test_trace_builtin_after_clear);
    ("stats builtin sections", `Quick, test_stats_builtin_sections);
    ("stats builtin stable", `Quick, test_stats_builtin_stable_between_runs);
    ("env reuse", `Quick, test_env_reuse);
  ]
