(* Elastic stage: autoscaling replicas with exactly-once drain/handoff
   under crashes.  Unit tests over fixed and elastic fleets, the
   schedule-exploration suite over scale/crash/replay interleavings, the
   drain-skips-checkpoint calibration mutant, and the QCheck clamp
   property for the fleet controller. *)

module Check = Eden_check.Check
module Policy = Eden_check.Policy
module Sched = Eden_sched.Sched
module Kernel = Eden_kernel.Kernel
module Value = Eden_kernel.Value
module Prng = Eden_util.Prng
module Pipeline = Eden_transput.Pipeline
module Aimd = Eden_flowctl.Aimd
module Rpush = Eden_resil.Rpush
module Supervisor = Eden_resil.Supervisor
module Elastic = Eden_elastic.Elastic

let check = Alcotest.check
let value = Alcotest.testable Value.pp Value.equal
let replay_dir = "_check"

(* The workload: partitioned running sums.  [classify] keys items by
   value mod nchan; the per-channel state is the sum so far, and each
   item emits it — any lost, duplicated or reordered item shifts every
   later output of its channel, so exactly-once violations are visible
   in the output, not only in the stamps. *)

let nchan = 3
let classify v = Value.to_int v mod nchan

let spec =
  {
    Elastic.init = Value.Int 0;
    step =
      (fun st v ->
        let s = Value.to_int st + Value.to_int v in
        (Value.Int s, [ Value.Int s ]));
  }

let expected_outputs n =
  let sums = Array.make nchan 0 in
  let outs = Array.make nchan [] in
  for i = 0 to n - 1 do
    let c = i mod nchan in
    sums.(c) <- sums.(c) + i;
    outs.(c) <- Value.Int sums.(c) :: outs.(c)
  done;
  List.init nchan (fun c -> (c, List.rev outs.(c)))
  |> List.filter (fun (_, l) -> l <> [])

let fixed_ctrl n =
  Aimd.params ~min_batch:n ~max_batch:n ~increase:1 ~decrease:0.5 ~low_watermark:0.25
    ~high_watermark:0.75 ()

let elastic_ctrl ?(lo = 0) ?(hi = 6) () =
  Aimd.params ~min_batch:lo ~max_batch:hi ~increase:1 ~decrease:0.5 ~low_watermark:0.2
    ~high_watermark:0.6 ()

(* One producer link per run: EOS (carried by [Rpush.close]) finalizes
   the stage, so multi-phase tests must keep a single push open across
   every phase and close it exactly once. *)
let connect ctx e = Rpush.connect ctx ~batch:1 ~prng:(Prng.create 77L) (Elastic.router e)

let send push i =
  Rpush.write push (Value.Int i);
  Rpush.flush push

let feed ctx e items =
  let push = connect ctx e in
  List.iter (fun v -> Rpush.write push v; Rpush.flush push) items;
  Rpush.close push

let check_exact ?(n = 12) e =
  check
    (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.list value)))
    "outputs exactly-once, per-channel order" (expected_outputs n) (Elastic.outputs e);
  check (Alcotest.list Alcotest.string) "no violations" [] (Elastic.violations e)

(* --- Unit: fixed fleets ----------------------------------------------- *)

let test_fixed_fleet_exact () =
  let n = 12 in
  let k = Kernel.create ~seed:3L () in
  let e =
    Elastic.create k ~classify ~spec
      (Elastic.params ~tick:1.0 ~checkpoint_every:2 ~auto:false ~ctrl:(fixed_ctrl 4) ())
  in
  Elastic.start e;
  Kernel.run_driver k (fun ctx ->
      feed ctx e (List.init n (fun i -> Value.Int i));
      Elastic.await e);
  check Alcotest.int "four replicas" 4 (Elastic.live_replicas e);
  check Alcotest.int "channels spread over the fleet" nchan
    (List.length (Elastic.assignments e));
  check_exact ~n e

let test_single_replica_is_plain_stage () =
  let n = 9 in
  let k = Kernel.create ~seed:4L () in
  let e =
    Elastic.create k ~classify ~spec
      (Elastic.params ~tick:1.0 ~auto:false ~ctrl:(fixed_ctrl 1) ())
  in
  Elastic.start e;
  Kernel.run_driver k (fun ctx ->
      feed ctx e (List.init n (fun i -> Value.Int i));
      Elastic.await e);
  check Alcotest.int "one replica only, ever" 1 (Elastic.replicas_spawned e);
  check_exact ~n e

(* --- Unit: scaling ---------------------------------------------------- *)

(* Like [spec] but each item costs [cost] virtual time at the replica —
   the stage is a real bottleneck, so bursts queue and the controller
   has something to react to.  (With the router acknowledging on
   acceptance, a zero-cost stage absorbs any rate at width 1.) *)
let slow_spec cost =
  {
    Elastic.init = Value.Int 0;
    step =
      (fun st v ->
        Sched.sleep cost;
        let s = Value.to_int st + Value.to_int v in
        (Value.Int s, [ Value.Int s ]));
  }

let test_burst_scales_up_idle_scales_to_zero () =
  let n = 30 in
  let k = Kernel.create ~seed:5L () in
  let e =
    Elastic.create k ~classify ~spec:(slow_spec 1.0)
      (Elastic.params ~tick:1.0 ~capacity_per_replica:2 ~ctrl:(elastic_ctrl ()) ())
  in
  Elastic.start e;
  let live_after_idle = ref (-1) in
  Kernel.run_driver k (fun ctx ->
      (* Scale-from-zero: the fleet starts at the floor (0) and work is
         parked until the controller reacts. *)
      check Alcotest.int "starts at the floor" 0 (Elastic.live_replicas e);
      (* Open-loop burst: buffered writes land as a few large deposits,
         far faster than one 1.0-cost replica can absorb them. *)
      let push =
        Rpush.connect ctx ~batch:10 ~prng:(Prng.create 77L) (Elastic.router e)
      in
      for i = 0 to n - 1 do
        Rpush.write push (Value.Int i)
      done;
      Rpush.flush push;
      (* A long idle tail after the burst, with the stream still open:
         occupancy sits at 0, so the halving side must walk the fleet
         back to the floor before EOS arrives. *)
      Sched.sleep 200.0;
      live_after_idle := Elastic.live_replicas e;
      Rpush.close push;
      Elastic.await e);
  Alcotest.(check bool)
    (Printf.sprintf "burst widened the fleet (max_live %d)" (Elastic.max_live e))
    true
    (Elastic.max_live e >= 2);
  check Alcotest.int "idle drained it to zero" 0 !live_after_idle;
  check_exact ~n e

let test_scale_down_drains_exactly_once () =
  let n = 18 in
  let k = Kernel.create ~seed:6L () in
  let e =
    Elastic.create k ~classify ~spec
      (Elastic.params ~tick:1.0 ~checkpoint_every:3 ~auto:false ~ctrl:(fixed_ctrl 4) ())
  in
  Elastic.start e;
  Kernel.run_driver k (fun ctx ->
      let push = connect ctx e in
      for i = 0 to 8 do
        send push i
      done;
      (* Mid-stream voluntary drains: 4 -> 2 replicas, handing channels
         (with non-checkpoint-aligned windows) to survivors. *)
      Elastic.scale_to ctx e 2;
      check Alcotest.int "two live after drain" 2 (Elastic.live_replicas e);
      for i = 9 to 17 do
        send push i
      done;
      Rpush.close push;
      Elastic.await e);
  check_exact ~n e

(* --- Unit: crashes ---------------------------------------------------- *)

let test_replica_crash_replays_exactly_once () =
  let n = 18 in
  let k = Kernel.create ~seed:7L () in
  let e =
    Elastic.create k ~classify ~spec
      (Elastic.params ~tick:1.0 ~checkpoint_every:3 ~auto:false ~ctrl:(fixed_ctrl 2) ())
  in
  Elastic.start e;
  Kernel.run_driver k (fun ctx ->
      let push = connect ctx e in
      for i = 0 to 9 do
        send push i
      done;
      (* Crash both replicas with un-checkpointed windows in flight; the
         next manager sweep must rewind and replay from durable. *)
      List.iter (fun (_, uid) -> Kernel.crash k uid) (Elastic.replica_uids e);
      for i = 10 to 17 do
        send push i
      done;
      Rpush.close push;
      Elastic.await e);
  check_exact ~n e

let test_replay_storm_is_deduplicated () =
  let n = 12 in
  let k = Kernel.create ~seed:8L () in
  let e =
    Elastic.create k ~classify ~spec
      (Elastic.params ~tick:1.0 ~checkpoint_every:4 ~auto:false ~ctrl:(fixed_ctrl 3) ())
  in
  Elastic.start e;
  Kernel.run_driver k (fun ctx ->
      let push = connect ctx e in
      for i = 0 to 5 do
        send push i
      done;
      (* Rewind every link to its durable base and retransmit: pure
         duplicate delivery the seq turnstiles must absorb. *)
      Elastic.replay_all ctx e;
      for i = 6 to n - 1 do
        send push i
      done;
      Elastic.replay_all ctx e;
      Rpush.close push;
      Elastic.await e);
  check_exact ~n e

let test_supervised_crash_loop_becomes_adoption () =
  let n = 18 in
  let k = Kernel.create ~seed:9L () in
  let e =
    Elastic.create k ~classify ~spec
      ~supervise:(Supervisor.policy ~interval:1.0 ~max_restarts:1 ~window:1000.0 ())
      (Elastic.params ~tick:1.0 ~checkpoint_every:3 ~auto:false ~ctrl:(fixed_ctrl 2) ())
  in
  Elastic.start e;
  let victim = ref None in
  Kernel.run_driver k (fun ctx ->
      let push = connect ctx e in
      for i = 0 to 8 do
        send push i
      done;
      (* Crash one replica repeatedly until its supervisor exhausts the
         restart budget; the give-up must surface as an involuntary
         drain (adoption), not a wedge. *)
      (match Elastic.replica_uids e with
      | (_, uid) :: _ ->
          victim := Some uid;
          for _ = 1 to 4 do
            Kernel.crash k uid;
            Sched.sleep 5.0
          done
      | [] -> Alcotest.fail "no replicas");
      for i = 9 to 17 do
        send push i
      done;
      Rpush.close push;
      Elastic.await e);
  let sup = Option.get (Elastic.supervisor e) in
  Alcotest.(check bool) "supervisor gave up on the victim" true
    (Supervisor.give_ups sup >= 1);
  Alcotest.(check bool) "victim no longer in the fleet" true
    (match !victim with
    | Some u -> not (List.exists (fun (_, u') -> Eden_kernel.Uid.equal u u') (Elastic.replica_uids e))
    | None -> false);
  check_exact ~n e

(* --- Unit: stall detector vs quiesced stages (satellite) -------------- *)

let test_stall_detector_ignores_quiesced () =
  (* A fiber blocked on behalf of a quiesced Eject is policy, not a
     hang; the detector must skip it unless asked for everything. *)
  let k = Kernel.create ~seed:10L () in
  let uid =
    Kernel.create_eject k ~type_name:"parked" (fun ctx ~passive:_ ->
        Kernel.spawn_worker ctx (fun () -> Sched.sleep 1e9);
        [ ("Ping", fun _ -> Value.Unit) ])
  in
  Kernel.poke k uid;
  let sched = Kernel.sched k in
  ignore (Sched.spawn sched (fun () -> Sched.sleep 0.1));
  (try Sched.run sched with _ -> ());
  let stages = [ ("parked", uid) ] in
  let before = Pipeline.stall_report k ~stages in
  Alcotest.(check bool) "reported while live" true
    (List.exists (fun s -> s.Pipeline.stage = Some "parked") before);
  Kernel.set_quiesced k uid true;
  check Alcotest.int "quiesced stage exempted" 0
    (List.length (Pipeline.stall_report k ~stages));
  Alcotest.(check bool) "still visible on demand" true
    (List.exists
       (fun s -> s.Pipeline.stage = Some "parked")
       (Pipeline.stall_report ~include_quiesced:true k ~stages));
  Kernel.crash k uid;
  Alcotest.(check bool) "crash clears the exemption" false (Kernel.is_quiesced k uid)

(* --- Exploration ------------------------------------------------------ *)

(* One decide-driven elastic run: the schedule chooses a voluntary
   drain point, a crash point (either can land inside the other's
   window — crash-during-drain included) and a replay-storm point, all
   in item-index units.  Pick 0 = no event, so FIFO is the fault-free
   baseline.  Asserts: zero violations, outputs exactly the partitioned
   running sums, completion. *)
let elastic_prop ?defect ?(n = 12) ctl =
  let k = Kernel.create ~seed:2L () in
  Check.attach ctl (Kernel.sched k);
  let e =
    Elastic.create k ?defect ~classify ~spec
      (Elastic.params ~tick:1.0 ~checkpoint_every:3 ~auto:false ~ctrl:(fixed_ctrl 2) ())
  in
  (* Decision order matters for DFS, which varies the deepest recorded
     pick first: the drain point — the decision the calibration mutant
     hinges on — is decided last so bounded DFS reaches it early. *)
  let crash_at = Check.decide ctl ~kind:"elastic.crash_at" ~n:(n + 1) in
  let replay_at = Check.decide ctl ~kind:"elastic.replay_at" ~n:(n + 1) in
  let drain_at = Check.decide ctl ~kind:"elastic.drain_at" ~n:(n + 1) in
  Elastic.start e;
  let completed = ref false in
  Kernel.run_driver k (fun ctx ->
      let push =
        Rpush.connect ctx ~batch:1 ~prng:(Prng.create 77L) (Elastic.router e)
      in
      List.iteri
        (fun i v ->
          if i + 1 = crash_at then begin
            (match Elastic.replica_uids e with
            | (_, uid) :: _ -> Kernel.crash k uid
            | [] -> ());
            Sched.note (Kernel.sched k) ~kind:"elastic.crash" ~arg:i
          end;
          if i + 1 = drain_at then ignore (Elastic.drain_one ctx e);
          if i + 1 = replay_at then Elastic.replay_all ctx e;
          Rpush.write push v;
          Rpush.flush push)
        (List.init n (fun i -> Value.Int i));
      Rpush.close push;
      completed := Elastic.await_timeout e ~timeout:3000.0;
      Elastic.stop e);
  Sched.check_failures (Kernel.sched k);
  if not !completed then failwith "elastic run wedged";
  (match Elastic.violations e with
  | [] -> ()
  | v :: _ -> failwith ("violation: " ^ v));
  if Elastic.outputs e <> expected_outputs n then failwith "outputs diverged"

let test_exploration_real_impl policy () =
  ignore
    (Check.run_or_fail ~budget:40 ~policy ~seed:Seed.base ~replay_dir
       ~name:("elastic-" ^ Policy.to_string policy)
       (elastic_prop ?defect:None))

(* Calibration mutant: a drain that skips the final checkpoint.  The
   lying Sync acknowledgement makes the router release an in-flight
   window that was never durable, so the handoff resumes the channel
   from a stale checkpoint.  FIFO never drains (pick 0), so it hides;
   any schedule draining off a checkpoint boundary exposes it. *)
let test_mutant_hides_under_fifo () =
  Alcotest.(check bool) "real impl passes FIFO" true
    (Check.fifo_passes (elastic_prop ?defect:None));
  Alcotest.(check bool) "mutant benign under FIFO" true
    (Check.fifo_passes (elastic_prop ~defect:Elastic.Drain_skips_checkpoint))

(* DFS bounds are a per-prop knob: with the router forwarding in
   parallel worker fibers, an elastic trace records dozens of genuine
   scheduler picks after the three fault decides, and deepest-first
   DFS with a 24-step window would burn any budget inside that binary
   subtree before ever incrementing a decide.  Fit the window to the
   decide prefix (3 picks, 13-way) so DFS enumerates fault points; the
   scheduler tail runs FIFO.  Random and PCT need no tuning — they
   reach the decides by construction. *)
let tune_for_decides = function
  | Policy.Dfs _ -> Policy.Dfs { max_branch = 13; max_steps = 3 }
  | p -> p

let test_mutant_found policy () =
  let policy = tune_for_decides policy in
  let f =
    Check.find_bug ~budget:32 ~policy ~seed:Seed.base ~replay_dir
      ~name:("elastic-mutant-" ^ Policy.to_string policy)
      (elastic_prop ~defect:Elastic.Drain_skips_checkpoint)
  in
  Alcotest.(check bool) "caught within 32 schedules" true (f.Check.schedules <= 32);
  match f.Check.replay_path with
  | None -> Alcotest.fail "no replay file written"
  | Some path ->
      let r = Check.replay ~path (elastic_prop ~defect:Elastic.Drain_skips_checkpoint) in
      Alcotest.(check bool) "replay reproduces" true r.Check.reproduced;
      let ok = Check.replay ~path (elastic_prop ?defect:None) in
      Alcotest.(check bool) "correct impl survives the same schedule" true
        (not ok.Check.reproduced)

(* --- QCheck: controller clamps ---------------------------------------- *)

(* Under arbitrary bursty traces the fleet must stay inside the
   controller's clamp bounds at every instant, and still deliver
   exactly-once. *)
let prop_fleet_within_clamps =
  Seed.to_alcotest
    (QCheck2.Test.make ~name:"fleet stays within controller clamps" ~count:12
       QCheck2.Gen.(
         pair (int_range 1 5) (small_list (pair (int_range 0 8) (int_range 0 3))))
       (fun (hi, bursts) ->
         let k = Kernel.create ~seed:21L () in
         let e =
           Elastic.create k ~classify ~spec
             (Elastic.params ~tick:1.0 ~capacity_per_replica:2
                ~ctrl:(elastic_ctrl ~lo:0 ~hi ()) ())
         in
         Elastic.start e;
         let total = ref 0 in
         let ok = ref true in
         Kernel.run_driver k (fun ctx ->
             let push =
               Rpush.connect ctx ~batch:1 ~prng:(Prng.create 5L) (Elastic.router e)
             in
             List.iter
               (fun (burst, idle) ->
                 for _ = 1 to burst do
                   Rpush.write push (Value.Int !total);
                   incr total
                 done;
                 Rpush.flush push;
                 if Elastic.live_replicas e > hi then ok := false;
                 Sched.sleep (float_of_int idle *. 3.0))
               bursts;
             Rpush.close push;
             ignore (Elastic.await_timeout e ~timeout:3000.0);
             Elastic.stop e);
         !ok && Elastic.max_live e <= hi
         && Elastic.violations e = []
         && Elastic.outputs e = expected_outputs !total))

(* --- Suite ------------------------------------------------------------ *)

let exploration_tests =
  List.map
    (fun policy ->
      ( "exploration: real impl clean under " ^ Policy.to_string policy,
        `Quick,
        test_exploration_real_impl policy ))
    Policy.quick_matrix

let mutant_tests =
  List.map
    (fun policy ->
      ( "mutant drain-skips-checkpoint caught by " ^ Policy.to_string policy,
        `Quick,
        test_mutant_found policy ))
    Policy.quick_matrix

let suite =
  [
    ("fixed fleet: partitioned sums exactly-once", `Quick, test_fixed_fleet_exact);
    ("single replica behaves as a plain stage", `Quick, test_single_replica_is_plain_stage);
    ("burst scales up, idle scales to zero", `Quick, test_burst_scales_up_idle_scales_to_zero);
    ("voluntary drain mid-stream is exactly-once", `Quick, test_scale_down_drains_exactly_once);
    ("replica crashes replay exactly-once", `Quick, test_replica_crash_replays_exactly_once);
    ("replay storms deduplicate", `Quick, test_replay_storm_is_deduplicated);
    ("crash loop gives up into adoption", `Quick, test_supervised_crash_loop_becomes_adoption);
    ("stall detector exempts quiesced stages", `Quick, test_stall_detector_ignores_quiesced);
    ("mutant hides under FIFO", `Quick, test_mutant_hides_under_fifo);
    prop_fleet_within_clamps;
  ]
  @ exploration_tests @ mutant_tests
