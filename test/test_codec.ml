(* Typed record streams (§6). *)

open Eden_kernel
open Eden_transput
module Dev = Eden_devices.Devices

let check = Alcotest.check
let prop name ?(count = 150) gen f =
  Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let roundtrip c x = c.Codec.decode (c.Codec.encode x)

let test_base_roundtrips () =
  check Alcotest.int "int" 42 (roundtrip Codec.int 42);
  check Alcotest.string "string" "s" (roundtrip Codec.string "s");
  Alcotest.(check bool) "bool" true (roundtrip Codec.bool true);
  check (Alcotest.float 1e-9) "float" 2.5 (roundtrip Codec.float 2.5);
  roundtrip Codec.unit ();
  let g = Uid.generator ~seed:1L in
  let u = Uid.fresh g in
  Alcotest.(check bool) "uid" true (Uid.equal u (roundtrip Codec.uid u))

let test_combinators () =
  let c = Codec.pair Codec.int Codec.string in
  Alcotest.(check (pair int string)) "pair" (1, "x") (roundtrip c (1, "x"));
  let t = Codec.triple Codec.int Codec.int Codec.bool in
  Alcotest.(check bool) "triple" true (roundtrip t (1, 2, true) = (1, 2, true));
  let l = Codec.list Codec.int in
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (roundtrip l [ 1; 2; 3 ]);
  let o = Codec.option Codec.string in
  Alcotest.(check (option string)) "some" (Some "a") (roundtrip o (Some "a"));
  Alcotest.(check (option string)) "none" None (roundtrip o None)

let test_map () =
  (* A record as a mapped pair. *)
  let point = Codec.map (fun (x, y) -> (y, x)) (fun (y, x) -> (x, y)) (Codec.pair Codec.int Codec.int) in
  Alcotest.(check (pair int int)) "bijection applied" (2, 1) (roundtrip point (2, 1))

let test_tagged () =
  (* ints carried on a string wire: map composes with tagging. *)
  let c = Codec.tagged [ ("n", Codec.map int_of_string string_of_int Codec.string) ] in
  Alcotest.(check (pair string int)) "tagged" ("n", 7) (roundtrip c ("n", 7));
  Alcotest.(check bool) "unknown tag encode" true
    (try
       ignore (c.Codec.encode ("zzz", 1));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown tag decode" true
    (try
       ignore (c.Codec.decode (Value.pair (Value.Str "zzz") (Value.Str "1")));
       false
     with Value.Protocol_error _ -> true)

let test_decode_mismatch_raises () =
  Alcotest.(check bool) "int codec on string" true
    (try
       ignore (Codec.int.Codec.decode (Value.Str "boom"));
       false
     with Value.Protocol_error _ -> true)

let prop_int_list_roundtrip =
  prop "list int roundtrips" QCheck2.Gen.(small_list int) (fun xs ->
      roundtrip (Codec.list Codec.int) xs = xs)

let prop_nested_roundtrip =
  prop "nested pair/option roundtrips"
    QCheck2.Gen.(small_list (pair (option (string_size (int_range 0 5))) int))
    (fun xs ->
      let c = Codec.list (Codec.pair (Codec.option Codec.string) Codec.int) in
      roundtrip c xs = xs)

(* A typed pipeline end to end: temperature records through a typed
   threshold filter.  The stream carries (station, reading) pairs; the
   filter is written against the OCaml types. *)
let test_typed_pipeline () =
  let record = Codec.pair Codec.string Codec.float in
  let k = Kernel.create () in
  let readings = [ ("kiruna", -12.5); ("seattle", 11.0); ("death-valley", 49.7) ] in
  let rest = ref readings in
  let src =
    Stage.source_ro k (fun () ->
        match !rest with
        | [] -> None
        | x :: tl ->
            rest := tl;
            Some (record.Codec.encode x))
  in
  let hot =
    Stage.filter_ro k ~upstream:src
      (Codec.lift_filter_map ~in_:record ~out:Codec.string (fun (station, temp) ->
           if temp > 0.0 then Some (Printf.sprintf "%s: %+.1f" station temp) else None))
  in
  let out = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx hot in
      Codec.iter Codec.string (fun s -> out := s :: !out) pull);
  Alcotest.(check (list string)) "typed filter"
    [ "seattle: +11.0"; "death-valley: +49.7" ]
    (List.rev !out)

(* A protocol violation crosses the wire as an error reply, not a
   crash: a stray non-record item makes the typed filter's transform
   raise, which surfaces in the consumer's Transfer as an error. *)
let test_type_violation_is_error_reply () =
  let k = Kernel.create () in
  let rest = ref [ Value.Str "not a record" ] in
  let src =
    Stage.source_ro k (fun () ->
        match !rest with
        | [] -> None
        | x :: tl ->
            rest := tl;
            Some x)
  in
  let typed =
    Stage.filter_ro k ~upstream:src
      (Codec.lift_map ~in_:(Codec.pair Codec.string Codec.float) ~out:Codec.string (fun _ ->
           "unreachable"))
  in
  (* A null sink supplies the demand that makes the filter pull and
     decode.  Drive the scheduler directly: Kernel.run would re-raise
     the worker failure we want to inspect. *)
  let sink = Stage.sink_ro k ~upstream:typed ignore in
  Kernel.poke k sink;
  Eden_sched.Sched.run (Kernel.sched k);
  (* The transform ran in the filter's worker; the violation lands as a
     recorded worker failure carrying Protocol_error — the datum never
     silently passes. *)
  match Eden_sched.Sched.failures (Kernel.sched k) with
  | (name, Value.Protocol_error _) :: _ ->
      Alcotest.(check bool) "failure names the transform worker" true
        (Eden_util.Text.contains_sub ~sub:"transform" name)
  | _ -> Alcotest.fail "expected a Protocol_error worker failure"

let test_typed_push_write () =
  let k = Kernel.create () in
  let record = Codec.pair Codec.int Codec.bool in
  let seen = ref [] in
  let sink = Stage.sink_wo k (fun v -> seen := record.Codec.decode v :: !seen) in
  Kernel.run_driver k (fun ctx ->
      let push = Push.connect ctx sink in
      Codec.write record push (1, true);
      Codec.write record push (2, false);
      Push.close push);
  Alcotest.(check bool) "typed deposits" true (List.rev !seen = [ (1, true); (2, false) ])

let suite =
  [
    ("base roundtrips", `Quick, test_base_roundtrips);
    ("combinators", `Quick, test_combinators);
    ("map", `Quick, test_map);
    ("tagged", `Quick, test_tagged);
    ("decode mismatch raises", `Quick, test_decode_mismatch_raises);
    ("typed pipeline", `Quick, test_typed_pipeline);
    ("type violation surfaces", `Quick, test_type_violation_is_error_reply);
    ("typed push write", `Quick, test_typed_push_write);
    prop_int_list_roundtrip;
    prop_nested_roundtrip;
  ]
