(* Kernel semantics: invocation, activation, checkpoint/crash/recovery,
   destruction, metering. *)

open Eden_kernel

let check = Alcotest.check

(* An echo Eject: replies with its argument; also counts calls in a
   shared cell so tests can observe handler execution. *)
let echo_behaviour ?(calls = ref 0) () _ctx ~passive:_ =
  [
    ( "Echo",
      fun arg ->
        incr calls;
        arg );
    ("Fail", fun _ -> raise (Kernel.Eden_error "deliberate"));
    ("Explode", fun _ -> raise (Value.Protocol_error "bad shape"));
  ]

let test_invoke_echo () =
  let k = Kernel.create () in
  let uid = Kernel.create_eject k ~type_name:"echo" (echo_behaviour ()) in
  let result = ref None in
  Kernel.run_driver k (fun ctx ->
      result := Some (Kernel.invoke ctx uid ~op:"Echo" (Value.Str "hi")));
  match !result with
  | Some (Ok (Value.Str "hi")) -> ()
  | _ -> Alcotest.fail "expected Ok hi"

let test_invoke_error_reply () =
  let k = Kernel.create () in
  let uid = Kernel.create_eject k ~type_name:"echo" (echo_behaviour ()) in
  let result = ref None in
  Kernel.run_driver k (fun ctx -> result := Some (Kernel.invoke ctx uid ~op:"Fail" Value.Unit));
  check Alcotest.(option (result reject string)) "error text"
    (Some (Error "deliberate"))
    (match !result with Some (Error e) -> Some (Error e) | _ -> None)

let test_invoke_unknown_op () =
  let k = Kernel.create () in
  let uid = Kernel.create_eject k ~type_name:"echo" (echo_behaviour ()) in
  let result = ref None in
  Kernel.run_driver k (fun ctx -> result := Some (Kernel.invoke ctx uid ~op:"Nope" Value.Unit));
  match !result with
  | Some (Error msg) -> Alcotest.(check bool) "names op" true (String.length msg > 0)
  | _ -> Alcotest.fail "expected error"

let test_invoke_no_such_eject () =
  let k = Kernel.create () in
  (* Mint a UID by creating and never registering: use a second kernel's
     eject so the UID is foreign to [k]. *)
  let other = Kernel.create ~seed:99L () in
  let foreign = Kernel.create_eject other ~type_name:"x" (echo_behaviour ()) in
  let result = ref None in
  Kernel.run_driver k (fun ctx ->
      result := Some (Kernel.invoke ctx foreign ~op:"Echo" Value.Unit));
  match !result with
  | Some (Error "no such eject") -> ()
  | _ -> Alcotest.fail "expected no such eject"

let test_protocol_error_becomes_reply () =
  let k = Kernel.create () in
  let uid = Kernel.create_eject k ~type_name:"echo" (echo_behaviour ()) in
  let result = ref None in
  Kernel.run_driver k (fun ctx ->
      result := Some (Kernel.invoke ctx uid ~op:"Explode" Value.Unit));
  match !result with
  | Some (Error msg) ->
      Alcotest.(check bool) "mentions protocol" true
        (Eden_util.Text.contains_sub ~sub:"protocol" msg)
  | _ -> Alcotest.fail "expected protocol error reply"

let test_call_raises_on_error () =
  let k = Kernel.create () in
  let uid = Kernel.create_eject k ~type_name:"echo" (echo_behaviour ()) in
  let raised = ref false in
  Kernel.run_driver k (fun ctx ->
      try ignore (Kernel.call ctx uid ~op:"Fail" Value.Unit)
      with Kernel.Eden_error "deliberate" -> raised := true);
  Alcotest.(check bool) "raised" true !raised

let test_lazy_activation () =
  let k = Kernel.create () in
  let uid = Kernel.create_eject k ~type_name:"echo" (echo_behaviour ()) in
  Alcotest.(check bool) "passive before" false (Kernel.is_active k uid);
  Kernel.run_driver k (fun ctx -> ignore (Kernel.invoke ctx uid ~op:"Echo" Value.Unit));
  Alcotest.(check bool) "active after" true (Kernel.is_active k uid);
  check Alcotest.int "one activation" 1 (Kernel.Meter.snapshot k).Kernel.Meter.activations

let test_invoke_async_overlap () =
  (* Two async invocations to two Ejects overlap in virtual time: total
     elapsed is one round trip, not two. *)
  let latency = 1.0 in
  let k = Kernel.create ~latency:(Eden_net.Net.Fixed latency) () in
  let a = Kernel.create_eject k ~type_name:"a" (echo_behaviour ()) in
  let b = Kernel.create_eject k ~type_name:"b" (echo_behaviour ()) in
  let elapsed = ref 0.0 in
  Kernel.run_driver k (fun ctx ->
      let t0 = Eden_sched.Sched.time () in
      let ra = Kernel.invoke_async ctx a ~op:"Echo" (Value.Int 1) in
      let rb = Kernel.invoke_async ctx b ~op:"Echo" (Value.Int 2) in
      ignore (Eden_sched.Ivar.read ra);
      ignore (Eden_sched.Ivar.read rb);
      elapsed := Eden_sched.Sched.time () -. t0);
  (* Same node: request and reply each take local latency = latency/10.
     Overlapped, both complete in ~one round trip. *)
  Alcotest.(check bool) "overlapped" true (!elapsed < 2.0 *. (2.0 *. latency /. 10.0) -. 1e-9 +. 0.3)

let test_serial_dispatch_ordering () =
  let k = Kernel.create () in
  let log = ref [] in
  let uid =
    Kernel.create_eject k ~type_name:"logger" (fun _ctx ~passive:_ ->
        [
          ( "Log",
            fun arg ->
              log := Value.to_int arg :: !log;
              Value.Unit );
        ])
  in
  Kernel.run_driver k (fun ctx ->
      let ivars =
        List.map (fun i -> Kernel.invoke_async ctx uid ~op:"Log" (Value.Int i)) [ 1; 2; 3; 4 ]
      in
      List.iter (fun iv -> ignore (Eden_sched.Ivar.read iv)) ivars);
  check Alcotest.(list int) "serial order" [ 1; 2; 3; 4 ] (List.rev !log)

let test_checkpoint_crash_recover () =
  let k = Kernel.create () in
  (* A counter that checkpoints every increment. *)
  let uid =
    Kernel.create_eject k ~type_name:"counter" (fun ctx ~passive ->
        let count = ref (match passive with Some v -> Value.to_int v | None -> 0) in
        [
          ( "Incr",
            fun _ ->
              incr count;
              Kernel.checkpoint ctx (Value.Int !count);
              Value.Int !count );
          ("Get", fun _ -> Value.Int !count);
        ])
  in
  let after_crash = ref (-1) in
  Kernel.run_driver k (fun ctx ->
      for _ = 1 to 3 do
        ignore (Kernel.call ctx uid ~op:"Incr" Value.Unit)
      done;
      Kernel.crash k uid;
      after_crash := Value.to_int (Kernel.call ctx uid ~op:"Get" Value.Unit));
  check Alcotest.int "state recovered from checkpoint" 3 !after_crash;
  check Alcotest.int "crash metered" 1 (Kernel.Meter.snapshot k).Kernel.Meter.crashes;
  check Alcotest.int "two activations" 2 (Kernel.Meter.snapshot k).Kernel.Meter.activations

let test_crash_without_checkpoint_resets () =
  let k = Kernel.create () in
  let uid =
    Kernel.create_eject k ~type_name:"counter" (fun _ctx ~passive ->
        let count = ref (match passive with Some v -> Value.to_int v | None -> 0) in
        [
          ( "Incr",
            fun _ ->
              incr count;
              Value.Int !count );
        ])
  in
  let second = ref (-1) in
  Kernel.run_driver k (fun ctx ->
      ignore (Kernel.call ctx uid ~op:"Incr" Value.Unit);
      ignore (Kernel.call ctx uid ~op:"Incr" Value.Unit);
      Kernel.crash k uid;
      second := Value.to_int (Kernel.call ctx uid ~op:"Incr" Value.Unit));
  check Alcotest.int "volatile state lost" 1 !second

let test_checkpoint_history () =
  let k = Kernel.create () in
  let uid =
    Kernel.create_eject k ~type_name:"ckpt" (fun ctx ~passive:_ ->
        [
          ( "Save",
            fun arg ->
              Kernel.checkpoint ctx arg;
              Value.Unit );
        ])
  in
  Kernel.run_driver k (fun ctx ->
      ignore (Kernel.call ctx uid ~op:"Save" (Value.Str "v1"));
      ignore (Kernel.call ctx uid ~op:"Save" (Value.Str "v2")));
  let versions = List.map snd (Kernel.checkpoints k uid) in
  check Alcotest.(list string) "newest first" [ "v2"; "v1" ] (List.map Value.to_str versions)

let test_destroy () =
  let k = Kernel.create () in
  let uid =
    Kernel.create_eject k ~type_name:"ephemeral" (fun ctx ~passive:_ ->
        [
          ( "Vanish",
            fun _ ->
              Kernel.destroy ctx;
              Value.Unit );
        ])
  in
  let second = ref None in
  Kernel.run_driver k (fun ctx ->
      ignore (Kernel.call ctx uid ~op:"Vanish" Value.Unit);
      second := Some (Kernel.invoke ctx uid ~op:"Vanish" Value.Unit));
  Alcotest.(check bool) "gone" false (Kernel.exists k uid);
  (match !second with
  | Some (Error "no such eject") -> ()
  | _ -> Alcotest.fail "expected no such eject after destroy");
  check Alcotest.int "live count dropped" 0 (Kernel.live_ejects k)

let test_deactivate_then_reactivate () =
  let k = Kernel.create () in
  let activations = ref 0 in
  let uid =
    Kernel.create_eject k ~type_name:"napper" (fun ctx ~passive:_ ->
        incr activations;
        [
          ( "Nap",
            fun _ ->
              Kernel.deactivate ctx;
              Value.Unit );
          ("Ping", fun _ -> Value.Str "pong");
        ])
  in
  let pong = ref "" in
  Kernel.run_driver k (fun ctx ->
      ignore (Kernel.call ctx uid ~op:"Nap" Value.Unit);
      (* Allow the deactivation to complete before re-invoking. *)
      Eden_sched.Sched.sleep 1.0;
      pong := Value.to_str (Kernel.call ctx uid ~op:"Ping" Value.Unit));
  check Alcotest.string "reactivated" "pong" !pong;
  check Alcotest.int "behaviour rebuilt" 2 !activations

let test_deactivate_drops_pending_invocations () =
  (* Documented semantics: deactivation is for idle Ejects; invocations
     still queued behind the deactivating one are dropped (their
     invokers can protect themselves with timeouts), while invocations
     arriving after reactivation work normally. *)
  let k = Kernel.create () in
  let uid =
    Kernel.create_eject k ~type_name:"napper" (fun ctx ~passive:_ ->
        [
          ( "Nap",
            fun _ ->
              (* Slow enough that the Ping is already queued when the
                 deactivation takes effect. *)
              Eden_sched.Sched.sleep 5.0;
              Kernel.deactivate ctx;
              Value.Unit );
          ("Ping", fun _ -> Value.Str "pong");
        ])
  in
  let queued = ref (Some (Ok Value.Unit)) and later = ref None in
  Kernel.run_driver k (fun ctx ->
      (* Fire Nap and a Ping back to back: the Ping queues behind the
         deactivation. *)
      let nap = Kernel.invoke_async ctx uid ~op:"Nap" Value.Unit in
      let ping = Kernel.invoke_async ctx uid ~op:"Ping" Value.Unit in
      ignore (Eden_sched.Ivar.read nap);
      queued := Eden_sched.Ivar.read_timeout (Kernel.sched k) ping 50.0;
      (* A fresh invocation reactivates and succeeds. *)
      later := Kernel.invoke_timeout ctx uid ~op:"Ping" Value.Unit ~timeout:50.0);
  Alcotest.(check bool) "queued ping lost (timed out)" true (!queued = None);
  Alcotest.(check bool) "post-reactivation ping works" true (!later = Some (Ok (Value.Str "pong")))

let test_invoke_timeout_on_crashed_target () =
  let k = Kernel.create () in
  let uid =
    Kernel.create_eject k ~type_name:"slow" (fun _ctx ~passive:_ ->
        [
          ( "Slow",
            fun _ ->
              Eden_sched.Sched.sleep 100.0;
              Value.Unit );
        ])
  in
  let got = ref (Some (Ok Value.Unit)) in
  Kernel.run_driver k (fun ctx ->
      (* Fire the invocation, crash the target mid-service, expect a
         timeout rather than a reply. *)
      let iv = Kernel.invoke_async ctx uid ~op:"Slow" Value.Unit in
      Eden_sched.Sched.sleep 5.0;
      Kernel.crash k uid;
      got := Eden_sched.Ivar.read_timeout (Kernel.sched k) iv 50.0);
  check Alcotest.(option (result unit string)) "timed out" None
    (match !got with
    | None -> None
    | Some (Ok _) -> Some (Ok ())
    | Some (Error e) -> Some (Error e))

let test_partition_blocks_invocation () =
  let k = Kernel.create ~nodes:[ "a"; "b" ] () in
  let nodes = Kernel.nodes k in
  let na, nb = (List.nth nodes 0, List.nth nodes 1) in
  let uid = Kernel.create_eject k ~node:nb ~type_name:"echo" (echo_behaviour ()) in
  let first = ref None and second = ref None in
  Kernel.run_driver k (fun ctx ->
      Eden_net.Net.partition (Kernel.net k) na nb;
      first := Kernel.invoke_timeout ctx uid ~op:"Echo" Value.Unit ~timeout:10.0;
      Eden_net.Net.heal (Kernel.net k) na nb;
      second := Kernel.invoke_timeout ctx uid ~op:"Echo" Value.Unit ~timeout:10.0);
  Alcotest.(check bool) "partitioned call lost" true (!first = None);
  Alcotest.(check bool) "healed call succeeds" true (!second = Some (Ok Value.Unit))

let test_meter_counts_invocations () =
  let k = Kernel.create () in
  let uid = Kernel.create_eject k ~type_name:"echo" (echo_behaviour ()) in
  let before = Kernel.Meter.snapshot k in
  Kernel.run_driver k (fun ctx ->
      for i = 1 to 5 do
        ignore (Kernel.call ctx uid ~op:"Echo" (Value.Int i))
      done);
  let d = Kernel.Meter.diff (Kernel.Meter.snapshot k) before in
  check Alcotest.int "five invocations" 5 d.Kernel.Meter.invocations;
  check Alcotest.int "five replies" 5 d.Kernel.Meter.replies

let test_op_counts () =
  let k = Kernel.create () in
  let uid = Kernel.create_eject k ~type_name:"echo" (echo_behaviour ()) in
  Kernel.run_driver k (fun ctx ->
      ignore (Kernel.call ctx uid ~op:"Echo" Value.Unit);
      ignore (Kernel.call ctx uid ~op:"Echo" Value.Unit);
      ignore (Kernel.invoke ctx uid ~op:"Fail" Value.Unit));
  check
    Alcotest.(list (pair string int))
    "per-op tally"
    [ ("Echo", 2); ("Fail", 1) ]
    (Kernel.op_counts k)

let test_poke_activates_without_invocation () =
  let k = Kernel.create () in
  let worker_ran = ref false in
  let uid =
    Kernel.create_eject k ~type_name:"pump" (fun ctx ~passive:_ ->
        Kernel.spawn_worker ctx (fun () -> worker_ran := true);
        [])
  in
  Kernel.poke k uid;
  Kernel.run k;
  Alcotest.(check bool) "worker ran" true !worker_ran;
  check Alcotest.int "no invocations" 0 (Kernel.Meter.snapshot k).Kernel.Meter.invocations

let test_ejects_between_nodes () =
  let k = Kernel.create ~nodes:[ "a"; "b"; "c" ] () in
  let nodes = Kernel.nodes k in
  check Alcotest.int "three nodes" 3 (List.length nodes);
  let uid = Kernel.create_eject k ~node:(List.nth nodes 2) ~type_name:"echo" (echo_behaviour ()) in
  let ok = ref false in
  Kernel.run_driver k (fun ctx ->
      ok := Kernel.invoke ctx uid ~op:"Echo" Value.Unit = Ok Value.Unit);
  Alcotest.(check bool) "cross-node invocation" true !ok

let test_value_roundtrips () =
  let open Value in
  check Alcotest.int "int" 42 (to_int (int 42));
  check Alcotest.string "str" "x" (to_str (str "x"));
  Alcotest.(check bool) "bool" true (to_bool (bool true));
  check (Alcotest.float 1e-9) "float" 1.5 (to_float (float 1.5));
  to_unit unit;
  let a, b = to_pair (pair (int 1) (str "s")) in
  Alcotest.(check bool) "pair" true (equal a (int 1) && equal b (str "s"));
  Alcotest.(check bool) "list" true (equal (list [ int 1 ]) (list [ int 1 ]));
  Alcotest.(check bool) "inequal" false (equal (int 1) (str "1"))

let test_value_accessor_errors () =
  Alcotest.(check bool) "wrong shape raises" true
    (try
       ignore (Value.to_int (Value.Str "x"));
       false
     with Value.Protocol_error _ -> true)

let test_value_size_monotone () =
  Alcotest.(check bool) "longer string bigger" true
    (Value.size (Value.Str "aaaa") > Value.size (Value.Str "a"));
  Alcotest.(check bool) "list overhead" true
    (Value.size (Value.List [ Value.Int 1 ]) > Value.size (Value.Int 1))

let test_uid_uniqueness () =
  let g = Uid.generator ~seed:1L in
  let a = Uid.fresh g and b = Uid.fresh g in
  Alcotest.(check bool) "distinct" false (Uid.equal a b);
  Alcotest.(check bool) "self equal" true (Uid.equal a a);
  Alcotest.(check bool) "ordering antisym" true (Uid.compare a b = -Uid.compare b a)

let test_uid_collections () =
  let g = Uid.generator ~seed:9L in
  let uids = List.init 20 (fun _ -> Uid.fresh g) in
  let set = List.fold_left (fun s u -> Uid.Set.add u s) Uid.Set.empty uids in
  check Alcotest.int "set holds all" 20 (Uid.Set.cardinal set);
  let map =
    List.fold_left (fun m (i, u) -> Uid.Map.add u i m) Uid.Map.empty
      (List.mapi (fun i u -> (i, u)) uids)
  in
  check Alcotest.int "map lookup" 7 (Uid.Map.find (List.nth uids 7) map);
  let tbl = Uid.Tbl.create 8 in
  List.iteri (fun i u -> Uid.Tbl.replace tbl u i) uids;
  check Alcotest.(option int) "tbl lookup" (Some 3) (Uid.Tbl.find_opt tbl (List.nth uids 3))

let test_value_pp_shapes () =
  let g = Uid.generator ~seed:2L in
  let v =
    Value.List [ Value.Unit; Value.Bool true; Value.Int 3; Value.Float 1.5;
                 Value.Str "s"; Value.Uid (Uid.fresh g) ]
  in
  let s = Value.to_string v in
  List.iter
    (fun sub -> Alcotest.(check bool) ("contains " ^ sub) true (Eden_util.Text.contains_sub ~sub s))
    [ "()"; "true"; "3"; "1.5"; "\"s\""; "E#" ]

let test_mint_is_fresh () =
  let k = Kernel.create () in
  let minted = ref [] in
  let uid =
    Kernel.create_eject k ~type_name:"minter" (fun ctx ~passive:_ ->
        [
          ( "Mint",
            fun _ ->
              let u = Kernel.mint ctx in
              minted := u :: !minted;
              Value.Uid u );
        ])
  in
  Kernel.run_driver k (fun ctx ->
      for _ = 1 to 5 do
        ignore (Kernel.call ctx uid ~op:"Mint" Value.Unit)
      done);
  let set = List.fold_left (fun s u -> Uid.Set.add u s) Uid.Set.empty !minted in
  check Alcotest.int "all distinct" 5 (Uid.Set.cardinal set);
  (* Minted tokens name no Eject. *)
  List.iter (fun u -> Alcotest.(check bool) "not an eject" false (Kernel.exists k u)) !minted

let test_received_counts_only_invocations () =
  (* Regression: the coordinator's [Stop] poison pill (sent on
     deactivate/crash/destroy) is kernel bookkeeping, not traffic, and
     must not inflate the per-Eject received counter. *)
  let k = Kernel.create () in
  let uid =
    Kernel.create_eject k ~type_name:"counted" (fun ctx ~passive:_ ->
        [
          ("Echo", Fun.id);
          ( "Deactivate",
            fun _ ->
              Kernel.deactivate ctx;
              Value.Unit );
        ])
  in
  Kernel.run_driver k (fun ctx ->
      ignore (Kernel.call ctx uid ~op:"Echo" Value.Unit);
      ignore (Kernel.call ctx uid ~op:"Echo" Value.Unit);
      ignore (Kernel.call ctx uid ~op:"Deactivate" Value.Unit);
      (* Reactivates; the Stop that ended the previous incarnation must
         not have counted. *)
      ignore (Kernel.call ctx uid ~op:"Echo" Value.Unit));
  check Alcotest.int "4 invocations dispatched" 4 (Kernel.received k uid)

let test_concurrent_workers_pruned () =
  (* Regression: each Concurrent invocation spawns a worker fiber; the
     finish hook must prune it from the owner's worker list (and the
     scheduler's fiber table), or both grow without bound. *)
  let k = Kernel.create () in
  let uid =
    Kernel.create_eject k ~dispatch:Kernel.Concurrent ~type_name:"conc"
      (fun _ctx ~passive:_ -> [ ("Echo", Fun.id) ])
  in
  Kernel.run_driver k (fun ctx ->
      for _ = 1 to 20 do
        ignore (Kernel.call ctx uid ~op:"Echo" Value.Unit)
      done);
  check Alcotest.int "only the coordinator remains" 1 (Kernel.worker_count k uid)

let test_meter_counts_timeouts () =
  let k = Kernel.create () in
  let uid =
    Kernel.create_eject k ~type_name:"slow" (fun _ctx ~passive:_ ->
        [
          ( "Slow",
            fun v ->
              Eden_sched.Sched.sleep 50.0;
              v );
        ])
  in
  Kernel.run_driver k (fun ctx ->
      match Kernel.invoke_timeout ctx uid ~op:"Slow" Value.Unit ~timeout:1.0 with
      | None -> ()
      | Some _ -> Alcotest.fail "expected a timeout");
  let snap = Kernel.Meter.snapshot k in
  check Alcotest.int "snapshot counts timeouts" 1 snap.Kernel.Meter.timeouts;
  check Alcotest.int "diff subtracts timeouts" 0
    (Kernel.Meter.diff snap snap).Kernel.Meter.timeouts;
  Alcotest.(check bool) "pp renders timeouts" true
    (Eden_util.Text.contains_sub ~sub:"timeouts=1"
       (Format.asprintf "%a" Kernel.Meter.pp snap))

let suite =
  [
    ("invoke echo", `Quick, test_invoke_echo);
    ("received counts only invocations", `Quick, test_received_counts_only_invocations);
    ("concurrent workers pruned", `Quick, test_concurrent_workers_pruned);
    ("meter counts timeouts", `Quick, test_meter_counts_timeouts);
    ("error reply", `Quick, test_invoke_error_reply);
    ("unknown op", `Quick, test_invoke_unknown_op);
    ("no such eject", `Quick, test_invoke_no_such_eject);
    ("protocol error reply", `Quick, test_protocol_error_becomes_reply);
    ("call raises Eden_error", `Quick, test_call_raises_on_error);
    ("lazy activation", `Quick, test_lazy_activation);
    ("async invocations overlap", `Quick, test_invoke_async_overlap);
    ("serial dispatch ordering", `Quick, test_serial_dispatch_ordering);
    ("checkpoint crash recover", `Quick, test_checkpoint_crash_recover);
    ("crash without checkpoint resets", `Quick, test_crash_without_checkpoint_resets);
    ("checkpoint history", `Quick, test_checkpoint_history);
    ("destroy", `Quick, test_destroy);
    ("deactivate then reactivate", `Quick, test_deactivate_then_reactivate);
    ("deactivate drops pending", `Quick, test_deactivate_drops_pending_invocations);
    ("timeout on crashed target", `Quick, test_invoke_timeout_on_crashed_target);
    ("partition blocks invocation", `Quick, test_partition_blocks_invocation);
    ("meter counts invocations", `Quick, test_meter_counts_invocations);
    ("op counts", `Quick, test_op_counts);
    ("poke activates without invocation", `Quick, test_poke_activates_without_invocation);
    ("cross-node invocation", `Quick, test_ejects_between_nodes);
    ("value roundtrips", `Quick, test_value_roundtrips);
    ("value accessor errors", `Quick, test_value_accessor_errors);
    ("value size monotone", `Quick, test_value_size_monotone);
    ("uid uniqueness", `Quick, test_uid_uniqueness);
    ("uid collections", `Quick, test_uid_collections);
    ("value pp shapes", `Quick, test_value_pp_shapes);
    ("mint is fresh", `Quick, test_mint_is_fresh);
  ]
