(* Unit and property tests for Eden_util. *)

open Eden_util

let check = Alcotest.check
let prop name ?(count = 200) gen f =
  Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_copy () =
  let a = Prng.create 7L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  for _ = 1 to 50 do
    check Alcotest.int64 "copy tracks original" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create 1L in
  let child = Prng.split a in
  (* Child and parent streams should not coincide. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.next_int64 a) (Prng.next_int64 child) then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 4)

let test_prng_split_n () =
  let a = Prng.create 9L and b = Prng.create 9L in
  let kids = Prng.split_n a 4 in
  Alcotest.(check int) "count" 4 (Array.length kids);
  (* split_n is just n splits in order: same seed, same children. *)
  Array.iter
    (fun kid ->
      let kid' = Prng.split b in
      for _ = 1 to 16 do
        check Alcotest.int64 "split_n = repeated split" (Prng.next_int64 kid')
          (Prng.next_int64 kid)
      done)
    kids;
  Alcotest.(check (array (list Alcotest.int64))) "zero children" [||]
    (Array.map (fun _ -> []) (Prng.split_n a 0));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Prng.split_n: negative count") (fun () ->
      ignore (Prng.split_n a (-1)))

(* Sibling streams must not correlate: distinct pairwise, and no
   pairwise-equal draws beyond chance.  This is what makes
   split-per-domain sound — each domain's randomness is its own. *)
let test_prng_split_n_uncorrelated () =
  let kids = Prng.split_n (Prng.create 2024L) 8 in
  let draws = Array.map (fun g -> Array.init 64 (fun _ -> Prng.next_int64 g)) kids in
  Array.iteri
    (fun i di ->
      Array.iteri
        (fun j dj ->
          if i < j then begin
            Alcotest.(check bool)
              (Printf.sprintf "streams %d,%d differ" i j)
              false (di = dj);
            let coincidences = ref 0 in
            Array.iteri
              (fun k x -> if Int64.equal x dj.(k) then incr coincidences)
              di;
            Alcotest.(check bool)
              (Printf.sprintf "streams %d,%d share no draws" i j)
              true (!coincidences = 0)
          end)
        draws)
    draws

(* Splitting must not disturb the parent's own stream relative to a
   parent that split a different number of children — each child is
   exactly one parent draw. *)
let test_prng_split_advances_parent_once () =
  let a = Prng.create 77L and b = Prng.create 77L in
  ignore (Prng.split_n a 3);
  ignore (Prng.split b);
  ignore (Prng.split b);
  ignore (Prng.split b);
  for _ = 1 to 32 do
    check Alcotest.int64 "parent stream agrees" (Prng.next_int64 a)
      (Prng.next_int64 b)
  done

let test_prng_int_bounds () =
  let g = Prng.create 99L in
  for _ = 1 to 1000 do
    let x = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_prng_int_in () =
  let g = Prng.create 5L in
  for _ = 1 to 500 do
    let x = Prng.int_in g (-3) 9 in
    Alcotest.(check bool) "in closed range" true (x >= -3 && x <= 9)
  done

let test_prng_float_bounds () =
  let g = Prng.create 11L in
  for _ = 1 to 1000 do
    let x = Prng.float g 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 2.5)
  done

let test_prng_invalid () =
  let g = Prng.create 3L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0));
  Alcotest.check_raises "empty choose" (Invalid_argument "Prng.choose: empty array") (fun () ->
      ignore (Prng.choose g [||]))

let test_prng_shuffle_permutes () =
  let g = Prng.create 123L in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 50 Fun.id) sorted

let test_prng_exponential_positive () =
  let g = Prng.create 321L in
  for _ = 1 to 200 do
    Alcotest.(check bool) "positive" true (Prng.exponential g 3.0 >= 0.0)
  done

(* ------------------------------------------------------------------ *)
(* Ring                                                               *)
(* ------------------------------------------------------------------ *)

let test_ring_fifo () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check bool) "push a" true (Ring.push r "a");
  Alcotest.(check bool) "push b" true (Ring.push r "b");
  check Alcotest.(option string) "pop a" (Some "a") (Ring.pop r);
  Alcotest.(check bool) "push c" true (Ring.push r "c");
  Alcotest.(check bool) "push d" true (Ring.push r "d");
  Alcotest.(check bool) "full rejects" false (Ring.push r "e");
  check Alcotest.(list string) "order" [ "b"; "c"; "d" ] (Ring.to_list r)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:2 in
  for i = 1 to 10 do
    Ring.push_exn r i;
    check Alcotest.int "pop returns i" i (Ring.pop_exn r)
  done;
  Alcotest.(check bool) "empty at end" true (Ring.is_empty r)

let test_ring_peek_clear () =
  let r = Ring.create ~capacity:4 in
  check Alcotest.(option int) "peek empty" None (Ring.peek r);
  Ring.push_exn r 1;
  Ring.push_exn r 2;
  check Alcotest.(option int) "peek oldest" (Some 1) (Ring.peek r);
  check Alcotest.int "peek does not remove" 2 (Ring.length r);
  Ring.clear r;
  Alcotest.(check bool) "cleared" true (Ring.is_empty r);
  check Alcotest.(option int) "pop after clear" None (Ring.pop r)

let test_ring_errors () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Ring.create: capacity must be positive")
    (fun () -> ignore (Ring.create ~capacity:0));
  let r = Ring.create ~capacity:1 in
  Alcotest.check_raises "pop empty" (Failure "Ring.pop_exn: empty") (fun () ->
      ignore (Ring.pop_exn r));
  Ring.push_exn r 0;
  Alcotest.check_raises "push full" (Failure "Ring.push_exn: full") (fun () -> Ring.push_exn r 1)

let prop_ring_model =
  (* Ring behaves like a bounded FIFO queue model. *)
  prop "ring = bounded queue model"
    QCheck2.Gen.(pair (int_range 1 8) (small_list (int_bound 1)))
    (fun (cap, ops) ->
      let r = Ring.create ~capacity:cap in
      let model = Queue.create () in
      List.iteri
        (fun i op ->
          if op = 0 then begin
            let accepted = Ring.push r i in
            let model_accepts = Queue.length model < cap in
            if accepted <> model_accepts then QCheck2.Test.fail_report "push disagreement";
            if accepted then Queue.push i model
          end
          else begin
            let got = Ring.pop r in
            let expect = Queue.take_opt model in
            if got <> expect then QCheck2.Test.fail_report "pop disagreement"
          end)
        ops;
      Ring.to_list r = List.of_seq (Queue.to_seq model))

(* ------------------------------------------------------------------ *)
(* Fqueue                                                             *)
(* ------------------------------------------------------------------ *)

let test_fqueue_basic () =
  let q = Fqueue.empty |> Fqueue.push 1 |> Fqueue.push 2 |> Fqueue.push 3 in
  check Alcotest.int "length" 3 (Fqueue.length q);
  (match Fqueue.pop q with
  | Some (1, q') -> check Alcotest.(list int) "rest" [ 2; 3 ] (Fqueue.to_list q')
  | _ -> Alcotest.fail "expected 1");
  check Alcotest.(option int) "peek" (Some 1) (Fqueue.peek q)

let test_fqueue_empty () =
  Alcotest.(check bool) "is_empty" true (Fqueue.is_empty Fqueue.empty);
  check Alcotest.(option int) "peek none" None (Fqueue.peek Fqueue.empty);
  Alcotest.(check bool) "pop none" true (Fqueue.pop Fqueue.empty = None)

let test_fqueue_persistence () =
  let q1 = Fqueue.of_list [ 1; 2 ] in
  let q2 = Fqueue.push 3 q1 in
  check Alcotest.(list int) "q1 unchanged" [ 1; 2 ] (Fqueue.to_list q1);
  check Alcotest.(list int) "q2 extended" [ 1; 2; 3 ] (Fqueue.to_list q2)

let prop_fqueue_fifo =
  prop "fqueue preserves list order" QCheck2.Gen.(small_list int) (fun xs ->
      Fqueue.to_list (Fqueue.of_list xs) = xs
      && Fqueue.to_list (List.fold_left (fun q x -> Fqueue.push x q) Fqueue.empty xs) = xs)

let prop_fqueue_fold =
  prop "fold visits in order" QCheck2.Gen.(small_list int) (fun xs ->
      Fqueue.fold (fun acc x -> x :: acc) [] (Fqueue.of_list xs) = List.rev xs)

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

module Iheap = Heap.Make (Int)

let test_heap_sorts () =
  let h = Iheap.of_list [ (5, "e"); (1, "a"); (3, "c"); (2, "b"); (4, "d") ] in
  check
    Alcotest.(list (pair int string))
    "sorted"
    [ (1, "a"); (2, "b"); (3, "c"); (4, "d"); (5, "e") ]
    (Iheap.to_sorted_list h)

let test_heap_stable_ties () =
  (* Events at the same instant must pop in insertion order. *)
  let h = Iheap.empty |> Iheap.insert 7 "first" |> Iheap.insert 7 "second" |> Iheap.insert 7 "third" in
  check
    Alcotest.(list (pair int string))
    "fifo among ties"
    [ (7, "first"); (7, "second"); (7, "third") ]
    (Iheap.to_sorted_list h)

let test_heap_empty () =
  Alcotest.(check bool) "find_min none" true (Iheap.find_min Iheap.empty = None);
  Alcotest.(check bool) "delete_min none" true (Iheap.delete_min Iheap.empty = None);
  check Alcotest.int "size 0" 0 (Iheap.size Iheap.empty)

let test_heap_min_tie_count () =
  check Alcotest.int "empty" 0 (Iheap.min_tie_count Iheap.empty);
  let h = Iheap.of_list [ (2, "x"); (1, "a"); (1, "b"); (3, "y"); (1, "c") ] in
  check Alcotest.int "three tied at the min" 3 (Iheap.min_tie_count h);
  match Iheap.delete_min h with
  | Some (_, _, h') -> check Alcotest.int "two after one pop" 2 (Iheap.min_tie_count h')
  | None -> Alcotest.fail "heap not empty"

let test_heap_delete_nth_min () =
  let mk () = Iheap.of_list [ (1, "a"); (2, "x"); (1, "b"); (1, "c") ] in
  (* index 0 behaves exactly like delete_min *)
  (match (Iheap.delete_nth_min (mk ()) 0, Iheap.delete_min (mk ())) with
  | Some (k, v, r0), Some (k', v', r1) ->
      check Alcotest.int "same key" k' k;
      check Alcotest.string "same value" v' v;
      Alcotest.(check bool)
        "same remaining order" true
        (Iheap.to_sorted_list r0 = Iheap.to_sorted_list r1)
  | _ -> Alcotest.fail "unexpected empty");
  (* extracting a middle tie preserves insertion order of the rest *)
  (match Iheap.delete_nth_min (mk ()) 1 with
  | Some (1, "b", rest) ->
      check
        Alcotest.(list (pair int string))
        "others keep insertion order"
        [ (1, "a"); (1, "c"); (2, "x") ]
        (Iheap.to_sorted_list rest)
  | _ -> Alcotest.fail "wrong tie extracted");
  (match Iheap.delete_nth_min (mk ()) 2 with
  | Some (1, "c", rest) ->
      check
        Alcotest.(list (pair int string))
        "last tie extracted"
        [ (1, "a"); (1, "b"); (2, "x") ]
        (Iheap.to_sorted_list rest)
  | _ -> Alcotest.fail "wrong tie extracted");
  Alcotest.(check bool) "empty heap" true (Iheap.delete_nth_min Iheap.empty 0 = None);
  match Iheap.delete_nth_min (mk ()) 3 with
  | (_ : (int * string * string Iheap.t) option) ->
      Alcotest.fail "index beyond tie count accepted"
  | exception Invalid_argument _ -> ()

let prop_heap_delete_nth_stability =
  (* Any sequence of tie-indexed deletions observes exactly the stable
     insertion order of the surviving ties. *)
  prop "delete_nth_min preserves stability"
    QCheck2.Gen.(pair (int_range 2 8) (small_list (int_bound 2)))
    (fun (ties, idxs) ->
      let h = ref Iheap.empty in
      for i = 0 to ties - 1 do
        h := Iheap.insert 1 i !h
      done;
      let order = ref [] in
      List.iter
        (fun idx ->
          match Iheap.min_tie_count !h with
          | 0 -> ()
          | m -> (
              match Iheap.delete_nth_min !h (idx mod m) with
              | Some (_, v, rest) ->
                  order := v :: !order;
                  h := rest
              | None -> ()))
        idxs;
      (* The survivors must drain in increasing insertion order. *)
      let rest = List.map snd (Iheap.to_sorted_list !h) in
      List.sort compare rest = rest
      && List.length rest + List.length !order = ties)

let prop_heap_sorted =
  prop "heap sort agrees with List.sort" QCheck2.Gen.(small_list (int_bound 100)) (fun xs ->
      let kvs = List.map (fun x -> (x, ())) xs in
      List.map fst (Iheap.to_sorted_list (Iheap.of_list kvs)) = List.sort compare xs)

let prop_heap_size =
  prop "size tracks inserts/deletes" QCheck2.Gen.(small_list (int_bound 50)) (fun xs ->
      let h = Iheap.of_list (List.map (fun x -> (x, x)) xs) in
      let rec drain h n =
        match Iheap.delete_min h with
        | None -> n = 0
        | Some (_, _, h') -> Iheap.size h' = n - 1 && drain h' (n - 1)
      in
      Iheap.size h = List.length xs && drain h (List.length xs))

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let feq = Alcotest.float 1e-9

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check Alcotest.int "count" 4 (Stats.count s);
  check feq "mean" 2.5 (Stats.mean s);
  check feq "min" 1.0 (Stats.min_value s);
  check feq "max" 4.0 (Stats.max_value s);
  check feq "variance" 1.25 (Stats.variance s);
  check feq "total" 10.0 (Stats.total s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check feq "p50" 50.0 (Stats.percentile s 0.5);
  check feq "p01" 1.0 (Stats.percentile s 0.01);
  check feq "p100" 100.0 (Stats.percentile s 1.0)

let test_stats_empty () =
  let s = Stats.create () in
  check feq "mean of empty" 0.0 (Stats.mean s);
  Alcotest.check_raises "min of empty" (Invalid_argument "Stats.min_value: empty") (fun () ->
      ignore (Stats.min_value s))

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0 ];
  List.iter (Stats.add b) [ 3.0; 4.0 ];
  let m = Stats.merge a b in
  check Alcotest.int "merged count" 4 (Stats.count m);
  check feq "merged mean" 2.5 (Stats.mean m)

let prop_stats_mean =
  prop "mean matches direct computation"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let direct = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean s -. direct) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Table                                                              *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ ("name", Table.Left); ("n", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "100" ];
  let out = Table.render t in
  Alcotest.(check bool) "title present" true (Text.is_prefix ~prefix:"demo\n" out);
  (* "b" padded to width 5, two-space separator, "100" right-aligned in
     width 3: six spaces between. *)
  Alcotest.(check bool) "right aligned" true (Text.contains_sub ~sub:"b      100" out)

let test_table_row_width () =
  let t = Table.create ~title:"x" ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "wrong width" (Invalid_argument "Table.add_row: row width differs from header")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_cells () =
  check Alcotest.string "int" "42" (Table.cell_int 42);
  check Alcotest.string "float" "3.14" (Table.cell_float 3.14159);
  check Alcotest.string "float decimals" "3.1416" (Table.cell_float ~decimals:4 3.14159);
  check Alcotest.string "ratio" "1.97x" (Table.cell_ratio 1.9666)

(* ------------------------------------------------------------------ *)
(* Text                                                               *)
(* ------------------------------------------------------------------ *)

let test_split_lines () =
  check Alcotest.(list string) "trailing nl" [ "a"; "b" ] (Text.split_lines "a\nb\n");
  check Alcotest.(list string) "no trailing nl" [ "a"; "b" ] (Text.split_lines "a\nb");
  check Alcotest.(list string) "empty" [] (Text.split_lines "");
  check Alcotest.(list string) "interior empties" [ "a"; ""; "b" ] (Text.split_lines "a\n\nb")

let test_join_lines () =
  check Alcotest.string "join" "a\nb\n" (Text.join_lines [ "a"; "b" ]);
  check Alcotest.string "join empty" "" (Text.join_lines [])

let prop_lines_roundtrip =
  let line = QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 10)) in
  prop "split . join = id on line lists" QCheck2.Gen.(small_list line) (fun lines ->
      Text.split_lines (Text.join_lines lines) = lines)

let test_affixes () =
  Alcotest.(check bool) "prefix yes" true (Text.is_prefix ~prefix:"foo" "foobar");
  Alcotest.(check bool) "prefix no" false (Text.is_prefix ~prefix:"bar" "foobar");
  Alcotest.(check bool) "suffix yes" true (Text.is_suffix ~suffix:"bar" "foobar");
  Alcotest.(check bool) "suffix no" false (Text.is_suffix ~suffix:"foo" "foobar");
  Alcotest.(check bool) "contains" true (Text.contains_sub ~sub:"oba" "foobar");
  check Alcotest.(option int) "find" (Some 2) (Text.find_sub ~sub:"oba" "foobar");
  check Alcotest.(option int) "find missing" None (Text.find_sub ~sub:"zz" "foobar")

let test_replace_all () =
  check Alcotest.string "simple" "xbxb" (Text.replace_all ~sub:"a" ~by:"x" "abab");
  check Alcotest.string "grows" "xyxy" (Text.replace_all ~sub:"a" ~by:"xy" "aa");
  check Alcotest.string "no match" "abc" (Text.replace_all ~sub:"z" ~by:"q" "abc")

let test_chunks () =
  check Alcotest.(list string) "even" [ "ab"; "cd" ] (Text.chunks ~size:2 "abcd");
  check Alcotest.(list string) "ragged" [ "abc"; "d" ] (Text.chunks ~size:3 "abcd");
  check Alcotest.(list string) "empty" [] (Text.chunks ~size:4 "")

let prop_chunks_concat =
  prop "concat . chunks = id"
    QCheck2.Gen.(pair (int_range 1 7) (string_size ~gen:(char_range 'a' 'z') (int_range 0 40)))
    (fun (size, s) -> String.concat "" (Text.chunks ~size s) = s)

let test_expand_tabs () =
  check Alcotest.string "col 0" "        x" (Text.expand_tabs ~tabstop:8 "\tx");
  check Alcotest.string "mid col" "ab      x" (Text.expand_tabs ~tabstop:8 "ab\tx");
  check Alcotest.string "tabstop 4" "ab  x" (Text.expand_tabs ~tabstop:4 "ab\tx")

let test_words () =
  check Alcotest.(list string) "basic" [ "a"; "bc"; "d" ] (Text.words "  a bc\td \n");
  check Alcotest.(list string) "empty" [] (Text.words "   ")

let test_padding () =
  check Alcotest.string "pad right" "ab  " (Text.pad_right 4 "ab");
  check Alcotest.string "pad left" "  ab" (Text.pad_left 4 "ab");
  check Alcotest.string "no pad needed" "abcdef" (Text.pad_right 4 "abcdef")

let suite =
  [
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng copy", `Quick, test_prng_copy);
    ("prng split independent", `Quick, test_prng_split_independent);
    ("prng split_n = repeated split", `Quick, test_prng_split_n);
    ("prng split_n siblings uncorrelated", `Quick, test_prng_split_n_uncorrelated);
    ("prng split advances parent once", `Quick, test_prng_split_advances_parent_once);
    ("prng int bounds", `Quick, test_prng_int_bounds);
    ("prng int_in bounds", `Quick, test_prng_int_in);
    ("prng float bounds", `Quick, test_prng_float_bounds);
    ("prng invalid args", `Quick, test_prng_invalid);
    ("prng shuffle permutes", `Quick, test_prng_shuffle_permutes);
    ("prng exponential positive", `Quick, test_prng_exponential_positive);
    ("ring fifo", `Quick, test_ring_fifo);
    ("ring wraparound", `Quick, test_ring_wraparound);
    ("ring peek/clear", `Quick, test_ring_peek_clear);
    ("ring errors", `Quick, test_ring_errors);
    ("fqueue basic", `Quick, test_fqueue_basic);
    ("fqueue empty", `Quick, test_fqueue_empty);
    ("fqueue persistence", `Quick, test_fqueue_persistence);
    ("heap sorts", `Quick, test_heap_sorts);
    ("heap stable ties", `Quick, test_heap_stable_ties);
    ("heap empty", `Quick, test_heap_empty);
    ("heap min_tie_count", `Quick, test_heap_min_tie_count);
    ("heap delete_nth_min", `Quick, test_heap_delete_nth_min);
    prop_heap_delete_nth_stability;
    ("stats basic", `Quick, test_stats_basic);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats empty", `Quick, test_stats_empty);
    ("stats merge", `Quick, test_stats_merge);
    ("table render", `Quick, test_table_render);
    ("table row width", `Quick, test_table_row_width);
    ("table cells", `Quick, test_table_cells);
    ("text split_lines", `Quick, test_split_lines);
    ("text join_lines", `Quick, test_join_lines);
    ("text affixes", `Quick, test_affixes);
    ("text replace_all", `Quick, test_replace_all);
    ("text chunks", `Quick, test_chunks);
    ("text expand_tabs", `Quick, test_expand_tabs);
    ("text words", `Quick, test_words);
    ("text padding", `Quick, test_padding);
    prop_ring_model;
    prop_fqueue_fifo;
    prop_fqueue_fold;
    prop_heap_sorted;
    prop_heap_size;
    prop_stats_mean;
    prop_lines_roundtrip;
    prop_chunks_concat;
  ]
