(* Schedule exploration: the checker's own machinery (policies, traces,
   shrinking, replay files), the mutation suite that validates it can
   actually find bugs, and exploration of the real stack's equivalence
   properties — pipeline output order, exactly-once through loss,
   credit conservation, cluster shard-order independence. *)

module Check = Eden_check.Check
module Policy = Eden_check.Policy
module Trace = Eden_check.Trace
module Shrink = Eden_check.Shrink
module Workloads = Eden_check.Workloads
module Sched = Eden_sched.Sched
module Kernel = Eden_kernel.Kernel
module Value = Eden_kernel.Value
module Net = Eden_net.Net
module Stage = Eden_transput.Stage
module Pull = Eden_transput.Pull
module Flowctl = Eden_flowctl.Flowctl
module Credit = Eden_flowctl.Credit
module Retry = Eden_resil.Retry
module Cluster = Eden_par.Cluster
module Prng = Eden_util.Prng

let check = Alcotest.check

(* Keep the suite's replay artifacts in the directory CI uploads. *)
let replay_dir = "_check"

(* --- Policy parsing -------------------------------------------------- *)

let test_policy_roundtrip () =
  List.iter
    (fun p ->
      match Policy.of_string (Policy.to_string p) with
      | Ok p' ->
          check Alcotest.string "roundtrip" (Policy.to_string p) (Policy.to_string p')
      | Error e -> Alcotest.failf "%s did not parse back: %s" (Policy.to_string p) e)
    (Policy.Fifo :: Policy.Pct 1 :: Policy.Dfs { max_branch = 2; max_steps = 7 }
    :: Policy.quick_matrix);
  (match Policy.of_string "pct" with
  | Ok (Policy.Pct 3) -> ()
  | _ -> Alcotest.fail "bare pct should default to depth 3");
  match Policy.of_string "warp:9" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown policy accepted"

(* --- Trace round-trip ------------------------------------------------ *)

let test_trace_lines_roundtrip () =
  let tr =
    [
      Trace.Pick { kind = "sched.run"; n = 3; chosen = 1 };
      Trace.Note { kind = "net.loss"; arg = 1 };
      Trace.Pick { kind = "sched.timer"; n = 2; chosen = 0 };
      Trace.Note { kind = "credit.take"; arg = 4 };
    ]
  in
  let back = List.filter_map Trace.entry_of_line (List.map Trace.line_of_entry tr) in
  Alcotest.(check bool) "entries survive the line format" true (Trace.equal tr back);
  check Alcotest.int "picks" 2 (Trace.pick_count tr);
  check Alcotest.int "nonzero picks" 1 (Trace.nonzero_picks tr);
  Alcotest.(check bool) "garbage rejected" true (Trace.entry_of_line "pick only-two" = None)

(* --- Shrinker -------------------------------------------------------- *)

let test_shrink_isolates_failure_picks () =
  (* Failure iff picks 3 and 7 are both non-zero; everything else is
     noise ddmin must strip. *)
  let fails cand =
    let a = Array.of_list cand in
    let get i = if i < Array.length a then a.(i) else 0 in
    get 3 <> 0 && get 7 <> 0
  in
  let noisy = [ 1; 0; 2; 1; 3; 1; 0; 2; 1; 1 ] in
  assert (fails noisy);
  let minimized, runs = Shrink.minimize ~run:fails noisy in
  Alcotest.(check bool) "still fails" true (fails minimized);
  check Alcotest.int "exactly the two relevant picks survive" 2
    (List.length (List.filter (fun v -> v <> 0) minimized));
  check Alcotest.int "trailing zeros trimmed" 8 (List.length minimized);
  Alcotest.(check bool) "spent a sane number of runs" true (runs > 0 && runs < 100)

let test_shrink_all_zero_failure () =
  let fails _ = true in
  let minimized, _ = Shrink.minimize ~run:fails [ 2; 1; 1 ] in
  check Alcotest.int "FIFO-failing schedule shrinks to empty" 0 (List.length minimized)

(* --- Mutation suite -------------------------------------------------- *)

let test_mutants_pass_fifo () =
  List.iter
    (fun (name, wl) ->
      Alcotest.(check bool)
        (name ^ " correct passes FIFO") true
        (Check.fifo_passes (wl ~mutant:false));
      Alcotest.(check bool)
        (name ^ " mutant hides under FIFO") true
        (Check.fifo_passes (wl ~mutant:true)))
    Workloads.mutants

let quick_budget = 100

let test_mutant_found (mname, wl) policy () =
  let f =
    Check.find_bug ~budget:quick_budget ~policy ~seed:Seed.base ~replay_dir
      ~name:(Printf.sprintf "%s-%s" mname (Policy.to_string policy))
      (wl ~mutant:true)
  in
  Alcotest.(check bool)
    "found within quick budget" true
    (f.Check.schedules <= quick_budget);
  (* The minimized schedule must deviate from FIFO somewhere (FIFO
     passes), but only barely: all three mutants are depth-1 bugs. *)
  Alcotest.(check bool) "minimized deviates" true (Trace.nonzero_picks f.Check.trace >= 1);
  Alcotest.(check bool)
    "minimized is small" true
    (Trace.nonzero_picks f.Check.trace <= 3);
  match f.Check.replay_path with
  | None -> Alcotest.fail "no replay file written"
  | Some path ->
      let r = Check.replay ~path (wl ~mutant:true) in
      Alcotest.(check bool) "replay reproduces the failure" true r.Check.reproduced;
      Alcotest.(check bool) "replay is bit-identical" true r.Check.bit_identical;
      (* A fresh correct build under the same schedule passes: the
         schedule pins the bug, not a broken harness. *)
      let ok = Check.replay ~path (wl ~mutant:false) in
      Alcotest.(check bool) "correct variant survives the schedule" true
        (not ok.Check.reproduced)

let test_correct_passes_exploration (mname, wl) policy () =
  let n =
    Check.run_or_fail ~budget:60 ~policy ~seed:Seed.base ~replay_dir
      ~name:(Printf.sprintf "%s-ok-%s" mname (Policy.to_string policy))
      (wl ~mutant:false)
  in
  Alcotest.(check bool) "explored at least the baseline" true (n >= 1)

let test_failure_message_names_seed_and_replay () =
  let name, wl = List.hd Workloads.mutants in
  let f =
    Check.find_bug ~budget:quick_budget ~policy:Policy.Random ~seed:Seed.base ~replay_dir
      ~name:(name ^ "-msg") (wl ~mutant:true)
  in
  let msg = Check.fail_message f in
  let contains needle =
    let nl = String.length needle and ml = String.length msg in
    let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "names the seed" true
    (contains (Printf.sprintf "seed=0x%Lx" Seed.base));
  Alcotest.(check bool) "names EDEN_SEED for rerun" true (contains "EDEN_SEED=");
  Alcotest.(check bool) "points at the replay file" true (contains replay_dir)

(* --- the CI matrix axis ----------------------------------------------- *)

let test_env_policy_mutation_suite () =
  (* CI pins EDEN_CHECK_POLICY per matrix entry; whatever exploring
     policy it names must still find every mutant within the quick
     budget.  Unset, this runs the default ([Random]).  [Fifo] is the
     one policy that by design finds nothing, so it is skipped. *)
  match Policy.of_env () with
  | Policy.Fifo -> ()
  | policy ->
      List.iter
        (fun (mname, wl) ->
          let f =
            Check.find_bug ~budget:quick_budget ~policy ~seed:Seed.base ~replay_dir
              ~name:(Printf.sprintf "env-%s-%s" mname (Policy.to_string policy))
              (wl ~mutant:true)
          in
          Alcotest.(check bool)
            (mname ^ " found under env policy") true
            (f.Check.schedules <= quick_budget))
        Workloads.mutants

(* --- DFS exhaustion --------------------------------------------------- *)

let test_dfs_exhausts_small_tree () =
  (* Two decision points of width 2 => a bounded tree of 4 schedules;
     DFS must stop there, well under budget. *)
  let prop ctl =
    ignore (Check.decide ctl ~kind:"a" ~n:2);
    ignore (Check.decide ctl ~kind:"b" ~n:2)
  in
  match
    Check.explore ~budget:1000 ~policy:(Policy.Dfs { max_branch = 2; max_steps = 8 })
      ~seed:Seed.base ~replay_dir ~name:"dfs-exhaust" prop
  with
  | Check.Failed _ -> Alcotest.fail "trivial prop failed"
  | Check.Passed { schedules } -> check Alcotest.int "4 schedules then exhausted" 4 schedules

(* --- Exploring the real stack ---------------------------------------- *)

let items n = List.init n (fun i -> Value.Str (Printf.sprintf "item-%03d" i))

let list_gen l =
  let rest = ref l in
  fun () ->
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some x

(* Windowed pull pipeline: output order and EOS-last must hold under
   every explored schedule, and the credit notes wired through
   Pull/Push must balance and respect the window. *)
let pipeline_prop ?(window = 3) ?(batch = 4) ~n ctl =
  let k = Kernel.create ~seed:Seed.base () in
  Check.attach ctl (Kernel.sched k);
  let expected = items n in
  let src = Stage.source_ro k ~capacity:0 (list_gen expected) in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull =
        Pull.connect ctx ~flowctl:(Flowctl.fixed ~credit:(Credit.Window window) batch) src
      in
      Pull.iter (fun v -> got := v :: !got) pull);
  Sched.check_failures (Kernel.sched k);
  if List.rev !got <> expected then failwith "pipeline output diverged";
  (* Credit-note wiring: every take reports in-flight <= window and the
     takes/gives balance out. *)
  let takes = ref 0 and gives = ref 0 in
  List.iter
    (function
      | Trace.Note { kind = "credit.take"; arg } ->
          incr takes;
          if arg > window then failwith (Printf.sprintf "credit.take with in-flight %d" arg)
      | Trace.Note { kind = "credit.give"; arg } ->
          incr gives;
          if arg < 0 then failwith "negative in-flight"
      | _ -> ())
    (Check.trace ctl);
  if !takes = 0 then failwith "no credit.take notes: wiring broken";
  (* At EOS the pull window abandons its still-outstanding speculative
     transfers, so up to [window] takes go unreturned — never more, and
     never the other way around. *)
  if !gives > !takes || !takes - !gives > window then
    failwith (Printf.sprintf "credit imbalance: %d takes vs %d gives" !takes !gives)

let test_pipeline_under_exploration () =
  ignore
    (Check.run_or_fail ~budget:25 ~policy:Policy.Random ~seed:Seed.base ~replay_dir
       ~name:"pipeline-order" (pipeline_prop ~n:17))

let test_pipeline_under_pct () =
  ignore
    (Check.run_or_fail ~budget:15 ~policy:(Policy.Pct 3) ~seed:Seed.base ~replay_dir
       ~name:"pipeline-order-pct" (pipeline_prop ~n:11))

(* Retries through a lossy link: every call still succeeds on every
   explored schedule, and the loss draws show up as net.loss notes. *)
let retry_prop ctl =
  let k = Kernel.create ~seed:Seed.base ~nodes:[ "a"; "b" ] () in
  Check.attach ctl (Kernel.sched k);
  let nb = List.nth (Kernel.nodes k) 1 in
  let echo =
    Kernel.create_eject k ~node:nb ~type_name:"echo" (fun _ctx ~passive:_ ->
        [ ("Echo", Fun.id) ])
  in
  Net.set_loss_probability (Kernel.net k) 0.25;
  let got = ref 0 in
  Kernel.run_driver k (fun ctx ->
      let prng = Prng.create 42L in
      let policy = Retry.policy ~timeout:5.0 ~max_attempts:50 () in
      for i = 1 to 6 do
        match Retry.call ~policy ~prng ctx echo ~op:"Echo" (Value.Int i) with
        | Value.Int j when j = i -> incr got
        | _ -> ()
      done);
  if !got <> 6 then failwith (Printf.sprintf "only %d/6 calls succeeded" !got);
  let losses =
    List.exists
      (function Trace.Note { kind = "net.loss"; _ } -> true | _ -> false)
      (Check.trace ctl)
  in
  if not losses then failwith "no net.loss notes recorded under 25% loss"

let test_retry_exactly_once_under_exploration () =
  ignore
    (Check.run_or_fail ~budget:10 ~policy:Policy.Random ~seed:Seed.base ~replay_dir
       ~name:"retry-loss" retry_prop)

(* Deterministic cluster: the result and op accounting must not depend
   on the shard pump order, which the policy scrambles via the
   [set_det_pick] hook. *)
let cluster_prop ctl =
  let c = Cluster.create Cluster.Deterministic ~shards:3 () in
  Cluster.set_det_pick c (Some (fun ~n -> Check.decide ctl ~kind:"par.shard" ~n));
  for i = 0 to 2 do
    Check.attach ctl (Kernel.sched (Cluster.kernel c i))
  done;
  let k1 = Cluster.kernel c 1 in
  let echo =
    Kernel.create_eject k1 ~type_name:"echo" (fun _ctx ~passive:_ ->
        [ ("echo", fun v -> v) ])
  in
  let p = Cluster.proxy c ~shard:0 ~ops:[ "echo" ] ~target:(1, echo) in
  let p2 = Cluster.proxy c ~shard:2 ~ops:[ "echo" ] ~target:(1, echo) in
  let got = ref [] in
  Cluster.driver c 0 (fun ctx ->
      let r = Kernel.invoke ctx p ~op:"echo" (Value.Int 1) in
      got := r :: !got);
  Cluster.driver c 2 (fun ctx ->
      let r = Kernel.invoke ctx p2 ~op:"echo" (Value.Int 2) in
      got := r :: !got);
  Cluster.run c;
  let ok = function Ok (Value.Int _) -> true | _ -> false in
  if List.length !got <> 2 || not (List.for_all ok !got) then
    failwith "cluster echo lost under shard reordering";
  if Cluster.op_counts c <> [ ("echo", 4) ] then failwith "op accounting diverged";
  if Cluster.cross_messages c <> 4 then failwith "cross-message count diverged"

let test_cluster_under_exploration () =
  ignore
    (Check.run_or_fail ~budget:20 ~policy:Policy.Random ~seed:Seed.base ~replay_dir
       ~name:"cluster-shard-order" cluster_prop)

let test_cluster_under_dfs () =
  ignore
    (Check.run_or_fail ~budget:40 ~policy:(Policy.Dfs { max_branch = 3; max_steps = 6 })
       ~seed:Seed.base ~replay_dir ~name:"cluster-shard-order-dfs" cluster_prop)

(* --- Suite ------------------------------------------------------------ *)

let mutation_tests =
  List.concat_map
    (fun ((mname, _) as m) ->
      List.map
        (fun policy ->
          ( Printf.sprintf "mutant %s found by %s, replay bit-identical" mname
              (Policy.to_string policy),
            `Quick,
            test_mutant_found m policy ))
        Policy.quick_matrix)
    Workloads.mutants

let correct_tests =
  List.concat_map
    (fun ((mname, _) as m) ->
      List.map
        (fun policy ->
          ( Printf.sprintf "correct %s passes %s exploration" mname
              (Policy.to_string policy),
            `Quick,
            test_correct_passes_exploration m policy ))
        Policy.quick_matrix)
    Workloads.mutants

let suite =
  [
    ("policy strings round-trip", `Quick, test_policy_roundtrip);
    ("trace line format round-trips", `Quick, test_trace_lines_roundtrip);
    ("shrinker isolates the failing picks", `Quick, test_shrink_isolates_failure_picks);
    ("shrinker handles FIFO-level failures", `Quick, test_shrink_all_zero_failure);
    ("every mutant hides under FIFO", `Quick, test_mutants_pass_fifo);
    ("failure message pins seed and replay", `Quick, test_failure_message_names_seed_and_replay);
    ("DFS exhausts a small tree early", `Quick, test_dfs_exhausts_small_tree);
    ("mutation suite passes under EDEN_CHECK_POLICY", `Quick, test_env_policy_mutation_suite);
    ("pipeline order + credit notes under random schedules", `Quick, test_pipeline_under_exploration);
    ("pipeline order under PCT schedules", `Quick, test_pipeline_under_pct);
    ("retry stays exactly-once under explored loss", `Quick, test_retry_exactly_once_under_exploration);
    ("cluster is shard-order independent (random)", `Quick, test_cluster_under_exploration);
    ("cluster is shard-order independent (DFS)", `Quick, test_cluster_under_dfs);
  ]
  @ mutation_tests @ correct_tests
