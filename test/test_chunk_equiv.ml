(* The byte-identical equivalence matrix of the chunked data plane.

   Every figure of the paper (F1 conventional, F2 read-only, F3
   write-only with reports, F4 read-only with a report window) plus
   the fan-in runs its data plane chunked — flat byte slices cut at
   seed-varied, line-misaligned positions — against the boxed batch=1
   oracle, across the deterministic, wire (unix and tcp) and parallel
   runtimes.  The contract: output byte streams, per-branch order and
   report streams match bit-for-bit, EOS arrives exactly once and
   last, and the chunked run actually moved chunks — a silently
   downgraded config FAILS the plane-intact assertion rather than
   passing a vacuous boxed-vs-boxed comparison.

   Case order matters: wire cases (which fork leaf processes) are
   listed before parallel cases (which spawn domains) because OCaml 5
   forbids fork once any domain has ever been spawned.  See main.ml. *)

module Distpipe = Eden_par.Distpipe
module Fanin = Eden_par.Fanin
module Cluster = Eden_par.Cluster
module Transport = Eden_wire.Transport

let check = Alcotest.check

let domains = 3
let items = 24
let filters = 3
let branches = 4

(* EDEN_SEED varies where chunk boundaries fall and how aggressively
   pushes coalesce; every size is deliberately line-misaligned. *)
let seed_int = Int64.to_int Seed.base land 0xFFFF

let plane i =
  Distpipe.chunked
    ~cut:(17 + ((seed_int + (i * 37)) mod 241))
    ~chunk_bytes:(192 + (64 * ((seed_int + i) mod 7)))
    ()

let det = Cluster.Deterministic
let par = Cluster.Parallel
let wire tr = Cluster.Wire { Cluster.wire_transport = tr; wire_faults = None; wire_auth = None }

(* The oracles: boxed, batch 1, deterministic.  Computed once. *)
let oracle_f1 =
  lazy (Distpipe.run_f1p det ~domains ~filters ~items ~plane:Distpipe.Boxed ())

let oracle_f2 =
  lazy (Distpipe.run_f2p det ~domains ~filters ~items ~plane:Distpipe.Boxed ())

let oracle_f3 = lazy (Distpipe.run_f3p det ~domains ~items ~plane:Distpipe.Boxed ())
let oracle_f4 = lazy (Distpipe.run_f4p det ~domains ~items ~plane:Distpipe.Boxed ())

let oracle_fanin =
  lazy (Fanin.run_bytes det ~domains ~branches ~items ~plane:Distpipe.Boxed ())

let check_outcome name (oracle : Distpipe.stream_outcome)
    (out : Distpipe.stream_outcome) =
  check Alcotest.string (name ^ ": byte-identical stream") oracle.Distpipe.bytes
    out.Distpipe.bytes;
  check
    Alcotest.(list (pair string (list string)))
    (name ^ ": byte-identical reports") oracle.Distpipe.reports out.Distpipe.reports;
  check Alcotest.bool (name ^ ": EOS exactly once, last") true out.Distpipe.eos_clean;
  (* Fails, never skips: the chunked plane must have carried chunks. *)
  check Alcotest.bool (name ^ ": chunked plane intact (no silent downgrade)") true
    (out.Distpipe.chunk_items > 0);
  check Alcotest.int (name ^ ": no boxed stragglers") 0 out.Distpipe.boxed_items

let sanity_oracle name (oracle : Distpipe.stream_outcome) =
  check Alcotest.bool (name ^ ": oracle is boxed") true
    (oracle.Distpipe.chunk_items = 0 && oracle.Distpipe.boxed_items > 0);
  check Alcotest.bool (name ^ ": oracle EOS clean") true oracle.Distpipe.eos_clean;
  check Alcotest.bool (name ^ ": oracle stream non-empty") true
    (String.length oracle.Distpipe.bytes > 0)

let test_oracles () =
  sanity_oracle "f1" (Lazy.force oracle_f1);
  sanity_oracle "f2" (Lazy.force oracle_f2);
  sanity_oracle "f3" (Lazy.force oracle_f3);
  sanity_oracle "f4" (Lazy.force oracle_f4);
  (* The boxed F2 oracle agrees with the legacy figure-2 runner: the
     byte surface is exactly its line stream, newline-terminated. *)
  let legacy = Distpipe.run_f2 det ~domains ~filters ~items ~batch:1 () in
  check Alcotest.string "f2 oracle matches legacy runner"
    (String.concat "" (List.map (fun l -> l ^ "\n") legacy.Distpipe.lines))
    (Lazy.force oracle_f2).Distpipe.bytes;
  (* Boxed and chunked planes really are different planes. *)
  check Alcotest.bool "planes distinguishable" true
    ((Distpipe.run_f2p det ~domains ~filters ~items ~plane:(plane 0) ()).Distpipe.chunk_items
    > 0)

let run_fig mode i = function
  | `F1 -> Distpipe.run_f1p mode ~domains ~filters ~items ~plane:(plane i) ()
  | `F2 -> Distpipe.run_f2p mode ~domains ~filters ~items ~plane:(plane i) ()
  | `F3 -> Distpipe.run_f3p mode ~domains ~items ~plane:(plane i) ()
  | `F4 -> Distpipe.run_f4p mode ~domains ~items ~plane:(plane i) ()

let oracle_of = function
  | `F1 -> Lazy.force oracle_f1
  | `F2 -> Lazy.force oracle_f2
  | `F3 -> Lazy.force oracle_f3
  | `F4 -> Lazy.force oracle_f4

let fig_name = function `F1 -> "f1" | `F2 -> "f2" | `F3 -> "f3" | `F4 -> "f4"

let test_figs mode mode_name offset () =
  List.iteri
    (fun i fig ->
      let name = Printf.sprintf "%s/%s" (fig_name fig) mode_name in
      check_outcome name (oracle_of fig) (run_fig mode (offset + i) fig))
    [ `F1; `F2; `F3; `F4 ]

let test_fanin mode mode_name i () =
  let oracle = Lazy.force oracle_fanin in
  let out = Fanin.run_bytes mode ~domains ~branches ~items ~plane:(plane i) () in
  Array.iteri
    (fun b bytes ->
      check Alcotest.string
        (Printf.sprintf "fanin/%s branch %d byte-identical" mode_name b)
        bytes out.Fanin.b_per_branch.(b))
    oracle.Fanin.b_per_branch;
  check Alcotest.bool ("fanin/" ^ mode_name ^ ": EOS clean") true out.Fanin.b_eos_clean;
  check Alcotest.bool ("fanin/" ^ mode_name ^ ": chunked plane intact") true
    (out.Fanin.b_chunk_items > 0);
  check Alcotest.int ("fanin/" ^ mode_name ^ ": no boxed stragglers") 0
    out.Fanin.b_boxed_items

(* Wire cases precede parallel cases: forks before any domain spawn. *)
let suite =
  [
    Alcotest.test_case "oracles sane (boxed, deterministic)" `Quick test_oracles;
    Alcotest.test_case "figures chunked = oracle [deterministic]" `Quick
      (test_figs det "det" 0);
    Alcotest.test_case "fanin chunked = oracle [deterministic]" `Quick
      (test_fanin det "det" 4);
    Alcotest.test_case "figures chunked = oracle [wire unix]" `Quick
      (test_figs (wire Transport.Unix_socket) "unix" 5);
    Alcotest.test_case "fanin chunked = oracle [wire unix]" `Quick
      (test_fanin (wire Transport.Unix_socket) "unix" 9);
    Alcotest.test_case "figures chunked = oracle [wire tcp]" `Quick
      (test_figs (wire Transport.Tcp) "tcp" 10);
    Alcotest.test_case "fanin chunked = oracle [wire tcp]" `Quick
      (test_fanin (wire Transport.Tcp) "tcp" 14);
    Alcotest.test_case "figures chunked = oracle [parallel]" `Quick
      (test_figs par "par" 15);
    Alcotest.test_case "fanin chunked = oracle [parallel]" `Quick
      (test_fanin par "par" 19);
  ]
