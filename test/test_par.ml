(* Parallel runtime: cross-domain primitives under real Domain.spawn
   contention, the cluster's proxy/termination machinery in both modes,
   and the parallel-vs-deterministic equivalence contract. *)

open Eden_par
module Kernel = Eden_kernel.Kernel
module Value = Eden_kernel.Value
module Uid = Eden_kernel.Uid
module Flowctl = Eden_flowctl.Flowctl
module Credit = Eden_flowctl.Credit

let prop name ?(count = 15) gen f =
  Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- Dqueue ---------------------------------------------------------- *)

let test_dqueue_fifo () =
  let q = Dqueue.create () in
  for i = 0 to 9 do
    Alcotest.(check bool) "push accepted" true (Dqueue.push q i)
  done;
  Alcotest.(check int) "length" 10 (Dqueue.length q);
  for i = 0 to 9 do
    Alcotest.(check (option int)) "fifo" (Some i) (Dqueue.try_pop q)
  done;
  Alcotest.(check (option int)) "empty" None (Dqueue.try_pop q)

let test_dqueue_close () =
  let q = Dqueue.create () in
  ignore (Dqueue.push q 1);
  ignore (Dqueue.push q 2);
  Dqueue.close q;
  Dqueue.close q (* idempotent *);
  Alcotest.(check bool) "closed" true (Dqueue.is_closed q);
  Alcotest.(check bool) "push refused" false (Dqueue.push q 3);
  Alcotest.(check (option int)) "backlog drains" (Some 1) (Dqueue.pop q);
  Alcotest.(check (option int)) "backlog drains" (Some 2) (Dqueue.pop q);
  Alcotest.(check (option int)) "then None" None (Dqueue.pop q)

(* Readers blocked in [pop] must be released by [close], not hang. *)
let test_dqueue_close_wakes_reader () =
  let q = Dqueue.create () in
  let readers =
    List.init 2 (fun _ -> Domain.spawn (fun () -> Dqueue.pop q))
  in
  for _ = 1 to 10_000 do
    Domain.cpu_relax ()
  done;
  Dqueue.close q;
  List.iter
    (fun d -> Alcotest.(check (option int)) "released with None" None (Domain.join d))
    readers

(* The multiset of consumed items equals the multiset produced, and
   within any single consumer each producer's items appear in order. *)
let check_stress ~producers ~per_producer got =
  let all = List.concat got in
  let expected =
    List.concat_map
      (fun p -> List.init per_producer (fun i -> (p, i)))
      (List.init producers Fun.id)
  in
  List.sort compare all = expected
  && List.for_all
       (fun one_consumer ->
         List.for_all
           (fun p ->
             let mine = List.filter (fun (p', _) -> p' = p) one_consumer in
             let sorted = List.sort compare mine in
             mine = sorted)
           (List.init producers Fun.id))
       got

let prop_dqueue_stress =
  prop "dqueue: no loss/duplication under domain contention"
    QCheck2.Gen.(tup3 (int_range 1 3) (int_range 1 3) (int_range 0 50))
    (fun (producers, consumers, per_producer) ->
      let q = Dqueue.create () in
      let prods =
        List.init producers (fun p ->
            Domain.spawn (fun () ->
                for i = 0 to per_producer - 1 do
                  ignore (Dqueue.push q (p, i))
                done))
      in
      let cons =
        List.init consumers (fun _ ->
            Domain.spawn (fun () ->
                let rec loop acc =
                  match Dqueue.pop q with
                  | Some x -> loop (x :: acc)
                  | None -> List.rev acc
                in
                loop []))
      in
      List.iter Domain.join prods;
      Dqueue.close q;
      let got = List.map Domain.join cons in
      check_stress ~producers ~per_producer got)

(* --- Dchan ----------------------------------------------------------- *)

let test_dchan_basics () =
  let ch = Dchan.create ~capacity:2 () in
  Alcotest.(check int) "capacity" 2 (Dchan.capacity ch);
  Alcotest.(check bool) "send" true (Dchan.send ch 1);
  Alcotest.(check bool) "send" true (Dchan.send ch 2);
  Alcotest.(check bool) "try_send full" false (Dchan.try_send ch 3);
  Alcotest.(check (option int)) "recv fifo" (Some 1) (Dchan.recv ch);
  Alcotest.(check bool) "room again" true (Dchan.try_send ch 3);
  Alcotest.(check (option int)) "recv" (Some 2) (Dchan.recv ch);
  Alcotest.(check (option int)) "recv" (Some 3) (Dchan.try_recv ch);
  Alcotest.(check (option int)) "empty" None (Dchan.try_recv ch);
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Dchan.create: capacity must be positive") (fun () ->
      ignore (Dchan.create ~capacity:0 ()))

(* A sender blocked on a full channel must be released (send = false)
   by [close]; the backlog stays readable. *)
let test_dchan_close_releases_sender () =
  let ch = Dchan.create ~capacity:2 () in
  ignore (Dchan.send ch 1);
  ignore (Dchan.send ch 2);
  let sender = Domain.spawn (fun () -> Dchan.send ch 3) in
  for _ = 1 to 10_000 do
    Domain.cpu_relax ()
  done;
  Dchan.close ch;
  Alcotest.(check bool) "blocked send refused" false (Domain.join sender);
  Alcotest.(check (option int)) "backlog" (Some 1) (Dchan.recv ch);
  Alcotest.(check (option int)) "backlog" (Some 2) (Dchan.recv ch);
  Alcotest.(check (option int)) "then None" None (Dchan.recv ch)

let prop_dchan_stress =
  prop "dchan: no loss/duplication under backpressure"
    QCheck2.Gen.(
      tup4 (int_range 1 3) (int_range 1 3) (int_range 0 50) (int_range 1 3))
    (fun (producers, consumers, per_producer, capacity) ->
      let ch = Dchan.create ~capacity () in
      let prods =
        List.init producers (fun p ->
            Domain.spawn (fun () ->
                for i = 0 to per_producer - 1 do
                  ignore (Dchan.send ch (p, i))
                done))
      in
      let cons =
        List.init consumers (fun _ ->
            Domain.spawn (fun () ->
                let rec loop acc =
                  match Dchan.recv ch with
                  | Some x -> loop (x :: acc)
                  | None -> List.rev acc
                in
                loop []))
      in
      List.iter Domain.join prods;
      Dchan.close ch;
      let got = List.map Domain.join cons in
      check_stress ~producers ~per_producer got)

(* --- Dchan batch operations ------------------------------------------ *)

let test_dchan_send_many_basics () =
  let ch = Dchan.create ~capacity:4 () in
  Alcotest.(check int) "all accepted" 3 (Dchan.send_many ch [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "one batched recv" [ 1; 2; 3 ] (Dchan.recv_many ch ~max:8);
  Alcotest.(check int) "empty batch is a no-op" 0 (Dchan.send_many ch []);
  ignore (Dchan.send_many ch [ 4; 5 ]);
  Alcotest.(check (list int)) "max bounds the batch" [ 4 ] (Dchan.recv_many ch ~max:1);
  Dchan.close ch;
  Alcotest.(check (list int)) "backlog drains" [ 5 ] (Dchan.recv_many ch ~max:8);
  Alcotest.(check (list int)) "closed + drained = []" [] (Dchan.recv_many ch ~max:8);
  Alcotest.(check int) "send_many refused when closed" 0 (Dchan.send_many ch [ 9 ]);
  Alcotest.check_raises "bad max"
    (Invalid_argument "Dchan.recv_many: max must be positive") (fun () ->
      ignore (Dchan.recv_many ch ~max:0))

(* A batch larger than capacity blocks mid-batch; close releases the
   sender with a partial count, and the accepted prefix stays
   readable. *)
let test_dchan_send_many_close_mid_batch () =
  let ch = Dchan.create ~capacity:2 () in
  let sender = Domain.spawn (fun () -> Dchan.send_many ch [ 1; 2; 3; 4; 5 ]) in
  (* Wait until the sender has filled the channel and is blocked on
     item 3 before closing — a fixed spin races on a loaded host. *)
  while Dchan.length ch < 2 do
    Domain.cpu_relax ()
  done;
  Dchan.close ch;
  Alcotest.(check int) "capacity-bounded prefix accepted" 2 (Domain.join sender);
  Alcotest.(check (list int)) "prefix readable" [ 1; 2 ] (Dchan.recv_many ch ~max:8)

let prop_dchan_batch_stress =
  prop "dchan: batched send/recv, no loss/duplication"
    QCheck2.Gen.(tup4 (int_range 1 3) (int_range 1 3) (int_range 0 12) (int_range 1 4))
    (fun (producers, consumers, batches, capacity) ->
      let ch = Dchan.create ~capacity () in
      let per_producer = batches * 4 in
      let prods =
        List.init producers (fun p ->
            Domain.spawn (fun () ->
                for b = 0 to batches - 1 do
                  ignore
                    (Dchan.send_many ch (List.init 4 (fun i -> (p, (b * 4) + i))))
                done))
      in
      let cons =
        List.init consumers (fun _ ->
            Domain.spawn (fun () ->
                let rec loop acc =
                  match Dchan.recv_many ch ~max:3 with
                  | [] -> List.rev acc
                  | xs -> loop (List.rev_append xs acc)
                in
                loop []))
      in
      List.iter Domain.join prods;
      Dchan.close ch;
      let got = List.map Domain.join cons in
      check_stress ~producers ~per_producer got)

(* --- Cluster --------------------------------------------------------- *)

let echo_cluster mode =
  let c = Cluster.create mode ~shards:2 () in
  let k1 = Cluster.kernel c 1 in
  let echo =
    Kernel.create_eject k1 ~type_name:"echo" (fun _ctx ~passive:_ ->
        [
          ("echo", fun v -> v);
          ("fail", fun _ -> raise (Kernel.Eden_error "boom"));
        ])
  in
  let p = Cluster.proxy c ~shard:0 ~ops:[ "echo"; "fail" ] ~target:(1, echo) in
  (c, p)

let test_cluster_echo mode () =
  let c, p = echo_cluster mode in
  let got = ref None in
  Cluster.driver c 0 (fun ctx ->
      got := Some (Kernel.invoke ctx p ~op:"echo" (Value.Int 42)));
  Cluster.run c;
  (match !got with
  | Some (Ok (Value.Int 42)) -> ()
  | _ -> Alcotest.fail "echo did not round-trip");
  let m = Cluster.meter c in
  Alcotest.(check int) "one invocation per side" 2 m.Kernel.Meter.invocations;
  Alcotest.(check int) "request + reply crossed" 2 (Cluster.cross_messages c);
  Alcotest.(check (list (pair string int)))
    "op_counts sum both sides"
    [ ("echo", 2) ]
    (Cluster.op_counts c)

let test_cluster_error mode () =
  let c, p = echo_cluster mode in
  let got = ref None in
  Cluster.driver c 0 (fun ctx ->
      got := Some (Kernel.invoke ctx p ~op:"fail" Value.Unit));
  Cluster.run c;
  match !got with
  | Some (Error "boom") -> ()
  | _ -> Alcotest.fail "Eden_error did not propagate through the proxy"

let test_cluster_fast_path () =
  let c = Cluster.create Deterministic ~shards:2 () in
  let k1 = Cluster.kernel c 1 in
  let echo =
    Kernel.create_eject k1 ~type_name:"echo" (fun _ctx ~passive:_ ->
        [ ("echo", fun v -> v) ])
  in
  let p = Cluster.proxy c ~shard:1 ~ops:[ "echo" ] ~target:(1, echo) in
  Alcotest.(check bool) "same-shard proxy is the target itself" true (p = echo);
  let got = ref None in
  Cluster.driver c 1 (fun ctx ->
      got := Some (Kernel.invoke ctx p ~op:"echo" (Value.Int 7)));
  Cluster.run c;
  (match !got with
  | Some (Ok (Value.Int 7)) -> ()
  | _ -> Alcotest.fail "local invoke failed");
  Alcotest.(check int) "nothing crossed a domain" 0 (Cluster.cross_messages c)

let test_cluster_run_once () =
  let c = Cluster.create Deterministic ~shards:1 () in
  Cluster.run c;
  Alcotest.check_raises "second run refused"
    (Invalid_argument "Cluster.run: already run") (fun () -> Cluster.run c)

(* --- Fan-in workload: smoke + equivalence ---------------------------- *)

let small_spec = { Fanin.default with branches = 4; items = 30; batch = 3; work = 50 }

let test_parallel_smoke () =
  let o = Fanin.run Parallel ~domains:3 small_spec in
  Alcotest.(check int) "all items consumed" (4 * 30) o.Fanin.consumed;
  Alcotest.(check bool) "EOS last on every channel" true o.Fanin.eos_clean;
  Alcotest.(check bool) "traffic crossed domains" true (o.Fanin.cross_messages > 0)

let test_parallel_single_domain () =
  let o = Fanin.run Parallel ~domains:1 small_spec in
  Alcotest.(check int) "all items consumed" (4 * 30) o.Fanin.consumed;
  Alcotest.(check int) "no cross-domain traffic" 0 o.Fanin.cross_messages

(* Satellite 2: a parallel run must agree with the deterministic oracle
   on everything schedule-independent — items in/out per stage, item
   order per branch, EOS placement, operation and invocation totals.
   Timing artifacts (occupancy, stalls, makespans) are exempt. *)
let test_equivalence () =
  let det = Fanin.run Deterministic ~domains:3 small_spec in
  let par = Fanin.run Parallel ~domains:3 small_spec in
  Alcotest.(check int) "consumed" det.Fanin.consumed par.Fanin.consumed;
  Alcotest.(check bool) "det EOS clean" true det.Fanin.eos_clean;
  Alcotest.(check bool) "par EOS clean" true par.Fanin.eos_clean;
  Array.iteri
    (fun b det_items ->
      Alcotest.(check (list string))
        (Printf.sprintf "branch %d item sequence" b)
        (List.map (Format.asprintf "%a" Value.pp) det_items)
        (List.map (Format.asprintf "%a" Value.pp) par.Fanin.per_branch.(b)))
    det.Fanin.per_branch;
  Alcotest.(check (list (pair string int)))
    "op counts (Transfer/Deposit)" det.Fanin.op_counts par.Fanin.op_counts;
  Alcotest.(check int) "total invocations"
    det.Fanin.meter.Kernel.Meter.invocations
    par.Fanin.meter.Kernel.Meter.invocations;
  Alcotest.(check int) "total replies"
    det.Fanin.meter.Kernel.Meter.replies par.Fanin.meter.Kernel.Meter.replies;
  Alcotest.(check int) "cross-domain messages"
    det.Fanin.cross_messages par.Fanin.cross_messages;
  let show_flows = List.map (fun (l, i, o) -> Printf.sprintf "%s:%d:%d" l i o) in
  Alcotest.(check (list string))
    "per-stage items in/out"
    (show_flows det.Fanin.flows)
    (show_flows par.Fanin.flows)

(* A fixed windowed configuration keeps the full parallel-vs-
   deterministic contract: credits are just pipelined exchanges, and a
   fixed batch makes their count schedule-independent. *)
let test_equivalence_windowed () =
  let spec =
    { small_spec with Fanin.flowctl = Some (Flowctl.fixed ~credit:(Credit.Window 4) 3) }
  in
  let det = Fanin.run Deterministic ~domains:3 spec in
  let par = Fanin.run Parallel ~domains:3 spec in
  Alcotest.(check int) "consumed" det.Fanin.consumed par.Fanin.consumed;
  Alcotest.(check int) "everything arrived" (4 * 30) par.Fanin.consumed;
  Alcotest.(check bool) "det EOS clean" true det.Fanin.eos_clean;
  Alcotest.(check bool) "par EOS clean" true par.Fanin.eos_clean;
  Array.iteri
    (fun b det_items ->
      Alcotest.(check (list string))
        (Printf.sprintf "branch %d item sequence" b)
        (List.map (Format.asprintf "%a" Value.pp) det_items)
        (List.map (Format.asprintf "%a" Value.pp) par.Fanin.per_branch.(b)))
    det.Fanin.per_branch;
  Alcotest.(check (list (pair string int)))
    "op counts" det.Fanin.op_counts par.Fanin.op_counts;
  Alcotest.(check int) "total invocations"
    det.Fanin.meter.Kernel.Meter.invocations par.Fanin.meter.Kernel.Meter.invocations

(* Adaptive trajectories react to occupancy and are therefore
   scheduling-dependent; the contract they keep is within the
   deterministic mode, where the whole run is a pure function of the
   spec. *)
let test_adaptive_det_repeatable () =
  let spec =
    {
      small_spec with
      Fanin.flowctl = Some (Flowctl.adaptive ~credit:(Credit.Window 4) ());
    }
  in
  let a = Fanin.run Deterministic ~domains:3 spec in
  let b = Fanin.run Deterministic ~domains:3 spec in
  Alcotest.(check int) "everything arrived" (4 * 30) a.Fanin.consumed;
  Alcotest.(check bool) "EOS clean" true a.Fanin.eos_clean;
  Alcotest.(check bool) "identical outcomes" true
    (a.Fanin.per_branch = b.Fanin.per_branch
    && a.Fanin.op_counts = b.Fanin.op_counts
    && a.Fanin.cross_messages = b.Fanin.cross_messages
    && a.Fanin.makespans = b.Fanin.makespans)

let test_det_repeatable () =
  let a = Fanin.run Deterministic ~domains:3 small_spec in
  let b = Fanin.run Deterministic ~domains:3 small_spec in
  Alcotest.(check bool) "identical outcomes" true
    (a.Fanin.per_branch = b.Fanin.per_branch
    && a.Fanin.op_counts = b.Fanin.op_counts
    && a.Fanin.cross_messages = b.Fanin.cross_messages
    && a.Fanin.makespans = b.Fanin.makespans)

let suite =
  [
    ("dqueue fifo", `Quick, test_dqueue_fifo);
    ("dqueue close", `Quick, test_dqueue_close);
    ("dqueue close wakes blocked readers", `Quick, test_dqueue_close_wakes_reader);
    prop_dqueue_stress;
    ("dchan basics", `Quick, test_dchan_basics);
    ("dchan close releases blocked sender", `Quick, test_dchan_close_releases_sender);
    prop_dchan_stress;
    ("dchan send_many/recv_many basics", `Quick, test_dchan_send_many_basics);
    ("dchan send_many closed mid-batch", `Quick, test_dchan_send_many_close_mid_batch);
    prop_dchan_batch_stress;
    ("cluster echo (deterministic)", `Quick, test_cluster_echo Cluster.Deterministic);
    ("cluster echo (parallel)", `Quick, test_cluster_echo Cluster.Parallel);
    ("cluster error propagation (deterministic)", `Quick, test_cluster_error Cluster.Deterministic);
    ("cluster error propagation (parallel)", `Quick, test_cluster_error Cluster.Parallel);
    ("cluster same-shard fast path", `Quick, test_cluster_fast_path);
    ("cluster run-once guard", `Quick, test_cluster_run_once);
    ("parallel smoke", `Quick, test_parallel_smoke);
    ("parallel single domain", `Quick, test_parallel_single_domain);
    ("parallel-vs-deterministic equivalence", `Quick, test_equivalence);
    ("windowed fan-in equivalence", `Quick, test_equivalence_windowed);
    ("adaptive fan-in deterministic repeatable", `Quick, test_adaptive_det_repeatable);
    ("deterministic mode repeatable", `Quick, test_det_repeatable);
  ]
