(* The stream editor and the file comparators — §5's multi-input
   filters. *)

open Eden_kernel
module Sed = Eden_filters.Sed
module Cmp = Eden_filters.Compare
module Dev = Eden_devices.Devices
module T = Eden_transput

let check = Alcotest.check
let lines_t = Alcotest.(list string)

let script lines =
  match Sed.parse_script lines with
  | Ok s -> s
  | Error e -> Alcotest.failf "script rejected: %s" e

let run cmds input = Sed.run_lines (script cmds) input

(* --- parsing -------------------------------------------------------- *)

let test_parse_errors () =
  let expect_err l =
    match Sed.parse_script [ l ] with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad command %S" l
  in
  List.iter expect_err
    [ "z"; "s/a"; "s/a/b/x"; "y/ab/c/"; "1,"; "$d"; "s/[/x/" ]

let test_comments_and_blanks_skipped () =
  check lines_t "only real commands run"
    [ "B" ]
    (run [ "# a comment"; ""; "s/a/b/"; "  "; "y/b/B/" ] [ "a" ])

(* --- substitution --------------------------------------------------- *)

let test_substitute_first_vs_global () =
  check lines_t "first only" [ "Xbcabc" ] (run [ "s/a/X/" ] [ "abcabc" ]);
  check lines_t "global" [ "XbcXbc" ] (run [ "s/a/X/g" ] [ "abcabc" ])

let test_substitute_regex () =
  check lines_t "classes and anchors" [ "NUM"; "keep 12a" ]
    (run [ "s/^[0-9]+$/NUM/" ] [ "42"; "keep 12a" ]);
  check lines_t "ampersand is whole match" [ "[ab][ab]!" ] (run [ "s/ab/[&]/g" ] [ "abab!" ])

let test_substitute_alt_delimiter () =
  check lines_t "comma delimiter" [ "b" ] (run [ "s,a,b," ] [ "a" ])

(* --- other commands -------------------------------------------------- *)

let test_delete_with_addresses () =
  let input = [ "one"; "two"; "three"; "four" ] in
  check lines_t "line number" [ "one"; "three"; "four" ] (run [ "2d" ] input);
  check lines_t "pattern" [ "one"; "four" ] (run [ "/t/d" ] input);
  check lines_t "range" [ "four" ] (run [ "1,3d" ] input);
  check lines_t "pattern range" [ "one"; "four" ] (run [ "/two/,/three/d" ] input)

let test_print_duplicates () =
  check lines_t "p doubles" [ "a"; "a"; "b" ] (run [ "1p" ] [ "a"; "b" ])

let test_transliterate () =
  check lines_t "y" [ "HELLO" ] (run [ "y/helo/HELO/" ] [ "hello" ])

let test_quit_stops_stream () =
  check lines_t "q after 2" [ "a"; "b" ] (run [ "2q" ] [ "a"; "b"; "c"; "d" ])

let test_insert_append () =
  check lines_t "i and a"
    [ ">>"; "x"; "<<"; "y" ]
    (run [ "1i\\>>"; "1a\\<<" ] [ "x"; "y" ])

let test_commands_compose_in_order () =
  (* delete wins over later substitution; substitutions chain. *)
  check lines_t "pipeline of commands"
    [ "B-suffix" ]
    (run [ "/drop/d"; "s/a/b/"; "y/b/B/" ] [ "drop me"; "a-suffix" ])

(* --- the §5 two-input editor ------------------------------------------ *)

let test_two_input_stage () =
  let k = Kernel.create () in
  let commands = Dev.text_source k [ "s/cat/dog/g"; "/^#/d" ] in
  let text = Dev.text_source k [ "# header"; "the cat sat"; "cat and cat" ] in
  let editor =
    Sed.two_input_stage k
      ~commands:(commands, T.Channel.output)
      ~text:(text, T.Channel.output)
      ()
  in
  let out = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = T.Pull.connect ctx editor in
      T.Pull.iter (fun v -> out := Value.to_str v :: !out) pull);
  check lines_t "commands applied to text" [ "the dog sat"; "dog and dog" ] (List.rev !out)

let test_two_input_stage_bad_script_fails_loudly () =
  let k = Kernel.create () in
  let commands = Dev.text_source k [ "not a command" ] in
  let text = Dev.text_source k [ "x" ] in
  let editor =
    Sed.two_input_stage k
      ~commands:(commands, T.Channel.output)
      ~text:(text, T.Channel.output)
      ()
  in
  let sink = T.Stage.sink_ro k ~upstream:editor ignore in
  Kernel.poke k sink;
  Eden_sched.Sched.run (Kernel.sched k);
  match Eden_sched.Sched.failures (Kernel.sched k) with
  | (_, Failure msg) :: _ ->
      Alcotest.(check bool) "names sed" true (Eden_util.Text.contains_sub ~sub:"sed" msg)
  | _ -> Alcotest.fail "expected a loud worker failure"

(* A property: substitution with an identity replacement is identity. *)
let prop_identity_substitution =
  Seed.to_alcotest
    (QCheck2.Test.make ~name:"s/x/x/g is the identity" ~count:100
       QCheck2.Gen.(small_list (string_size ~gen:(char_range 'a' 'z') (int_range 0 8)))
       (fun lines -> run [ "s/x/x/g" ] lines = lines))

(* --- comm / diff ------------------------------------------------------ *)

let test_comm_basics () =
  check lines_t "merge classification"
    [ "=\tb"; "<\tc"; ">\td"; "=\te"; ">\tf" ]
    (Cmp.comm [ "b"; "c"; "e" ] [ "b"; "d"; "e"; "f" ]);
  check lines_t "left empty" [ ">\tx" ] (Cmp.comm [] [ "x" ]);
  check lines_t "both empty" [] (Cmp.comm [] [])

let test_diff_equal_is_empty () =
  check lines_t "no hunks" [] (Cmp.diff [ "a"; "b" ] [ "a"; "b" ])

let test_diff_change () =
  check lines_t "change hunk"
    [ "2c2"; "< old"; "---"; "> new" ]
    (Cmp.diff [ "a"; "old"; "c" ] [ "a"; "new"; "c" ])

let test_diff_add_delete () =
  check lines_t "append" [ "2a3" ; "> c" ] (Cmp.diff [ "a"; "b" ] [ "a"; "b"; "c" ]);
  check lines_t "delete" [ "2d1"; "< b" ] (Cmp.diff [ "a"; "b"; "c" ] [ "a"; "c" ])

let test_lcs_length () =
  check Alcotest.int "lcs" 3 (Cmp.lcs_length [ "a"; "x"; "b"; "c" ] [ "a"; "b"; "y"; "c" ]);
  check Alcotest.int "disjoint" 0 (Cmp.lcs_length [ "a" ] [ "b" ])

let prop_diff_empty_iff_equal =
  Seed.to_alcotest
    (QCheck2.Test.make ~name:"diff = [] iff inputs equal" ~count:100
       QCheck2.Gen.(
         pair
           (small_list (string_size ~gen:(char_range 'a' 'c') (int_range 0 2)))
           (small_list (string_size ~gen:(char_range 'a' 'c') (int_range 0 2))))
       (fun (a, b) -> Cmp.diff a b = [] = (a = b)))

let prop_lcs_bounds =
  Seed.to_alcotest
    (QCheck2.Test.make ~name:"0 <= lcs <= min length" ~count:100
       QCheck2.Gen.(
         pair
           (small_list (string_size ~gen:(char_range 'a' 'b') (int_range 0 2)))
           (small_list (string_size ~gen:(char_range 'a' 'b') (int_range 0 2))))
       (fun (a, b) ->
         let l = Cmp.lcs_length a b in
         l >= 0 && l <= min (List.length a) (List.length b)))

let test_comm_stage () =
  let k = Kernel.create () in
  let l = Dev.text_source k [ "apple"; "pear" ] in
  let r = Dev.text_source k [ "apple"; "plum" ] in
  let c = Cmp.comm_stage k ~left:(l, T.Channel.output) ~right:(r, T.Channel.output) () in
  let out = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = T.Pull.connect ctx c in
      T.Pull.iter (fun v -> out := Value.to_str v :: !out) pull);
  check lines_t "streamed comm" [ "=\tapple"; "<\tpear"; ">\tplum" ] (List.rev !out)

let test_diff_stage () =
  let k = Kernel.create () in
  let l = Dev.text_source k [ "a"; "b" ] in
  let r = Dev.text_source k [ "a"; "B" ] in
  let d = Cmp.diff_stage k ~left:(l, T.Channel.output) ~right:(r, T.Channel.output) () in
  let out = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = T.Pull.connect ctx d in
      T.Pull.iter (fun v -> out := Value.to_str v :: !out) pull);
  check lines_t "streamed diff" [ "2c2"; "< b"; "---"; "> B" ] (List.rev !out)

let test_diff_two_eden_files () =
  (* Compare two Eden-native file Ejects: a pipeline of pure Ejects
     from storage to comparison. *)
  let k = Kernel.create () in
  let f1 = Eden_edenfs.Eden_file.create k ~initial:[ "x"; "same" ] () in
  let f2 = Eden_edenfs.Eden_file.create k ~initial:[ "y"; "same" ] () in
  let out = ref [] in
  Kernel.run_driver k (fun ctx ->
      let c1 = Eden_edenfs.Eden_file.open_read ctx f1 in
      let c2 = Eden_edenfs.Eden_file.open_read ctx f2 in
      let d = Cmp.diff_stage k ~left:(f1, c1) ~right:(f2, c2) () in
      let pull = T.Pull.connect ctx d in
      T.Pull.iter (fun v -> out := Value.to_str v :: !out) pull);
  check lines_t "files diffed" [ "1c1"; "< x"; "---"; "> y" ] (List.rev !out)

let suite =
  [
    ("parse errors", `Quick, test_parse_errors);
    ("comments and blanks", `Quick, test_comments_and_blanks_skipped);
    ("substitute first vs global", `Quick, test_substitute_first_vs_global);
    ("substitute regex", `Quick, test_substitute_regex);
    ("substitute alt delimiter", `Quick, test_substitute_alt_delimiter);
    ("delete with addresses", `Quick, test_delete_with_addresses);
    ("print duplicates", `Quick, test_print_duplicates);
    ("transliterate", `Quick, test_transliterate);
    ("quit stops stream", `Quick, test_quit_stops_stream);
    ("insert/append", `Quick, test_insert_append);
    ("commands compose in order", `Quick, test_commands_compose_in_order);
    ("two-input editor stage", `Quick, test_two_input_stage);
    ("bad script fails loudly", `Quick, test_two_input_stage_bad_script_fails_loudly);
    ("comm basics", `Quick, test_comm_basics);
    ("diff equal empty", `Quick, test_diff_equal_is_empty);
    ("diff change", `Quick, test_diff_change);
    ("diff add/delete", `Quick, test_diff_add_delete);
    ("lcs length", `Quick, test_lcs_length);
    ("comm stage", `Quick, test_comm_stage);
    ("diff stage", `Quick, test_diff_stage);
    ("diff two eden files", `Quick, test_diff_two_eden_files);
    prop_identity_substitution;
    prop_diff_empty_iff_equal;
    prop_lcs_bounds;
  ]
