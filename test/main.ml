let () =
  Seed.banner ();
  Alcotest.run "eden"
    [
      ("util", Test_util.suite);
      ("slab", Test_slab.suite);
      ("sched", Test_sched.suite);
      ("net", Test_net.suite);
      ("kernel", Test_kernel.suite);
      ("transput", Test_transput.suite);
      ("fs", Test_fs.suite);
      ("dirsvc", Test_dirsvc.suite);
      ("filters", Test_filters.suite);
      ("devices", Test_devices.suite);
      ("shell", Test_shell.suite);
      ("stdio", Test_stdio.suite);
      ("codec", Test_codec.suite);
      ("flow", Test_flow.suite);
      ("flowctl", Test_flowctl.suite);
      ("failures", Test_failures.suite);
      ("resil", Test_resil.suite);
      ("elastic", Test_elastic.suite);
      ("trace", Test_trace.suite);
      ("obs", Test_obs.suite);
      ("redirect", Test_redirect.suite);
      ("edenfs", Test_edenfs.suite);
      ("sed", Test_sed.suite);
      ("namespace", Test_namespace.suite);
      ("port-intake", Test_port_intake.suite);
      ("integration", Test_integration.suite);
      ("properties", Test_properties.suite);
      ("determinism", Test_determinism.suite);
      ("chunk", Test_chunk.suite);
      ("tenant", Test_tenant.suite);
      (* wire before par: the wire cluster forks leaf processes, and the
         OCaml 5 runtime forbids Unix.fork once any domain has ever been
         spawned — par's Domain.spawn must come after every fork.  The
         chunk-equiv suite has cases in both camps, so it sits between
         them with its wire cases listed before its parallel ones. *)
      ("wire", Test_wire.suite);
      ("chunk-equiv", Test_chunk_equiv.suite);
      ("par", Test_par.suite);
      ("capacity", Test_capacity.suite);
      ("check", Test_check.suite);
    ]
