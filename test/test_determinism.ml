(* Satellite regression: the deterministic scheduler really is
   deterministic.  Each figure topology (F1 conventional, F2 read-only,
   F3 write-only + reports, F4 read-only + report channels) is run
   twice under each of 10 seeds with randomised (Exponential) link
   latency, spans and tracing on; the two runs must produce
   bit-identical fingerprints — meters, per-op counts, the full
   invocation trace and the exported span log. *)

open Eden_kernel
module T = Eden_transput
module Obs = Eden_obs.Obs
module Cat = Eden_filters.Catalog
module Report = Eden_filters.Report
module Dev = Eden_devices.Devices

let vstrs = List.map (fun s -> Value.Str s)

let list_gen items =
  let rest = ref items in
  fun () ->
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some x

let doc n = List.init n (fun i -> Printf.sprintf "line-%03d the quick brown fox  " i)

let mk_kernel seed =
  let k =
    Kernel.create ~seed ~latency:(Eden_net.Net.Exponential { mean = 1.0 }) ()
  in
  Kernel.Trace.enable k;
  Obs.enable_spans (Kernel.obs k);
  k

let fingerprint k =
  Format.asprintf "%a\n%s\n%s\n%s" Kernel.Meter.pp (Kernel.Meter.snapshot k)
    (String.concat ";"
       (List.map (fun (op, n) -> Printf.sprintf "%s=%d" op n) (Kernel.op_counts k)))
    (String.concat "," (Kernel.Trace.ops k))
    (Obs.Export.spans_jsonl (Kernel.obs k))

let pipeline_fingerprint discipline seed =
  let k = mk_kernel seed in
  let p =
    T.Pipeline.build k ~capacity:2 ~batch:2 discipline
      ~gen:(list_gen (vstrs (doc 24 @ [ "drop this line" ])))
      ~filters:[ Cat.trim_trailing; Cat.grep_v "drop"; Cat.upcase ]
      ~consume:ignore
  in
  Kernel.run_driver k (fun _ -> T.Pipeline.run p);
  fingerprint k

let f1 = pipeline_fingerprint T.Pipeline.Conventional
let f2 = pipeline_fingerprint T.Pipeline.Read_only

(* Figure 3's shape: write-only main stream with report fan-in. *)
let f3 seed =
  let k = mk_kernel seed in
  let term = Dev.terminal_wo k () in
  let window = Dev.report_window_wo k ~writers:2 () in
  let f3 = T.Stage.filter_wo k ~name:"F3" ~downstream:term.Dev.uid Cat.upcase in
  let f2 = T.Stage.filter_wo k ~name:"F2" ~downstream:f3 (Cat.grep_v "drop") in
  let f1 =
    Report.filter_wo k ~name:"F1" ~downstream:f2 ~report_to:window.Dev.uid
      (Report.with_progress ~every:4 ~label:"F1" T.Transform.identity)
  in
  let src =
    Report.source_wo k ~name:"source" ~downstream:f1 ~report_to:window.Dev.uid
      ~label:"source"
      (list_gen (vstrs (doc 12 @ [ "drop this line" ])))
  in
  Kernel.poke k src;
  Kernel.run k;
  fingerprint k ^ "\n"
  ^ String.concat "|" (term.Dev.lines ())
  ^ "\n"
  ^ String.concat "|" (window.Dev.lines ())

(* Figure 4's shape: read-only main stream with report channels. *)
let f4 seed =
  let k = mk_kernel seed in
  let src =
    Report.source_ro k ~name:"source" ~label:"source"
      (list_gen (vstrs (doc 12 @ [ "drop this line" ])))
  in
  let f1 =
    Report.filter_ro k ~name:"F1" ~upstream:src
      (Report.with_progress ~every:4 ~label:"F1" T.Transform.identity)
  in
  let f2 = T.Stage.filter_ro k ~name:"F2" ~upstream:f1 (Cat.grep_v "drop") in
  let f3 = T.Stage.filter_ro k ~name:"F3" ~upstream:f2 Cat.upcase in
  let term = Dev.terminal_ro k ~upstream:f3 () in
  let window =
    Dev.report_window_ro k
      ~watch:[ ("source", src, T.Channel.report); ("F1", f1, T.Channel.report) ]
      ()
  in
  Kernel.poke k term.Dev.uid;
  Kernel.poke k window.Dev.uid;
  Kernel.run k;
  fingerprint k ^ "\n"
  ^ String.concat "|" (term.Dev.lines ())
  ^ "\n"
  ^ String.concat "|" (window.Dev.lines ())

(* The matrix base comes from the unified EDEN_SEED plumbing: unset it
   is the historical 0x5EED, so the F1–F4 fingerprints stay
   bit-identical to the seed runs. *)
let seeds = List.init 10 (fun i -> Int64.add Seed.base (Int64.of_int (7919 * i)))

let seed_matrix name topology () =
  List.iter
    (fun seed ->
      let a = topology seed in
      let b = topology seed in
      Alcotest.(check string)
        (Printf.sprintf "%s seed %Ld bit-identical" name seed)
        a b;
      (* The fingerprint must actually capture activity, or the
         comparison above is vacuous. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s seed %Ld non-trivial" name seed)
        true
        (String.length a > 64))
    seeds

let suite =
  [
    ("F1 conventional: 10-seed matrix, run twice", `Quick, seed_matrix "F1" f1);
    ("F2 read-only: 10-seed matrix, run twice", `Quick, seed_matrix "F2" f2);
    ("F3 write-only + reports: 10-seed matrix, run twice", `Quick, seed_matrix "F3" f3);
    ( "F4 read-only + report channels: 10-seed matrix, run twice",
      `Quick,
      seed_matrix "F4" f4 );
  ]
