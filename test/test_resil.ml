(* Resilience: retry/backoff, supervision, and crash-resumable
   pipelines replaying from checkpoints under loss and crashes. *)

open Eden_kernel
module Sched = Eden_sched.Sched
module Net = Eden_net.Net
module Prng = Eden_util.Prng
module Pipeline = Eden_transput.Pipeline
module Transform = Eden_transput.Transform
module Pull = Eden_transput.Pull
module Backoff = Eden_resil.Backoff
module Retry = Eden_resil.Retry
module Rstage = Eden_resil.Rstage
module Rpipeline = Eden_resil.Rpipeline
module Supervisor = Eden_resil.Supervisor
module Flowctl = Eden_flowctl.Flowctl

let check = Alcotest.check
let value = Alcotest.testable Value.pp Value.equal

let prop name ?(count = 100) gen f =
  Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- Backoff -------------------------------------------------------- *)

let prop_backoff_schedule =
  prop "backoff schedule deterministic, monotone, bounded"
    QCheck2.Gen.(
      pair
        (quad (float_range 0.01 5.0) (float_range 1.0 4.0) (float_range 1.0 50.0)
           (float_range 0.0 0.9))
        (pair nat (int_range 1 30)))
    (fun ((base, multiplier, capmul, jitter), (seed, n)) ->
      let cap = base *. capmul in
      let t = Backoff.make ~base ~multiplier ~cap ~jitter () in
      let seed = Int64.of_int seed in
      let s1 = Backoff.schedule t ~seed n in
      let s2 = Backoff.schedule t ~seed n in
      let monotone =
        List.for_all2 (fun a b -> a <= b)
          (List.filteri (fun i _ -> i < n - 1) s1)
          (List.tl s1)
        || n = 1
      in
      s1 = s2
      && monotone
      && List.for_all (fun d -> d > 0.0 && d <= cap +. 1e-9) s1)

let test_backoff_known_schedule () =
  (* Zero jitter gives the pure geometric series, capped. *)
  let t = Backoff.make ~base:1.0 ~multiplier:2.0 ~cap:5.0 ~jitter:0.0 () in
  check
    Alcotest.(list (float 1e-9))
    "geometric then capped" [ 1.0; 2.0; 4.0; 5.0; 5.0 ]
    (Backoff.schedule t ~seed:1L 5)

(* --- Retry ---------------------------------------------------------- *)

let test_retry_reaches_through_loss () =
  (* The echo Eject is remote: loss only applies to inter-node hops. *)
  let k = Kernel.create ~seed:11L ~nodes:[ "a"; "b" ] () in
  let nb = List.nth (Kernel.nodes k) 1 in
  let echo =
    Kernel.create_eject k ~node:nb ~type_name:"echo" (fun _ctx ~passive:_ ->
        [ ("Echo", Fun.id) ])
  in
  Net.set_loss_probability (Kernel.net k) 0.3;
  let meter = Retry.create_meter () in
  let got = ref 0 in
  Kernel.run_driver k (fun ctx ->
      let prng = Prng.create 42L in
      let policy = Retry.policy ~timeout:5.0 ~max_attempts:50 () in
      for i = 1 to 20 do
        match Retry.call ~policy ~meter ~prng ctx echo ~op:"Echo" (Value.Int i) with
        | Value.Int j when j = i -> incr got
        | _ -> ()
      done);
  check Alcotest.int "every call eventually succeeded" 20 !got;
  Alcotest.(check bool) "retries were needed under 30% loss" true (meter.Retry.retries > 0);
  check Alcotest.int "kernel timeout counter agrees" meter.Retry.timeouts (Kernel.timeouts k)

(* --- Resumable pipelines -------------------------------------------- *)

let gen n i = if i < n then Some (Value.Int i) else None

let specs =
  [
    Rstage.pure_map (fun v -> Value.Int (Value.to_int v + 1));
    Rstage.pure_filter (fun v -> Value.to_int v mod 3 <> 0);
    Rstage.pure_map (fun v -> Value.Int (Value.to_int v * 2));
  ]

let expected n =
  List.init n (fun i -> i + 1)
  |> List.filter (fun x -> x mod 3 <> 0)
  |> List.map (fun x -> Value.Int (x * 2))

(* One chaos run: build, optionally supervise, arm crashes, run to the
   deadline.  [crashes] picks (stage, time) pairs off the built
   pipeline. *)
let run_chaos ?(loss = 0.0) ?(crashes = fun _ -> []) ?(supervised = true) ?(n = 30)
    ?(batch = 2) ?flowctl ?(deadline = 5000.0) discipline =
  (* Stages are spread over three nodes so injected loss actually
     applies: same-node hops are exempt from the loss coin. *)
  let k = Kernel.create ~seed:5L ~nodes:[ "a"; "b"; "c" ] () in
  Net.set_loss_probability (Kernel.net k) loss;
  let policy =
    Retry.policy ~timeout:15.0 ~max_attempts:30
      ~backoff:(Backoff.make ~base:1.0 ~cap:10.0 ())
      ()
  in
  let p =
    Rpipeline.build k ~nodes:(Kernel.nodes k) ~batch ?flowctl ~policy ~seed:99L discipline
      ~gen:(gen n) ~filters:specs
  in
  let sup = Supervisor.create k ~policy:(Supervisor.policy ~interval:4.0 ()) () in
  if supervised then begin
    Rpipeline.supervise p sup;
    Supervisor.start sup
  end;
  List.iter (fun (uid, at) -> Rpipeline.crash_at p uid at) (crashes p);
  let completed = ref false in
  Kernel.run_driver k (fun _ctx ->
      Rpipeline.start p;
      completed := Rpipeline.await_timeout p ~deadline;
      Supervisor.stop sup);
  (!completed, Rpipeline.output p, p, sup)

let test_ro_fault_free () =
  let ok, out, _, _ = run_chaos Pipeline.Read_only in
  Alcotest.(check bool) "completes" true ok;
  check (Alcotest.option (Alcotest.list value)) "output" (Some (expected 30)) out

(* The issue's acceptance scenario: a read-only 3-filter pipeline with a
   filter crashed mid-stream under 10% loss completes, supervised, with
   output identical to the fault-free run. *)
let test_ro_crash_and_loss_output_identical () =
  let _, fault_free, _, _ = run_chaos Pipeline.Read_only in
  let crashes p = [ (List.assoc "filter-2" p.Rpipeline.stages, 30.0) ] in
  let ok, out, _, sup = run_chaos ~loss:0.1 ~crashes Pipeline.Read_only in
  Alcotest.(check bool) "completes despite crash + loss" true ok;
  check (Alcotest.option (Alcotest.list value)) "output identical to fault-free" fault_free out;
  check (Alcotest.option (Alcotest.list value)) "and correct" (Some (expected 30)) out;
  ignore sup

(* A crashed read-only sink is a dead pump: nothing invokes it, so only
   the supervisor's poke can resume it — from its checkpointed fold
   state, not from scratch. *)
let test_supervisor_restarts_crashed_sink () =
  (* The fault-free run finishes around t=9 on a local node, so t=4 is
     genuinely mid-stream. *)
  let crashes p = [ (List.assoc "sink" p.Rpipeline.stages, 4.0) ] in
  (* Unsupervised: stalls forever, and the stall is attributable. *)
  let ok, _, p, _ = run_chaos ~crashes ~supervised:false ~deadline:600.0 Pipeline.Read_only in
  Alcotest.(check bool) "unsupervised run stalls" false ok;
  (match Rpipeline.diagnose p with
  | None -> Alcotest.fail "expected a stall diagnosis"
  | Some stalls ->
      Alcotest.(check bool) "some stage is blocked" true (stalls <> []));
  (* Supervised: restarted from the checkpoint, identical output. *)
  let ok, out, _, sup = run_chaos ~crashes Pipeline.Read_only in
  Alcotest.(check bool) "supervised run completes" true ok;
  check (Alcotest.option (Alcotest.list value)) "output equals fault-free" (Some (expected 30)) out;
  Alcotest.(check bool) "the supervisor actually restarted it" true (Supervisor.restarts sup >= 1)

let test_wo_crash_and_loss_output_identical () =
  (* Dual scenario: the write-only pump is the source. *)
  let crashes p =
    [
      (List.assoc "source" p.Rpipeline.stages, 25.0);
      (List.assoc "filter-1" p.Rpipeline.stages, 40.0);
    ]
  in
  let ok, out, _, sup = run_chaos ~loss:0.1 ~crashes Pipeline.Write_only in
  Alcotest.(check bool) "completes despite crashes + loss" true ok;
  check (Alcotest.option (Alcotest.list value)) "output correct" (Some (expected 30)) out;
  Alcotest.(check bool) "pump restarted by supervisor" true (Supervisor.restarts sup >= 1)

let test_conventional_crash_and_loss () =
  let crashes p =
    [
      (List.assoc "filter-2" p.Rpipeline.stages, 25.0);
      (List.assoc "pipe-2" p.Rpipeline.stages, 45.0);
    ]
  in
  let ok, out, _, _ = run_chaos ~loss:0.05 ~crashes Pipeline.Conventional in
  Alcotest.(check bool) "completes" true ok;
  check (Alcotest.option (Alcotest.list value)) "output correct" (Some (expected 30)) out

(* Duality survives the resilience layer: at batch 1 the read-only and
   write-only pipelines use the same number of invocations — all
   Transfers one way, all Deposits the other — and produce the same
   output. *)
let test_duality_with_resilience () =
  let n = 12 in
  let run d =
    let k = Kernel.create ~seed:7L () in
    let p = Rpipeline.build k ~batch:1 ~seed:3L d ~gen:(gen n) ~filters:specs in
    Kernel.run_driver k (fun _ctx ->
        Rpipeline.start p;
        Rpipeline.await p);
    ((Kernel.Meter.snapshot k).Kernel.Meter.invocations, Kernel.op_counts k, Rpipeline.output p)
  in
  let inv_ro, ops_ro, out_ro = run Pipeline.Read_only in
  let inv_wo, ops_wo, out_wo = run Pipeline.Write_only in
  check (Alcotest.option (Alcotest.list value)) "same output" out_ro out_wo;
  check Alcotest.int "mirrored invocation totals" inv_ro inv_wo;
  check Alcotest.int "Transfers one way = Deposits the other"
    (List.assoc "Transfer" ops_ro) (List.assoc "Deposit" ops_wo);
  Alcotest.(check bool) "read-only used no Deposits" true (not (List.mem_assoc "Deposit" ops_ro));
  Alcotest.(check bool) "write-only used no Transfers" true
    (not (List.mem_assoc "Transfer" ops_wo))

let test_supervisor_gives_up_on_crash_loop () =
  let k = Kernel.create ~seed:13L () in
  let p =
    Rpipeline.build k ~batch:2 ~seed:21L Pipeline.Read_only ~gen:(gen 100) ~filters:specs
  in
  let sup =
    Supervisor.create k
      ~policy:(Supervisor.policy ~interval:1.0 ~max_restarts:2 ~window:1000.0 ())
      ()
  in
  Rpipeline.supervise p sup;
  Supervisor.start sup;
  (* 100 items take ~30 virtual seconds fault-free; crash the sink every
     few seconds so the third restart request falls inside the window
     while the stream is far from done. *)
  let sink = List.assoc "sink" p.Rpipeline.stages in
  List.iter (fun at -> Rpipeline.crash_at p sink at) [ 2.0; 5.0; 8.0; 11.0 ];
  let completed = ref true in
  Kernel.run_driver k (fun _ctx ->
      Rpipeline.start p;
      completed := Rpipeline.await_timeout p ~deadline:200.0;
      Supervisor.stop sup);
  Alcotest.(check bool) "pipeline abandoned" false !completed;
  Alcotest.(check bool) "supervisor gave up on the sink" true
    (List.exists (fun (label, _) -> label = "sink") (Supervisor.gave_up sup));
  check Alcotest.int "restarts granted before giving up" 2 (Supervisor.restarts sup)

(* --- Batched chaos regression ---------------------------------------- *)

(* The R1 storm schedule (two filters and the sink crashed, staggered,
   under 10% loss) replayed over the flow-controlled pipeline:
   exactly-once must hold at every batch size, fixed or adaptive.
   Checkpoints sit at batch boundaries, so a bigger batch only coarsens
   replay granularity — never the output. *)
let storm p =
  [
    (List.assoc "filter-1" p.Rpipeline.stages, 2.0);
    (List.assoc "sink" p.Rpipeline.stages, 5.0);
    (List.assoc "filter-3" p.Rpipeline.stages, 8.0);
  ]

let test_batched_chaos flowctl () =
  let ok, out, _, _ = run_chaos ~loss:0.1 ~crashes:storm ~flowctl Pipeline.Read_only in
  Alcotest.(check bool) "completes despite storm + loss" true ok;
  check
    (Alcotest.option (Alcotest.list value))
    "output exactly-once" (Some (expected 30)) out

(* The write-only dual with an adaptive batch: a restarted sink
   acknowledges short, which is exactly the controller's shrink signal —
   replay must stay exactly-once while the batch resizes mid-stream. *)
let test_batched_chaos_wo () =
  let crashes p =
    [
      (List.assoc "source" p.Rpipeline.stages, 3.0);
      (List.assoc "filter-1" p.Rpipeline.stages, 7.0);
    ]
  in
  let ok, out, _, _ =
    run_chaos ~loss:0.1 ~crashes ~flowctl:(Flowctl.adaptive ()) Pipeline.Write_only
  in
  Alcotest.(check bool) "completes" true ok;
  check
    (Alcotest.option (Alcotest.list value))
    "output exactly-once" (Some (expected 30)) out

(* --- Stall detector -------------------------------------------------- *)

let test_stall_detector_attributes_stage () =
  (* A partition between the stages stalls the plain pipeline (no
     retries there); the detector must attribute the blocked fibers to
     their stages. *)
  let k = Kernel.create ~nodes:[ "a"; "b" ] () in
  let nodes = Kernel.nodes k in
  let i = ref 0 in
  let p =
    Pipeline.build k ~nodes Pipeline.Read_only
      ~gen:(fun () ->
        incr i;
        if !i <= 50 then Some (Value.Int !i) else None)
      ~filters:[ Transform.identity ]
      ~consume:ignore
  in
  Net.partition (Kernel.net k) (List.nth nodes 0) (List.nth nodes 1);
  Pipeline.start p;
  Sched.run (Kernel.sched k);
  match Pipeline.diagnose p with
  | None -> Alcotest.fail "pipeline should not have completed"
  | Some d ->
      Alcotest.(check bool) "diagnosis is non-empty" true (d.Pipeline.stalls <> []);
      Alcotest.(check bool) "the waiting sink is attributed to its stage" true
        (List.exists
           (fun s -> s.Pipeline.stage = Some "sink")
           d.Pipeline.stalls)

(* --- Interop -------------------------------------------------------- *)

let test_legacy_pull_reads_resumable_source () =
  (* Un-stamped Transfers fall back to cursor serving, so a plain Pull
     consumer drains a resumable source exactly like a plain Port. *)
  let k = Kernel.create () in
  let src = Rstage.source_ro k (gen 5) in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx src in
      Pull.iter (fun v -> got := v :: !got) pull);
  check (Alcotest.list value) "items in order" (List.init 5 (fun i -> Value.Int i))
    (List.rev !got)

let suite =
  [
    prop_backoff_schedule;
    ("backoff known schedule", `Quick, test_backoff_known_schedule);
    ("retry reaches through loss", `Quick, test_retry_reaches_through_loss);
    ("resumable read-only, fault-free", `Quick, test_ro_fault_free);
    ("RO: crash + 10% loss, output identical", `Quick, test_ro_crash_and_loss_output_identical);
    ("supervisor restarts crashed sink", `Quick, test_supervisor_restarts_crashed_sink);
    ("WO: crashed pump + loss, output identical", `Quick, test_wo_crash_and_loss_output_identical);
    ("conventional: crash + loss", `Quick, test_conventional_crash_and_loss);
    ("duality with resilience enabled", `Quick, test_duality_with_resilience);
    ("supervisor gives up on crash loop", `Quick, test_supervisor_gives_up_on_crash_loop);
    ("storm chaos, batch=1", `Quick, test_batched_chaos (Flowctl.fixed 1));
    ("storm chaos, batch=4", `Quick, test_batched_chaos (Flowctl.fixed 4));
    ("storm chaos, batch=8", `Quick, test_batched_chaos (Flowctl.fixed 8));
    ("storm chaos, batch=64", `Quick, test_batched_chaos (Flowctl.fixed 64));
    ("storm chaos, adaptive batch", `Quick, test_batched_chaos (Flowctl.adaptive ()));
    ("WO chaos, adaptive batch", `Quick, test_batched_chaos_wo);
    ("stall detector attributes stage", `Quick, test_stall_detector_attributes_stage);
    ("legacy pull reads resumable source", `Quick, test_legacy_pull_reads_resumable_source);
  ]
