(* The asymmetric stream protocol: ports, intakes, pull/push clients,
   transforms, and whole pipelines under all three disciplines.  The
   invocation-count assertions here are the paper's central claims. *)

open Eden_kernel
open Eden_transput

let check = Alcotest.check
let prop name ?(count = 60) gen f =
  Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let vstrs = List.map (fun s -> Value.Str s)
let unstrs = List.map Value.to_str

(* Generator over a fixed list. *)
let list_gen items =
  let rest = ref items in
  fun () ->
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some x

let collector () =
  let acc = ref [] in
  let consume v = acc := v :: !acc in
  let get () = List.rev !acc in
  (consume, get)

(* ------------------------------------------------------------------ *)
(* Transform (pure)                                                   *)
(* ------------------------------------------------------------------ *)

let test_transform_identity () =
  let xs = vstrs [ "a"; "b" ] in
  Alcotest.(check bool) "id" true (Transform.run_list Transform.identity xs = xs)

let test_transform_map_filter () =
  let xs = List.map Value.int [ 1; 2; 3; 4 ] in
  let doubled = Transform.run_list (Transform.map (fun v -> Value.int (2 * Value.to_int v))) xs in
  check Alcotest.(list int) "map" [ 2; 4; 6; 8 ] (List.map Value.to_int doubled);
  let evens = Transform.run_list (Transform.filter (fun v -> Value.to_int v mod 2 = 0)) xs in
  check Alcotest.(list int) "filter" [ 2; 4 ] (List.map Value.to_int evens)

let test_transform_stateful_flush () =
  (* Pair up consecutive items; flush emits the odd tail. *)
  let pairer =
    Transform.stateful ~init:None
      ~step:(fun st v ->
        match st with
        | None -> (Some v, [])
        | Some prev -> (None, [ Value.pair prev v ]))
      ~flush:(function None -> [] | Some v -> [ v ])
  in
  let out = Transform.run_list pairer (List.map Value.int [ 1; 2; 3 ]) in
  check Alcotest.int "two outputs" 2 (List.length out);
  match out with
  | [ p; Value.Int 3 ] ->
      let a, b = Value.to_pair p in
      check Alcotest.int "pair fst" 1 (Value.to_int a);
      check Alcotest.int "pair snd" 2 (Value.to_int b)
  | _ -> Alcotest.fail "unexpected shape"

let test_transform_take_drop () =
  let xs = List.map Value.int [ 1; 2; 3; 4; 5 ] in
  check Alcotest.(list int) "take" [ 1; 2 ]
    (List.map Value.to_int (Transform.run_list (Transform.take 2) xs));
  check Alcotest.(list int) "drop" [ 4; 5 ]
    (List.map Value.to_int (Transform.run_list (Transform.drop 3) xs))

let test_transform_sort () =
  let sorter =
    Transform.buffer_all (List.sort (fun a b -> compare (Value.to_int a) (Value.to_int b)))
  in
  let out = Transform.run_list sorter (List.map Value.int [ 3; 1; 2 ]) in
  check Alcotest.(list int) "sorted" [ 1; 2; 3 ] (List.map Value.to_int out)

let prop_map_preserves_length =
  prop "map preserves length" QCheck2.Gen.(small_list (int_bound 50)) (fun xs ->
      let vs = List.map Value.int xs in
      List.length (Transform.run_list (Transform.map Fun.id) vs) = List.length vs)

(* ------------------------------------------------------------------ *)
(* Channel & Proto                                                    *)
(* ------------------------------------------------------------------ *)

let test_channel_roundtrip () =
  let g = Uid.generator ~seed:3L in
  let cases = [ Channel.output; Channel.report; Channel.Num 7; Channel.Cap (Uid.fresh g) ] in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Channel.to_string c) true
        (Channel.equal c (Channel.of_value (Channel.to_value c))))
    cases;
  Alcotest.(check bool) "num/cap unequal" false (Channel.equal (Channel.Num 0) (Channel.Cap (Uid.fresh g)))

let test_proto_roundtrip () =
  let req = Proto.transfer_request (Channel.Num 2) ~credit:5 in
  let c, n = Proto.parse_transfer_request req in
  Alcotest.(check bool) "chan" true (Channel.equal c (Channel.Num 2));
  check Alcotest.int "credit" 5 n;
  let reply = Proto.transfer_reply { Proto.eos = true; items = vstrs [ "x" ] } in
  let r = Proto.parse_transfer_reply reply in
  Alcotest.(check bool) "eos" true r.Proto.eos;
  check Alcotest.(list string) "items" [ "x" ] (unstrs r.Proto.items);
  let dep = Proto.deposit_request Channel.report ~eos:false (vstrs [ "a"; "b" ]) in
  let c', e', items' = Proto.parse_deposit_request dep in
  Alcotest.(check bool) "dep chan" true (Channel.equal c' Channel.report);
  Alcotest.(check bool) "dep eos" false e';
  check Alcotest.(list string) "dep items" [ "a"; "b" ] (unstrs items')

let test_proto_rejects_malformed () =
  Alcotest.(check bool) "zero credit" true
    (try
       ignore (Proto.parse_transfer_request (Proto.transfer_request Channel.output ~credit:1));
       ignore (Proto.parse_transfer_request (Value.List [ Value.Int 0; Value.Int 0 ]));
       false
     with Value.Protocol_error _ -> true);
  Alcotest.(check bool) "garbage" true
    (try
       ignore (Proto.parse_transfer_reply (Value.Str "nope"));
       false
     with Value.Protocol_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Port / Pull through real ejects                                    *)
(* ------------------------------------------------------------------ *)

let test_source_pull_roundtrip () =
  let k = Kernel.create () in
  let src = Stage.source_ro k (list_gen (vstrs [ "a"; "b"; "c" ])) in
  let out = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx src in
      Pull.iter (fun v -> out := v :: !out) pull);
  check Alcotest.(list string) "items in order" [ "a"; "b"; "c" ] (unstrs (List.rev !out))

let test_pull_batching_fewer_transfers () =
  let items = List.init 12 (fun i -> Value.int i) in
  let run batch =
    let k = Kernel.create () in
    let src = Stage.source_ro k ~capacity:16 (list_gen items) in
    let transfers = ref 0 in
    Kernel.run_driver k (fun ctx ->
        let pull = Pull.connect ctx ~batch src in
        Pull.iter ignore pull;
        transfers := Pull.transfers_issued pull);
    !transfers
  in
  let t1 = run 1 and t4 = run 4 in
  Alcotest.(check bool) "batch 4 uses fewer transfers" true (t4 < t1);
  Alcotest.(check bool) "batch 1 needs >= 12" true (t1 >= 12)

let test_port_unknown_channel_refused () =
  let k = Kernel.create () in
  let src = Stage.source_ro k (list_gen (vstrs [ "a" ])) in
  let refused = ref false in
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx ~channel:(Channel.Num 9) src in
      try ignore (Pull.read pull) with Kernel.Eden_error _ -> refused := true);
  Alcotest.(check bool) "refused" true !refused

let test_port_capability_channel_security () =
  (* The paper's §5: with capability channel ids, only Ejects given the
     capability can read; integer ids are forgeable. *)
  let k = Kernel.create () in
  let cap = ref None in
  let src =
    Stage.custom k ~name:"secretive" (fun ctx ~passive:_ ->
        let port = Port.create () in
        let c = Channel.Cap (Kernel.self ctx) in
        (* self UID doubles as an unguessable token here *)
        cap := Some c;
        let w = Port.add_channel port ~capacity:4 c in
        Kernel.spawn_worker ctx (fun () ->
            Port.write w (Value.Str "secret");
            Port.close w);
        Port.handlers port)
  in
  let legit = ref None and forged = ref false in
  Kernel.run_driver k (fun ctx ->
      (* Forger guesses integer channels. *)
      let guess = Pull.connect ctx ~channel:(Channel.Num 0) src in
      (try ignore (Pull.read guess) with Kernel.Eden_error _ -> forged := true);
      (* Holder of the capability reads fine. *)
      match !cap with
      | Some c ->
          let pull = Pull.connect ctx ~channel:c src in
          legit := Pull.read pull
      | None -> Alcotest.fail "capability not minted");
  Alcotest.(check bool) "guessing refused" true !forged;
  check Alcotest.(option string) "capability works" (Some "secret")
    (Option.map Value.to_str !legit)

let test_lazy_source_produces_nothing () =
  (* §4: filters are pure transformers; no data flows until a sink is
     connected.  A lazy source left alone must never run its
     generator. *)
  let k = Kernel.create () in
  let generated = ref 0 in
  let gen () =
    incr generated;
    Some (Value.Int !generated)
  in
  let src = Stage.source_ro k ~capacity:0 gen in
  Kernel.poke k src;
  (* Activated but with no demand: the generator must not run. *)
  Kernel.run k;
  check Alcotest.int "generator never ran" 0 !generated;
  (* Now a consumer asks for exactly three items: exactly three are
     generated — demand-driven production. *)
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx src in
      for _ = 1 to 3 do
        ignore (Pull.read pull)
      done);
  check Alcotest.int "exactly the demanded items" 3 !generated

let test_eager_source_runs_ahead () =
  let k = Kernel.create () in
  let generated = ref 0 in
  let items = List.init 10 (fun i -> Value.int i) in
  let inner = list_gen items in
  let gen () =
    let r = inner () in
    if r <> None then incr generated;
    r
  in
  let src = Stage.source_ro k ~capacity:4 gen in
  Kernel.poke k src;
  Kernel.run k;
  Kernel.run k;
  check Alcotest.int "ran 4 ahead, no more" 4 !generated

(* ------------------------------------------------------------------ *)
(* Intake / Push                                                      *)
(* ------------------------------------------------------------------ *)

let test_push_sink_roundtrip () =
  let k = Kernel.create () in
  let consume, got = collector () in
  let finished = ref false in
  let sink = Stage.sink_wo k ~on_done:(fun () -> finished := true) consume in
  Kernel.run_driver k (fun ctx ->
      let push = Push.connect ctx sink in
      List.iter (Push.write push) (vstrs [ "x"; "y" ]);
      Push.close push);
  Alcotest.(check bool) "eos seen" true !finished;
  check Alcotest.(list string) "delivered" [ "x"; "y" ] (unstrs (got ()))

let test_push_batch_coalesces_deposits () =
  let k = Kernel.create () in
  let consume, _got = collector () in
  let sink = Stage.sink_wo k ~capacity:8 consume in
  let deposits = ref 0 in
  Kernel.run_driver k (fun ctx ->
      let push = Push.connect ctx ~batch:4 sink in
      List.iter (Push.write push) (List.init 8 Value.int);
      Push.close push;
      deposits := Push.deposits_issued push);
  (* 8 items / batch 4 = 2 deposits + 1 closing eos deposit *)
  check Alcotest.int "three deposits" 3 !deposits

let test_deposit_after_eos_refused () =
  let k = Kernel.create () in
  let sink = Stage.sink_wo k ignore in
  let refused = ref false in
  Kernel.run_driver k (fun ctx ->
      let push = Push.connect ctx sink in
      Push.close push;
      match
        Kernel.invoke ctx sink ~op:Proto.deposit_op
          (Proto.deposit_request Channel.output ~eos:false [ Value.Int 1 ])
      with
      | Error _ -> refused := true
      | Ok _ -> ());
  Alcotest.(check bool) "late deposit refused" true !refused

let test_intake_backpressure_blocks_producer () =
  (* A fast producer into a slow sink with capacity 1: deposits are
     held until the consumer drains, so virtual time advances with the
     consumer, not the producer. *)
  let k = Kernel.create ~latency:(Eden_net.Net.Fixed 0.001) () in
  let consumed = ref [] in
  let sink =
    Stage.sink_wo k ~capacity:1 (fun v ->
        Eden_sched.Sched.sleep 10.0;
        consumed := v :: !consumed)
  in
  let src = Stage.source_wo k ~downstream:sink (list_gen (List.init 5 Value.int)) in
  Kernel.poke k src;
  Kernel.run k;
  Eden_sched.Sched.check_failures (Kernel.sched k);
  check Alcotest.int "all consumed" 5 (List.length !consumed);
  Alcotest.(check bool) "took consumer-paced time" true (Eden_sched.Sched.now (Kernel.sched k) >= 50.0)

(* ------------------------------------------------------------------ *)
(* Whole pipelines                                                    *)
(* ------------------------------------------------------------------ *)

let upcase_tr =
  Transform.map (fun v -> Value.Str (String.uppercase_ascii (Value.to_str v)))

let reverse_tr =
  Transform.map (fun v ->
      let s = Value.to_str v in
      Value.Str (String.init (String.length s) (fun i -> s.[String.length s - 1 - i])))

let no_b_tr = Transform.filter (fun v -> not (String.contains (Value.to_str v) 'b'))

let run_pipeline ?(n_items = 8) ?(capacity = 0) ?(batch = 1) kernel_args discipline filters =
  let k = Kernel.create ~seed:kernel_args () in
  let items = List.init n_items (fun i -> Value.Str (Printf.sprintf "item-%02d%s" i (if i mod 3 = 0 then "b" else ""))) in
  let consume, got = collector () in
  let before = Kernel.Meter.snapshot k in
  let p = Pipeline.build k ~capacity ~batch discipline ~gen:(list_gen items) ~filters ~consume in
  Kernel.run_driver k (fun _ctx -> Pipeline.run p);
  let d = Kernel.Meter.diff (Kernel.Meter.snapshot k) before in
  (p, got (), d, items)

let expected_output filters items =
  List.fold_left (fun acc tr -> Transform.run_list tr acc) items filters

let test_pipeline_output_all_disciplines () =
  let filters = [ upcase_tr; no_b_tr; reverse_tr ] in
  List.iter
    (fun disc ->
      let _, out, _, items = run_pipeline 7L disc filters in
      let expected = expected_output filters items in
      check
        Alcotest.(list string)
        (Pipeline.discipline_name disc)
        (unstrs expected) (unstrs out))
    Pipeline.all_disciplines

let test_pipeline_disciplines_agree () =
  let filters = [ no_b_tr; upcase_tr ] in
  let outputs =
    List.map (fun d -> let _, out, _, _ = run_pipeline 11L d filters in unstrs out) Pipeline.all_disciplines
  in
  match outputs with
  | [ a; b; c ] ->
      check Alcotest.(list string) "ro = wo" a b;
      check Alcotest.(list string) "ro = conv" a c
  | _ -> Alcotest.fail "expected three outputs"

let test_pipeline_entity_counts () =
  List.iter
    (fun disc ->
      let n = 3 in
      let p, _, d, _ = run_pipeline 5L disc [ upcase_tr; reverse_tr; upcase_tr ] in
      let pred = Pipeline.predict disc ~n_filters:n in
      check Alcotest.int
        (Pipeline.discipline_name disc ^ " entities")
        pred.Pipeline.entities (Pipeline.entity_count p);
      check Alcotest.int
        (Pipeline.discipline_name disc ^ " metered ejects")
        pred.Pipeline.entities d.Kernel.Meter.ejects_created)
    Pipeline.all_disciplines

(* The paper's central quantitative claim: invocations per datum is
   n+1 in the asymmetric disciplines and 2n+2 conventionally.  With
   batch = 1 the measured total over N items is within one extra
   end-of-stream handshake per stage of the formula. *)
let test_pipeline_invocation_counts () =
  let n_items = 16 in
  List.iter
    (fun disc ->
      List.iter
        (fun n_filters ->
          let filters = List.init n_filters (fun _ -> Transform.identity) in
          let _, out, d, _ = run_pipeline 13L ~n_items disc filters in
          check Alcotest.int "all items arrive" n_items (List.length out);
          let pred = Pipeline.predict disc ~n_filters in
          let per_datum = pred.Pipeline.invocations_per_datum in
          let stages = per_datum in
          (* stages issuing invocations = per-datum count *)
          let lo = per_datum * n_items in
          let hi = (per_datum * (n_items + 1)) + stages in
          let inv = d.Kernel.Meter.invocations in
          if not (inv >= lo && inv <= hi) then
            Alcotest.failf "%s n=%d: invocations %d outside [%d,%d]"
              (Pipeline.discipline_name disc) n_filters inv lo hi)
        [ 0; 1; 2; 4 ])
    Pipeline.all_disciplines

let test_read_only_beats_conventional () =
  let filters = List.init 4 (fun _ -> Transform.identity) in
  let _, _, d_ro, _ = run_pipeline 17L ~n_items:32 Pipeline.Read_only filters in
  let _, _, d_cv, _ = run_pipeline 17L ~n_items:32 Pipeline.Conventional filters in
  let ratio = float_of_int d_cv.Kernel.Meter.invocations /. float_of_int d_ro.Kernel.Meter.invocations in
  (* 2n+2 / n+1 = 2 exactly in the limit. *)
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f near 2" ratio) true (ratio > 1.7 && ratio < 2.3)

let test_duals_have_equal_cost () =
  let filters = List.init 3 (fun _ -> Transform.identity) in
  let _, _, d_ro, _ = run_pipeline 19L ~n_items:20 Pipeline.Read_only filters in
  let _, _, d_wo, _ = run_pipeline 19L ~n_items:20 Pipeline.Write_only filters in
  let near a b = abs (a - b) <= 4 in
  Alcotest.(check bool)
    (Printf.sprintf "ro %d ~ wo %d" d_ro.Kernel.Meter.invocations d_wo.Kernel.Meter.invocations)
    true
    (near d_ro.Kernel.Meter.invocations d_wo.Kernel.Meter.invocations)

let test_pipeline_empty_stream () =
  List.iter
    (fun disc ->
      let _, out, _, _ = run_pipeline 23L ~n_items:0 disc [ upcase_tr ] in
      check Alcotest.(list string) "no output" [] (unstrs out))
    Pipeline.all_disciplines

let test_pipeline_zero_filters () =
  List.iter
    (fun disc ->
      let _, out, _, items = run_pipeline 29L ~n_items:5 disc [] in
      check Alcotest.(list string) "source to sink" (unstrs items) (unstrs out))
    Pipeline.all_disciplines

let test_pipeline_prefetch_still_correct () =
  let filters = [ upcase_tr; no_b_tr ] in
  List.iter
    (fun capacity ->
      let _, out, _, items = run_pipeline 31L ~capacity Pipeline.Read_only filters in
      check Alcotest.(list string)
        (Printf.sprintf "capacity %d" capacity)
        (unstrs (expected_output filters items))
        (unstrs out))
    [ 0; 1; 4; 16 ]

let test_pipeline_batching_still_correct () =
  let filters = [ reverse_tr ] in
  List.iter
    (fun batch ->
      let _, out, _, items = run_pipeline 37L ~batch ~n_items:10 Pipeline.Read_only filters in
      check Alcotest.(list string)
        (Printf.sprintf "batch %d" batch)
        (unstrs (expected_output filters items))
        (unstrs out))
    [ 1; 2; 5; 32 ]

let test_pipeline_across_nodes () =
  let k = Kernel.create ~nodes:[ "vax-1"; "vax-2"; "vax-3" ] () in
  let items = vstrs [ "p"; "q"; "r" ] in
  let consume, got = collector () in
  let p =
    Pipeline.build k ~nodes:(Kernel.nodes k) Pipeline.Read_only ~gen:(list_gen items)
      ~filters:[ upcase_tr ] ~consume
  in
  Kernel.run_driver k (fun _ -> Pipeline.run p);
  check Alcotest.(list string) "distributed pipeline works" [ "P"; "Q"; "R" ] (unstrs (got ()))

let test_fan_in_read_only () =
  (* §5: read-only permits arbitrary fan-in — a sink reading from two
     sources by holding two UIDs. *)
  let k = Kernel.create () in
  let s1 = Stage.source_ro k ~name:"src1" (list_gen (vstrs [ "a1"; "a2" ])) in
  let s2 = Stage.source_ro k ~name:"src2" (list_gen (vstrs [ "b1"; "b2" ])) in
  let out = ref [] in
  Kernel.run_driver k (fun ctx ->
      let p1 = Pull.connect ctx s1 and p2 = Pull.connect ctx s2 in
      Pull.iter (fun v -> out := v :: !out) p1;
      Pull.iter (fun v -> out := v :: !out) p2);
  check Alcotest.(list string) "both streams read" [ "a1"; "a2"; "b1"; "b2" ] (unstrs (List.rev !out))

let test_fan_out_read_only_steals () =
  (* §5: naive read-only fan-out cannot work — two readers of the same
     channel steal items from each other rather than each seeing the
     whole stream. *)
  let k = Kernel.create () in
  let src = Stage.source_ro k ~capacity:0 (list_gen (List.init 6 Value.int)) in
  let got1 = ref [] and got2 = ref [] in
  let done_ = Eden_sched.Waitgroup.create () in
  Eden_sched.Waitgroup.add done_ 2;
  let mk out name =
    Stage.sink_ro k ~name ~upstream:src
      ~on_done:(fun () -> Eden_sched.Waitgroup.finish done_)
      (fun v -> out := v :: !out)
  in
  let k1 = mk got1 "reader1" and k2 = mk got2 "reader2" in
  Kernel.poke k k1;
  Kernel.poke k k2;
  Kernel.run k;
  Eden_sched.Sched.check_failures (Kernel.sched k);
  let n1 = List.length !got1 and n2 = List.length !got2 in
  check Alcotest.int "every item went somewhere" 6 (n1 + n2);
  Alcotest.(check bool) "neither saw the whole stream" true (n1 < 6 && n2 < 6)

let test_fan_out_write_only () =
  (* §5 dual: write-only fan-out is natural — one filter pushes to as
     many sinks as it likes. *)
  let k = Kernel.create () in
  let c1, g1 = collector () in
  let c2, g2 = collector () in
  let sink1 = Stage.sink_wo k ~name:"sink1" c1 in
  let sink2 = Stage.sink_wo k ~name:"sink2" c2 in
  let src =
    Stage.custom k ~name:"fanout" (fun ctx ~passive:_ ->
        Kernel.spawn_worker ctx (fun () ->
            let p1 = Push.connect ctx sink1 and p2 = Push.connect ctx sink2 in
            List.iter
              (fun v ->
                Push.write p1 v;
                Push.write p2 v)
              (vstrs [ "x"; "y" ]);
            Push.close p1;
            Push.close p2);
        [])
  in
  Kernel.poke k src;
  Kernel.run k;
  Eden_sched.Sched.check_failures (Kernel.sched k);
  check Alcotest.(list string) "sink1 got all" [ "x"; "y" ] (unstrs (g1 ()));
  check Alcotest.(list string) "sink2 got all" [ "x"; "y" ] (unstrs (g2 ()))

let test_head_over_infinite_source_terminates () =
  (* Demand-driven corollary of §4: a [take]-style filter over an
     INFINITE source terminates, because nothing downstream of the cut
     ever demands more.  In the conventional push world this needs
     SIGPIPE; here it falls out of laziness. *)
  let k = Kernel.create () in
  let generated = ref 0 in
  let src =
    Stage.source_ro k ~capacity:0 (fun () ->
        incr generated;
        Some (Value.Int !generated))
  in
  let first3 = Stage.filter_ro k ~upstream:src (Transform.take 3) in
  let got = ref [] in
  let done_ = ref false in
  let sink =
    Stage.sink_ro k ~upstream:first3
      ~on_done:(fun () -> done_ := true)
      (fun v -> got := Value.to_int v :: !got)
  in
  Kernel.poke k sink;
  Kernel.run k;
  Alcotest.(check bool) "pipeline completed" true !done_;
  check Alcotest.(list int) "exactly three items" [ 1; 2; 3 ] (List.rev !got);
  Alcotest.(check bool)
    (Printf.sprintf "source generated only %d" !generated)
    true (!generated <= 4)

let test_multi_channel_port () =
  (* Figure 4: one Eject serving Output and Report channels
     independently. *)
  let k = Kernel.create () in
  let src =
    Stage.custom k ~name:"reporter" (fun ctx ~passive:_ ->
        let port = Port.create () in
        let out = Port.add_channel port ~capacity:8 Channel.output in
        let rep = Port.add_channel port ~capacity:8 Channel.report in
        Kernel.spawn_worker ctx (fun () ->
            List.iter
              (fun i ->
                Port.write out (Value.Str (Printf.sprintf "data-%d" i));
                if i mod 2 = 0 then
                  Port.write rep (Value.Str (Printf.sprintf "report-%d" i)))
              [ 1; 2; 3; 4 ];
            Port.close out;
            Port.close rep);
        Port.handlers port)
  in
  let data = ref [] and reports = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pd = Pull.connect ctx ~channel:Channel.output src in
      let pr = Pull.connect ctx ~channel:Channel.report src in
      Pull.iter (fun v -> data := v :: !data) pd;
      Pull.iter (fun v -> reports := v :: !reports) pr);
  check Alcotest.(list string) "main stream" [ "data-1"; "data-2"; "data-3"; "data-4" ]
    (unstrs (List.rev !data));
  check Alcotest.(list string) "report stream" [ "report-2"; "report-4" ]
    (unstrs (List.rev !reports))

let prop_pipeline_roundtrip =
  let line_gen = QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 6)) in
  prop ~count:25 "identity pipeline is the identity on any stream"
    QCheck2.Gen.(pair (int_range 0 2) (small_list line_gen))
    (fun (n_filters, lines) ->
      let k = Kernel.create () in
      let items = vstrs lines in
      let consume, got = collector () in
      let p =
        Pipeline.build k Pipeline.Read_only ~gen:(list_gen items)
          ~filters:(List.init n_filters (fun _ -> Transform.identity))
          ~consume
      in
      Kernel.run_driver k (fun _ -> Pipeline.run p);
      unstrs (got ()) = lines)

let prop_cost_model_matches_meter =
  prop ~count:20 "metered invocations stay within the cost-model window"
    QCheck2.Gen.(pair (int_range 0 4) (int_range 1 12))
    (fun (n_filters, n_items) ->
      let k = Kernel.create () in
      let items = List.init n_items Value.int in
      let consume, _ = collector () in
      let before = Kernel.Meter.snapshot k in
      let p =
        Pipeline.build k Pipeline.Read_only ~gen:(list_gen items)
          ~filters:(List.init n_filters (fun _ -> Transform.identity))
          ~consume
      in
      Kernel.run_driver k (fun _ -> Pipeline.run p);
      let d = Kernel.Meter.diff (Kernel.Meter.snapshot k) before in
      let per = (Pipeline.predict Pipeline.Read_only ~n_filters).Pipeline.invocations_per_datum in
      d.Kernel.Meter.invocations >= per * n_items
      && d.Kernel.Meter.invocations <= (per * (n_items + 1)) + per)

let suite =
  [
    ("transform identity", `Quick, test_transform_identity);
    ("transform map/filter", `Quick, test_transform_map_filter);
    ("transform stateful flush", `Quick, test_transform_stateful_flush);
    ("transform take/drop", `Quick, test_transform_take_drop);
    ("transform sort via buffer_all", `Quick, test_transform_sort);
    ("channel roundtrip", `Quick, test_channel_roundtrip);
    ("proto roundtrip", `Quick, test_proto_roundtrip);
    ("proto rejects malformed", `Quick, test_proto_rejects_malformed);
    ("source/pull roundtrip", `Quick, test_source_pull_roundtrip);
    ("pull batching", `Quick, test_pull_batching_fewer_transfers);
    ("unknown channel refused", `Quick, test_port_unknown_channel_refused);
    ("capability channel security", `Quick, test_port_capability_channel_security);
    ("lazy source produces nothing", `Quick, test_lazy_source_produces_nothing);
    ("eager source runs ahead", `Quick, test_eager_source_runs_ahead);
    ("push/sink roundtrip", `Quick, test_push_sink_roundtrip);
    ("push batch coalesces", `Quick, test_push_batch_coalesces_deposits);
    ("deposit after eos refused", `Quick, test_deposit_after_eos_refused);
    ("intake backpressure", `Quick, test_intake_backpressure_blocks_producer);
    ("pipeline output, all disciplines", `Quick, test_pipeline_output_all_disciplines);
    ("pipeline disciplines agree", `Quick, test_pipeline_disciplines_agree);
    ("pipeline entity counts", `Quick, test_pipeline_entity_counts);
    ("pipeline invocation counts", `Quick, test_pipeline_invocation_counts);
    ("read-only beats conventional ~2x", `Quick, test_read_only_beats_conventional);
    ("duals have equal cost", `Quick, test_duals_have_equal_cost);
    ("pipeline empty stream", `Quick, test_pipeline_empty_stream);
    ("pipeline zero filters", `Quick, test_pipeline_zero_filters);
    ("prefetch still correct", `Quick, test_pipeline_prefetch_still_correct);
    ("batching still correct", `Quick, test_pipeline_batching_still_correct);
    ("pipeline across nodes", `Quick, test_pipeline_across_nodes);
    ("fan-in read-only", `Quick, test_fan_in_read_only);
    ("fan-out read-only steals", `Quick, test_fan_out_read_only_steals);
    ("fan-out write-only", `Quick, test_fan_out_write_only);
    ("head over infinite source terminates", `Quick, test_head_over_infinite_source_terminates);
    ("multi-channel port", `Quick, test_multi_channel_port);
    prop_map_preserves_length;
    prop_pipeline_roundtrip;
    prop_cost_model_matches_meter;
  ]
