(* Tests for the cooperative scheduler and its synchronisation
   primitives.  Determinism is load-bearing for the whole reproduction,
   so several tests assert exact schedules. *)

open Eden_sched

let check = Alcotest.check
let prop name ?(count = 100) gen f =
  Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let run_ok t =
  Sched.run t;
  Sched.check_failures t

(* ------------------------------------------------------------------ *)
(* Basic fiber mechanics                                              *)
(* ------------------------------------------------------------------ *)

let test_spawn_runs () =
  let t = Sched.create () in
  let hit = ref false in
  ignore (Sched.spawn t (fun () -> hit := true));
  run_ok t;
  Alcotest.(check bool) "body ran" true !hit

let test_fifo_order () =
  let t = Sched.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sched.spawn t (fun () -> log := i :: !log))
  done;
  run_ok t;
  check Alcotest.(list int) "spawn order preserved" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_yield_interleaves () =
  let t = Sched.create () in
  let log = Buffer.create 16 in
  let worker c () =
    for _ = 1 to 3 do
      Buffer.add_char log c;
      Sched.yield ()
    done
  in
  ignore (Sched.spawn t (worker 'a'));
  ignore (Sched.spawn t (worker 'b'));
  run_ok t;
  check Alcotest.string "round robin" "ababab" (Buffer.contents log)

let test_sleep_orders_by_time () =
  let t = Sched.create () in
  let log = ref [] in
  let napper label d () =
    Sched.sleep d;
    log := label :: !log
  in
  ignore (Sched.spawn t (napper "slow" 3.0));
  ignore (Sched.spawn t (napper "fast" 1.0));
  ignore (Sched.spawn t (napper "mid" 2.0));
  run_ok t;
  check Alcotest.(list string) "time order" [ "fast"; "mid"; "slow" ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last wake" 3.0 (Sched.now t)

let test_virtual_time_jumps () =
  let t = Sched.create () in
  ignore (Sched.spawn t (fun () -> Sched.sleep 1000.0));
  run_ok t;
  check (Alcotest.float 1e-9) "jumped, not waited" 1000.0 (Sched.now t)

let test_nested_sleep_accumulates () =
  let t = Sched.create () in
  let seen = ref [] in
  ignore
    (Sched.spawn t (fun () ->
         Sched.sleep 1.5;
         seen := Sched.time () :: !seen;
         Sched.sleep 2.5;
         seen := Sched.time () :: !seen));
  run_ok t;
  check Alcotest.(list (float 1e-9)) "timestamps" [ 4.0; 1.5 ] !seen

let test_failure_recorded () =
  let t = Sched.create () in
  ignore (Sched.spawn t ~name:"bad" (fun () -> failwith "boom"));
  Sched.run t;
  match Sched.failures t with
  | [ ("bad", Failure msg) ] when msg = "boom" -> ()
  | _ -> Alcotest.fail "expected one failure from fiber bad"

let test_check_failures_raises () =
  let t = Sched.create () in
  ignore (Sched.spawn t ~name:"bad" (fun () -> failwith "boom"));
  Sched.run t;
  Alcotest.(check bool) "raises" true
    (try
       Sched.check_failures t;
       false
     with Failure _ -> true)

let test_live_count () =
  let t = Sched.create () in
  ignore (Sched.spawn t (fun () -> ()));
  ignore (Sched.spawn t (fun () -> Sched.sleep 1.0));
  check Alcotest.int "two live before run" 2 (Sched.live_count t);
  run_ok t;
  check Alcotest.int "none live after" 0 (Sched.live_count t)

let test_spawn_inside () =
  let t = Sched.create () in
  let log = ref [] in
  ignore
    (Sched.spawn t ~name:"parent" (fun () ->
         log := "parent" :: !log;
         ignore
           (Sched.spawn_inside ~name:"child" (fun () ->
                log := ("child of " ^ Sched.self_name ()) :: !log));
         Sched.yield ()));
  run_ok t;
  check Alcotest.(list string) "child ran" [ "parent"; "child of child" ] (List.rev !log)

let test_run_until_stops_clock () =
  let t = Sched.create () in
  let fired = ref false in
  Sched.timer t 10.0 (fun () -> fired := true);
  Sched.run_until t 5.0;
  Alcotest.(check bool) "timer pending" false !fired;
  check (Alcotest.float 1e-9) "clock advanced to limit" 5.0 (Sched.now t);
  Sched.run t;
  Alcotest.(check bool) "fires later" true !fired

let test_step_granularity () =
  let t = Sched.create () in
  let count = ref 0 in
  ignore (Sched.spawn t (fun () -> incr count));
  ignore (Sched.spawn t (fun () -> incr count));
  Alcotest.(check bool) "first step" true (Sched.step t);
  check Alcotest.int "one fiber ran" 1 !count;
  Alcotest.(check bool) "second step" true (Sched.step t);
  Alcotest.(check bool) "quiescent" false (Sched.step t)

(* ------------------------------------------------------------------ *)
(* Ordering contract (see the sched.mli header)                       *)
(* ------------------------------------------------------------------ *)

(* Rule 5: the [run_until] boundary is inclusive — a timer due exactly
   at the limit fires, and the clock ends at exactly the limit either
   way. *)
let test_run_until_boundary_inclusive () =
  let t = Sched.create () in
  let log = ref [] in
  Sched.timer t 5.0 (fun () -> log := "at" :: !log);
  Sched.timer t 5.0 (fun () -> log := "at2" :: !log);
  Sched.timer t 5.000001 (fun () -> log := "after" :: !log);
  Sched.run_until t 5.0;
  check
    Alcotest.(list string)
    "timers due exactly at the limit fired, in insertion order" [ "at"; "at2" ]
    (List.rev !log);
  check (Alcotest.float 1e-12) "clock is exactly the limit" 5.0 (Sched.now t);
  Sched.run t;
  check Alcotest.(list string) "later timer still fired" [ "at"; "at2"; "after" ]
    (List.rev !log)

(* Rule 2: tied timers fire in insertion order, interleaved correctly
   with non-tied ones. *)
let test_timer_tie_insertion_order () =
  let t = Sched.create () in
  let log = ref [] in
  Sched.timer t 2.0 (fun () -> log := "b1" :: !log);
  Sched.timer t 1.0 (fun () -> log := "a" :: !log);
  Sched.timer t 2.0 (fun () -> log := "b2" :: !log);
  Sched.timer t 2.0 (fun () -> log := "b3" :: !log);
  Sched.run t;
  check Alcotest.(list string) "deadline order, ties by insertion" [ "a"; "b1"; "b2"; "b3" ]
    (List.rev !log)

(* Rule 1: while a fiber is runnable no timer fires, even one already
   due. *)
let test_runnable_before_timers () =
  let t = Sched.create () in
  let log = ref [] in
  Sched.timer t 0.0 (fun () -> log := "timer" :: !log);
  ignore (Sched.spawn t (fun () -> log := "fiber1" :: !log));
  ignore (Sched.spawn t (fun () -> log := "fiber2" :: !log));
  Alcotest.(check bool) "step 1 runs a fiber" true (Sched.step t);
  Alcotest.(check bool) "step 2 runs a fiber" true (Sched.step t);
  check Alcotest.(list string) "both fibers before the due timer" [ "fiber1"; "fiber2" ]
    (List.rev !log);
  Alcotest.(check bool) "step 3 fires the timer" true (Sched.step t);
  check Alcotest.(list string) "timer last" [ "fiber1"; "fiber2"; "timer" ] (List.rev !log)

(* Rules 3/4: a chooser that always answers 0 is indistinguishable from
   no chooser at all — the FIFO baseline is the all-zero schedule. *)
let contract_scenario chooser =
  let t = Sched.create () in
  Sched.set_chooser t chooser;
  let log = ref [] in
  for i = 1 to 3 do
    ignore
      (Sched.spawn t (fun () ->
           log := Printf.sprintf "start%d" i :: !log;
           Sched.yield ();
           log := Printf.sprintf "mid%d" i :: !log;
           Sched.sleep (float_of_int (4 - i));
           log := Printf.sprintf "end%d" i :: !log))
  done;
  Sched.timer t 2.0 (fun () -> log := "tick" :: !log);
  Sched.run t;
  Sched.check_failures t;
  List.rev !log

let test_zero_chooser_is_fifo () =
  let baseline = contract_scenario None in
  let zeroed = contract_scenario (Some (fun ~kind:_ ~ids:_ -> 0)) in
  check Alcotest.(list string) "all-zero chooser = FIFO baseline" baseline zeroed

(* A chooser is only consulted at real decision points (n >= 2), and an
   out-of-range answer is rejected. *)
let test_chooser_consultation_and_range () =
  let picks = ref [] in
  let chooser = Some (fun ~kind ~ids ->
      picks := (kind, Array.length ids) :: !picks;
      0)
  in
  ignore (contract_scenario chooser);
  Alcotest.(check bool) "only multi-way picks reported" true
    (List.for_all (fun (_, n) -> n >= 2) !picks);
  Alcotest.(check bool) "run-queue picks seen" true
    (List.exists (fun (k, _) -> k = "sched.run") !picks);
  let t = Sched.create () in
  Sched.set_chooser t (Some (fun ~kind:_ ~ids -> Array.length ids));
  ignore (Sched.spawn t ignore);
  ignore (Sched.spawn t ignore);
  match Sched.run t with
  | () -> Alcotest.fail "out-of-range pick accepted"
  | exception Invalid_argument _ -> ()

(* A chooser can reverse the run queue: the legal reordering is real,
   and unchosen fibers keep their relative order. *)
let test_chooser_reverses_runq () =
  let t = Sched.create () in
  Sched.set_chooser t (Some (fun ~kind ~ids ->
      match kind with "sched.run" -> Array.length ids - 1 | _ -> 0));
  let log = ref [] in
  for i = 1 to 3 do
    ignore (Sched.spawn t (fun () -> log := i :: !log))
  done;
  Sched.run t;
  check Alcotest.(list int) "last-spawned runs first" [ 3; 2; 1 ] (List.rev !log)

(* Timer ties are a decision point too: picking index 1 fires the
   second-inserted tied timer first, and only tied timers are offered. *)
let test_chooser_timer_ties () =
  let t = Sched.create () in
  let offered = ref [] in
  Sched.set_chooser t (Some (fun ~kind ~ids ->
      if kind = "sched.timer" then begin
        offered := Array.length ids :: !offered;
        1
      end
      else 0));
  let log = ref [] in
  Sched.timer t 1.0 (fun () -> log := "t1" :: !log);
  Sched.timer t 1.0 (fun () -> log := "t2" :: !log);
  Sched.timer t 2.0 (fun () -> log := "t3" :: !log);
  Sched.run t;
  check Alcotest.(list int) "one 2-way tie offered" [ 2 ] !offered;
  check Alcotest.(list string) "tie broken towards insertion index 1" [ "t2"; "t1"; "t3" ]
    (List.rev !log)

(* Note hooks: notes flow to the installed hook and are free without
   one. *)
let test_note_hook () =
  let t = Sched.create () in
  Sched.note t ~kind:"free" ~arg:0;
  let seen = ref [] in
  Sched.set_note_hook t (Some (fun ~kind ~arg -> seen := (kind, arg) :: !seen));
  Sched.note t ~kind:"net.loss" ~arg:1;
  Sched.note t ~kind:"credit.take" ~arg:3;
  Sched.set_note_hook t None;
  Sched.note t ~kind:"late" ~arg:9;
  check
    Alcotest.(list (pair string int))
    "hook saw exactly the hooked notes"
    [ ("net.loss", 1); ("credit.take", 3) ]
    (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* Blocking & deadlock reporting                                      *)
(* ------------------------------------------------------------------ *)

let test_blocked_listing () =
  let t = Sched.create () in
  let mb : int Mailbox.t = Mailbox.create ~label:"lonely" () in
  ignore (Sched.spawn t ~name:"waiter" (fun () -> ignore (Mailbox.receive mb)));
  Sched.run t;
  check
    Alcotest.(list (pair string string))
    "blocked fiber visible"
    [ ("waiter", "lonely") ]
    (Sched.blocked t)

let test_finished_fibers_untracked () =
  (* Regression: finished fibers used to linger in the scheduler's fiber
     table forever; they must be dropped the moment they finish. *)
  let t = Sched.create () in
  let fids =
    List.init 3 (fun i -> Sched.spawn t (fun () -> Sched.sleep (float_of_int i)))
  in
  List.iter
    (fun fid -> Alcotest.(check bool) "tracked before run" true (Sched.is_live t fid))
    fids;
  run_ok t;
  check Alcotest.int "no finished fibers retained" 0 (Sched.tracked_count t);
  List.iter
    (fun fid -> Alcotest.(check bool) "untracked once finished" false (Sched.is_live t fid))
    fids

let test_blocked_info_ids_match () =
  let t = Sched.create () in
  let mb : int Mailbox.t = Mailbox.create ~label:"lonely" () in
  let fid = Sched.spawn t ~name:"waiter" (fun () -> ignore (Mailbox.receive mb)) in
  Sched.run t;
  match Sched.blocked_info t with
  | [ (id, name, reason) ] ->
      check Alcotest.int "fiber id" fid id;
      check Alcotest.string "name" "waiter" name;
      check Alcotest.string "reason" "lonely" reason;
      Alcotest.(check bool) "blocked fiber still tracked" true (Sched.is_live t fid)
  | l -> Alcotest.failf "expected 1 blocked fiber, got %d" (List.length l)

let test_cancel_blocked_fiber () =
  let t = Sched.create () in
  let mb : int Mailbox.t = Mailbox.create () in
  let cleanup = ref false in
  let fid =
    Sched.spawn t ~name:"victim" (fun () ->
        match Mailbox.receive mb with
        | exception Sched.Cancelled ->
            cleanup := true;
            raise Sched.Cancelled
        | _ -> ())
  in
  Sched.run t;
  check Alcotest.int "blocked" 1 (List.length (Sched.blocked t));
  Sched.cancel t fid;
  Sched.run t;
  Alcotest.(check bool) "cancellation observed" true !cleanup;
  check Alcotest.int "no longer blocked" 0 (List.length (Sched.blocked t));
  Sched.check_failures t

let test_cancel_before_first_run () =
  let t = Sched.create () in
  let ran = ref false in
  let fid = Sched.spawn t (fun () -> ran := true) in
  Sched.cancel t fid;
  run_ok t;
  Alcotest.(check bool) "body never ran" false !ran

let test_cancel_finished_noop () =
  let t = Sched.create () in
  let fid = Sched.spawn t (fun () -> ()) in
  run_ok t;
  Sched.cancel t fid;
  run_ok t

(* ------------------------------------------------------------------ *)
(* Ivar                                                               *)
(* ------------------------------------------------------------------ *)

let test_ivar_fill_then_read () =
  let t = Sched.create () in
  let iv = Ivar.create () in
  Ivar.fill iv 42;
  let got = ref 0 in
  ignore (Sched.spawn t (fun () -> got := Ivar.read iv));
  run_ok t;
  check Alcotest.int "read" 42 !got

let test_ivar_read_blocks_until_fill () =
  let t = Sched.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  ignore (Sched.spawn t ~name:"reader" (fun () -> got := Ivar.read iv));
  ignore
    (Sched.spawn t ~name:"writer" (fun () ->
         Sched.sleep 2.0;
         Ivar.fill iv 7));
  run_ok t;
  check Alcotest.int "read after fill" 7 !got

let test_ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  Alcotest.(check bool) "try_fill fails" false (Ivar.try_fill iv 2);
  Alcotest.check_raises "fill raises" (Failure "Ivar.fill: already filled") (fun () ->
      Ivar.fill iv 3);
  check Alcotest.(option int) "value unchanged" (Some 1) (Ivar.peek iv)

let test_ivar_many_readers () =
  let t = Sched.create () in
  let iv = Ivar.create () in
  let sum = ref 0 in
  for _ = 1 to 5 do
    ignore (Sched.spawn t (fun () -> sum := !sum + Ivar.read iv))
  done;
  ignore (Sched.spawn t (fun () -> Ivar.fill iv 10));
  run_ok t;
  check Alcotest.int "all readers woken" 50 !sum

let test_ivar_timeout_expires () =
  let t = Sched.create () in
  let iv : int Ivar.t = Ivar.create () in
  let got = ref (Some 99) in
  ignore (Sched.spawn t (fun () -> got := Ivar.read_timeout t iv 5.0));
  run_ok t;
  check Alcotest.(option int) "timed out" None !got;
  check (Alcotest.float 1e-9) "waited 5" 5.0 (Sched.now t)

let test_ivar_timeout_beaten_by_fill () =
  let t = Sched.create () in
  let iv = Ivar.create () in
  let got = ref None in
  ignore (Sched.spawn t (fun () -> got := Ivar.read_timeout t iv 5.0));
  ignore
    (Sched.spawn t (fun () ->
         Sched.sleep 1.0;
         Ivar.fill iv 3));
  run_ok t;
  check Alcotest.(option int) "filled in time" (Some 3) !got

(* ------------------------------------------------------------------ *)
(* Mailbox                                                            *)
(* ------------------------------------------------------------------ *)

let test_mailbox_fifo () =
  let t = Sched.create () in
  let mb = Mailbox.create () in
  let log = ref [] in
  ignore
    (Sched.spawn t (fun () ->
         for _ = 1 to 3 do
           log := Mailbox.receive mb :: !log
         done));
  List.iter (Mailbox.send mb) [ "x"; "y"; "z" ];
  run_ok t;
  check Alcotest.(list string) "fifo" [ "x"; "y"; "z" ] (List.rev !log)

let test_mailbox_send_wakes () =
  let t = Sched.create () in
  let mb = Mailbox.create () in
  let got = ref 0 in
  ignore (Sched.spawn t (fun () -> got := Mailbox.receive mb));
  ignore
    (Sched.spawn t (fun () ->
         Sched.sleep 1.0;
         Mailbox.send mb 5));
  run_ok t;
  check Alcotest.int "woken with value" 5 !got

let test_mailbox_many_receivers () =
  let t = Sched.create () in
  let mb = Mailbox.create () in
  let total = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Sched.spawn t (fun () ->
           let v = Mailbox.receive mb in
           total := !total + v))
  done;
  ignore
    (Sched.spawn t (fun () ->
         Mailbox.send mb 1;
         Mailbox.send mb 2;
         Mailbox.send mb 4));
  run_ok t;
  check Alcotest.int "each message consumed once" 7 !total

let test_mailbox_try_receive () =
  let mb = Mailbox.create () in
  check Alcotest.(option int) "empty" None (Mailbox.try_receive mb);
  Mailbox.send mb 1;
  check Alcotest.(option int) "one" (Some 1) (Mailbox.try_receive mb);
  check Alcotest.(option int) "drained" None (Mailbox.try_receive mb)

let test_mailbox_timeout () =
  let t = Sched.create () in
  let mb : int Mailbox.t = Mailbox.create () in
  let first = ref None and second = ref None in
  ignore
    (Sched.spawn t (fun () ->
         first := Mailbox.receive_timeout t mb 2.0;
         second := Mailbox.receive_timeout t mb 2.0));
  ignore
    (Sched.spawn t (fun () ->
         Sched.sleep 1.0;
         Mailbox.send mb 9));
  run_ok t;
  check Alcotest.(option int) "first arrives" (Some 9) !first;
  check Alcotest.(option int) "second times out" None !second

(* ------------------------------------------------------------------ *)
(* Chan (bounded)                                                     *)
(* ------------------------------------------------------------------ *)

let test_chan_backpressure () =
  let t = Sched.create () in
  let ch = Chan.create ~capacity:2 in
  let produced = ref 0 and consumed = ref [] in
  ignore
    (Sched.spawn t ~name:"producer" (fun () ->
         for i = 1 to 5 do
           Chan.put ch i;
           produced := i
         done));
  ignore
    (Sched.spawn t ~name:"consumer" (fun () ->
         Sched.sleep 1.0;
         for _ = 1 to 5 do
           consumed := Chan.get ch :: !consumed
         done));
  Sched.run_until t 0.5;
  (* Producer must have stalled at the capacity limit. *)
  check Alcotest.int "producer blocked at capacity" 2 !produced;
  Sched.run t;
  Sched.check_failures t;
  check Alcotest.(list int) "all delivered in order" [ 1; 2; 3; 4; 5 ] (List.rev !consumed)

let test_chan_try_ops () =
  let ch = Chan.create ~capacity:1 in
  Alcotest.(check bool) "try_put ok" true (Chan.try_put ch 1);
  Alcotest.(check bool) "try_put full" false (Chan.try_put ch 2);
  check Alcotest.(option int) "try_get" (Some 1) (Chan.try_get ch);
  check Alcotest.(option int) "try_get empty" None (Chan.try_get ch)

let prop_chan_preserves_sequence =
  prop "bounded chan delivers exactly the sent sequence"
    QCheck2.Gen.(pair (int_range 1 4) (small_list (int_bound 100)))
    (fun (cap, xs) ->
      let t = Sched.create () in
      let ch = Chan.create ~capacity:cap in
      let out = ref [] in
      ignore (Sched.spawn t (fun () -> List.iter (Chan.put ch) xs));
      ignore
        (Sched.spawn t (fun () ->
             for _ = 1 to List.length xs do
               out := Chan.get ch :: !out
             done));
      Sched.run t;
      Sched.failures t = [] && List.rev !out = xs)

(* ------------------------------------------------------------------ *)
(* Semaphore & Waitgroup                                              *)
(* ------------------------------------------------------------------ *)

let test_semaphore_limits_concurrency () =
  let t = Sched.create () in
  let sem = Semaphore.create 2 in
  let active = ref 0 and peak = ref 0 in
  for _ = 1 to 6 do
    ignore
      (Sched.spawn t (fun () ->
           Semaphore.acquire sem;
           incr active;
           if !active > !peak then peak := !active;
           Sched.sleep 1.0;
           decr active;
           Semaphore.release sem))
  done;
  run_ok t;
  check Alcotest.int "at most 2 in section" 2 !peak

let test_semaphore_try () =
  let sem = Semaphore.create 1 in
  Alcotest.(check bool) "first ok" true (Semaphore.try_acquire sem);
  Alcotest.(check bool) "second fails" false (Semaphore.try_acquire sem);
  Semaphore.release sem;
  check Alcotest.int "available" 1 (Semaphore.available sem)

let test_waitgroup () =
  let t = Sched.create () in
  let wg = Waitgroup.create () in
  let done_ = ref false in
  Waitgroup.add wg 3;
  for _ = 1 to 3 do
    ignore
      (Sched.spawn t (fun () ->
           Sched.sleep 1.0;
           Waitgroup.finish wg))
  done;
  ignore
    (Sched.spawn t (fun () ->
         Waitgroup.wait wg;
         done_ := true));
  run_ok t;
  Alcotest.(check bool) "released after all finish" true !done_

let test_waitgroup_negative () =
  let wg = Waitgroup.create () in
  Alcotest.check_raises "underflow" (Failure "Waitgroup.finish: no outstanding tasks") (fun () ->
      Waitgroup.finish wg)

(* ------------------------------------------------------------------ *)
(* Determinism property                                               *)
(* ------------------------------------------------------------------ *)

let run_mixed_workload seed =
  (* A little zoo of interacting fibers; returns the event log.  Run
     twice with the same seed it must produce the same log. *)
  let g = Eden_util.Prng.create (Int64.of_int seed) in
  let t = Sched.create () in
  let log = Buffer.create 64 in
  let mb = Mailbox.create () in
  for i = 1 to 5 do
    let delay = Eden_util.Prng.float g 3.0 in
    ignore
      (Sched.spawn t (fun () ->
           Sched.sleep delay;
           Mailbox.send mb i;
           Buffer.add_string log (Printf.sprintf "s%d@%.3f;" i (Sched.time ()))))
  done;
  ignore
    (Sched.spawn t (fun () ->
         for _ = 1 to 5 do
           let v = Mailbox.receive mb in
           Buffer.add_string log (Printf.sprintf "r%d;" v)
         done));
  Sched.run t;
  Buffer.contents log

let prop_deterministic_schedule =
  prop "identical seeds give identical schedules" QCheck2.Gen.(int_bound 10_000) (fun seed ->
      run_mixed_workload seed = run_mixed_workload seed)

(* ------------------------------------------------------------------ *)
(* Timer-heap physical cancellation                                   *)
(* ------------------------------------------------------------------ *)

(* Regression: cancelled timers used to linger as tombstones until
   their deadline, so a cancel storm left the heap at storm size.  Now
   [cancel_timer] deletes physically and the heap returns to baseline
   immediately. *)
let test_timer_cancel_storm_returns_to_baseline () =
  let t = Sched.create () in
  Sched.timer t 1000.0 (fun () -> ());
  let baseline = Sched.timer_count t in
  check Alcotest.int "baseline" 1 baseline;
  let handles =
    List.init 10_000 (fun i ->
        Sched.timer_cancellable t (10.0 +. float_of_int i) (fun () ->
            Alcotest.fail "cancelled timer fired"))
  in
  check Alcotest.int "storm pending" (baseline + 10_000) (Sched.timer_count t);
  List.iter (fun h -> Sched.cancel_timer t h) handles;
  check Alcotest.int "storm cancelled physically" baseline (Sched.timer_count t);
  (* Cancelling again is a stale-handle no-op, not a second delete. *)
  List.iter (fun h -> Sched.cancel_timer t h) handles;
  check Alcotest.int "double cancel is a no-op" baseline (Sched.timer_count t);
  run_ok t;
  check Alcotest.int "drained" 0 (Sched.timer_count t)

(* The same property through the timeout combinators: an ivar/mailbox
   timeout that loses its race deletes its own timer, so a retry loop
   cannot accumulate heap entries. *)
let test_timeout_races_leave_no_tombstones () =
  let t = Sched.create () in
  let mb = Mailbox.create () in
  let got = ref 0 in
  ignore
    (Sched.spawn t (fun () ->
         for _ = 1 to 1_000 do
           match Mailbox.receive_timeout t mb 1e6 with
           | Some () -> incr got
           | None -> Alcotest.fail "timeout fired despite immediate send"
         done));
  ignore
    (Sched.spawn t (fun () ->
         for _ = 1 to 1_000 do
           Mailbox.send mb ();
           Sched.yield ()
         done));
  run_ok t;
  check Alcotest.int "all received" 1_000 !got;
  check Alcotest.int "no timeout tombstones" 0 (Sched.timer_count t)

let suite =
  [
    ("spawn runs", `Quick, test_spawn_runs);
    ("fifo order", `Quick, test_fifo_order);
    ("yield interleaves", `Quick, test_yield_interleaves);
    ("sleep orders by time", `Quick, test_sleep_orders_by_time);
    ("virtual time jumps", `Quick, test_virtual_time_jumps);
    ("nested sleeps accumulate", `Quick, test_nested_sleep_accumulates);
    ("failure recorded", `Quick, test_failure_recorded);
    ("check_failures raises", `Quick, test_check_failures_raises);
    ("live count", `Quick, test_live_count);
    ("spawn inside", `Quick, test_spawn_inside);
    ("run_until stops clock", `Quick, test_run_until_stops_clock);
    ("step granularity", `Quick, test_step_granularity);
    ("contract: run_until boundary inclusive", `Quick, test_run_until_boundary_inclusive);
    ("contract: timer ties by insertion", `Quick, test_timer_tie_insertion_order);
    ("contract: runnable before timers", `Quick, test_runnable_before_timers);
    ("contract: zero chooser is FIFO", `Quick, test_zero_chooser_is_fifo);
    ("contract: chooser consultation + range", `Quick, test_chooser_consultation_and_range);
    ("contract: chooser reverses run queue", `Quick, test_chooser_reverses_runq);
    ("contract: chooser breaks timer ties", `Quick, test_chooser_timer_ties);
    ("contract: note hook", `Quick, test_note_hook);
    ("blocked listing", `Quick, test_blocked_listing);
    ("finished fibers untracked", `Quick, test_finished_fibers_untracked);
    ("blocked_info ids match", `Quick, test_blocked_info_ids_match);
    ("cancel blocked fiber", `Quick, test_cancel_blocked_fiber);
    ("cancel before first run", `Quick, test_cancel_before_first_run);
    ("cancel finished is noop", `Quick, test_cancel_finished_noop);
    ("ivar fill then read", `Quick, test_ivar_fill_then_read);
    ("ivar read blocks", `Quick, test_ivar_read_blocks_until_fill);
    ("ivar double fill", `Quick, test_ivar_double_fill);
    ("ivar many readers", `Quick, test_ivar_many_readers);
    ("ivar timeout expires", `Quick, test_ivar_timeout_expires);
    ("ivar timeout beaten by fill", `Quick, test_ivar_timeout_beaten_by_fill);
    ("mailbox fifo", `Quick, test_mailbox_fifo);
    ("mailbox send wakes", `Quick, test_mailbox_send_wakes);
    ("mailbox many receivers", `Quick, test_mailbox_many_receivers);
    ("mailbox try_receive", `Quick, test_mailbox_try_receive);
    ("mailbox timeout", `Quick, test_mailbox_timeout);
    ("chan backpressure", `Quick, test_chan_backpressure);
    ("chan try ops", `Quick, test_chan_try_ops);
    ("semaphore limits concurrency", `Quick, test_semaphore_limits_concurrency);
    ("semaphore try", `Quick, test_semaphore_try);
    ("waitgroup", `Quick, test_waitgroup);
    ("waitgroup underflow", `Quick, test_waitgroup_negative);
    ("timer cancel storm returns heap to baseline", `Quick,
     test_timer_cancel_storm_returns_to_baseline);
    ("timeout races leave no tombstones", `Quick, test_timeout_races_leave_no_tombstones);
    prop_chan_preserves_sequence;
    prop_deterministic_schedule;
  ]
